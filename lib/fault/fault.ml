type site =
  | Dms_transfer
  | Node_crash
  | Straggler
  | Temp_write
  | Control_transient

let all_sites = [ Dms_transfer; Node_crash; Straggler; Temp_write; Control_transient ]

let site_name = function
  | Dms_transfer -> "dms_transfer"
  | Node_crash -> "node_crash"
  | Straggler -> "straggler"
  | Temp_write -> "temp_write"
  | Control_transient -> "control_transient"

let site_of_name s =
  List.find_opt (fun site -> site_name site = s) all_sites

let site_index = function
  | Dms_transfer -> 0
  | Node_crash -> 1
  | Straggler -> 2
  | Temp_write -> 3
  | Control_transient -> 4

type event = {
  e_site : site;
  e_step : int;
  e_node : int option;
  e_attempt : int;
  e_epoch : int;
  e_factor : float;
}

let event ?node ?(attempt = 0) ?(epoch = 0) ?(factor = 4.0) site step =
  { e_site = site; e_step = step; e_node = node; e_attempt = attempt;
    e_epoch = epoch; e_factor = factor }

type policy = {
  retries : int;
  backoff_base : float;
  backoff_mult : float;
}

let default_policy = { retries = 4; backoff_base = 0.05; backoff_mult = 2.0 }

let backoff p attempt =
  p.backoff_base *. (p.backoff_mult ** float_of_int (max 0 (attempt - 1)))

type mode =
  | Off
  | Probabilistic of {
      seed : int;
      rates : (site * float) list;
      straggle_factor : float;
    }
  | Schedule of event list

type plan = { mode : mode; policy : policy }

let none = { mode = Off; policy = default_policy }

let seeded ?(policy = default_policy) ?(rate = 0.05) ?rates
    ?(straggle_factor = 4.0) ~seed () =
  let rates =
    match rates with
    | Some r -> r
    | None ->
      [ (Dms_transfer, rate); (Temp_write, rate); (Control_transient, rate);
        (Straggler, rate); (Node_crash, rate /. 8.) ]
  in
  { mode = Probabilistic { seed; rates; straggle_factor }; policy }

let schedule ?(policy = default_policy) events =
  { mode = Schedule events; policy }

exception Schedule_error of string

let parse_schedule text =
  let parse_line lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line = "" then None
    else begin
      let fields =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      let err fmt =
        (* report where AND what: the line number plus the raw offending
           text, so a bad --fault-schedule line is findable at a glance *)
        Printf.ksprintf
          (fun m ->
             raise
               (Schedule_error (Printf.sprintf "line %d: %s, in %S" lineno m (String.trim raw))))
          fmt
      in
      let kvs =
        List.map
          (fun f ->
             match String.index_opt f '=' with
             | Some i ->
               (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
             | None -> err "expected key=value, got %S" f)
          fields
      in
      let get k = List.assoc_opt k kvs in
      let int_of k v =
        match int_of_string_opt v with
        | Some n -> n
        | None -> err "field %s: expected an integer, got %S" k v
      in
      let site =
        match get "site" with
        | None -> err "missing site= field"
        | Some s ->
          (match site_of_name s with
           | Some site -> site
           | None ->
             err "unknown site %S (one of: %s)" s
               (String.concat ", " (List.map site_name all_sites)))
      in
      let step =
        match get "step" with
        | None -> err "missing step= field"
        | Some s -> int_of "step" s
      in
      let node = Option.map (int_of "node") (get "node") in
      let attempt = Option.fold ~none:0 ~some:(int_of "attempt") (get "attempt") in
      let epoch = Option.fold ~none:0 ~some:(int_of "epoch") (get "epoch") in
      let factor =
        match get "factor" with
        | None -> 4.0
        | Some v ->
          (match float_of_string_opt v with
           | Some f -> f
           | None -> err "field factor: expected a number, got %S" v)
      in
      List.iter
        (fun (k, _) ->
           if not (List.mem k [ "site"; "step"; "node"; "attempt"; "epoch"; "factor" ])
           then err "unknown field %S" k)
        kvs;
      Some { e_site = site; e_step = step; e_node = node; e_attempt = attempt;
             e_epoch = epoch; e_factor = factor }
    end
  in
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

let load_schedule ?policy file =
  let ic =
    try open_in file
    with Sys_error msg -> raise (Schedule_error msg)
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let events =
    try parse_schedule text
    with Schedule_error msg -> raise (Schedule_error (Printf.sprintf "%s: %s" file msg))
  in
  schedule ?policy events

(* -- deterministic draws --

   splitmix64 finalizer over a fold of the coordinates: every decision is
   an independent pure function of (seed, site, epoch, step, node, attempt),
   so the fault pattern cannot depend on domain scheduling or --jobs. *)

let sm64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw ~seed ~site ~epoch ~step ~node ~attempt =
  let mix acc v =
    sm64 (Int64.add (Int64.mul acc 0x9e3779b97f4a7c15L) (Int64.of_int v))
  in
  let h =
    List.fold_left mix
      (sm64 (Int64.of_int seed))
      [ site_index site; epoch; step; node; attempt ]
  in
  (* top 53 bits -> uniform float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let event_matches ~site ~epoch ~step ~node ~attempt e =
  e.e_site = site && e.e_step = step && e.e_epoch = epoch
  && e.e_attempt = attempt
  && (match e.e_node with None -> true | Some n -> n = node)

let fires plan ~site ~epoch ~step ~node ~attempt =
  match plan.mode with
  | Off -> false
  | Probabilistic { seed; rates; _ } ->
    (match List.assoc_opt site rates with
     | Some rate when rate > 0. ->
       draw ~seed ~site ~epoch ~step ~node ~attempt < rate
     | _ -> false)
  | Schedule events ->
    List.exists (event_matches ~site ~epoch ~step ~node ~attempt) events

let straggle plan ~epoch ~step ~node ~attempt =
  match plan.mode with
  | Off -> None
  | Probabilistic { straggle_factor; _ } ->
    if fires plan ~site:Straggler ~epoch ~step ~node ~attempt
    then Some straggle_factor
    else None
  | Schedule events ->
    List.find_opt (event_matches ~site:Straggler ~epoch ~step ~node ~attempt) events
    |> Option.map (fun e -> e.e_factor)

type failure = { site : site; epoch : int; step : int; node : int }

let failure_to_string f =
  Printf.sprintf "%s at step %d%s (epoch %d)" (site_name f.site) f.step
    (if f.node >= 0 then Printf.sprintf " on node %d" f.node else "")
    f.epoch

exception Injected of failure
exception Exhausted of { failure : failure; attempts : int }

let () =
  Printexc.register_printer (function
      | Injected f -> Some (Printf.sprintf "Fault.Injected(%s)" (failure_to_string f))
      | Exhausted { failure; attempts } ->
        Some
          (Printf.sprintf "Fault.Exhausted(%s after %d attempts)"
             (failure_to_string failure) attempts)
      | _ -> None)
