(** Deterministic fault injection for the simulated appliance.

    A {!plan} decides, at named injection {e sites} inside the engine,
    whether a simulated failure fires. Decisions are pure functions of
    [(seed, site, epoch, step, node, attempt)] — no shared mutable PRNG —
    so a given plan produces the identical fault pattern at any [--jobs]
    setting and regardless of domain scheduling. The engine owns recovery
    (retries, backoff, node decommissioning); this module only answers
    "does a fault fire here?" and carries the failure/exhaustion types.

    Two ways to drive it:
    - {!seeded}: per-site probabilities drawn from a seeded hash
      (chaos-mode sweeps);
    - {!schedule}: an explicit list of {!event}s naming exactly which
      (site, step, node, attempt, epoch) fail (reproducing one scenario). *)

(** Where a fault can fire inside the engine. *)
type site =
  | Dms_transfer       (** a DMS movement fails mid-transfer *)
  | Node_crash         (** a compute node dies during a distributed step *)
  | Straggler          (** a node runs slow: its step time is inflated *)
  | Temp_write         (** writing a step's temp table fails *)
  | Control_transient  (** transient error on the control node *)

val all_sites : site list

(** Stable wire names: [dms_transfer], [node_crash], [straggler],
    [temp_write], [control_transient] (used by counters and schedules). *)
val site_name : site -> string

val site_of_name : string -> site option

(** One entry of an explicit schedule. [e_node = None] matches any node
    (and site-less-node sites like {!Dms_transfer}). [e_factor] is the
    slowdown multiplier for {!Straggler} events (ignored elsewhere). *)
type event = {
  e_site : site;
  e_step : int;          (** 0-based injectable-step index within a statement *)
  e_node : int option;
  e_attempt : int;       (** which execution attempt of the step (0 = first) *)
  e_epoch : int;         (** replan epoch: 0 before any node loss *)
  e_factor : float;
}

(** [event ?node ?attempt ?epoch ?factor site step] — defaults: any node,
    attempt 0, epoch 0, factor 4.0. *)
val event : ?node:int -> ?attempt:int -> ?epoch:int -> ?factor:float -> site -> int -> event

(** Retry policy for recoverable faults. [retries] is the per-step budget
    of re-executions after the first failure; retry [k] (1-based) charges
    [backoff_base *. backoff_mult ^ (k - 1)] seconds of simulated backoff. *)
type policy = {
  retries : int;
  backoff_base : float;
  backoff_mult : float;
}

val default_policy : policy

(** Simulated seconds of backoff before retry [attempt] (1-based). *)
val backoff : policy -> int -> float

type mode =
  | Off
  | Probabilistic of {
      seed : int;
      rates : (site * float) list;  (** per-site fire probability in [0,1] *)
      straggle_factor : float;      (** slowdown applied when Straggler fires *)
    }
  | Schedule of event list

type plan = { mode : mode; policy : policy }

(** No faults ever fire. *)
val none : plan

(** [seeded ~seed ?rate ?rates ()] — probabilistic plan. [rate] (default
    0.05) applies to every site except {!Node_crash}, which fires at
    [rate /. 8.] (losing a node is rarer than a transient). [rates]
    overrides the per-site table entirely. *)
val seeded :
  ?policy:policy -> ?rate:float -> ?rates:(site * float) list ->
  ?straggle_factor:float -> seed:int -> unit -> plan

(** An explicit schedule. *)
val schedule : ?policy:policy -> event list -> plan

exception Schedule_error of string

(** Parse a schedule from text: one event per line of [key=value] fields
    ([site] and [step] required; [node], [attempt], [epoch], [factor]
    optional), [#] comments and blank lines ignored. Example:
    {v site=dms_transfer step=2 attempt=0
       site=node_crash step=0 node=1 v}
    Raises {!Schedule_error} on malformed input; the message names the
    offending line number and quotes its raw text. *)
val parse_schedule : string -> event list

(** [load_schedule file] reads and parses a schedule file. Parse errors are
    re-raised with [file] prefixed to the message. *)
val load_schedule : ?policy:policy -> string -> plan

(** [fires plan ~site ~epoch ~step ~node ~attempt] — does a fault fire at
    this point? Pure: same arguments, same answer. Pass [node = -1] for
    sites not tied to a compute node. *)
val fires : plan -> site:site -> epoch:int -> step:int -> node:int -> attempt:int -> bool

(** Straggler slowdown factor for this node at this step, if one fires. *)
val straggle : plan -> epoch:int -> step:int -> node:int -> attempt:int -> float option

(** A fault that fired. [node = -1] when the site has no node. *)
type failure = { site : site; epoch : int; step : int; node : int }

val failure_to_string : failure -> string

(** Raised by the engine at an injection point. Recoverable sites are
    caught and retried by the engine's recovery wrapper; {!Node_crash}
    escalates to re-optimization on the surviving nodes. *)
exception Injected of failure

(** The statement failed for good: the per-step retry budget (or the
    replan budget, for node losses) was exhausted. [attempts] counts
    executions of the failing step, the first included. *)
exception Exhausted of { failure : failure; attempts : int }
