(** Parallel (distributed) execution plans: serial physical operators
    composed with data movement operations, each node annotated with its
    output distribution, cardinality, and cumulative costs. *)

type pop =
  | Serial of Memo.Physop.t
      (** executed locally on every node holding a share of the input *)
  | Move of { kind : Dms.Op.kind; cols : int list }
      (** a DMS operation; [cols] is the projected column list physically
          carried by the stream (and materialized into the temp table) *)
  | Return of { sort : Algebra.Relop.sort_key list; limit : int option }
      (** final gather: stream results to the client through the control
          node, merging/sorting and applying TOP if required *)

type t = {
  op : pop;
  children : t list;
  dist : Dms.Distprop.t;     (** output distribution *)
  rows : float;              (** estimated global output cardinality *)
  group : int;               (** originating MEMO group (-1 if synthetic) *)
  dms_cost : float;          (** cumulative DMS cost (paper's optimization metric) *)
  serial_cost : float;       (** cumulative per-node relational work (tie-break) *)
}

val op_to_string : Algebra.Registry.t -> pop -> string
val pp : Algebra.Registry.t -> Format.formatter -> t -> unit
val to_string : Algebra.Registry.t -> t -> string

(** Number of plan nodes. *)
val size : t -> int

(** Number of data movement operations in the plan. *)
val move_count : t -> int

(** All movement kinds in the plan, outside-in. *)
val moves : t -> Dms.Op.kind list

(** Output column layout in execution order. *)
val output_layout : t -> int list
