(** The PDW query optimizer pipeline (paper Fig. 4, steps 01-12; DSQL
    generation, steps 10-11, lives in the {!Dsql} library). *)

open Algebra
open Memo

type result = {
  plan : Pplan.t;                 (** the chosen distributed plan (with Return) *)
  options_at_root : (Dms.Distprop.t * Pplan.t) list;
  options : (int, (Dms.Distprop.t * Pplan.t) list) Hashtbl.t;
      (** kept options per group (the augmented MEMO of Fig. 3c) *)
  stats : Enumerate.stats;
  derived : Derive.t;
}

exception No_plan of string

(* Step 03: merge group expressions that are equivalent from the PDW
   perspective. Structural duplicates are already removed by the MEMO's
   dedup table; here we drop physical serial alternatives whose distinction
   the PDW layer ignores (order-based algorithms shadowed by their hash
   counterparts), keeping the group lists small. *)
let preprocess_merge (m : Memo.t) =
  Memo.iter_groups m (fun g ->
      let keep (e : gexpr) =
        match e.op with
        | Physical (Physop.Merge_join { kind; pred }) ->
          (* drop if the equivalent hash join exists in the group *)
          not
            (List.exists
               (fun (e' : gexpr) ->
                  match e'.op with
                  | Physical (Physop.Hash_join { kind = k'; pred = p' }) ->
                    k' = kind && Expr.equal p' pred && e'.children = e.children
                  | _ -> false)
               g.Memo.exprs)
        | Physical (Physop.Stream_agg { keys; aggs }) ->
          not
            (List.exists
               (fun (e' : gexpr) ->
                  match e'.op with
                  | Physical (Physop.Hash_agg { keys = k'; aggs = a' }) ->
                    k' = keys && a' = aggs && e'.children = e.children
                  | _ -> false)
               g.Memo.exprs)
        | _ -> true
      in
      g.Memo.exprs <- List.filter keep g.Memo.exprs)

(* Step 09: post-optimization rules on the chosen plan tree. *)
let rec post_optimize (p : Pplan.t) : Pplan.t =
  let p = { p with Pplan.children = List.map post_optimize p.Pplan.children } in
  match p.Pplan.op, p.Pplan.children with
  | Pplan.Move _, [ c ] when Dms.Distprop.equal c.Pplan.dist p.Pplan.dist ->
    (* identity movement *)
    c
  | _ -> p

(* Root ORDER BY / TOP: the Return operation merges and limits at the
   control node (the paper's final "Return" DSQL step). *)
let root_sort_limit (m : Memo.t) =
  let root = Memo.root m in
  let found =
    List.find_map
      (fun (l, _) ->
         match l with
         | Relop.Sort { keys; limit } -> Some (keys, limit)
         | _ -> None)
      (Memo.logical_exprs m root)
  in
  match found with
  | Some (keys, limit) -> (keys, limit)
  | None -> ([], None)

(* The final Return streams results to the client (paper §2.3: no temp
   table, no DMS); the client-bound bytes are identical whichever node the
   rows sit on, so the Return contributes nothing to plan discrimination. *)
let return_cost (_o : Enumerate.opts) (_p : Pplan.t) ~width = ignore width; 0.

(* Report the PDW side's counters (Fig. 4 steps 04-09) into [obs]: the
   enumeration/pruning balance, the enforcer's contribution, the size of
   the interesting-property map, and the chosen plan's per-DMS-op modelled
   movement volumes (rows x required width). *)
let report_obs obs (ctx : Enumerate.ctx) (derived : Derive.t) (m : Memo.t)
    (plan : Pplan.t) =
  if Obs.enabled obs then begin
    let s = Enumerate.stats_of ctx in
    Obs.add obs "pdw.groups_processed" s.Enumerate.groups_processed;
    Obs.add obs "pdw.exprs_enumerated" s.Enumerate.pdw_exprs_enumerated;
    Obs.add obs "pdw.options_kept" s.Enumerate.options_kept;
    Obs.add obs "pdw.exprs_pruned"
      (s.Enumerate.pdw_exprs_enumerated - s.Enumerate.options_kept);
    Obs.add obs "pdw.enforcer_moves" s.Enumerate.enforcer_moves;
    Obs.add obs "pdw.par_levels" s.Enumerate.par_levels;
    Obs.add obs "pdw.par_groups" s.Enumerate.par_groups;
    let igroups, ilists = Derive.interesting_size derived in
    Obs.add obs "pdw.interesting.groups" igroups;
    Obs.add obs "pdw.interesting.col_lists" ilists;
    Obs.add obs "pdw.required.groups" (Derive.required_size derived);
    let rec walk (p : Pplan.t) =
      (match p.Pplan.op with
       | Pplan.Move { kind; cols } ->
         let width =
           List.fold_left (fun a c -> a +. Registry.width m.Memo.reg c) 0. cols
         in
         let nm = Dms.Op.name kind in
         Obs.add obs (Printf.sprintf "pdw.move.%s.count" nm) 1;
         Obs.addf obs (Printf.sprintf "pdw.move.%s.bytes_est" nm)
           (p.Pplan.rows *. width);
         Obs.addf obs (Printf.sprintf "pdw.move.%s.rows_est" nm) p.Pplan.rows
       | Pplan.Serial _ | Pplan.Return _ -> ());
      List.iter walk p.Pplan.children
    in
    walk plan
  end

(** Run steps 01-09 over an (imported) MEMO and return the chosen plan. *)
let optimize ?(obs = Obs.null) ?(opts = Enumerate.default_opts)
    ?(token = Governor.none) ?(pool = Par.sequential) ?upper_bound ?empty
    (m : Memo.t) : result =
  (* 02-03: preprocessing *)
  preprocess_merge m;
  (* 04: top-down property derivation *)
  let derived = Derive.derive m in
  (* 05-07: bottom-up enumeration, leveled wavefront over [pool] *)
  let ctx = Enumerate.create_ctx ~token ~pool ?upper_bound ?empty m derived opts in
  let root = Memo.root m in
  let options = Enumerate.optimize_group ctx root in
  (* A finite bound can starve the root when the best distributed plan
     genuinely costs more than the seed (e.g. movement-heavy unions whose
     branches must be aligned): retry unbounded. The retry condition
     depends only on the bounded result, so it fires identically at any
     pool size. *)
  let ctx, options =
    if options = [] && upper_bound <> None then begin
      let ctx = Enumerate.create_ctx ~token ~pool ?empty m derived opts in
      (ctx, Enumerate.optimize_group ctx root)
    end
    else (ctx, options)
  in
  if options = [] then raise (No_plan "no distributed plan found for the root group");
  (* 08: extract the best overall plan, adding the final Return *)
  let sort, limit = root_sort_limit m in
  let width = (Memo.props m root).Memo.width in
  let scored =
    List.map
      (fun (d, p) ->
         let total =
           Enumerate.total_cost opts p +. return_cost opts p ~width
         in
         (total, d, p))
      options
  in
  let _, _, best =
    List.fold_left
      (fun (bt, bd, bp) (t, d, p) -> if t < bt then (t, d, p) else (bt, bd, bp))
      (match scored with
       | first :: _ -> first
       | [] -> assert false)
      scored
  in
  (* 09: post-optimization *)
  let best = post_optimize best in
  let plan =
    { Pplan.op = Pplan.Return { sort; limit };
      children = [ best ];
      dist = Dms.Distprop.Single_node;
      rows = best.Pplan.rows;
      group = root;
      dms_cost = best.Pplan.dms_cost +. return_cost opts best ~width;
      serial_cost = best.Pplan.serial_cost }
  in
  report_obs obs ctx derived m plan;
  { plan; options_at_root = options; options = Enumerate.options_table ctx;
    stats = Enumerate.stats_of ctx; derived }
