(** Top-down property derivation over the imported MEMO (paper Fig. 4
    step 04: "Derive interesting properties of groups (top-down)").

    Two properties are derived per group:
    - {b interesting columns} (§3.2): candidate hash-distribution column
      lists — columns referenced in equality join predicates (they make
      local and directed joins possible) and group-by columns (they allow
      local aggregation without a local/global split);
    - {b required columns}: the columns a group's output must physically
      carry for the operators above it — this determines the row width [w]
      of any data movement of that group's stream. *)

type t

(** Run the full derivation (fixpoint over the DAG). *)
val derive : Memo.t -> t

(** Candidate hash-distribution column lists of a group. *)
val interesting : t -> int -> int list list

(** Columns a group's output must carry for the operators above it. *)
val required : t -> int -> Algebra.Registry.Col_set.t

(** Size of the interesting-property map: (groups with at least one
    interesting column list, total column lists). *)
val interesting_size : t -> int * int

(** Number of groups with a derived required-column set. *)
val required_size : t -> int

(** Row width (bytes) and column list a moved stream of group [gid]
    carries. *)
val moved_width : Memo.t -> t -> int -> float * int list
