(** Top-down property derivation over the imported MEMO (paper Fig. 4
    step 04: "Derive interesting properties of groups (top-down)").

    Two properties are derived per group:
    - {b interesting columns} (§3.2): candidate hash-distribution column
      lists — columns referenced in equality join predicates (they make
      local and directed joins possible) and group-by columns (they allow
      local aggregation without a local/global split);
    - {b required columns}: the columns a group's output must physically
      carry for the operators above it — this determines the row width [w]
      of any data movement of that group's stream (DMS extracts only the
      needed columns, as in the paper's Fig. 7 SQL). *)

open Algebra
open Memo

type t = {
  interesting : (int, int list list) Hashtbl.t;  (** group -> hash col lists *)
  required : (int, Registry.Col_set.t) Hashtbl.t;
}

let interesting t gid =
  match Hashtbl.find_opt t.interesting gid with Some l -> l | None -> []

let required t gid =
  match Hashtbl.find_opt t.required gid with
  | Some s -> s
  | None -> Registry.Col_set.empty

let add_interesting t gid cols =
  if cols <> [] then begin
    let cur = interesting t gid in
    if not (List.mem cols cur) then Hashtbl.replace t.interesting gid (cols :: cur)
  end

let local_refs_of_op (op : Memo.op) : Registry.Col_set.t =
  match op with
  | Logical l -> Relop.local_refs { Relop.op = l; children = [] }
  | Physical p ->
    (match p with
     | Physop.Table_scan _ | Physop.Const_empty _ -> Registry.Col_set.empty
     | Physop.Filter e -> Expr.cols e
     | Physop.Compute defs -> Expr.cols_of_list (List.map snd defs)
     | Physop.Hash_join { pred; _ } | Physop.Merge_join { pred; _ }
     | Physop.Nl_join { pred; _ } -> Expr.cols pred
     | Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs } ->
       List.fold_left
         (fun acc a ->
            match a.Expr.agg_arg with
            | Some e -> Registry.Col_set.union acc (Expr.cols e)
            | None -> acc)
         (Registry.Col_set.of_list keys) aggs
     | Physop.Sort_op { keys; _ } -> Expr.cols_of_list (List.map (fun k -> k.Relop.key) keys)
     | Physop.Union_op -> Registry.Col_set.empty)

(** Join equi columns and group-by keys contributed by one expression, per
    child. *)
let expr_interesting (m : Memo.t) (e : gexpr) : (int * int list list) list =
  match e.op with
  | Logical (Relop.Join { pred; _ })
  | Physical (Physop.Hash_join { pred; _ } | Physop.Merge_join { pred; _ }
             | Physop.Nl_join { pred; _ })
    when Array.length e.children = 2 ->
    let l = Memo.find m e.children.(0) and r = Memo.find m e.children.(1) in
    let lcols = (Memo.props m l).cols and rcols = (Memo.props m r).cols in
    let equi = Physop.oriented_equi_pairs pred ~left_cols:lcols ~right_cols:rcols in
    if equi = [] then []
    else begin
      let singles_l = List.map (fun (a, _) -> [ a ]) equi in
      let singles_r = List.map (fun (_, b) -> [ b ]) equi in
      let full_l = if List.length equi > 1 then [ List.map fst equi ] else [] in
      let full_r = if List.length equi > 1 then [ List.map snd equi ] else [] in
      [ (l, singles_l @ full_l); (r, singles_r @ full_r) ]
    end
  | Logical (Relop.Group_by { keys; _ })
  | Physical (Physop.Hash_agg { keys; _ } | Physop.Stream_agg { keys; _ })
    when Array.length e.children = 1 && keys <> [] ->
    let c = Memo.find m e.children.(0) in
    let singles = List.map (fun k -> [ k ]) keys in
    let full = if List.length keys > 1 then [ keys ] else [] in
    [ (c, singles @ full) ]
  | _ -> []

(** Run the full derivation (fixpoint over the DAG). *)
let derive (m : Memo.t) : t =
  let t = { interesting = Hashtbl.create 64; required = Hashtbl.create 64 } in
  (* seed: root must deliver all its output columns *)
  let root = Memo.root m in
  Hashtbl.replace t.required root (Memo.props m root).cols;
  let changed = ref true in
  while !changed do
    changed := false;
    Memo.iter_groups m (fun g ->
        let gid = g.Memo.gid in
        let req_here = required t gid in
        List.iter
          (fun (e : gexpr) ->
             (* interesting columns contributed by this expression *)
             List.iter
               (fun (child, lists) ->
                  List.iter
                    (fun l ->
                       let cur = interesting t child in
                       if not (List.mem l cur) then begin
                         add_interesting t child l;
                         changed := true
                       end)
                    lists)
               (expr_interesting m e);
             (* interesting properties of this group flow to children that
                cover them (movement below a pass-through is equivalent) *)
             Array.iter
               (fun c ->
                  let c = Memo.find m c in
                  let ccols = (Memo.props m c).cols in
                  List.iter
                    (fun l ->
                       if List.for_all (fun x -> Registry.Col_set.mem x ccols) l then begin
                         let cur = interesting t c in
                         if not (List.mem l cur) then begin
                           add_interesting t c l;
                           changed := true
                         end
                       end)
                    (interesting t gid))
               e.children;
             (* required columns *)
             let need = Registry.Col_set.union req_here (local_refs_of_op e.op) in
             Array.iter
               (fun c ->
                  let c = Memo.find m c in
                  let ccols = (Memo.props m c).cols in
                  let down = Registry.Col_set.inter need ccols in
                  let cur = required t c in
                  if not (Registry.Col_set.subset down cur) then begin
                    Hashtbl.replace t.required c (Registry.Col_set.union cur down);
                    changed := true
                  end)
               e.children)
          (Memo.exprs m gid))
  done;
  t

(** Size of the interesting-property map: (groups with at least one
    interesting column list, total column lists). *)
let interesting_size t =
  Hashtbl.fold (fun _ lists (g, l) -> (g + 1, l + List.length lists)) t.interesting (0, 0)

(** Number of groups with a derived required-column set. *)
let required_size t = Hashtbl.length t.required

(** Row width (bytes) of the columns a moved stream of group [gid] carries. *)
let moved_width (m : Memo.t) t gid : float * int list =
  let req = Registry.Col_set.inter (required t gid) (Memo.props m gid).cols in
  let cols =
    if Registry.Col_set.is_empty req then Registry.Col_set.elements (Memo.props m gid).cols
    else Registry.Col_set.elements req
  in
  let w = List.fold_left (fun acc c -> acc +. Registry.width m.Memo.reg c) 0. cols in
  (Float.max 1. w, cols)
