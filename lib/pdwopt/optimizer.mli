(** The PDW query optimizer pipeline (paper Fig. 4, steps 01-12; DSQL
    generation, steps 10-11, lives in the {!Dsql} library). *)

type result = {
  plan : Pplan.t;                 (** the chosen distributed plan (with Return) *)
  options_at_root : (Dms.Distprop.t * Pplan.t) list;
  options : (int, (Dms.Distprop.t * Pplan.t) list) Hashtbl.t;
      (** kept options per group (the augmented MEMO of Fig. 3c) *)
  stats : Enumerate.stats;
  derived : Derive.t;
}

exception No_plan of string

(** Run steps 01-09 over an (imported) MEMO and return the chosen plan.
    With [obs], reports the [pdw.*] counters: groups processed, PDW exprs
    enumerated vs. pruned, enforcer moves added, interesting-property map
    sizes, and the chosen plan's per-DMS-op modelled movement volumes.
    [token] is polled per dependency level; a trip raises
    {!Governor.Cancelled} (the bottom-up enumeration has no partial answer
    worth keeping — the anytime fallback lives one layer up, in [Opdw]).
    [pool] parallelizes the enumeration across memo dependency levels; the
    chosen plan is bit-identical at any pool size. [upper_bound] seeds the
    fixed DMS-cost pruning bound (see {!Enumerate.create_ctx}). [empty]
    marks groups the static analyzer proved empty; with
    [opts.fold_empty] they are folded to constant-empty operators before
    costing (the retry-unbounded path folds identically). *)
val optimize :
  ?obs:Obs.t -> ?opts:Enumerate.opts -> ?token:Governor.token ->
  ?pool:Par.t -> ?upper_bound:float -> ?empty:(int -> bool) -> Memo.t -> result
