(** Bottom-up enumeration of distributed plans over the imported MEMO
    (paper Fig. 4, steps 05-07), parallelized as a leveled wavefront over
    the domain pool (Trummer & Koch: partition bottom-up enumeration by
    memo dependency level):

    - step 06.i: for each group, enumerate PDW options by considering all
      combinations of the child groups' kept options; a serial operator is
      usable only when the child distributions make local execution correct
      (collocated/directed/broadcast joins, local group-bys, and the
      local-global aggregation split);
    - step 06.ii: cost-based pruning — keep the best option per output
      distribution (best overall plus best per interesting property), and
      drop any option whose cumulative DMS cost exceeds a fixed shared
      upper bound (seeded from the serial baseline plan by the pipeline);
    - step 07: enforcer step — add data movement expressions producing each
      interesting distribution, costed with the DMS cost model.

    Parallel structure and determinism: a sequential pre-pass walks the
    memo exactly as the old recursive enumeration did, computing each
    group's dependency level (1 + max over child levels, back edges
    ignored), pre-allocating every aggregation split's fresh registry
    columns in that same visit order, and path-compressing the group
    union-find so worker-side lookups are read-only. Groups within a level
    are then [Par.parallel_map]ed: each group's work is a pure function of
    its children's already-published option lists, results land at their
    input index, and the caller publishes a level's option lists only after
    the whole level completes. A back-edge child has a strictly higher
    level than its parent, so its table entry is absent when the parent
    runs — the lookup returns [], reproducing the old cycle guard. The
    upper bound is fixed for the whole pass and pruning is strict ([>],
    never ties), so the kept tables — and therefore the winning plan — are
    identical at any [jobs] and any schedule. *)

open Algebra
open Memo

type opts = {
  nodes : int;
  lambdas : Dms.Cost.lambdas;
  serial_tiebreak : bool;
      (** break DMS-cost ties with estimated per-node relational work *)
  prune : bool;
      (** interesting-property pruning (step 06.ii); off = keep every
          enumerated option (ablation) *)
  max_options_per_group : int;  (** safety cap when pruning is off *)
  hints : (string * [ `Broadcast | `Shuffle ]) list;
      (** paper §3.1 query hints: restrict a base table's kept options to
          replicated ([`Broadcast]) or hash-partitioned ([`Shuffle]) *)
  fold_empty : bool;
      (** fold groups proven empty by the analyzer (the [empty] predicate
          of {!create_ctx}) to a constant-empty operator before costing *)
}

let default_opts = {
  nodes = 8;
  lambdas = Dms.Cost.default_lambdas;
  serial_tiebreak = true;
  prune = true;
  max_options_per_group = 512;
  hints = [];
  fold_empty = true;
}

type stats = {
  mutable pdw_exprs_enumerated : int;  (** options considered (pre-pruning) *)
  mutable options_kept : int;
  mutable groups_processed : int;
  mutable enforcer_moves : int;
      (** Move expressions added by the enforcer step (Fig. 4, step 07) *)
  mutable par_levels : int;  (** dependency levels in the wavefront *)
  mutable par_groups : int;  (** groups dispatched through the pool *)
}

let fresh_stats () =
  { pdw_exprs_enumerated = 0; options_kept = 0; groups_processed = 0;
    enforcer_moves = 0; par_levels = 0; par_groups = 0 }

type ctx = {
  m : Memo.t;
  derived : Derive.t;
  o : opts;
  table : (int, (Dms.Distprop.t * Pplan.t) list) Hashtbl.t;
  splits : (int * int, split option) Hashtbl.t;
      (* (group, expr index) -> aggregation split, precomputed sequentially
         so registry allocation never happens on a worker domain *)
  bound : float Atomic.t;
      (* fixed DMS-cost upper bound; [infinity] when no baseline is known *)
  stats : stats;
  token : Governor.token;
  pool : Par.t;
  empty : int -> bool;
      (* groups proven empty by the analyzer (read-only, precomputed
         sequentially; shared by worker domains) *)
}

(* -- local/global aggregation split -- *)

and split = {
  local_aggs : Expr.agg_def list;
  global_aggs : Expr.agg_def list;
  post_defs : (int * Expr.t) list option;
      (** when AVG is present: a Compute restoring the original outputs *)
}

let create_ctx ?(token = Governor.none) ?(pool = Par.sequential) ?upper_bound
    ?(empty = fun _ -> false) m derived o =
  { m; derived; o;
    table = Hashtbl.create 64;
    splits = Hashtbl.create 8;
    bound = Atomic.make (Option.value upper_bound ~default:infinity);
    stats = fresh_stats ();
    token; pool;
    empty = (if o.fold_empty then empty else fun _ -> false) }

let options_table ctx = ctx.table
let stats_of ctx = ctx.stats

(* rows per node under the uniformity assumption *)
let per_node o rows (d : Dms.Distprop.t) =
  match d with
  | Dms.Distprop.Hashed _ -> rows /. float_of_int (max 1 o.nodes)
  | Dms.Distprop.Replicated | Dms.Distprop.Single_node -> rows

(** Per-node serial work of one operator execution (tie-break metric). *)
let serial_local_cost o (op : Physop.t) ~out_rows ~out_dist ~inputs =
  let out = per_node o out_rows out_dist in
  let ins = List.map (fun (r, d) -> per_node o r d) inputs in
  Serialopt.Cost.local_cost op ~out ~inputs:ins

let total_cost o (p : Pplan.t) =
  if o.serial_tiebreak then p.Pplan.dms_cost +. (1e-9 *. p.Pplan.serial_cost)
  else p.Pplan.dms_cost

(* -- option table with pruning -- *)

let dist_key (d : Dms.Distprop.t) = Dms.Distprop.short_string d

(* [st] is the calling group's private counter block: workers never touch
   the shared [ctx.stats] (the caller merges at publish time). The bound
   check is strict and the bound never changes during a pass, so the same
   options are dropped at any jobs; an option above the bound can never be
   part of a winning plan because DMS cost only accumulates upward. *)
let add_option ctx st acc (p : Pplan.t) =
  st.pdw_exprs_enumerated <- st.pdw_exprs_enumerated + 1;
  if ctx.o.prune then begin
    if p.Pplan.dms_cost > Atomic.get ctx.bound then ()
    else begin
      let k = dist_key p.Pplan.dist in
      match List.assoc_opt k !acc with
      | Some (_, best) when total_cost ctx.o best <= total_cost ctx.o p -> ()
      | _ -> acc := (k, (p.Pplan.dist, p)) :: List.remove_assoc k !acc
    end
  end
  else if List.length !acc < ctx.o.max_options_per_group then
    acc := (string_of_int (List.length !acc), (p.Pplan.dist, p)) :: !acc

let split_aggs reg keys (aggs : Expr.agg_def list) : split option =
  if List.exists (fun a -> a.Expr.agg_distinct) aggs then None
  else begin
    let needs_post = List.exists (fun a -> a.Expr.agg_func = Expr.Avg) aggs in
    let fresh name ty =
      Registry.fresh reg ~name ~ty ~width:(float_of_int (Catalog.Types.default_width ty))
        (Registry.Derived name)
    in
    let locals = ref [] and globals = ref [] and posts = ref [] in
    List.iter
      (fun a ->
         match a.Expr.agg_func with
         | Expr.Sum | Expr.Min | Expr.Max ->
           let lid = fresh (Printf.sprintf "partial%d" a.Expr.agg_out)
               (Registry.ty reg a.Expr.agg_out) in
           locals := { a with Expr.agg_out = lid } :: !locals;
           globals :=
             { a with Expr.agg_arg = Some (Expr.Col lid) } :: !globals;
           if needs_post then posts := (a.Expr.agg_out, Expr.Col a.Expr.agg_out) :: !posts
         | Expr.Count | Expr.Count_star ->
           let lid = fresh (Printf.sprintf "partial_count%d" a.Expr.agg_out) Catalog.Types.Tint in
           locals := { a with Expr.agg_out = lid } :: !locals;
           globals :=
             { Expr.agg_out = a.Expr.agg_out; agg_func = Expr.Sum;
               agg_arg = Some (Expr.Col lid); agg_distinct = false } :: !globals;
           if needs_post then posts := (a.Expr.agg_out, Expr.Col a.Expr.agg_out) :: !posts
         | Expr.Avg ->
           let ls = fresh (Printf.sprintf "partial_sum%d" a.Expr.agg_out) Catalog.Types.Tfloat in
           let lc = fresh (Printf.sprintf "partial_cnt%d" a.Expr.agg_out) Catalog.Types.Tint in
           let gs = fresh (Printf.sprintf "global_sum%d" a.Expr.agg_out) Catalog.Types.Tfloat in
           let gc = fresh (Printf.sprintf "global_cnt%d" a.Expr.agg_out) Catalog.Types.Tint in
           locals :=
             { Expr.agg_out = lc; agg_func = Expr.Count; agg_arg = a.Expr.agg_arg;
               agg_distinct = false }
             :: { Expr.agg_out = ls; agg_func = Expr.Sum; agg_arg = a.Expr.agg_arg;
                  agg_distinct = false }
             :: !locals;
           globals :=
             { Expr.agg_out = gc; agg_func = Expr.Sum; agg_arg = Some (Expr.Col lc);
               agg_distinct = false }
             :: { Expr.agg_out = gs; agg_func = Expr.Sum; agg_arg = Some (Expr.Col ls);
                  agg_distinct = false }
             :: !globals;
           posts :=
             (a.Expr.agg_out,
              Expr.Bin (Expr.Div, Expr.Cast (Expr.Col gs, Catalog.Types.Tfloat), Expr.Col gc))
             :: !posts)
      aggs;
    let post_defs =
      if needs_post then
        Some (List.map (fun k -> (k, Expr.Col k)) keys @ List.rev !posts)
      else None
    in
    Some { local_aggs = List.rev !locals; global_aggs = List.rev !globals; post_defs }
  end

(* -- enumeration -- *)

let scan_dist ctx (table : string) (cols : int array) : Dms.Distprop.t =
  match Catalog.Shell_db.find ctx.m.Memo.shell table with
  | None -> Dms.Distprop.Hashed []
  | Some tbl ->
    (match tbl.Catalog.Shell_db.dist with
     | Catalog.Distribution.Replicated -> Dms.Distprop.Replicated
     | Catalog.Distribution.Hash_partitioned names ->
       let schema = tbl.Catalog.Shell_db.schema in
       let ids =
         List.filter_map
           (fun n ->
              match Catalog.Schema.find_col schema n with
              | Some i when i < Array.length cols -> Some cols.(i)
              | _ -> None)
           names
       in
       Dms.Distprop.Hashed ids)

(* §3.1 hints: a group whose expressions scan a hinted base table keeps only
   the options matching the hinted strategy (unless that would leave none). *)
let apply_hints ctx gid options =
  if ctx.o.hints = [] then options
  else begin
    let aliases =
      List.filter_map
        (fun (op, _) ->
           match op with
           | Physop.Table_scan { alias; _ } -> Some (String.lowercase_ascii alias)
           | _ -> None)
        (Memo.physical_exprs ctx.m gid)
    in
    let applicable =
      List.filter_map
        (fun (a, h) ->
           if List.mem (String.lowercase_ascii a) aliases then Some h else None)
        ctx.o.hints
    in
    match applicable with
    | [] -> options
    | h :: _ ->
      let keep (d, _) =
        match h, (d : Dms.Distprop.t) with
        | `Broadcast, Dms.Distprop.Replicated -> true
        | `Shuffle, Dms.Distprop.Hashed _ -> true
        | _ -> false
      in
      (match List.filter keep options with
       | [] -> options  (* unsatisfiable hint: ignore rather than fail *)
       | kept -> kept)
  end

(* [lookup c] reads a child group's published options. Children on lower
   levels are always published; a back-edge child (level strictly above the
   parent's) is not yet, and yields [] exactly like the old in-progress
   cycle guard. *)
let enumerate_expr ctx st lookup gid gprops acc idx
    ((op : Physop.t), (children : int array)) =
  let o = ctx.o in
  let mk_serial ?(rows = gprops.Memo.card) op dist (child_plans : Pplan.t list) =
    let serial =
      serial_local_cost o op ~out_rows:rows ~out_dist:dist
        ~inputs:(List.map (fun (c : Pplan.t) -> (c.Pplan.rows, c.Pplan.dist)) child_plans)
    in
    { Pplan.op = Pplan.Serial op; children = child_plans; dist; rows; group = gid;
      dms_cost = List.fold_left (fun a (c : Pplan.t) -> a +. c.Pplan.dms_cost) 0. child_plans;
      serial_cost =
        serial
        +. List.fold_left (fun a (c : Pplan.t) -> a +. c.Pplan.serial_cost) 0. child_plans }
  in
  match op, Array.to_list children with
  | Physop.Table_scan { table; cols; _ }, [] ->
    let dist = scan_dist ctx table cols in
    add_option ctx st acc (mk_serial op dist [])
  | Physop.Const_empty _, [] ->
    add_option ctx st acc (mk_serial ~rows:0. op Dms.Distprop.Replicated []);
    add_option ctx st acc (mk_serial ~rows:0. op Dms.Distprop.Single_node [])
  | (Physop.Filter _ | Physop.Sort_op _), [ c ] ->
    List.iter
      (fun (cd, cp) -> add_option ctx st acc (mk_serial op cd [ cp ]))
      (lookup c)
  | Physop.Compute defs, [ c ] ->
    (* a projection renames hash-distribution columns it passes through *)
    let rename_dist (d : Dms.Distprop.t) =
      match d with
      | Dms.Distprop.Hashed cols when cols <> [] ->
        let rename c =
          match
            List.find_map
              (fun (out, e) ->
                 match e with Expr.Col c' when c' = c -> Some out | _ -> None)
              defs
          with
          | Some out -> out
          | None -> c
        in
        Dms.Distprop.Hashed (List.map rename cols)
      | d -> d
    in
    List.iter
      (fun (cd, cp) -> add_option ctx st acc (mk_serial op (rename_dist cd) [ cp ]))
      (lookup c)
  | Physop.Union_op, [ l; r ] ->
    (* a union executes locally when both branches share the distribution
       (paper sec. 3.1: search space extended around collocation of
       unions); enforcers on the branches provide the aligned options *)
    let lopts = lookup l and ropts = lookup r in
    List.iter
      (fun (ld, lp) ->
         List.iter
           (fun (rd, rp) ->
              let out =
                match ld, rd with
                | Dms.Distprop.Hashed lc, Dms.Distprop.Hashed rc when lc = rc && lc <> [] ->
                  Some ld
                | Dms.Distprop.Replicated, Dms.Distprop.Replicated ->
                  Some Dms.Distprop.Replicated
                | Dms.Distprop.Single_node, Dms.Distprop.Single_node ->
                  Some Dms.Distprop.Single_node
                | Dms.Distprop.Hashed lc, Dms.Distprop.Hashed rc
                  when lc <> [] && rc <> [] ->
                  None
                | (Dms.Distprop.Hashed _, Dms.Distprop.Hashed _) ->
                  (* at least one side has no usable hash property: the
                     union is still correct node-wise but unaligned *)
                  Some (Dms.Distprop.Hashed [])
                | _ -> None
              in
              match out with
              | Some dist -> add_option ctx st acc (mk_serial op dist [ lp; rp ])
              | None -> ())
           ropts)
      lopts
  | (Physop.Hash_join { kind; pred } | Physop.Nl_join { kind; pred }), [ l; r ] ->
    let lprops = Memo.props ctx.m l and rprops = Memo.props ctx.m r in
    let equi =
      Physop.oriented_equi_pairs pred ~left_cols:lprops.Memo.cols
        ~right_cols:rprops.Memo.cols
    in
    let lopts = lookup l and ropts = lookup r in
    List.iter
      (fun (ld, lp) ->
         List.iter
           (fun (rd, rp) ->
              match Dms.Distprop.join_local ~kind ~equi ld rd with
              | Some dist -> add_option ctx st acc (mk_serial op dist [ lp; rp ])
              | None -> ())
           ropts)
      lopts
  | (Physop.Merge_join _ | Physop.Stream_agg _), _ ->
    (* Order-requiring serial algorithms are resolved inside the serial
       optimizer's winners; the PDW layer composes order-agnostic
       operators only (hash variants always coexist in the MEMO). *)
    ()
  | Physop.Hash_agg { keys; aggs = _ }, [ c ] ->
    let copts = lookup c in
    (* (a) local-complete aggregation *)
    List.iter
      (fun (cd, cp) ->
         match Dms.Distprop.groupby_local ~keys cd with
         | Some dist -> add_option ctx st acc (mk_serial op dist [ cp ])
         | None -> ())
      copts;
    (* (b) local/global split: local partial agg, move, global agg. The
       split (with its fresh registry columns) was precomputed by the
       sequential pre-pass in the old recursive visit order. *)
    (match Hashtbl.find ctx.splits (gid, idx) with
     | None -> ()
     | Some split ->
       let local_op = Physop.Hash_agg { keys; aggs = split.local_aggs } in
       let global_op = Physop.Hash_agg { keys; aggs = split.global_aggs } in
       let n = float_of_int (max 1 o.nodes) in
       (* step 02 preprocessor rule: partial-aggregate cardinality fixed for
          the PDW topology (every group can appear on each node) *)
       let partial_rows card_child = Float.min card_child (gprops.Memo.card *. n) in
       let local_out_cols =
         keys @ List.map (fun a -> a.Expr.agg_out) split.local_aggs
       in
       let local_width =
         List.fold_left (fun a cid -> a +. Registry.width ctx.m.Memo.reg cid) 0. local_out_cols
       in
       let targets =
         (if keys = [] then [ Dms.Distprop.Single_node ]
          else
            List.map (fun k -> Dms.Distprop.Hashed [ k ]) keys
            @ (if List.length keys > 1 then [ Dms.Distprop.Hashed keys ] else [])
            @ [ Dms.Distprop.Single_node ])
       in
       List.iter
         (fun (cd, cp) ->
            match cd with
            | Dms.Distprop.Hashed _ ->
              let prows = partial_rows cp.Pplan.rows in
              let partial =
                { (mk_serial ~rows:prows local_op cd [ cp ]) with Pplan.group = -1 }
              in
              List.iter
                (fun target ->
                   let interesting = match target with
                     | Dms.Distprop.Hashed cols -> [ cols ]
                     | _ -> []
                   in
                   List.iter
                     (fun kind ->
                        let bd =
                          Dms.Cost.cost ~lambdas:o.lambdas kind ~nodes:o.nodes
                            ~rows:prows ~width:local_width
                        in
                        let moved =
                          { Pplan.op = Pplan.Move { kind; cols = local_out_cols };
                            children = [ partial ];
                            dist = target; rows = prows; group = -1;
                            dms_cost = partial.Pplan.dms_cost +. bd.Dms.Cost.c_total;
                            serial_cost = partial.Pplan.serial_cost }
                        in
                        let final = mk_serial global_op target [ moved ] in
                        let final =
                          match split.post_defs with
                          | None -> final
                          | Some defs -> mk_serial (Physop.Compute defs) target [ final ]
                        in
                        add_option ctx st acc { final with Pplan.group = gid })
                     (Dms.Op.moves_to ~interesting cd target))
                targets
            | Dms.Distprop.Replicated | Dms.Distprop.Single_node ->
              (* local-complete already covers these *)
              ())
         copts)
  | _ ->
    invalid_arg
      (Printf.sprintf "Enumerate: malformed physical expression %s/%d"
         (Physop.name op) (Array.length children))

(** Step 07: add Move group expressions for each interesting property. *)
let enforcer_step ctx st gid gprops acc =
  let o = ctx.o in
  let width, move_cols = Derive.moved_width ctx.m ctx.derived gid in
  let interesting = Derive.interesting ctx.derived gid in
  let targets =
    List.map (fun cols -> Dms.Distprop.Hashed cols) interesting
    @ [ Dms.Distprop.Replicated; Dms.Distprop.Single_node ]
  in
  ignore gprops;
  let base_options = List.map snd !acc in
  List.iter
    (fun (src_dist, (src : Pplan.t)) ->
       List.iter
         (fun target ->
            if not (Dms.Distprop.equal src_dist target) then begin
              let tgt_cols = match target with
                | Dms.Distprop.Hashed cols -> [ cols ]
                | _ -> []
              in
              (* the moved stream must carry the hash columns; width follows *)
              let cols =
                List.sort_uniq Int.compare
                  (move_cols @ List.concat tgt_cols)
              in
              let width =
                if List.length cols = List.length move_cols then width
                else
                  List.fold_left
                    (fun acc c -> acc +. Registry.width ctx.m.Memo.reg c)
                    0. cols
              in
              List.iter
                (fun kind ->
                   let bd =
                     Dms.Cost.cost ~lambdas:o.lambdas kind ~nodes:o.nodes
                       ~rows:src.Pplan.rows ~width
                   in
                   st.enforcer_moves <- st.enforcer_moves + 1;
                   add_option ctx st acc
                     { Pplan.op = Pplan.Move { kind; cols };
                       children = [ src ];
                       dist = target;
                       rows = src.Pplan.rows;
                       group = gid;
                       dms_cost = src.Pplan.dms_cost +. bd.Dms.Cost.c_total;
                       serial_cost = src.Pplan.serial_cost })
                (Dms.Op.moves_to ~interesting:tgt_cols src_dist target)
            end)
         targets)
    base_options

(* -- leveled wavefront driver -- *)

(* Sequential pre-pass: replicate the old recursive enumeration's exact
   visit order to (a) compute each reachable group's dependency level
   (back edges, i.e. children on the DFS stack, contribute nothing — they
   end up on a strictly higher level), and (b) allocate every aggregation
   split's fresh registry columns in that same order, so column ids are
   independent of the pool schedule and workers never mutate the registry.
   Returns the levels as arrays of canonical group ids, lowest first. *)
let compute_levels ctx root =
  let level : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let in_prog : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in  (* reverse completion order *)
  let rec visit gid =
    let gid = Memo.find ctx.m gid in
    match Hashtbl.find_opt level gid with
    | Some l -> l
    | None ->
      if Hashtbl.mem in_prog gid then -1  (* back edge *)
      else begin
        Hashtbl.replace in_prog gid ();
        let lv = ref 0 in
        let child c = lv := max !lv (1 + visit c) in
        (* a group proven empty folds to Const_empty: its subtree is never
           enumerated (or split-precomputed) unless another parent needs it *)
        if not (ctx.empty gid) then
          List.iteri
            (fun idx ((op : Physop.t), (children : int array)) ->
               match op, Array.to_list children with
               | (Physop.Filter _ | Physop.Sort_op _ | Physop.Compute _), [ c ] ->
                 child c
               | Physop.Union_op, [ l; r ]
               | (Physop.Hash_join _ | Physop.Nl_join _), [ l; r ] ->
                 child l;
                 child r
               | Physop.Hash_agg { keys; aggs }, [ c ] ->
                 child c;
                 Hashtbl.replace ctx.splits (gid, idx)
                   (split_aggs ctx.m.Memo.reg keys aggs)
               | _ -> ())
            (Memo.physical_exprs ctx.m gid);
        Hashtbl.remove in_prog gid;
        Hashtbl.replace level gid !lv;
        order := gid :: !order;
        !lv
      end
  in
  ignore (visit root);
  let completion = List.rev !order in
  let nlevels =
    List.fold_left (fun a g -> max a (1 + Hashtbl.find level g)) 0 completion
  in
  let buckets = Array.make nlevels [] in
  List.iter
    (fun g ->
       let l = Hashtbl.find level g in
       buckets.(l) <- g :: buckets.(l))
    completion;
  Array.map (fun gs -> Array.of_list (List.rev gs)) buckets

(* One group's steps 05-07: a pure function of the published child option
   lists (plus read-only memo/derive/registry state), returning its kept
   options and private counters. Safe to run on any pool domain. *)
let enumerate_one ctx gid =
  let st = fresh_stats () in
  let lookup c =
    match Hashtbl.find_opt ctx.table (Memo.find ctx.m c) with
    | Some opts -> opts
    | None -> []  (* back edge: published on a strictly higher level *)
  in
  let acc = ref [] in
  let gprops = Memo.props ctx.m gid in
  if ctx.empty gid then
    (* contradiction-driven folding: the group provably produces no rows,
       so a constant-empty operator replaces its whole expression list *)
    enumerate_expr ctx st lookup gid gprops acc 0
      (Physop.Const_empty (Registry.Col_set.elements gprops.Memo.cols), [||])
  else
    List.iteri
      (fun idx e -> enumerate_expr ctx st lookup gid gprops acc idx e)
      (Memo.physical_exprs ctx.m gid);
  enforcer_step ctx st gid gprops acc;
  (apply_hints ctx gid (List.map snd !acc), st)

let optimize_group ctx gid =
  let root = Memo.find ctx.m gid in
  match Hashtbl.find_opt ctx.table root with
  | Some opts -> opts
  | None ->
    let levels = compute_levels ctx root in
    (* fully path-compress the union-find: worker-side [Memo.find] calls
       become pure reads (one hop to the canonical group, no writes) *)
    for g = 0 to Memo.ngroups ctx.m - 1 do
      ignore (Memo.find ctx.m g)
    done;
    ctx.stats.par_levels <- ctx.stats.par_levels + Array.length levels;
    ignore
      (Par.parallel_levels ctx.pool
         ~before_level:(fun _ gids ->
           (* the poll raises in the caller between levels; an interrupted
              ctx must be discarded, as before *)
           Governor.poll ~where:"pdw.enumerate" ctx.token;
           ctx.stats.par_groups <- ctx.stats.par_groups + Array.length gids)
         ~after_level:(fun _ results ->
           Array.iter
             (fun (g, opts, st) ->
                Hashtbl.replace ctx.table g opts;
                ctx.stats.pdw_exprs_enumerated <-
                  ctx.stats.pdw_exprs_enumerated + st.pdw_exprs_enumerated;
                ctx.stats.enforcer_moves <-
                  ctx.stats.enforcer_moves + st.enforcer_moves;
                ctx.stats.groups_processed <- ctx.stats.groups_processed + 1;
                ctx.stats.options_kept <-
                  ctx.stats.options_kept + List.length opts)
             results)
         (fun g ->
            let opts, st = enumerate_one ctx g in
            (g, opts, st))
         levels);
    (match Hashtbl.find_opt ctx.table root with
     | Some opts -> opts
     | None -> [])
