(** Bottom-up enumeration of distributed plans over the imported MEMO
    (paper Fig. 4, steps 05-07):

    - step 06.i: for each group, enumerate PDW options by considering all
      combinations of the child groups' kept options; a serial operator is
      usable only when the child distributions make local execution correct
      (collocated/directed/broadcast joins, local group-bys, and the
      local-global aggregation split);
    - step 06.ii: cost-based pruning — keep the best option per output
      distribution (best overall plus best per interesting property);
    - step 07: enforcer step — add data movement expressions producing each
      interesting distribution, costed with the DMS cost model. *)

type opts = {
  nodes : int;
  lambdas : Dms.Cost.lambdas;
  serial_tiebreak : bool;
      (** break DMS-cost ties with estimated per-node relational work *)
  prune : bool;
      (** interesting-property pruning (step 06.ii); off = keep every
          enumerated option (ablation) *)
  max_options_per_group : int;  (** safety cap when pruning is off *)
  hints : (string * [ `Broadcast | `Shuffle ]) list;
      (** paper §3.1 query hints: restrict a base table's kept options to
          replicated ([`Broadcast]) or hash-partitioned ([`Shuffle]) *)
}

val default_opts : opts

(** Enumeration counters, also surfaced as [pdw.*] {!Obs} counters by
    {!Optimizer.optimize}. *)
type stats = {
  mutable pdw_exprs_enumerated : int;  (** options considered (pre-pruning) *)
  mutable options_kept : int;
  mutable groups_processed : int;
  mutable enforcer_moves : int;
      (** Move expressions added by the enforcer step (Fig. 4, step 07) *)
}

(** Enumeration state: the per-group kept-option table (the augmented MEMO
    of Fig. 3c) plus counters. Opaque outside {!Optimizer}. *)
type ctx

(** [token] is polled (raising {!Governor.Cancelled}) at each group visit;
    an interrupted ctx must be discarded, not resumed. *)
val create_ctx : ?token:Governor.token -> Memo.t -> Derive.t -> opts -> ctx

(** The per-group kept options (augmented MEMO), for inspection. *)
val options_table : ctx -> (int, (Dms.Distprop.t * Pplan.t) list) Hashtbl.t

val stats_of : ctx -> stats

(** The pruning objective: DMS cost, with the per-node relational work as
    an epsilon tie-break when [serial_tiebreak] is set. *)
val total_cost : opts -> Pplan.t -> float

(** Steps 05-07 for one group (memoized; recurses into children). *)
val optimize_group : ctx -> int -> (Dms.Distprop.t * Pplan.t) list
