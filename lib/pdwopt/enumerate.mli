(** Bottom-up enumeration of distributed plans over the imported MEMO
    (paper Fig. 4, steps 05-07):

    - step 06.i: for each group, enumerate PDW options by considering all
      combinations of the child groups' kept options; a serial operator is
      usable only when the child distributions make local execution correct
      (collocated/directed/broadcast joins, local group-bys, and the
      local-global aggregation split);
    - step 06.ii: cost-based pruning — keep the best option per output
      distribution (best overall plus best per interesting property);
    - step 07: enforcer step — add data movement expressions producing each
      interesting distribution, costed with the DMS cost model.

    The pass runs as a leveled wavefront over a {!Par} domain pool: groups
    are partitioned by memo dependency level, groups within a level run in
    parallel, and a level's kept options are published only once the whole
    level completes. A sequential pre-pass fixes registry allocation order
    and dependency levels, so the result is bit-identical at any pool size
    (see DESIGN.md §11 for the determinism argument). *)

type opts = {
  nodes : int;
  lambdas : Dms.Cost.lambdas;
  serial_tiebreak : bool;
      (** break DMS-cost ties with estimated per-node relational work *)
  prune : bool;
      (** interesting-property pruning (step 06.ii); off = keep every
          enumerated option (ablation) *)
  max_options_per_group : int;  (** safety cap when pruning is off *)
  hints : (string * [ `Broadcast | `Shuffle ]) list;
      (** paper §3.1 query hints: restrict a base table's kept options to
          replicated ([`Broadcast]) or hash-partitioned ([`Shuffle]) *)
  fold_empty : bool;
      (** fold groups proven empty (the [empty] predicate of {!create_ctx})
          to a constant-empty operator before costing, skipping their
          subtrees' enumeration; default on. Plans are unchanged whenever
          no group is proven empty. *)
}

val default_opts : opts

(** Enumeration counters, also surfaced as [pdw.*] {!Obs} counters by
    {!Optimizer.optimize}. *)
type stats = {
  mutable pdw_exprs_enumerated : int;  (** options considered (pre-pruning) *)
  mutable options_kept : int;
  mutable groups_processed : int;
  mutable enforcer_moves : int;
      (** Move expressions added by the enforcer step (Fig. 4, step 07) *)
  mutable par_levels : int;  (** dependency levels in the wavefront *)
  mutable par_groups : int;  (** groups dispatched through the pool *)
}

(** Enumeration state: the per-group kept-option table (the augmented MEMO
    of Fig. 3c) plus counters. Opaque outside {!Optimizer}. *)
type ctx

(** [token] is polled (raising {!Governor.Cancelled}) in the caller before
    each dependency level; an interrupted ctx must be discarded, not
    resumed. [pool] runs the groups within each level (default: the shared
    sequential pool — the same code path, one domain). [upper_bound] is a
    fixed DMS-cost bound (typically the serial baseline plan's cost, with
    margin): options strictly above it are dropped; since DMS cost only
    accumulates upward, no winning plan is lost, and because the bound
    never moves during a pass the kept tables are schedule-independent.
    [empty] marks groups proven empty by the static analyzer (see
    {!Analysis.empty_groups}); when [fold_empty] is set they are folded to
    constant-empty operators. The predicate must be a pure read (it is
    shared across worker domains) — precompute it sequentially. *)
val create_ctx :
  ?token:Governor.token -> ?pool:Par.t -> ?upper_bound:float ->
  ?empty:(int -> bool) ->
  Memo.t -> Derive.t -> opts -> ctx

(** The per-group kept options (augmented MEMO), for inspection. *)
val options_table : ctx -> (int, (Dms.Distprop.t * Pplan.t) list) Hashtbl.t

val stats_of : ctx -> stats

(** The pruning objective: DMS cost, with the per-node relational work as
    an epsilon tie-break when [serial_tiebreak] is set. *)
val total_cost : opts -> Pplan.t -> float

(** Steps 05-07 for the memo subgraph rooted at the given group: computes
    dependency levels, then runs the leveled wavefront bottom-up over the
    ctx's pool. Returns the root group's kept options (memoized: a second
    call with the same ctx returns the published table entry). *)
val optimize_group : ctx -> int -> (Dms.Distprop.t * Pplan.t) list
