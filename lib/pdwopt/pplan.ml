(** Parallel (distributed) execution plans: serial physical operators
    composed with data movement operations, each node annotated with its
    output distribution, cardinality, and cumulative costs. *)

open Algebra

type pop =
  | Serial of Memo.Physop.t
      (** executed locally on every node holding a share of the input *)
  | Move of { kind : Dms.Op.kind; cols : int list }
      (** a DMS operation; [cols] is the projected column list physically
          carried by the stream (and materialized into the temp table) *)
  | Return of { sort : Relop.sort_key list; limit : int option }
      (** final gather: stream results to the client through the control
          node, merging/sorting and applying TOP if required *)

type t = {
  op : pop;
  children : t list;
  dist : Dms.Distprop.t;     (** output distribution *)
  rows : float;              (** estimated global output cardinality *)
  group : int;               (** originating MEMO group (-1 if synthetic) *)
  dms_cost : float;          (** cumulative DMS cost (paper's optimization metric) *)
  serial_cost : float;       (** cumulative per-node relational work (tie-break) *)
}

let op_to_string reg = function
  | Serial p -> Memo.Physop.to_string reg p
  | Move { kind; _ } -> Printf.sprintf "DMS %s" (Dms.Op.to_string reg kind)
  | Return { sort; limit } ->
    Printf.sprintf "Return%s%s"
      (if sort = [] then ""
       else
         Printf.sprintf "[order by %s]"
           (String.concat ", "
              (List.map
                 (fun k ->
                    Expr.to_string reg k.Relop.key ^ (if k.Relop.desc then " DESC" else ""))
                 sort)))
      (match limit with Some n -> Printf.sprintf "[top %d]" n | None -> "")

let rec pp reg ppf t =
  let open Format in
  let head =
    Printf.sprintf "%s  {%s, rows=%.0f, dms=%.4gs}" (op_to_string reg t.op)
      (Dms.Distprop.to_string reg t.dist) t.rows t.dms_cost
  in
  match t.children with
  | [] -> fprintf ppf "%s" head
  | children ->
    fprintf ppf "@[<v 2>%s" head;
    List.iter (fun c -> fprintf ppf "@,%a" (pp reg) c) children;
    fprintf ppf "@]"

let to_string reg t = Format.asprintf "%a" (pp reg) t

let rec size t = 1 + List.fold_left (fun a c -> a + size c) 0 t.children

(** Number of data movement operations in the plan. *)
let rec move_count t =
  (match t.op with Move _ -> 1 | _ -> 0)
  + List.fold_left (fun a c -> a + move_count c) 0 t.children

(** All movement kinds in the plan, outside-in. *)
let rec moves t =
  (match t.op with Move { kind; _ } -> [ kind ] | _ -> [])
  @ List.concat_map moves t.children

(** Output column layout in execution order. *)
let rec output_layout t : int list =
  match t.op, t.children with
  | Serial p, children ->
    (match p, children with
     | Memo.Physop.Table_scan { cols; _ }, _ -> Array.to_list cols
     | Memo.Physop.Filter _, [ c ] -> output_layout c
     | Memo.Physop.Compute defs, _ -> List.map fst defs
     | ( Memo.Physop.Hash_join { kind; _ } | Memo.Physop.Merge_join { kind; _ }
       | Memo.Physop.Nl_join { kind; _ } ), [ l; r ] ->
       (match kind with
        | Relop.Semi | Relop.Anti_semi -> output_layout l
        | _ -> output_layout l @ output_layout r)
     | (Memo.Physop.Hash_agg { keys; aggs } | Memo.Physop.Stream_agg { keys; aggs }), _ ->
       keys @ List.map (fun a -> a.Expr.agg_out) aggs
     | Memo.Physop.Sort_op _, [ c ] -> output_layout c
     | Memo.Physop.Union_op, [ l; _ ] -> output_layout l
     | Memo.Physop.Const_empty cols, _ -> cols
     | _ -> invalid_arg "Pplan.output_layout: malformed serial node")
  | Move { cols; _ }, _ -> cols
  | Return _, [ c ] -> output_layout c
  | Return _, _ -> invalid_arg "Pplan.output_layout: malformed return"
