type reason = Deadline | Cancel | Memo_budget

let reason_to_string = function
  | Deadline -> "deadline"
  | Cancel -> "cancel"
  | Memo_budget -> "memo_budget"

exception Cancelled of { reason : reason; where : string }

(* A token is shared across domains (the statement's caller arms it, pool
   workers may observe it), so the flag and deadline list are lock-free
   atomics: [state]/[should_stop] are safe to call from any domain with no
   mutex — the optimizer polls at task granularity (per rule / per level /
   per step) and a poll must never serialize the pool. The deadline list is
   append-only via CAS. *)
type token = {
  live : bool;
  cancelled : bool Atomic.t;
  deadlines : (float * (unit -> float)) list Atomic.t;
}

let none = { live = false; cancelled = Atomic.make false; deadlines = Atomic.make [] }

let create () =
  { live = true; cancelled = Atomic.make false; deadlines = Atomic.make [] }

let wall_clock = Obs.default_clock

let add_deadline t ~clock ~deadline =
  if t.live then begin
    let rec push () =
      let cur = Atomic.get t.deadlines in
      if not (Atomic.compare_and_set t.deadlines cur ((deadline, clock) :: cur))
      then push ()
    in
    push ()
  end

let cancel t = if t.live then Atomic.set t.cancelled true

let state t =
  if not t.live then None
  else if Atomic.get t.cancelled then Some Cancel
  else if
    List.exists (fun (d, clock) -> clock () >= d) (Atomic.get t.deadlines)
  then Some Deadline
  else None

let should_stop t = state t <> None

let poll ?(where = "governor") t =
  match state t with
  | None -> ()
  | Some reason -> raise (Cancelled { reason; where })

type limits = {
  deadline : float option;
  sim_deadline : float option;
  max_memo_groups : int option;
}

let no_limits = { deadline = None; sim_deadline = None; max_memo_groups = None }

module Gate = struct
  type rejection = { running : int; queued : int; queue_limit : int }

  exception Rejected of rejection

  type stats = {
    admitted : int;
    queued_total : int;
    rejected : int;
    peak_running : int;
  }

  type t = {
    mu : Mutex.t;
    cond : Condition.t;
    max_concurrent : int;
    queue_limit : int;
    mutable running : int;
    mutable waiting : int;
    (* FIFO by ticket number: waiters draw [next_ticket] and run when
       [serving] reaches their ticket, so release order matches arrival
       order regardless of which domain the condition wakes first. *)
    mutable next_ticket : int;
    mutable serving : int;
    mutable admitted : int;
    mutable queued_total : int;
    mutable rejected : int;
    mutable peak_running : int;
  }

  let create ?(max_concurrent = 4) ?(queue_limit = 16) () =
    if max_concurrent < 1 then invalid_arg "Governor.Gate.create: max_concurrent < 1";
    if queue_limit < 0 then invalid_arg "Governor.Gate.create: queue_limit < 0";
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      max_concurrent;
      queue_limit;
      running = 0;
      waiting = 0;
      next_ticket = 0;
      serving = 0;
      admitted = 0;
      queued_total = 0;
      rejected = 0;
      peak_running = 0;
    }

  let note_running_locked t =
    t.running <- t.running + 1;
    t.admitted <- t.admitted + 1;
    if t.running > t.peak_running then t.peak_running <- t.running

  (* Returns [Ok had_to_wait] holding a slot, or the structured overflow. *)
  let acquire t =
    Mutex.lock t.mu;
    if t.running < t.max_concurrent && t.waiting = 0 then begin
      note_running_locked t;
      Mutex.unlock t.mu;
      Ok false
    end
    else if t.waiting >= t.queue_limit then begin
      let r =
        { running = t.running; queued = t.waiting; queue_limit = t.queue_limit }
      in
      t.rejected <- t.rejected + 1;
      Mutex.unlock t.mu;
      Error r
    end
    else begin
      let ticket = t.next_ticket in
      t.next_ticket <- ticket + 1;
      t.waiting <- t.waiting + 1;
      t.queued_total <- t.queued_total + 1;
      while not (t.serving = ticket && t.running < t.max_concurrent) do
        Condition.wait t.cond t.mu
      done;
      t.serving <- ticket + 1;
      t.waiting <- t.waiting - 1;
      note_running_locked t;
      (* The next ticket in line may also fit if more slots are free. *)
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      Ok true
    end

  let release t =
    Mutex.lock t.mu;
    t.running <- t.running - 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu

  let try_admit ?(obs = Obs.null) t f =
    let acquired =
      if Obs.enabled obs then
        Obs.with_span obs "governor.wait" (fun () -> acquire t)
      else acquire t
    in
    match acquired with
    | Error r ->
      Obs.add obs "governor.rejected" 1;
      Error r
    | Ok waited ->
      Obs.add obs "governor.admitted" 1;
      if waited then Obs.add obs "governor.queue_waits" 1;
      Ok (Fun.protect ~finally:(fun () -> release t) f)

  let admit ?obs t f =
    match try_admit ?obs t f with
    | Ok v -> v
    | Error r -> raise (Rejected r)

  let with_locked t f =
    Mutex.lock t.mu;
    let v = f () in
    Mutex.unlock t.mu;
    v

  let running t = with_locked t (fun () -> t.running)
  let queued t = with_locked t (fun () -> t.waiting)
  let max_concurrent t = t.max_concurrent
  let queue_limit t = t.queue_limit

  let stats t =
    with_locked t (fun () ->
        {
          admitted = t.admitted;
          queued_total = t.queued_total;
          rejected = t.rejected;
          peak_running = t.peak_running;
        })

  let reset_stats t =
    with_locked t (fun () ->
        t.admitted <- 0;
        t.queued_total <- 0;
        t.rejected <- 0;
        t.peak_running <- t.running)
end

module Breaker = struct
  type state = Closed | Open | Half_open

  type stats = { trips : int; shed : int; probes : int; closes : int }

  type entry = {
    mutable st : state;
    mutable until : float;       (* cooldown end, meaningful when [Open] *)
    mutable failures : int;      (* consecutive failure streak when [Closed] *)
  }

  type t = {
    mu : Mutex.t;
    threshold : int;
    cooldown : float;
    clock : unit -> float;
    entries : (string, entry) Hashtbl.t;
    mutable trips : int;
    mutable shed : int;
    mutable probes : int;
    mutable closes : int;
  }

  let create ?(threshold = 3) ?(cooldown = 1.0) ~clock () =
    {
      mu = Mutex.create ();
      threshold;
      cooldown;
      clock;
      entries = Hashtbl.create 16;
      trips = 0;
      shed = 0;
      probes = 0;
      closes = 0;
    }

  let enabled t = t.threshold > 0

  let entry_locked t key =
    match Hashtbl.find_opt t.entries key with
    | Some e -> e
    | None ->
      let e = { st = Closed; until = 0.; failures = 0 } in
      Hashtbl.replace t.entries key e;
      e

  let check ?(obs = Obs.null) t key =
    if not (enabled t) then `Proceed
    else begin
      Mutex.lock t.mu;
      let verdict =
        match Hashtbl.find_opt t.entries key with
        | None -> `Proceed
        | Some e -> (
          match e.st with
          | Closed -> `Proceed
          | Open ->
            let now = t.clock () in
            if now >= e.until then begin
              e.st <- Half_open;
              t.probes <- t.probes + 1;
              `Probe
            end
            else begin
              t.shed <- t.shed + 1;
              `Shed (e.until -. now)
            end
          | Half_open ->
            (* Another probe is already in flight; shed without a wait
               estimate. *)
            t.shed <- t.shed + 1;
            `Shed 0.)
      in
      Mutex.unlock t.mu;
      match verdict with
      | `Probe ->
        Obs.add obs "governor.breaker_probes" 1;
        `Proceed
      | `Shed remaining ->
        Obs.add obs "governor.shed" 1;
        `Shed remaining
      | `Proceed -> `Proceed
    end

  let success t key =
    if enabled t then begin
      Mutex.lock t.mu;
      (match Hashtbl.find_opt t.entries key with
      | None -> ()
      | Some e ->
        if e.st = Half_open then t.closes <- t.closes + 1;
        e.st <- Closed;
        e.failures <- 0);
      Mutex.unlock t.mu
    end

  let failure ?(obs = Obs.null) t key =
    if enabled t then begin
      Mutex.lock t.mu;
      let e = entry_locked t key in
      let tripped =
        match e.st with
        | Half_open ->
          (* Failed probe: straight back to cooldown. *)
          e.st <- Open;
          e.until <- t.clock () +. t.cooldown;
          e.failures <- 0;
          true
        | Closed ->
          e.failures <- e.failures + 1;
          if e.failures >= t.threshold then begin
            e.st <- Open;
            e.until <- t.clock () +. t.cooldown;
            e.failures <- 0;
            true
          end
          else false
        | Open -> false
      in
      if tripped then t.trips <- t.trips + 1;
      Mutex.unlock t.mu;
      if tripped then Obs.add obs "governor.breaker_trips" 1
    end

  let state t key =
    Mutex.lock t.mu;
    let st =
      match Hashtbl.find_opt t.entries key with
      | None -> Closed
      | Some e -> e.st
    in
    Mutex.unlock t.mu;
    st

  let stats t =
    Mutex.lock t.mu;
    let s = { trips = t.trips; shed = t.shed; probes = t.probes; closes = t.closes } in
    Mutex.unlock t.mu;
    s

  let reset_stats t =
    Mutex.lock t.mu;
    t.trips <- 0;
    t.shed <- 0;
    t.probes <- 0;
    t.closes <- 0;
    Mutex.unlock t.mu

  let reset t =
    Mutex.lock t.mu;
    Hashtbl.reset t.entries;
    t.trips <- 0;
    t.shed <- 0;
    t.probes <- 0;
    t.closes <- 0;
    Mutex.unlock t.mu
end
