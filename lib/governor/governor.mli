(** Resource governor: admission control, statement deadlines, cooperative
    cancellation, and circuit breaking for the statement pipeline.

    The north-star workload is heavy concurrent traffic; without
    governance a single pathological statement can monopolize the
    optimizer or the appliance with no deadline and no backpressure. The
    paper itself bounds optimization work (the task budget of §3.1); this
    module generalizes that idea to the whole statement lifecycle:

    - {!type:token} — a per-statement cancellation token carrying an
      explicit cancel flag plus any number of deadlines, each measured
      against its own clock (wall clock for compile time, the appliance's
      simulated clock for execution time). Work sites call the cheap
      {!poll} ({!should_stop} for non-raising callers) at task
      granularity: per transformation rule in the serial optimizer, per
      group in the PDW enumeration, per injectable step in the engine.
    - {!Gate} — a bounded concurrent-statement gate with a FIFO wait
      queue; overflow is reported as a structured {!Gate.rejection},
      never an unexplained exception, and the slot release is
      bracket-style on every exit path.
    - {!Breaker} — a per-statement-fingerprint circuit breaker:
      consecutive hard failures open it, a cooldown (charged to whatever
      clock the caller supplies — the simulated clock in the appliance)
      half-opens it for a single probe.

    Everything here is layering-neutral (depends only on {!Obs}) so the
    token can thread through [Serialopt], [Pdwopt] and [Engine] without
    dependency cycles. The degradation ladder built on top of these
    pieces (cached → full → anytime → baseline → rejected) lives in
    [Opdw]. *)

(** Why a statement was interrupted. [Memo_budget] is set by the serial
    optimizer when the memo-size budget (not the token) trips. *)
type reason = Deadline | Cancel | Memo_budget

val reason_to_string : reason -> string

(** Raised by {!poll} (and by the work sites that call it) when the
    token's deadline passed or it was cancelled. [where] names the site
    for diagnostics (e.g. ["pdw.enumerate"], ["engine.step"]). *)
exception Cancelled of { reason : reason; where : string }

(** A cancellation token: one per statement, shared by every layer
    working on that statement. *)
type token

(** The inert token: never cancelled, no deadlines, {!poll} is a no-op.
    Layers default to it so ungoverned callers pay (almost) nothing. *)
val none : token

(** A fresh live token with no deadlines. *)
val create : unit -> token

(** The wall clock (seconds); the default clock for compile-time
    deadlines. *)
val wall_clock : unit -> float

(** [add_deadline t ~clock ~deadline] arms a deadline: the token trips
    once [clock () >= deadline]. A token may carry several deadlines on
    different clocks (wall clock for optimization, the appliance's
    simulated clock for execution). No-op on {!none}. *)
val add_deadline : token -> clock:(unit -> float) -> deadline:float -> unit

(** Cooperatively cancel the statement; takes effect at the next poll.
    No-op on {!none}. *)
val cancel : token -> unit

(** Why the token is tripped, or [None]. Cheap: a flag read plus one
    clock call per armed deadline. Deterministic whenever every armed
    clock is (e.g. the simulated clock). *)
val state : token -> reason option

(** Non-raising poll for anytime call sites (the serial optimizer stops
    exploring and keeps the memo consistent rather than unwinding). *)
val should_stop : token -> bool

(** Raising poll for call sites that unwind ({!Cancelled}); the PDW
    enumeration and the engine's step wrapper use it. Never corrupts
    shared state by construction: it is called {e between} tasks. *)
val poll : ?where:string -> token -> unit

(** Per-statement governor knobs, carried in [Opdw.options] and part of
    the plan-cache fingerprint (v3): plans compiled under different
    budgets must not alias. *)
type limits = {
  deadline : float option;      (** wall-clock seconds per statement *)
  sim_deadline : float option;  (** simulated-clock seconds per execution *)
  max_memo_groups : int option; (** memo-size budget for serial exploration *)
}

(** No deadline, no memo budget. *)
val no_limits : limits

(** Bounded concurrent-statement gate with a FIFO wait queue. *)
module Gate : sig
  type t

  (** The structured overflow answer: the gate's occupancy at rejection
      time. *)
  type rejection = { running : int; queued : int; queue_limit : int }

  exception Rejected of rejection

  (** Monotonic counters (reset via {!reset_stats}). [queued_total]
      counts admissions that had to wait; [peak_running] never exceeds
      [max_concurrent] (the leak test's invariant). *)
  type stats = {
    admitted : int;
    queued_total : int;
    rejected : int;
    peak_running : int;
  }

  (** [create ~max_concurrent ~queue_limit ()] — at most
      [max_concurrent] statements run at once; up to [queue_limit] more
      wait in FIFO order; beyond that, admission is rejected. *)
  val create : ?max_concurrent:int -> ?queue_limit:int -> unit -> t

  (** [admit t f] runs [f ()] holding one slot, waiting in FIFO order if
      the gate is full. The slot is released whether [f] returns or
      raises (bracket-style). Raises {!Rejected} when the wait queue is
      full. Reports [governor.admitted] / [governor.queue_waits] /
      [governor.rejected] into [obs]; the wait runs under a
      [governor.wait] span. *)
  val admit : ?obs:Obs.t -> t -> (unit -> 'a) -> 'a

  (** Like {!admit} but returns the overflow as a value. [f]'s own
      exceptions still propagate (with the slot released). *)
  val try_admit : ?obs:Obs.t -> t -> (unit -> 'a) -> ('a, rejection) result

  val running : t -> int
  val queued : t -> int
  val max_concurrent : t -> int
  val queue_limit : t -> int
  val stats : t -> stats

  (** Zero the counters (not the occupancy) — the per-iteration metric
      reset shared by the CLI's [--repeat] and the bench harness. *)
  val reset_stats : t -> unit
end

(** Per-key (statement fingerprint) circuit breaker. *)
module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  type stats = {
    trips : int;       (** transitions to [Open] *)
    shed : int;        (** checks answered [`Shed] *)
    probes : int;      (** half-open probes admitted *)
    closes : int;      (** probe successes that re-closed the breaker *)
  }

  (** [create ~threshold ~cooldown ~clock ()] — [threshold] consecutive
      {!failure}s on one key open the breaker for [cooldown] seconds of
      [clock] (the appliance passes its simulated clock, so the cooldown
      is charged to simulated time and is deterministic). A [threshold]
      of 0 or less disables the breaker: {!check} always proceeds. *)
  val create : ?threshold:int -> ?cooldown:float -> clock:(unit -> float) -> unit -> t

  (** Consult the breaker before running [key]. [`Shed remaining] means
      the breaker is open ([remaining] seconds of cooldown left, [0.]
      when another probe is already in flight). After the cooldown one
      caller gets [`Proceed] as the half-open probe; its
      {!success}/{!failure} closes or re-opens the breaker. Reports
      [governor.shed] / [governor.breaker_probes] into [obs]. *)
  val check : ?obs:Obs.t -> t -> string -> [ `Proceed | `Shed of float ]

  (** The statement keyed [key] completed (resets the failure streak;
      closes a half-open breaker). *)
  val success : t -> string -> unit

  (** The statement keyed [key] failed hard ([Fault.Exhausted] or a
      {!Check} rejection — deadline trips are not breaker failures).
      Reports [governor.breaker_trips] when this opens the breaker. *)
  val failure : ?obs:Obs.t -> t -> string -> unit

  val state : t -> string -> state
  val stats : t -> stats

  (** Zero the counters, keeping per-key breaker states. *)
  val reset_stats : t -> unit

  (** Forget every key and zero the counters. *)
  val reset : t -> unit
end
