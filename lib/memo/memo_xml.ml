(** XML encoding of the MEMO (paper Fig. 2, component 3: "XML generator",
    and component 4's "PDW memo parser").

    The encoding carries the full search space: the column registry (with
    NDVs, so the PDW side can reason about group-by and join key
    distinctness), every group with its statistics (global cardinality Y
    and row width w), and every logical and physical group expression. *)

open Algebra

(* -- scalar expression encoding -- *)

let string_of_ty = Catalog.Types.to_string

let ty_of_string = function
  | "int" -> Catalog.Types.Tint
  | "float" -> Catalog.Types.Tfloat
  | "varchar" -> Catalog.Types.Tstring
  | "bool" -> Catalog.Types.Tbool
  | "date" -> Catalog.Types.Tdate
  | s -> raise (Xml.Xml_error ("unknown type " ^ s))

let value_to_attrs (v : Catalog.Value.t) =
  match v with
  | Catalog.Value.Null -> [ ("t", "null") ]
  | Catalog.Value.Int x -> [ ("t", "int"); ("v", string_of_int x) ]
  | Catalog.Value.Float x -> [ ("t", "float"); ("v", Printf.sprintf "%h" x) ]
  | Catalog.Value.String s -> [ ("t", "str"); ("v", s) ]
  | Catalog.Value.Bool b -> [ ("t", "bool"); ("v", if b then "1" else "0") ]
  | Catalog.Value.Date d -> [ ("t", "date"); ("v", string_of_int d) ]

let value_of_node n =
  match Xml.attr n "t" with
  | "null" -> Catalog.Value.Null
  | "int" -> Catalog.Value.Int (int_of_string (Xml.attr n "v"))
  | "float" -> Catalog.Value.Float (float_of_string (Xml.attr n "v"))
  | "str" -> Catalog.Value.String (Xml.attr n "v")
  | "bool" -> Catalog.Value.Bool (Xml.attr n "v" = "1")
  | "date" -> Catalog.Value.Date (int_of_string (Xml.attr n "v"))
  | t -> raise (Xml.Xml_error ("unknown value type " ^ t))

let binop_name = function
  | Expr.Add -> "add" | Expr.Sub -> "sub" | Expr.Mul -> "mul" | Expr.Div -> "div"
  | Expr.Mod -> "mod" | Expr.Eq -> "eq" | Expr.Ne -> "ne" | Expr.Lt -> "lt"
  | Expr.Le -> "le" | Expr.Gt -> "gt" | Expr.Ge -> "ge" | Expr.And -> "and"
  | Expr.Or -> "or"

let binop_of_name = function
  | "add" -> Expr.Add | "sub" -> Expr.Sub | "mul" -> Expr.Mul | "div" -> Expr.Div
  | "mod" -> Expr.Mod | "eq" -> Expr.Eq | "ne" -> Expr.Ne | "lt" -> Expr.Lt
  | "le" -> Expr.Le | "gt" -> Expr.Gt | "ge" -> Expr.Ge | "and" -> Expr.And
  | "or" -> Expr.Or
  | s -> raise (Xml.Xml_error ("unknown binop " ^ s))

let func_name = function
  | Expr.F_dateadd_year -> "dateadd_year" | Expr.F_dateadd_month -> "dateadd_month"
  | Expr.F_dateadd_day -> "dateadd_day" | Expr.F_year -> "year"
  | Expr.F_substring -> "substring" | Expr.F_abs -> "abs"

let func_of_name = function
  | "dateadd_year" -> Expr.F_dateadd_year | "dateadd_month" -> Expr.F_dateadd_month
  | "dateadd_day" -> Expr.F_dateadd_day | "year" -> Expr.F_year
  | "substring" -> Expr.F_substring | "abs" -> Expr.F_abs
  | s -> raise (Xml.Xml_error ("unknown func " ^ s))

let agg_name = function
  | Expr.Count_star -> "count_star" | Expr.Count -> "count" | Expr.Sum -> "sum"
  | Expr.Avg -> "avg" | Expr.Min -> "min" | Expr.Max -> "max"

let agg_of_name = function
  | "count_star" -> Expr.Count_star | "count" -> Expr.Count | "sum" -> Expr.Sum
  | "avg" -> Expr.Avg | "min" -> Expr.Min | "max" -> Expr.Max
  | s -> raise (Xml.Xml_error ("unknown aggregate " ^ s))

let rec expr_to_xml (e : Expr.t) : Xml.node =
  let n ?(attrs = []) ?(children = []) k =
    Xml.node ~attrs:(("k", k) :: attrs) ~children "e"
  in
  match e with
  | Expr.Col c -> n ~attrs:[ ("id", string_of_int c) ] "col"
  | Expr.Lit v -> n ~attrs:(value_to_attrs v) "lit"
  | Expr.Bin (op, a, b) ->
    n ~attrs:[ ("op", binop_name op) ] ~children:[ expr_to_xml a; expr_to_xml b ] "bin"
  | Expr.Un (Expr.Neg, a) -> n ~attrs:[ ("op", "neg") ] ~children:[ expr_to_xml a ] "un"
  | Expr.Un (Expr.Not, a) -> n ~attrs:[ ("op", "not") ] ~children:[ expr_to_xml a ] "un"
  | Expr.Is_null (a, neg) ->
    n ~attrs:[ ("neg", if neg then "1" else "0") ] ~children:[ expr_to_xml a ] "isnull"
  | Expr.Like (a, pat, neg) ->
    n ~attrs:[ ("pat", pat); ("neg", if neg then "1" else "0") ]
      ~children:[ expr_to_xml a ] "like"
  | Expr.In_list (a, items, neg) ->
    n ~attrs:[ ("neg", if neg then "1" else "0") ]
      ~children:(expr_to_xml a :: List.map (fun v -> Xml.node ~attrs:(value_to_attrs v) "v") items)
      "inlist"
  | Expr.Case (branches, else_) ->
    let b =
      List.map
        (fun (c, v) -> Xml.node ~children:[ expr_to_xml c; expr_to_xml v ] "when")
        branches
    in
    let e_ = match else_ with
      | Some e -> [ Xml.node ~children:[ expr_to_xml e ] "else" ]
      | None -> []
    in
    n ~children:(b @ e_) "case"
  | Expr.Func (f, args) ->
    n ~attrs:[ ("f", func_name f) ] ~children:(List.map expr_to_xml args) "func"
  | Expr.Cast (a, ty) ->
    n ~attrs:[ ("t", string_of_ty ty) ] ~children:[ expr_to_xml a ] "cast"

let rec expr_of_xml (n : Xml.node) : Expr.t =
  let kids () = List.filter (fun c -> c.Xml.tag = "e") n.Xml.children in
  match Xml.attr n "k" with
  | "col" -> Expr.Col (int_of_string (Xml.attr n "id"))
  | "lit" -> Expr.Lit (value_of_node n)
  | "bin" ->
    (match kids () with
     | [ a; b ] -> Expr.Bin (binop_of_name (Xml.attr n "op"), expr_of_xml a, expr_of_xml b)
     | _ -> raise (Xml.Xml_error "bin expects 2 children"))
  | "un" ->
    (match kids () with
     | [ a ] ->
       let op = if Xml.attr n "op" = "neg" then Expr.Neg else Expr.Not in
       Expr.Un (op, expr_of_xml a)
     | _ -> raise (Xml.Xml_error "un expects 1 child"))
  | "isnull" ->
    (match kids () with
     | [ a ] -> Expr.Is_null (expr_of_xml a, Xml.attr n "neg" = "1")
     | _ -> raise (Xml.Xml_error "isnull expects 1 child"))
  | "like" ->
    (match kids () with
     | [ a ] -> Expr.Like (expr_of_xml a, Xml.attr n "pat", Xml.attr n "neg" = "1")
     | _ -> raise (Xml.Xml_error "like expects 1 child"))
  | "inlist" ->
    (match kids () with
     | [ a ] ->
       let items = List.map value_of_node (Xml.children_named n "v") in
       Expr.In_list (expr_of_xml a, items, Xml.attr n "neg" = "1")
     | _ -> raise (Xml.Xml_error "inlist expects 1 expression child"))
  | "case" ->
    let branches =
      List.map
        (fun w ->
           match w.Xml.children with
           | [ c; v ] -> (expr_of_xml c, expr_of_xml v)
           | _ -> raise (Xml.Xml_error "when expects 2 children"))
        (Xml.children_named n "when")
    in
    let else_ =
      match Xml.child_opt n "else" with
      | Some e ->
        (match e.Xml.children with
         | [ v ] -> Some (expr_of_xml v)
         | _ -> raise (Xml.Xml_error "else expects 1 child"))
      | None -> None
    in
    Expr.Case (branches, else_)
  | "func" -> Expr.Func (func_of_name (Xml.attr n "f"), List.map expr_of_xml (kids ()))
  | "cast" ->
    (match kids () with
     | [ a ] -> Expr.Cast (expr_of_xml a, ty_of_string (Xml.attr n "t"))
     | _ -> raise (Xml.Xml_error "cast expects 1 child"))
  | k -> raise (Xml.Xml_error ("unknown expression kind " ^ k))

let agg_to_xml (a : Expr.agg_def) =
  Xml.node
    ~attrs:
      [ ("out", string_of_int a.Expr.agg_out);
        ("f", agg_name a.Expr.agg_func);
        ("distinct", if a.Expr.agg_distinct then "1" else "0") ]
    ~children:(match a.Expr.agg_arg with Some e -> [ expr_to_xml e ] | None -> [])
    "agg"

let agg_of_xml n =
  { Expr.agg_out = int_of_string (Xml.attr n "out");
    agg_func = agg_of_name (Xml.attr n "f");
    agg_distinct = Xml.attr n "distinct" = "1";
    agg_arg =
      (match n.Xml.children with
       | [ e ] -> Some (expr_of_xml e)
       | [] -> None
       | _ -> raise (Xml.Xml_error "agg expects at most 1 child")) }

let sort_key_to_xml (k : Relop.sort_key) =
  Xml.node ~attrs:[ ("desc", if k.Relop.desc then "1" else "0") ]
    ~children:[ expr_to_xml k.Relop.key ] "sk"

let sort_key_of_xml n =
  match n.Xml.children with
  | [ e ] -> { Relop.key = expr_of_xml e; desc = Xml.attr n "desc" = "1" }
  | _ -> raise (Xml.Xml_error "sk expects 1 child")

let ints_to_attr l = String.concat "," (List.map string_of_int l)
let ints_of_attr s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let join_kind_name = function
  | Relop.Inner -> "inner" | Relop.Cross -> "cross" | Relop.Semi -> "semi"
  | Relop.Anti_semi -> "antisemi" | Relop.Left_outer -> "leftouter"

let join_kind_of_name = function
  | "inner" -> Relop.Inner | "cross" -> Relop.Cross | "semi" -> Relop.Semi
  | "antisemi" -> Relop.Anti_semi | "leftouter" -> Relop.Left_outer
  | s -> raise (Xml.Xml_error ("unknown join kind " ^ s))

(* -- operator encoding -- *)

let defs_to_children defs =
  List.map
    (fun (c, e) ->
       Xml.node ~attrs:[ ("out", string_of_int c) ] ~children:[ expr_to_xml e ] "def")
    defs

let defs_of_node n =
  List.map
    (fun d ->
       match d.Xml.children with
       | [ e ] -> (int_of_string (Xml.attr d "out"), expr_of_xml e)
       | _ -> raise (Xml.Xml_error "def expects 1 child"))
    (Xml.children_named n "def")

let op_to_xml (op : Memo_def.op) (children : int list) : Xml.node =
  let mk name ?(attrs = []) ?(body = []) () =
    Xml.node
      ~attrs:(("op", name) :: ("children", ints_to_attr children) :: attrs)
      ~children:body "expr"
  in
  let pred_child p = [ Xml.node ~children:[ expr_to_xml p ] "pred" ] in
  match op with
  | Memo_def.Logical l ->
    (match l with
     | Relop.Get { table; alias; cols } ->
       mk "Get" ~attrs:[ ("table", table); ("alias", alias);
                         ("cols", ints_to_attr (Array.to_list cols)) ] ()
     | Relop.Select p -> mk "Select" ~body:(pred_child p) ()
     | Relop.Project defs -> mk "Project" ~body:(defs_to_children defs) ()
     | Relop.Join { kind; pred } ->
       mk "Join" ~attrs:[ ("kind", join_kind_name kind) ] ~body:(pred_child pred) ()
     | Relop.Group_by { keys; aggs } ->
       mk "GroupBy" ~attrs:[ ("keys", ints_to_attr keys) ]
         ~body:(List.map agg_to_xml aggs) ()
     | Relop.Sort { keys; limit } ->
       mk "Sort"
         ~attrs:(match limit with Some l -> [ ("limit", string_of_int l) ] | None -> [])
         ~body:(List.map sort_key_to_xml keys) ()
     | Relop.Union_all -> mk "UnionAll" ()
     | Relop.Empty cols -> mk "Empty" ~attrs:[ ("cols", ints_to_attr cols) ] ())
  | Memo_def.Physical p ->
    (match p with
     | Physop.Table_scan { table; alias; cols } ->
       mk "TableScan" ~attrs:[ ("table", table); ("alias", alias);
                               ("cols", ints_to_attr (Array.to_list cols)) ] ()
     | Physop.Filter e -> mk "Filter" ~body:(pred_child e) ()
     | Physop.Compute defs -> mk "Compute" ~body:(defs_to_children defs) ()
     | Physop.Hash_join { kind; pred } ->
       mk "HashJoin" ~attrs:[ ("kind", join_kind_name kind) ] ~body:(pred_child pred) ()
     | Physop.Merge_join { kind; pred } ->
       mk "MergeJoin" ~attrs:[ ("kind", join_kind_name kind) ] ~body:(pred_child pred) ()
     | Physop.Nl_join { kind; pred } ->
       mk "NestedLoopJoin" ~attrs:[ ("kind", join_kind_name kind) ] ~body:(pred_child pred) ()
     | Physop.Hash_agg { keys; aggs } ->
       mk "HashAggregate" ~attrs:[ ("keys", ints_to_attr keys) ]
         ~body:(List.map agg_to_xml aggs) ()
     | Physop.Stream_agg { keys; aggs } ->
       mk "StreamAggregate" ~attrs:[ ("keys", ints_to_attr keys) ]
         ~body:(List.map agg_to_xml aggs) ()
     | Physop.Sort_op { keys; limit } ->
       mk "PhysicalSort"
         ~attrs:(match limit with Some l -> [ ("limit", string_of_int l) ] | None -> [])
         ~body:(List.map sort_key_to_xml keys) ()
     | Physop.Union_op -> mk "PhysUnionAll" ()
     | Physop.Const_empty cols -> mk "ConstEmpty" ~attrs:[ ("cols", ints_to_attr cols) ] ())

let op_of_xml (n : Xml.node) : Memo_def.op * int array =
  let children = Array.of_list (ints_of_attr (Xml.attr n "children")) in
  let pred () =
    match (Xml.child n "pred").Xml.children with
    | [ e ] -> expr_of_xml e
    | _ -> raise (Xml.Xml_error "pred expects 1 child")
  in
  let aggs () = List.map agg_of_xml (Xml.children_named n "agg") in
  let sort_keys () = List.map sort_key_of_xml (Xml.children_named n "sk") in
  let keys () = ints_of_attr (Xml.attr n "keys") in
  let cols_arr () = Array.of_list (ints_of_attr (Xml.attr n "cols")) in
  let limit () = Option.map int_of_string (Xml.attr_opt n "limit") in
  let kind () = join_kind_of_name (Xml.attr n "kind") in
  let op =
    match Xml.attr n "op" with
    | "Get" ->
      Memo_def.Logical (Relop.Get { table = Xml.attr n "table"; alias = Xml.attr n "alias";
                                cols = cols_arr () })
    | "Select" -> Memo_def.Logical (Relop.Select (pred ()))
    | "Project" -> Memo_def.Logical (Relop.Project (defs_of_node n))
    | "Join" -> Memo_def.Logical (Relop.Join { kind = kind (); pred = pred () })
    | "GroupBy" -> Memo_def.Logical (Relop.Group_by { keys = keys (); aggs = aggs () })
    | "Sort" -> Memo_def.Logical (Relop.Sort { keys = sort_keys (); limit = limit () })
    | "UnionAll" -> Memo_def.Logical Relop.Union_all
    | "PhysUnionAll" -> Memo_def.Physical Physop.Union_op
    | "Empty" -> Memo_def.Logical (Relop.Empty (ints_of_attr (Xml.attr n "cols")))
    | "TableScan" ->
      Memo_def.Physical (Physop.Table_scan { table = Xml.attr n "table";
                                         alias = Xml.attr n "alias"; cols = cols_arr () })
    | "Filter" -> Memo_def.Physical (Physop.Filter (pred ()))
    | "Compute" -> Memo_def.Physical (Physop.Compute (defs_of_node n))
    | "HashJoin" -> Memo_def.Physical (Physop.Hash_join { kind = kind (); pred = pred () })
    | "MergeJoin" -> Memo_def.Physical (Physop.Merge_join { kind = kind (); pred = pred () })
    | "NestedLoopJoin" -> Memo_def.Physical (Physop.Nl_join { kind = kind (); pred = pred () })
    | "HashAggregate" -> Memo_def.Physical (Physop.Hash_agg { keys = keys (); aggs = aggs () })
    | "StreamAggregate" ->
      Memo_def.Physical (Physop.Stream_agg { keys = keys (); aggs = aggs () })
    | "PhysicalSort" ->
      Memo_def.Physical (Physop.Sort_op { keys = sort_keys (); limit = limit () })
    | "ConstEmpty" -> Memo_def.Physical (Physop.Const_empty (ints_of_attr (Xml.attr n "cols")))
    | op -> raise (Xml.Xml_error ("unknown operator " ^ op))
  in
  (op, children)

(* -- whole memo -- *)

let source_to_attrs = function
  | Registry.Base { table; alias; column } ->
    [ ("src", "base"); ("table", table); ("salias", alias); ("column", column) ]
  | Registry.Derived d -> [ ("src", "derived"); ("desc", d) ]

let export (m : Memo_def.t) : Xml.node =
  let cols = ref [] in
  for id = Registry.count m.Memo_def.reg - 1 downto 0 do
    let info = Registry.info m.Memo_def.reg id in
    let ndv =
      match Registry.stats m.Memo_def.reg id with
      | Some s -> s.Catalog.Col_stats.ndv
      | None -> 0.
    in
    cols :=
      Xml.node
        ~attrs:
          ([ ("id", string_of_int id);
             ("name", info.Registry.name);
             ("type", string_of_ty info.Registry.ty);
             ("width", Printf.sprintf "%g" info.Registry.width);
             ("ndv", Printf.sprintf "%g" ndv) ]
           @ source_to_attrs info.Registry.source)
        "col"
      :: !cols
  done;
  let groups = ref [] in
  Memo_def.iter_groups m (fun g ->
      let exprs =
        List.map
          (fun (e : Memo_def.gexpr) ->
             op_to_xml e.Memo_def.op
               (List.map (fun c -> Memo_def.find m c) (Array.to_list e.Memo_def.children)))
          (List.rev g.Memo_def.exprs)
      in
      groups :=
        Xml.node
          ~attrs:
            [ ("id", string_of_int g.Memo_def.gid);
              ("card", Printf.sprintf "%h" g.Memo_def.props.Memo_def.card);
              ("width", Printf.sprintf "%h" g.Memo_def.props.Memo_def.width);
              ("cols", ints_to_attr (Registry.Col_set.elements g.Memo_def.props.Memo_def.cols)) ]
          ~children:exprs "group"
        :: !groups);
  Xml.node
    ~attrs:[ ("root", string_of_int (Memo_def.root m));
             ("nodes", string_of_int (Catalog.Shell_db.node_count m.Memo_def.shell)) ]
    ~children:(Xml.node ~children:!cols "columns" :: List.rev !groups)
    "memo"

let export_string ?(obs = Obs.null) m =
  let s = Xml.to_string (export m) in
  Obs.add obs "memo_xml.bytes" (String.length s);
  Obs.add obs "memo_xml.export.groups" (Memo_def.live_groups m);
  Obs.add obs "memo_xml.export.exprs" (Memo_def.total_exprs m);
  s

(** Rebuild a MEMO (and a fresh registry) from its XML encoding. Group ids
    are remapped densely; the logical properties are taken from the file,
    not re-derived. *)
let import (shell : Catalog.Shell_db.t) (n : Xml.node) : Memo_def.t =
  if n.Xml.tag <> "memo" then raise (Xml.Xml_error "expected <memo>");
  let reg = Registry.create () in
  List.iter
    (fun c ->
       let id = int_of_string (Xml.attr c "id") in
       let source =
         match Xml.attr c "src" with
         | "base" ->
           Registry.Base { table = Xml.attr c "table"; alias = Xml.attr c "salias";
                           column = Xml.attr c "column" }
         | _ -> Registry.Derived (match Xml.attr_opt c "desc" with Some d -> d | None -> "?")
       in
       let id' =
         Registry.fresh reg ~name:(Xml.attr c "name") ~ty:(ty_of_string (Xml.attr c "type"))
           ~width:(float_of_string (Xml.attr c "width")) source
       in
       if id' <> id then raise (Xml.Xml_error "column ids must be dense and ordered");
       let ndv = float_of_string (Xml.attr c "ndv") in
       if ndv > 0. then Registry.set_stats reg id (Catalog.Col_stats.make ~ndv ()))
    (Xml.child n "columns").Xml.children;
  let m = Memo_def.create reg shell in
  let group_nodes = Xml.children_named n "group" in
  (* map original ids -> dense ids *)
  let idmap = Hashtbl.create 64 in
  List.iteri
    (fun i g -> Hashtbl.replace idmap (int_of_string (Xml.attr g "id")) i)
    group_nodes;
  let remap gid =
    match Hashtbl.find_opt idmap gid with
    | Some i -> i
    | None -> raise (Xml.Xml_error (Printf.sprintf "dangling group reference %d" gid))
  in
  (* create empty groups with given props *)
  List.iter
    (fun g ->
       ignore g;
       let gid = m.Memo_def.ngroups in
       (if gid >= Array.length m.Memo_def.groups then begin
           let bigger = Array.make (max 64 (2 * Array.length m.Memo_def.groups)) m.Memo_def.groups.(0) in
           Array.blit m.Memo_def.groups 0 bigger 0 m.Memo_def.ngroups;
           m.Memo_def.groups <- bigger
         end);
       m.Memo_def.groups.(gid) <-
         { Memo_def.gid; exprs = []; explored = false; merged_into = None;
           props = { Memo_def.cols = Registry.Col_set.empty; card = 0.; width = 0. } };
       m.Memo_def.ngroups <- gid + 1)
    group_nodes;
  List.iteri
    (fun i gnode ->
       let g = m.Memo_def.groups.(i) in
       g.Memo_def.props <-
         { Memo_def.cols = Registry.Col_set.of_list (ints_of_attr (Xml.attr gnode "cols"));
           card = float_of_string (Xml.attr gnode "card");
           width = float_of_string (Xml.attr gnode "width") };
       let exprs =
         List.map
           (fun enode ->
              let op, children = op_of_xml enode in
              let children = Array.map remap children in
              Hashtbl.replace m.Memo_def.dedup
                (op, Array.to_list children) i;
              { Memo_def.op; children })
           (Xml.children_named gnode "expr")
       in
       g.Memo_def.exprs <- List.rev exprs)
    group_nodes;
  m.Memo_def.root <- remap (int_of_string (Xml.attr n "root"));
  m

let import_string ?(obs = Obs.null) shell s =
  let m = import shell (Xml.parse s) in
  Obs.add obs "memo_xml.import.groups" (Memo_def.live_groups m);
  Obs.add obs "memo_xml.import.exprs" (Memo_def.total_exprs m);
  m
