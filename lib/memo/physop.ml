(** Serial physical operators (the white-background operators of the paper's
    Fig. 3, e.g. Table Scan, Hash Join, Sort). These are the algorithms the
    single-node executor runs; the PDW optimizer layers data movement around
    them. *)

open Algebra

type t =
  | Table_scan of { table : string; alias : string; cols : int array }
  | Filter of Expr.t
  | Compute of (int * Expr.t) list        (** physical project *)
  | Hash_join of { kind : Relop.join_kind; pred : Expr.t }
  | Merge_join of { kind : Relop.join_kind; pred : Expr.t }
      (** requires both inputs sorted on the equi-join columns *)
  | Nl_join of { kind : Relop.join_kind; pred : Expr.t }
  | Hash_agg of { keys : int list; aggs : Expr.agg_def list }
  | Stream_agg of { keys : int list; aggs : Expr.agg_def list }
      (** requires input sorted on the grouping keys *)
  | Sort_op of { keys : Relop.sort_key list; limit : int option }
  | Union_op      (** 2 children; right input pre-projected onto left ids *)
  | Const_empty of int list

let name = function
  | Table_scan _ -> "TableScan"
  | Filter _ -> "Filter"
  | Compute _ -> "Compute"
  | Hash_join { kind; _ } ->
    (match kind with
     | Relop.Inner | Relop.Cross -> "HashJoin"
     | Relop.Left_outer -> "HashLeftOuterJoin"
     | Relop.Semi -> "HashSemiJoin"
     | Relop.Anti_semi -> "HashAntiSemiJoin")
  | Merge_join _ -> "MergeJoin"
  | Nl_join _ -> "NestedLoopJoin"
  | Hash_agg _ -> "HashAggregate"
  | Stream_agg _ -> "StreamAggregate"
  | Sort_op _ -> "Sort"
  | Union_op -> "UnionAll"
  | Const_empty _ -> "ConstEmpty"

(** Equality pairs (left col, right col) of a join predicate, oriented
    against the given child output column sets. *)
let oriented_equi_pairs pred ~left_cols ~right_cols =
  List.filter_map
    (fun (a, b) ->
       if Registry.Col_set.mem a left_cols && Registry.Col_set.mem b right_cols then
         Some (a, b)
       else if Registry.Col_set.mem b left_cols && Registry.Col_set.mem a right_cols then
         Some (b, a)
       else None)
    (Expr.equi_pairs pred)

let to_string reg op =
  let e = Expr.to_string reg in
  match op with
  | Table_scan { table; alias; _ } ->
    if String.lowercase_ascii table = String.lowercase_ascii alias then
      Printf.sprintf "TableScan(%s)" table
    else Printf.sprintf "TableScan(%s AS %s)" table alias
  | Filter p -> Printf.sprintf "Filter[%s]" (e p)
  | Compute defs ->
    Printf.sprintf "Compute[%s]"
      (String.concat ", "
         (List.map (fun (c, ex) -> Printf.sprintf "%s := %s" (Registry.label reg c) (e ex)) defs))
  | Hash_join { pred; _ } as op -> Printf.sprintf "%s[%s]" (name op) (e pred)
  | Merge_join { pred; _ } -> Printf.sprintf "MergeJoin[%s]" (e pred)
  | Nl_join { pred; _ } -> Printf.sprintf "NestedLoopJoin[%s]" (e pred)
  | Hash_agg { keys; aggs } | Stream_agg { keys; aggs } ->
    Printf.sprintf "%s[keys=%s; %s]" (name op)
      (String.concat "," (List.map (Registry.label reg) keys))
      (String.concat ", " (List.map (Expr.agg_to_string_with (Registry.label reg)) aggs))
  | Sort_op { keys; limit } ->
    Printf.sprintf "Sort[%s%s]"
      (String.concat ", "
         (List.map (fun k -> e k.Relop.key ^ (if k.Relop.desc then " DESC" else " ASC")) keys))
      (match limit with Some n -> Printf.sprintf "; TOP %d" n | None -> "")
  | Union_op -> "UnionAll"
  | Const_empty _ -> "ConstEmpty"
