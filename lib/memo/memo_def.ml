(** The MEMO data structure (paper §2.5, Fig. 3 and [5, 6]): two mutually
    recursive structures, groups and groupExpressions. A group represents
    all equivalent operator trees producing the same output; a
    groupExpression is an operator whose children are groups. The MEMO
    provides duplicate detection of operator trees, logical properties
    (output columns, cardinality, row width) and cost management. *)

open Algebra

type op =
  | Logical of Relop.op
  | Physical of Physop.t

type gexpr = {
  op : op;
  children : int array;    (** group ids (canonicalize through [find]) *)
}

(** Logical properties shared by every expression of a group. *)
type lprops = {
  cols : Registry.Col_set.t;   (** output columns *)
  card : float;                (** estimated global cardinality (the paper's Y) *)
  width : float;               (** average output row width in bytes (w) *)
}

type group = {
  gid : int;
  mutable exprs : gexpr list;       (** in insertion order, reversed *)
  mutable props : lprops;
  mutable explored : bool;
  mutable merged_into : int option; (** set when this group was merged away *)
}

type t = {
  reg : Registry.t;
  shell : Catalog.Shell_db.t;
  mutable groups : group array;     (** index = gid; grows *)
  mutable ngroups : int;
  dedup : (op * int list, int) Hashtbl.t;  (** expr -> owning group *)
  mutable root : int;
}

let create reg shell =
  { reg; shell; groups = Array.make 64 { gid = -1; exprs = []; props = { cols = Registry.Col_set.empty; card = 0.; width = 0. }; explored = false; merged_into = None };
    ngroups = 0; dedup = Hashtbl.create 256; root = -1 }

(** Canonical group id (groups can be merged when a transformation proves
    two groups equivalent). *)
let rec find t gid =
  let g = t.groups.(gid) in
  match g.merged_into with
  | None -> gid
  | Some p ->
    let r = find t p in
    if r <> p then g.merged_into <- Some r;
    r

let group t gid = t.groups.(find t gid)

let ngroups t = t.ngroups

let props t gid = (group t gid).props

let exprs t gid = List.rev (group t gid).exprs

let root t = find t t.root

let iter_groups t f =
  for i = 0 to t.ngroups - 1 do
    if t.groups.(i).merged_into = None then f t.groups.(i)
  done

(* -- logical properties -- *)

let cols_of_op t (op : op) (children : int array) : Registry.Col_set.t =
  let child n = (props t children.(n)).cols in
  let open Registry in
  match op with
  | Logical (Relop.Get { cols; _ }) | Physical (Physop.Table_scan { cols; _ }) ->
    Col_set.of_list (Array.to_list cols)
  | Logical (Relop.Select _) | Physical (Physop.Filter _) -> child 0
  | Logical (Relop.Project defs) | Physical (Physop.Compute defs) ->
    Col_set.of_list (List.map fst defs)
  | Logical (Relop.Join { kind = Relop.Semi | Relop.Anti_semi; _ })
  | Physical (Physop.Hash_join { kind = Relop.Semi | Relop.Anti_semi; _ })
  | Physical (Physop.Merge_join { kind = Relop.Semi | Relop.Anti_semi; _ })
  | Physical (Physop.Nl_join { kind = Relop.Semi | Relop.Anti_semi; _ }) -> child 0
  | Logical (Relop.Join _)
  | Physical (Physop.Hash_join _ | Physop.Merge_join _ | Physop.Nl_join _) ->
    Col_set.union (child 0) (child 1)
  | Logical (Relop.Group_by { keys; aggs })
  | Physical (Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs }) ->
    Col_set.union (Col_set.of_list keys)
      (Col_set.of_list (List.map (fun a -> a.Expr.agg_out) aggs))
  | Logical (Relop.Sort _) | Physical (Physop.Sort_op _) -> child 0
  | Logical Relop.Union_all | Physical Physop.Union_op -> child 0
  | Logical (Relop.Empty cols) | Physical (Physop.Const_empty cols) ->
    Col_set.of_list cols

let card_of_op t (op : op) (children : int array) : float =
  let env = { Cardinality.reg = t.reg; shell = t.shell } in
  let child_props = Array.to_list (Array.map (fun c -> { Cardinality.card = (props t c).card }) children) in
  let logical =
    match op with
    | Logical l -> l
    | Physical p ->
      (match p with
       | Physop.Table_scan { table; alias; cols } -> Relop.Get { table; alias; cols }
       | Physop.Filter e -> Relop.Select e
       | Physop.Compute defs -> Relop.Project defs
       | Physop.Hash_join { kind; pred } | Physop.Merge_join { kind; pred }
       | Physop.Nl_join { kind; pred } -> Relop.Join { kind; pred }
       | Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs } ->
         Relop.Group_by { keys; aggs }
       | Physop.Sort_op { keys; limit } -> Relop.Sort { keys; limit }
       | Physop.Union_op -> Relop.Union_all
       | Physop.Const_empty cols -> Relop.Empty cols)
  in
  (Cardinality.of_op env logical child_props).Cardinality.card

let width_of_cols t cols =
  Registry.Col_set.fold (fun c acc -> acc +. Registry.width t.reg c) cols 0.

(* -- insertion -- *)

let key_of t op children =
  (op, List.map (fun c -> find t c) (Array.to_list children))

let grow t =
  if t.ngroups >= Array.length t.groups then begin
    let bigger = Array.make (2 * Array.length t.groups) t.groups.(0) in
    Array.blit t.groups 0 bigger 0 t.ngroups;
    t.groups <- bigger
  end

let new_group t op children =
  grow t;
  let gid = t.ngroups in
  let cols = cols_of_op t op children in
  let card = card_of_op t op children in
  let g =
    { gid; exprs = [ { op; children } ];
      props = { cols; card; width = width_of_cols t cols };
      explored = false; merged_into = None }
  in
  t.groups.(gid) <- g;
  t.ngroups <- t.ngroups + 1;
  Hashtbl.replace t.dedup (key_of t op children) gid;
  gid

(** Merge group [b] into group [a] (they were proven equivalent). *)
let merge_groups t a b =
  let a = find t a and b = find t b in
  if a <> b then begin
    let ga = t.groups.(a) and gb = t.groups.(b) in
    ga.exprs <- gb.exprs @ ga.exprs;
    (* keep the tighter cardinality estimate *)
    if gb.props.card < ga.props.card then
      ga.props <- { ga.props with card = gb.props.card };
    gb.merged_into <- Some a;
    gb.exprs <- []
  end

(** Insert an expression into group [target] (or a fresh group when [target]
    is [None]). Returns the (canonical) group that owns the expression.
    If the expression already exists in a different group, the groups are
    merged. *)
let insert ?target t op (children : int array) : int =
  let children = Array.map (fun c -> find t c) children in
  let key = key_of t op children in
  match Hashtbl.find_opt t.dedup key, target with
  | Some g, None -> find t g
  | Some g, Some tgt ->
    let g = find t g and tgt = find t tgt in
    if g <> tgt then merge_groups t tgt g;
    find t tgt
  | None, None -> new_group t op children
  | None, Some tgt ->
    let tgt = find t tgt in
    let g = t.groups.(tgt) in
    g.exprs <- { op; children } :: g.exprs;
    Hashtbl.replace t.dedup key tgt;
    tgt

(** Insert a whole logical operator tree; returns its group. *)
let rec insert_tree t (tree : Relop.t) : int =
  let children = Array.of_list (List.map (insert_tree t) tree.Relop.children) in
  insert t (Logical tree.Relop.op) children

(** Initialize a MEMO from a normalized logical tree (the "initial plan"
    of paper Fig. 2 step 2a). *)
let of_tree reg shell tree =
  let t = create reg shell in
  t.root <- insert_tree t tree;
  t

let total_exprs t =
  let n = ref 0 in
  iter_groups t (fun g -> n := !n + List.length g.exprs);
  !n

(** Groups that have not been merged away (what the XML export carries). *)
let live_groups t =
  let n = ref 0 in
  iter_groups t (fun _ -> incr n);
  !n

let logical_exprs t gid =
  List.filter_map
    (fun e -> match e.op with Logical l -> Some (l, e.children) | Physical _ -> None)
    (exprs t gid)

let physical_exprs t gid =
  List.filter_map
    (fun e -> match e.op with Physical p -> Some (p, e.children) | Logical _ -> None)
    (exprs t gid)

(* -- printing (the Fig. 3 style group listing) -- *)

let op_to_string reg = function
  | Logical l ->
    (match l with
     | Relop.Get { table; _ } -> Printf.sprintf "Get(%s)" table
     | Relop.Select p -> Printf.sprintf "Select[%s]" (Expr.to_string reg p)
     | Relop.Project _ -> "Project"
     | Relop.Join { kind; pred } ->
       Printf.sprintf "%s[%s]"
         (match kind with
          | Relop.Inner -> "Join" | Relop.Cross -> "CrossJoin" | Relop.Semi -> "SemiJoin"
          | Relop.Anti_semi -> "AntiSemiJoin" | Relop.Left_outer -> "LeftOuterJoin")
         (Expr.to_string reg pred)
     | Relop.Group_by { keys; _ } ->
       Printf.sprintf "GroupBy[%s]" (String.concat "," (List.map (Registry.label reg) keys))
     | Relop.Sort _ -> "Sort"
     | Relop.Union_all -> "UnionAll"
     | Relop.Empty _ -> "Empty")
  | Physical p -> Physop.to_string reg p

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>";
  iter_groups t (fun g ->
      fprintf ppf "Group %d%s: card=%.0f width=%.0f@," g.gid
        (if g.gid = root t then " (root)" else "")
        g.props.card g.props.width;
      List.iteri
        (fun i e ->
           fprintf ppf "  %d.%d %s(%s)@," g.gid (i + 1) (op_to_string t.reg e.op)
             (String.concat ","
                (List.map (fun c -> string_of_int (find t c)) (Array.to_list e.children))))
        (List.rev g.exprs));
  fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
