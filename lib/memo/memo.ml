(** Library facade: the MEMO structure plus its physical operators and XML
    interchange encoding. *)

include Memo_def
module Physop = Physop
module Xml = Xml
module Memo_xml = Memo_xml
