(** Minimal self-contained XML reader/writer (no external dependency).
    Supports elements, attributes, self-closing tags, comments, and the five
    predefined entities — all that the MEMO interchange format needs. *)

type node = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

exception Xml_error of string

let node ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let attr n name =
  match List.assoc_opt name n.attrs with
  | Some v -> v
  | None -> raise (Xml_error (Printf.sprintf "missing attribute %s on <%s>" name n.tag))

let attr_opt n name = List.assoc_opt name n.attrs

let child n tag_name =
  match List.find_opt (fun c -> c.tag = tag_name) n.children with
  | Some c -> c
  | None -> raise (Xml_error (Printf.sprintf "missing child <%s> of <%s>" tag_name n.tag))

let child_opt n tag_name = List.find_opt (fun c -> c.tag = tag_name) n.children

let children_named n tag_name = List.filter (fun c -> c.tag = tag_name) n.children

(* -- writing -- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '&' -> Buffer.add_string b "&amp;"
       | '<' -> Buffer.add_string b "&lt;"
       | '>' -> Buffer.add_string b "&gt;"
       | '"' -> Buffer.add_string b "&quot;"
       | '\'' -> Buffer.add_string b "&apos;"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_buffer buf n =
  let rec go indent n =
    Buffer.add_string buf indent;
    Buffer.add_char buf '<';
    Buffer.add_string buf n.tag;
    List.iter
      (fun (k, v) ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf k;
         Buffer.add_string buf "=\"";
         Buffer.add_string buf (escape v);
         Buffer.add_char buf '"')
      n.attrs;
    if n.children = [] then Buffer.add_string buf "/>\n"
    else begin
      Buffer.add_string buf ">\n";
      List.iter (go (indent ^ "  ")) n.children;
      Buffer.add_string buf indent;
      Buffer.add_string buf "</";
      Buffer.add_string buf n.tag;
      Buffer.add_string buf ">\n"
    end
  in
  go "" n

let to_string n =
  let b = Buffer.create 4096 in
  to_buffer b n;
  Buffer.contents b

(* -- parsing -- *)

type cursor = { s : string; mutable pos : int }

let peek_char c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let error c msg =
  raise (Xml_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  while c.pos < String.length c.s
        && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    c.pos <- c.pos + 1
  done

let expect_str c str =
  let n = String.length str in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = str then c.pos <- c.pos + n
  else error c (Printf.sprintf "expected %s" str)

let is_name_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = ':' || ch = '.'

let read_name c =
  let start = c.pos in
  while c.pos < String.length c.s && is_name_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error c "expected name";
  String.sub c.s start (c.pos - start)

let unescape s =
  if not (String.contains s '&') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        let j = try String.index_from s !i ';' with Not_found -> n - 1 in
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        (match ent with
         | "amp" -> Buffer.add_char b '&'
         | "lt" -> Buffer.add_char b '<'
         | "gt" -> Buffer.add_char b '>'
         | "quot" -> Buffer.add_char b '"'
         | "apos" -> Buffer.add_char b '\''
         | _ -> Buffer.add_string b ("&" ^ ent ^ ";"));
        i := j + 1
      end else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let read_attr_value c =
  let quote =
    match peek_char c with
    | Some ('"' | '\'' as q) -> c.pos <- c.pos + 1; q
    | _ -> error c "expected quoted attribute value"
  in
  let start = c.pos in
  while c.pos < String.length c.s && c.s.[c.pos] <> quote do
    c.pos <- c.pos + 1
  done;
  if c.pos >= String.length c.s then error c "unterminated attribute value";
  let v = String.sub c.s start (c.pos - start) in
  c.pos <- c.pos + 1;
  unescape v

let rec skip_misc c =
  skip_ws c;
  if c.pos + 3 < String.length c.s && String.sub c.s c.pos 4 = "<!--" then begin
    (match String.index_from_opt c.s (c.pos + 4) '>' with
     | _ ->
       let rec find i =
         if i + 2 >= String.length c.s then error c "unterminated comment"
         else if String.sub c.s i 3 = "-->" then i + 3
         else find (i + 1)
       in
       c.pos <- find (c.pos + 4));
    skip_misc c
  end
  else if c.pos + 1 < String.length c.s && c.s.[c.pos] = '<' && c.s.[c.pos + 1] = '?' then begin
    (match String.index_from_opt c.s c.pos '>' with
     | Some i -> c.pos <- i + 1
     | None -> error c "unterminated processing instruction");
    skip_misc c
  end

let rec parse_element c : node =
  skip_misc c;
  expect_str c "<";
  let tag = read_name c in
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws c;
    match peek_char c with
    | Some '/' ->
      expect_str c "/>";
      `Selfclosing
    | Some '>' ->
      c.pos <- c.pos + 1;
      `Open
    | Some _ ->
      let name = read_name c in
      skip_ws c;
      expect_str c "=";
      skip_ws c;
      let v = read_attr_value c in
      attrs := (name, v) :: !attrs;
      read_attrs ()
    | None -> error c "unexpected end of input in tag"
  in
  match read_attrs () with
  | `Selfclosing -> { tag; attrs = List.rev !attrs; children = [] }
  | `Open ->
    let children = ref [] in
    let rec read_children () =
      skip_misc c;
      if c.pos + 1 < String.length c.s && c.s.[c.pos] = '<' && c.s.[c.pos + 1] = '/'
      then begin
        expect_str c "</";
        let closing = read_name c in
        if closing <> tag then error c (Printf.sprintf "mismatched </%s>, expected </%s>" closing tag);
        skip_ws c;
        expect_str c ">"
      end else begin
        (* text content is ignored (the MEMO format carries data in
           attributes only) *)
        if peek_char c = Some '<' then begin
          children := parse_element c :: !children;
          read_children ()
        end else begin
          while c.pos < String.length c.s && c.s.[c.pos] <> '<' do
            c.pos <- c.pos + 1
          done;
          read_children ()
        end
      end
    in
    read_children ();
    { tag; attrs = List.rev !attrs; children = List.rev !children }

let parse (s : string) : node =
  let c = { s; pos = 0 } in
  let n = parse_element c in
  skip_misc c;
  n
