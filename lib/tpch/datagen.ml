(** Deterministic, scaled-down TPC-H data generator.

    Replaces dbgen for the simulated appliance (DESIGN.md §4): same schema,
    same key relationships and value families, at laptop scale. All values
    derive from a splitmix64 PRNG seeded per (table, row), so generation is
    order-independent and reproducible. *)

open Catalog

type row = Value.t array

type db = {
  sf : float;
  tables : (string * Column.table) list;   (** table name -> column-major data *)
}

(* column-major row sink: generators stream rows into typed column
   builders, so the full boxed row list never exists — at SF 1 the
   lineitem table alone is ~6M rows, only feasible columnar *)
type sink = { bs : Column.Builder.t array; mutable n : int }

let sink ?capacity width : sink =
  { bs = Array.init width (fun _ -> Column.Builder.create ?capacity ()); n = 0 }

let push (s : sink) (row : row) =
  Array.iteri (fun j v -> Column.Builder.add s.bs.(j) v) row;
  s.n <- s.n + 1

let finish (s : sink) : Column.table =
  { Column.nrows = s.n; cols = Array.map Column.Builder.finish s.bs }

(* fixed-cardinality table: one row per index *)
let collect ~width n (gen : int -> row) : Column.table =
  let s = sink ~capacity:(max 1 n) width in
  for i = 0 to n - 1 do push s (gen i) done;
  finish s

(* -- PRNG: splitmix64 -- *)

let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

type rng = { mutable state : int64 }

let rng_of ~table ~row =
  let seed = Int64.of_int ((Hashtbl.hash table * 1000003) + row) in
  { state = splitmix64 seed }

let next r =
  r.state <- splitmix64 r.state;
  Int64.to_int (Int64.logand r.state 0x3FFFFFFFFFFFFFFFL)

let rand_int r lo hi = lo + (next r mod max 1 (hi - lo + 1))
let rand_float r lo hi = lo +. (float_of_int (next r mod 1_000_000) /. 1_000_000. *. (hi -. lo))
let pick r arr = arr.(next r mod Array.length arr)

(* -- vocabularies (abridged dbgen word lists) -- *)

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nations =
  [| ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
     ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
     ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
     ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
     ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
     ("UNITED STATES", 1) |]

let p_name_words =
  [| "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black"; "blanched";
     "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse"; "chiffon";
     "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream"; "cyan"; "dark"; "deep";
     "dim"; "dodger"; "drab"; "firebrick"; "floral"; "forest"; "frosted"; "gainsboro";
     "ghost"; "goldenrod"; "green"; "grey"; "honeydew"; "hot"; "indian"; "ivory";
     "khaki"; "lace"; "lavender"; "lawn"; "lemon"; "light"; "lime"; "linen"; "magenta";
     "maroon"; "medium"; "metallic"; "midnight"; "mint"; "misty"; "moccasin"; "navajo";
     "navy"; "olive"; "orange"; "orchid"; "pale"; "papaya"; "peach"; "peru"; "pink";
     "plum"; "powder"; "puff"; "purple"; "red"; "rose"; "rosy"; "royal"; "saddle";
     "salmon"; "sandy"; "seashell"; "sienna"; "sky"; "slate"; "smoke"; "snow"; "spring";
     "steel"; "tan"; "thistle"; "tomato"; "turquoise"; "violet"; "wheat"; "white"; "yellow" |]

let types1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let types2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let types3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]
let containers1 = [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]
let containers2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]
let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let comment_words =
  [| "carefully"; "quickly"; "express"; "furiously"; "final"; "ironic"; "pending";
     "regular"; "special"; "bold"; "even"; "silent"; "unusual"; "slyly"; "requests";
     "deposits"; "packages"; "accounts"; "theodolites"; "instructions"; "dependencies" |]

let comment r n =
  let b = Buffer.create 32 in
  for i = 1 to n do
    if i > 1 then Buffer.add_char b ' ';
    Buffer.add_string b (pick r comment_words)
  done;
  Buffer.contents b

let date_of y m d = Value.Date (Value.days_from_civil ~y ~m ~d)
let rand_date r ~ylo ~yhi =
  Value.Date
    (Value.days_from_civil ~y:(rand_int r ylo yhi) ~m:(rand_int r 1 12) ~d:(rand_int r 1 28))

(* -- row counts at scale factor sf (full TPC-H is sf = 1) -- *)

let counts sf =
  let n base = max 1 (int_of_float (float_of_int base *. sf)) in
  object
    method supplier = n 10_000
    method customer = n 150_000
    method part = n 200_000
    method orders = n 1_500_000
    method lineitem_per_order = 4   (* 1..7 in dbgen; we draw 1..7, avg 4 *)
    method partsupp_per_part = 4
  end

(* -- per-table generators -- *)

let gen_region () =
  collect ~width:3 (Array.length regions) (fun i ->
      let r = rng_of ~table:"region" ~row:i in
      [| Value.Int i; Value.String regions.(i); Value.String (comment r 5) |])

let gen_nation () =
  collect ~width:4 (Array.length nations) (fun i ->
      let name, region = nations.(i) in
      let r = rng_of ~table:"nation" ~row:i in
      [| Value.Int i; Value.String name; Value.Int region; Value.String (comment r 5) |])

let gen_supplier n =
  collect ~width:7 n (fun i ->
      let k = i + 1 in
      let r = rng_of ~table:"supplier" ~row:k in
      let special = rand_int r 0 99 < 5 in
      [| Value.Int k;
         Value.String (Printf.sprintf "Supplier#%09d" k);
         Value.String (comment r 2);
         Value.Int (rand_int r 0 24);
         Value.String (Printf.sprintf "%02d-%03d-%03d-%04d" (rand_int r 10 34)
                         (rand_int r 100 999) (rand_int r 100 999) (rand_int r 1000 9999));
         Value.Float (rand_float r (-999.99) 9999.99);
         Value.String
           (if special then comment r 2 ^ " Customer Complaints " ^ comment r 2
            else comment r 6) |])

let gen_customer n =
  collect ~width:8 n (fun i ->
      let k = i + 1 in
      let r = rng_of ~table:"customer" ~row:k in
      [| Value.Int k;
         Value.String (Printf.sprintf "Customer#%09d" k);
         Value.String (comment r 2);
         Value.Int (rand_int r 0 24);
         Value.String (Printf.sprintf "%02d-%03d-%03d-%04d" (rand_int r 10 34)
                         (rand_int r 100 999) (rand_int r 100 999) (rand_int r 1000 9999));
         Value.Float (rand_float r (-999.99) 9999.99);
         Value.String (pick r segments);
         Value.String (comment r 6) |])

let gen_part n =
  collect ~width:9 n (fun i ->
      let k = i + 1 in
      let r = rng_of ~table:"part" ~row:k in
      let name =
        String.concat " " (List.init 5 (fun _ -> pick r p_name_words))
      in
      [| Value.Int k;
         Value.String name;
         Value.String (Printf.sprintf "Manufacturer#%d" (rand_int r 1 5));
         Value.String (Printf.sprintf "Brand#%d%d" (rand_int r 1 5) (rand_int r 1 5));
         Value.String
           (Printf.sprintf "%s %s %s" (pick r types1) (pick r types2) (pick r types3));
         Value.Int (rand_int r 1 50);
         Value.String (Printf.sprintf "%s %s" (pick r containers1) (pick r containers2));
         Value.Float (900. +. (float_of_int k /. 10.) +. rand_float r 0. 100.);
         Value.String (comment r 4) |])

let gen_partsupp ~nparts ~nsuppliers ~per_part =
  let s = sink ~capacity:(max 1 (nparts * per_part)) 5 in
  for i = 0 to nparts - 1 do
    let pk = i + 1 in
    for j = 0 to per_part - 1 do
      let r = rng_of ~table:"partsupp" ~row:((pk * 7) + j) in
      let sk = ((pk + (j * (nsuppliers / per_part + 1))) mod nsuppliers) + 1 in
      push s
        [| Value.Int pk;
           Value.Int sk;
           Value.Int (rand_int r 1 9999);
           Value.Float (rand_float r 1. 1000.);
           Value.String (comment r 8) |]
    done
  done;
  finish s

let gen_orders ~norders ~ncustomers =
  collect ~width:9 norders (fun i ->
      let k = i + 1 in
      let r = rng_of ~table:"orders" ~row:k in
      (* dbgen: only 2/3 of customers have orders *)
      let ck =
        let c = rand_int r 1 ncustomers in
        max 1 (c - (c mod 3))
      in
      let odate = rand_date r ~ylo:1992 ~yhi:1998 in
      [| Value.Int k;
         Value.Int ck;
         Value.String (pick r [| "O"; "F"; "P" |]);
         Value.Float (rand_float r 900. 450_000.);
         odate;
         Value.String (pick r priorities);
         Value.String (Printf.sprintf "Clerk#%09d" (rand_int r 1 1000));
         Value.Int 0;
         Value.String (comment r 5) |])

let gen_lineitem ~norders ~nparts ~nsuppliers (orders : Column.table) =
  ignore norders;
  let okey = orders.Column.cols.(0) and odate_c = orders.Column.cols.(4) in
  let s = sink ~capacity:(max 1 (orders.Column.nrows * 4)) 16 in
  for oi = 0 to orders.Column.nrows - 1 do
    let ok = match Column.get okey oi with Value.Int k -> k | _ -> assert false in
    let odate = match Column.get odate_c oi with Value.Date d -> d | _ -> assert false in
    let r = rng_of ~table:"lineitem" ~row:ok in
    let nlines = rand_int r 1 7 in
    for ln = 0 to nlines - 1 do
      let pk = rand_int r 1 nparts in
      let sk = ((pk + (rand_int r 0 3 * (nsuppliers / 4 + 1))) mod nsuppliers) + 1 in
      let qty = float_of_int (rand_int r 1 50) in
      let price = qty *. rand_float r 90. 2000. in
      let ship = odate + rand_int r 1 121 in
      let commit = odate + rand_int r 30 90 in
      let receipt = ship + rand_int r 1 30 in
      push s
        [| Value.Int ok;
           Value.Int pk;
           Value.Int sk;
           Value.Int (ln + 1);
           Value.Float qty;
           Value.Float price;
           Value.Float (float_of_int (rand_int r 0 10) /. 100.);
           Value.Float (float_of_int (rand_int r 0 8) /. 100.);
           Value.String (pick r [| "R"; "A"; "N" |]);
           Value.String (pick r [| "O"; "F" |]);
           Value.Date ship;
           Value.Date commit;
           Value.Date receipt;
           Value.String (pick r instructs);
           Value.String (pick r modes);
           Value.String (comment r 3) |]
    done
  done;
  finish s

(** Generate the whole database at scale factor [sf]. *)
let generate sf : db =
  let c = counts sf in
  let nsup = c#supplier and ncust = c#customer and npart = c#part in
  let norders = c#orders in
  let orders = gen_orders ~norders ~ncustomers:ncust in
  let tables =
    [ ("region", gen_region ());
      ("nation", gen_nation ());
      ("supplier", gen_supplier nsup);
      ("customer", gen_customer ncust);
      ("part", gen_part npart);
      ("partsupp", gen_partsupp ~nparts:npart ~nsuppliers:nsup ~per_part:c#partsupp_per_part);
      ("orders", orders);
      ("lineitem", gen_lineitem ~norders ~nparts:npart ~nsuppliers:nsup orders) ]
  in
  { sf; tables }

(** Column-major contents of a table. *)
let table db name : Column.table =
  match List.assoc_opt (String.lowercase_ascii name) db.tables with
  | Some t -> t
  | None -> invalid_arg ("Datagen.table: unknown table " ^ name)

(** Row-major view of a table (materializes boxed rows). *)
let rows db name : row list = Column.table_rows (table db name)

let _ = date_of (* exported convenience *)
