(** The TPC-H schema with the PDW distribution layout used throughout the
    paper's examples: Customer hash-partitioned on c_custkey, Orders and
    Lineitem co-located on orderkey (§3.2), Part/Partsupp on partkey, and
    the small dimensions (Supplier, Nation, Region) replicated — Fig. 7
    references [supplier_repl]. *)

open Catalog

let c ?nullable ?width ?is_pk ?references name ty =
  Schema.column ?nullable ?width ?is_pk ?references name ty

let region =
  Schema.make "region"
    [ c ~is_pk:true "r_regionkey" Types.Tint;
      c ~width:12 "r_name" Types.Tstring;
      c ~width:60 "r_comment" Types.Tstring ]

let nation =
  Schema.make "nation"
    [ c ~is_pk:true "n_nationkey" Types.Tint;
      c ~width:16 "n_name" Types.Tstring;
      c ~references:("region", "r_regionkey") "n_regionkey" Types.Tint;
      c ~width:60 "n_comment" Types.Tstring ]

let supplier =
  Schema.make "supplier"
    [ c ~is_pk:true "s_suppkey" Types.Tint;
      c ~width:18 "s_name" Types.Tstring;
      c ~width:24 "s_address" Types.Tstring;
      c ~references:("nation", "n_nationkey") "s_nationkey" Types.Tint;
      c ~width:15 "s_phone" Types.Tstring;
      c "s_acctbal" Types.Tfloat;
      c ~width:60 "s_comment" Types.Tstring ]

let customer =
  Schema.make "customer"
    [ c ~is_pk:true "c_custkey" Types.Tint;
      c ~width:18 "c_name" Types.Tstring;
      c ~width:24 "c_address" Types.Tstring;
      c ~references:("nation", "n_nationkey") "c_nationkey" Types.Tint;
      c ~width:15 "c_phone" Types.Tstring;
      c "c_acctbal" Types.Tfloat;
      c ~width:10 "c_mktsegment" Types.Tstring;
      c ~width:60 "c_comment" Types.Tstring ]

let part =
  Schema.make "part"
    [ c ~is_pk:true "p_partkey" Types.Tint;
      c ~width:34 "p_name" Types.Tstring;
      c ~width:14 "p_mfgr" Types.Tstring;
      c ~width:10 "p_brand" Types.Tstring;
      c ~width:20 "p_type" Types.Tstring;
      c "p_size" Types.Tint;
      c ~width:10 "p_container" Types.Tstring;
      c "p_retailprice" Types.Tfloat;
      c ~width:40 "p_comment" Types.Tstring ]

let partsupp =
  Schema.make "partsupp"
    [ c ~is_pk:true ~references:("part", "p_partkey") "ps_partkey" Types.Tint;
      c ~is_pk:true ~references:("supplier", "s_suppkey") "ps_suppkey" Types.Tint;
      c "ps_availqty" Types.Tint;
      c "ps_supplycost" Types.Tfloat;
      c ~width:80 "ps_comment" Types.Tstring ]

let orders =
  Schema.make "orders"
    [ c ~is_pk:true "o_orderkey" Types.Tint;
      c ~references:("customer", "c_custkey") "o_custkey" Types.Tint;
      c ~width:1 "o_orderstatus" Types.Tstring;
      c "o_totalprice" Types.Tfloat;
      c "o_orderdate" Types.Tdate;
      c ~width:15 "o_orderpriority" Types.Tstring;
      c ~width:15 "o_clerk" Types.Tstring;
      c "o_shippriority" Types.Tint;
      c ~width:40 "o_comment" Types.Tstring ]

let lineitem =
  Schema.make "lineitem"
    [ c ~is_pk:true ~references:("orders", "o_orderkey") "l_orderkey" Types.Tint;
      c ~references:("part", "p_partkey") "l_partkey" Types.Tint;
      c ~references:("supplier", "s_suppkey") "l_suppkey" Types.Tint;
      c ~is_pk:true "l_linenumber" Types.Tint;
      c "l_quantity" Types.Tfloat;
      c "l_extendedprice" Types.Tfloat;
      c "l_discount" Types.Tfloat;
      c "l_tax" Types.Tfloat;
      c ~width:1 "l_returnflag" Types.Tstring;
      c ~width:1 "l_linestatus" Types.Tstring;
      c "l_shipdate" Types.Tdate;
      c "l_commitdate" Types.Tdate;
      c "l_receiptdate" Types.Tdate;
      c ~width:12 "l_shipinstruct" Types.Tstring;
      c ~width:10 "l_shipmode" Types.Tstring;
      c ~width:30 "l_comment" Types.Tstring ]

(** (schema, distribution) for every table, in FK dependency order. *)
let layout =
  [ (region, Distribution.Replicated);
    (nation, Distribution.Replicated);
    (supplier, Distribution.Replicated);
    (customer, Distribution.Hash_partitioned [ "c_custkey" ]);
    (part, Distribution.Hash_partitioned [ "p_partkey" ]);
    (partsupp, Distribution.Hash_partitioned [ "ps_partkey" ]);
    (orders, Distribution.Hash_partitioned [ "o_orderkey" ]);
    (lineitem, Distribution.Hash_partitioned [ "l_orderkey" ]) ]

(** Register all TPC-H tables (without stats) in a shell database. *)
let install shell =
  List.iter
    (fun (schema, dist) -> ignore (Shell_db.add_table shell schema dist))
    layout
