(** Elastic topology (DESIGN.md §14): workload-driven re-distribution and
    online grow/shrink, fault-survivable and always serving.

    Three pieces:

    - {!Zipf}: a deterministic skewed workload source (pure splitmix64
      draws, like the fault plane's) for storm drivers;
    - {!Advisor}: replays the harvested workload ({!Feedback.Log}) against
      candidate distribution-key assignments and proposes the set that
      minimizes the occurrence-weighted modelled DMS cost under the λ
      model;
    - {!Elastic}: the statement driver that serves queries while topology
      moves ({!Engine.Appliance.begin_move} phases) are in flight —
      statements admitted mid-move execute against the old layout until
      the atomic flip, node crashes compose with decommission + move
      restart, and every compiled plan carries the topology epoch
      (plan-cache fingerprint v6). *)

(* -- deterministic skewed workload source -- *)

module Zipf = struct
  (* splitmix64 finalizer, the same construction as the fault plane's
     (which does not export its hash): every pick is a pure function of
     (seed, index), so a storm sequence is identical at any [--jobs] *)
  let sm64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (** Uniform float in [0, 1) for storm position [i]. *)
  let draw ~seed ~i =
    let h =
      sm64 (Int64.add (Int64.mul (sm64 (Int64.of_int seed)) 0x9e3779b97f4a7c15L)
              (Int64.of_int i))
    in
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

  (** Zipf-distributed rank in [0, n): rank [k] has weight [1/(k+1)^s].
      Smaller ranks are the workload's head. *)
  let pick ~seed ~i ~n ~s =
    let n = max 1 n in
    let total = ref 0. in
    let w = Array.init n (fun k -> 1. /. (float_of_int (k + 1) ** s)) in
    Array.iter (fun x -> total := !total +. x) w;
    let u = draw ~seed ~i *. !total in
    let acc = ref 0. and chosen = ref (n - 1) in
    (try
       Array.iteri
         (fun k x ->
            acc := !acc +. x;
            if u < !acc then begin chosen := k; raise Exit end)
         w
     with Exit -> ());
    !chosen

  (** A storm of [length] Zipf-ranked indices over [n] alternatives
      (default skew [s = 1.5]). *)
  let storm ~seed ?(s = 1.5) ~length n = List.init length (fun i -> pick ~seed ~i ~n ~s)
end

(* -- the re-distribution advisor -- *)

module Advisor = struct
  (** One accepted key change. [p_before]/[p_after] are the cumulative
      occurrence-weighted modelled DMS costs of the whole replayed
      workload immediately before and after accepting this proposal, so
      [p_before -. p_after] is this change's marginal win. *)
  type proposal = {
    p_table : string;
    p_from : string list;   (** current hash-distribution key *)
    p_cols : string list;   (** proposed hash-distribution key *)
    p_before : float;
    p_after : float;
  }

  type advice = {
    a_statements : (string * int) list;
        (** distinct replayed statements with occurrence counts *)
    a_baseline : float;  (** weighted modelled DMS cost under current keys *)
    a_proposed : float;  (** same cost under every accepted proposal *)
    a_proposals : proposal list;  (** in acceptance (best-first) order *)
  }

  (* distinct statements with occurrence counts, in first-seen order (one
     log record per execution, so counts are the observed frequencies) *)
  let statements (log : Feedback.Log.t) =
    let counts = Hashtbl.create 16 and order = ref [] in
    List.iter
      (fun (r : Feedback.Log.record) ->
         let k = r.Feedback.Log.r_statement in
         match Hashtbl.find_opt counts k with
         | Some n -> Hashtbl.replace counts k (n + 1)
         | None ->
           Hashtbl.replace counts k 1;
           order := k :: !order)
      (Feedback.Log.records log);
    List.rev_map (fun k -> (k, Hashtbl.find counts k)) !order

  (* candidate distribution keys harvested from the log: a column is a
     candidate for its table when a join predicate constrained it (the
     operator's observation spans >= 2 tables). Returns hash-partitioned
     tables ranked by total join weight, each with its candidate columns
     ranked by weight (ties broken by name, for determinism). *)
  let candidates (shell : Catalog.Shell_db.t) (log : Feedback.Log.t) =
    let weight = Hashtbl.create 32 in
    let bump k =
      Hashtbl.replace weight k (1 + Option.value (Hashtbl.find_opt weight k) ~default:0)
    in
    List.iter
      (fun (r : Feedback.Log.record) ->
         List.iter
           (fun (o : Feedback.Log.op_obs) ->
              let tabs =
                List.sort_uniq compare (List.map fst o.Feedback.Log.o_cols)
              in
              if List.length tabs >= 2 then
                List.iter bump o.Feedback.Log.o_cols)
           r.Feedback.Log.r_ops)
      (Feedback.Log.records log);
    let per_table = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (tab, col) w ->
         match Catalog.Shell_db.find shell tab with
         | Some { Catalog.Shell_db.dist = Catalog.Distribution.Hash_partitioned _; _ } ->
           Hashtbl.replace per_table tab
             ((col, w) :: Option.value (Hashtbl.find_opt per_table tab) ~default:[])
         | _ -> ())  (* replicated (or unknown) tables are never re-keyed *)
      weight;
    Hashtbl.fold
      (fun tab cols acc ->
         let cols =
           List.sort (fun (c1, w1) (c2, w2) -> compare (-w1, c1) (-w2, c2)) cols
         in
         let total = List.fold_left (fun a (_, w) -> a + w) 0 cols in
         (tab, total, List.map fst cols) :: acc)
      per_table []
    |> List.sort (fun (t1, w1, _) (t2, w2, _) -> compare (-w1, t1) (-w2, t2))

  (* a hypothetical shell: same schemas/statistics, distribution keys of
     the named tables overridden *)
  let hypothetical (shell : Catalog.Shell_db.t) (overrides : (string * string list) list) =
    let shell' =
      Catalog.Shell_db.create ~node_count:(Catalog.Shell_db.node_count shell)
    in
    List.iter
      (fun (tbl : Catalog.Shell_db.table) ->
         let name =
           String.lowercase_ascii tbl.Catalog.Shell_db.schema.Catalog.Schema.name
         in
         let dist =
           match List.assoc_opt name overrides with
           | Some cols -> Catalog.Distribution.Hash_partitioned cols
           | None -> tbl.Catalog.Shell_db.dist
         in
         ignore
           (Catalog.Shell_db.add_table shell' ~stats:tbl.Catalog.Shell_db.stats
              tbl.Catalog.Shell_db.schema dist))
      (List.sort
         (fun (a : Catalog.Shell_db.table) (b : Catalog.Shell_db.table) ->
            compare a.Catalog.Shell_db.schema.Catalog.Schema.name
              b.Catalog.Shell_db.schema.Catalog.Schema.name)
         (Catalog.Shell_db.tables shell));
    shell'

  (** [advise shell log] replays the log's distinct statements (weighted
      by observed frequency) against candidate distribution-key
      assignments — compiling each statement with the full pipeline and
      summing the chosen plans' modelled DMS cost under the λ model — and
      greedily accepts up to [max_tables] (default 2) single-table key
      changes, each only if it {e strictly} lowers the cumulative cost.
      Pure replay: nothing is executed and [shell] is not mutated.
      [options] should be the driver's current options (node count, λs);
      the XML interchange is forced off (a cost replay does not need
      it). *)
  let advise ?(max_tables = 2) ?options (shell : Catalog.Shell_db.t)
      (log : Feedback.Log.t) : advice =
    let options =
      let o =
        match options with
        | Some o -> o
        | None ->
          Opdw.default_options ~node_count:(Catalog.Shell_db.node_count shell)
      in
      { o with Opdw.via_xml = false }
    in
    let stmts = statements log in
    let cost_with overrides =
      let shell' = hypothetical shell overrides in
      List.fold_left
        (fun acc (sql, count) ->
           let r = Opdw.optimize ~options shell' sql in
           acc +. (float_of_int count *. (Opdw.plan r).Pdwopt.Pplan.dms_cost))
        0. stmts
    in
    let baseline = cost_with [] in
    let accepted = ref [] and proposals = ref [] and current = ref baseline in
    List.iter
      (fun (tab, _w, cols) ->
         if List.length !accepted < max_tables then begin
           let cur_key =
             match Catalog.Shell_db.find shell tab with
             | Some { Catalog.Shell_db.dist = Catalog.Distribution.Hash_partitioned k; _ } -> k
             | _ -> []
           in
           let best =
             List.fold_left
               (fun best col ->
                  if [ col ] = cur_key then best
                  else begin
                    let cost = cost_with (!accepted @ [ (tab, [ col ]) ]) in
                    match best with
                    | Some (_, c) when c <= cost -> best
                    | _ -> Some (col, cost)
                  end)
               None cols
           in
           match best with
           | Some (col, cost) when cost < !current ->
             accepted := !accepted @ [ (tab, [ col ]) ];
             proposals :=
               { p_table = tab; p_from = cur_key; p_cols = [ col ];
                 p_before = !current; p_after = cost }
               :: !proposals;
             current := cost
           | _ -> ()
         end)
      (candidates shell log);
    { a_statements = stmts; a_baseline = baseline; a_proposed = !current;
      a_proposals = List.rev !proposals }
end

(* -- the elastic statement driver -- *)

module Elastic = struct
  (** Serves statements chaos-style (node crashes decommission + replan)
      while harvesting the workload into a {!Feedback.Log} for the
      advisor, and executes topology changes as phased moves that keep
      serving: [between] callbacks run admitted statements against the old
      layout between copy steps, a node crash mid-move aborts the
      half-built target (the source stays bit-identical), composes with
      decommission, and restarts the move on the survivors. Every compiled
      plan carries the appliance's replan epoch as the plan-cache
      fingerprint's topology epoch (v6). *)

  type t = {
    mutable shell : Catalog.Shell_db.t;
    mutable app : Engine.Appliance.t;
    mutable options : Opdw.options;
    cache : Opdw.cache option;
    fault : Fault.plan;
    max_replans : int;
    log : Feedback.Log.t;
  }

  let create ?cache ?(max_replans = 8) ?options ?log ~(fault : Fault.plan)
      (shell : Catalog.Shell_db.t) (app : Engine.Appliance.t) : t =
    let options =
      match options with
      | Some o -> o
      | None -> Opdw.default_options ~node_count:(Catalog.Shell_db.node_count shell)
    in
    { shell; app; options; cache; fault; max_replans;
      log = (match log with Some l -> l | None -> Feedback.Log.create ()) }

  let app t = t.app
  let shell t = t.shell
  let nodes t = t.app.Engine.Appliance.nodes
  let log t = t.log
  let options t = t.options

  (** The topology epoch every compiled plan is keyed under. *)
  let epoch t = t.app.Engine.Appliance.epoch

  (* switch the driver to a replacement appliance (decommission result or
     a committed move's target) *)
  let install (t : t) (app' : Engine.Appliance.t) =
    t.app <- app';
    t.shell <- app'.Engine.Appliance.shell;
    let n = app'.Engine.Appliance.nodes in
    t.options <-
      { t.options with
        Opdw.pdw = { t.options.Opdw.pdw with Pdwopt.Enumerate.nodes = n };
        baseline = { t.options.Opdw.baseline with Baseline.nodes = n } }

  (* registry column ids -> catalog (table, column) names; derived columns
     have no catalog object and are dropped *)
  let cols_of_ids (reg : Algebra.Registry.t) ids =
    List.filter_map
      (fun id ->
         match (Algebra.Registry.info reg id).Algebra.Registry.source with
         | Algebra.Registry.Base { table; column; _ } ->
           Some (String.lowercase_ascii table, String.lowercase_ascii column)
         | Algebra.Registry.Derived _ -> None
         | exception Invalid_argument _ -> None)
      ids
    |> List.sort_uniq compare

  (** Optimize and execute one statement under the fault plan, appending
      the harvested per-operator observations to the driver's log. A node
      crash decommissions and re-optimizes on the survivors (PR 4's
      replan); raises {!Fault.Exhausted} past the budgets. *)
  let run ?(obs = Obs.null) (t : t) (sql : string) : Opdw.result * Engine.Local.rset =
    let rec go replans =
      Engine.Appliance.set_fault t.app t.fault;
      let r =
        Opdw.optimize ~obs ~options:t.options ?cache:t.cache
          ~live_nodes:(Engine.Appliance.live_nodes t.app)
          ~topology:t.app.Engine.Appliance.epoch
          ~pool:t.app.Engine.Appliance.pool t.shell sql
      in
      let samples = ref [] in
      Engine.Appliance.set_harvest t.app (Some samples);
      let sim0 = t.app.Engine.Appliance.account.Engine.Appliance.sim_time in
      let wall0 = Obs.default_clock () in
      match
        Fun.protect
          ~finally:(fun () -> Engine.Appliance.set_harvest t.app None)
          (fun () -> Opdw.run ~obs ?cache:t.cache t.app r)
      with
      | rows ->
        let reg = r.Opdw.memo.Memo.reg in
        let ops =
          List.rev_map
            (fun (s : Engine.Appliance.op_sample) ->
               { Feedback.Log.o_group = s.Engine.Appliance.h_group;
                 o_op = s.Engine.Appliance.h_op;
                 o_table = Option.map String.lowercase_ascii s.Engine.Appliance.h_table;
                 o_cols = cols_of_ids reg s.Engine.Appliance.h_cols;
                 o_est = s.Engine.Appliance.h_est;
                 o_actual = s.Engine.Appliance.h_actual })
            !samples
        in
        Feedback.Log.append t.log
          { Feedback.Log.r_statement = Opdw.Feedback.statement_key sql;
            r_fingerprint = Option.value r.Opdw.fingerprint ~default:"";
            r_ops = ops;
            r_dms = [];  (* λ re-fitting is the Feedback driver's job *)
            r_sim = t.app.Engine.Appliance.account.Engine.Appliance.sim_time -. sim0;
            r_wall = Obs.default_clock () -. wall0;
            r_degraded = r.Opdw.degraded <> None };
        (r, rows)
      | exception Fault.Injected ({ Fault.site = Fault.Node_crash; _ } as failure) ->
        if nodes t <= 1 || replans >= t.max_replans then
          raise (Fault.Exhausted { failure; attempts = replans + 1 });
        Obs.add obs "fault.replan_statements" 1;
        Engine.Appliance.set_obs t.app obs;
        let app' = Engine.Appliance.decommission t.app ~node:failure.Fault.node in
        Engine.Appliance.set_obs t.app Obs.null;
        Engine.Appliance.set_obs app' Obs.null;
        install t app';
        go (replans + 1)
    in
    go 0

  (* drive one phased move to completion: copy steps interleaved with the
     [between] callback (which serves statements against the old layout),
     commit at the flip. A node crash — inside a copy step, or under a
     statement served by [between] (detected as the driver's appliance
     changing) — aborts the half-built target, composes with
     decommission, and rebuilds the move on the survivors. *)
  let phased ?(obs = Obs.null) ?(between = fun () -> ()) (t : t)
      (mk : Engine.Appliance.t -> Engine.Appliance.move) : unit =
    let rec attempt replans =
      Engine.Appliance.set_fault t.app t.fault;
      let src = t.app in
      let m = mk src in
      let outcome =
        try
          let rec drive () =
            if m.Engine.Appliance.m_pending = [] then `Done
            else begin
              Engine.Appliance.copy_step m;
              between ();
              if t.app != src then `Replanned_under_us else drive ()
            end
          in
          drive ()
        with Fault.Injected ({ Fault.site = Fault.Node_crash; _ } as failure) ->
          `Crashed failure
      in
      match outcome with
      | `Done ->
        (* read the accrued cost before the flip consumes the move; the
           appliance's own obs is reset to null around every served
           statement, so the driver's obs carries the topology counters *)
        let seconds = m.Engine.Appliance.m_seconds in
        let app' = Engine.Appliance.flip_move m in
        install t app';
        Obs.add obs "topology.applied_moves" 1;
        Obs.addf obs "topology.move_seconds" seconds
      | `Replanned_under_us ->
        (* a served statement crashed a node and replanned: the target was
           built against the dead topology — drop it and start over *)
        Engine.Appliance.abort_move m;
        Obs.add obs "topology.aborted_moves" 1;
        if replans >= t.max_replans then
          raise
            (Fault.Exhausted
               { failure =
                   { Fault.site = Fault.Node_crash;
                     epoch = src.Engine.Appliance.epoch; step = -1; node = -1 };
                 attempts = replans + 1 });
        attempt (replans + 1)
      | `Crashed failure ->
        Engine.Appliance.abort_move m;
        Obs.add obs "topology.aborted_moves" 1;
        if nodes t <= 1 || replans >= t.max_replans then
          raise (Fault.Exhausted { failure; attempts = replans + 1 });
        Engine.Appliance.set_obs t.app obs;
        let app' = Engine.Appliance.decommission t.app ~node:failure.Fault.node in
        Engine.Appliance.set_obs t.app Obs.null;
        Engine.Appliance.set_obs app' Obs.null;
        install t app';
        attempt (replans + 1)
    in
    attempt 0

  (** Grow the appliance online to [nodes] compute nodes. [between] runs
      after every copy step (serve statements there — they execute against
      the old layout until the flip, so availability stays 1.0). *)
  let grow ?obs ?between (t : t) ~(nodes : int) : unit =
    phased ?obs ?between t (fun (app : Engine.Appliance.t) ->
        if nodes <= app.Engine.Appliance.nodes then
          invalid_arg "Topology.Elastic.grow: node count must grow";
        let next = 1 + List.fold_left max (-1) app.Engine.Appliance.live in
        let live =
          app.Engine.Appliance.live
          @ List.init (nodes - app.Engine.Appliance.nodes) (fun i -> next + i)
        in
        Engine.Appliance.begin_move app ~node_count:nodes ~live
          ~dist_of:(fun tbl -> tbl.Catalog.Shell_db.dist))

  (** Re-key [table] online to hash-partitioning on [cols]. *)
  let redistribute ?obs ?between (t : t) ~(table : string) ~(cols : string list) : unit =
    let key = String.lowercase_ascii table in
    phased ?obs ?between t (fun (app : Engine.Appliance.t) ->
        ignore (Catalog.Shell_db.find_exn app.Engine.Appliance.shell table);
        Engine.Appliance.begin_move app
          ~node_count:app.Engine.Appliance.nodes ~live:app.Engine.Appliance.live
          ~dist_of:(fun (x : Catalog.Shell_db.table) ->
              if String.lowercase_ascii x.Catalog.Shell_db.schema.Catalog.Schema.name = key
              then Catalog.Distribution.Hash_partitioned cols
              else x.Catalog.Shell_db.dist))

  (** Run the advisor over everything this driver has served so far. *)
  let advise ?max_tables (t : t) : Advisor.advice =
    Advisor.advise ?max_tables ~options:t.options t.shell t.log

  (** Apply the advice's accepted proposals as online re-key moves, in
      acceptance order. *)
  let apply ?obs ?between (t : t) (a : Advisor.advice) : unit =
    List.iter
      (fun (p : Advisor.proposal) ->
         redistribute ?obs ?between t ~table:p.Advisor.p_table ~cols:p.Advisor.p_cols)
      a.Advisor.a_proposals
end
