(** Static plan-validity analyzer.

    Re-derives and verifies the invariants every distributed plan must
    satisfy — the distribution-compatibility rules of paper §3, movement
    applicability and layout consistency, cost-model accounting, and DSQL
    step well-formedness — without trusting any annotation the optimizer
    wrote. Violations carry the rule id, a human-readable message, and a
    pretty-printed rendering of the offending subtree (or DSQL step).

    The rule catalog (see DESIGN.md §7 for the paper mapping):

    - [R0.plan-shape]: operator arities, Return only at the plan root.
    - [R1.dist-rederive]: every node's declared [dist] equals the
      distribution re-derived from its children's declared distributions
      (scans anchored at the shell database's partitioning).
    - [R2.dist-local-op]: a serial operator whose child distributions make
      local execution incorrect — a missing enforcer movement (co-located
      joins, replicated-left restrictions for semi/anti/outer joins, local
      group-bys, aligned unions).
    - [R3.move-applicability]: a DMS operation applies to its input
      distribution and produces exactly the declared output distribution.
    - [R4.move-layout]: the moved column set is produced by the child, is
      non-empty, and carries the Shuffle/Trim hash columns.
    - [R5.cost-monotone]: [rows], [dms_cost] and [serial_cost] are finite
      and non-negative, and the cumulative costs are non-decreasing
      bottom-up.
    - [R6.cost-reconstruct] (needs a {!cost_model}): each Move's cost delta
      and the root's total DMS cost equal the movement costs recomputed
      from {!Dms.Cost}.
    - [R7.dsql-steps]: step ids are [0..n-1] in execution order, temp-table
      names are unique, and there is exactly one Return step, last.
    - [R8.dsql-temp-defined]: every temp table referenced by a step's SQL
      is filled by an earlier DMS step.
    - [R9.dsql-schema]: the DSQL DMS steps correspond 1:1 (same order,
      kinds, and column schemas) with the plan's Move nodes.
    - [R10.types] (needs a {!cost_model} for the registry): every
      expression in the plan type-checks — join keys compare compatible
      types, SUM/AVG arguments are numeric, computed and aggregate outputs
      match their declared registry types; with [dsql], temp-table schemas
      resolve and duplicate emitted names agree on type.
    - [R11.bounds] (needs a {!cost_model}): each node's optimizer row
      estimate lies within the cardinality bounds the abstract interpreter
      derives from the shell catalog (see {!Analysis}).
    - [R12.contradiction] (needs a {!cost_model}): no predicate whose
      abstract evaluation is bottom survives in the plan — such subtrees
      must have been folded to a constant-empty operator. *)

type violation = {
  rule : string;      (** rule id, e.g. ["R1.dist-rederive"] *)
  message : string;   (** what is wrong, with the concrete values *)
  subtree : string;   (** offending plan subtree (or DSQL step), rendered *)
}

exception Invalid of violation list

type rule_info = {
  id : string;
  title : string;
  paper : string;  (** the paper section the rule encodes *)
}

(** The full catalog, in rule-id order. *)
val rules : rule_info list

(** Inputs needed to recompute movement costs (rule R6). *)
type cost_model = {
  nodes : int;
  lambdas : Dms.Cost.lambdas;
  reg : Algebra.Registry.t;
}

(** [validate ?obs ?cost ?dsql ~shell plan] runs the whole catalog:
    R0–R5 always, R6 and R10–R12 when [cost] is given (the cost model
    carries the registry the analyzer needs), R7–R9 when [dsql] is given.
    Returns all violations (empty = valid). Reports [check.rules_run] and
    [check.violations] into [obs]. *)
val validate :
  ?obs:Obs.t ->
  ?cost:cost_model ->
  ?dsql:Dsql.Generate.plan ->
  shell:Catalog.Shell_db.t ->
  Pdwopt.Pplan.t ->
  violation list

(** Execution-soundness subset (R0–R4): the rules whose violation means the
    appliance would silently compute wrong rows. Cost and DSQL bookkeeping
    are not needed to execute, so they are skipped — this is the gate
    {!Engine.Appliance} applies to every plan it is handed. *)
val validate_exec :
  ?obs:Obs.t -> shell:Catalog.Shell_db.t -> Pdwopt.Pplan.t -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** All violations, one block per violation, for error messages. *)
val to_string : violation list -> string
