(* Static plan-validity analyzer. See check.mli for the rule catalog and
   DESIGN.md §7 for the mapping to the paper's sections.

   Everything here is re-derived from first principles: the only trusted
   inputs are the plan's *structure*, the shell database (for base-table
   partitioning) and, for R6, the DMS cost model parameters. Distribution
   annotations, cost fields and the DSQL step list are exactly what is
   being audited.

   The distribution check is compositional: each node's declared [dist] is
   verified against its children's *declared* distributions, with scans
   anchored at the shell database. If every node passes, a simple induction
   gives whole-plan soundness; if a node lies, the violation is reported at
   that node instead of cascading up the tree. *)

open Algebra

type violation = { rule : string; message : string; subtree : string }

exception Invalid of violation list

type rule_info = { id : string; title : string; paper : string }

let r0 = "R0.plan-shape"
let r1 = "R1.dist-rederive"
let r2 = "R2.dist-local-op"
let r3 = "R3.move-applicability"
let r4 = "R4.move-layout"
let r5 = "R5.cost-monotone"
let r6 = "R6.cost-reconstruct"
let r7 = "R7.dsql-steps"
let r8 = "R8.dsql-temp-defined"
let r9 = "R9.dsql-schema"
let r10 = "R10.types"
let r11 = "R11.bounds"
let r12 = "R12.contradiction"

let rules =
  [ { id = r0; title = "operator arities; Return only at the root";
      paper = "§2.3 (plan structure)" };
    { id = r1; title = "declared distribution equals the re-derived one";
      paper = "§3.1/§3.3 (distribution properties)" };
    { id = r2; title = "serial operators are locally executable (no missing enforcer)";
      paper = "§3.1 (collocated joins, local group-bys), Fig. 4 step 07" };
    { id = r3; title = "DMS op applies to its input and yields the declared dist";
      paper = "§3.3.2 (the seven movement operations)" };
    { id = r4; title = "moved columns exist in the child and carry the hash columns";
      paper = "§2.4/§3.3.2 (tuple routing)" };
    { id = r5; title = "finite, non-negative, bottom-up non-decreasing costs";
      paper = "§3.3 (cost-based pruning soundness)" };
    { id = r6; title = "per-move and root DMS costs match the cost model";
      paper = "§3.3.1 (DMS cost model)" };
    { id = r7; title = "DSQL step ids, unique temps, single trailing Return";
      paper = "§2.4 (DSQL plan structure)" };
    { id = r8; title = "temp tables are filled before they are read";
      paper = "§2.4 (step sequencing)" };
    { id = r9; title = "DSQL DMS steps mirror the plan's movements and schemas";
      paper = "§2.4/Fig. 7 (plan-to-DSQL cut)" };
    { id = r10; title = "every expression type-checks (join keys, aggregates, temp schemas)";
      paper = "DESIGN.md §12 (typed-expression checker)" };
    { id = r11; title = "optimizer row estimates inside the derived cardinality bounds";
      paper = "DESIGN.md §12 (interval abstract domain)" };
    { id = r12; title = "no provably-contradictory predicate left unfolded";
      paper = "DESIGN.md §12 (contradiction detection)" } ]

type cost_model = { nodes : int; lambdas : Dms.Cost.lambdas; reg : Registry.t }

let join_kind_name : Relop.join_kind -> string = function
  | Relop.Inner -> "inner"
  | Relop.Cross -> "cross"
  | Relop.Semi -> "semi"
  | Relop.Anti_semi -> "anti-semi"
  | Relop.Left_outer -> "left-outer"

(* -- rendering (registry-free: violations must print even for plans whose
      registry is unavailable, e.g. inside the appliance) -- *)

let ids cols = String.concat "," (List.map string_of_int cols)

let op_label (op : Pdwopt.Pplan.pop) =
  match op with
  | Pdwopt.Pplan.Serial sop -> Memo.Physop.name sop
  | Pdwopt.Pplan.Move { kind; cols } ->
    Printf.sprintf "DMS %s[%s]" (Dms.Op.name kind) (ids cols)
  | Pdwopt.Pplan.Return _ -> "Return"

let subtree_string ?(max_depth = 4) (p : Pdwopt.Pplan.t) =
  let b = Buffer.create 256 in
  let rec go depth (n : Pdwopt.Pplan.t) =
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b
      (Printf.sprintf "%s  {%s, rows=%.0f, dms=%.4g, serial=%.4g}\n"
         (op_label n.Pdwopt.Pplan.op)
         (Dms.Distprop.short_string n.Pdwopt.Pplan.dist)
         n.Pdwopt.Pplan.rows n.Pdwopt.Pplan.dms_cost n.Pdwopt.Pplan.serial_cost);
    if depth >= max_depth && n.Pdwopt.Pplan.children <> [] then
      Buffer.add_string b (String.make (2 * (depth + 1)) ' ' ^ "...\n")
    else List.iter (go (depth + 1)) n.Pdwopt.Pplan.children
  in
  go 0 p;
  Buffer.contents b

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>[%s] %s@,%a@]" v.rule v.message
    Format.pp_print_text v.subtree

let to_string vs =
  String.concat "\n"
    (List.map
       (fun v -> Printf.sprintf "[%s] %s\n%s" v.rule v.message v.subtree)
       vs)

(* -- shared derivation helpers (must agree with the producers:
      Pdwopt.Enumerate and Baseline) -- *)

(* base-table distribution from the shell database; unknown tables and
   unprojected partition columns degrade to Hashed [] ("distributed,
   unknown partitioning"), exactly as the producers do *)
let scan_dist shell (table : string) (cols : int array) : Dms.Distprop.t =
  match Catalog.Shell_db.find shell table with
  | None -> Dms.Distprop.Hashed []
  | Some tbl ->
    (match tbl.Catalog.Shell_db.dist with
     | Catalog.Distribution.Replicated -> Dms.Distprop.Replicated
     | Catalog.Distribution.Hash_partitioned names ->
       let schema = tbl.Catalog.Shell_db.schema in
       let ids =
         List.filter_map
           (fun n ->
              match Catalog.Schema.find_col schema n with
              | Some i when i < Array.length cols -> Some cols.(i)
              | _ -> None)
           names
       in
       Dms.Distprop.Hashed ids)

(* a projection renames hash-distribution columns it passes through *)
let rename_dist defs (d : Dms.Distprop.t) =
  match d with
  | Dms.Distprop.Hashed cols when cols <> [] ->
    let rename c =
      match
        List.find_map
          (fun (out, e) ->
             match e with Expr.Col c' when c' = c -> Some out | _ -> None)
          defs
      with
      | Some out -> out
      | None -> c
    in
    Dms.Distprop.Hashed (List.map rename cols)
  | d -> d

(* distribution of a union executed locally on each node (branch-wise
   concatenation); [None] when per-node concatenation duplicates rows
   (mixed replicated/distributed inputs) *)
let union_dist (l : Dms.Distprop.t) (r : Dms.Distprop.t) : Dms.Distprop.t option =
  match l, r with
  | Dms.Distprop.Hashed lc, Dms.Distprop.Hashed rc when lc = rc && lc <> [] ->
    Some (Dms.Distprop.Hashed lc)
  | Dms.Distprop.Hashed _, Dms.Distprop.Hashed _ ->
    (* distributed but unaligned (or unknown): correct node-wise, no usable
       hash property survives *)
    Some (Dms.Distprop.Hashed [])
  | Dms.Distprop.Replicated, Dms.Distprop.Replicated -> Some Dms.Distprop.Replicated
  | Dms.Distprop.Single_node, Dms.Distprop.Single_node -> Some Dms.Distprop.Single_node
  | _ -> None

let layout_of (p : Pdwopt.Pplan.t) : int list option =
  try Some (Pdwopt.Pplan.output_layout p) with Invalid_argument _ -> None

(* -- the tree walk (R0-R6) -- *)

type ctx = {
  shell : Catalog.Shell_db.t;
  cost : cost_model option;
  mutable acc : violation list;  (** collected in reverse *)
  mutable recomputed : float;    (** sum of recomputed move costs (R6) *)
  mutable recompute_ok : bool;   (** every per-move R6 check passed *)
}

let add ctx rule node fmt =
  Printf.ksprintf
    (fun message ->
       ctx.acc <- { rule; message; subtree = subtree_string node } :: ctx.acc)
    fmt

let deq = Dms.Distprop.equal
let dshort = Dms.Distprop.short_string

(* R3 + R4 + R6: one Move node *)
let check_move ctx (p : Pdwopt.Pplan.t) kind cols (c : Pdwopt.Pplan.t) =
  (* R3: applicability and declared output distribution *)
  (match Dms.Op.output_dist kind c.Pdwopt.Pplan.dist with
   | None ->
     add ctx r3 p "%s does not apply to an input distributed %s"
       (Dms.Op.name kind) (dshort c.Pdwopt.Pplan.dist)
   | Some d ->
     if not (deq d p.Pdwopt.Pplan.dist) then
       add ctx r3 p "%s over %s produces %s, but the plan declares %s"
         (Dms.Op.name kind) (dshort c.Pdwopt.Pplan.dist) (dshort d)
         (dshort p.Pdwopt.Pplan.dist));
  (* R4: the moved projection *)
  if cols = [] then add ctx r4 p "movement carries no columns";
  (match layout_of c with
   | None -> ()  (* the malformed child is reported by its own R0 *)
   | Some lay ->
     let missing = List.filter (fun x -> not (List.mem x lay)) cols in
     if missing <> [] then
       add ctx r4 p "moved columns [%s] are not produced by the child (layout [%s])"
         (ids missing) (ids lay));
  (match kind with
   | Dms.Op.Shuffle h | Dms.Op.Trim h ->
     if h = [] then
       add ctx r4 p "%s has an empty hash column list" (Dms.Op.name kind)
     else begin
       let missing = List.filter (fun x -> not (List.mem x cols)) h in
       if missing <> [] then
         add ctx r4 p
           "hash columns [%s] are not carried by the moved stream (cols [%s])"
           (ids missing) (ids cols)
     end
   | _ -> ());
  (* R6: the move's cost delta against the DMS cost model. The producers
     disagree on whether the byte width is clamped to >= 1 (the enforcer
     clamps, the aggregation split does not), so both readings pass. *)
  match ctx.cost with
  | None -> ()
  | Some cm ->
    let sum = List.fold_left (fun a x -> a +. Registry.width cm.reg x) 0. cols in
    let expected width =
      (Dms.Cost.cost ~lambdas:cm.lambdas kind ~nodes:cm.nodes
         ~rows:c.Pdwopt.Pplan.rows ~width)
        .Dms.Cost.c_total
    in
    let ea = expected sum and eb = expected (Float.max 1. sum) in
    let delta = p.Pdwopt.Pplan.dms_cost -. c.Pdwopt.Pplan.dms_cost in
    let tol v = (1e-6 *. Float.abs v) +. 1e-9 in
    if
      Float.abs (delta -. ea) <= tol ea || Float.abs (delta -. eb) <= tol eb
    then ctx.recomputed <- ctx.recomputed +. delta
    else begin
      ctx.recompute_ok <- false;
      add ctx r6 p
        "movement cost delta %.6g differs from the DMS cost model's %.6g \
         (%s, %.0f rows, width %.3g)"
        delta eb (Dms.Op.name kind) c.Pdwopt.Pplan.rows (Float.max 1. sum)
    end

(* R0 + R1 + R2: one Serial node. [from_agg] carries the group-by keys of
   an enclosing aggregate (propagated through Moves), legitimizing the
   partial half of the local/global aggregation split, whose input is by
   construction not co-located on the keys. *)
let check_serial ctx ~from_agg (p : Pdwopt.Pplan.t) (sop : Memo.Physop.t)
    (children : Pdwopt.Pplan.t list) =
  let declared = p.Pdwopt.Pplan.dist in
  let arity what n =
    add ctx r0 p "%s expects %d child%s, has %d" what n
      (if n = 1 then "" else "ren")
      (List.length children)
  in
  match sop, children with
  | Memo.Physop.Table_scan { table; cols; _ }, [] ->
    let d = scan_dist ctx.shell table cols in
    if not (deq declared d) then
      add ctx r1 p "scan of %s is %s on the appliance, plan declares %s" table
        (dshort d) (dshort declared)
  | Memo.Physop.Table_scan _, _ -> arity "Table_scan" 0
  | Memo.Physop.Const_empty _, [] -> ()  (* empty: any distribution holds *)
  | Memo.Physop.Const_empty _, _ -> arity "Const_empty" 0
  | (Memo.Physop.Filter _ | Memo.Physop.Sort_op _), [ c ] ->
    if not (deq declared c.Pdwopt.Pplan.dist) then
      add ctx r1 p "%s preserves its input distribution %s, plan declares %s"
        (Memo.Physop.name sop) (dshort c.Pdwopt.Pplan.dist) (dshort declared)
  | Memo.Physop.Compute defs, [ c ] ->
    (* both the raw input distribution and its projection-renamed image are
       true claims; the producers use either *)
    let cd = c.Pdwopt.Pplan.dist in
    let renamed = rename_dist defs cd in
    if not (deq declared cd || deq declared renamed) then
      add ctx r1 p "projection of a %s input can declare %s or %s, plan declares %s"
        (dshort cd) (dshort cd) (dshort renamed) (dshort declared)
  | ( Memo.Physop.Hash_join { kind; pred }
    | Memo.Physop.Merge_join { kind; pred }
    | Memo.Physop.Nl_join { kind; pred } ), [ l; r ] ->
    (match layout_of l, layout_of r with
     | Some ll, Some rl ->
       let equi =
         Memo.Physop.oriented_equi_pairs pred
           ~left_cols:(Registry.Col_set.of_list ll)
           ~right_cols:(Registry.Col_set.of_list rl)
       in
       (match
          Dms.Distprop.join_local ~kind ~equi l.Pdwopt.Pplan.dist
            r.Pdwopt.Pplan.dist
        with
        | None ->
          add ctx r2 p
            "%s join over %s x %s inputs is not locally executable; a data \
             movement is missing"
            (join_kind_name kind)
            (dshort l.Pdwopt.Pplan.dist) (dshort r.Pdwopt.Pplan.dist)
        | Some d ->
          if not (deq declared d) then
            add ctx r1 p "local join of %s x %s produces %s, plan declares %s"
              (dshort l.Pdwopt.Pplan.dist) (dshort r.Pdwopt.Pplan.dist)
              (dshort d) (dshort declared))
     | _ -> ())
  | (Memo.Physop.Hash_agg { keys; _ } | Memo.Physop.Stream_agg { keys; _ }), [ c ]
    -> begin
      match Dms.Distprop.groupby_local ~keys c.Pdwopt.Pplan.dist with
      | Some d ->
        if not (deq declared d) then
          add ctx r1 p "local group-by over %s produces %s, plan declares %s"
            (dshort c.Pdwopt.Pplan.dist) (dshort d) (dshort declared)
      | None ->
        (match from_agg with
         | Some gkeys when gkeys = keys ->
           (* the partial (local) half of a split: emits per-node partial
              groups, so it passes the input distribution through; the
              global half above re-derives normally *)
           if not (deq declared c.Pdwopt.Pplan.dist) then
             add ctx r1 p
               "partial aggregate passes its input distribution %s through, \
                plan declares %s"
               (dshort c.Pdwopt.Pplan.dist) (dshort declared)
         | _ ->
           add ctx r2 p
             "group-by on keys [%s] over a %s input is not local and no \
              enclosing global aggregate re-groups it; a movement or \
              local/global split is missing"
             (ids keys) (dshort c.Pdwopt.Pplan.dist))
    end
  | Memo.Physop.Union_op, [ l; r ] ->
    (match union_dist l.Pdwopt.Pplan.dist r.Pdwopt.Pplan.dist with
     | None ->
       add ctx r2 p
         "union branches distributed %s / %s cannot be concatenated \
          node-wise; an aligning movement is missing"
         (dshort l.Pdwopt.Pplan.dist) (dshort r.Pdwopt.Pplan.dist)
     | Some d ->
       if not (deq declared d) then
         add ctx r1 p "union of %s / %s produces %s, plan declares %s"
           (dshort l.Pdwopt.Pplan.dist) (dshort r.Pdwopt.Pplan.dist)
           (dshort d) (dshort declared))
  | (Memo.Physop.Filter _ | Memo.Physop.Sort_op _ | Memo.Physop.Compute _), _ ->
    arity (Memo.Physop.name sop) 1
  | (Memo.Physop.Hash_agg _ | Memo.Physop.Stream_agg _), _ ->
    arity (Memo.Physop.name sop) 1
  | ( Memo.Physop.Hash_join _ | Memo.Physop.Merge_join _ | Memo.Physop.Nl_join _
    | Memo.Physop.Union_op ), _ ->
    arity (Memo.Physop.name sop) 2

(* R5: finite, non-negative, bottom-up non-decreasing. Equality with the
   children's sum is deliberately NOT required: post-optimization may
   splice out identity movements without reknitting ancestor cumulatives. *)
let check_costs ctx (p : Pdwopt.Pplan.t) =
  let fin what v =
    if not (Float.is_finite v) || v < 0. then
      add ctx r5 p "%s is %g (must be finite and non-negative)" what v
  in
  fin "row estimate" p.Pdwopt.Pplan.rows;
  fin "cumulative DMS cost" p.Pdwopt.Pplan.dms_cost;
  fin "cumulative serial cost" p.Pdwopt.Pplan.serial_cost;
  let tol v = (1e-6 *. Float.abs v) +. 1e-9 in
  let cd =
    List.fold_left (fun a (c : Pdwopt.Pplan.t) -> a +. c.Pdwopt.Pplan.dms_cost) 0.
      p.Pdwopt.Pplan.children
  in
  if p.Pdwopt.Pplan.dms_cost < cd -. tol cd then
    add ctx r5 p "cumulative DMS cost %.6g is below its children's %.6g"
      p.Pdwopt.Pplan.dms_cost cd;
  let cs =
    List.fold_left
      (fun a (c : Pdwopt.Pplan.t) -> a +. c.Pdwopt.Pplan.serial_cost)
      0. p.Pdwopt.Pplan.children
  in
  if p.Pdwopt.Pplan.serial_cost < cs -. tol cs then
    add ctx r5 p "cumulative serial cost %.6g is below its children's %.6g"
      p.Pdwopt.Pplan.serial_cost cs

let rec walk ctx ~root ~costs ~from_agg (p : Pdwopt.Pplan.t) =
  (match p.Pdwopt.Pplan.op, p.Pdwopt.Pplan.children with
   | Pdwopt.Pplan.Return _, [ _ ] ->
     if not root then add ctx r0 p "Return operator below the plan root";
     if not (deq p.Pdwopt.Pplan.dist Dms.Distprop.Single_node) then
       add ctx r1 p "Return gathers to the control node (S), plan declares %s"
         (dshort p.Pdwopt.Pplan.dist)
   | Pdwopt.Pplan.Return _, _ ->
     add ctx r0 p "Return expects 1 child, has %d"
       (List.length p.Pdwopt.Pplan.children)
   | Pdwopt.Pplan.Move { kind; cols }, [ c ] -> check_move ctx p kind cols c
   | Pdwopt.Pplan.Move _, _ ->
     add ctx r0 p "Move expects 1 child, has %d"
       (List.length p.Pdwopt.Pplan.children)
   | Pdwopt.Pplan.Serial sop, children -> check_serial ctx ~from_agg p sop children);
  if costs then check_costs ctx p;
  let child_flag =
    match p.Pdwopt.Pplan.op with
    | Pdwopt.Pplan.Serial
        (Memo.Physop.Hash_agg { keys; _ } | Memo.Physop.Stream_agg { keys; _ }) ->
      Some keys
    | Pdwopt.Pplan.Move _ -> from_agg  (* forwarded through the split's Move *)
    | _ -> None
  in
  List.iter
    (walk ctx ~root:false ~costs ~from_agg:child_flag)
    p.Pdwopt.Pplan.children

let check_plan ~costs ~shell ~cost (p : Pdwopt.Pplan.t) : ctx =
  let ctx = { shell; cost; acc = []; recomputed = 0.; recompute_ok = true } in
  walk ctx ~root:true ~costs ~from_agg:None p;
  (* R6 root reconciliation: the plan's total DMS cost is exactly the sum
     of its movement costs (the Return contributes nothing, paper §2.3) *)
  (match cost with
   | Some _ when ctx.recompute_ok ->
     let total = p.Pdwopt.Pplan.dms_cost in
     let tol = (1e-6 *. Float.abs ctx.recomputed) +. 1e-9 in
     if Float.abs (total -. ctx.recomputed) > tol then
       add ctx r6 p
         "root DMS cost %.6g differs from the sum of recomputed movement \
          costs %.6g"
         total ctx.recomputed
   | _ -> ());
  ctx

(* -- DSQL rules (R7-R9) -- *)

(* temp-table references in a SQL string: every TEMP_ID_<n> token *)
let temp_refs sql =
  let out = ref [] in
  let n = String.length sql in
  let pat = "TEMP_ID_" in
  let plen = String.length pat in
  let i = ref 0 in
  while !i + plen <= n do
    if String.sub sql !i plen = pat then begin
      let j = ref (!i + plen) in
      while !j < n && sql.[!j] >= '0' && sql.[!j] <= '9' do incr j done;
      if !j > !i + plen then out := String.sub sql !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !out

(* the plan's Move nodes in DSQL emission order: bottom-up, skipping
   structural duplicates exactly the way generation deduplicates them
   into shared temp tables *)
let collect_moves (p : Pdwopt.Pplan.t) : (Dms.Op.kind * int list) list =
  let seen : (Pdwopt.Pplan.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go (n : Pdwopt.Pplan.t) =
    List.iter go n.Pdwopt.Pplan.children;
    match n.Pdwopt.Pplan.op with
    | Pdwopt.Pplan.Move { kind; cols } when not (Hashtbl.mem seen n) ->
      Hashtbl.replace seen n ();
      acc := (kind, cols) :: !acc
    | _ -> ()
  in
  (match p.Pdwopt.Pplan.op, p.Pdwopt.Pplan.children with
   | Pdwopt.Pplan.Return _, [ c ] -> go c
   | _ -> go p);
  List.rev !acc

let check_dsql acc (p : Pdwopt.Pplan.t) (d : Dsql.Generate.plan) =
  let steps = d.Dsql.Generate.steps in
  let v rule step fmt =
    Printf.ksprintf
      (fun message ->
         let subtree =
           match step with
           | Some s -> Dsql.Generate.step_to_string d.Dsql.Generate.reg s
           | None -> subtree_string p
         in
         acc := { rule; message; subtree } :: !acc)
      fmt
  in
  (* R7: ids are 0..n-1 in execution order *)
  List.iteri
    (fun i s ->
       let id = Dsql.Generate.step_id s in
       if id <> i then
         v r7 (Some s) "step at position %d carries id %d (want sequential ids)" i id)
    steps;
  (* R7: exactly one Return step, and it is last *)
  let returns =
    List.filter (function Dsql.Generate.Return_step _ -> true | _ -> false) steps
  in
  (match returns with
   | [ _ ] ->
     (match List.rev steps with
      | Dsql.Generate.Return_step _ :: _ -> ()
      | (Dsql.Generate.Dms_step _ as last) :: _ ->
        v r7 (Some last) "the last step must be the Return step"
      | [] -> ())
   | [] -> v r7 None "no Return step"
   | _ :: _ :: _ ->
     v r7 None "%d Return steps (want exactly one)" (List.length returns));
  (* R7: temp-table names are unique *)
  let temps =
    List.filter_map
      (function
        | Dsql.Generate.Dms_step { temp_table; _ } -> Some temp_table
        | Dsql.Generate.Return_step _ -> None)
      steps
  in
  if List.length temps <> List.length (List.sort_uniq compare temps) then
    v r7 None "duplicate temp-table names: %s" (String.concat ", " temps);
  (* R8: defined-before-use *)
  ignore
    (List.fold_left
       (fun defined s ->
          let sql, own =
            match s with
            | Dsql.Generate.Dms_step { source_sql; temp_table; _ } ->
              (source_sql, Some temp_table)
            | Dsql.Generate.Return_step { sql; _ } -> (sql, None)
          in
          List.iter
            (fun t ->
               if not (List.mem t defined) then
                 v r8 (Some s) "references %s before any step fills it" t)
            (temp_refs sql);
          match own with Some t -> t :: defined | None -> defined)
       [] steps);
  (* R9: DMS steps mirror the plan's movements *)
  let expected = collect_moves p in
  let actual =
    List.filter_map
      (function
        | Dsql.Generate.Dms_step { kind; cols; _ } as s -> Some (s, kind, cols)
        | Dsql.Generate.Return_step _ -> None)
      steps
  in
  if List.length expected <> List.length actual then
    v r9 None "%d DMS steps for %d plan movements" (List.length actual)
      (List.length expected)
  else
    List.iter2
      (fun (ekind, ecols) (s, akind, acols) ->
         if ekind <> akind then
           v r9 (Some s) "step kind %s, plan movement is %s" (Dms.Op.name akind)
             (Dms.Op.name ekind);
         let aids = List.map fst acols in
         if aids <> ecols then
           v r9 (Some s) "temp-table schema covers columns [%s], movement \
                          carries [%s]"
             (ids aids) (ids ecols))
      expected actual;
  (* R10 (DSQL leg): every temp-table schema column resolves in the
     registry, and duplicate emitted names agree on their type *)
  List.iter
    (function
      | Dsql.Generate.Dms_step { cols; _ } as s ->
        List.iter
          (fun (te : Analysis.type_error) ->
             v r10 (Some s) "%s: %s" te.Analysis.expr te.Analysis.reason)
          (Analysis.check_temp_cols d.Dsql.Generate.reg cols)
      | Dsql.Generate.Return_step _ -> ())
    steps

(* -- R10-R12: the abstract-interpretation pass (DESIGN.md §12) -- *)

(* The estimator floors every estimate at 1 row (empty inputs, folded
   branches), so a derived upper bound of 0 still admits estimates of a few
   rows: tolerate max(1, hi) plus a small additive slack for unions over
   folded branches. The bounds themselves are sound; only the comparison
   against the *estimator* is slack. *)
let est_within ~lo ~hi est =
  est <= Float.max 1. hi +. 8. +. (1e-6 *. hi) && est >= (lo *. (1. -. 1e-6)) -. 1.

let check_analysis acc ~shell (cm : cost_model) (p : Pdwopt.Pplan.t) =
  let actx = Analysis.context ~shell ~reg:cm.reg ~nodes:cm.nodes in
  let v rule node fmt =
    Printf.ksprintf
      (fun message -> acc := { rule; message; subtree = subtree_string node } :: !acc)
      fmt
  in
  List.iter
    (fun ((node : Pdwopt.Pplan.t), (i : Analysis.node_info)) ->
       List.iter
         (fun (te : Analysis.type_error) ->
            v r10 node "%s: %s" te.Analysis.expr te.Analysis.reason)
         i.Analysis.type_errors;
       (match i.Analysis.contradiction with
        | Some pred -> v r12 node "contradictory predicate left unfolded: %s" pred
        | None -> ());
       (match node.Pdwopt.Pplan.op with
        | Pdwopt.Pplan.Return _ ->
          (* the optimizer's Return reports the child's rows, not the
             TOP-clamped count; the runtime oracle covers the gather *)
          ()
        | _ ->
          if
            not
              (est_within ~lo:i.Analysis.card_lo ~hi:i.Analysis.card_hi
                 node.Pdwopt.Pplan.rows)
          then
            v r11 node "row estimate %.6g outside derived bounds [%.6g, %.6g]"
              node.Pdwopt.Pplan.rows i.Analysis.card_lo i.Analysis.card_hi))
    (Analysis.annotate actx p)

(* -- entry points -- *)

let report obs ~rules_run vs =
  Obs.add obs "check.rules_run" rules_run;
  Obs.add obs "check.violations" (List.length vs)

let validate ?(obs = Obs.null) ?cost ?dsql ~shell (p : Pdwopt.Pplan.t) :
  violation list =
  let ctx = check_plan ~costs:true ~shell ~cost p in
  let acc = ref ctx.acc in
  (match cost with None -> () | Some cm -> check_analysis acc ~shell cm p);
  (match dsql with None -> () | Some d -> check_dsql acc p d);
  let vs = List.rev !acc in
  let rules_run =
    6 + (if cost = None then 0 else 4) + if dsql = None then 0 else 3
  in
  report obs ~rules_run vs;
  vs

let validate_exec ?(obs = Obs.null) ~shell (p : Pdwopt.Pplan.t) : violation list =
  let ctx = check_plan ~costs:false ~shell ~cost:None p in
  let vs = List.rev ctx.acc in
  report obs ~rules_run:5 vs;
  vs
