(** Lightweight, dependency-free observability for the optimization
    pipeline: monotonic wall-clock timers, named counters, hierarchical
    spans, and a pluggable event sink.

    Every pipeline layer receives an [Obs.t] context (default {!null}) and
    reports stage-specific metrics into it; the CLI's [explain --profile]
    and the benchmark harness render or query the same context, so there is
    one source of truth for "where does optimization time go".

    The disabled context {!null} makes every operation a constant-time
    no-op, so instrumentation can stay unconditionally in hot paths. *)

(** A node of the span tree. A span accumulates over re-entries: running
    the same stage name twice under the same parent adds to [elapsed] and
    [calls] rather than creating a sibling. *)
type span = {
  name : string;
  mutable elapsed : float;             (** total wall-clock seconds inside *)
  mutable calls : int;                 (** completed entries *)
  mutable metrics : (string * float) list;  (** insertion order *)
  mutable children : span list;        (** insertion order *)
}

(** Events delivered to a sink as they happen (spans are also retained in
    the context for post-hoc reporting). Paths are outermost-first. *)
type event =
  | Span_open of string list
  | Span_close of string list * float  (** path, elapsed seconds of this entry *)
  | Metric of string list * string * float  (** enclosing span path, name, new value *)

type sink = event -> unit

type t

(** The disabled context: every operation is a no-op, [enabled] is false. *)
val null : t

(** A live context. [clock] defaults to a monotonic wall-clock;
    [sink] defaults to dropping events (the span tree is still built). *)
val create : ?clock:(unit -> float) -> ?sink:sink -> unit -> t

(** The default wall clock (seconds since the epoch) used by {!create};
    exported so other layers (e.g. governor deadlines) measure time the
    same way spans do. *)
val default_clock : unit -> float

val enabled : t -> bool

(** [with_span t name f] runs [f] inside a child span [name] of the current
    span, timing it. Exceptions propagate; time is still recorded. On
    {!null} this is exactly [f ()]. *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** [add t name n] adds [n] to counter [name] on the current span. *)
val add : t -> string -> int -> unit

(** [addf t name v] adds float [v] to counter [name] on the current span. *)
val addf : t -> string -> float -> unit

(** [set t name v] sets gauge [name] on the current span (last write wins). *)
val set : t -> string -> float -> unit

(** Top-level spans (children of the implicit root), in creation order. *)
val roots : t -> span list

(** Metrics recorded outside any span, in creation order. *)
val global_metrics : t -> (string * float) list

(** [find t path] looks a span up by its outermost-first name path. *)
val find : t -> string list -> span option

(** [counter t name] sums metric [name] over the whole tree (including
    root-level metrics). Returns [0.] when absent or on {!null}. *)
val counter : t -> string -> float

(** [counters_prefixed t prefix] — every counter whose name starts with
    [prefix], summed over the whole tree, sorted by name. Useful for
    reporting a metric family (e.g. [fault.]) without enumerating it. *)
val counters_prefixed : t -> string -> (string * float) list

(** Sum of a metric over one span's subtree. *)
val span_counter : span -> string -> float

val span_metric : span -> string -> float option

(** Render the span tree: one line per span with wall-clock time, entry
    count, and its metrics; indented by depth. *)
val report : t -> string
