type span = {
  name : string;
  mutable elapsed : float;
  mutable calls : int;
  mutable metrics : (string * float) list;
  mutable children : span list;
}

type event =
  | Span_open of string list
  | Span_close of string list * float
  | Metric of string list * string * float

type sink = event -> unit

type ctx = {
  clock : unit -> float;
  sink : sink;
  root : span;               (* implicit container, never reported itself *)
  mutable stack : span list; (* innermost first; root at the bottom *)
}

type t = Null | Ctx of ctx

let fresh_span name = { name; elapsed = 0.; calls = 0; metrics = []; children = [] }

(* Unix.gettimeofday without the unix dependency: the stdlib exposes no
   monotonic clock before effects-era mtime libraries, so we fall back to
   Sys.time (CPU seconds) only if gettimeofday is unavailable.  In this
   codebase unix ships with the compiler, so use it directly. *)
let default_clock = Unix.gettimeofday

let null = Null

let create ?(clock = default_clock) ?(sink = fun _ -> ()) () =
  let root = fresh_span "" in
  Ctx { clock; sink; root; stack = [ root ] }

let enabled = function Null -> false | Ctx _ -> true

(* outermost-first path of the current stack, root elided *)
let path_of c =
  List.rev_map (fun s -> s.name) (List.filter (fun s -> s != c.root) c.stack)

let with_span t name f =
  match t with
  | Null -> f ()
  | Ctx c ->
    let parent = List.hd c.stack in
    let sp =
      match List.find_opt (fun s -> s.name = name) parent.children with
      | Some s -> s
      | None ->
        let s = fresh_span name in
        parent.children <- parent.children @ [ s ];
        s
    in
    c.stack <- sp :: c.stack;
    c.sink (Span_open (path_of c));
    let t0 = c.clock () in
    Fun.protect
      ~finally:(fun () ->
          let dt = c.clock () -. t0 in
          sp.elapsed <- sp.elapsed +. dt;
          sp.calls <- sp.calls + 1;
          c.sink (Span_close (path_of c, dt));
          c.stack <- List.tl c.stack)
      f

let update t name f =
  match t with
  | Null -> ()
  | Ctx c ->
    let sp = List.hd c.stack in
    let v =
      match List.assoc_opt name sp.metrics with
      | Some old -> f old
      | None -> f 0.
    in
    sp.metrics <-
      (if List.mem_assoc name sp.metrics then
         List.map (fun (k, old) -> if k = name then (k, v) else (k, old)) sp.metrics
       else sp.metrics @ [ (name, v) ]);
    c.sink (Metric (path_of c, name, v))

let addf t name v = update t name (fun old -> old +. v)
let add t name n = addf t name (float_of_int n)
let set t name v = update t name (fun _ -> v)

let roots = function Null -> [] | Ctx c -> c.root.children
let global_metrics = function Null -> [] | Ctx c -> c.root.metrics

let find t names =
  match t with
  | Null -> None
  | Ctx c ->
    let rec go sp = function
      | [] -> Some sp
      | n :: rest ->
        (match List.find_opt (fun s -> s.name = n) sp.children with
         | Some child -> go child rest
         | None -> None)
    in
    (match names with [] -> None | _ -> go c.root names)

let span_metric sp name = List.assoc_opt name sp.metrics

let rec span_counter sp name =
  (match span_metric sp name with Some v -> v | None -> 0.)
  +. List.fold_left (fun acc c -> acc +. span_counter c name) 0. sp.children

let counter t name =
  match t with Null -> 0. | Ctx c -> span_counter c.root name

let counters_prefixed t prefix =
  match t with
  | Null -> []
  | Ctx c ->
    let matches name =
      String.length name >= String.length prefix
      && String.sub name 0 (String.length prefix) = prefix
    in
    let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
    let note (name, v) =
      if matches name then
        Hashtbl.replace totals name
          (v +. Option.value ~default:0. (Hashtbl.find_opt totals name))
    in
    let rec walk sp =
      List.iter note sp.metrics;
      List.iter walk sp.children
    in
    walk c.root;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

(* -- reporting -- *)

let metric_to_string (k, v) =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%s=%.0f" k v
  else Printf.sprintf "%s=%.4g" k v

let time_to_string s =
  if s >= 1. then Printf.sprintf "%8.3f s " s
  else if s >= 1e-3 then Printf.sprintf "%8.3f ms" (s *. 1e3)
  else Printf.sprintf "%8.1f us" (s *. 1e6)

let report t =
  match t with
  | Null -> ""
  | Ctx c ->
    let buf = Buffer.create 512 in
    let rec render depth sp =
      Buffer.add_string buf
        (Printf.sprintf "%-32s %s%s\n"
           (String.make (2 * depth) ' ' ^ sp.name)
           (time_to_string sp.elapsed)
           (if sp.calls > 1 then Printf.sprintf "  (%d calls)" sp.calls else ""));
      List.iter
        (fun m ->
           Buffer.add_string buf
             (Printf.sprintf "%s%s\n" (String.make (2 * depth + 4) ' ')
                (metric_to_string m)))
        sp.metrics;
      List.iter (render (depth + 1)) sp.children
    in
    List.iter (render 0) c.root.children;
    if c.root.metrics <> [] then begin
      Buffer.add_string buf "(global)\n";
      List.iter
        (fun m -> Buffer.add_string buf ("    " ^ metric_to_string m ^ "\n"))
        c.root.metrics
    end;
    Buffer.contents buf
