(** Abstract syntax for the SQL subset accepted by the PDW parser
    (paper Fig. 2, component 1).

    The subset covers everything the paper's examples need: multi-way joins
    (comma and ANSI JOIN syntax), WHERE/GROUP BY/HAVING/ORDER BY/TOP,
    aggregates, IN / EXISTS / scalar subqueries (correlated or not), LIKE,
    BETWEEN, CASE, date arithmetic (DATEADD), and CAST. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type agg = Count_star | Count | Sum | Avg | Min | Max

type order_dir = Asc | Desc

(** Distributed-execution query hints (paper §3.1): the PDW query surface
    adds "a handful of query hints for specific distributed execution
    strategies", given as a trailing [OPTION (...)] clause. *)
type hint =
  | Hint_broadcast of string   (** OPTION (BROADCAST alias): replicate this
                                   table's stream before it is joined *)
  | Hint_shuffle of string     (** OPTION (SHUFFLE alias): keep this table's
                                   stream hash-partitioned (never replicate) *)
  | Hint_force_order           (** OPTION (FORCE ORDER): no join reordering *)

type expr =
  | Col of string option * string          (** [qualifier.]column *)
  | Lit of Catalog.Value.t
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Is_null of { e : expr; negated : bool }
  | Like of { e : expr; pattern : string; negated : bool }
  | In_list of { e : expr; items : expr list; negated : bool }
  | In_query of { e : expr; q : query; negated : bool }
  | Exists of { q : query; negated : bool }
  | Between of { e : expr; lo : expr; hi : expr; negated : bool }
  | Agg of { func : agg; distinct : bool; arg : expr option }
  | Func of string * expr list             (** DATEADD, YEAR, SUBSTRING, ... *)
  | Case of { branches : (expr * expr) list; else_ : expr option }
  | Scalar_query of query                  (** (SELECT single-value ...) *)
  | Cast of expr * Catalog.Types.t

and select_item =
  | Sel_expr of expr * string option       (** expression [AS alias] *)
  | Sel_star of string option              (** [table.]* *)

and table_ref =
  | Tref_table of { name : string; alias : string option }
  | Tref_subquery of { q : query; alias : string }
  | Tref_join of { left : table_ref; kind : join_kind; right : table_ref;
                   on : expr option }

and join_kind = Jinner | Jleft | Jright | Jcross

and query = {
  distinct : bool;
  top : int option;
  select : select_item list;
  from : table_ref list;                   (** comma-separated FROM items *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  union_all : query option;
      (** [SELECT ... UNION ALL <query>]; ORDER BY/TOP above apply to the
          whole union *)
  hints : hint list;           (** trailing OPTION (...) clause, root only *)
}

let query ?(distinct = false) ?top ?(from = []) ?where ?(group_by = []) ?having
    ?(order_by = []) ?union_all ?(hints = []) select =
  { distinct; top; select; from; where; group_by; having; order_by; union_all; hints }

let col ?tbl name = Col (tbl, name)
let lit v = Lit v
let int_ n = Lit (Catalog.Value.Int n)
let str s = Lit (Catalog.Value.String s)

(* Conjunction-splitting helpers used throughout the optimizer. *)
let rec conjuncts = function
  | Bin (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Bin (And, acc, c)) e rest)

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let string_of_agg = function
  | Count_star -> "COUNT" | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG"
  | Min -> "MIN" | Max -> "MAX"
