(** Recursive-descent parser for the SQL subset (PDW parser, paper Fig. 2
    component 1). *)

open Ast

exception Parse_error of string

type state = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.EOF
let advance st = st.pos <- st.pos + 1

let error st msg =
  let tok = peek st in
  raise (Parse_error (Printf.sprintf "%s (at token %s)" msg (Lexer.token_to_string tok)))

let expect st tok msg =
  if peek st = tok then advance st else error st msg

let accept st tok = if peek st = tok then (advance st; true) else false

let accept_kw st kw = match peek st with
  | Lexer.KW k when k = kw -> advance st; true
  | _ -> false

let expect_kw st kw = if not (accept_kw st kw) then error st (Printf.sprintf "expected %s" kw)

let ident st = match peek st with
  | Lexer.IDENT s -> advance st; s
  | _ -> error st "expected identifier"

(* Multi-part names like [tpch].[dbo].[lineitem]: keep the last component. *)
let qualified_name st =
  let first = ident st in
  let rec go last =
    if peek st = Lexer.DOT && (match peek2 st with Lexer.IDENT _ -> true | _ -> false)
    then begin advance st; go (ident st) end
    else last
  in
  go first

let type_name st =
  let name = String.uppercase_ascii (match peek st with
    | Lexer.IDENT s -> advance st; s
    | Lexer.KW k -> advance st; k
    | _ -> error st "expected type name")
  in
  (* swallow optional (p[,s]) *)
  if accept st Lexer.LPAREN then begin
    let rec skip depth =
      match peek st with
      | Lexer.RPAREN -> advance st; if depth > 1 then skip (depth - 1)
      | Lexer.LPAREN -> advance st; skip (depth + 1)
      | Lexer.EOF -> error st "unterminated type arguments"
      | _ -> advance st; skip depth
    in
    skip 1
  end;
  match name with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" -> Catalog.Types.Tint
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Catalog.Types.Tfloat
  | "VARCHAR" | "CHAR" | "NVARCHAR" | "TEXT" -> Catalog.Types.Tstring
  | "DATE" | "DATETIME" | "TIMESTAMP" -> Catalog.Types.Tdate
  | "BOOL" | "BOOLEAN" | "BIT" -> Catalog.Types.Tbool
  | t -> raise (Parse_error ("unknown type " ^ t))

let int_lit st = match peek st with
  | Lexer.INT n -> advance st; n
  | _ -> error st "expected integer literal"

let rec parse_query st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let top = if accept_kw st "TOP" then Some (int_lit st) else None in
  let select = parse_select_list st in
  let from =
    if accept_kw st "FROM" then begin
      let rec items acc =
        let t = parse_table_ref st in
        if accept st Lexer.COMMA then items (t :: acc) else List.rev (t :: acc)
      in
      items []
    end else []
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec items acc =
        let e = parse_expr st in
        if accept st Lexer.COMMA then items (e :: acc) else List.rev (e :: acc)
      in
      items []
    end else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  (* UNION ALL chains right-recursively; the trailing ORDER BY/TOP belong to
     the whole union and are carried by the last block *)
  let union_all =
    if accept_kw st "UNION" then begin
      expect_kw st "ALL";
      Some (parse_query st)
    end else None
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec items acc =
        let e = parse_expr st in
        let dir = if accept_kw st "DESC" then Desc else (ignore (accept_kw st "ASC"); Asc) in
        if accept st Lexer.COMMA then items ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      items []
    end else []
  in
  let top = if top = None && accept_kw st "LIMIT" then Some (int_lit st) else top in
  let hints =
    match peek st with
    | Lexer.IDENT id when String.uppercase_ascii id = "OPTION" ->
      advance st;
      expect st Lexer.LPAREN "expected ( after OPTION";
      let word () =
        match peek st with
        | Lexer.IDENT s -> advance st; String.uppercase_ascii s
        | Lexer.KW k -> advance st; k
        | _ -> error st "expected hint word"
      in
      let rec items acc =
        let h =
          match word () with
          | "BROADCAST" -> Hint_broadcast (ident st)
          | "SHUFFLE" -> Hint_shuffle (ident st)
          | "FORCE" ->
            (match word () with
             | "ORDER" -> Hint_force_order
             | _ -> error st "expected FORCE ORDER")
          | _ -> error st "unknown hint (BROADCAST t | SHUFFLE t | FORCE ORDER)"
        in
        if accept st Lexer.COMMA then items (h :: acc)
        else begin
          expect st Lexer.RPAREN "expected ) after hints";
          List.rev (h :: acc)
        end
      in
      items []
    | _ -> []
  in
  { distinct; top; select; from; where; group_by; having; order_by; union_all; hints }

and parse_select_list st =
  let item () =
    match peek st with
    | Lexer.STAR -> advance st; Sel_star None
    | Lexer.IDENT t when peek2 st = Lexer.DOT ->
      (* could be tbl.* or tbl.col; look one further *)
      let save = st.pos in
      advance st; advance st;
      if peek st = Lexer.STAR then begin advance st; Sel_star (Some t) end
      else begin st.pos <- save; parse_aliased_expr st end
    | _ -> parse_aliased_expr st
  in
  let rec go acc =
    let it = item () in
    if accept st Lexer.COMMA then go (it :: acc) else List.rev (it :: acc)
  in
  go []

and parse_aliased_expr st =
  let e = parse_expr st in
  let alias =
    if accept_kw st "AS" then Some (ident st)
    else match peek st with
      | Lexer.IDENT s -> advance st; Some s
      | _ -> None
  in
  Sel_expr (e, alias)

and parse_table_ref st =
  let rec joins left =
    let kind =
      if accept_kw st "INNER" then (expect_kw st "JOIN"; Some Jinner)
      else if accept_kw st "LEFT" then (ignore (accept_kw st "OUTER"); expect_kw st "JOIN"; Some Jleft)
      else if accept_kw st "RIGHT" then (ignore (accept_kw st "OUTER"); expect_kw st "JOIN"; Some Jright)
      else if accept_kw st "CROSS" then (expect_kw st "JOIN"; Some Jcross)
      else if accept_kw st "JOIN" then Some Jinner
      else None
    in
    match kind with
    | None -> left
    | Some kind ->
      let right = parse_primary_tref st in
      let on = if accept_kw st "ON" then Some (parse_expr st) else None in
      joins (Tref_join { left; kind; right; on })
  in
  joins (parse_primary_tref st)

and parse_primary_tref st =
  if peek st = Lexer.LPAREN then begin
    advance st;
    match peek st with
    | Lexer.KW "SELECT" ->
      let q = parse_query st in
      expect st Lexer.RPAREN "expected ) after subquery";
      ignore (accept_kw st "AS");
      let alias = ident st in
      Tref_subquery { q; alias }
    | _ ->
      let t = parse_table_ref st in
      expect st Lexer.RPAREN "expected ) after table reference";
      t
  end else begin
    let name = qualified_name st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else match peek st with
        | Lexer.IDENT s when String.uppercase_ascii s <> "OPTION" -> advance st; Some s
        | _ -> None
    in
    Tref_table { name; alias }
  end

(* -- expressions: OR < AND < NOT < predicate < additive < mult < unary -- *)

and parse_expr st = parse_or st

and parse_or st =
  let rec go left =
    if accept_kw st "OR" then go (Bin (Or, left, parse_and st)) else left
  in
  go (parse_and st)

and parse_and st =
  let rec go left =
    if accept_kw st "AND" then go (Bin (And, left, parse_not st)) else left
  in
  go (parse_not st)

and parse_not st =
  if accept_kw st "NOT" then Un (Not, parse_not st)
  else parse_predicate st

and parse_predicate st =
  (* EXISTS as a standalone predicate *)
  if (match peek st with Lexer.KW "EXISTS" -> true | _ -> false) then begin
    advance st;
    expect st Lexer.LPAREN "expected ( after EXISTS";
    let q = parse_query st in
    expect st Lexer.RPAREN "expected ) after EXISTS subquery";
    Exists { q; negated = false }
  end else begin
    let left = parse_additive st in
    let negated = accept_kw st "NOT" in
    match peek st with
    | Lexer.EQ | Lexer.NE | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE when not negated ->
      let op = match peek st with
        | Lexer.EQ -> Eq | Lexer.NE -> Ne | Lexer.LT -> Lt
        | Lexer.LE -> Le | Lexer.GT -> Gt | _ -> Ge
      in
      advance st;
      Bin (op, left, parse_additive st)
    | Lexer.KW "IS" when not negated ->
      advance st;
      let neg = accept_kw st "NOT" in
      expect_kw st "NULL";
      Is_null { e = left; negated = neg }
    | Lexer.KW "IN" ->
      advance st;
      expect st Lexer.LPAREN "expected ( after IN";
      (match peek st with
       | Lexer.KW "SELECT" ->
         let q = parse_query st in
         expect st Lexer.RPAREN "expected ) after IN subquery";
         In_query { e = left; q; negated }
       | _ ->
         let rec items acc =
           let e = parse_expr st in
           if accept st Lexer.COMMA then items (e :: acc) else List.rev (e :: acc)
         in
         let items = items [] in
         expect st Lexer.RPAREN "expected ) after IN list";
         In_list { e = left; items; negated })
    | Lexer.KW "LIKE" ->
      advance st;
      (match peek st with
       | Lexer.STRING p -> advance st; Like { e = left; pattern = p; negated }
       | Lexer.KW "CAST" ->
         (* LIKE CAST ('forest%' AS VARCHAR (7)) — as in the paper's Fig. 7 *)
         (match parse_primary st with
          | Cast (Lit (Catalog.Value.String p), _) -> Like { e = left; pattern = p; negated }
          | _ -> error st "LIKE pattern must be a string literal")
       | _ -> error st "LIKE pattern must be a string literal")
    | Lexer.KW "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      Between { e = left; lo; hi; negated }
    | _ ->
      if negated then error st "expected IN, LIKE or BETWEEN after NOT";
      left
  end

and parse_additive st =
  let rec go left =
    match peek st with
    | Lexer.PLUS -> advance st; go (Bin (Add, left, parse_mult st))
    | Lexer.MINUS -> advance st; go (Bin (Sub, left, parse_mult st))
    | _ -> left
  in
  go (parse_mult st)

and parse_mult st =
  let rec go left =
    match peek st with
    | Lexer.STAR -> advance st; go (Bin (Mul, left, parse_unary st))
    | Lexer.SLASH -> advance st; go (Bin (Div, left, parse_unary st))
    | Lexer.PERCENT -> advance st; go (Bin (Mod, left, parse_unary st))
    | _ -> left
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> advance st; Un (Neg, parse_unary st)
  | Lexer.PLUS -> advance st; parse_unary st
  | _ -> parse_primary st

and parse_args st =
  if accept st Lexer.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st Lexer.COMMA then go (e :: acc)
      else begin expect st Lexer.RPAREN "expected ) after arguments"; List.rev (e :: acc) end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | Lexer.INT n -> advance st; Lit (Catalog.Value.Int n)
  | Lexer.FLOAT f -> advance st; Lit (Catalog.Value.Float f)
  | Lexer.STRING s -> advance st; Lit (Catalog.Value.String s)
  | Lexer.KW "NULL" -> advance st; Lit Catalog.Value.Null
  | Lexer.KW "TRUE" -> advance st; Lit (Catalog.Value.Bool true)
  | Lexer.KW "FALSE" -> advance st; Lit (Catalog.Value.Bool false)
  | Lexer.KW "DATE" ->
    (* DATE '1994-01-01' literal *)
    advance st;
    (match peek st with
     | Lexer.STRING s ->
       advance st;
       (match Catalog.Value.date_of_string s with
        | Some d -> Lit (Catalog.Value.Date d)
        | None -> raise (Parse_error ("invalid date literal " ^ s)))
     | _ -> error st "expected date string after DATE")
  | Lexer.KW "CASE" ->
    advance st;
    let branches = ref [] in
    while (match peek st with Lexer.KW "WHEN" -> true | _ -> false) do
      advance st;
      let c = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      branches := (c, v) :: !branches
    done;
    let else_ = if accept_kw st "ELSE" then Some (parse_expr st) else None in
    expect_kw st "END";
    Case { branches = List.rev !branches; else_ }
  | Lexer.KW "CAST" ->
    advance st;
    expect st Lexer.LPAREN "expected ( after CAST";
    let e = parse_expr st in
    expect_kw st "AS";
    let ty = type_name st in
    expect st Lexer.RPAREN "expected ) after CAST";
    Cast (e, ty)
  | Lexer.KW ("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") ->
    let func = match peek st with
      | Lexer.KW "COUNT" -> Count | Lexer.KW "SUM" -> Sum | Lexer.KW "AVG" -> Avg
      | Lexer.KW "MIN" -> Min | _ -> Max
    in
    advance st;
    expect st Lexer.LPAREN "expected ( after aggregate";
    if peek st = Lexer.STAR then begin
      advance st;
      expect st Lexer.RPAREN "expected ) after COUNT(*)";
      Agg { func = Count_star; distinct = false; arg = None }
    end else begin
      let distinct = accept_kw st "DISTINCT" in
      let e = parse_expr st in
      expect st Lexer.RPAREN "expected ) after aggregate argument";
      Agg { func; distinct; arg = Some e }
    end
  | Lexer.KW "EXISTS" ->
    advance st;
    expect st Lexer.LPAREN "expected ( after EXISTS";
    let q = parse_query st in
    expect st Lexer.RPAREN "expected ) after EXISTS subquery";
    Exists { q; negated = false }
  | Lexer.LPAREN ->
    advance st;
    (match peek st with
     | Lexer.KW "SELECT" ->
       let q = parse_query st in
       expect st Lexer.RPAREN "expected ) after scalar subquery";
       Scalar_query q
     | _ ->
       let e = parse_expr st in
       expect st Lexer.RPAREN "expected )";
       e)
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      Func (String.uppercase_ascii name, parse_args st)
    end
    else if peek st = Lexer.DOT then begin
      advance st;
      (* tbl.col *)
      let c = ident st in
      Col (Some name, c)
    end
    else Col (None, name)
  | _ -> error st "expected expression"

(** Parse a single SELECT statement. Token and byte counts are reported
    into [obs] (counters [parse.tokens], [parse.sql_bytes]). *)
let parse ?(obs = Obs.null) (sql : string) : query =
  let toks = Array.of_list (Lexer.tokenize sql) in
  Obs.add obs "parse.tokens" (Array.length toks - 1) (* minus EOF *);
  Obs.add obs "parse.sql_bytes" (String.length sql);
  let st = { toks; pos = 0 } in
  let q = parse_query st in
  ignore (accept st Lexer.SEMI);
  (match peek st with
   | Lexer.EOF -> ()
   | _ -> error st "trailing tokens after statement");
  q

let parse_expr_string (s : string) : expr =
  let toks = Array.of_list (Lexer.tokenize s) in
  let st = { toks; pos = 0 } in
  let e = parse_expr st in
  (match peek st with
   | Lexer.EOF -> ()
   | _ -> error st "trailing tokens after expression");
  e
