(** Render the SQL AST back to text (used for diagnostics and tests; DSQL
    generation in {!Dsql} renders optimizer trees, not ASTs). *)

open Ast

let rec expr_to_string e =
  let p = expr_to_string in
  match e with
  | Col (None, c) -> c
  | Col (Some t, c) -> t ^ "." ^ c
  | Lit v -> Catalog.Value.to_sql v
  | Bin ((And | Or) as op, a, b) ->
    Printf.sprintf "(%s %s %s)" (p a) (string_of_binop op) (p b)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (p a) (string_of_binop op) (p b)
  | Un (Neg, a) -> Printf.sprintf "(-%s)" (p a)
  | Un (Not, a) -> Printf.sprintf "(NOT %s)" (p a)
  | Is_null { e; negated } ->
    Printf.sprintf "(%s IS %sNULL)" (p e) (if negated then "NOT " else "")
  | Like { e; pattern; negated } ->
    Printf.sprintf "(%s %sLIKE '%s')" (p e) (if negated then "NOT " else "") pattern
  | In_list { e; items; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (p e) (if negated then "NOT " else "")
      (String.concat ", " (List.map p items))
  | In_query { e; q; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (p e) (if negated then "NOT " else "") (to_string q)
  | Exists { q; negated } ->
    Printf.sprintf "(%sEXISTS (%s))" (if negated then "NOT " else "") (to_string q)
  | Between { e; lo; hi; negated } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (p e) (if negated then "NOT " else "")
      (p lo) (p hi)
  | Agg { func = Count_star; _ } -> "COUNT(*)"
  | Agg { func; distinct; arg } ->
    Printf.sprintf "%s(%s%s)" (string_of_agg func) (if distinct then "DISTINCT " else "")
      (match arg with Some a -> p a | None -> "*")
  | Func (name, args) -> Printf.sprintf "%s(%s)" name (String.concat ", " (List.map p args))
  | Case { branches; else_ } ->
    let b = List.map (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (p c) (p v)) branches in
    Printf.sprintf "CASE %s%s END" (String.concat " " b)
      (match else_ with Some e -> " ELSE " ^ p e | None -> "")
  | Scalar_query q -> Printf.sprintf "(%s)" (to_string q)
  | Cast (e, ty) ->
    Printf.sprintf "CAST(%s AS %s)" (p e) (String.uppercase_ascii (Catalog.Types.to_string ty))

and table_ref_to_string = function
  | Tref_table { name; alias = None } -> name
  | Tref_table { name; alias = Some a } -> name ^ " " ^ a
  | Tref_subquery { q; alias } -> Printf.sprintf "(%s) AS %s" (to_string q) alias
  | Tref_join { left; kind; right; on } ->
    let k = match kind with
      | Jinner -> "INNER JOIN" | Jleft -> "LEFT JOIN" | Jright -> "RIGHT JOIN"
      | Jcross -> "CROSS JOIN"
    in
    Printf.sprintf "%s %s %s%s" (table_ref_to_string left) k (table_ref_to_string right)
      (match on with Some e -> " ON " ^ expr_to_string e | None -> "")

and to_string (q : query) =
  let b = Buffer.create 128 in
  Buffer.add_string b "SELECT ";
  if q.distinct then Buffer.add_string b "DISTINCT ";
  (match q.top with Some n -> Buffer.add_string b (Printf.sprintf "TOP %d " n) | None -> ());
  let item = function
    | Sel_star None -> "*"
    | Sel_star (Some t) -> t ^ ".*"
    | Sel_expr (e, None) -> expr_to_string e
    | Sel_expr (e, Some a) -> expr_to_string e ^ " AS " ^ a
  in
  Buffer.add_string b (String.concat ", " (List.map item q.select));
  if q.from <> [] then begin
    Buffer.add_string b " FROM ";
    Buffer.add_string b (String.concat ", " (List.map table_ref_to_string q.from))
  end;
  (match q.where with
   | Some e -> Buffer.add_string b (" WHERE " ^ expr_to_string e)
   | None -> ());
  if q.group_by <> [] then begin
    Buffer.add_string b " GROUP BY ";
    Buffer.add_string b (String.concat ", " (List.map expr_to_string q.group_by))
  end;
  (match q.having with
   | Some e -> Buffer.add_string b (" HAVING " ^ expr_to_string e)
   | None -> ());
  (match q.union_all with
   | Some tail -> Buffer.add_string b (" UNION ALL " ^ to_string tail)
   | None -> ());
  if q.order_by <> [] then begin
    Buffer.add_string b " ORDER BY ";
    let one (e, d) = expr_to_string e ^ (match d with Asc -> " ASC" | Desc -> " DESC") in
    Buffer.add_string b (String.concat ", " (List.map one q.order_by))
  end;
  (match q.hints with
   | [] -> ()
   | hints ->
     let one = function
       | Hint_broadcast t -> "BROADCAST " ^ t
       | Hint_shuffle t -> "SHUFFLE " ^ t
       | Hint_force_order -> "FORCE ORDER"
     in
     Buffer.add_string b (" OPTION (" ^ String.concat ", " (List.map one hints) ^ ")"));
  Buffer.contents b
