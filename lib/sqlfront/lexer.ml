(** Hand-written SQL lexer. Keywords are case-insensitive; identifiers may be
    bracket-quoted ([tpch].[dbo].[lineitem]) or double-quoted. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN
  | COMMA | DOT | SEMI | STAR
  | PLUS | MINUS | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | KW of string      (** uppercased keyword *)
  | EOF

exception Lex_error of string * int  (** message, position *)

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC"; "DESC";
    "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "BETWEEN"; "LIKE"; "IS"; "NULL";
    "AS"; "ON"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER"; "CROSS";
    "DISTINCT"; "TOP"; "LIMIT"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "CAST"; "TRUE"; "FALSE";
    "UNION"; "ALL"; "DATE" ]

let keyword_set =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize a full SQL string. *)
let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      let isfloat = ref false in
      while !i < n && (is_digit s.[!i] || s.[!i] = '.') do
        if s.[!i] = '.' then isfloat := true;
        incr i
      done;
      if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
        isfloat := true;
        incr i;
        if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end;
      let text = String.sub s start (!i - start) in
      if !isfloat then emit (FLOAT (float_of_string text)) pos
      else emit (INT (int_of_string text)) pos
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      let text = String.sub s start (!i - start) in
      let upper = String.uppercase_ascii text in
      if Hashtbl.mem keyword_set upper then emit (KW upper) pos
      else emit (IDENT text) pos
    end
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      incr i;
      let b = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error ("unterminated string literal", pos));
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin Buffer.add_char b '\''; i := !i + 2 end
          else begin fin := true; incr i end
        else begin Buffer.add_char b s.[!i]; incr i end
      done;
      emit (STRING (Buffer.contents b)) pos
    end
    else if c = '[' then begin
      (* bracket-quoted identifier *)
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> ']' do incr i done;
      if !i >= n then raise (Lex_error ("unterminated [identifier]", pos));
      emit (IDENT (String.sub s start (!i - start))) pos;
      incr i
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do incr i done;
      if !i >= n then raise (Lex_error ("unterminated \"identifier\"", pos));
      emit (IDENT (String.sub s start (!i - start))) pos;
      incr i
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<>" -> emit NE pos; i := !i + 2
      | "!=" -> emit NE pos; i := !i + 2
      | "<=" -> emit LE pos; i := !i + 2
      | ">=" -> emit GE pos; i := !i + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN pos | ')' -> emit RPAREN pos
         | ',' -> emit COMMA pos | '.' -> emit DOT pos | ';' -> emit SEMI pos
         | '*' -> emit STAR pos | '+' -> emit PLUS pos | '-' -> emit MINUS pos
         | '/' -> emit SLASH pos | '%' -> emit PERCENT pos
         | '=' -> emit EQ pos | '<' -> emit LT pos | '>' -> emit GT pos
         | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)));
        incr i
    end
  done;
  List.rev ((EOF, n) :: !toks)

let token_to_string = function
  | IDENT s -> Printf.sprintf "ident %s" s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "(" | RPAREN -> ")"
  | COMMA -> "," | DOT -> "." | SEMI -> ";" | STAR -> "*"
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | KW k -> k
  | EOF -> "<eof>"
