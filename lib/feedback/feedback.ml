(** Feedback-driven cost calibration (ISSUE 9).

    This library holds the pure, engine-independent pieces of the
    execution -> calibration -> plan-store loop:

    - {!Log}: persistent records of what each executed plan actually did
      (per-operator cardinalities, per-DMS-component byte/second samples,
      observed simulated and wall cost);
    - {!Misses}: which catalog columns the optimizer's estimates missed on,
      by more than a threshold factor — the candidates for histogram
      refinement;
    - {!Lambda}: re-fitting the DMS λ table from observed volumes;
    - {!Store}: a last-known-good plan store with hysteresis-based
      regression detection, quarantine and automatic fallback.

    Everything here is deterministic: records are kept in append order,
    fits fold samples in canonical log order, and persistence uses hex
    float literals so [save]/[load] round-trips are bit-exact. The
    engine-facing driver that harvests observations and applies
    calibration to a live shell catalog lives in [Opdw.Feedback]. *)

module Log = struct
  type op_obs = {
    o_group : int;                     (** MEMO group of the operator *)
    o_op : string;                     (** physical operator name *)
    o_table : string option;           (** scanned table, for scans *)
    o_cols : (string * string) list;   (** (table, column) pairs constrained *)
    o_est : float;                     (** optimizer's global row estimate *)
    o_actual : float;                  (** observed global rows *)
  }

  type dms_obs = {
    d_component : Dms.Calibrate.component;
    d_bytes : float;
    d_seconds : float;
  }

  type record = {
    r_statement : string;   (** statement key (normalized SQL) *)
    r_fingerprint : string; (** plan-cache fingerprint of the executed plan *)
    r_ops : op_obs list;
    r_dms : dms_obs list;
    r_sim : float;          (** observed simulated seconds *)
    r_wall : float;         (** observed wall-clock seconds (informational) *)
    r_degraded : bool;      (** executed under a degraded (Anytime/Fallback) result *)
  }

  type t = { mutable rev_records : record list }

  let create () = { rev_records = [] }

  let append t r = t.rev_records <- r :: t.rev_records

  (** Records in append order (oldest first) — the canonical fold order. *)
  let records t = List.rev t.rev_records

  let length t = List.length t.rev_records

  let clear t = t.rev_records <- []

  (* -- persistence --

     Line-oriented text, one [record]/[op]/[dms] line per item and an [end]
     sentinel per record. Floats are printed with %h (hex literals) so the
     round-trip is bit-exact; statement/fingerprint/operator strings use %S.
     Column lists are encoded [tbl:col,tbl:col] ("-" when empty): table and
     column names are identifiers, so ':' and ',' cannot appear in them. *)

  let component_of_name s =
    let open Dms.Calibrate in
    List.find_opt
      (fun c -> component_name c = s)
      [ Reader_direct; Reader_hash; Network; Writer; Blkcpy ]

  let encode_cols = function
    | [] -> "-"
    | cols -> String.concat "," (List.map (fun (t, c) -> t ^ ":" ^ c) cols)

  let decode_cols s =
    if s = "-" then []
    else
      String.split_on_char ',' s
      |> List.map (fun pair ->
          match String.index_opt pair ':' with
          | Some i ->
            (String.sub pair 0 i, String.sub pair (i + 1) (String.length pair - i - 1))
          | None -> (pair, ""))

  let save_record buf r =
    Buffer.add_string buf
      (Printf.sprintf "record %S %S %h %h %d\n" r.r_statement r.r_fingerprint r.r_sim
         r.r_wall (if r.r_degraded then 1 else 0));
    List.iter
      (fun o ->
         Buffer.add_string buf
           (Printf.sprintf "op %d %S %S %h %h %s\n" o.o_group o.o_op
              (Option.value o.o_table ~default:"") o.o_est o.o_actual
              (encode_cols o.o_cols)))
      r.r_ops;
    List.iter
      (fun d ->
         Buffer.add_string buf
           (Printf.sprintf "dms %s %h %h\n" (Dms.Calibrate.component_name d.d_component)
              d.d_bytes d.d_seconds))
      r.r_dms;
    Buffer.add_string buf "end\n"

  let to_string t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "# opdw feedback log v1\n";
    List.iter (save_record buf) (records t);
    Buffer.contents buf

  exception Parse_error of string

  let of_string text =
    let t = create () in
    let cur = ref None in
    let finish () =
      match !cur with
      | None -> ()
      | Some (r, ops, dms) ->
        append t { r with r_ops = List.rev ops; r_dms = List.rev dms };
        cur := None
    in
    let lineno = ref 0 in
    let fail fmt =
      Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" !lineno m))) fmt
    in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
        incr lineno;
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else if line = "end" then finish ()
        else
          match String.index_opt line ' ' with
          | None -> fail "malformed line %S" line
          | Some i ->
            let kw = String.sub line 0 i in
            (match kw with
             | "record" ->
               finish ();
               (try
                  Scanf.sscanf line "record %S %S %h %h %d"
                    (fun stmt fp sim wall deg ->
                       cur :=
                         Some
                           ( { r_statement = stmt; r_fingerprint = fp; r_ops = [];
                               r_dms = []; r_sim = sim; r_wall = wall;
                               r_degraded = deg <> 0 },
                             [], [] ))
                with Scanf.Scan_failure m | Failure m -> fail "bad record: %s" m)
             | "op" ->
               (match !cur with
                | None -> fail "op line outside a record"
                | Some (r, ops, dms) ->
                  (try
                     Scanf.sscanf line "op %d %S %S %h %h %s"
                       (fun group op table est actual cols ->
                          let o =
                            { o_group = group; o_op = op;
                              o_table = (if table = "" then None else Some table);
                              o_cols = decode_cols cols; o_est = est; o_actual = actual }
                          in
                          cur := Some (r, o :: ops, dms))
                   with Scanf.Scan_failure m | Failure m -> fail "bad op: %s" m))
             | "dms" ->
               (match !cur with
                | None -> fail "dms line outside a record"
                | Some (r, ops, dms) ->
                  (try
                     Scanf.sscanf line "dms %s %h %h"
                       (fun comp bytes seconds ->
                          match component_of_name comp with
                          | None -> fail "unknown DMS component %S" comp
                          | Some c ->
                            let d = { d_component = c; d_bytes = bytes; d_seconds = seconds } in
                            cur := Some (r, ops, d :: dms))
                   with Scanf.Scan_failure m | Failure m -> fail "bad dms: %s" m))
             | _ -> fail "unknown keyword %S" kw));
    finish ();
    t

  let save t file =
    let oc = open_out file in
    output_string oc (to_string t);
    close_out oc

  let load file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string text
end

module Misses = struct
  (** Symmetric estimation error of one operator observation, always >= 1.
      Both sides are offset by one row so empty streams do not divide by
      zero and tiny absolute misses do not explode the ratio. *)
  let ratio (o : Log.op_obs) =
    let e = o.Log.o_est +. 1. and a = o.Log.o_actual +. 1. in
    Float.max (e /. a) (a /. e)

  type miss = {
    m_table : string;
    m_column : string;
    m_worst : float;   (** worst observed estimation ratio involving the column *)
    m_ops : int;       (** number of missed operator observations involved *)
  }

  (** Columns whose operator estimates missed by more than [threshold]
      (default 2x), over the given records. Deterministic: the result is
      sorted by (table, column) and deduplicated, independent of record
      order. *)
  let columns ?(threshold = 2.0) recs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Log.record) ->
         List.iter
           (fun (o : Log.op_obs) ->
              let rt = ratio o in
              if rt > threshold then
                List.iter
                  (fun (t, c) ->
                     let key = (String.lowercase_ascii t, String.lowercase_ascii c) in
                     let worst, ops =
                       try Hashtbl.find tbl key with Not_found -> (1., 0)
                     in
                     Hashtbl.replace tbl key (Float.max worst rt, ops + 1))
                  o.Log.o_cols)
           r.Log.r_ops)
      recs;
    Hashtbl.fold
      (fun (t, c) (worst, ops) acc ->
         { m_table = t; m_column = c; m_worst = worst; m_ops = ops } :: acc)
      tbl []
    |> List.sort (fun a b ->
        match compare a.m_table b.m_table with
        | 0 -> compare a.m_column b.m_column
        | n -> n)

  (** Worst per-operator misses across the records, most severe first
      (for reporting). *)
  let worst_ops ?(limit = 10) recs =
    List.concat_map (fun (r : Log.record) -> r.Log.r_ops) recs
    |> List.map (fun o -> (ratio o, o))
    |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
    |> List.filteri (fun i _ -> i < limit)
end

module Lambda = struct
  type fit = {
    f_component : Dms.Calibrate.component;
    f_lambda : float;
    f_error : float;    (** relative RMS residual of the fit *)
    f_samples : int;
  }

  (** Re-fit the DMS λ table from the observed per-component volumes in the
      records. Components with no observations keep their value from
      [base] (default {!Dms.Cost.default_lambdas}). Samples are folded in
      canonical log order, so the same log yields bit-identical λs at any
      [--jobs]. *)
  let fit ?(base = Dms.Cost.default_lambdas) recs =
    let open Dms.Calibrate in
    let samples_for comp =
      List.concat_map
        (fun (r : Log.record) ->
           List.filter_map
             (fun (d : Log.dms_obs) ->
                if d.Log.d_component = comp then
                  Some { bytes = d.Log.d_bytes; seconds = d.Log.d_seconds }
                else None)
             r.Log.r_dms)
        recs
    in
    let fit_one comp fallback =
      match samples_for comp with
      | [] -> (fallback, { f_component = comp; f_lambda = fallback; f_error = 0.; f_samples = 0 })
      | samples ->
        let l = fit_lambda samples in
        let l = if Float.is_finite l && l > 0. then l else fallback in
        (l, { f_component = comp; f_lambda = l; f_error = fit_error l samples;
              f_samples = List.length samples })
    in
    let rd, f1 = fit_one Reader_direct base.Dms.Cost.l_reader_direct in
    let rh, f2 = fit_one Reader_hash base.Dms.Cost.l_reader_hash in
    let nw, f3 = fit_one Network base.Dms.Cost.l_network in
    let wr, f4 = fit_one Writer base.Dms.Cost.l_writer in
    let bc, f5 = fit_one Blkcpy base.Dms.Cost.l_blkcpy in
    ( { Dms.Cost.l_reader_direct = rd; l_reader_hash = rh; l_network = nw;
        l_writer = wr; l_blkcpy = bc },
      [ f1; f2; f3; f4; f5 ] )
end

module Store = struct
  (** Per-fingerprint observed cost record. *)
  type cost_rec = {
    mutable cr_runs : int;
    mutable cr_best_sim : float;
    mutable cr_last_sim : float;
    mutable cr_last_wall : float;
  }

  type 'p entry = {
    e_statement : string;
    mutable e_runs : int;
    mutable e_lkg : (string * 'p * float) option;
        (** (fingerprint, payload, best observed sim) of the last-known-good plan *)
    mutable e_streak : (string * int) option;
        (** consecutive regressed runs of one non-LKG fingerprint *)
    mutable e_quarantined : string list;  (** newest first *)
    mutable e_costs : (string * cost_rec) list;  (** first-seen order *)
  }

  type outcome =
    | Recorded            (** observed, within the hysteresis band *)
    | Lkg_set             (** first good run: plan becomes LKG *)
    | Lkg_improved        (** strictly better than LKG: promoted *)
    | Regressed of int    (** regression streak length so far (< threshold) *)
    | Quarantined         (** streak hit the threshold: fingerprint quarantined *)
    | Ignored_degraded    (** degraded result: never recorded as LKG *)

  let outcome_name = function
    | Recorded -> "recorded"
    | Lkg_set -> "lkg-set"
    | Lkg_improved -> "lkg-improved"
    | Regressed n -> Printf.sprintf "regressed(%d)" n
    | Quarantined -> "quarantined"
    | Ignored_degraded -> "ignored-degraded"

  type 'p t = {
    regress_factor : float;   (** observed sim > factor * LKG sim counts as a regression *)
    streak_limit : int;       (** consecutive regressed runs before quarantine *)
    entries : (string, 'p entry) Hashtbl.t;
    mutable regressions : int;  (** total regressed observations *)
    mutable fallbacks : int;    (** total LKG substitutions served by {!resolve} *)
  }

  let create ?(regress_factor = 1.2) ?(streak_limit = 2) () =
    { regress_factor; streak_limit; entries = Hashtbl.create 16; regressions = 0;
      fallbacks = 0 }

  let entry t statement =
    match Hashtbl.find_opt t.entries statement with
    | Some e -> e
    | None ->
      let e =
        { e_statement = statement; e_runs = 0; e_lkg = None; e_streak = None;
          e_quarantined = []; e_costs = [] }
      in
      Hashtbl.add t.entries statement e;
      e

  let find t statement = Hashtbl.find_opt t.entries statement

  (** Statements in sorted order (deterministic iteration for dumps). *)
  let statements t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort compare

  let lkg t statement = Option.bind (find t statement) (fun e -> e.e_lkg)

  let quarantined t statement =
    match find t statement with Some e -> List.rev e.e_quarantined | None -> []

  let is_quarantined t ~statement ~fingerprint =
    match find t statement with
    | Some e -> List.mem fingerprint e.e_quarantined
    | None -> false

  let regressions t = t.regressions
  let fallbacks t = t.fallbacks

  let record_cost e fingerprint ~sim ~wall =
    match List.assoc_opt fingerprint e.e_costs with
    | Some c ->
      c.cr_runs <- c.cr_runs + 1;
      c.cr_best_sim <- Float.min c.cr_best_sim sim;
      c.cr_last_sim <- sim;
      c.cr_last_wall <- wall
    | None ->
      e.e_costs <-
        e.e_costs
        @ [ (fingerprint,
             { cr_runs = 1; cr_best_sim = sim; cr_last_sim = sim; cr_last_wall = wall }) ]

  (** Record one observed execution. Degraded results are never recorded:
      an Anytime/Fallback plan must not become LKG, nor count as evidence
      against the current plan. The hysteresis state machine (DESIGN.md
      §13): a non-LKG plan observed worse than [regress_factor] times the
      LKG's best sim cost on [streak_limit] {e consecutive} runs is
      quarantined; any in-band run resets the streak; a strictly better
      run promotes the plan to LKG. *)
  let observe t ~statement ~fingerprint ~degraded ~sim ~wall payload =
    if degraded then Ignored_degraded
    else begin
      let e = entry t statement in
      e.e_runs <- e.e_runs + 1;
      record_cost e fingerprint ~sim ~wall;
      match e.e_lkg with
      | None ->
        e.e_lkg <- Some (fingerprint, payload, sim);
        e.e_streak <- None;
        Lkg_set
      | Some (lkg_fp, _, lkg_sim) when fingerprint = lkg_fp ->
        if sim < lkg_sim then e.e_lkg <- Some (fingerprint, payload, sim);
        e.e_streak <- None;
        Recorded
      | Some (_, _, lkg_sim) ->
        if sim < lkg_sim then begin
          e.e_lkg <- Some (fingerprint, payload, sim);
          e.e_streak <- None;
          Lkg_improved
        end
        else if sim <= lkg_sim *. t.regress_factor then begin
          e.e_streak <- None;
          Recorded
        end
        else begin
          t.regressions <- t.regressions + 1;
          let streak =
            match e.e_streak with
            | Some (fp, n) when fp = fingerprint -> n + 1
            | _ -> 1
          in
          if streak >= t.streak_limit then begin
            e.e_streak <- None;
            if not (List.mem fingerprint e.e_quarantined) then
              e.e_quarantined <- fingerprint :: e.e_quarantined;
            Quarantined
          end
          else begin
            e.e_streak <- Some (fingerprint, streak);
            Regressed streak
          end
        end
    end

  (** Pre-execution check: if the plan the optimizer just produced is
      quarantined for this statement, return the LKG payload to execute
      instead (the automatic fallback). Counts [fallbacks]. *)
  let resolve t ~statement ~fingerprint =
    match find t statement with
    | None -> None
    | Some e ->
      if List.mem fingerprint e.e_quarantined then
        match e.e_lkg with
        | Some (_, payload, _) ->
          t.fallbacks <- t.fallbacks + 1;
          Some payload
        | None -> None
      else None
end
