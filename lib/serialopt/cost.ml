(** Serial (single-node) cost model for physical operators.

    The serial optimizer is deliberately unaware of partitioning (paper
    §3.2: "The SQL Server optimizer is unaware of the partitioning of
    data"); its costs are abstract per-row work units used to rank serial
    alternatives and to pick the baseline "best serial plan". *)

open Memo

(* per-row work constants (abstract time units) *)
let c_scan = 1.0
let c_filter = 0.4
let c_compute = 0.4
let c_hash_build = 2.0
let c_hash_probe = 1.2
let c_merge = 0.8
let c_nl_pair = 0.6
let c_agg = 1.5
let c_stream_agg = 0.8
let c_sort_per_cmp = 0.15
let c_output = 0.2

let log2 x = if x <= 2. then 1. else Float.log x /. Float.log 2.

(** Local cost of one operator, excluding children.
    [out] is the operator's output cardinality, [inputs] its children's. *)
let local_cost (op : Physop.t) ~(out : float) ~(inputs : float list) : float =
  let input n = try List.nth inputs n with _ -> 0. in
  match op with
  | Physop.Table_scan _ -> (out *. c_scan) +. (out *. c_output)
  | Physop.Filter _ -> (input 0 *. c_filter) +. (out *. c_output)
  | Physop.Compute _ -> (input 0 *. c_compute) +. (out *. c_output)
  | Physop.Hash_join _ ->
    (input 1 *. c_hash_build) +. (input 0 *. c_hash_probe) +. (out *. c_output)
  | Physop.Merge_join _ -> ((input 0 +. input 1) *. c_merge) +. (out *. c_output)
  | Physop.Nl_join _ -> (input 0 *. input 1 *. c_nl_pair) +. (out *. c_output)
  | Physop.Hash_agg _ -> (input 0 *. c_agg) +. (out *. c_output)
  | Physop.Stream_agg _ -> (input 0 *. c_stream_agg) +. (out *. c_output)
  | Physop.Sort_op _ ->
    let n = Float.max 1. (input 0) in
    (n *. log2 n *. c_sort_per_cmp) +. (out *. c_output)
  | Physop.Union_op -> (input 0 +. input 1) *. c_output
  | Physop.Const_empty _ -> 0.

(** Cost of an enforcer sort over [rows] input rows. *)
let sort_enforcer_cost rows =
  let n = Float.max 1. rows in
  (n *. log2 n *. c_sort_per_cmp) +. (n *. c_output)
