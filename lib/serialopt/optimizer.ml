(** The serial (single-node) Cascades-lite optimizer (paper Fig. 2 step 2):
    inserts the normalized plan into the MEMO, applies logical
    transformations (join commutativity / associativity) to populate the
    space of alternatives, adds physical implementations, and extracts the
    best serial plan under a required-ordering physical property.

    A task budget reproduces the paper's timeout mechanism (§3.1: "for very
    large search spaces, the SQL Server optimizer uses a timeout mechanism
    and does not generate all possible plans ... the initial execution
    alternatives placed in the MEMO have a big influence"). *)

open Algebra
open Memo

type options = {
  task_budget : int;         (** max transformation-rule applications *)
  enable_merge_join : bool;
  enable_stream_agg : bool;
}

let default_options =
  { task_budget = 20_000; enable_merge_join = true; enable_stream_agg = true }

type result = {
  memo : Memo.t;
  best : Plan.t option;      (** best serial plan *)
  tasks_used : int;
  budget_exhausted : bool;   (** the ordinary task budget (§3.1 timeout) *)
  interrupted : Governor.reason option;
      (** a governor deadline/cancel or memo-size budget cut exploration
          short; the plan is anytime best-so-far and must not be cached *)
}

(* -- exploration -- *)

let is_true_pred = function
  | Expr.Lit (Catalog.Value.Bool true) -> true
  | _ -> false

let classify_join conjs =
  if conjs = [] then Relop.Cross else Relop.Inner

let nontrivial_conjuncts pred =
  List.filter (fun c -> not (is_true_pred c)) (Expr.conjuncts pred)

(* Structural identity of a group expression, for the applied-rules set.
   Hashing the expression (the old scheme) made a hash collision silently
   skip a transformation and shrink the search space; this renders the
   operator (constructor, join kind, predicate with explicit column ids)
   and the canonical child group ids instead, so distinct expressions can
   never alias. *)
let gexpr_key (m : Memo.t) (e : gexpr) : string =
  let col c = "#" ^ string_of_int c in
  let op_s =
    match e.op with
    | Logical (Relop.Join { kind = _; pred } as l) ->
      (* op_name spells the join kind (Join/CrossJoin/SemiJoin/...) *)
      Printf.sprintf "%s(%s)" (Relop.op_name l) (Expr.to_string_with col pred)
    | Logical (Relop.Select pred) ->
      Printf.sprintf "Select(%s)" (Expr.to_string_with col pred)
    | Logical l -> Relop.op_name l
    | Physical p -> "phys:" ^ Memo.Physop.name p
  in
  Printf.sprintf "%s(%s)" op_s
    (String.concat ","
       (List.map (fun c -> string_of_int (Memo.find m c)) (Array.to_list e.children)))

(* Exploration runs in generations, each split into two phases so the rule
   *matching* parallelizes on the domain pool while every memo mutation
   stays sequential and deterministic:

   - {b discovery} (parallel, read-only): each live group is scanned
     against the generation-start snapshot of the memo — pattern matches,
     canonical child ids, dedup keys. The union-find is fully
     path-compressed before the fan-out, so worker-side [Memo.find] calls
     are pure reads. Each group yields its candidate list; flattening in
     group order gives the same candidate order at any pool size.
   - {b apply} (sequential): candidates run in that order under the same
     per-candidate dedup-key / task-budget / governor checks the old
     interleaved sweep performed. Inserts made by earlier candidates are
     visible to later ones, exactly as before; candidates those inserts
     would newly enable are picked up by the next generation's snapshot.

   The rule set is monotone and keyed, so the fixpoint closure is the
   sequential one; only the insertion interleaving across generations can
   differ from the old single-phase sweep — and it is identical at any
   [jobs]. *)
let explore (m : Memo.t) ~pool ~budget ~(token : Governor.token)
    ~max_memo_groups : int * bool * Governor.reason option =
  let tasks = ref 0 in
  let exhausted = ref false in
  let interrupted = ref None in
  (* Anytime cut: a tripped token or a memo-size budget stops exploration
     between rule applications — the MEMO stays consistent, and
     implement/extract below still yield the best plan found so far. *)
  let governor_cut () =
    (match Governor.state token with
     | Some r -> interrupted := Some r
     | None ->
       (match max_memo_groups with
        | Some g when Memo.ngroups m >= g -> interrupted := Some Governor.Memo_budget
        | _ -> ()));
    !interrupted <> None
  in
  let applied : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let key rule gid (e : gexpr) =
    Printf.sprintf "%s/%d/%s" rule gid (gexpr_key m e)
  in
  (* Discovery for one group: candidates as (dedup key, apply closure).
     Read-only against the memo; the closures only touch the memo when the
     sequential apply phase runs them. *)
  let discover g : (string * (unit -> unit)) list =
    let out = ref [] in
    List.iter
      (fun (e : gexpr) ->
         match e.op with
         | Logical (Relop.Join { kind = (Relop.Inner | Relop.Cross) as kind; pred })
           when Array.length e.children = 2 ->
           let g1 = Memo.find m e.children.(0) and g2 = Memo.find m e.children.(1) in
           let candidate rule (f : unit -> unit) =
             let k = key rule g e in
             if not (Hashtbl.mem applied k) then out := (k, f) :: !out
           in
           (* commutativity *)
           candidate "commute" (fun () ->
               ignore
                 (Memo.insert ~target:g m
                    (Logical (Relop.Join { kind; pred }))
                    [| g2; g1 |]));
           (* left associativity: (A x B) x C -> A x (B x C) *)
           candidate "assoc" (fun () ->
               List.iter
                 (fun (lop, lchildren) ->
                    match lop with
                    | Relop.Join { kind = Relop.Inner | Relop.Cross; pred = q }
                      when Array.length lchildren = 2 ->
                      let ga = Memo.find m lchildren.(0)
                      and gb = Memo.find m lchildren.(1) in
                      if ga <> g2 && gb <> g2 then begin
                        let cols_b = (Memo.props m gb).cols
                        and cols_c = (Memo.props m g2).cols in
                        let bc = Registry.Col_set.union cols_b cols_c in
                        let all = nontrivial_conjuncts pred @ nontrivial_conjuncts q in
                        let lower, upper =
                          List.partition
                            (fun c -> Registry.Col_set.subset (Expr.cols c) bc)
                            all
                        in
                        (* avoid generating pure cross products *)
                        if lower <> [] then begin
                          let lower_join =
                            Memo.insert m
                              (Logical
                                 (Relop.Join
                                    { kind = classify_join lower;
                                      pred = Expr.conjoin lower }))
                              [| gb; g2 |]
                          in
                          ignore
                            (Memo.insert ~target:g m
                               (Logical
                                  (Relop.Join
                                     { kind = classify_join upper;
                                       pred = Expr.conjoin upper }))
                               [| ga; lower_join |])
                        end
                      end
                    | _ -> ())
                 (Memo.logical_exprs m g1))
         | _ -> ())
      (Memo.exprs m g);
    List.rev !out
  in
  let changed = ref true in
  while !changed && not !exhausted && !interrupted = None do
    changed := false;
    let before = Hashtbl.length m.dedup in
    (* path-compress so discovery-side finds never write *)
    for g = 0 to Memo.ngroups m - 1 do
      ignore (Memo.find m g)
    done;
    let live =
      Array.of_list
        (List.filter
           (fun g -> m.groups.(g).merged_into = None)
           (List.init (Memo.ngroups m) Fun.id))
    in
    let per_group = Par.parallel_map pool discover live in
    (* apply phase: sequential, in discovery order *)
    (try
       Array.iter
         (List.iter (fun (k, f) ->
              if not (Hashtbl.mem applied k) then begin
                Hashtbl.replace applied k ();
                if !tasks >= budget then begin
                  exhausted := true;
                  raise Exit
                end
                else if governor_cut () then raise Exit
                else begin
                  incr tasks;
                  f ()
                end
              end))
         per_group
     with Exit -> ());
    if Hashtbl.length m.dedup > before then changed := true
  done;
  (!tasks, !exhausted, !interrupted)

(* -- implementation -- *)

let implement_group (m : Memo.t) ~opts gid =
  List.iter
    (fun (lop, children) ->
       let add p = ignore (Memo.insert ~target:gid m (Physical p) children) in
       match lop with
       | Relop.Get { table; alias; cols } -> add (Physop.Table_scan { table; alias; cols })
       | Relop.Select pred -> add (Physop.Filter pred)
       | Relop.Project defs -> add (Physop.Compute defs)
       | Relop.Join { kind; pred } ->
         let lcols = (Memo.props m children.(0)).cols
         and rcols = (Memo.props m children.(1)).cols in
         let equi = Physop.oriented_equi_pairs pred ~left_cols:lcols ~right_cols:rcols in
         if equi <> [] then begin
           add (Physop.Hash_join { kind; pred });
           if opts.enable_merge_join
           && (match kind with Relop.Inner | Relop.Semi | Relop.Anti_semi -> true | _ -> false)
           then add (Physop.Merge_join { kind; pred })
         end
         else add (Physop.Nl_join { kind; pred })
       | Relop.Group_by { keys; aggs } ->
         let distinct_agg = List.exists (fun a -> a.Expr.agg_distinct) aggs in
         add (Physop.Hash_agg { keys; aggs });
         if opts.enable_stream_agg && keys <> [] && not distinct_agg then
           add (Physop.Stream_agg { keys; aggs })
       | Relop.Sort { keys; limit } -> add (Physop.Sort_op { keys; limit })
       | Relop.Union_all -> add Physop.Union_op
       | Relop.Empty cols -> add (Physop.Const_empty cols))
    (Memo.logical_exprs m gid)

let implement (m : Memo.t) ~opts =
  (* groups only gain physical exprs here, never new groups *)
  for gid = 0 to Memo.ngroups m - 1 do
    if m.groups.(gid).merged_into = None then implement_group m ~opts gid
  done

(* -- winner extraction (required property: ascending ordering on cols) -- *)

type ord = int list

let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | x :: a', y :: b' -> x = y && is_prefix a' b'
  | _ -> false

(* Does a physical op yield output ordered on [ord], given its own
   characteristics, and what orders must its children provide? *)
let provides_and_requires (m : Memo.t) (op : Physop.t) (children : int array)
    ~(ord : ord) : ord list option =
  let pass_through () = Some [ ord ] in
  match op with
  | _ when ord = [] ->
    (* no requirement: children also unconstrained, except merge/stream
       which inherently need sorted inputs *)
    (match op with
     | Physop.Merge_join { pred; _ } ->
       let lcols = (Memo.props m children.(0)).cols
       and rcols = (Memo.props m children.(1)).cols in
       let equi = Physop.oriented_equi_pairs pred ~left_cols:lcols ~right_cols:rcols in
       if equi = [] then None
       else Some [ List.map fst equi; List.map snd equi ]
     | Physop.Stream_agg { keys; _ } -> Some [ keys ]
     | _ -> Some (List.map (fun _ -> []) (Array.to_list children)))
  | Physop.Filter _ -> pass_through ()
  | Physop.Compute defs ->
    (* ordering columns must be pass-through definitions *)
    let ok =
      List.for_all
        (fun c ->
           List.exists
             (fun (out, e) -> out = c && (match e with Expr.Col c' -> c' = c | _ -> false))
             defs)
        ord
    in
    if ok then pass_through () else None
  | Physop.Sort_op { keys; _ } ->
    (* provides its ascending key prefix *)
    let provided =
      List.filter_map
        (fun k ->
           match k.Relop.key, k.Relop.desc with
           | Expr.Col c, false -> Some c
           | _ -> None)
        keys
    in
    if is_prefix ord provided then Some [ [] ] else None
  | Physop.Merge_join { pred; _ } ->
    let lcols = (Memo.props m children.(0)).cols
    and rcols = (Memo.props m children.(1)).cols in
    let equi = Physop.oriented_equi_pairs pred ~left_cols:lcols ~right_cols:rcols in
    if equi = [] then None
    else
      let lkeys = List.map fst equi and rkeys = List.map snd equi in
      if is_prefix ord lkeys then Some [ lkeys; rkeys ] else None
  | Physop.Stream_agg { keys; _ } ->
    if is_prefix ord keys then Some [ keys ] else None
  | _ -> None

exception Cycle

let extract_best (m : Memo.t) : Plan.t option =
  let winners : (int * ord, Plan.t option) Hashtbl.t = Hashtbl.create 64 in
  let in_progress : (int * ord, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec best gid (ord : ord) : Plan.t option =
    let gid = Memo.find m gid in
    match Hashtbl.find_opt winners (gid, ord) with
    | Some r -> r
    | None ->
      if Hashtbl.mem in_progress (gid, ord) then raise Cycle;
      Hashtbl.replace in_progress (gid, ord) ();
      let candidates = ref [] in
      List.iter
        (fun (op, children) ->
           match provides_and_requires m op children ~ord with
           | None -> ()
           | Some child_ords ->
             (try
                let plans =
                  List.map2
                    (fun c o -> match best c o with Some p -> p | None -> raise Exit)
                    (Array.to_list children) child_ords
                in
                let out = (Memo.props m gid).card in
                let inputs = List.map (fun (p : Plan.t) -> p.Plan.card) plans in
                let local = Cost.local_cost op ~out ~inputs in
                let total = local +. List.fold_left (fun a (p : Plan.t) -> a +. p.Plan.cost) 0. plans in
                candidates :=
                  { Plan.op; children = plans; card = out; cost = total } :: !candidates
              with Exit | Cycle -> ()))
        (Memo.physical_exprs m gid);
      (* enforcer: satisfy a required order by sorting the best unordered plan *)
      (if ord <> [] then
         match best gid [] with
         | Some p ->
           let keys = List.map (fun c -> { Relop.key = Expr.Col c; desc = false }) ord in
           let cost = p.Plan.cost +. Cost.sort_enforcer_cost p.Plan.card in
           candidates :=
             { Plan.op = Physop.Sort_op { keys; limit = None };
               children = [ p ]; card = p.Plan.card; cost }
             :: !candidates
         | None -> ());
      let result =
        List.fold_left
          (fun acc (p : Plan.t) ->
             match acc with
             | None -> Some p
             | Some b -> if p.Plan.cost < b.Plan.cost then Some p else acc)
          None !candidates
      in
      Hashtbl.remove in_progress (gid, ord);
      Hashtbl.replace winners (gid, ord) result;
      result
  in
  best (Memo.root m) []

(** Run the full serial optimization over a normalized logical tree.
    [seeds] are additional equivalent trees pre-inserted into the MEMO
    before exploration (the paper's §3.1 seeding hook). [token] and
    [max_memo_groups] bound the search anytime-style: exploration stops at
    the cut, but implementation and winner extraction still run over
    whatever the MEMO holds, so a plan comes back even from a truncated
    search (at worst, the normalized tree's own implementation). *)
let optimize ?(obs = Obs.null) ?(opts = default_options) ?(seeds = [])
    ?(token = Governor.none) ?max_memo_groups ?(pool = Par.sequential)
    (reg : Registry.t) (shell : Catalog.Shell_db.t) (tree : Relop.t) : result =
  let m = Memo.of_tree reg shell tree in
  List.iter
    (fun s ->
       let g = Memo.insert_tree m s in
       if Memo.find m g <> Memo.root m then
         (* a seed must be an equivalent plan for the whole query *)
         Memo.merge_groups m (Memo.root m) g)
    seeds;
  let tasks_used, budget_exhausted, interrupted =
    explore m ~pool ~budget:opts.task_budget ~token ~max_memo_groups
  in
  implement m ~opts;
  let best = try extract_best m with Cycle -> None in
  Obs.add obs "serial.memo.groups" (Memo.live_groups m);
  Obs.add obs "serial.memo.exprs" (Memo.total_exprs m);
  Obs.add obs "serial.tasks" tasks_used;
  Obs.add obs "serial.budget_exhausted" (if budget_exhausted then 1 else 0);
  Obs.add obs "serial.interrupted" (if interrupted <> None then 1 else 0);
  { memo = m; best; tasks_used; budget_exhausted; interrupted }
