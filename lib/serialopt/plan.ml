(** Serial physical plan trees (the "best serial plan" of paper §2.5, and
    the building blocks the PDW optimizer composes with data movement). *)

open Memo

type t = {
  op : Physop.t;
  children : t list;
  card : float;    (** estimated output rows *)
  cost : float;    (** cumulative serial cost *)
}

let rec pp reg ppf t =
  let open Format in
  match t.children with
  | [] -> fprintf ppf "%s  (rows=%.0f cost=%.0f)" (Physop.to_string reg t.op) t.card t.cost
  | children ->
    fprintf ppf "@[<v 2>%s  (rows=%.0f cost=%.0f)" (Physop.to_string reg t.op) t.card t.cost;
    List.iter (fun c -> fprintf ppf "@,%a" (pp reg) c) children;
    fprintf ppf "@]"

let to_string reg t = Format.asprintf "%a" (pp reg) t

let rec size t = 1 + List.fold_left (fun a c -> a + size c) 0 t.children

(** Output column layout of a physical plan node, in execution order. *)
let rec output_layout t : int list =
  match t.op, t.children with
  | Physop.Table_scan { cols; _ }, _ -> Array.to_list cols
  | Physop.Filter _, [ c ] -> output_layout c
  | Physop.Compute defs, _ -> List.map fst defs
  | (Physop.Hash_join { kind; _ } | Physop.Merge_join { kind; _ } | Physop.Nl_join { kind; _ }),
    [ l; r ] ->
    (match kind with
     | Algebra.Relop.Semi | Algebra.Relop.Anti_semi -> output_layout l
     | _ -> output_layout l @ output_layout r)
  | (Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs }), _ ->
    keys @ List.map (fun a -> a.Algebra.Expr.agg_out) aggs
  | Physop.Sort_op _, [ c ] -> output_layout c
  | Physop.Union_op, [ l; _ ] -> output_layout l
  | Physop.Const_empty cols, _ -> cols
  | _ -> invalid_arg "Plan.output_layout: malformed plan"
