(** How a user table is laid out across the appliance (paper §2.1): either
    hash-partitioned on specified column(s) across the compute nodes, or
    replicated on each compute node. *)

type t =
  | Hash_partitioned of string list  (** distribution column names, in order *)
  | Replicated

let hash_on cols = Hash_partitioned cols
let replicated = Replicated

let is_replicated = function Replicated -> true | Hash_partitioned _ -> false

let columns = function
  | Hash_partitioned cols -> cols
  | Replicated -> []

let to_string = function
  | Hash_partitioned cols -> "HASH(" ^ String.concat ", " cols ^ ")"
  | Replicated -> "REPLICATED"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match a, b with
  | Replicated, Replicated -> true
  | Hash_partitioned x, Hash_partitioned y ->
    (try List.for_all2 (fun a b -> String.lowercase_ascii a = String.lowercase_ascii b) x y
     with Invalid_argument _ -> false)
  | _ -> false
