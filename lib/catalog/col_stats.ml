(** Per-column statistics held in the shell database. *)

type t = {
  ndv : float;            (** number of distinct (non-null) values *)
  null_frac : float;      (** fraction of rows that are NULL *)
  min_v : Value.t option;
  max_v : Value.t option;
  avg_width : float;      (** average stored width in bytes *)
  histogram : Histogram.t option;
}

let make ?(ndv = 0.) ?(null_frac = 0.) ?min_v ?max_v ?(avg_width = 8.) ?histogram () =
  { ndv; null_frac; min_v; max_v; avg_width; histogram }

(** Derive column statistics directly from a histogram. *)
let of_histogram ?(avg_width = 8.) h =
  let total = Histogram.total_rows h in
  { ndv = Histogram.ndv h;
    null_frac = (if total > 0. then (total -. Histogram.non_null_rows h) /. total else 0.);
    min_v = Histogram.min_value h;
    max_v = Histogram.max_value h;
    avg_width;
    histogram = Some h }

(** Compute stats from raw column values (one node's local statistics). *)
let of_values ?(nbuckets = 32) ?(avg_width = 8.) values =
  of_histogram ~avg_width (Histogram.build ~nbuckets values)

(** Merge per-node local statistics into global statistics (paper §2.2). *)
let merge parts =
  match parts with
  | [] -> make ()
  | _ ->
    let hists = List.filter_map (fun s -> s.histogram) parts in
    let merged = if hists = [] then None else Some (Histogram.merge hists) in
    let totals = List.fold_left (fun a s -> a +. Float.max s.ndv 1.) 0. parts in
    let min_v =
      List.filter_map (fun s -> s.min_v) parts
      |> function [] -> None | l -> Some (List.fold_left (fun a v -> if Value.compare v a < 0 then v else a) (List.hd l) l)
    in
    let max_v =
      List.filter_map (fun s -> s.max_v) parts
      |> function [] -> None | l -> Some (List.fold_left (fun a v -> if Value.compare v a > 0 then v else a) (List.hd l) l)
    in
    let avg_width =
      let n = float_of_int (List.length parts) in
      List.fold_left (fun a s -> a +. s.avg_width) 0. parts /. n
    in
    let null_frac =
      let n = float_of_int (List.length parts) in
      List.fold_left (fun a s -> a +. s.null_frac) 0. parts /. n
    in
    let ndv =
      match merged with
      | Some h -> Histogram.ndv h
      | None -> totals (* upper bound: sum of local NDVs *)
    in
    { ndv; null_frac; min_v; max_v; avg_width; histogram = merged }

(** Refine statistics from a full multiset of observed values (feedback
    loop). The histogram is rebuilt at [nbuckets] resolution via
    {!Histogram.refine}; min/max only ever widen (union with the seeded
    bounds) so analysis bounds stay sound. [refine t [] = t]; idempotent
    for a fixed observation multiset. *)
let refine ?(nbuckets = 32) t values =
  match values with
  | [] -> t
  | _ ->
    let h =
      match t.histogram with
      | Some h -> Histogram.refine ~nbuckets h values
      | None -> Histogram.build ~nbuckets values
    in
    let avg_width =
      let s = List.fold_left (fun a v -> a + Value.width v) 0 values in
      float_of_int s /. float_of_int (List.length values)
    in
    let s = of_histogram ~avg_width h in
    let vmin a b =
      match a, b with
      | Some x, Some y -> Some (if Value.compare x y <= 0 then x else y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None
    in
    let vmax a b =
      match a, b with
      | Some x, Some y -> Some (if Value.compare x y >= 0 then x else y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None
    in
    { s with min_v = vmin t.min_v s.min_v; max_v = vmax t.max_v s.max_v }

let pp ppf t =
  Format.fprintf ppf "ndv=%g null_frac=%.3f min=%s max=%s width=%g" t.ndv t.null_frac
    (match t.min_v with Some v -> Value.to_string v | None -> "-")
    (match t.max_v with Some v -> Value.to_string v | None -> "-")
    t.avg_width
