(** SQL data types supported by the opdw stack.

    Widths are in bytes and feed the DMS cost model (paper §3.3.3: the row
    width [w] multiplies global cardinality [Y] to give bytes moved). *)

type t =
  | Tint       (** 64-bit integer (covers int/bigint keys) *)
  | Tfloat     (** double; also used for decimals in the simulator *)
  | Tstring    (** varchar; per-column declared width *)
  | Tbool
  | Tdate      (** days since 1970-01-01, stored as int *)

let equal (a : t) (b : t) = a = b

(* Default storage width in bytes; varchar columns override it. *)
let default_width = function
  | Tint -> 8
  | Tfloat -> 8
  | Tstring -> 16
  | Tbool -> 1
  | Tdate -> 4

let to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "varchar"
  | Tbool -> "bool"
  | Tdate -> "date"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Implicit numeric coercion: int expressions may appear where floats are
   expected (e.g. [o_totalprice > 100]). *)
let compatible a b =
  equal a b
  || (match a, b with
      | (Tint | Tfloat), (Tint | Tfloat) -> true
      | (Tint | Tdate), (Tint | Tdate) -> true
      | _ -> false)
