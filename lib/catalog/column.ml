(** Typed column storage: the cell container of the columnar executor.

    A column stores one attribute of a table (or intermediate result) for
    many rows. Numeric attributes live unboxed in {!Bigarray} buffers —
    [Int]/[Date]/[Bool] share an int buffer distinguished by a tag,
    [Float] gets a float64 buffer — with an optional null mask; anything
    else (strings, or type-mixed columns produced by e.g. CASE branches of
    different types) falls back to a boxed {!Value.t} array. [get] always
    reconstructs the exact {!Value.t} that was stored, so the columnar
    engine and the boxed row engine see identical values. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** How the int buffer's cells decode back to {!Value.t}. *)
type int_tag = As_int | As_date | As_bool

type t =
  | Ints of { tag : int_tag; data : ints; nulls : Bytes.t option }
  | Floats of { data : floats; nulls : Bytes.t option }
  | Boxed of Value.t array

let length = function
  | Ints { data; _ } -> Bigarray.Array1.dim data
  | Floats { data; _ } -> Bigarray.Array1.dim data
  | Boxed a -> Array.length a

let null_bit nulls i =
  match nulls with None -> false | Some b -> Bytes.unsafe_get b i <> '\000'

let is_null c i =
  match c with
  | Ints { nulls; _ } | Floats { nulls; _ } -> null_bit nulls i
  | Boxed a -> Value.is_null a.(i)

let decode_int tag (x : int) : Value.t =
  match tag with
  | As_int -> Value.Int x
  | As_date -> Value.Date x
  | As_bool -> Value.Bool (x <> 0)

let get c i : Value.t =
  match c with
  | Ints { tag; data; nulls } ->
    if null_bit nulls i then Value.Null else decode_int tag data.{i}
  | Floats { data; nulls } ->
    if null_bit nulls i then Value.Null else Value.Float data.{i}
  | Boxed a -> a.(i)

let has_nulls = function
  | Ints { nulls = None; _ } | Floats { nulls = None; _ } -> false
  | Ints { nulls = Some b; _ } | Floats { nulls = Some b; _ } ->
    Bytes.exists (fun c -> c <> '\000') b
  | Boxed a -> Array.exists Value.is_null a

(* Serialized width, matching per-value {!Value.width} accounting exactly:
   the simulated clock must be independent of the storage representation. *)
let bytes_at c i =
  match c with
  | Ints { tag; nulls; _ } ->
    if null_bit nulls i then 1
    else (match tag with As_int -> 8 | As_date -> 4 | As_bool -> 1)
  | Floats { nulls; _ } -> if null_bit nulls i then 1 else 8
  | Boxed a -> Value.width a.(i)

let bytes c =
  let n = length c in
  match c with
  | Ints { tag; nulls = None; _ } ->
    n * (match tag with As_int -> 8 | As_date -> 4 | As_bool -> 1)
  | Floats { nulls = None; _ } -> n * 8
  | _ ->
    let acc = ref 0 in
    for i = 0 to n - 1 do acc := !acc + bytes_at c i done;
    !acc

(* -- construction -- *)

let make_ints n : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let make_floats n : floats = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(** Incremental column builder. Starts representation-less and adapts to
    the values fed: the first non-null value picks an unboxed buffer when
    possible; a later incompatible value demotes everything to [Boxed].
    Int-vs-float mixes also demote (promotion would change [Int 1] into
    [Float 1.], which is {!Value.equal} but not identical — the row oracle
    would notice in formatting and SUM typing). *)
module Builder = struct
  type mode = Empty | BInt of int_tag | BFloat | BBoxed

  type col = t

  type t = {
    mutable mode : mode;
    mutable idata : ints;
    mutable fdata : floats;
    mutable boxed : Value.t array;
    mutable nulls : Bytes.t;
    mutable has_null : bool;
    mutable len : int;
    mutable cap : int;
  }

  let dummy_i = make_ints 0
  let dummy_f = make_floats 0

  let create ?(capacity = 16) () =
    let cap = max capacity 1 in
    { mode = Empty; idata = dummy_i; fdata = dummy_f; boxed = [||];
      nulls = Bytes.make cap '\000'; has_null = false; len = 0; cap }

  let grow b =
    let cap' = b.cap * 2 in
    let nulls' = Bytes.make cap' '\000' in
    Bytes.blit b.nulls 0 nulls' 0 b.len;
    b.nulls <- nulls';
    (match b.mode with
     | Empty -> ()
     | BInt _ ->
       let d = make_ints cap' in
       Bigarray.Array1.blit b.idata (Bigarray.Array1.sub d 0 b.cap);
       b.idata <- d
     | BFloat ->
       let d = make_floats cap' in
       Bigarray.Array1.blit b.fdata (Bigarray.Array1.sub d 0 b.cap);
       b.fdata <- d
     | BBoxed ->
       let d = Array.make cap' Value.Null in
       Array.blit b.boxed 0 d 0 b.len;
       b.boxed <- d);
    b.cap <- cap'

  (* demote the accumulated prefix to boxed values *)
  let to_boxed b =
    let d = Array.make b.cap Value.Null in
    (match b.mode with
     | Empty | BBoxed -> ()
     | BInt tag ->
       for i = 0 to b.len - 1 do
         if Bytes.get b.nulls i = '\000' then d.(i) <- decode_int tag b.idata.{i}
       done
     | BFloat ->
       for i = 0 to b.len - 1 do
         if Bytes.get b.nulls i = '\000' then d.(i) <- Value.Float b.fdata.{i}
       done);
    b.boxed <- d;
    b.idata <- dummy_i;
    b.fdata <- dummy_f;
    b.mode <- BBoxed

  let start_ints b tag =
    (* only reachable from Empty: every stored prefix cell is null *)
    b.idata <- make_ints b.cap;
    Bigarray.Array1.fill b.idata 0;
    b.mode <- BInt tag

  let start_floats b =
    b.fdata <- make_floats b.cap;
    Bigarray.Array1.fill b.fdata 0.;
    b.mode <- BFloat

  let add b (v : Value.t) =
    if b.len = b.cap then grow b;
    let i = b.len in
    (match v with
     | Value.Null ->
       b.has_null <- true;
       Bytes.set b.nulls i '\001';
       (match b.mode with
        | BBoxed -> b.boxed.(i) <- Value.Null
        | BInt _ -> b.idata.{i} <- 0
        | BFloat -> b.fdata.{i} <- 0.
        | Empty -> ())
     | Value.Int x ->
       (match b.mode with
        | Empty -> start_ints b As_int
        | BInt As_int -> ()
        | BInt _ | BFloat -> to_boxed b
        | BBoxed -> ());
       (match b.mode with
        | BInt As_int -> b.idata.{i} <- x
        | _ -> b.boxed.(i) <- v)
     | Value.Date x ->
       (match b.mode with
        | Empty -> start_ints b As_date
        | BInt As_date -> ()
        | BInt _ | BFloat -> to_boxed b
        | BBoxed -> ());
       (match b.mode with
        | BInt As_date -> b.idata.{i} <- x
        | _ -> b.boxed.(i) <- v)
     | Value.Bool x ->
       (match b.mode with
        | Empty -> start_ints b As_bool
        | BInt As_bool -> ()
        | BInt _ | BFloat -> to_boxed b
        | BBoxed -> ());
       (match b.mode with
        | BInt As_bool -> b.idata.{i} <- (if x then 1 else 0)
        | _ -> b.boxed.(i) <- v)
     | Value.Float x ->
       (match b.mode with
        | Empty -> start_floats b
        | BFloat -> ()
        | BInt _ -> to_boxed b
        | BBoxed -> ());
       (match b.mode with
        | BFloat -> b.fdata.{i} <- x
        | _ -> b.boxed.(i) <- v)
     | Value.String _ ->
       (match b.mode with
        | BBoxed -> ()
        | _ -> to_boxed b);
       b.boxed.(i) <- v);
    b.len <- i + 1

  let finish b : col =
    let n = b.len in
    let nulls = if b.has_null then Some (Bytes.sub b.nulls 0 n) else None in
    match b.mode with
    | Empty ->
      (* all nulls (or empty) *)
      Boxed (Array.make n Value.Null)
    | BInt tag ->
      let d = make_ints n in
      Bigarray.Array1.blit (Bigarray.Array1.sub b.idata 0 n) d;
      Ints { tag; data = d; nulls }
    | BFloat ->
      let d = make_floats n in
      Bigarray.Array1.blit (Bigarray.Array1.sub b.fdata 0 n) d;
      Floats { data = d; nulls }
    | BBoxed -> Boxed (Array.sub b.boxed 0 n)

  let length b = b.len
end

let of_values (a : Value.t array) : t =
  let b = Builder.create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (Builder.add b) a;
  Builder.finish b

let of_value_list (l : Value.t list) : t =
  let b = Builder.create () in
  List.iter (Builder.add b) l;
  Builder.finish b

let to_values (c : t) : Value.t array =
  match c with
  | Boxed a -> Array.copy a
  | _ -> Array.init (length c) (get c)

(* -- bulk operations -- *)

(** [gather c idx] builds a dense column with [idx]'s rows of [c], in
    order. An index of [-1] yields [Null] (left-outer null extension). *)
let gather (c : t) (idx : int array) : t =
  let m = Array.length idx in
  let any_neg = Array.exists (fun i -> i < 0) idx in
  match c with
  | Ints { tag; data; nulls } ->
    let d = make_ints m in
    let need_mask = any_neg || nulls <> None in
    let mask = if need_mask then Some (Bytes.make m '\000') else None in
    let any = ref false in
    for k = 0 to m - 1 do
      let i = idx.(k) in
      if i < 0 || null_bit nulls i then begin
        d.{k} <- 0;
        (match mask with Some b -> Bytes.set b k '\001'; any := true | None -> ())
      end
      else d.{k} <- data.{i}
    done;
    Ints { tag; data = d; nulls = (if !any then mask else None) }
  | Floats { data; nulls } ->
    let d = make_floats m in
    let need_mask = any_neg || nulls <> None in
    let mask = if need_mask then Some (Bytes.make m '\000') else None in
    let any = ref false in
    for k = 0 to m - 1 do
      let i = idx.(k) in
      if i < 0 || null_bit nulls i then begin
        d.{k} <- 0.;
        (match mask with Some b -> Bytes.set b k '\001'; any := true | None -> ())
      end
      else d.{k} <- data.{i}
    done;
    Floats { data = d; nulls = (if !any then mask else None) }
  | Boxed a ->
    Boxed (Array.map (fun i -> if i < 0 then Value.Null else a.(i)) idx)

(** Concatenate columns (in order). Homogeneous unboxed representations
    concatenate buffer-to-buffer; mixed representations demote to boxed. *)
let concat (cs : t list) : t =
  match cs with
  | [] -> Boxed [||]
  | [ c ] -> c
  | first :: _ ->
    let total = List.fold_left (fun acc c -> acc + length c) 0 cs in
    let homogeneous_int tag =
      List.for_all (function Ints { tag = t'; _ } -> t' = tag | _ -> false) cs
    in
    let homogeneous_float =
      List.for_all (function Floats _ -> true | _ -> false) cs
    in
    (match first with
     | Ints { tag; _ } when homogeneous_int tag ->
       let d = make_ints total in
       let mask = Bytes.make total '\000' in
       let any = ref false in
       let off = ref 0 in
       List.iter
         (function
           | Ints { data; nulls; _ } ->
             let n = Bigarray.Array1.dim data in
             if n > 0 then
               Bigarray.Array1.blit data (Bigarray.Array1.sub d !off n);
             (match nulls with
              | Some b ->
                Bytes.blit b 0 mask !off n;
                if Bytes.exists (fun c -> c <> '\000') b then any := true
              | None -> ());
             off := !off + n
           | _ -> assert false)
         cs;
       Ints { tag; data = d; nulls = (if !any then Some mask else None) }
     | Floats _ when homogeneous_float ->
       let d = make_floats total in
       let mask = Bytes.make total '\000' in
       let any = ref false in
       let off = ref 0 in
       List.iter
         (function
           | Floats { data; nulls } ->
             let n = Bigarray.Array1.dim data in
             if n > 0 then
               Bigarray.Array1.blit data (Bigarray.Array1.sub d !off n);
             (match nulls with
              | Some b ->
                Bytes.blit b 0 mask !off n;
                if Bytes.exists (fun c -> c <> '\000') b then any := true
              | None -> ());
             off := !off + n
           | _ -> assert false)
         cs;
       Floats { data = d; nulls = (if !any then Some mask else None) }
     | _ ->
       let d = Array.make total Value.Null in
       let off = ref 0 in
       List.iter
         (fun c ->
            let n = length c in
            (match c with
             | Boxed a -> Array.blit a 0 d !off n
             | _ -> for i = 0 to n - 1 do d.(!off + i) <- get c i done);
            off := !off + n)
         cs;
       Boxed d)

(* -- column-major tables -- *)

(** A column-major table: the base-table storage format of the columnar
    engine (and the output format of the TPC-H generator). *)
type table = {
  nrows : int;
  cols : t array;
}

let table_of_rows ~(width : int) (rows : Value.t array list) : table =
  let n = List.length rows in
  let bs = Array.init width (fun _ -> Builder.create ~capacity:(max 1 n) ()) in
  List.iter (fun row -> Array.iteri (fun j b -> Builder.add b row.(j)) bs) rows;
  { nrows = n; cols = Array.map Builder.finish bs }

let table_rows (t : table) : Value.t array list =
  List.init t.nrows (fun i -> Array.map (fun c -> get c i) t.cols)
