(** Table schemas stored in the shell database. *)

type column = {
  col_name : string;
  col_type : Types.t;
  col_width : int;      (** average stored width in bytes (feeds DMS costing) *)
  nullable : bool;
  is_pk : bool;         (** part of the table's primary key *)
  references : (string * string) option;
      (** declared foreign key: (table, column); referential integrity is
          assumed to hold, enabling redundant-join elimination *)
}

type t = {
  name : string;
  columns : column array;
}

let column ?(nullable = false) ?width ?(is_pk = false) ?references name ty =
  let col_width = match width with Some w -> w | None -> Types.default_width ty in
  { col_name = name; col_type = ty; col_width; nullable; is_pk; references }

let make name columns = { name; columns = Array.of_list columns }

let find_col t name =
  let n = Array.length t.columns in
  let rec go i =
    if i >= n then None
    else if String.lowercase_ascii t.columns.(i).col_name = String.lowercase_ascii name
    then Some i
    else go (i + 1)
  in
  go 0

let col t i = t.columns.(i)
let arity t = Array.length t.columns

(* Total average row width in bytes. *)
let row_width t =
  Array.fold_left (fun acc c -> acc + c.col_width) 0 t.columns

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s(" t.name;
  Array.iteri
    (fun i c ->
       if i > 0 then Format.fprintf ppf ",@ ";
       Format.fprintf ppf "%s %a" c.col_name Types.pp c.col_type)
    t.columns;
  Format.fprintf ppf ")@]"
