(** Runtime values: the cell type of every simulated table.

    SQL [NULL] is represented explicitly; comparisons follow SQL three-valued
    logic at the executor level (see {!Engine}), while [compare] below is a
    total order used for sorting and data structures (NULLs sort first). *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

let type_of = function
  | Null -> None
  | Int _ -> Some Types.Tint
  | Float _ -> Some Types.Tfloat
  | String _ -> Some Types.Tstring
  | Bool _ -> Some Types.Tbool
  | Date _ -> Some Types.Tdate

let is_null = function Null -> true | _ -> false

(* Rank used to totally order values of distinct types (only relevant for
   heterogeneous sorts, which well-typed plans never produce). *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* ints and floats compare numerically *)
  | Date _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> Int.compare x y
  | a, b -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x ->
    (* hash floats that are integral the same as the int, so mixed-type
       equi-join keys route consistently *)
    if Float.is_integer x then Hashtbl.hash (int_of_float x) else Hashtbl.hash x
  | String s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  | Date d -> Hashtbl.hash d

(* -- Date arithmetic (civil-calendar algorithms, proleptic Gregorian) -- *)

let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let date_of_string s =
  (* accepts YYYY-MM-DD, optionally followed by a time component *)
  try
    Scanf.sscanf s "%d-%d-%d" (fun y m d -> Some (days_from_civil ~y ~m ~d))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let string_of_date z =
  let y, m, d = civil_from_days z in
  Printf.sprintf "%04d-%02d-%02d" y m d

let last_day_of_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | _ -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28

(* DATEADD semantics: day-of-month clamps to the target month's end *)
let add_years z n =
  let y, m, d = civil_from_days z in
  let y' = y + n in
  days_from_civil ~y:y' ~m ~d:(min d (last_day_of_month y' m))

let add_months z n =
  let y, m, d = civil_from_days z in
  let total = (y * 12 + (m - 1)) + n in
  let y' = if total >= 0 then total / 12 else (total - 11) / 12 in
  let m' = total - (y' * 12) + 1 in
  days_from_civil ~y:y' ~m:m' ~d:(min d (last_day_of_month y' m'))

let year_of z = let y, _, _ = civil_from_days z in y

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else Printf.sprintf "%.6g" x
  | String s -> s
  | Bool b -> if b then "true" else "false"
  | Date d -> string_of_date d

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* SQL-literal rendering, used by DSQL generation. *)
let to_sql = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | String s ->
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '\'';
    String.iter (fun c -> if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c) s;
    Buffer.add_char b '\'';
    Buffer.contents b
  | Bool b -> if b then "1" else "0"
  | Date d -> Printf.sprintf "CAST ('%s' AS DATE)" (string_of_date d)

(* Numeric views; raise on non-numeric input (plans are typed upstream). *)
let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Date d -> float_of_int d
  | Bool b -> if b then 1.0 else 0.0
  | Null -> nan
  | String s -> (try float_of_string s with _ -> nan)

(* Approximate serialized width in bytes, for byte accounting in DMS. *)
let width = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> String.length s
  | Bool _ -> 1
  | Date _ -> 4
