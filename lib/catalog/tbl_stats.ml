(** Table-level statistics: row count plus per-column stats, keyed by column
    name (lowercased). *)

type t = {
  row_count : float;
  columns : (string, Col_stats.t) Hashtbl.t;
}

let make ?(row_count = 0.) () = { row_count; columns = Hashtbl.create 16 }

let set_col t name stats = Hashtbl.replace t.columns (String.lowercase_ascii name) stats

let col t name = Hashtbl.find_opt t.columns (String.lowercase_ascii name)

let row_count t = t.row_count

(** Compute local statistics for one node's rows against a schema. *)
let of_rows (schema : Schema.t) (rows : Value.t array list) =
  let t = make ~row_count:(float_of_int (List.length rows)) () in
  Array.iteri
    (fun i c ->
       let values = List.map (fun r -> r.(i)) rows in
       let avg_width =
         match values with
         | [] -> float_of_int c.Schema.col_width
         | _ ->
           let s = List.fold_left (fun a v -> a + Value.width v) 0 values in
           float_of_int s /. float_of_int (List.length values)
       in
       set_col t c.Schema.col_name (Col_stats.of_values ~avg_width values))
    schema.Schema.columns;
  t

(** Merge per-node local table stats into global stats (paper §2.2: "local
    statistics are first computed on each node ... and are then merged
    together to derive global statistics"). *)
let merge parts =
  match parts with
  | [] -> make ()
  | first :: _ ->
    let row_count = List.fold_left (fun a p -> a +. p.row_count) 0. parts in
    let t = make ~row_count () in
    Hashtbl.iter
      (fun name _ ->
         let per_node = List.filter_map (fun p -> Hashtbl.find_opt p.columns name) parts in
         set_col t name (Col_stats.merge per_node))
      first.columns;
    t

let pp ppf t =
  Format.fprintf ppf "@[<v 2>rows=%g@," t.row_count;
  Hashtbl.iter (fun name cs -> Format.fprintf ppf "%s: %a@," name Col_stats.pp cs) t.columns;
  Format.fprintf ppf "@]"
