(** The shell database (paper §2.2): metadata and global statistics for every
    table in the appliance, with no user data. It is the "single system
    image" the compilation stack works against. *)

type table = {
  schema : Schema.t;
  dist : Distribution.t;
  mutable stats : Tbl_stats.t;
}

type t = {
  tables : (string, table) Hashtbl.t;
  node_count : int;  (** number of compute nodes in the appliance topology *)
  mutable stats_version : int;
      (** bumped on every catalog/statistics change; cached compilation
          artifacts (e.g. the plan cache) key on it for invalidation *)
}

let create ~node_count = { tables = Hashtbl.create 16; node_count; stats_version = 0 }

let node_count t = t.node_count

let stats_version t = t.stats_version

let add_table t ?(stats = Tbl_stats.make ()) schema dist =
  let tbl = { schema; dist; stats } in
  Hashtbl.replace t.tables (String.lowercase_ascii schema.Schema.name) tbl;
  t.stats_version <- t.stats_version + 1;
  tbl

let find t name = Hashtbl.find_opt t.tables (String.lowercase_ascii name)

let find_exn t name =
  match find t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Shell_db.find_exn: unknown table %s" name)

let set_stats t name stats =
  match find t name with
  | Some tbl ->
    tbl.stats <- stats;
    t.stats_version <- t.stats_version + 1
  | None -> invalid_arg (Printf.sprintf "Shell_db.set_stats: unknown table %s" name)

(** Replace one column's statistics in place (feedback-driven refinement),
    bumping [stats_version] so cached compilation artifacts keyed on it
    (e.g. the plan cache) evict naturally. *)
let update_col_stats t name col stats =
  match find t name with
  | Some tbl ->
    Tbl_stats.set_col tbl.stats col stats;
    t.stats_version <- t.stats_version + 1
  | None -> invalid_arg (Printf.sprintf "Shell_db.update_col_stats: unknown table %s" name)

(** Bump [stats_version] with no content change — marks an atomic catalog
    flip (e.g. a topology move committing) so version-keyed consumers
    (plan cache, plan store) observe that the layout changed even though
    every table object is unchanged. *)
let touch t = t.stats_version <- t.stats_version + 1

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let row_count tbl = Tbl_stats.row_count tbl.stats

let col_stats tbl name = Tbl_stats.col tbl.stats name

let pp ppf t =
  Format.fprintf ppf "@[<v>shell database (%d compute nodes)@," t.node_count;
  Hashtbl.iter
    (fun _ tbl ->
       Format.fprintf ppf "%a %a rows=%g@," Schema.pp tbl.schema Distribution.pp tbl.dist
         (row_count tbl))
    t.tables;
  Format.fprintf ppf "@]"
