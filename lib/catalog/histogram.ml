(** Equi-depth histograms.

    These play the role of SQL Server statistics objects in the shell
    database (paper §2.2): per-node local histograms are computed first and
    then merged into global statistics. *)

type bucket = {
  lo : Value.t;     (** inclusive lower bound *)
  hi : Value.t;     (** inclusive upper bound *)
  rows : float;     (** rows in the bucket *)
  ndv : float;      (** distinct values in the bucket *)
}

type t = {
  buckets : bucket array;
  null_rows : float;
  total_rows : float;  (** including nulls *)
}

let empty = { buckets = [||]; null_rows = 0.; total_rows = 0. }

let total_rows t = t.total_rows
let non_null_rows t = t.total_rows -. t.null_rows

(** Build an equi-depth histogram from a multiset of values. *)
let build ?(nbuckets = 32) values =
  let nulls, non_null = List.partition Value.is_null values in
  let sorted = List.sort Value.compare non_null in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let null_rows = float_of_int (List.length nulls) in
  if n = 0 then { empty with null_rows; total_rows = null_rows }
  else begin
    let nb = min nbuckets n in
    let per = float_of_int n /. float_of_int nb in
    let buckets = ref [] in
    let start = ref 0 in
    for b = 1 to nb do
      let stop = if b = nb then n else int_of_float (Float.round (per *. float_of_int b)) in
      let stop = max stop (!start + 1) in
      let stop = min stop n in
      (* never split a run of equal values across buckets (keeps per-bucket
         NDV meaningful) *)
      let stop = ref stop in
      while !stop < n && !stop > 0 && Value.compare arr.(!stop) arr.(!stop - 1) = 0 do
        incr stop
      done;
      let stop = !stop in
      if !start < stop then begin
        let lo = arr.(!start) and hi = arr.(stop - 1) in
        (* count distinct within the (sorted) slice *)
        let ndv = ref 1 in
        for i = !start + 1 to stop - 1 do
          if Value.compare arr.(i) arr.(i - 1) <> 0 then incr ndv
        done;
        buckets := { lo; hi; rows = float_of_int (stop - !start); ndv = float_of_int !ndv }
                   :: !buckets;
        start := stop
      end
    done;
    { buckets = Array.of_list (List.rev !buckets);
      null_rows;
      total_rows = float_of_int n +. null_rows }
  end

(* Fraction of a bucket's row mass at or below [v], assuming a uniform spread
   of values within the bucket. *)
let bucket_fraction_le b v =
  if Value.compare v b.lo < 0 then 0.
  else if Value.compare v b.hi >= 0 then 1.
  else
    match b.lo, b.hi with
    | (Value.Int _ | Value.Float _ | Value.Date _), (Value.Int _ | Value.Float _ | Value.Date _) ->
      let lo = Value.to_float b.lo and hi = Value.to_float b.hi and x = Value.to_float v in
      if hi <= lo then 1. else Float.max 0. (Float.min 1. ((x -. lo) /. (hi -. lo)))
    | _ -> 0.5 (* strings: no linear interpolation; split the bucket *)

(** Estimated number of rows equal to [v] (0 for NULL probes; use
    [null_rows] for IS NULL). *)
let rows_eq t v =
  if Value.is_null v then 0.
  else
    Array.fold_left
      (fun acc b ->
         if Value.compare v b.lo >= 0 && Value.compare v b.hi <= 0 then
           acc +. (b.rows /. Float.max 1. b.ndv)
         else acc)
      0. t.buckets

(** Estimated number of rows with value <= v (strictly less if [strict]). *)
let rows_le ?(strict = false) t v =
  let le =
    Array.fold_left (fun acc b -> acc +. (b.rows *. bucket_fraction_le b v)) 0. t.buckets
  in
  if strict then Float.max 0. (le -. rows_eq t v) else le

(** Estimated rows with value >= v (strictly greater if [strict]). *)
let rows_ge ?(strict = false) t v =
  let nn = non_null_rows t in
  if strict then Float.max 0. (nn -. rows_le t v)
  else Float.max 0. (nn -. rows_le ~strict:true t v)

let min_value t = if Array.length t.buckets = 0 then None else Some t.buckets.(0).lo
let max_value t =
  let n = Array.length t.buckets in
  if n = 0 then None else Some t.buckets.(n - 1).hi

let ndv t = Array.fold_left (fun acc b -> acc +. b.ndv) 0. t.buckets

(** Merge per-node local histograms into a single global histogram
    (paper §2.2). Bucket boundaries are unioned; overlapping buckets split
    their mass linearly; the result is re-bucketized to [nbuckets]. *)
let merge ?(nbuckets = 32) parts =
  let parts = List.filter (fun h -> Array.length h.buckets > 0 || h.null_rows > 0.) parts in
  match parts with
  | [] -> empty
  | _ ->
    let null_rows = List.fold_left (fun a h -> a +. h.null_rows) 0. parts in
    let all_buckets = List.concat_map (fun h -> Array.to_list h.buckets) parts in
    if all_buckets = [] then { empty with null_rows; total_rows = null_rows }
    else begin
      (* Collect all boundary points, then apportion each source bucket's
         mass into the refined intervals. *)
      let bounds =
        List.concat_map (fun b -> [ b.lo; b.hi ]) all_buckets
        |> List.sort_uniq Value.compare
      in
      let bounds = Array.of_list bounds in
      let nseg = max 1 (Array.length bounds - 1) in
      let seg_rows = Array.make nseg 0. in
      let seg_ndv = Array.make nseg 0. in
      let point_rows = Hashtbl.create 16 in (* single-value buckets *)
      List.iter
        (fun b ->
           if Value.compare b.lo b.hi = 0 then begin
             let k = Value.to_string b.lo in
             let prev = try Hashtbl.find point_rows k with Not_found -> (b.lo, 0., 0.) in
             let _, r, d = prev in
             Hashtbl.replace point_rows k (b.lo, r +. b.rows, Float.max d b.ndv)
           end else begin
             (* distribute over covered segments proportionally to overlap *)
             let covered = ref [] in
             for s = 0 to nseg - 1 do
               let slo = bounds.(s) and shi = bounds.(s + 1) in
               if Value.compare slo b.hi < 0 && Value.compare shi b.lo > 0 then
                 covered := s :: !covered
             done;
             let covered = List.rev !covered in
             let k = float_of_int (List.length covered) in
             if k > 0. then
               List.iter
                 (fun s ->
                    seg_rows.(s) <- seg_rows.(s) +. (b.rows /. k);
                    seg_ndv.(s) <- seg_ndv.(s) +. (b.ndv /. k))
                 covered
           end)
        all_buckets;
      let segs = ref [] in
      for s = nseg - 1 downto 0 do
        if seg_rows.(s) > 0. then begin
          (* summing per-node NDVs overcounts when shards share values; for
             discrete domains the value span is a sound cap *)
          let span =
            match bounds.(s), bounds.(s + 1) with
            | (Value.Int a | Value.Date a), (Value.Int b | Value.Date b) ->
              Some (float_of_int (b - a + 1))
            | _ -> None
          in
          let ndv = Float.max 1. seg_ndv.(s) in
          let ndv = match span with Some sp -> Float.min ndv sp | None -> ndv in
          segs := { lo = bounds.(s); hi = bounds.(s + 1); rows = seg_rows.(s); ndv }
                  :: !segs
        end
      done;
      Hashtbl.iter
        (fun _ (v, r, d) ->
           segs := { lo = v; hi = v; rows = r; ndv = Float.max 1. d } :: !segs)
        point_rows;
      let segs = List.sort (fun a b -> Value.compare a.lo b.lo) !segs in
      (* Re-bucketize down to [nbuckets] by coalescing adjacent segments. *)
      let total = List.fold_left (fun a b -> a +. b.rows) 0. segs in
      let target = total /. float_of_int nbuckets in
      let out = ref [] in
      let cur = ref None in
      let flush () = match !cur with Some b -> out := b :: !out; cur := None | None -> () in
      List.iter
        (fun seg ->
           match !cur with
           | None -> cur := Some seg
           | Some b ->
             if b.rows >= target then begin flush (); cur := Some seg end
             else cur := Some { lo = b.lo; hi = seg.hi; rows = b.rows +. seg.rows; ndv = b.ndv +. seg.ndv })
        segs;
      flush ();
      { buckets = Array.of_list (List.rev !out);
        null_rows;
        total_rows = total +. null_rows }
    end

(** Refine a histogram from a full multiset of observed values (the
    feedback loop's auto-stats refresh): rebuild at [nbuckets] resolution
    from the observations, then widen the outer bucket bounds to cover the
    previously seeded min/max. Widening-only: the refined domain always
    contains the original one, so analysis bounds derived from
    [min_value]/[max_value] (R11) stay sound. [refine t [] = t], and
    refinement is idempotent for a fixed observation multiset. *)
let refine ?(nbuckets = 32) t observations =
  match observations with
  | [] -> t
  | _ ->
    let fresh = build ~nbuckets observations in
    let n = Array.length fresh.buckets in
    if n = 0 then t (* all-null observations: nothing to rebucketize *)
    else begin
      let buckets = Array.copy fresh.buckets in
      (match min_value t with
       | Some m when Value.compare m buckets.(0).lo < 0 ->
         buckets.(0) <- { (buckets.(0)) with lo = m }
       | _ -> ());
      (match max_value t with
       | Some m when Value.compare m buckets.(n - 1).hi > 0 ->
         buckets.(n - 1) <- { (buckets.(n - 1)) with hi = m }
       | _ -> ());
      { fresh with buckets }
    end

let pp ppf t =
  Format.fprintf ppf "@[<v>histogram: %g rows (%g null), %d buckets@," t.total_rows
    t.null_rows (Array.length t.buckets);
  Array.iter
    (fun b ->
       Format.fprintf ppf "  [%s .. %s] rows=%g ndv=%g@," (Value.to_string b.lo)
         (Value.to_string b.hi) b.rows b.ndv)
    t.buckets;
  Format.fprintf ppf "@]"
