(** Abstract-interpretation plan analyzer (DESIGN.md §12): typed-expression
    checking, an interval/null abstract domain per column, and per-node
    cardinality bounds with contradiction detection.

    Every derivation is an over-approximation of the exact query semantics
    on any database consistent with the shell catalog (whose min/max/null
    statistics the simulator computes exactly from the loaded data); the
    optimizer's own estimates are never trusted. *)

open Catalog
open Algebra

(* ===================== typed expressions ===================== *)

type ty = { base : Types.t option; nullable : bool }

type type_error = { expr : string; reason : string }

let top_ty = { base = None; nullable = true }

let base_str = function
  | Some t -> Types.to_string t
  | None -> "null"

(* Render an expression defensively: registry lookups may fail on corrupt
   plans, which is exactly when we are producing an error message. *)
let estr reg e = try Expr.to_string reg e with Invalid_argument _ -> "<expr>"

let numeric_base = function
  | Some (Types.Tstring | Types.Tbool) -> false
  | Some (Types.Tint | Types.Tfloat | Types.Tdate) | None -> true

let compatible_base a b =
  match a, b with
  | None, _ | _, None -> true
  | Some x, Some y -> Types.compatible x y

(* Bottom-up type inference with error collection. Ill-typed subterms
   degrade to [top_ty] so one mistake reports once, not transitively. *)
let rec infer_acc reg errs (e : Expr.t) : ty =
  let err fmt =
    Printf.ksprintf
      (fun reason -> errs := { expr = estr reg e; reason } :: !errs)
      fmt
  in
  let sub x = infer_acc reg errs x in
  match e with
  | Expr.Col c ->
    (try { base = Some (Registry.ty reg c); nullable = true }
     with Invalid_argument _ ->
       err "reference to unknown column #%d" c;
       top_ty)
  | Expr.Lit Value.Null -> { base = None; nullable = true }
  | Expr.Lit v -> { base = Value.type_of v; nullable = false }
  | Expr.Bin (((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod) as op), a, b) ->
    let ta = sub a and tb = sub b in
    if not (numeric_base ta.base) then
      err "arithmetic over %s operand %s" (base_str ta.base) (estr reg a);
    if not (numeric_base tb.base) then
      err "arithmetic over %s operand %s" (base_str tb.base) (estr reg b);
    let date t = t.base = Some Types.Tdate in
    let base =
      match op with
      | Expr.Div -> Some Types.Tfloat
      | Expr.Mod -> Some Types.Tint
      | Expr.Add | Expr.Sub ->
        if date ta && date tb then Some Types.Tint (* day difference *)
        else if date ta || date tb then Some Types.Tdate
        else if ta.base = Some Types.Tfloat || tb.base = Some Types.Tfloat then
          Some Types.Tfloat
        else Some Types.Tint
      | _ ->
        if ta.base = Some Types.Tfloat || tb.base = Some Types.Tfloat then
          Some Types.Tfloat
        else Some Types.Tint
    in
    { base;
      nullable =
        ta.nullable || tb.nullable || op = Expr.Div || op = Expr.Mod }
  | Expr.Bin (((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as _op), a, b) ->
    let ta = sub a and tb = sub b in
    if not (compatible_base ta.base tb.base) then
      err "comparison between incompatible types %s and %s" (base_str ta.base)
        (base_str tb.base);
    { base = Some Types.Tbool; nullable = ta.nullable || tb.nullable }
  | Expr.Bin ((Expr.And | Expr.Or), a, b) ->
    let ta = sub a and tb = sub b in
    let bool_side s t =
      match t.base with
      | Some Types.Tbool | None -> ()
      | Some other ->
        err "logical operand %s has type %s" (estr reg s) (Types.to_string other)
    in
    bool_side a ta;
    bool_side b tb;
    { base = Some Types.Tbool; nullable = ta.nullable || tb.nullable }
  | Expr.Un (Expr.Neg, a) ->
    let ta = sub a in
    if not (numeric_base ta.base) then
      err "negation of %s operand %s" (base_str ta.base) (estr reg a);
    { ta with base = (match ta.base with Some Types.Tfloat -> ta.base | _ -> Some Types.Tint) }
  | Expr.Un (Expr.Not, a) ->
    let ta = sub a in
    (match ta.base with
     | Some Types.Tbool | None -> ()
     | Some other -> err "NOT over type %s" (Types.to_string other));
    { base = Some Types.Tbool; nullable = ta.nullable }
  | Expr.Is_null (a, _) ->
    ignore (sub a);
    { base = Some Types.Tbool; nullable = false }
  | Expr.Like (a, _, _) ->
    let ta = sub a in
    (match ta.base with
     | Some Types.Tstring | None -> ()
     | Some other -> err "LIKE over type %s" (Types.to_string other));
    { base = Some Types.Tbool; nullable = ta.nullable }
  | Expr.In_list (a, items, _) ->
    let ta = sub a in
    List.iter
      (fun v ->
         if not (compatible_base ta.base (Value.type_of v)) then
           err "IN list item %s incompatible with type %s" (Value.to_string v)
             (base_str ta.base))
      items;
    { base = Some Types.Tbool; nullable = ta.nullable }
  | Expr.Case (branches, else_) ->
    let vts =
      List.map
        (fun (cond, v) ->
           let tc = sub cond in
           (match tc.base with
            | Some Types.Tbool | None -> ()
            | Some other -> err "CASE condition has type %s" (Types.to_string other));
           sub v)
        branches
    in
    let vts = vts @ (match else_ with Some e -> [ sub e ] | None -> []) in
    let base =
      List.fold_left
        (fun acc t ->
           match acc, t.base with
           | None, b -> b
           | b, None -> b
           | Some x, Some y ->
             if not (Types.compatible x y) then
               err "CASE branches mix types %s and %s" (Types.to_string x)
                 (Types.to_string y);
             if x = Types.Tfloat || y = Types.Tfloat then Some Types.Tfloat
             else Some x)
        None vts
    in
    { base;
      nullable = else_ = None || List.exists (fun t -> t.nullable) vts }
  | Expr.Func (f, args) ->
    let tas = List.map sub args in
    let arity n = if List.length args <> n then err "wrong arity for %s" (Expr.string_of_func f) in
    let expect i want =
      match List.nth_opt tas i with
      | Some t when not (compatible_base t.base (Some want)) ->
        err "%s argument %d has type %s, expected %s" (Expr.string_of_func f)
          (i + 1) (base_str t.base) (Types.to_string want)
      | _ -> ()
    in
    let nullable = List.exists (fun t -> t.nullable) tas in
    (match f with
     | Expr.F_dateadd_year | Expr.F_dateadd_month | Expr.F_dateadd_day ->
       arity 2; expect 0 Types.Tint; expect 1 Types.Tdate;
       { base = Some Types.Tdate; nullable }
     | Expr.F_year ->
       arity 1; expect 0 Types.Tdate;
       { base = Some Types.Tint; nullable }
     | Expr.F_substring ->
       arity 3; expect 0 Types.Tstring; expect 1 Types.Tint; expect 2 Types.Tint;
       { base = Some Types.Tstring; nullable }
     | Expr.F_abs ->
       arity 1;
       (match tas with
        | [ t ] when not (numeric_base t.base) ->
          err "ABS over type %s" (base_str t.base)
        | _ -> ());
       { base = (match tas with [ t ] -> t.base | _ -> None); nullable })
  | Expr.Cast (a, ty) ->
    let ta = sub a in
    { base = Some ty; nullable = ta.nullable }

let infer_ty reg e =
  let errs = ref [] in
  infer_acc reg errs e

let check_expr reg e =
  let errs = ref [] in
  ignore (infer_acc reg errs e);
  List.rev !errs

(* A predicate position: type errors of the expression, plus it must be
   boolean. *)
let check_pred reg e =
  let errs = ref [] in
  let t = infer_acc reg errs e in
  (match t.base with
   | Some Types.Tbool | None -> ()
   | Some other ->
     errs :=
       { expr = estr reg e;
         reason = Printf.sprintf "predicate has type %s, expected bool" (Types.to_string other) }
       :: !errs);
  List.rev !errs

let declared_compat reg id (t : ty) what =
  match (try Some (Registry.ty reg id) with Invalid_argument _ -> None) with
  | None ->
    [ { expr = Printf.sprintf "#%d" id;
        reason = Printf.sprintf "%s writes to unknown column #%d" what id } ]
  | Some want ->
    if compatible_base (Some want) t.base then []
    else
      [ { expr = (try Registry.label reg id with Invalid_argument _ -> Printf.sprintf "#%d" id);
          reason =
            Printf.sprintf "%s of type %s assigned to column declared %s" what
              (base_str t.base) (Types.to_string want) } ]

let check_agg reg (a : Expr.agg_def) =
  let errs = ref [] in
  let arg_ty =
    match a.Expr.agg_arg with
    | None -> top_ty
    | Some e -> infer_acc reg errs e
  in
  let name = Expr.string_of_agg a.Expr.agg_func in
  (match a.Expr.agg_func with
   | Expr.Sum | Expr.Avg ->
     (match arg_ty.base with
      | Some (Types.Tint | Types.Tfloat) | None -> ()
      | Some other ->
        errs :=
          { expr =
              (match a.Expr.agg_arg with Some e -> estr reg e | None -> name);
            reason = Printf.sprintf "%s over non-numeric type %s" name (Types.to_string other) }
          :: !errs)
   | Expr.Count_star | Expr.Count | Expr.Min | Expr.Max -> ());
  let out_ty =
    match a.Expr.agg_func with
    | Expr.Count_star | Expr.Count -> { base = Some Types.Tint; nullable = false }
    | Expr.Avg -> { base = Some Types.Tfloat; nullable = true }
    | Expr.Sum | Expr.Min | Expr.Max -> { arg_ty with nullable = true }
  in
  List.rev !errs @ declared_compat reg a.Expr.agg_out out_ty name

let check_key reg k =
  match (try Some (Registry.ty reg k) with Invalid_argument _ -> None) with
  | Some _ -> []
  | None ->
    [ { expr = Printf.sprintf "#%d" k;
        reason = Printf.sprintf "grouping key is unknown column #%d" k } ]

let check_physop reg (op : Memo.Physop.t) : type_error list =
  match op with
  | Memo.Physop.Table_scan _ | Memo.Physop.Union_op | Memo.Physop.Const_empty _ -> []
  | Memo.Physop.Filter p -> check_pred reg p
  | Memo.Physop.Compute defs ->
    List.concat_map
      (fun (id, e) ->
         let errs = ref [] in
         let t = infer_acc reg errs e in
         List.rev !errs @ declared_compat reg id t "computed expression")
      defs
  | Memo.Physop.Hash_join { pred; _ }
  | Memo.Physop.Merge_join { pred; _ }
  | Memo.Physop.Nl_join { pred; _ } -> check_pred reg pred
  | Memo.Physop.Hash_agg { keys; aggs } | Memo.Physop.Stream_agg { keys; aggs } ->
    List.concat_map (check_key reg) keys @ List.concat_map (check_agg reg) aggs
  | Memo.Physop.Sort_op { keys; _ } ->
    List.concat_map (fun k -> check_expr reg k.Relop.key) keys

let check_temp_cols reg (cols : (int * string) list) : type_error list =
  let errs = ref [] in
  let seen : (string, Types.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (id, nm) ->
       match (try Some (Registry.ty reg id) with Invalid_argument _ -> None) with
       | None ->
         errs :=
           { expr = nm; reason = Printf.sprintf "temp column %s maps to unknown column #%d" nm id }
           :: !errs
       | Some t ->
         (match Hashtbl.find_opt seen nm with
          | Some prev when not (Types.compatible prev t) ->
            errs :=
              { expr = nm;
                reason =
                  Printf.sprintf "temp column %s emitted with conflicting types %s and %s" nm
                    (Types.to_string prev) (Types.to_string t) }
              :: !errs
          | Some _ -> ()
          | None -> Hashtbl.add seen nm t))
    cols;
  List.rev !errs

(* ===================== interval domain ===================== *)

type iv = {
  lo : Value.t option;
  hi : Value.t option;
  nullable : bool;
  valued : bool;
}

let top_iv = { lo = None; hi = None; nullable = true; valued = true }

let vmin a b = if Value.compare a b <= 0 then a else b
let vmax a b = if Value.compare a b >= 0 then a else b

(* An interval whose endpoints cross holds no value. *)
let norm_iv iv =
  match iv.lo, iv.hi with
  | Some l, Some h when Value.compare l h > 0 -> { iv with valued = false }
  | _ -> iv

let meet_iv a b =
  norm_iv
    { lo =
        (match a.lo, b.lo with
         | Some x, Some y -> Some (vmax x y)
         | (Some _ as s), None | None, (Some _ as s) -> s
         | None, None -> None);
      hi =
        (match a.hi, b.hi with
         | Some x, Some y -> Some (vmin x y)
         | (Some _ as s), None | None, (Some _ as s) -> s
         | None, None -> None);
      nullable = a.nullable && b.nullable;
      valued = a.valued && b.valued }

let join_iv a b =
  { lo = (match a.lo, b.lo with Some x, Some y -> Some (vmin x y) | _ -> None);
    hi = (match a.hi, b.hi with Some x, Some y -> Some (vmax x y) | _ -> None);
    nullable = a.nullable || b.nullable;
    valued = a.valued || b.valued }

let iv_to_string iv =
  if not iv.valued && iv.nullable then "NULL"
  else if not iv.valued then "(none)"
  else
    Printf.sprintf "[%s, %s]%s"
      (match iv.lo with Some v -> Value.to_string v | None -> "-inf")
      (match iv.hi with Some v -> Value.to_string v | None -> "+inf")
      (if iv.nullable then "?" else "")

let pp_iv ppf iv = Format.pp_print_string ppf (iv_to_string iv)

type env = { ivs : iv Registry.Col_map.t; lo : float; hi : float }

let top_env = { ivs = Registry.Col_map.empty; lo = 0.; hi = Float.infinity }

let is_empty env = env.hi <= 0.

let bottom env = { env with lo = 0.; hi = 0. }

let lookup env c =
  match Registry.Col_map.find_opt c env.ivs with Some iv -> iv | None -> top_iv

let set_iv env c iv = { env with ivs = Registry.Col_map.add c iv env.ivs }

let meet_env a b =
  { ivs =
      Registry.Col_map.merge
        (fun _ x y ->
           match x, y with
           | Some x, Some y -> Some (meet_iv x y)
           | (Some _ as s), None | None, (Some _ as s) -> s
           | None, None -> None)
        a.ivs b.ivs;
    lo = Float.max a.lo b.lo;
    hi = Float.min a.hi b.hi }

(* Join of two refinements of the same base env (an OR's branches): keep
   only constraints established by both. *)
let join_env a b =
  if is_empty a then b
  else if is_empty b then a
  else
    { ivs =
        Registry.Col_map.merge
          (fun _ x y ->
             match x, y with Some x, Some y -> Some (join_iv x y) | _ -> None)
          a.ivs b.ivs;
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi }

(* ===================== abstract evaluation ===================== *)

let num_endpoint = function
  | (Value.Int _ | Value.Float _ | Value.Date _) as v -> Some (Value.to_float v)
  | Value.Bool _ | Value.String _ | Value.Null -> None

let is_date_iv (iv : iv) =
  match iv.lo, iv.hi with
  | Some (Value.Date _), _ | _, Some (Value.Date _) -> true
  | _ -> false

(* Float endpoints; [None] = unbounded (or non-numeric, widened away). *)
let f_lo (iv : iv) = Option.bind iv.lo num_endpoint
let f_hi (iv : iv) = Option.bind iv.hi num_endpoint

let opt2 f a b = match a, b with Some x, Some y -> Some (f x y) | _ -> None

let bool_top ~nullable =
  { lo = Some (Value.Bool false); hi = Some (Value.Bool true); nullable; valued = true }

let rec aeval env (e : Expr.t) : iv =
  match e with
  | Expr.Col c -> lookup env c
  | Expr.Lit Value.Null -> { lo = None; hi = None; nullable = true; valued = false }
  | Expr.Lit v -> { lo = Some v; hi = Some v; nullable = false; valued = true }
  | Expr.Un (Expr.Neg, a) ->
    let x = aeval env a in
    { lo = Option.map (fun v -> Value.Float (-.v)) (f_hi x);
      hi = Option.map (fun v -> Value.Float (-.v)) (f_lo x);
      nullable = x.nullable;
      valued = x.valued }
  | Expr.Un (Expr.Not, a) -> bool_top ~nullable:(aeval env a).nullable
  | Expr.Bin (((Expr.Add | Expr.Sub | Expr.Mul) as op), a, b) ->
    let x = aeval env a and y = aeval env b in
    let lo, hi =
      match op with
      | Expr.Add -> (opt2 ( +. ) (f_lo x) (f_lo y), opt2 ( +. ) (f_hi x) (f_hi y))
      | Expr.Sub -> (opt2 ( -. ) (f_lo x) (f_hi y), opt2 ( -. ) (f_hi x) (f_lo y))
      | _ ->
        (match f_lo x, f_hi x, f_lo y, f_hi y with
         | Some xl, Some xh, Some yl, Some yh ->
           let ps = [ xl *. yl; xl *. yh; xh *. yl; xh *. yh ] in
           ( Some (List.fold_left Float.min (List.hd ps) ps),
             Some (List.fold_left Float.max (List.hd ps) ps) )
         | _ -> (None, None))
    in
    let as_date =
      match op with
      | Expr.Add -> is_date_iv x <> is_date_iv y
      | Expr.Sub -> is_date_iv x && not (is_date_iv y)
      | _ -> false
    in
    let mk round v = if as_date then Value.Date (int_of_float (round v)) else Value.Float v in
    { lo = Option.map (mk Float.floor) lo;
      hi = Option.map (mk Float.ceil) hi;
      nullable = x.nullable || y.nullable;
      valued = x.valued && y.valued }
  | Expr.Bin ((Expr.Div | Expr.Mod), a, b) ->
    let x = aeval env a and y = aeval env b in
    { lo = None; hi = None; nullable = true; valued = x.valued && y.valued }
  | Expr.Bin ((Expr.And | Expr.Or), a, b) ->
    bool_top ~nullable:((aeval env a).nullable || (aeval env b).nullable)
  | Expr.Bin (_, a, b) ->
    (* comparison *)
    bool_top ~nullable:((aeval env a).nullable || (aeval env b).nullable)
  | Expr.Is_null (_, _) -> bool_top ~nullable:false
  | Expr.Like (a, _, _) -> bool_top ~nullable:(aeval env a).nullable
  | Expr.In_list (a, _, _) -> bool_top ~nullable:(aeval env a).nullable
  | Expr.Case (branches, else_) ->
    let vs = List.map (fun (_, v) -> aeval env v) branches in
    let vs = vs @ (match else_ with Some e -> [ aeval env e ] | None -> []) in
    let hull =
      match vs with
      | [] -> top_iv
      | first :: rest -> List.fold_left join_iv first rest
    in
    if else_ = None then { hull with nullable = true } else hull
  | Expr.Func (f, args) -> func_iv env f args
  | Expr.Cast (a, ty) ->
    let x = aeval env a in
    let numeric_endpoints =
      match x.lo, x.hi with
      | (Some (Value.Int _ | Value.Float _) | None), (Some (Value.Int _ | Value.Float _) | None) ->
        true
      | _ -> false
    in
    (match ty with
     | Types.Tint | Types.Tfloat when numeric_endpoints -> x
     | Types.Tdate when is_date_iv x || (x.lo = None && x.hi = None) -> x
     | _ -> { top_iv with nullable = true; valued = x.valued })

and func_iv env f args =
  match f, args with
  | Expr.F_abs, [ a ] ->
    let x = aeval env a in
    let lo =
      match f_lo x, f_hi x with
      | Some l, _ when l >= 0. -> Some l
      | _, Some h when h <= 0. -> Some (-.h)
      | _ -> Some 0.
    in
    let hi =
      match f_lo x, f_hi x with
      | Some l, Some h -> Some (Float.max (Float.abs l) (Float.abs h))
      | _ -> None
    in
    { lo = Option.map (fun v -> Value.Float v) lo;
      hi = Option.map (fun v -> Value.Float v) hi;
      nullable = x.nullable;
      valued = x.valued }
  | Expr.F_year, [ a ] ->
    let x = aeval env a in
    let year = function Some (Value.Date d) -> Some (Value.Int (Value.year_of d)) | _ -> None in
    { lo = year x.lo; hi = year x.hi; nullable = x.nullable; valued = x.valued }
  | (Expr.F_dateadd_year | Expr.F_dateadd_month | Expr.F_dateadd_day), [ Expr.Lit (Value.Int n); d ] ->
    let x = aeval env d in
    let shift = function
      | Some (Value.Date z) ->
        Some
          (Value.Date
             (match f with
              | Expr.F_dateadd_year -> Value.add_years z n
              | Expr.F_dateadd_month -> Value.add_months z n
              | _ -> z + n))
      | _ -> None
    in
    (* add_years/add_months/(+) are monotone in the date argument *)
    { lo = shift x.lo; hi = shift x.hi; nullable = x.nullable; valued = x.valued }
  | _ ->
    let nullable = List.exists (fun a -> (aeval env a).nullable) args in
    { top_iv with nullable = nullable || true }

(* ===================== predicate refinement ===================== *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

let cmp_of = function
  | Expr.Eq -> Some Ceq
  | Expr.Ne -> Some Cne
  | Expr.Lt -> Some Clt
  | Expr.Le -> Some Cle
  | Expr.Gt -> Some Cgt
  | Expr.Ge -> Some Cge
  | _ -> None

let flip = function
  | Ceq -> Ceq
  | Cne -> Cne
  | Clt -> Cgt
  | Cle -> Cge
  | Cgt -> Clt
  | Cge -> Cle

(* Can [a op b] hold for some non-null pair drawn from the two intervals?
   Closed-interval over-approximation: strict bounds are widened, so "no"
   answers are definitive. *)
let sat op a b =
  if not (a.valued && b.valued) then false
  else
    let le x y = Value.compare x y <= 0 in
    let lt x y = Value.compare x y < 0 in
    match op with
    | Ceq ->
      (match a.lo, b.hi with Some l, Some h when not (le l h) -> false | _ -> true)
      && (match b.lo, a.hi with Some l, Some h when not (le l h) -> false | _ -> true)
    | Cne ->
      not
        (match a.lo, a.hi, b.lo, b.hi with
         | Some al, Some ah, Some bl, Some bh ->
           Value.equal al ah && Value.equal bl bh && Value.equal al bl
         | _ -> false)
    | Clt -> (match a.lo, b.hi with Some l, Some h -> lt l h | _ -> true)
    | Cle -> (match a.lo, b.hi with Some l, Some h -> le l h | _ -> true)
    | Cgt -> (match a.hi, b.lo with Some h, Some l -> lt l h | _ -> true)
    | Cge -> (match a.hi, b.lo with Some h, Some l -> le l h | _ -> true)

(* Constraint [c op rhs] contributes to column [c]'s interval. A satisfied
   comparison also proves the column non-null (SQL 3VL: NULL never passes
   a WHERE). *)
let constrain env c op (rhs : iv) =
  let iv = lookup env c in
  let bound =
    match op with
    | Ceq -> { top_iv with lo = rhs.lo; hi = rhs.hi }
    | Clt | Cle -> { top_iv with hi = rhs.hi }
    | Cgt | Cge -> { top_iv with lo = rhs.lo }
    | Cne -> top_iv
  in
  let iv' = { (meet_iv iv bound) with nullable = false } in
  if not iv'.valued then bottom env else set_iv env c iv'

let rec refine env pred =
  List.fold_left refine1 env (Expr.conjuncts pred)

and refine1 env c =
  if is_empty env then env
  else
    match c with
    | Expr.Lit (Value.Bool true) -> env
    | Expr.Lit (Value.Bool false) | Expr.Lit Value.Null -> bottom env
    | Expr.Bin (Expr.Or, a, b) -> join_env (refine env a) (refine env b)
    | Expr.Bin (op, a, b) ->
      (match cmp_of op with
       | None -> env
       | Some op ->
         let iva = aeval env a and ivb = aeval env b in
         if not (sat op iva ivb) then bottom env
         else
           let env = match a with Expr.Col ca -> constrain env ca op ivb | _ -> env in
           if is_empty env then env
           else (match b with Expr.Col cb -> constrain env cb (flip op) iva | _ -> env))
    | Expr.Is_null (Expr.Col c, false) ->
      let iv = lookup env c in
      if not iv.nullable then bottom env
      else set_iv env c { lo = None; hi = None; nullable = true; valued = false }
    | Expr.Is_null (Expr.Col c, true) ->
      let iv = lookup env c in
      if not iv.valued then bottom env else set_iv env c { iv with nullable = false }
    | Expr.In_list (Expr.Col c, items, false) ->
      let vals = List.filter (fun v -> not (Value.is_null v)) items in
      (match vals with
       | [] -> bottom env
       | first :: rest ->
         let lo = List.fold_left vmin first rest and hi = List.fold_left vmax first rest in
         constrain env c Ceq { lo = Some lo; hi = Some hi; nullable = false; valued = true })
    | _ -> env

(* ===================== transfer functions ===================== *)

type ctx = { shell : Shell_db.t; reg : Registry.t; nodes : int }

let context ~shell ~reg ~nodes = { shell; reg; nodes }

(* [infinity *. 0. = nan]; cardinality products must stay well-defined. *)
let mul_hi a b = if a <= 0. || b <= 0. then 0. else a *. b

let union_maps a b =
  Registry.Col_map.union (fun _ x _ -> Some x) a b

let iv_of_stats (cs : Col_stats.t) =
  { lo = cs.Col_stats.min_v;
    hi = cs.Col_stats.max_v;
    nullable = cs.Col_stats.null_frac > 0.;
    valued = cs.Col_stats.min_v <> None }

(* Seed a scan column's interval. The registry's stats can be NDV-only
   after the XML interchange round-trip (Memo_xml serializes ndv, not
   min/max), so prefer the shell catalog reached through the column's base
   source; fall back to registry stats, then top. *)
let seed_col ctx c =
  let reg_fallback () =
    match Registry.stats ctx.reg c with
    | Some cs when cs.Col_stats.min_v <> None || cs.Col_stats.null_frac > 0. ->
      iv_of_stats cs
    | _ -> top_iv
  in
  match (try Some (Registry.info ctx.reg c) with Invalid_argument _ -> None) with
  | Some { Registry.source = Registry.Base { table; column; _ }; _ } ->
    (match Shell_db.find ctx.shell table with
     | Some tbl ->
       (match Shell_db.col_stats tbl column with
        | Some cs -> iv_of_stats cs
        | None -> reg_fallback ())
     | None -> reg_fallback ())
  | _ -> reg_fallback ()

let seed_scan ctx ~table ~cols =
  match Shell_db.find ctx.shell table with
  | None ->
    { ivs =
        Array.fold_left (fun m c -> Registry.Col_map.add c (seed_col ctx c) m)
          Registry.Col_map.empty cols;
      lo = 0.;
      hi = Float.infinity }
  | Some tbl ->
    let rows = Shell_db.row_count tbl in
    { ivs =
        Array.fold_left (fun m c -> Registry.Col_map.add c (seed_col ctx c) m)
          Registry.Col_map.empty cols;
      lo = rows;
      hi = rows }

let group_out ctx keys aggs (c : env) ~partial =
  ignore keys;
  let agg_iv (a : Expr.agg_def) =
    let arg = match a.Expr.agg_arg with Some e -> aeval c e | None -> top_iv in
    match a.Expr.agg_func with
    | Expr.Count_star | Expr.Count ->
      { lo = Some (Value.Int 0);
        hi = (if Float.is_finite c.hi then Some (Value.Float c.hi) else None);
        nullable = false;
        valued = true }
    | Expr.Avg ->
      { lo = Option.map (fun v -> Value.Float v) (f_lo arg);
        hi = Option.map (fun v -> Value.Float v) (f_hi arg);
        nullable = true;
        valued = arg.valued }
    | Expr.Min | Expr.Max -> { arg with nullable = true }
    | Expr.Sum ->
      let n = c.hi in
      let lo =
        match f_lo arg with
        | Some l when l >= 0. -> Some l (* at least one term, each >= l *)
        | Some l when Float.is_finite n -> Some (n *. l)
        | _ -> None
      in
      let hi =
        match f_hi arg with
        | Some h when h <= 0. -> Some h
        | Some h when Float.is_finite n -> Some (n *. h)
        | _ -> None
      in
      { lo = Option.map (fun v -> Value.Float v) lo;
        hi = Option.map (fun v -> Value.Float v) hi;
        nullable = true;
        valued = arg.valued }
  in
  let ivs =
    List.fold_left (fun m a -> Registry.Col_map.add a.Expr.agg_out (agg_iv a) m) c.ivs aggs
  in
  match keys with
  | [] ->
    (* a scalar aggregate emits a row even over empty input (one per node
       when executed as the partial half of a split) *)
    if partial then { ivs; lo = 1.; hi = float_of_int ctx.nodes }
    else { ivs; lo = 1.; hi = 1. }
  | _ :: _ ->
    if is_empty c then { ivs; lo = 0.; hi = 0. }
    else { ivs; lo = (if c.lo >= 1. then 1. else 0.); hi = c.hi }

let join_out kind pred (l : env) (r : env) =
  match (kind : Relop.join_kind) with
  | Relop.Inner | Relop.Cross ->
    let combined = { ivs = union_maps l.ivs r.ivs; lo = 0.; hi = mul_hi l.hi r.hi } in
    if is_empty l || is_empty r then bottom combined
    else
      let rf = refine combined pred in
      if is_empty rf then bottom rf else { rf with lo = 0.; hi = mul_hi l.hi r.hi }
  | Relop.Semi ->
    let combined = { ivs = union_maps l.ivs r.ivs; lo = 0.; hi = l.hi } in
    if is_empty l || is_empty r then bottom combined
    else
      let rf = refine combined pred in
      if is_empty rf then bottom rf else { rf with lo = 0.; hi = l.hi }
  | Relop.Anti_semi ->
    (* negative information: no refinement from the predicate *)
    if is_empty l then bottom l
    else { l with lo = (if r.hi <= 0. then l.lo else 0.); hi = l.hi }
  | Relop.Left_outer ->
    let rn = Registry.Col_map.map (fun iv -> { iv with nullable = true }) r.ivs in
    let ivs = union_maps l.ivs rn in
    if is_empty l then bottom { l with ivs }
    else { ivs; lo = l.lo; hi = mul_hi l.hi (Float.max 1. r.hi) }

(* Did a filter/join become empty through its predicate rather than through
   an already-empty input? That subtree should have been folded. *)
let pred_contradiction reg kind pred children_envs result =
  let inputs_live = List.for_all (fun e -> not (is_empty e)) children_envs in
  let refutable =
    match kind with
    | `Filter -> true
    | `Join Relop.Inner | `Join Relop.Cross | `Join Relop.Semi -> true
    | `Join _ -> false
  in
  if refutable && inputs_live && is_empty result then Some (estr reg pred) else None

(* Unified operator shapes: logical and physical operators share the same
   abstract semantics. *)
type shape =
  | S_scan of { table : string; cols : int array }
  | S_filter of Expr.t
  | S_project of (int * Expr.t) list
  | S_join of Relop.join_kind * Expr.t
  | S_group of int list * Expr.agg_def list
  | S_sort of int option
  | S_union
  | S_empty

let shape_of_relop (op : Relop.op) =
  match op with
  | Relop.Get { table; cols; _ } -> S_scan { table; cols }
  | Relop.Select p -> S_filter p
  | Relop.Project defs -> S_project defs
  | Relop.Join { kind; pred } -> S_join (kind, pred)
  | Relop.Group_by { keys; aggs } -> S_group (keys, aggs)
  | Relop.Sort { limit; _ } -> S_sort limit
  | Relop.Union_all -> S_union
  | Relop.Empty _ -> S_empty

let shape_of_physop (op : Memo.Physop.t) =
  match op with
  | Memo.Physop.Table_scan { table; cols; _ } -> S_scan { table; cols }
  | Memo.Physop.Filter p -> S_filter p
  | Memo.Physop.Compute defs -> S_project defs
  | Memo.Physop.Hash_join { kind; pred }
  | Memo.Physop.Merge_join { kind; pred }
  | Memo.Physop.Nl_join { kind; pred } -> S_join (kind, pred)
  | Memo.Physop.Hash_agg { keys; aggs } | Memo.Physop.Stream_agg { keys; aggs } ->
    S_group (keys, aggs)
  | Memo.Physop.Sort_op { limit; _ } -> S_sort limit
  | Memo.Physop.Union_op -> S_union
  | Memo.Physop.Const_empty _ -> S_empty

let transfer ctx shape (cs : env list) ~sort_mult ~partial_agg : env =
  match shape, cs with
  | S_scan { table; cols }, _ -> seed_scan ctx ~table ~cols
  | S_filter p, [ c ] ->
    if is_empty c then bottom c
    else
      let r = refine c p in
      if is_empty r then bottom r else { r with lo = 0.; hi = c.hi }
  | S_project defs, [ c ] ->
    { c with
      ivs =
        List.fold_left (fun m (id, e) -> Registry.Col_map.add id (aeval c e) m) c.ivs defs }
  | S_join (kind, pred), [ l; r ] -> join_out kind pred l r
  | S_group (keys, aggs), [ c ] -> group_out ctx keys aggs c ~partial:partial_agg
  | S_sort limit, [ c ] ->
    (match limit with
     | None -> c
     | Some n ->
       let n = float_of_int n in
       { c with lo = Float.min c.lo n; hi = Float.min c.hi (n *. sort_mult) })
  | S_union, [ l; r ] ->
    (* the right input is pre-projected onto the left's column ids *)
    { ivs =
        Registry.Col_map.merge
          (fun _ x y -> match x, y with Some x, Some y -> Some (join_iv x y) | _ -> None)
          l.ivs r.ivs;
      lo = l.lo +. r.lo;
      hi = l.hi +. r.hi }
  | S_empty, _ -> { ivs = Registry.Col_map.empty; lo = 0.; hi = 0. }
  | _, _ -> top_env (* malformed arity: stay sound, claim nothing *)

(* ===================== MEMO-level analysis ===================== *)

(* The meet over every expression of a group: each one is a sound
   over-approximation of the same relation, so their meet is too. A group
   reached again while in progress (a recursion back-edge) yields top. *)
let analyze_memo ctx (m : Memo.t) : (int, env) Hashtbl.t =
  let state : (int, env option) Hashtbl.t = Hashtbl.create 64 in
  let rec genv gid =
    let gid = Memo.find m gid in
    match Hashtbl.find_opt state gid with
    | Some (Some e) -> e
    | Some None -> top_env
    | None ->
      Hashtbl.replace state gid None;
      let shapes =
        List.map (fun (l, ch) -> (shape_of_relop l, ch)) (Memo.logical_exprs m gid)
        @ List.map (fun (p, ch) -> (shape_of_physop p, ch)) (Memo.physical_exprs m gid)
      in
      let e =
        match shapes with
        | [] -> top_env
        | (s0, ch0) :: rest ->
          let eval (s, ch) =
            transfer ctx s
              (List.map genv (Array.to_list ch))
              ~sort_mult:1. ~partial_agg:false
          in
          List.fold_left (fun acc sc -> meet_env acc (eval sc)) (eval (s0, ch0)) rest
      in
      Hashtbl.replace state gid (Some e);
      e
  in
  Memo.iter_groups m (fun g -> ignore (genv g.Memo.gid));
  let out = Hashtbl.create (Hashtbl.length state) in
  Hashtbl.iter (fun gid e -> match e with Some e -> Hashtbl.add out gid e | None -> ()) state;
  out

let memo_env ctx m gid =
  let envs = analyze_memo ctx m in
  match Hashtbl.find_opt envs (Memo.find m gid) with Some e -> e | None -> top_env

(* Computed eagerly and sequentially (Memo.find path-compresses, which must
   not race with enumeration workers); the closure only reads an immutable
   array, so it is safe to share across domains. *)
let empty_groups ctx (m : Memo.t) : int -> bool =
  let envs = analyze_memo ctx m in
  let n = Memo.ngroups m in
  let arr = Array.make (Stdlib.max n 1) false in
  for gid = 0 to n - 1 do
    arr.(gid) <-
      (match Hashtbl.find_opt envs (Memo.find m gid) with
       | Some e -> is_empty e
       | None -> false)
  done;
  fun gid -> gid >= 0 && gid < n && arr.(gid)

(* ===================== plan-level analysis ===================== *)

type node_info = {
  card_lo : float;
  card_hi : float;
  out_env : env;
  contradiction : string option;
  type_errors : type_error list;
}

(* Serial operators execute per node: a local TOP under a hashed
   distribution can emit up to [limit] rows on each node, and an
   aggregation whose grouping the input distribution cannot satisfy
   locally is the partial half of a split (matching Enumerate.split_aggs
   and the executor's per-node semantics). *)
let serial_sem ctx (node : Pdwopt.Pplan.t) (op : Memo.Physop.t) (cenvs : env list) =
  let child_dist =
    match node.Pdwopt.Pplan.children with
    | [ ch ] -> Some ch.Pdwopt.Pplan.dist
    | _ -> None
  in
  let partial_agg =
    match op, child_dist with
    | (Memo.Physop.Hash_agg { keys; _ } | Memo.Physop.Stream_agg { keys; _ }), Some d ->
      Dms.Distprop.groupby_local ~keys d = None
    | _ -> false
  in
  let sort_mult =
    match node.Pdwopt.Pplan.dist with
    | Dms.Distprop.Hashed _ -> float_of_int ctx.nodes
    | Dms.Distprop.Replicated | Dms.Distprop.Single_node -> 1.
  in
  let out = transfer ctx (shape_of_physop op) cenvs ~sort_mult ~partial_agg in
  let contradiction =
    match op with
    | Memo.Physop.Filter p -> pred_contradiction ctx.reg `Filter p cenvs out
    | Memo.Physop.Hash_join { kind; pred }
    | Memo.Physop.Merge_join { kind; pred }
    | Memo.Physop.Nl_join { kind; pred } ->
      pred_contradiction ctx.reg (`Join kind) pred cenvs out
    | _ -> None
  in
  (out, contradiction)

type atree = { anode : Pdwopt.Pplan.t; ainfo : node_info; akids : atree list }

let rec build ctx (n : Pdwopt.Pplan.t) : env * atree =
  let kids = List.map (build ctx) n.Pdwopt.Pplan.children in
  let cenvs = List.map fst kids in
  let out, contradiction, type_errors =
    match n.Pdwopt.Pplan.op with
    | Pdwopt.Pplan.Serial op ->
      let out, contra = serial_sem ctx n op cenvs in
      (out, contra, check_physop ctx.reg op)
    | Pdwopt.Pplan.Move _ ->
      ((match cenvs with [ c ] -> c | _ -> top_env), None, [])
    | Pdwopt.Pplan.Return { sort; limit } ->
      let terrs = List.concat_map (fun k -> check_expr ctx.reg k.Relop.key) sort in
      let out =
        match cenvs with
        | [ c ] ->
          (match limit with
           | None -> c
           | Some n ->
             let n = float_of_int n in
             { c with lo = Float.min c.lo n; hi = Float.min c.hi n })
        | _ -> top_env
      in
      (out, None, terrs)
  in
  let info =
    { card_lo = out.lo; card_hi = out.hi; out_env = out; contradiction; type_errors }
  in
  (out, { anode = n; ainfo = info; akids = List.map snd kids })

let rec flatten t acc =
  (t.anode, t.ainfo) :: List.fold_right flatten t.akids acc

let annotate ctx p =
  let _, t = build ctx p in
  flatten t []

let group_bounds ctx p =
  let tbl : (int, float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((n : Pdwopt.Pplan.t), info) ->
       match n.Pdwopt.Pplan.op with
       | Pdwopt.Pplan.Return _ -> () (* TOP applies after the gather, not at exec *)
       | _ ->
         let g = n.Pdwopt.Pplan.group in
         if g >= 0 then
           let lo, hi =
             match Hashtbl.find_opt tbl g with
             | Some (l, h) -> (Float.max l info.card_lo, Float.min h info.card_hi)
             | None -> (info.card_lo, info.card_hi)
           in
           Hashtbl.replace tbl g (lo, hi))
    (annotate ctx p);
  tbl

(* ===================== rendering ===================== *)

let card_str v = if Float.is_finite v then Printf.sprintf "%.6g" v else "inf"

(* Refined (non-top) column intervals worth showing, stable order. *)
let notable_ivs env =
  Registry.Col_map.fold
    (fun c iv acc -> if iv = top_iv then acc else (c, iv) :: acc)
    env.ivs []
  |> List.rev

let render ctx p =
  let buf = Buffer.create 1024 in
  let rec go indent (t : atree) =
    let n = t.anode and i = t.ainfo in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  {%s, rows=%.0f, bounds=[%s, %s]}\n" indent
         (Pdwopt.Pplan.op_to_string ctx.reg n.Pdwopt.Pplan.op)
         (Dms.Distprop.short_string n.Pdwopt.Pplan.dist)
         n.Pdwopt.Pplan.rows (card_str i.card_lo) (card_str i.card_hi));
    (match i.contradiction with
     | Some pred ->
       Buffer.add_string buf
         (Printf.sprintf "%s  !! contradiction: %s\n" indent pred)
     | None -> ());
    List.iter
      (fun (te : type_error) ->
         Buffer.add_string buf
           (Printf.sprintf "%s  !! type error: %s: %s\n" indent te.expr te.reason))
      i.type_errors;
    List.iter (go (indent ^ "  ")) t.akids
  in
  let _, t = build ctx p in
  go "" t;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_finite v then
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v
  else "null"

let render_json ctx p =
  let nodes = annotate ctx p in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun idx ((n : Pdwopt.Pplan.t), (i : node_info)) ->
       if idx > 0 then Buffer.add_string buf ",";
       Buffer.add_string buf
         (Printf.sprintf
            "\n  {\"op\": \"%s\", \"dist\": \"%s\", \"group\": %d, \"rows\": %s, \
             \"lo\": %s, \"hi\": %s"
            (json_escape (Pdwopt.Pplan.op_to_string ctx.reg n.Pdwopt.Pplan.op))
            (json_escape (Dms.Distprop.short_string n.Pdwopt.Pplan.dist))
            n.Pdwopt.Pplan.group (json_num n.Pdwopt.Pplan.rows) (json_num i.card_lo)
            (json_num i.card_hi));
       (match i.contradiction with
        | Some c ->
          Buffer.add_string buf (Printf.sprintf ", \"contradiction\": \"%s\"" (json_escape c))
        | None -> ());
       if i.type_errors <> [] then begin
         Buffer.add_string buf ", \"type_errors\": [";
         List.iteri
           (fun j (te : type_error) ->
              if j > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "{\"expr\": \"%s\", \"reason\": \"%s\"}" (json_escape te.expr)
                   (json_escape te.reason)))
           i.type_errors;
         Buffer.add_string buf "]"
       end;
       let cols = notable_ivs i.out_env in
       if cols <> [] then begin
         Buffer.add_string buf ", \"cols\": {";
         List.iteri
           (fun j (c, iv) ->
              if j > 0 then Buffer.add_string buf ", ";
              let label =
                try Registry.label ctx.reg c with Invalid_argument _ -> Printf.sprintf "#%d" c
              in
              Buffer.add_string buf
                (Printf.sprintf "\"%s\": \"%s\"" (json_escape label) (json_escape (iv_to_string iv))))
           cols;
         Buffer.add_string buf "}"
       end;
       Buffer.add_string buf "}")
    nodes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
