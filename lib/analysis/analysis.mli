(** Abstract-interpretation plan analyzer (DESIGN.md §12).

    Three cooperating bottom-up passes over plans — a typed-expression
    checker, a per-column range/null abstract domain, and a contradiction
    detector — sharing one walk. The analyzer is a second, independent
    opinion on every plan: it derives sound per-node cardinality bounds
    [lo, hi] from the shell catalog and flags type-unsound expressions and
    provably-empty (contradictory) subtrees.

    Soundness contract: every bound is an over-approximation of the exact
    query semantics on any database consistent with the shell catalog's
    statistics (min/max/null_frac taken as exact, as the simulator computes
    them from the loaded data). The optimizer's estimates are {e not}
    trusted anywhere in the derivation. *)

open Catalog
open Algebra

(* -- typed expressions -- *)

(** Inferred static type of an expression. [base = None] means the type is
    unconstrained (the NULL literal). *)
type ty = { base : Types.t option; nullable : bool }

type type_error = { expr : string; reason : string }

(* -- interval domain -- *)

(** Abstract value of one column: a closed interval over {!Value.t} plus a
    null-set bit. [None] endpoints are infinities. [valued = false] means
    the column cannot hold a non-null value; a column with [valued = false]
    and [nullable = false] can hold nothing at all, so the relation is
    empty. Strict predicate bounds are widened to closed ones (sound). *)
type iv = {
  lo : Value.t option;
  hi : Value.t option;
  nullable : bool;
  valued : bool;
}

val top_iv : iv
val pp_iv : Format.formatter -> iv -> unit
val iv_to_string : iv -> string

(** Abstract state of a relation: per-column intervals plus global
    cardinality bounds. [hi <= 0.] means provably empty. *)
type env = { ivs : iv Registry.Col_map.t; lo : float; hi : float }

val is_empty : env -> bool

(* -- analysis context -- *)

type ctx

val context : shell:Shell_db.t -> reg:Registry.t -> nodes:int -> ctx

(* -- typed-expression checker -- *)

(** Infer the static type of an expression (errors are not collected;
    ill-typed subterms yield an unconstrained type). *)
val infer_ty : Registry.t -> Expr.t -> ty

(** All type errors in an expression: arithmetic over strings/booleans,
    incompatible comparison operands (including join keys), non-boolean
    logical operands, malformed function applications. *)
val check_expr : Registry.t -> Expr.t -> type_error list

(** Type errors of one serial physical operator: its predicates must be
    boolean, computed/aggregate outputs must match their declared registry
    types, SUM/AVG arguments must be numeric. *)
val check_physop : Registry.t -> Memo.Physop.t -> type_error list

(** Type errors of a DSQL temp-table schema [(col id, emitted name)]: every
    id must resolve in the registry, and duplicate emitted names must agree
    on their base type. *)
val check_temp_cols : Registry.t -> (int * string) list -> type_error list

(* -- MEMO-level analysis (drives contradiction folding) -- *)

(** Abstract environment of a MEMO group: the meet over all the group's
    expressions (each a sound over-approximation of the same relation).
    Memoized per canonical group id; recursion back-edges yield top. *)
val memo_env : ctx -> Memo.t -> int -> env

(** [empty_groups ctx m] returns a predicate over group ids that is [true]
    exactly for groups proven empty (cardinality upper bound 0). The table
    is computed eagerly — the returned closure is read-only and safe to
    share across domains. *)
val empty_groups : ctx -> Memo.t -> (int -> bool)

(* -- plan-level analysis -- *)

(** Per-node verdict of the analyzer. *)
type node_info = {
  card_lo : float;        (** sound lower bound on global output rows *)
  card_hi : float;        (** sound upper bound (may be [infinity]) *)
  out_env : env;          (** abstract output state *)
  contradiction : string option;
      (** a predicate whose abstract evaluation is bottom while its inputs
          are not provably empty — the subtree should have been folded *)
  type_errors : type_error list;
}

(** Annotate every node of a distributed plan, preorder (node first, then
    children left to right). Aggregation nodes are analyzed partial- or
    final-aware from their input distribution, matching the executor. *)
val annotate : ctx -> Pdwopt.Pplan.t -> (Pdwopt.Pplan.t * node_info) list

(** Fold the annotations into a per-MEMO-group bounds table
    [group -> (lo, hi)] (meet over plan nodes sharing a group; synthetic
    nodes, [group < 0], are skipped). Feeds the engine's [--assert-bounds]
    runtime oracle. *)
val group_bounds : ctx -> Pdwopt.Pplan.t -> (int, float * float) Hashtbl.t

(* -- rendering -- *)

(** Human-readable annotated plan (the [analyze] subcommand). *)
val render : ctx -> Pdwopt.Pplan.t -> string

(** JSON rendering of the annotated plan: a list of node objects with op,
    group, estimated rows, derived bounds, column ranges, and any type
    errors or contradictions. *)
val render_json : ctx -> Pdwopt.Pplan.t -> string
