(** Global column identities.

    Every column instance — base-table columns per table reference, and
    derived columns (aggregate outputs, computed projections) — receives a
    unique integer id at algebrization time. Expressions refer to columns by
    id only, which makes join reordering and data-movement insertion
    rebinding-free throughout the optimizer (no positional references). *)

type col_info = {
  id : int;
  name : string;                  (** display name, e.g. [o_custkey] or [col1] *)
  ty : Catalog.Types.t;
  width : float;                  (** average width in bytes *)
  source : source;
}

and source =
  | Base of { table : string; alias : string; column : string }
  | Derived of string             (** description, e.g. "SUM(l_quantity)" *)

type t = {
  mutable next : int;
  infos : (int, col_info) Hashtbl.t;
  stats : (int, Catalog.Col_stats.t) Hashtbl.t;
}

let create () = { next = 0; infos = Hashtbl.create 64; stats = Hashtbl.create 64 }

let fresh t ~name ~ty ~width source =
  let id = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.infos id { id; name; ty; width; source };
  id

let info t id =
  match Hashtbl.find_opt t.infos id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Registry.info: unknown column #%d" id)

let name t id = (info t id).name
let ty t id = (info t id).ty
let width t id = (info t id).width

let set_stats t id s = Hashtbl.replace t.stats id s
let stats t id = Hashtbl.find_opt t.stats id

(** A stable, human-readable label: [alias.column] for base columns. *)
let label t id =
  match (info t id).source with
  | Base { alias; column; _ } -> alias ^ "." ^ column
  | Derived d -> d

let count t = t.next

module Col_set = Set.Make (Int)
module Col_map = Map.Make (Int)
