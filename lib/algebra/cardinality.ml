(** Cardinality estimation over logical operators, driven by the shell
    database's global statistics (paper Fig. 2 step 2c: "estimation of the
    size of intermediate results ... based on the size of base tables and
    statistics on the column values"). *)

type props = {
  card : float;            (** estimated output rows (global, appliance-wide) *)
}

let default_eq_sel = 0.005
let default_range_sel = 1. /. 3.
let default_like_sel = 0.05

type env = {
  reg : Registry.t;
  shell : Catalog.Shell_db.t;
}

let col_stats env c = Registry.stats env.reg c

let ndv env c =
  match col_stats env c with
  | Some s when s.Catalog.Col_stats.ndv > 0. -> s.Catalog.Col_stats.ndv
  | _ -> 100.

(* Selectivity of one conjunct against an input of [card] rows. *)
let rec conjunct_sel env card conj =
  match conj with
  | Expr.Lit (Catalog.Value.Bool true) -> 1.0
  | Expr.Lit (Catalog.Value.Bool false) -> 0.0
  | Expr.Bin (Expr.And, a, b) -> conjunct_sel env card a *. conjunct_sel env card b
  | Expr.Bin (Expr.Or, a, b) ->
    let sa = conjunct_sel env card a and sb = conjunct_sel env card b in
    Float.min 1. (sa +. sb -. (sa *. sb))
  | Expr.Un (Expr.Not, a) -> Float.max 0. (1. -. conjunct_sel env card a)
  | Expr.Bin (op, Expr.Col c, Expr.Lit v) -> cmp_sel env op c v
  | Expr.Bin (op, Expr.Lit v, Expr.Col c) -> cmp_sel env (flip op) c v
  | Expr.Bin (Expr.Eq, Expr.Col a, Expr.Col b) ->
    1. /. Float.max 1. (Float.max (ndv env a) (ndv env b))
  | Expr.Bin ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> default_range_sel
  | Expr.Bin (Expr.Ne, _, _) -> 0.9
  | Expr.Bin (Expr.Eq, _, _) -> default_eq_sel
  | Expr.Like (Expr.Col c, pattern, negated) ->
    let s = like_sel env c pattern in
    if negated then 1. -. s else s
  | Expr.Like (_, _, negated) -> if negated then 1. -. default_like_sel else default_like_sel
  | Expr.In_list (Expr.Col c, items, negated) ->
    let s =
      Float.min 1. (float_of_int (List.length items) /. Float.max 1. (ndv env c))
    in
    if negated then 1. -. s else s
  | Expr.In_list (_, items, negated) ->
    let s = Float.min 1. (float_of_int (List.length items) *. default_eq_sel) in
    if negated then 1. -. s else s
  | Expr.Is_null (Expr.Col c, negated) ->
    let nf =
      match col_stats env c with
      | Some s -> s.Catalog.Col_stats.null_frac
      | None -> 0.01
    in
    if negated then 1. -. nf else nf
  | Expr.Is_null (_, negated) -> if negated then 0.99 else 0.01
  | _ -> default_range_sel

and flip = function
  | Expr.Lt -> Expr.Gt | Expr.Le -> Expr.Ge | Expr.Gt -> Expr.Lt | Expr.Ge -> Expr.Le
  | op -> op

and cmp_sel env op c v =
  match col_stats env c with
  | Some { Catalog.Col_stats.histogram = Some h; _ } when Catalog.Histogram.non_null_rows h > 0. ->
    let total = Catalog.Histogram.non_null_rows h in
    let rows =
      match op with
      | Expr.Eq -> Catalog.Histogram.rows_eq h v
      | Expr.Ne -> total -. Catalog.Histogram.rows_eq h v
      | Expr.Lt -> Catalog.Histogram.rows_le ~strict:true h v
      | Expr.Le -> Catalog.Histogram.rows_le h v
      | Expr.Gt -> Catalog.Histogram.rows_ge ~strict:true h v
      | Expr.Ge -> Catalog.Histogram.rows_ge h v
      | _ -> total *. default_range_sel
    in
    Float.max 0. (Float.min 1. (rows /. total))
  | Some s when op = Expr.Eq && s.Catalog.Col_stats.ndv > 0. ->
    1. /. s.Catalog.Col_stats.ndv
  | _ ->
    (match op with
     | Expr.Eq -> default_eq_sel
     | Expr.Ne -> 1. -. default_eq_sel
     | _ -> default_range_sel)

and like_sel env c pattern =
  (* prefix patterns become a range probe: [abc%] -> [abc, abd) *)
  let prefix =
    match String.index_opt pattern '%' with
    | Some i when i > 0 && not (String.contains (String.sub pattern 0 i) '_')
                  && i = String.length pattern - 1 ->
      Some (String.sub pattern 0 i)
    | _ -> None
  in
  match prefix, col_stats env c with
  | Some p, Some { Catalog.Col_stats.histogram = Some h; _ }
    when Catalog.Histogram.non_null_rows h > 0. ->
    let hi =
      let b = Bytes.of_string p in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (min 255 (Char.code (Bytes.get b last) + 1)));
      Bytes.to_string b
    in
    let total = Catalog.Histogram.non_null_rows h in
    let n =
      Catalog.Histogram.rows_le ~strict:true h (Catalog.Value.String hi)
      -. Catalog.Histogram.rows_le ~strict:true h (Catalog.Value.String p)
    in
    Float.max (1. /. Float.max 1. total) (Float.min 1. (n /. total))
  | _ -> default_like_sel

let select_sel env pred card =
  List.fold_left (fun acc c -> acc *. conjunct_sel env card c) 1. (Expr.conjuncts pred)

(* NDV capped by current cardinality. *)
let key_ndv env card c = Float.min (Float.max 1. card) (ndv env c)

let join_card env ~kind ~pred ~left ~right =
  let equi = Expr.equi_pairs pred in
  let lcard = Float.max left 1. and rcard = Float.max right 1. in
  let other_conjs =
    List.filter (fun c -> Expr.as_col_eq c = None) (Expr.conjuncts pred)
  in
  let other_sel =
    List.fold_left (fun acc c -> acc *. conjunct_sel env (lcard *. rcard) c) 1. other_conjs
  in
  match kind with
  | Relop.Inner | Relop.Cross ->
    let eq_sel =
      List.fold_left
        (fun acc (a, b) -> acc /. Float.max 1. (Float.max (ndv env a) (ndv env b)))
        1. equi
    in
    Float.max 1. (lcard *. rcard *. eq_sel *. other_sel)
  | Relop.Semi ->
    let frac =
      match equi with
      | [] -> Float.min 1. (0.5 *. other_sel *. rcard)
      | _ ->
        List.fold_left
          (fun acc (a, b) ->
             let da = ndv env a and db = ndv env b in
             acc *. Float.min 1. (Float.min da db /. Float.max 1. da))
          1. equi
    in
    Float.max 1. (lcard *. Float.min 1. (frac *. other_sel))
  | Relop.Anti_semi ->
    let semi =
      match equi with
      | [] -> Float.min 1. (0.5 *. other_sel)
      | _ ->
        List.fold_left
          (fun acc (a, b) ->
             let da = ndv env a and db = ndv env b in
             acc *. Float.min 1. (Float.min da db /. Float.max 1. da))
          1. equi
    in
    Float.max 1. (lcard *. Float.max 0. (1. -. semi))
  | Relop.Left_outer ->
    let inner =
      let eq_sel =
        List.fold_left
          (fun acc (a, b) -> acc /. Float.max 1. (Float.max (ndv env a) (ndv env b)))
          1. equi
      in
      lcard *. rcard *. eq_sel *. other_sel
    in
    Float.max lcard inner

let group_card env ~keys ~input =
  match keys with
  | [] -> 1.
  | _ ->
    let prod =
      List.fold_left (fun acc k -> acc *. key_ndv env input k) 1. keys
    in
    Float.max 1. (Float.min prod (Float.max 1. (input /. 2.)))

(** Estimate the cardinality of an operator given its children's estimates. *)
let of_op env (op : Relop.op) (children : props list) : props =
  let child n = (List.nth children n).card in
  match op with
  | Relop.Get { table; _ } ->
    (match Catalog.Shell_db.find env.shell table with
     | Some t -> { card = Float.max 1. (Catalog.Shell_db.row_count t) }
     | None -> { card = 1000. })
  | Relop.Select pred -> { card = Float.max 1. (child 0 *. select_sel env pred (child 0)) }
  | Relop.Project _ -> { card = child 0 }
  | Relop.Join { kind; pred } ->
    { card = join_card env ~kind ~pred ~left:(child 0) ~right:(child 1) }
  | Relop.Group_by { keys; _ } -> { card = group_card env ~keys ~input:(child 0) }
  | Relop.Sort { limit = Some n; _ } -> { card = Float.min (child 0) (float_of_int n) }
  | Relop.Sort _ -> { card = child 0 }
  | Relop.Union_all -> { card = child 0 +. child 1 }
  | Relop.Empty _ -> { card = 0. }

(** Estimate over a whole tree (used outside the MEMO). *)
let rec of_tree env (t : Relop.t) : props =
  of_op env t.op (List.map (of_tree env) t.children)

(** Row width in bytes of a projected column set. *)
let width_of_cols reg cols =
  List.fold_left (fun acc c -> acc +. Registry.width reg c) 0. cols
