(** Logical relational operators, as trees (the algebrizer output and the
    normalized form inserted into the MEMO). *)

type join_kind =
  | Inner
  | Left_outer
  | Semi        (** left semi join: rows of left with a match in right *)
  | Anti_semi   (** rows of left with no match in right *)
  | Cross

type sort_key = { key : Expr.t; desc : bool }

type op =
  | Get of {
      table : string;              (** base table name in the shell db *)
      alias : string;
      cols : int array;            (** column ids, one per schema column *)
    }
  | Select of Expr.t               (** filter; 1 child *)
  | Project of (int * Expr.t) list (** (output col id, defining expr); 1 child *)
  | Join of { kind : join_kind; pred : Expr.t }   (** 2 children *)
  | Group_by of {
      keys : int list;
      aggs : Expr.agg_def list;
    }                              (** 1 child; keys=[] -> scalar aggregate *)
  | Sort of { keys : sort_key list; limit : int option }  (** 1 child, root only *)
  | Union_all                      (** 2 children; right child's outputs are
                                       pre-projected onto the left's ids *)
  | Empty of int list              (** zero rows with the given output columns *)

type t = { op : op; children : t list }

let mk op children = { op; children }
let get ~table ~alias ~cols = mk (Get { table; alias; cols }) []
let select pred child = mk (Select pred) [ child ]
let project defs child = mk (Project defs) [ child ]
let join kind pred left right = mk (Join { kind; pred }) [ left; right ]
let group_by keys aggs child = mk (Group_by { keys; aggs }) [ child ]
let sort keys limit child = mk (Sort { keys; limit }) [ child ]
let union_all left right = mk Union_all [ left; right ]

(** Output column ids, in order. *)
let rec output_cols t : int list =
  match t.op, t.children with
  | Get { cols; _ }, _ -> Array.to_list cols
  | Select _, [ c ] -> output_cols c
  | Project defs, _ -> List.map fst defs
  | Join { kind = (Semi | Anti_semi); _ }, [ l; _ ] -> output_cols l
  | Join _, [ l; r ] -> output_cols l @ output_cols r
  | Group_by { keys; aggs }, _ -> keys @ List.map (fun a -> a.Expr.agg_out) aggs
  | Sort _, [ c ] -> output_cols c
  | Union_all, [ l; _ ] -> output_cols l
  | Empty cols, _ -> cols
  | _ -> invalid_arg "Relop.output_cols: malformed tree"

let output_col_set t = Registry.Col_set.of_list (output_cols t)

(** Columns this node's own expressions reference (not children's outputs). *)
let local_refs t =
  match t.op with
  | Get _ | Empty _ -> Registry.Col_set.empty
  | Select pred -> Expr.cols pred
  | Project defs -> Expr.cols_of_list (List.map snd defs)
  | Join { pred; _ } -> Expr.cols pred
  | Group_by { keys; aggs } ->
    let acc = Registry.Col_set.of_list keys in
    List.fold_left
      (fun acc a -> match a.Expr.agg_arg with
         | Some e -> Registry.Col_set.union acc (Expr.cols e)
         | None -> acc)
      acc aggs
  | Sort { keys; _ } -> Expr.cols_of_list (List.map (fun k -> k.key) keys)
  | Union_all -> Registry.Col_set.empty

let op_name = function
  | Get _ -> "Get" | Select _ -> "Select" | Project _ -> "Project"
  | Join { kind = Inner; _ } -> "Join"
  | Join { kind = Left_outer; _ } -> "LeftOuterJoin"
  | Join { kind = Semi; _ } -> "SemiJoin"
  | Join { kind = Anti_semi; _ } -> "AntiSemiJoin"
  | Join { kind = Cross; _ } -> "CrossJoin"
  | Group_by _ -> "GroupBy" | Sort _ -> "Sort" | Union_all -> "UnionAll"
  | Empty _ -> "Empty"

let rec pp reg ppf t =
  let open Format in
  let head =
    match t.op with
    | Get { table; alias; _ } ->
      if String.lowercase_ascii table = String.lowercase_ascii alias then
        Printf.sprintf "Get(%s)" table
      else Printf.sprintf "Get(%s AS %s)" table alias
    | Select pred -> Printf.sprintf "Select[%s]" (Expr.to_string reg pred)
    | Project defs ->
      let one (c, e) = Printf.sprintf "%s := %s" (Registry.label reg c) (Expr.to_string reg e) in
      Printf.sprintf "Project[%s]" (String.concat ", " (List.map one defs))
    | Join { kind; pred } ->
      Printf.sprintf "%s[%s]"
        (match kind with
         | Inner -> "Join" | Left_outer -> "LeftOuterJoin" | Semi -> "SemiJoin"
         | Anti_semi -> "AntiSemiJoin" | Cross -> "CrossJoin")
        (Expr.to_string reg pred)
    | Group_by { keys; aggs } ->
      Printf.sprintf "GroupBy[keys=%s; %s]"
        (String.concat "," (List.map (Registry.label reg) keys))
        (String.concat ", " (List.map (Expr.agg_to_string_with (Registry.label reg)) aggs))
    | Sort { keys; limit } ->
      Printf.sprintf "Sort[%s%s]"
        (String.concat ", "
           (List.map
              (fun k ->
                 Expr.to_string reg k.key ^ (if k.desc then " DESC" else " ASC"))
              keys))
        (match limit with Some n -> Printf.sprintf "; TOP %d" n | None -> "")
    | Union_all -> "UnionAll"
    | Empty _ -> "Empty"
  in
  match t.children with
  | [] -> fprintf ppf "%s" head
  | children ->
    fprintf ppf "@[<v 2>%s" head;
    List.iter (fun c -> fprintf ppf "@,%a" (pp reg) c) children;
    fprintf ppf "@]"

let to_string reg t = Format.asprintf "%a" (pp reg) t

(** Number of operator nodes in a tree. *)
let rec size t = 1 + List.fold_left (fun a c -> a + size c) 0 t.children
