(** Name resolution and translation from the SQL AST to logical operator
    trees, including subquery removal (paper §4: "sub-query removal,
    sub-query into join transformation" are exercised by Q20).

    Subquery transformations implemented here:
    - [e IN (SELECT x ...)]            -> left semi join on [e = x] (+ correlation)
    - [e NOT IN (SELECT x ...)]        -> anti semi join
    - [EXISTS (SELECT ...)]            -> semi join on the correlation predicate
    - [NOT EXISTS ...]                 -> anti semi join
    - [e cmp (SELECT agg ...)] correlated -> inner join against a group-by on
      the correlation columns (valid because comparisons reject NULL, which
      covers the empty-group case; this is the Q20 SQ3 shape). *)

open Sqlfront

exception Unsupported of string
exception Resolve_error of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt
let resolve_err fmt = Printf.ksprintf (fun s -> raise (Resolve_error s)) fmt

type binding = {
  b_alias : string;
  b_cols : (string * int) list;    (** column name (lowercase) -> id *)
}

type scope = {
  bindings : binding list;
  parent : scope option;
}

type result = {
  tree : Relop.t;
  reg : Registry.t;
  output : (string * int) list;     (** display name, column id, in order *)
}

type ctx = {
  shell : Catalog.Shell_db.t;
  reg : Registry.t;
}

let lower = String.lowercase_ascii

(* -- scope handling -- *)

let resolve_in_bindings bindings qual name =
  let name = lower name in
  match qual with
  | Some q ->
    let q = lower q in
    (match List.find_opt (fun b -> lower b.b_alias = q) bindings with
     | None -> None
     | Some b ->
       (match List.assoc_opt name b.b_cols with
        | Some id -> Some id
        | None -> resolve_err "unknown column %s.%s" q name))
  | None ->
    let hits =
      List.filter_map (fun b -> List.assoc_opt name b.b_cols) bindings
    in
    (match hits with
     | [ id ] -> Some id
     | [] -> None
     | _ -> resolve_err "ambiguous column %s" name)

let rec resolve scope qual name =
  match resolve_in_bindings scope.bindings qual name with
  | Some id -> Some id
  | None ->
    (match scope.parent with
     | Some p -> resolve p qual name
     | None -> None)

let resolve_exn scope qual name =
  match resolve scope qual name with
  | Some id -> id
  | None ->
    resolve_err "unknown column %s"
      (match qual with Some q -> q ^ "." ^ name | None -> name)

(* -- base tables -- *)

let instantiate_get ctx ~name ~alias =
  let tbl =
    match Catalog.Shell_db.find ctx.shell name with
    | Some t -> t
    | None -> resolve_err "unknown table %s" name
  in
  let schema = tbl.Catalog.Shell_db.schema in
  let cols =
    Array.map
      (fun (c : Catalog.Schema.column) ->
         let id =
           Registry.fresh ctx.reg ~name:c.col_name ~ty:c.col_type
             ~width:(float_of_int c.col_width)
             (Registry.Base { table = schema.Catalog.Schema.name; alias; column = c.col_name })
         in
         (match Catalog.Tbl_stats.col tbl.Catalog.Shell_db.stats c.col_name with
          | Some s -> Registry.set_stats ctx.reg id s
          | None -> ());
         id)
      schema.Catalog.Schema.columns
  in
  let binding =
    { b_alias = alias;
      b_cols =
        Array.to_list
          (Array.mapi (fun i (c : Catalog.Schema.column) -> (lower c.col_name, cols.(i)))
             schema.Catalog.Schema.columns) }
  in
  (Relop.get ~table:schema.Catalog.Schema.name ~alias ~cols, binding)

(* -- aggregate extraction context -- *)

type agg_ctx = {
  mutable defs : Expr.agg_def list;  (** accumulated, in reverse order *)
  ctx : ctx;
}

let find_or_add_agg actx func distinct arg =
  let existing =
    List.find_opt
      (fun d ->
         d.Expr.agg_func = func && d.Expr.agg_distinct = distinct
         && (match d.Expr.agg_arg, arg with
             | None, None -> true
             | Some a, Some b -> Expr.equal a b
             | _ -> false))
      actx.defs
  in
  match existing with
  | Some d -> d.Expr.agg_out
  | None ->
    let desc =
      Expr.agg_to_string_with (Registry.label actx.ctx.reg)
        { Expr.agg_out = -1; agg_func = func; agg_arg = arg; agg_distinct = distinct }
    in
    let ty =
      match func, arg with
      | (Expr.Count | Expr.Count_star), _ -> Catalog.Types.Tint
      | Expr.Avg, _ -> Catalog.Types.Tfloat
      | _, Some a -> (try Expr.type_of actx.ctx.reg a with _ -> Catalog.Types.Tfloat)
      | _, None -> Catalog.Types.Tfloat
    in
    let out =
      Registry.fresh actx.ctx.reg ~name:desc ~ty
        ~width:(float_of_int (Catalog.Types.default_width ty)) (Registry.Derived desc)
    in
    actx.defs <- { Expr.agg_out = out; agg_func = func; agg_arg = arg; agg_distinct = distinct }
                 :: actx.defs;
    out

(* -- expression translation -- *)

let agg_of_ast = function
  | Ast.Count_star -> Expr.Count_star
  | Ast.Count -> Expr.Count
  | Ast.Sum -> Expr.Sum
  | Ast.Avg -> Expr.Avg
  | Ast.Min -> Expr.Min
  | Ast.Max -> Expr.Max

let binop_of_ast = function
  | Ast.Add -> Expr.Add | Ast.Sub -> Expr.Sub | Ast.Mul -> Expr.Mul
  | Ast.Div -> Expr.Div | Ast.Mod -> Expr.Mod
  | Ast.Eq -> Expr.Eq | Ast.Ne -> Expr.Ne | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le | Ast.Gt -> Expr.Gt | Ast.Ge -> Expr.Ge
  | Ast.And -> Expr.And | Ast.Or -> Expr.Or

(* Coerce a string literal to a date when compared against a date-typed
   expression (e.g. [l_shipdate >= '1994-01-01']). *)
let coerce_date_literal reg a b =
  let is_date e = try Expr.type_of reg e = Catalog.Types.Tdate with _ -> false in
  let fix e other =
    match e with
    | Expr.Lit (Catalog.Value.String s) when is_date other ->
      (match Catalog.Value.date_of_string s with
       | Some d -> Expr.Lit (Catalog.Value.Date d)
       | None -> e)
    | _ -> e
  in
  (fix a b, fix b a)

(** Translate a scalar AST expression. [aggs] is [Some actx] when aggregates
    are allowed (select list / having / order by of a grouped query).
    Subqueries are NOT allowed here; they are handled at the predicate level
    by [translate_where]. *)
let rec translate_expr ?aggs scope ctx (e : Ast.expr) : Expr.t =
  let tr e = translate_expr ?aggs scope ctx e in
  match e with
  | Ast.Col (qual, name) -> Expr.Col (resolve_exn scope qual name)
  | Ast.Lit v -> Expr.Lit v
  | Ast.Bin (op, a, b) ->
    let a = tr a and b = tr b in
    let a, b = coerce_date_literal ctx.reg a b in
    Expr.Bin (binop_of_ast op, a, b)
  | Ast.Un (Ast.Neg, a) -> Expr.Un (Expr.Neg, tr a)
  | Ast.Un (Ast.Not, a) -> Expr.Un (Expr.Not, tr a)
  | Ast.Is_null { e; negated } -> Expr.Is_null (tr e, negated)
  | Ast.Like { e; pattern; negated } -> Expr.Like (tr e, pattern, negated)
  | Ast.In_list { e; items; negated } ->
    let e = tr e in
    let values =
      List.map
        (fun it ->
           match tr it with
           | Expr.Lit v ->
             (match v, (try Some (Expr.type_of ctx.reg e) with _ -> None) with
              | Catalog.Value.String s, Some Catalog.Types.Tdate ->
                (match Catalog.Value.date_of_string s with
                 | Some d -> Catalog.Value.Date d
                 | None -> v)
              | _ -> v)
           | _ -> unsupported "IN list items must be literals")
        items
    in
    Expr.In_list (e, values, negated)
  | Ast.Between { e; lo; hi; negated } ->
    let e = tr e and lo = tr lo and hi = tr hi in
    let e1, lo = coerce_date_literal ctx.reg e lo in
    let _, hi = coerce_date_literal ctx.reg e hi in
    let range = Expr.Bin (Expr.And, Expr.Bin (Expr.Ge, e1, lo), Expr.Bin (Expr.Le, e1, hi)) in
    if negated then Expr.Un (Expr.Not, range) else range
  | Ast.Agg { func; distinct; arg } ->
    (match aggs with
     | None -> unsupported "aggregate not allowed in this context"
     | Some actx ->
       let arg = Option.map (translate_expr scope ctx) arg in
       Expr.Col (find_or_add_agg actx (agg_of_ast func) distinct arg))
  | Ast.Func (name, args) -> translate_func ?aggs scope ctx name args
  | Ast.Case { branches; else_ } ->
    Expr.Case (List.map (fun (c, v) -> (tr c, tr v)) branches, Option.map tr else_)
  | Ast.Cast (e, ty) -> Expr.Cast (tr e, ty)
  | Ast.In_query _ | Ast.Exists _ ->
    unsupported "subquery predicate outside of WHERE/HAVING conjunction"
  | Ast.Scalar_query _ ->
    unsupported "scalar subquery outside of a top-level comparison"

and translate_func ?aggs scope ctx name args =
  let tr e = translate_expr ?aggs scope ctx e in
  let as_date e =
    let e' = tr e in
    match e' with
    | Expr.Lit (Catalog.Value.String s) ->
      (match Catalog.Value.date_of_string s with
       | Some d -> Expr.Lit (Catalog.Value.Date d)
       | None -> e')
    | _ -> e'
  in
  match name, args with
  | "DATEADD", [ unit_arg; n; d ] ->
    let unit_name =
      match unit_arg with
      | Ast.Col (None, u) -> lower u
      | Ast.Lit (Catalog.Value.String u) -> lower u
      | _ -> unsupported "DATEADD unit must be an identifier"
    in
    let fn =
      match unit_name with
      | "year" | "yy" | "yyyy" -> Expr.F_dateadd_year
      | "month" | "mm" -> Expr.F_dateadd_month
      | "day" | "dd" -> Expr.F_dateadd_day
      | u -> unsupported "DATEADD unit %s" u
    in
    Expr.Func (fn, [ tr n; as_date d ])
  | "YEAR", [ d ] -> Expr.Func (Expr.F_year, [ as_date d ])
  | "SUBSTRING", [ s; a; b ] -> Expr.Func (Expr.F_substring, [ tr s; tr a; tr b ])
  | "ABS", [ a ] -> Expr.Func (Expr.F_abs, [ tr a ])
  | _ -> unsupported "function %s/%d" name (List.length args)

(* -- query blocks -- *)

(** Information exported by a subquery algebrization: its tree plus the
    correlated conjuncts (already translated) that reference columns outside
    the subquery's own FROM. *)
type sub_result = {
  sub_tree : Relop.t;
  sub_corr : Expr.t list;
  sub_output : (string * int) list;
}

let rec algebrize_block ?(want_sort = true) scope ctx (q : Ast.query) : result * Expr.t list =
  match q.Ast.union_all with
  | Some _ -> algebrize_union ~want_sort scope ctx q
  | None -> algebrize_single_block ~want_sort scope ctx q

(** [b1 UNION ALL b2 ...]: branches are algebrized independently; each
    subsequent branch is projected onto the first branch's column ids; the
    trailing ORDER BY/TOP (carried by the last block) applies to the whole
    union and may reference the first branch's output names. *)
and algebrize_union ~want_sort scope ctx (q : Ast.query) : result * Expr.t list =
  let rec chain (b : Ast.query) =
    match b.Ast.union_all with
    | Some tail -> { b with Ast.union_all = None; order_by = []; top = None } :: chain tail
    | None -> [ { b with Ast.order_by = []; top = None } ]
  in
  let rec last_block (b : Ast.query) =
    match b.Ast.union_all with Some tail -> last_block tail | None -> b
  in
  let blocks = chain q in
  let order_by = (last_block q).Ast.order_by and top = (last_block q).Ast.top in
  let results =
    List.map
      (fun b ->
         let r, exported = algebrize_block ~want_sort:false scope ctx b in
         if exported <> [] then unsupported "correlated UNION branch";
         r)
      blocks
  in
  let first, rest =
    match results with
    | f :: r -> (f, r)
    | [] -> assert false
  in
  let arity = List.length first.output in
  let tree =
    List.fold_left
      (fun acc (r : result) ->
         if List.length r.output <> arity then
           unsupported "UNION branches must have the same number of columns";
         let defs =
           List.map2
             (fun (_, out_id) (_, branch_id) -> (out_id, Expr.Col branch_id))
             first.output r.output
         in
         Relop.union_all acc (Relop.project defs r.tree))
      first.tree rest
  in
  let order' =
    List.map
      (fun (e, dir) ->
         let key =
           match e with
           | Ast.Col (None, name) ->
             (match List.assoc_opt (lower name) first.output with
              | Some id -> Expr.Col id
              | None -> unsupported "UNION ORDER BY must name an output column")
           | _ -> unsupported "UNION ORDER BY must name an output column"
         in
         { Relop.key; desc = (dir = Ast.Desc) })
      order_by
  in
  let tree =
    if want_sort && (order' <> [] || top <> None) then Relop.sort order' top tree
    else tree
  in
  ({ tree; reg = ctx.reg; output = first.output }, [])

and algebrize_single_block ~want_sort scope ctx (q : Ast.query) : result * Expr.t list =
  if q.Ast.from = [] then unsupported "SELECT without FROM";
  (* 1. FROM *)
  let trees_bindings = List.map (algebrize_table_ref scope ctx) q.Ast.from in
  let from_tree =
    match trees_bindings with
    | [] -> assert false
    | (t, _) :: rest ->
      List.fold_left
        (fun acc (t, _) -> Relop.join Relop.Cross (Expr.Lit (Catalog.Value.Bool true)) acc t)
        t rest
  in
  let local_bindings = List.concat_map snd trees_bindings in
  let block_scope = { bindings = local_bindings; parent = scope.parent } in
  (* scope for resolution inside this block: local bindings first, then the
     original outer scope chain *)
  let block_scope = { block_scope with parent = scope.parent } in
  let avail = Relop.output_col_set from_tree in
  (* 2. WHERE: split conjuncts, handle subqueries, export correlated ones *)
  let tree, exported =
    match q.Ast.where with
    | None -> (from_tree, [])
    | Some w -> translate_where block_scope ctx ~avail from_tree (Ast.conjuncts w)
  in
  (* 3. aggregates over select list / having / order by *)
  let actx = { defs = []; ctx } in
  let has_group = q.Ast.group_by <> [] in
  (* group-by keys: plain columns directly; computed keys via a pre-project *)
  let pre_defs = ref [] in
  let keys =
    List.map
      (fun k ->
         match translate_expr block_scope ctx k with
         | Expr.Col c -> c
         | e ->
           let name = Printf.sprintf "expr%d" (List.length !pre_defs) in
           let ty = (try Expr.type_of ctx.reg e with _ -> Catalog.Types.Tint) in
           let id =
             Registry.fresh ctx.reg ~name ~ty
               ~width:(float_of_int (Catalog.Types.default_width ty))
               (Registry.Derived (Expr.to_string ctx.reg e))
           in
           pre_defs := (id, e) :: !pre_defs;
           id)
      q.Ast.group_by
  in
  let select_items =
    List.concat_map
      (fun item ->
         match item with
         | Ast.Sel_star qual ->
           let bs =
             match qual with
             | None -> local_bindings
             | Some q ->
               (match List.find_opt (fun b -> lower b.b_alias = lower q) local_bindings with
                | Some b -> [ b ]
                | None -> resolve_err "unknown table alias %s" q)
           in
           List.concat_map
             (fun b -> List.map (fun (n, id) -> (n, Expr.Col id)) b.b_cols)
             bs
         | Ast.Sel_expr (e, alias) ->
           let e' = translate_expr ~aggs:actx block_scope ctx e in
           let name =
             match alias, e with
             | Some a, _ -> lower a
             | None, Ast.Col (_, c) -> lower c
             | None, _ -> "col"
           in
           [ (name, e') ])
      q.Ast.select
  in
  (* HAVING: plain conjuncts become a Select above the group-by; scalar
     aggregate subqueries (Q11's shape) decorrelate into a join above it *)
  let having_plain = ref [] and having_joins = ref [] in
  List.iter
    (fun conj ->
       match conj with
       | Ast.Bin (cmp, lhs, Ast.Scalar_query sub)
       | Ast.Bin (cmp, Ast.Scalar_query sub, lhs)
         when (match cmp with
             | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
             | _ -> false) ->
         let swap = (match conj with Ast.Bin (_, Ast.Scalar_query _, _) -> true | _ -> false) in
         let lhs' = translate_expr ~aggs:actx block_scope ctx lhs in
         let value_col, sub_tree, corr = algebrize_scalar_agg_subquery block_scope ctx sub in
         if corr <> [] then unsupported "correlated scalar subquery in HAVING";
         let cmp' = binop_of_ast cmp in
         let comparison =
           if swap then Expr.Bin (cmp', value_col, lhs')
           else Expr.Bin (cmp', lhs', value_col)
         in
         having_joins := (comparison, sub_tree) :: !having_joins
       | _ -> having_plain := translate_expr ~aggs:actx block_scope ctx conj :: !having_plain)
    (match q.Ast.having with Some h -> Ast.conjuncts h | None -> []);
  let order' =
    List.map
      (fun (e, dir) ->
         (* ORDER BY may reference select aliases *)
         let e' =
           match e with
           | Ast.Col (None, name) when List.mem_assoc (lower name) select_items
                                       && resolve block_scope None name = None ->
             List.assoc (lower name) select_items
           | _ -> translate_expr ~aggs:actx block_scope ctx e
         in
         { Relop.key = e'; desc = (dir = Ast.Desc) })
      q.Ast.order_by
  in
  let aggs = List.rev actx.defs in
  (* 4. assemble: [pre-project] -> group-by -> having -> project -> sort *)
  let tree =
    if !pre_defs = [] then tree
    else
      let pass = List.map (fun c -> (c, Expr.Col c)) (Relop.output_cols tree) in
      Relop.project (pass @ List.rev !pre_defs) tree
  in
  let tree =
    if has_group || aggs <> [] then Relop.group_by keys aggs tree else tree
  in
  let tree =
    List.fold_left
      (fun acc (comparison, sub_tree) ->
         Relop.join Relop.Inner comparison acc sub_tree)
      tree (List.rev !having_joins)
  in
  let tree =
    match Expr.conjoin_opt (List.rev !having_plain) with
    | Some h -> Relop.select h tree
    | None -> tree
  in
  (* final projection *)
  let output, defs =
    List.fold_left
      (fun (out, defs) (name, e) ->
         match e with
         | Expr.Col id -> ((name, id) :: out, (id, e) :: defs)
         | _ ->
           let ty = (try Expr.type_of ctx.reg e with _ -> Catalog.Types.Tfloat) in
           let id =
             Registry.fresh ctx.reg ~name ~ty
               ~width:(float_of_int (Catalog.Types.default_width ty))
               (Registry.Derived (Expr.to_string ctx.reg e))
           in
           ((name, id) :: out, (id, e) :: defs))
      ([], []) select_items
  in
  let output = List.rev output and defs = List.rev defs in
  let tree =
    if q.Ast.distinct then begin
      let tree = Relop.project defs tree in
      Relop.group_by (List.map snd output) [] tree
    end else Relop.project defs tree
  in
  let tree =
    if want_sort && (order' <> [] || q.Ast.top <> None) then
      Relop.sort order' q.Ast.top tree
    else tree
  in
  ({ tree; reg = ctx.reg; output }, exported)

and algebrize_table_ref scope ctx (tref : Ast.table_ref) : Relop.t * binding list =
  match tref with
  | Ast.Tref_table { name; alias } ->
    let alias = match alias with Some a -> a | None -> name in
    let tree, b = instantiate_get ctx ~name ~alias in
    (tree, [ b ])
  | Ast.Tref_subquery { q; alias } ->
    let sub_scope = { bindings = []; parent = None } in
    let r, exported = algebrize_block ~want_sort:false sub_scope ctx q in
    if exported <> [] then unsupported "correlated derived table";
    let binding = { b_alias = alias; b_cols = List.map (fun (n, id) -> (lower n, id)) r.output } in
    (r.tree, [ binding ])
  | Ast.Tref_join { left; kind; right; on } ->
    let lt, lb = algebrize_table_ref scope ctx left in
    let rt, rb = algebrize_table_ref scope ctx right in
    let join_scope = { bindings = lb @ rb; parent = scope.parent } in
    let pred =
      match on with
      | Some e -> translate_expr join_scope ctx e
      | None -> Expr.Lit (Catalog.Value.Bool true)
    in
    let k =
      match kind with
      | Ast.Jinner -> Relop.Inner
      | Ast.Jleft -> Relop.Left_outer
      | Ast.Jright -> Relop.Left_outer (* normalized by swapping children *)
      | Ast.Jcross -> Relop.Cross
    in
    let lt, rt = if kind = Ast.Jright then (rt, lt) else (lt, rt) in
    (Relop.join k pred lt rt, lb @ rb)

(** Process WHERE conjuncts over [tree]. Returns the augmented tree (with
    subquery joins and a Select of local plain conjuncts) plus the conjuncts
    that reference columns outside [avail] (exported to the enclosing
    block). *)
and translate_where scope ctx ~avail tree (conjs : Ast.expr list) : Relop.t * Expr.t list =
  let plain = ref [] and exported = ref [] in
  let tree = ref tree in
  let classify e' =
    let refs = Expr.cols e' in
    if Registry.Col_set.subset refs avail then plain := e' :: !plain
    else exported := e' :: !exported
  in
  List.iter
    (fun conj ->
       match conj with
       | Ast.In_query { e; q; negated } ->
         let lhs = translate_expr scope ctx e in
         let sub = algebrize_subquery scope ctx q in
         let item_col =
           match sub.sub_output with
           | [ (_, id) ] -> id
           | _ -> unsupported "IN subquery must produce exactly one column"
         in
         let pred =
           Expr.conjoin (Expr.eq lhs (Expr.Col item_col) :: sub.sub_corr)
         in
         let kind = if negated then Relop.Anti_semi else Relop.Semi in
         tree := Relop.join kind pred !tree sub.sub_tree
       | Ast.Exists { q; negated } ->
         let sub = algebrize_subquery scope ctx q in
         let pred = Expr.conjoin sub.sub_corr in
         let kind = if negated then Relop.Anti_semi else Relop.Semi in
         tree := Relop.join kind pred !tree sub.sub_tree
       | Ast.Un (Ast.Not, Ast.Exists { q; negated }) ->
         let sub = algebrize_subquery scope ctx q in
         let pred = Expr.conjoin sub.sub_corr in
         let kind = if negated then Relop.Semi else Relop.Anti_semi in
         tree := Relop.join kind pred !tree sub.sub_tree
       | Ast.Bin (cmp, lhs, Ast.Scalar_query q)
       | Ast.Bin (cmp, Ast.Scalar_query q, lhs)
         when (match cmp with
             | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
             | _ -> false) ->
         let swap = (match conj with Ast.Bin (_, Ast.Scalar_query _, _) -> true | _ -> false) in
         let lhs' = translate_expr scope ctx lhs in
         let value_col, sub_tree, corr = algebrize_scalar_agg_subquery scope ctx q in
         let cmp' = binop_of_ast cmp in
         let comparison =
           if swap then Expr.Bin (cmp', value_col, lhs')
           else Expr.Bin (cmp', lhs', value_col)
         in
         let pred = Expr.conjoin (comparison :: corr) in
         tree := Relop.join Relop.Inner pred !tree sub_tree
       | _ -> classify (translate_expr scope ctx conj))
    conjs;
  let tree =
    match Expr.conjoin_opt (List.rev !plain) with
    | Some p -> Relop.select p !tree
    | None -> !tree
  in
  (tree, List.rev !exported)

(** Algebrize a (possibly correlated) subquery used under IN / EXISTS. *)
and algebrize_subquery scope ctx (q : Ast.query) : sub_result =
  let sub_scope = { bindings = []; parent = Some scope } in
  let r, exported = algebrize_block ~want_sort:false sub_scope ctx q in
  if exported <> [] && (q.Ast.group_by <> [] || q.Ast.distinct) then
    unsupported "correlated subquery with GROUP BY/DISTINCT under IN/EXISTS";
  (* The correlated conjuncts become the join predicate, so the inner-side
     columns they reference must survive the subquery's final projection. *)
  let tree =
    match r.tree.Relop.op, r.tree.Relop.children, exported with
    | _, _, [] -> r.tree
    | Relop.Project defs, [ child ], _ ->
      let corr_cols = Expr.cols_of_list exported in
      let child_cols = Relop.output_col_set child in
      let present = Registry.Col_set.of_list (List.map fst defs) in
      let missing =
        Registry.Col_set.elements
          (Registry.Col_set.diff (Registry.Col_set.inter corr_cols child_cols) present)
      in
      if missing = [] then r.tree
      else Relop.project (defs @ List.map (fun c -> (c, Expr.Col c)) missing) child
    | _ -> r.tree
  in
  { sub_tree = tree; sub_corr = exported; sub_output = r.output }

(** Algebrize a correlated scalar aggregate subquery: returns the value
    expression (over the group-by outputs), the group-by tree, and the
    correlated conjuncts to fold into the join predicate. *)
and algebrize_scalar_agg_subquery scope ctx (q : Ast.query) : Expr.t * Relop.t * Expr.t list =
  if q.Ast.group_by <> [] then
    unsupported "scalar subquery with explicit GROUP BY";
  (match q.Ast.select with
   | [ Ast.Sel_expr (_, _) ] -> ()
   | _ -> unsupported "scalar subquery must select exactly one expression");
  if q.Ast.from = [] then unsupported "scalar subquery without FROM";
  (* Build the subquery's FROM + WHERE, exporting correlated conjuncts. *)
  let sub_scope = { bindings = []; parent = Some scope } in
  let trees_bindings = List.map (algebrize_table_ref sub_scope ctx) q.Ast.from in
  let from_tree =
    match trees_bindings with
    | (t, _) :: rest ->
      List.fold_left
        (fun acc (t, _) -> Relop.join Relop.Cross (Expr.Lit (Catalog.Value.Bool true)) acc t)
        t rest
    | [] -> assert false
  in
  let local_bindings = List.concat_map snd trees_bindings in
  let block_scope = { bindings = local_bindings; parent = Some scope } in
  let avail = Relop.output_col_set from_tree in
  let tree, exported =
    match q.Ast.where with
    | None -> (from_tree, [])
    | Some w -> translate_where block_scope ctx ~avail from_tree (Ast.conjuncts w)
  in
  (* Group keys: the inner columns appearing in correlated equality
     conjuncts (e.g. l_partkey, l_suppkey for Q20's SQ3). *)
  let inner_cols = Relop.output_col_set tree in
  let keys =
    List.concat_map
      (fun conj ->
         match conj with
         | Expr.Bin (Expr.Eq, a, b) ->
           let pick e other =
             let refs = Expr.cols e in
             if Registry.Col_set.subset refs inner_cols
             && not (Registry.Col_set.is_empty refs)
             && not (Registry.Col_set.subset (Expr.cols other) inner_cols)
             then
               match e with Expr.Col c -> [ c ] | _ -> []
             else []
           in
           pick a b @ pick b a
         | _ -> [])
      exported
    |> List.sort_uniq Int.compare
  in
  if keys = [] && exported <> [] then
    unsupported "correlated scalar subquery without equality correlation";
  (* Aggregates in the single select item. *)
  let actx = { defs = []; ctx } in
  let value_expr =
    match q.Ast.select with
    | [ Ast.Sel_expr (e, _) ] -> translate_expr ~aggs:actx block_scope ctx e
    | _ -> assert false
  in
  let aggs = List.rev actx.defs in
  if aggs = [] then unsupported "scalar subquery must be an aggregate";
  let gb = Relop.group_by keys aggs tree in
  (value_expr, gb, exported)

(** Algebrize a full SQL statement against a shell database. *)
let algebrize (shell : Catalog.Shell_db.t) (q : Ast.query) : result =
  let ctx = { shell; reg = Registry.create () } in
  let scope = { bindings = []; parent = None } in
  let r, exported = algebrize_block scope ctx q in
  if exported <> [] then resolve_err "unresolved correlated columns at top level";
  r

(** Parse and algebrize SQL text. *)
let of_sql shell sql = algebrize shell (Parser.parse sql)
