(** Simplification / normalization of logical trees (paper Fig. 2 step 2a:
    "simplification of the input operator tree into a normalized form",
    and §5: contradiction detection, redundant join elimination).

    Passes, in order:
    1. constant folding,
    2. predicate pushdown (splitting conjuncts across joins, turning cross
       products with residual equality predicates into inner joins),
    3. equality transitivity closure + constant propagation (the paper's
       "join transitivity closure detection" that enables the early
       filtering of lineitem by part in Q20),
    4. contradiction detection (empty-range predicates -> Empty),
    5. redundant join elimination (FK -> PK join to an unused table). *)

open Relop

let true_lit = Expr.Lit (Catalog.Value.Bool true)

let is_true = function Expr.Lit (Catalog.Value.Bool true) -> true | _ -> false
let is_false = function Expr.Lit (Catalog.Value.Bool false) -> true | _ -> false

(* -- 1. constant folding -- *)

let rec fold_expr (e : Expr.t) : Expr.t =
  let no_cols e = Registry.Col_set.is_empty (Expr.cols e) in
  let try_eval e =
    if no_cols e then
      match Expr.eval (fun _ -> Catalog.Value.Null) e with
      | v -> Expr.Lit v
      | exception _ -> e
    else e
  in
  match e with
  | Expr.Col _ | Expr.Lit _ -> e
  | Expr.Bin (Expr.And, a, b) ->
    let a = fold_expr a and b = fold_expr b in
    if is_true a then b else if is_true b then a
    else if is_false a || is_false b then Expr.Lit (Catalog.Value.Bool false)
    else Expr.Bin (Expr.And, a, b)
  | Expr.Bin (Expr.Or, a, b) ->
    let a = fold_expr a and b = fold_expr b in
    if is_false a then b else if is_false b then a
    else if is_true a || is_true b then true_lit
    else Expr.Bin (Expr.Or, a, b)
  | Expr.Bin (op, a, b) -> try_eval (Expr.Bin (op, fold_expr a, fold_expr b))
  | Expr.Un (op, a) -> try_eval (Expr.Un (op, fold_expr a))
  | Expr.Is_null (a, n) -> try_eval (Expr.Is_null (fold_expr a, n))
  | Expr.Like (a, p, n) -> try_eval (Expr.Like (fold_expr a, p, n))
  | Expr.In_list (a, items, n) -> try_eval (Expr.In_list (fold_expr a, items, n))
  | Expr.Case (branches, else_) ->
    Expr.Case (List.map (fun (c, v) -> (fold_expr c, fold_expr v)) branches,
               Option.map fold_expr else_)
  | Expr.Func (fn, args) -> try_eval (Expr.Func (fn, List.map fold_expr args))
  | Expr.Cast (a, ty) -> try_eval (Expr.Cast (fold_expr a, ty))

let rec fold_tree t =
  let children = List.map fold_tree t.children in
  let op =
    match t.op with
    | Select p -> Select (fold_expr p)
    | Join { kind; pred } -> Join { kind; pred = fold_expr pred }
    | Project defs -> Project (List.map (fun (c, e) -> (c, fold_expr e)) defs)
    | Group_by { keys; aggs } ->
      Group_by
        { keys;
          aggs =
            List.map
              (fun a -> { a with Expr.agg_arg = Option.map fold_expr a.Expr.agg_arg })
              aggs }
    | Sort { keys; limit } ->
      Sort { keys = List.map (fun k -> { k with key = fold_expr k.key }) keys; limit }
    | (Get _ | Empty _ | Union_all) as op -> op
  in
  { op; children }

(* -- 2. predicate pushdown -- *)

let covered set e = Registry.Col_set.subset (Expr.cols e) set

(** Push the pending conjuncts [conjs] into [t] as deep as possible;
    conjuncts that cannot descend materialize as a Select on top. *)
let rec push t conjs : Relop.t =
  match t.op, t.children with
  | Select p, [ child ] -> push child (Expr.conjuncts p @ conjs)
  | Join { kind = (Inner | Cross) as kind; pred }, [ l; r ] ->
    let all =
      List.filter (fun c -> not (is_true c)) (Expr.conjuncts pred @ conjs)
    in
    let lcols = output_col_set l and rcols = output_col_set r in
    let to_l, rest = List.partition (covered lcols) all in
    let to_r, residual = List.partition (covered rcols) rest in
    let l' = push l to_l and r' = push r to_r in
    let kind' = if residual = [] then Cross else Inner in
    ignore kind;
    mk (Join { kind = kind'; pred = Expr.conjoin residual }) [ l'; r' ]
  | Join { kind = (Semi | Anti_semi) as kind; pred }, [ l; r ] ->
    (* Pending conjuncts only ever reference left outputs here. Split the
       join predicate's single-side conjuncts into the children: valid for
       both semi and anti-semi because per-side filters do not change the
       match relation (see DESIGN.md). *)
    let lcols = output_col_set l and rcols = output_col_set r in
    let pred_conjs = List.filter (fun c -> not (is_true c)) (Expr.conjuncts pred) in
    let to_l0, rest = List.partition (covered lcols) pred_conjs in
    let to_r, residual = List.partition (covered rcols) rest in
    let pending_l, stay_above = List.partition (covered lcols) conjs in
    let l' = push l (to_l0 @ pending_l) and r' = push r to_r in
    let joined = mk (Join { kind; pred = Expr.conjoin residual }) [ l'; r' ] in
    (match Expr.conjoin_opt stay_above with
     | Some p -> select p joined
     | None -> joined)
  | Join { kind = Left_outer; pred }, [ l; r ] ->
    (* Only the ON predicate's right-side conjuncts may be pushed (into the
       right input); everything pending stays above. *)
    let rcols = output_col_set r in
    let pred_conjs = List.filter (fun c -> not (is_true c)) (Expr.conjuncts pred) in
    let to_r, keep = List.partition (covered rcols) pred_conjs in
    let joined =
      mk (Join { kind = Left_outer; pred = Expr.conjoin keep }) [ push l []; push r to_r ]
    in
    (match Expr.conjoin_opt conjs with
     | Some p -> select p joined
     | None -> joined)
  | Group_by { keys; _ }, [ child ] ->
    let keyset = Registry.Col_set.of_list keys in
    let below, above = List.partition (covered keyset) conjs in
    let t' = mk t.op [ push child below ] in
    (match Expr.conjoin_opt above with Some p -> select p t' | None -> t')
  | Project defs, [ child ] ->
    (* Rewrite conjuncts through the projection, then push below. *)
    let env = List.fold_left (fun m (c, e) -> Registry.Col_map.add c e m)
        Registry.Col_map.empty defs in
    let rewrite c =
      Expr.map_cols
        (fun id -> match Registry.Col_map.find_opt id env with
           | Some e -> e
           | None -> Expr.Col id)
        c
    in
    let ccols = output_col_set child in
    let pushable, above =
      List.partition (fun c -> covered ccols (rewrite c)) conjs
    in
    let t' = mk t.op [ push child (List.map rewrite pushable) ] in
    (match Expr.conjoin_opt above with Some p -> select p t' | None -> t')
  | Sort _, [ child ] ->
    (* filters commute with sort *)
    mk t.op [ push child conjs ]
  | Union_all, [ l; r ] ->
    (* a filter over a union applies to every branch; the right branch's
       leading Project rewrites the column references *)
    mk Union_all [ push l conjs; push r conjs ]
  | (Get _ | Empty _), _ ->
    (match Expr.conjoin_opt (List.filter (fun c -> not (is_true c)) conjs) with
     | Some p -> select p t
     | None -> t)
  | _ -> invalid_arg "Normalize.push: malformed tree"

(* -- 3. transitivity closure + constant propagation -- *)

module UF = struct
  type t = (int, int) Hashtbl.t
  let create () : t = Hashtbl.create 32
  let rec find t x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p -> let r = find t p in if r <> p then Hashtbl.replace t x r; r
  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb
end

(* A "region" is a maximal subtree connected by Inner/Cross/Semi joins,
   Selects and Sorts. Equality facts are sound within a region (for Semi:
   per-side implied filters never change the match relation). Anti-semi and
   Left-outer joins, Group-bys and Projects delimit regions; their inputs
   are processed recursively as fresh regions. *)

type facts = {
  uf : UF.t;
  mutable consts : (int * Expr.t) list;
      (** (col, unary predicate template with the col) *)
  mutable equalities : (int * int) list;
}

let is_unary_const_pred = function
  | Expr.Bin ((Expr.Eq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Ne), Expr.Col c, Expr.Lit _)
  | Expr.Bin ((Expr.Eq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Ne), Expr.Lit _, Expr.Col c) ->
    Some c
  | Expr.Like (Expr.Col c, _, _) -> Some c
  | Expr.In_list (Expr.Col c, _, _) -> Some c
  | _ -> None

let retarget_const_pred pred ~from_col ~to_col =
  Expr.map_cols (fun id -> Expr.Col (if id = from_col then to_col else id)) pred

let rec collect_facts facts t =
  match t.op, t.children with
  | Select p, [ child ] ->
    List.iter (record_fact facts) (Expr.conjuncts p);
    collect_facts facts child
  | Join { kind = Inner | Cross | Semi; pred }, [ l; r ] ->
    List.iter (record_fact facts) (Expr.conjuncts pred);
    collect_facts facts l;
    collect_facts facts r
  | Sort _, [ child ] -> collect_facts facts child
  | _ -> () (* region boundary *)

and record_fact facts conj =
  match Expr.as_col_eq conj with
  | Some (a, b) ->
    UF.union facts.uf a b;
    facts.equalities <- (a, b) :: facts.equalities
  | None ->
    (match is_unary_const_pred conj with
     | Some c -> facts.consts <- (c, conj) :: facts.consts
     | None -> ())

(* All conjuncts present anywhere in the region (for dedup). *)
let rec region_conjuncts t =
  match t.op, t.children with
  | Select p, [ child ] -> Expr.conjuncts p @ region_conjuncts child
  | Join { kind = Inner | Cross | Semi; pred }, [ l; r ] ->
    Expr.conjuncts pred @ region_conjuncts l @ region_conjuncts r
  | Sort _, [ child ] -> region_conjuncts child
  | _ -> []

let derived_conjuncts facts existing =
  let out = ref [] in
  let exists c = List.exists (Expr.equal c) existing || List.exists (Expr.equal c) !out in
  (* constant propagation across equivalence classes *)
  let classes = Hashtbl.create 16 in
  let note col =
    let r = UF.find facts.uf col in
    let cur = try Hashtbl.find classes r with Not_found -> [] in
    if not (List.mem col cur) then Hashtbl.replace classes r (col :: cur)
  in
  List.iter (fun (a, b) -> note a; note b) facts.equalities;
  List.iter
    (fun (col, pred) ->
       let r = UF.find facts.uf col in
       match Hashtbl.find_opt classes r with
       | None -> ()
       | Some members ->
         List.iter
           (fun m ->
              if m <> col then begin
                let p = retarget_const_pred pred ~from_col:col ~to_col:m in
                if not (exists p) then out := p :: !out
              end)
           members)
    facts.consts;
  (* pairwise equalities within each class (bounded: classes are small) *)
  Hashtbl.iter
    (fun _ members ->
       let members = List.sort_uniq Int.compare members in
       let rec pairs = function
         | [] -> ()
         | a :: rest ->
           List.iter
             (fun b ->
                let p = Expr.eq (Expr.Col a) (Expr.Col b) in
                let p' = Expr.eq (Expr.Col b) (Expr.Col a) in
                if not (exists p) && not (exists p') then out := p :: !out)
             rest;
           pairs rest
       in
       pairs members)
    classes;
  !out

(** Place each derived conjunct at the deepest point of the region where its
    columns are available; drop it if nowhere placeable (it is implied). *)
let rec sprinkle t conjs =
  if conjs = [] then descend_boundaries t
  else
    match t.op, t.children with
    | Select p, [ child ] ->
      let ccols = output_col_set child in
      let down, _dropped = List.partition (covered ccols) conjs in
      mk (Select p) [ sprinkle child down ]
    | Join { kind = (Inner | Cross | Semi) as kind; pred }, [ l; r ] ->
      let lcols = output_col_set l and rcols = output_col_set r in
      let to_l, rest = List.partition (covered lcols) conjs in
      let to_r, rest = List.partition (covered rcols) rest in
      (* both-side conjuncts join the predicate (available at the join) *)
      let here =
        List.filter (covered (Registry.Col_set.union lcols rcols)) rest
      in
      let existing = Expr.conjuncts pred in
      let here = List.filter (fun c -> not (List.exists (Expr.equal c) existing)) here in
      let pred' = if here = [] then pred else fold_expr (Expr.conjoin (existing @ here)) in
      let kind' = if kind = Cross && here <> [] then Inner else kind in
      mk (Join { kind = kind'; pred = pred' }) [ sprinkle l to_l; sprinkle r to_r ]
    | Sort s, [ child ] -> mk (Sort s) [ sprinkle child conjs ]
    | (Get _ | Empty _), _ ->
      let existing = [] in
      let fresh = List.filter (fun c -> not (List.exists (Expr.equal c) existing)) conjs in
      (match Expr.conjoin_opt fresh with
       | Some p -> select p t
       | None -> t)
    | _, _ -> descend_boundaries t

(* Recurse into sub-regions at region boundaries. *)
and descend_boundaries t =
  match t.op, t.children with
  | (Join { kind = Anti_semi | Left_outer; _ } | Group_by _ | Project _), _ ->
    mk t.op (List.map close_region t.children)
  | _, [] -> t
  | _, children -> mk t.op (List.map descend_boundaries children)

and close_region t =
  let facts = { uf = UF.create (); consts = []; equalities = [] } in
  collect_facts facts t;
  let existing = region_conjuncts t in
  let derived = derived_conjuncts facts existing in
  sprinkle t derived

(* -- 4. contradiction detection -- *)

(* Detect unsatisfiable conjunct sets on a single column: empty ranges,
   conflicting equalities, or a literal FALSE. *)
let contradictory conjs =
  if List.exists is_false conjs then true
  else begin
    let ranges : (int, Catalog.Value.t option * Catalog.Value.t option * Catalog.Value.t option) Hashtbl.t =
      Hashtbl.create 8
    in
    (* per col: (lower bound, upper bound, required equality) *)
    let get c = try Hashtbl.find ranges c with Not_found -> (None, None, None) in
    let tighten_lo c v =
      let lo, hi, eq = get c in
      let lo = match lo with Some l when Catalog.Value.compare l v >= 0 -> Some l | _ -> Some v in
      Hashtbl.replace ranges c (lo, hi, eq)
    in
    let tighten_hi c v =
      let lo, hi, eq = get c in
      let hi = match hi with Some h when Catalog.Value.compare h v <= 0 -> Some h | _ -> Some v in
      Hashtbl.replace ranges c (lo, hi, eq)
    in
    let conflict = ref false in
    let set_eq c v =
      let lo, hi, eq = get c in
      (match eq with
       | Some v' when not (Catalog.Value.equal v v') -> conflict := true
       | _ -> Hashtbl.replace ranges c (lo, hi, Some v))
    in
    List.iter
      (fun conj ->
         match conj with
         | Expr.Bin (op, Expr.Col c, Expr.Lit v) when not (Catalog.Value.is_null v) ->
           (match op with
            | Expr.Eq -> set_eq c v
            | Expr.Lt | Expr.Le -> tighten_hi c v
            | Expr.Gt | Expr.Ge -> tighten_lo c v
            | _ -> ())
         | Expr.Bin (op, Expr.Lit v, Expr.Col c) when not (Catalog.Value.is_null v) ->
           (match op with
            | Expr.Eq -> set_eq c v
            | Expr.Gt | Expr.Ge -> tighten_hi c v
            | Expr.Lt | Expr.Le -> tighten_lo c v
            | _ -> ())
         | _ -> ())
      conjs;
    (* strictness refinement: treat < and > as <=/>= for the emptiness test,
       except when the bounds touch and either side is strict *)
    let strict_pairs = Hashtbl.create 8 in
    List.iter
      (fun conj ->
         match conj with
         | Expr.Bin (Expr.Lt, Expr.Col c, Expr.Lit _) | Expr.Bin (Expr.Gt, Expr.Lit _, Expr.Col c) ->
           Hashtbl.replace strict_pairs (c, `Hi) ()
         | Expr.Bin (Expr.Gt, Expr.Col c, Expr.Lit _) | Expr.Bin (Expr.Lt, Expr.Lit _, Expr.Col c) ->
           Hashtbl.replace strict_pairs (c, `Lo) ()
         | _ -> ())
      conjs;
    Hashtbl.iter
      (fun c (lo, hi, eq) ->
         (match lo, hi with
          | Some l, Some h ->
            let cmp = Catalog.Value.compare l h in
            if cmp > 0 then conflict := true
            else if cmp = 0
                 && (Hashtbl.mem strict_pairs (c, `Lo) || Hashtbl.mem strict_pairs (c, `Hi))
            then conflict := true
          | _ -> ());
         (match eq, lo with
          | Some v, Some l when Catalog.Value.compare v l < 0 -> conflict := true
          | _ -> ());
         (match eq, hi with
          | Some v, Some h when Catalog.Value.compare v h > 0 -> conflict := true
          | _ -> ()))
      ranges;
    !conflict
  end

let rec detect_contradictions t =
  let t = mk t.op (List.map detect_contradictions t.children) in
  let empty_of t = mk (Empty (output_cols t)) [] in
  match t.op, t.children with
  | Select p, [ child ] ->
    if contradictory (Expr.conjuncts p) then empty_of t
    else (match child.op with Empty _ -> empty_of t | _ -> t)
  | Join { kind; pred }, [ l; r ] ->
    let l_empty = (match l.op with Empty _ -> true | _ -> false) in
    let r_empty = (match r.op with Empty _ -> true | _ -> false) in
    let pred_contra =
      (match kind with
       | Inner | Cross | Semi -> contradictory (Expr.conjuncts pred)
       | Anti_semi | Left_outer -> false)
    in
    (match kind with
     | Inner | Cross ->
       if l_empty || r_empty || pred_contra then empty_of t else t
     | Semi -> if l_empty || r_empty || pred_contra then empty_of t else t
     | Anti_semi -> if l_empty then empty_of t else if r_empty then l else t
     | Left_outer ->
       if l_empty then empty_of t
       else if r_empty then begin
         (* left rows, right columns null-extended *)
         let defs =
           List.map (fun c -> (c, Expr.Col c)) (output_cols l)
           @ List.map (fun c -> (c, Expr.Lit Catalog.Value.Null)) (output_cols r)
         in
         project defs l
       end
       else t)
  | Group_by { keys; _ }, [ child ] ->
    (match child.op, keys with
     | Empty _, _ :: _ -> empty_of t
     | _ -> t) (* scalar aggregate over empty input still yields one row *)
  | Union_all, [ l; r ] ->
    (match l.op, r.op with
     | Empty _, Empty _ -> empty_of t
     | Empty _, _ -> r   (* right branch is already projected onto the union's ids *)
     | _, Empty _ -> l
     | _ -> t)
  | _ -> t

(* -- 4b. semi-join relocation (paper §4, DSQL steps 0-1 of Q20) --

   Two rules that together let a selective semi-join filter reach the fact
   table early, producing Fig. 7's shape where part filters lineitem before
   the aggregation:

   S3 (semi-join through group-by):
     semijoin_p(GB_{keys}(X), Y) -> GB_{keys}(semijoin_p(X, Y))
     valid when p's left-side columns are all group-by keys.

   S2 (semi-join transfer across an inner-join equality):
     innerjoin_P(semijoin_Q(A, B), C)
       -> innerjoin_P(semijoin_Q(A, B), semijoin_Q'(C, B))
     where Q' rewrites Q's A-side columns to their P-equivalent C-side
     columns. The added filter is implied (transitivity), so the rewrite is
     always sound; we guard it to selective filtered-base-table B's to avoid
     duplicating heavy subtrees. *)

let rec small_filtered_base t =
  match t.op, t.children with
  | Get _, _ -> true
  | (Select _ | Project _), [ c ] -> small_filtered_base c
  | _ -> false

(* S3 *)
let rec push_semi_through_gb t =
  let t = mk t.op (List.map push_semi_through_gb t.children) in
  match t.op, t.children with
  | Join { kind = (Semi | Anti_semi) as kind; pred }, [ l; r ] ->
    (match l.op, l.children with
     | Group_by { keys; _ }, [ x ] ->
       let left_refs =
         Registry.Col_set.inter (Expr.cols pred) (output_col_set l)
       in
       if Registry.Col_set.subset left_refs (Registry.Col_set.of_list keys) then
         mk l.op [ mk (Join { kind; pred }) [ x; r ] ]
       else t
     | _ -> t)
  | _ -> t

(* S2 *)
let rec transfer_semi t =
  let t = mk t.op (List.map transfer_semi t.children) in
  match t.op, t.children with
  | Join { kind = Inner; pred }, [ l; r ] ->
    let try_transfer semi_side other ~semi_on_left =
      match semi_side.op, semi_side.children with
      | Join { kind = Semi; pred = q }, [ a; b ] when small_filtered_base b ->
        (* already transferred? detect an existing semijoin(other, b). *)
        let already =
          match other.op, other.children with
          | Join { kind = Semi; _ }, [ _; b' ] -> b' = b
          | Group_by _, [ { op = Join { kind = Semi; _ }; children = [ _; b' ] } ] -> b' = b
          | _ -> false
        in
        if already then None
        else begin
          let a_cols = output_col_set a and other_cols = output_col_set other in
          let equiv =
            List.filter_map
              (fun (x, y) ->
                 if Registry.Col_set.mem x a_cols && Registry.Col_set.mem y other_cols
                 then Some (x, y)
                 else if Registry.Col_set.mem y a_cols && Registry.Col_set.mem x other_cols
                 then Some (y, x)
                 else None)
              (Expr.equi_pairs pred)
          in
          if equiv = [] then None
          else begin
            let q_left_refs = Registry.Col_set.inter (Expr.cols q) a_cols in
            let mappable =
              Registry.Col_set.for_all
                (fun c -> List.mem_assoc c equiv)
                q_left_refs
            in
            if not mappable || Registry.Col_set.is_empty q_left_refs then None
            else begin
              let q' =
                Expr.map_cols
                  (fun c ->
                     match List.assoc_opt c equiv with
                     | Some c' -> Expr.Col c'
                     | None -> Expr.Col c)
                  q
              in
              let other' = mk (Join { kind = Semi; pred = q' }) [ other; b ] in
              let children =
                if semi_on_left then [ semi_side; other' ] else [ other'; semi_side ]
              in
              Some (mk (Join { kind = Inner; pred }) children)
            end
          end
        end
      | _ -> None
    in
    (match try_transfer l r ~semi_on_left:true with
     | Some t' -> t'
     | None ->
       (match try_transfer r l ~semi_on_left:false with
        | Some t' -> t'
        | None -> t))
  | _ -> t

(* -- 5. redundant join elimination -- *)

(* Eliminate [L inner-join Get(T)] when the predicate is exactly an equality
   of a left column against T's declared single-column primary key, the left
   column is declared as a foreign key referencing T, and no column of T is
   referenced above the join. Validity relies on declared referential
   integrity and non-null FKs, which hold for the TPC-H substrate. *)

let rec eliminate_joins reg shell required t =
  match t.op, t.children with
  | Join { kind = Inner; pred }, [ l0; r0 ] ->
    let pred_cols = Expr.cols pred in
    let l = eliminate_joins reg shell (Registry.Col_set.union required pred_cols) l0 in
    let r = eliminate_joins reg shell (Registry.Col_set.union required pred_cols) r0 in
    let try_drop (keep : Relop.t) (drop : Relop.t) =
      match drop.op with
      | Get { table; cols; _ } ->
        (match Catalog.Shell_db.find shell table with
         | None -> None
         | Some tbl ->
           let schema = tbl.Catalog.Shell_db.schema in
           let drop_cols = output_col_set drop in
           (* no dropped column may be needed above the join *)
           if not (Registry.Col_set.is_empty (Registry.Col_set.inter required drop_cols))
           then None
           else
             match Expr.conjuncts pred with
             | [ Expr.Bin (Expr.Eq, Expr.Col a, Expr.Col b) ] ->
               let keep_col, drop_col =
                 if Registry.Col_set.mem a drop_cols then (b, a) else (a, b)
               in
               if not (Registry.Col_set.mem drop_col drop_cols) then None
               else begin
                 (* drop_col must be the dropped table's single-column PK *)
                 let pos = ref (-1) in
                 Array.iteri (fun i c -> if c = drop_col then pos := i) cols;
                 if !pos < 0 then None
                 else
                   let col_def = schema.Catalog.Schema.columns.(!pos) in
                   let pk_cols =
                     Array.to_list schema.Catalog.Schema.columns
                     |> List.filter (fun c -> c.Catalog.Schema.is_pk)
                   in
                   if not (col_def.Catalog.Schema.is_pk && List.length pk_cols = 1)
                   then None
                   else
                     (* keep_col must be a declared FK referencing that PK *)
                     match (Registry.info reg keep_col).Registry.source with
                     | Registry.Base { table = kt; column = kc; _ } ->
                       (match Catalog.Shell_db.find shell kt with
                        | None -> None
                        | Some ktbl ->
                          (match Catalog.Schema.find_col ktbl.Catalog.Shell_db.schema kc with
                           | None -> None
                           | Some ki ->
                             let kdef = ktbl.Catalog.Shell_db.schema.Catalog.Schema.columns.(ki) in
                             (match kdef.Catalog.Schema.references with
                              | Some (rt, rc)
                                when String.lowercase_ascii rt = String.lowercase_ascii table
                                  && String.lowercase_ascii rc
                                     = String.lowercase_ascii col_def.Catalog.Schema.col_name
                                  && not kdef.Catalog.Schema.nullable ->
                                Some keep
                              | _ -> None)))
                     | Registry.Derived _ -> None
               end
             | _ -> None)
      | _ -> None
    in
    (match try_drop l r with
     | Some kept -> kept
     | None ->
       (match try_drop r l with
        | Some kept -> kept
        | None -> mk t.op [ l; r ]))
  | _, _ ->
    let required' = Registry.Col_set.union required (local_refs t) in
    mk t.op (List.map (eliminate_joins reg shell required') t.children)

(** Full normalization pipeline. Each rewrite pass that changes the tree
    bumps its [normalize.rule.<name>] counter on [obs]. *)
let normalize ?(obs = Obs.null) ?(eliminate = true) (reg : Registry.t)
    (shell : Catalog.Shell_db.t) (t : Relop.t) : Relop.t =
  let pass name f t =
    let t' = f t in
    if t' <> t then Obs.add obs ("normalize.rule." ^ name) 1;
    t'
  in
  let t = pass "fold_constants" fold_tree t in
  let t = pass "push_predicates" (fun t -> push t []) t in
  let t = pass "derive_predicates" close_region t in
  (* place newly derived predicates deeply *)
  let t = pass "push_predicates" (fun t -> push t []) t in
  let t = pass "transfer_semijoin" transfer_semi t in
  let t = pass "semijoin_through_groupby" push_semi_through_gb t in
  let t = pass "push_predicates" (fun t -> push t []) t in
  let t = pass "fold_constants" fold_tree t in
  let t = pass "detect_contradictions" detect_contradictions t in
  let t =
    if eliminate then
      pass "eliminate_joins"
        (eliminate_joins reg shell (Registry.Col_set.of_list (output_cols t)))
        t
    else t
  in
  t
