(** Resolved scalar expressions. Columns are {!Registry} ids. *)

open Catalog

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type agg_kind = Count_star | Count | Sum | Avg | Min | Max

type func =
  | F_dateadd_year | F_dateadd_month | F_dateadd_day
  | F_year
  | F_substring
  | F_abs

type t =
  | Col of int
  | Lit of Value.t
  | Bin of binop * t * t
  | Un of unop * t
  | Is_null of t * bool              (** negated? *)
  | Like of t * string * bool        (** negated? *)
  | In_list of t * Value.t list * bool
  | Case of (t * t) list * t option
  | Func of func * t list
  | Cast of t * Types.t

(** Aggregate computed by a group-by operator. *)
type agg_def = {
  agg_out : int;                     (** output column id *)
  agg_func : agg_kind;
  agg_arg : t option;                (** [None] only for COUNT star *)
  agg_distinct : bool;
}

let col c = Col c
let lit v = Lit v
let eq a b = Bin (Eq, a, b)
let and_ a b = Bin (And, a, b)

let rec conjuncts = function
  | Bin (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Lit (Value.Bool true)
  | e :: rest -> List.fold_left and_ e rest

let conjoin_opt = function
  | [] -> None
  | l -> Some (conjoin l)

(** Set of column ids referenced by an expression. *)
let rec cols_acc acc = function
  | Col c -> Registry.Col_set.add c acc
  | Lit _ -> acc
  | Bin (_, a, b) -> cols_acc (cols_acc acc a) b
  | Un (_, a) | Is_null (a, _) | Like (a, _, _) | In_list (a, _, _) | Cast (a, _) ->
    cols_acc acc a
  | Case (branches, else_) ->
    let acc = List.fold_left (fun acc (c, v) -> cols_acc (cols_acc acc c) v) acc branches in
    (match else_ with Some e -> cols_acc acc e | None -> acc)
  | Func (_, args) -> List.fold_left cols_acc acc args

let cols e = cols_acc Registry.Col_set.empty e

let cols_of_list es = List.fold_left cols_acc Registry.Col_set.empty es

(** Substitute column references via [f]. *)
let rec map_cols f = function
  | Col c -> f c
  | Lit v -> Lit v
  | Bin (op, a, b) -> Bin (op, map_cols f a, map_cols f b)
  | Un (op, a) -> Un (op, map_cols f a)
  | Is_null (a, n) -> Is_null (map_cols f a, n)
  | Like (a, p, n) -> Like (map_cols f a, p, n)
  | In_list (a, items, n) -> In_list (map_cols f a, items, n)
  | Case (branches, else_) ->
    Case (List.map (fun (c, v) -> (map_cols f c, map_cols f v)) branches,
          Option.map (map_cols f) else_)
  | Func (fn, args) -> Func (fn, List.map (map_cols f) args)
  | Cast (a, ty) -> Cast (map_cols f a, ty)

let rename mapping e =
  map_cols (fun c -> match Registry.Col_map.find_opt c mapping with
    | Some c' -> Col c'
    | None -> Col c) e

(* -- evaluation (shared by constant folding and the execution engine) -- *)

exception Type_error of string

let type_err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let as_num = function
  | Value.Int x -> `I x
  | Value.Float x -> `F x
  | Value.Date d -> `I d
  | v -> type_err "expected number, got %s" (Value.to_string v)

let arith op a b =
  (* date +/- days yields a date; date - date yields days *)
  match op, a, b with
  | Add, Value.Date d, Value.Int n | Add, Value.Int n, Value.Date d ->
    Value.Date (d + n)
  | Sub, Value.Date d, Value.Int n -> Value.Date (d - n)
  | _ ->
  match as_num a, as_num b with
  | `I x, `I y ->
    (match op with
     | Add -> Value.Int (x + y) | Sub -> Value.Int (x - y) | Mul -> Value.Int (x * y)
     | Div -> if y = 0 then Value.Null else Value.Float (float_of_int x /. float_of_int y)
     | Mod -> if y = 0 then Value.Null else Value.Int (x mod y)
     | _ -> assert false)
  | a, b ->
    let x = (match a with `I v -> float_of_int v | `F v -> v) in
    let y = (match b with `I v -> float_of_int v | `F v -> v) in
    (match op with
     | Add -> Value.Float (x +. y) | Sub -> Value.Float (x -. y)
     | Mul -> Value.Float (x *. y)
     | Div -> if y = 0. then Value.Null else Value.Float (x /. y)
     | Mod -> if y = 0. then Value.Null else Value.Float (Float.rem x y)
     | _ -> assert false)

(* SQL LIKE with % and _ wildcards. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.replace memo (pi, si) r;
      r
  in
  go 0 0

(* Three-valued-logic comparison: None = UNKNOWN. *)
let compare3 op a b =
  if Value.is_null a || Value.is_null b then None
  else
    let c = Value.compare a b in
    Some (match op with
        | Eq -> c = 0 | Ne -> c <> 0
        | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
        | _ -> assert false)

let apply_func fn args =
  match fn, args with
  | _, _ when List.exists Value.is_null args -> Value.Null
  | F_dateadd_year, [ Value.Int n; Value.Date d ] -> Value.Date (Value.add_years d n)
  | F_dateadd_month, [ Value.Int n; Value.Date d ] -> Value.Date (Value.add_months d n)
  | F_dateadd_day, [ Value.Int n; Value.Date d ] -> Value.Date (d + n)
  | F_year, [ Value.Date d ] -> Value.Int (Value.year_of d)
  | F_substring, [ Value.String s; Value.Int start; Value.Int len ] ->
    let start = max 1 start in
    let avail = String.length s - (start - 1) in
    let len = max 0 (min len avail) in
    Value.String (if avail <= 0 then "" else String.sub s (start - 1) len)
  | F_abs, [ Value.Int x ] -> Value.Int (abs x)
  | F_abs, [ Value.Float x ] -> Value.Float (Float.abs x)
  | _ -> type_err "bad arguments to function"

let cast_value ty v =
  match ty, v with
  | _, Value.Null -> Value.Null
  | Types.Tint, Value.Int _ -> v
  | Types.Tint, Value.Float f -> Value.Int (int_of_float f)
  | Types.Tint, Value.String s -> (try Value.Int (int_of_string (String.trim s)) with _ -> Value.Null)
  | Types.Tint, Value.Bool b -> Value.Int (if b then 1 else 0)
  | Types.Tint, Value.Date d -> Value.Int d
  | Types.Tfloat, (Value.Int _ | Value.Float _ | Value.Date _ | Value.Bool _) ->
    Value.Float (Value.to_float v)
  | Types.Tfloat, Value.String s -> (try Value.Float (float_of_string (String.trim s)) with _ -> Value.Null)
  | Types.Tstring, _ -> Value.String (Value.to_string v)
  | Types.Tdate, Value.Date _ -> v
  | Types.Tdate, Value.String s ->
    (match Value.date_of_string s with Some d -> Value.Date d | None -> Value.Null)
  | Types.Tdate, Value.Int d -> Value.Date d
  | Types.Tbool, Value.Bool _ -> v
  | Types.Tbool, Value.Int n -> Value.Bool (n <> 0)
  | _ -> type_err "cannot cast %s" (Value.to_string v)

(** Evaluate under an environment mapping column id -> value.
    SQL three-valued logic: UNKNOWN is represented as [Null]. *)
let rec eval env e : Value.t =
  match e with
  | Col c -> env c
  | Lit v -> v
  | Cast (a, ty) -> cast_value ty (eval env a)
  | Bin (And, a, b) ->
    (match eval env a with
     | Value.Bool false -> Value.Bool false
     | Value.Bool true -> eval env b
     | Value.Null ->
       (match eval env b with Value.Bool false -> Value.Bool false | _ -> Value.Null)
     | v -> type_err "AND on %s" (Value.to_string v))
  | Bin (Or, a, b) ->
    (match eval env a with
     | Value.Bool true -> Value.Bool true
     | Value.Bool false -> eval env b
     | Value.Null ->
       (match eval env b with Value.Bool true -> Value.Bool true | _ -> Value.Null)
     | v -> type_err "OR on %s" (Value.to_string v))
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    (match compare3 op (eval env a) (eval env b) with
     | Some b -> Value.Bool b
     | None -> Value.Null)
  | Bin (op, a, b) ->
    let x = eval env a and y = eval env b in
    if Value.is_null x || Value.is_null y then Value.Null else arith op x y
  | Un (Neg, a) ->
    (match eval env a with
     | Value.Int x -> Value.Int (-x)
     | Value.Float x -> Value.Float (-.x)
     | Value.Null -> Value.Null
     | v -> type_err "negate %s" (Value.to_string v))
  | Un (Not, a) ->
    (match eval env a with
     | Value.Bool b -> Value.Bool (not b)
     | Value.Null -> Value.Null
     | v -> type_err "NOT %s" (Value.to_string v))
  | Is_null (a, negated) ->
    let n = Value.is_null (eval env a) in
    Value.Bool (if negated then not n else n)
  | Like (a, pattern, negated) ->
    (match eval env a with
     | Value.Null -> Value.Null
     | Value.String s ->
       let m = like_match ~pattern s in
       Value.Bool (if negated then not m else m)
     | v -> type_err "LIKE on %s" (Value.to_string v))
  | In_list (a, items, negated) ->
    (match eval env a with
     | Value.Null -> Value.Null
     | v ->
       let m = List.exists (fun it -> (not (Value.is_null it)) && Value.equal v it) items in
       let has_null = List.exists Value.is_null items in
       if m then Value.Bool (not negated)
       else if has_null then Value.Null
       else Value.Bool negated)
  | Case (branches, else_) ->
    let rec go = function
      | [] -> (match else_ with Some e -> eval env e | None -> Value.Null)
      | (c, v) :: rest ->
        (match eval env c with
         | Value.Bool true -> eval env v
         | _ -> go rest)
    in
    go branches
  | Func (fn, args) -> apply_func fn (List.map (eval env) args)

(** Evaluate a predicate to a boolean (UNKNOWN -> false, per WHERE). *)
let eval_pred env e =
  match eval env e with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> type_err "predicate evaluated to %s" (Value.to_string v)

(* -- typing -- *)

let rec type_of reg e : Types.t =
  match e with
  | Col c -> Registry.ty reg c
  | Lit v -> (match Value.type_of v with Some t -> t | None -> Types.Tint)
  | Cast (_, ty) -> ty
  | Bin ((Add | Sub | Mul | Div | Mod), a, b) ->
    let ta = type_of reg a and tb = type_of reg b in
    if ta = Types.Tfloat || tb = Types.Tfloat then Types.Tfloat
    else if ta = Types.Tdate || tb = Types.Tdate then Types.Tdate
    else Types.Tint
  | Bin (_, _, _) | Un (Not, _) | Is_null _ | Like _ | In_list _ -> Types.Tbool
  | Un (Neg, a) -> type_of reg a
  | Case (branches, else_) ->
    (match branches, else_ with
     | (_, v) :: _, _ -> type_of reg v
     | [], Some e -> type_of reg e
     | [], None -> Types.Tint)
  | Func ((F_dateadd_year | F_dateadd_month | F_dateadd_day), _) -> Types.Tdate
  | Func (F_year, _) -> Types.Tint
  | Func (F_substring, _) -> Types.Tstring
  | Func (F_abs, args) ->
    (match args with [ a ] -> type_of reg a | _ -> Types.Tfloat)

let width_of reg e : float =
  match e with
  | Col c -> Registry.width reg c
  | _ ->
    (match (try Some (type_of reg e) with _ -> None) with
     | Some ty -> float_of_int (Types.default_width ty)
     | None -> 8.)

(* -- printing -- *)

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let string_of_agg = function
  | Count_star | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG"
  | Min -> "MIN" | Max -> "MAX"

let string_of_func = function
  | F_dateadd_year -> "DATEADD_YEAR" | F_dateadd_month -> "DATEADD_MONTH"
  | F_dateadd_day -> "DATEADD_DAY" | F_year -> "YEAR" | F_substring -> "SUBSTRING"
  | F_abs -> "ABS"

(** Render with a column naming function (label or SQL-qualified name). *)
let rec to_string_with f e =
  let p = to_string_with f in
  match e with
  | Col c -> f c
  | Lit v -> Value.to_sql v
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (p a) (string_of_binop op) (p b)
  | Un (Neg, a) -> Printf.sprintf "(-%s)" (p a)
  | Un (Not, a) -> Printf.sprintf "(NOT %s)" (p a)
  | Is_null (a, false) -> Printf.sprintf "(%s IS NULL)" (p a)
  | Is_null (a, true) -> Printf.sprintf "(%s IS NOT NULL)" (p a)
  | Like (a, pat, false) -> Printf.sprintf "(%s LIKE '%s')" (p a) pat
  | Like (a, pat, true) -> Printf.sprintf "(%s NOT LIKE '%s')" (p a) pat
  | In_list (a, items, neg) ->
    Printf.sprintf "(%s %sIN (%s))" (p a) (if neg then "NOT " else "")
      (String.concat ", " (List.map Value.to_sql items))
  | Case (branches, else_) ->
    let bs = List.map (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (p c) (p v)) branches in
    Printf.sprintf "CASE %s%s END" (String.concat " " bs)
      (match else_ with Some e -> " ELSE " ^ p e | None -> "")
  | Func (fn, args) ->
    Printf.sprintf "%s(%s)" (string_of_func fn) (String.concat ", " (List.map p args))
  | Cast (a, ty) ->
    Printf.sprintf "CAST (%s AS %s)" (p a) (String.uppercase_ascii (Types.to_string ty))

let to_string reg e = to_string_with (Registry.label reg) e

let agg_to_string_with f (a : agg_def) =
  match a.agg_func, a.agg_arg with
  | Count_star, _ -> "COUNT(*)"
  | func, Some arg ->
    Printf.sprintf "%s(%s%s)" (string_of_agg func)
      (if a.agg_distinct then "DISTINCT " else "") (to_string_with f arg)
  | func, None -> Printf.sprintf "%s(*)" (string_of_agg func)

(** Structural equality (literal-level). *)
let equal (a : t) (b : t) = a = b

(** Decompose an equality predicate between two single columns. *)
let as_col_eq = function
  | Bin (Eq, Col a, Col b) -> Some (a, b)
  | _ -> None

(** All column-equality pairs among the conjuncts of a predicate. *)
let equi_pairs pred = List.filter_map as_col_eq (conjuncts pred)
