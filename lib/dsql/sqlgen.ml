(** QRel-style SQL generation (paper §3.4 and Fig. 6): serial fragments of a
    physical operator tree are translated back into (T-)SQL statements that
    each compute node's DBMS executes. The nesting style — derived tables
    aliased T1_1, T2_1, ... — follows the paper's Fig. 7 output. *)

open Algebra
open Memo

type rendered = {
  sql : string;                       (** a full SELECT statement *)
  outputs : (int * string) list;      (** col id -> emitted column name *)
}

(** A FROM-clause item: either a base/temp table or a derived table. *)
type from_item = {
  relation : string;                  (** [db].[dbo].[table] or (SELECT ...) *)
  alias : string;
  cols : (int * string) list;         (** col id -> column name within item *)
}

type ctx = {
  reg : Registry.t;
  mutable alias_n : int;
  temp_of_move : Pdwopt.Pplan.t -> string;
      (** resolves a Move child to its temp table name *)
  temp_cols : Pdwopt.Pplan.t -> (int * string) list;
}

let fresh_alias ctx depth =
  ctx.alias_n <- ctx.alias_n + 1;
  Printf.sprintf "T%d_%d" depth ctx.alias_n

(* emitted column names must be unique within one select list *)
let uniquify names =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (id, base) ->
       let base = if base = "" then "col" else base in
       let base =
         String.map
           (fun c ->
              if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9') || c = '_' then c
              else '_')
           base
       in
       let name =
         if Hashtbl.mem seen base then Printf.sprintf "%s_%d" base id else base
       in
       Hashtbl.replace seen name ();
       (id, name))
    names

let col_name_of ctx id =
  let info = Registry.info ctx.reg id in
  match info.Registry.source with
  | Registry.Base { column; _ } -> column
  | Registry.Derived _ ->
    let n = info.Registry.name in
    if String.length n > 0
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (fun c ->
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
            || c = '_')
         n
    then n
    else Printf.sprintf "col%d" id

(* expression rendering with qualified column references *)
let expr_sql (items : from_item list) e =
  let resolve c =
    let rec go = function
      | [] -> Printf.sprintf "col%d" c
      | it :: rest ->
        (match List.assoc_opt c it.cols with
         | Some name -> Printf.sprintf "%s.%s" it.alias name
         | None -> go rest)
    in
    go items
  in
  let rec p e =
    match e with
    | Expr.Func (Expr.F_dateadd_year, [ n; d ]) ->
      Printf.sprintf "DATEADD(year, %s, %s)" (p n) (p d)
    | Expr.Func (Expr.F_dateadd_month, [ n; d ]) ->
      Printf.sprintf "DATEADD(month, %s, %s)" (p n) (p d)
    | Expr.Func (Expr.F_dateadd_day, [ n; d ]) ->
      Printf.sprintf "DATEADD(day, %s, %s)" (p n) (p d)
    | Expr.Func (Expr.F_year, [ d ]) -> Printf.sprintf "YEAR(%s)" (p d)
    | Expr.Func (Expr.F_substring, [ s; a; b ]) ->
      Printf.sprintf "SUBSTRING(%s, %s, %s)" (p s) (p a) (p b)
    | Expr.Func (Expr.F_abs, [ a ]) -> Printf.sprintf "ABS(%s)" (p a)
    | _ -> Expr.to_string_with resolve e
  in
  (* to_string_with handles col resolution; funcs above give T-SQL spellings *)
  let rec full e =
    match e with
    | Expr.Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (full a) (Expr.string_of_binop op) (full b)
    | Expr.Un (Expr.Neg, a) -> Printf.sprintf "(-%s)" (full a)
    | Expr.Un (Expr.Not, a) -> Printf.sprintf "(NOT %s)" (full a)
    | Expr.Is_null (a, false) -> Printf.sprintf "(%s IS NULL)" (full a)
    | Expr.Is_null (a, true) -> Printf.sprintf "(%s IS NOT NULL)" (full a)
    | Expr.Like (a, pat, neg) ->
      Printf.sprintf "(%s %sLIKE '%s')" (full a) (if neg then "NOT " else "") pat
    | Expr.In_list (a, items_, neg) ->
      Printf.sprintf "(%s %sIN (%s))" (full a) (if neg then "NOT " else "")
        (String.concat ", " (List.map Catalog.Value.to_sql items_))
    | Expr.Case (branches, else_) ->
      let bs =
        List.map (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (full c) (full v)) branches
      in
      Printf.sprintf "CASE %s%s END" (String.concat " " bs)
        (match else_ with Some x -> " ELSE " ^ full x | None -> "")
    | Expr.Cast (a, ty) ->
      Printf.sprintf "CAST (%s AS %s)" (full a)
        (String.uppercase_ascii (Catalog.Types.to_string ty))
    | Expr.Col c ->
      let rec go = function
        | [] -> Printf.sprintf "col%d" c
        | it :: rest ->
          (match List.assoc_opt c it.cols with
           | Some name -> Printf.sprintf "%s.%s" it.alias name
           | None -> go rest)
      in
      go items
    | Expr.Lit v -> Catalog.Value.to_sql v
    | Expr.Func _ -> p e
  in
  full e

let agg_sql items (a : Expr.agg_def) =
  match a.Expr.agg_func, a.Expr.agg_arg with
  | Expr.Count_star, _ -> "COUNT(*)"
  | f, Some arg ->
    Printf.sprintf "%s(%s%s)" (Expr.string_of_agg f)
      (if a.Expr.agg_distinct then "DISTINCT " else "") (expr_sql items arg)
  | f, None -> Printf.sprintf "%s(*)" (Expr.string_of_agg f)

(* -- rendering of serial plan fragments -- *)

let base_table_ref table = Printf.sprintf "[tpch].[dbo].[%s]" (String.lowercase_ascii table)

(** Render a serial subtree as a FROM item. [depth] controls alias naming. *)
let rec as_from_item ctx depth (p : Pdwopt.Pplan.t) : from_item =
  match p.Pdwopt.Pplan.op with
  | Pdwopt.Pplan.Serial (Physop.Table_scan { table; cols; _ }) ->
    let tbl_cols =
      Array.to_list cols
      |> List.map (fun id -> (id, col_name_of ctx id))
    in
    { relation = base_table_ref table; alias = fresh_alias ctx depth; cols = tbl_cols }
  | Pdwopt.Pplan.Move _ ->
    let name = ctx.temp_of_move p in
    { relation = Printf.sprintf "[tempdb].[dbo].[%s]" name;
      alias = fresh_alias ctx depth;
      cols = ctx.temp_cols p }
  | _ ->
    let r = as_query ctx (depth + 1) p in
    { relation = Printf.sprintf "(%s)" r.sql;
      alias = fresh_alias ctx depth;
      cols = r.outputs }

(** Render a serial subtree as a complete SELECT statement. *)
and as_query ctx depth (p : Pdwopt.Pplan.t) : rendered =
  let select_of_item (it : from_item) out_ids =
    let outputs = uniquify (List.map (fun id -> (id, col_name_of ctx id)) out_ids) in
    let sel =
      List.map
        (fun (id, name) ->
           match List.assoc_opt id it.cols with
           | Some src -> Printf.sprintf "%s.%s AS %s" it.alias src name
           | None -> Printf.sprintf "NULL AS %s" name)
        outputs
    in
    (String.concat ", " sel, outputs)
  in
  match p.Pdwopt.Pplan.op, p.Pdwopt.Pplan.children with
  | Pdwopt.Pplan.Serial (Physop.Filter pred), [ child ] ->
    let it = as_from_item ctx depth child in
    let out_ids = Pdwopt.Pplan.output_layout p in
    let sel, outputs = select_of_item it out_ids in
    { sql =
        Printf.sprintf "SELECT %s FROM %s AS %s WHERE %s" sel it.relation it.alias
          (expr_sql [ it ] pred);
      outputs }
  | Pdwopt.Pplan.Serial (Physop.Compute defs), [ child ] ->
    let it = as_from_item ctx depth child in
    let outputs = uniquify (List.map (fun (id, _) -> (id, col_name_of ctx id)) defs) in
    let sel =
      List.map2
        (fun (_, e) (_, name) -> Printf.sprintf "%s AS %s" (expr_sql [ it ] e) name)
        defs outputs
    in
    { sql = Printf.sprintf "SELECT %s FROM %s AS %s" (String.concat ", " sel)
          it.relation it.alias;
      outputs }
  | Pdwopt.Pplan.Serial
      (Physop.Hash_join { kind; pred } | Physop.Merge_join { kind; pred }
      | Physop.Nl_join { kind; pred }),
    [ l; r ] ->
    let li = as_from_item ctx depth l in
    let ri = as_from_item ctx depth r in
    (match kind with
     | Relop.Semi | Relop.Anti_semi ->
       let out_ids = Pdwopt.Pplan.output_layout p in
       let sel, outputs = select_of_item li out_ids in
       let neg = (match kind with Relop.Anti_semi -> "NOT " | _ -> "") in
       { sql =
           Printf.sprintf
             "SELECT %s FROM %s AS %s WHERE %sEXISTS (SELECT 1 FROM %s AS %s WHERE %s)"
             sel li.relation li.alias neg ri.relation ri.alias
             (expr_sql [ li; ri ] pred);
         outputs }
     | Relop.Inner | Relop.Cross | Relop.Left_outer ->
       let out_ids = Pdwopt.Pplan.output_layout p in
       let outputs = uniquify (List.map (fun id -> (id, col_name_of ctx id)) out_ids) in
       let sel =
         List.map
           (fun (id, name) ->
              let src =
                match List.assoc_opt id li.cols with
                | Some s -> Printf.sprintf "%s.%s" li.alias s
                | None ->
                  (match List.assoc_opt id ri.cols with
                   | Some s -> Printf.sprintf "%s.%s" ri.alias s
                   | None -> "NULL")
              in
              Printf.sprintf "%s AS %s" src name)
           outputs
       in
       let join_kw =
         match kind with
         | Relop.Left_outer -> "LEFT OUTER JOIN"
         | Relop.Cross -> "CROSS JOIN"
         | _ -> "INNER JOIN"
       in
       let on_clause =
         match kind with
         | Relop.Cross -> ""
         | _ -> Printf.sprintf " ON %s" (expr_sql [ li; ri ] pred)
       in
       { sql =
           Printf.sprintf "SELECT %s FROM %s AS %s %s %s AS %s%s"
             (String.concat ", " sel) li.relation li.alias join_kw ri.relation ri.alias
             on_clause;
         outputs })
  | Pdwopt.Pplan.Serial (Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs }),
    [ child ] ->
    let it = as_from_item ctx depth child in
    let key_outputs = uniquify (List.map (fun id -> (id, col_name_of ctx id)) keys) in
    let agg_outputs =
      uniquify (List.map (fun a -> (a.Expr.agg_out, col_name_of ctx a.Expr.agg_out)) aggs)
    in
    let sel =
      List.map
        (fun (id, name) ->
           match List.assoc_opt id it.cols with
           | Some src -> Printf.sprintf "%s.%s AS %s" it.alias src name
           | None -> Printf.sprintf "NULL AS %s" name)
        key_outputs
      @ List.map2
          (fun a (_, name) -> Printf.sprintf "%s AS %s" (agg_sql [ it ] a) name)
          aggs agg_outputs
    in
    let group_clause =
      if keys = [] then ""
      else
        Printf.sprintf " GROUP BY %s"
          (String.concat ", "
             (List.map
                (fun (id, _) ->
                   match List.assoc_opt id it.cols with
                   | Some src -> Printf.sprintf "%s.%s" it.alias src
                   | None -> "NULL")
                key_outputs))
    in
    { sql = Printf.sprintf "SELECT %s FROM %s AS %s%s" (String.concat ", " sel)
          it.relation it.alias group_clause;
      outputs = key_outputs @ agg_outputs }
  | Pdwopt.Pplan.Serial (Physop.Sort_op { keys; limit }), [ child ] ->
    let it = as_from_item ctx depth child in
    let out_ids = Pdwopt.Pplan.output_layout p in
    let sel, outputs = select_of_item it out_ids in
    let order =
      if keys = [] then ""
      else
        Printf.sprintf " ORDER BY %s"
          (String.concat ", "
             (List.map
                (fun k ->
                   expr_sql [ it ] k.Relop.key ^ (if k.Relop.desc then " DESC" else " ASC"))
                keys))
    in
    let top = match limit with Some n -> Printf.sprintf "TOP %d " n | None -> "" in
    { sql = Printf.sprintf "SELECT %s%s FROM %s AS %s%s" top sel it.relation it.alias order;
      outputs }
  | Pdwopt.Pplan.Serial (Physop.Const_empty cols), _ ->
    let outputs = uniquify (List.map (fun id -> (id, col_name_of ctx id)) cols) in
    { sql =
        Printf.sprintf "SELECT %s WHERE 1 = 0"
          (String.concat ", " (List.map (fun (_, n) -> "NULL AS " ^ n) outputs));
      outputs }
  | (Pdwopt.Pplan.Serial (Physop.Table_scan _) | Pdwopt.Pplan.Move _), _ ->
    (* bare scan or temp: wrap in SELECT * style projection *)
    let it = as_from_item ctx depth p in
    let out_ids = Pdwopt.Pplan.output_layout p in
    let sel, outputs = select_of_item it out_ids in
    { sql = Printf.sprintf "SELECT %s FROM %s AS %s" sel it.relation it.alias; outputs }
  | Pdwopt.Pplan.Serial Physop.Union_op, [ l; r ] ->
    let lq = as_query ctx depth l in
    let rq = as_query ctx depth r in
    { sql = Printf.sprintf "%s UNION ALL %s" lq.sql rq.sql; outputs = lq.outputs }
  | Pdwopt.Pplan.Return _, _ -> invalid_arg "Sqlgen.as_query: Return is not a SQL fragment"
  | _, _ -> invalid_arg "Sqlgen.as_query: malformed serial fragment"
