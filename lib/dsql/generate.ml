(** DSQL plan generation (paper §2.4 and Fig. 4 steps 10-11): the chosen
    parallel plan is cut at every data movement operation into serially
    executed DSQL steps. Each DMS step carries (1) the SQL statement
    extracting the source data, (2) the tuple routing policy, and (3) the
    destination temp table; the final step is a Return operation. *)

open Algebra

type step =
  | Dms_step of {
      id : int;
      kind : Dms.Op.kind;
      temp_table : string;
      source_sql : string;
      cols : (int * string) list;    (** temp table schema *)
    }
  | Return_step of {
      id : int;
      sql : string;
    }

type plan = {
  steps : step list;                 (** in execution order *)
  reg : Registry.t;
}

let step_id = function Dms_step { id; _ } -> id | Return_step { id; _ } -> id

(** Generate the DSQL plan for a parallel plan (bottom-up traversal: deepest
    movements become the earliest steps, as in Fig. 7). Reports
    [dsql.steps], [dsql.dms_steps], and [dsql.sql_bytes] into [obs]. *)
let generate ?(obs = Obs.null) (reg : Registry.t) (p : Pdwopt.Pplan.t) : plan =
  let steps = ref [] in
  let temp_count = ref 0 in
  let temp_names : (Pdwopt.Pplan.t, string * (int * string) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let ctx =
    { Sqlgen.reg;
      alias_n = 0;
      temp_of_move = (fun m -> fst (Hashtbl.find temp_names m));
      temp_cols = (fun m -> snd (Hashtbl.find temp_names m)) }
  in
  (* first pass: emit a DMS step for every Move, bottom-up *)
  let rec walk (node : Pdwopt.Pplan.t) =
    List.iter walk node.Pdwopt.Pplan.children;
    match node.Pdwopt.Pplan.op with
    | Pdwopt.Pplan.Move { kind; cols } when not (Hashtbl.mem temp_names node) ->
      (* structurally identical movements share one temp table *)
      incr temp_count;
      let name = Printf.sprintf "TEMP_ID_%d" !temp_count in
      let child = List.hd node.Pdwopt.Pplan.children in
      ctx.Sqlgen.alias_n <- 0;
      let rendered = Sqlgen.as_query ctx 1 child in
      (* temp table columns follow the moved projection *)
      let temp_cols =
        List.map
          (fun id ->
             match List.assoc_opt id rendered.Sqlgen.outputs with
             | Some n -> (id, n)
             | None -> (id, Printf.sprintf "col%d" id))
          cols
      in
      (* the source SQL projects exactly the moved columns *)
      let source_sql =
        if List.map fst rendered.Sqlgen.outputs = cols then rendered.Sqlgen.sql
        else begin
          let alias = "S1" in
          let sel =
            List.map
              (fun (id, n) ->
                 match List.assoc_opt id rendered.Sqlgen.outputs with
                 | Some src -> Printf.sprintf "%s.%s AS %s" alias src n
                 | None -> Printf.sprintf "NULL AS %s" n)
              temp_cols
          in
          Printf.sprintf "SELECT %s FROM (%s) AS %s" (String.concat ", " sel)
            rendered.Sqlgen.sql alias
        end
      in
      Hashtbl.replace temp_names node (name, temp_cols);
      steps :=
        Dms_step
          { id = List.length !steps; kind; temp_table = name; source_sql;
            cols = temp_cols }
        :: !steps
    | _ -> ()
  in
  (match p.Pdwopt.Pplan.op with
   | Pdwopt.Pplan.Return { sort; limit } ->
     let child = List.hd p.Pdwopt.Pplan.children in
     walk child;
     ctx.Sqlgen.alias_n <- 0;
     let rendered = Sqlgen.as_query ctx 1 child in
     let order =
       if sort = [] then ""
       else begin
         (* re-render order keys against the final select's output names *)
         let items =
           [ { Sqlgen.relation = ""; alias = "";
               cols = rendered.Sqlgen.outputs } ]
         in
         let naked e =
           (* strip the "." prefix produced by the empty alias *)
           let s = Sqlgen.expr_sql items e in
           s
         in
         Printf.sprintf " ORDER BY %s"
           (String.concat ", "
              (List.map
                 (fun k ->
                    let s = naked k.Relop.key in
                    let s =
                      if String.length s > 0 && s.[0] = '.' then
                        String.sub s 1 (String.length s - 1)
                      else s
                    in
                    s ^ (if k.Relop.desc then " DESC" else " ASC"))
                 sort))
       end
     in
     let sql =
       match limit with
       | Some n ->
         (* TOP applies at the final gather *)
         Printf.sprintf "SELECT TOP %d * FROM (%s) AS R%s" n rendered.Sqlgen.sql order
       | None ->
         if order = "" then rendered.Sqlgen.sql
         else Printf.sprintf "SELECT * FROM (%s) AS R%s" rendered.Sqlgen.sql order
     in
     steps := Return_step { id = List.length !steps; sql } :: !steps
   | _ ->
     walk p;
     ctx.Sqlgen.alias_n <- 0;
     let rendered = Sqlgen.as_query ctx 1 p in
     steps := Return_step { id = List.length !steps; sql = rendered.Sqlgen.sql } :: !steps);
  Obs.add obs "dsql.steps" (List.length !steps);
  Obs.add obs "dsql.dms_steps"
    (List.length (List.filter (function Dms_step _ -> true | _ -> false) !steps));
  Obs.add obs "dsql.sql_bytes"
    (List.fold_left
       (fun a s ->
          a
          + String.length
              (match s with
               | Dms_step { source_sql; _ } -> source_sql
               | Return_step { sql; _ } -> sql))
       0 !steps);
  { steps = List.rev !steps; reg }

(* -- formatting (paper Fig. 7 style) -- *)

let routing_policy reg = function
  | Dms.Op.Shuffle cols ->
    Printf.sprintf "hash-partition on (%s)"
      (String.concat ", " (List.map (Registry.label reg) cols))
  | Dms.Op.Trim cols ->
    Printf.sprintf "local re-hash on (%s), keep own rows"
      (String.concat ", " (List.map (Registry.label reg) cols))
  | Dms.Op.Broadcast -> "replicate to all compute nodes"
  | Dms.Op.Partition_move -> "gather to control node"
  | Dms.Op.Control_node_move -> "replicate from control node"
  | Dms.Op.Replicated_broadcast -> "replicate from single node"
  | Dms.Op.Remote_copy -> "copy to single node"

(* crude SQL reflow for readability *)
let reflow sql =
  let b = Buffer.create (String.length sql + 64) in
  let depth = ref 0 in
  String.iter
    (fun c ->
       match c with
       | '(' -> incr depth; Buffer.add_char b c
       | ')' -> decr depth; Buffer.add_char b c
       | ' ' -> Buffer.add_char b c
       | c -> Buffer.add_char b c)
    sql;
  ignore !depth;
  Buffer.contents b

let step_to_string reg = function
  | Dms_step { id; kind; temp_table; source_sql; cols } ->
    Printf.sprintf
      "DSQL step %d: DMS %s\n  routing: %s\n  destination: [tempdb].[dbo].[%s](%s)\n  source SQL:\n    %s"
      id (Dms.Op.name kind) (routing_policy reg kind) temp_table
      (String.concat ", " (List.map snd cols))
      (reflow source_sql)
  | Return_step { id; sql } ->
    Printf.sprintf "DSQL step %d: Return\n  SQL:\n    %s" id (reflow sql)

let to_string (p : plan) =
  String.concat "\n\n" (List.map (step_to_string p.reg) p.steps)

let step_count p = List.length p.steps
