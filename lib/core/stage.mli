(** The pipeline stage abstraction (paper Fig. 2): a stage is a named,
    typed transformation ['a -> 'b] that runs under an {!Obs} span, so the
    end-to-end pipeline is an explicit composition of uniformly typed
    pieces and every stage boundary reports wall-clock time plus its own
    metrics into the shared context. *)

type ('a, 'b) t

(** [v ~name f] wraps [f] as a stage. [f] receives the observability
    context (already scoped to the stage's span) and the stage input. *)
val v : name:string -> (Obs.t -> 'a -> 'b) -> ('a, 'b) t

val name : ('a, 'b) t -> string

(** [run obs stage x] opens span [name stage] on [obs], runs the stage
    body, and closes the span (also on exception). *)
val run : Obs.t -> ('a, 'b) t -> 'a -> 'b

(** [a >>> b] composes two stages; each still opens its own span. *)
val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
