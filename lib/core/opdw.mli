(** opdw — an OCaml reproduction of the Microsoft SQL Server PDW query
    optimizer (SIGMOD 2012): the public, one-call API over the full
    pipeline of the paper's Fig. 2.

    {v
    SQL text --(PDW parser)--> AST --(algebrizer + simplification)--> logical tree
      --(serial Cascades optimizer)--> MEMO --(XML export/import)-->
      --(PDW bottom-up optimizer + DMS cost model)--> parallel plan
      --(DSQL generation)--> DSQL steps --(appliance)--> results
    v}

    See the library modules for the pieces: {!Sqlfront} (parser),
    {!Algebra} (algebrizer/normalizer/cardinality), {!Memo} (the MEMO and
    its XML interchange), {!Serialopt} (serial optimizer), {!Dms}
    (distribution properties, the 7 movements, the λ cost model),
    {!Pdwopt} (the paper's contribution), {!Dsql} (DSQL generation),
    {!Engine} (the simulated appliance), {!Tpch} and {!Baseline}. *)

(** The typed pipeline stage abstraction; see {!Stage}. *)
module Stage = Stage

(** The bounded LRU plan cache and its fingerprinting; see {!Plancache}. *)
module Plancache = Plancache

(** The feedback library (observation log, miss analysis, λ re-fit, LKG
    plan store) — re-exported under {!Feedback} (the driver) below. *)
module Fbk = Feedback

(** Pipeline configuration. *)
type options = {
  serial : Serialopt.Optimizer.options;
      (** serial exploration (task budget = the paper's timeout, §3.1) *)
  pdw : Pdwopt.Enumerate.opts;
      (** node count, λ constants, pruning, hints (Fig. 4 / §3.3) *)
  baseline : Baseline.opts;
  via_xml : bool;
      (** ship the MEMO through its XML encoding, as the real system does *)
  seed_collocated : bool;
      (** §3.1: seed the MEMO with distribution-aware join orders, useful
          under a small exploration budget *)
  governor : Governor.limits;
      (** statement deadline (wall seconds), execution deadline (simulated
          seconds, interpreted by {!Governed}), and memo-size budget;
          {!Governor.no_limits} by default. Part of the plan-cache
          fingerprint (since v3; v5 additionally carries the feedback
          calibration epoch). *)
}

(** Defaults for an appliance with [node_count] compute nodes: full
    exploration budget, XML interchange on, pruning on, no seeding, no
    governor limits. *)
val default_options : node_count:int -> options

(** How a returned plan was degraded by governor pressure. The ladder is
    cached → full → [Anytime] → [Fallback] → rejected: [Anytime] plans are
    the best found in a truncated serial search; [Fallback] plans are the
    §3.2 baseline (best serial plan, greedily parallelized) produced when
    the PDW enumeration itself was interrupted. Either way the plan passed
    the {!Check} analyzer (unconditionally — even when [check:false]) and
    executes to correct rows; it is just potentially slower than the
    full-search plan, and is never admitted to the plan cache. *)
type degradation = Anytime | Fallback

val degradation_to_string : degradation -> string

(** Everything the pipeline produced, from AST to DSQL plan. *)
type result = {
  query : Sqlfront.Ast.query;
  algebrized : Algebra.Algebrizer.result;
  normalized : Algebra.Relop.t;
  serial : Serialopt.Optimizer.result;
  memo_xml : string option;        (** the interchange XML (when [via_xml]) *)
  memo : Memo.t;                   (** the MEMO the PDW side optimized *)
  pdw : Pdwopt.Optimizer.result;
  dsql : Dsql.Generate.plan;
  baseline_plan : Pdwopt.Pplan.t option;
      (** the §3.2 strawman: the best serial plan, parallelized greedily *)
  fingerprint : string option;
      (** the plan-cache key this result was filed under (when [optimize]
          was given a cache) — {!run} evicts it if the appliance rejects
          the plan *)
  degraded : degradation option;
      (** [Some _] when governor pressure truncated optimization; degraded
          plans still pass the {!Check} analyzer and are never cached *)
}

(** The compiled pipeline tail a plan-cache entry memoizes: everything
    downstream of normalization (serial MEMO, interchange XML, PDW result,
    DSQL plan, baseline plan). *)
type compiled_tail = {
  c_serial : Serialopt.Optimizer.result;
  c_memo_xml : string option;
  c_memo : Memo.t;
  c_pdw : Pdwopt.Optimizer.result;
  c_dsql : Dsql.Generate.plan;
  c_baseline : Pdwopt.Pplan.t option;
}

(** A plan cache usable across queries (and across domains — operations
    are mutex-guarded). Keyed by {!Plancache.fingerprint}: the canonical
    normalized tree plus node count, option knobs, hints, λ constants and
    the shell's statistics version. *)
type cache = compiled_tail Plancache.t

(** [cache ()] builds an empty plan cache (default capacity 128 entries,
    LRU eviction). *)
val cache : ?capacity:int -> unit -> cache

(** Run the full optimization pipeline on a SQL string against a shell
    database. Raises {!Sqlfront.Parser.Parse_error},
    {!Algebra.Algebrizer.Unsupported} / [Resolve_error], or
    {!Pdwopt.Optimizer.No_plan} on invalid input.

    Pass an enabled [obs] context ({!Obs.create}) to collect a per-stage
    span tree (parse, algebrize, normalize, serial_optimize, memo_xml,
    pdw_optimize, dsql_generate, baseline_parallelize) with each stage's
    counters; the default {!Obs.null} makes instrumentation free.

    Pass a [cache] to memoize the compiled tail: a fingerprint hit skips
    serial exploration, the XML interchange, PDW enumeration, DSQL
    generation and baseline parallelization, returning the previously
    compiled plans. Reports [plancache.hit] / [plancache.miss] /
    [plancache.evict] counters into [obs].

    [check] (default [true]) runs the {!Check} static analyzer over the
    chosen plan and its DSQL steps (a [check] stage after [dsql_generate])
    and raises {!Check.Invalid} if any invariant is violated — an
    optimizer bug surfaces as an error instead of silently wrong rows.
    Cached tails were validated when first compiled, so a cache hit does
    not re-run the analyzer (an invalid plan raises before admission, so
    a poisoned tail is never cached here; {!run} evicts entries the
    appliance rejects at execution time).

    [live_nodes] is the appliance's surviving-node set (original node
    ids, see {!Engine.Appliance.live_nodes}); it extends the plan-cache
    fingerprint so plans compiled before a node loss cannot be served
    against the shrunken topology. Defaults to all nodes alive.

    [token] threads cooperative cancellation through serial exploration
    and the PDW enumeration. With [options.governor.deadline] set, a
    wall-clock deadline is armed on it here (on a fresh token when the
    caller passed none). A cut during serial search degrades the result
    to [Anytime]; a cut during PDW enumeration degrades to the [Fallback]
    baseline plan; if no fallback exists, {!Governor.Cancelled}
    propagates. Degraded results are tagged in [degraded], validated by
    {!Check} unconditionally, and never cached.

    [pool] parallelizes compilation itself: serial exploration's rule
    matching and the PDW enumeration's leveled wavefront both fan out on
    it. The chosen plan — fingerprint, costs, DSQL text — is bit-identical
    at any pool size (default: the shared sequential pool).

    [calibration] (default 0) is the feedback calibration epoch carried in
    fingerprint v5; the {!Feedback} driver bumps it on every
    {!Feedback.calibrate} so plans from different calibration states never
    alias in the cache or the plan store.

    [topology] (default 0) is the topology epoch carried in fingerprint
    v6: an online topology move (grow / re-key — see
    {!Engine.Appliance.recommission} / [redistribute]) rebuilds the shell
    catalog, whose fresh [stats_version] could otherwise alias a pre-move
    fingerprint at an equal node count. Pass the appliance's replan
    [epoch] (monotone across decommissions and phased moves); the
    {!Topology.Elastic} driver does. *)
val optimize :
  ?obs:Obs.t -> ?options:options -> ?cache:cache -> ?check:bool ->
  ?live_nodes:int list -> ?token:Governor.token -> ?pool:Par.t ->
  ?calibration:int -> ?topology:int ->
  Catalog.Shell_db.t -> string -> result

(** The chosen distributed plan (rooted at the final Return operation). *)
val plan : result -> Pdwopt.Pplan.t

(** Human-readable explanation: the parallel plan tree plus the DSQL steps
    (paper Fig. 7 style). *)
val explain : result -> string

(** Execute the chosen plan on an appliance; returns the client result.
    Byte/time accounting accumulates in the appliance's account; with
    [obs], per-DMS-op and per-node executor counters are recorded under an
    [execute] span. With [cache], a plan the appliance's {!Check} gate
    refuses is evicted from the cache (counter
    [plancache.evictions_invalid]) before {!Check.Invalid} propagates. *)
val run :
  ?obs:Obs.t -> ?cache:cache -> Engine.Appliance.t -> result -> Engine.Local.rset

(** Execute the parallelized-best-serial baseline plan, if one exists. *)
val run_baseline : Engine.Appliance.t -> result -> Engine.Local.rset option

(** Single-node reference execution of the best serial plan (the
    correctness oracle). *)
val run_reference : Engine.Appliance.t -> result -> Engine.Local.rset option

(** The query's output columns: (display name, registry column id). *)
val output_columns : result -> (string * int) list

(** Fault-tolerant statement driver (chaos mode): runs statements under a
    {!Fault.plan} through the optimize→check→execute loop. Recoverable
    faults (DMS transfer, temp-table write, control transient, straggler)
    are retried inside the engine with simulated backoff; a
    {!Fault.Node_crash} decommissions the dead node and re-optimizes the
    statement against the surviving (N-1)-node shell catalog. For any
    fault plan that does not exhaust retry/replan budgets, result rows are
    identical to the fault-free run. *)
module Chaos : sig
  type t

  (** [create ?cache ?max_replans ?options ~fault shell app] — [app] must
      be the appliance built from [shell]. [max_replans] (default 8)
      bounds node losses tolerated per statement before
      {!Fault.Exhausted}. The given plan [cache] is shared across
      topologies safely: fingerprints carry the live-node set. *)
  val create :
    ?cache:cache -> ?max_replans:int -> ?options:options ->
    fault:Fault.plan -> Catalog.Shell_db.t -> Engine.Appliance.t -> t

  (** The current appliance — replaced by a fresh (N-1)-node one after
      each node loss; its account carries across (see
      {!Engine.Appliance.decommission}). *)
  val app : t -> Engine.Appliance.t

  (** The current shell catalog (rebuilt on node loss). *)
  val shell : t -> Catalog.Shell_db.t

  (** Surviving compute-node count. *)
  val nodes : t -> int

  (** Optimize and execute one statement under the fault plan. Raises
      {!Fault.Exhausted} when a step's retry budget or the replan budget
      is exceeded — never returns wrong rows. *)
  val run : ?obs:Obs.t -> t -> string -> result * Engine.Local.rset
end

(** The resource-governed statement driver: admission control, statement
    deadlines, cooperative cancellation, anytime/fallback degradation and
    a per-statement circuit breaker in one loop. The contract: every call
    returns a structured {!Governed.outcome} — correct rows, a
    degraded-but-{!Check}-valid plan's correct rows, or a typed refusal —
    never wrong rows, an exception leak, or a leaked gate slot. *)
module Governed : sig
  type t

  (** [create ?cache ?options ?check ?max_concurrent ?queue_limit
      ?breaker_threshold ?breaker_cooldown shell app] — at most
      [max_concurrent] (default 4) statements in flight with up to
      [queue_limit] (default 16) more queued FIFO; [breaker_threshold]
      (default 3, [<= 0] disables) consecutive hard failures of one
      statement fingerprint open its breaker for [breaker_cooldown]
      (default 1.0) {e simulated} seconds. Deadlines/memo budgets come
      from [options.governor]. *)
  val create :
    ?cache:cache -> ?options:options -> ?check:bool ->
    ?max_concurrent:int -> ?queue_limit:int ->
    ?breaker_threshold:int -> ?breaker_cooldown:float ->
    Catalog.Shell_db.t -> Engine.Appliance.t -> t

  val app : t -> Engine.Appliance.t
  val gate : t -> Governor.Gate.t
  val breaker : t -> Governor.Breaker.t

  (** Every way a governed statement can come back; only [Returned]
      carries rows. *)
  type outcome =
    | Returned of result * Engine.Local.rset
    | Rejected of Governor.Gate.rejection   (** admission queue overflow *)
    | Shed of { retry_after : float }       (** circuit breaker open *)
    | Timed_out of Governor.reason          (** deadline/cancel during execution *)
    | Exhausted of { attempts : int; reason : string }
        (** a step's fault-retry budget was spent ({!Fault.Exhausted}) *)
    | Invalid of string                     (** plan refused by {!Check} *)

  val outcome_to_string : outcome -> string

  (** Optimize and execute one statement under full governance. Safe to
      call from several domains: compilation overlaps up to the gate
      width, execution on the shared appliance is serialized. Parse and
      binding errors (the caller's malformed SQL) propagate as the usual
      exceptions; governor pressure and engine failures come back as
      outcomes. Hard failures ([Exhausted]/[Invalid]) count against the
      statement's breaker; deadline trips do not. *)
  val run : ?obs:Obs.t -> t -> string -> outcome

  (** The one shared per-iteration metric reset: appliance account
      (sim clock + [fault.*] tallies) plus gate and breaker counters.
      Breaker open/closed states survive. *)
  val reset : t -> unit
end

(** The feedback-driven statement driver (DESIGN.md §13): a closed
    execution → calibration → plan-store loop. {!Feedback.run} executes a
    statement while harvesting observed per-operator cardinalities and
    per-DMS-component (bytes, seconds) samples into a persistent
    {!Feedback.Log}, and records the plan's observed sim/wall cost in a
    last-known-good {!Feedback.Store} keyed by plan-cache fingerprint.
    {!Feedback.calibrate} folds the log back into the shell catalog
    (histogram refinement for columns missed by more than the threshold;
    λ re-fit from observed DMS volumes) and bumps the calibration epoch
    (fingerprint v5). A recompiled plan that regresses against the LKG
    past the hysteresis thresholds (observed sim > [regress_factor] × LKG
    for [streak_limit] consecutive runs) is quarantined, and {!Feedback.run}
    automatically falls back to the LKG plan. Degraded (Anytime/Fallback)
    results are never recorded as LKG. All of it is deterministic: the
    same feedback log and seed yield bit-identical refined statistics and
    plans at any [--jobs]. *)
module Feedback : sig
  (** Observation records and their bit-exact text persistence. *)
  module Log = Fbk.Log

  (** Which columns the optimizer's estimates missed on. *)
  module Misses = Fbk.Misses

  (** λ re-fitting from logged DMS volumes. *)
  module Lambda = Fbk.Lambda

  (** The generic LKG plan store (hysteresis / quarantine / fallback). *)
  module Store = Fbk.Store

  type t

  (** [create ?cache ?options ?check ?regress_factor ?streak_limit
      ?miss_threshold ?refine_buckets ?log shell app] — [cache] defaults
      to a fresh plan cache (the driver requires one: fingerprints key the
      plan store); [regress_factor] (default 1.2) and [streak_limit]
      (default 2) are the hysteresis thresholds; [miss_threshold]
      (default 2.0) flags columns for refinement; [refine_buckets]
      (default 64) is the refined histograms' resolution; [log] seeds the
      driver with a previously persisted {!Log.t}. *)
  val create :
    ?cache:cache -> ?options:options -> ?check:bool ->
    ?regress_factor:float -> ?streak_limit:int ->
    ?miss_threshold:float -> ?refine_buckets:int -> ?log:Fbk.Log.t ->
    Catalog.Shell_db.t -> Engine.Appliance.t -> t

  val log : t -> Fbk.Log.t
  val store : t -> result Fbk.Store.t
  val epoch : t -> int
  val plan_cache : t -> cache

  (** The driver's current options ({!calibrate} installs re-fitted λs). *)
  val options : t -> options

  (** The plan store's per-statement key (normalized SQL text). *)
  val statement_key : string -> string

  (** Symmetric model-vs-sim cost error of one executed plan, always
      >= 1: predicted DMS cost vs the DMS seconds the appliance charged. *)
  val model_error : result -> dms_time:float -> float

  type run_outcome = {
    res : result;           (** the result actually executed (LKG on fallback) *)
    rows : Engine.Local.rset;
    observed_sim : float;   (** simulated seconds of this statement *)
    observed_dms : float;   (** DMS portion of [observed_sim] *)
    fellback : bool;        (** the compiled plan was quarantined; LKG ran *)
    store_outcome : Fbk.Store.outcome;
  }

  (** Optimize, (possibly) fall back to LKG, execute with the harvest
      armed, append to the log, record in the store. Emits
      [feedback.regressions] / [feedback.quarantines] /
      [feedback.fallbacks] counters into [obs]. The appliance account is
      reset per run, so [observed_sim] is this statement's cost. *)
  val run : ?obs:Obs.t -> t -> string -> run_outcome

  type calibration = {
    refined : Fbk.Misses.miss list;  (** columns whose statistics were rebuilt *)
    lambdas : Dms.Cost.lambdas;      (** the re-fitted λ table now in force *)
    fits : Fbk.Lambda.fit list;      (** per-component fit quality *)
    new_epoch : int;
  }

  (** Fold the accumulated log back into the catalog: refine statistics of
      every column whose estimates missed by more than [miss_threshold]
      (full-resolution rebuild from the true shards — widening-only, so
      R11 analysis bounds stay sound), re-fit λs from observed DMS
      volumes, install them in the driver's options, and bump the
      calibration epoch (stats_version and the epoch both re-key
      fingerprint v5, so every statement recompiles on its next run). A
      pure function of the log: the same log yields bit-identical refined
      stats and λs at any [--jobs]. *)
  val calibrate : ?obs:Obs.t -> t -> calibration
end

(** Batteries-included workload setup. *)
module Workload : sig
  type t = {
    shell : Catalog.Shell_db.t;
    app : Engine.Appliance.t;
    db : Tpch.Datagen.db;
  }

  (** A TPC-H appliance: deterministic generated data at scale factor [sf]
      loaded onto [node_count] simulated nodes, with global statistics
      computed the PDW way — per-node local statistics merged into the
      shell database (paper §2.2). [engine] selects the per-node executor
      (default [Row]); shard contents, statistics, and the simulated clock
      are identical either way. *)
  val tpch :
    ?node_count:int -> ?sf:float -> ?engine:Engine.Rset.engine -> unit -> t
end
