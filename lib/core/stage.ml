type ('a, 'b) t = {
  name : string;
  body : Obs.t -> 'a -> 'b;
}

let v ~name body = { name; body }

let name s = s.name

let run obs s x = Obs.with_span obs s.name (fun () -> s.body obs x)

let ( >>> ) a b =
  { name = Printf.sprintf "%s>>>%s" a.name b.name;
    body = (fun obs x -> run obs b (run obs a x)) }
