(** A bounded, mutex-guarded LRU cache for compiled plans, keyed by a
    canonical fingerprint of the normalized logical tree plus every
    optimizer-relevant knob.

    The paper's appliance re-optimizes every statement from scratch; under
    a repeated-query stream (the north-star workload) that wastes the
    dominant share of compile time on exact repeats. The cache lets
    {!Opdw.optimize} skip the serial MEMO exploration, XML interchange,
    PDW enumeration, DSQL generation and baseline parallelization
    entirely when an identical (tree, knobs, statistics) triple was
    compiled before.

    {b Fingerprint / invalidation rules} (also DESIGN.md):
    - the canonical render of the normalized algebra tree with explicit
      registry column ids — equal renders mean the downstream optimizers
      receive structurally identical input;
    - the appliance topology (node count) and the serial/PDW/baseline
      option records, including λ constants and §3.1 hints — any knob
      that steers plan choice re-keys the entry;
    - the shell database's [stats_version], bumped on every
      [set_stats]/[add_table] — statistics updates invalidate by missing,
      not by flushing.

    Keys are the full canonical payload (no hashing), so false hits are
    impossible by construction. All operations take an internal mutex, so
    one cache may serve concurrent domains. *)

type 'a entry = { mutable last_use : int; value : 'a }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable evictions_invalid : int;
  mutable evictions_degraded : int;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  evictions_invalid : int;
      (** entries evicted because their plan was rejected downstream
          (by {!Check} or the appliance), not for capacity *)
  evictions_degraded : int;
      (** compilations refused admission (and any same-key entry dropped)
          because governor pressure degraded their plan — an
          anytime/fallback plan must never be served from the cache *)
}

let create ?(capacity = 128) () =
  { capacity = max 1 capacity; table = Hashtbl.create 64; mutex = Mutex.create ();
    tick = 0; hits = 0; misses = 0; evictions = 0; evictions_invalid = 0;
    evictions_degraded = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(** [find t key] returns the cached value and marks it most recently
    used; counts a hit or a miss. *)
let find t key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.tick <- t.tick + 1;
    e.last_use <- t.tick;
    t.hits <- t.hits + 1;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* capacity is small (default 128): a linear scan for the LRU victim keeps
   the structure a plain hashtable instead of an intrusive list *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
       match !victim with
       | Some (_, lu) when lu <= e.last_use -> ()
       | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1;
    true
  | None -> false

(** [add t key v] inserts (or refreshes) [key]; returns [true] when an
    older entry was evicted to make room. *)
let add t key v =
  with_lock t @@ fun () ->
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.last_use <- t.tick;
    Hashtbl.replace t.table key { last_use = t.tick; value = v };
    false
  | None ->
    let evicted = if Hashtbl.length t.table >= t.capacity then evict_lru t else false in
    Hashtbl.replace t.table key { last_use = t.tick; value = v };
    evicted

(** [remove_invalid t key] drops a poisoned entry — one whose cached plan
    was later rejected by the {!Check} analyzer or refused by the
    appliance — so the next lookup recompiles instead of re-serving it.
    Returns [true] when the key was present. *)
let remove_invalid t key =
  with_lock t @@ fun () ->
  if Hashtbl.mem t.table key then begin
    Hashtbl.remove t.table key;
    t.evictions_invalid <- t.evictions_invalid + 1;
    true
  end
  else false

(** [note_degraded t key] records that the compilation filed under [key]
    came back degraded (anytime/fallback): the result is not admitted, and
    any entry already under the key is dropped (it may predate the
    pressure but the safe move is to recompile). Returns [true] when an
    entry was actually removed. *)
let note_degraded t key =
  with_lock t @@ fun () ->
  t.evictions_degraded <- t.evictions_degraded + 1;
  if Hashtbl.mem t.table key then begin
    Hashtbl.remove t.table key;
    true
  end
  else false

let stats t =
  with_lock t @@ fun () ->
  { size = Hashtbl.length t.table; capacity = t.capacity; hits = t.hits;
    misses = t.misses; evictions = t.evictions;
    evictions_invalid = t.evictions_invalid;
    evictions_degraded = t.evictions_degraded }

(** One-line render of a {!stats} snapshot (for [run --profile]). *)
let stats_to_string s =
  Printf.sprintf
    "size=%d/%d hits=%d misses=%d evictions=%d (lru=%d invalid=%d degraded=%d)"
    s.size s.capacity s.hits s.misses
    (s.evictions + s.evictions_invalid + s.evictions_degraded)
    s.evictions s.evictions_invalid s.evictions_degraded

let clear t =
  with_lock t @@ fun () ->
  Hashtbl.reset t.table;
  t.tick <- 0

(* -- canonical fingerprints -- *)

let col c = "#" ^ string_of_int c

let expr e = Algebra.Expr.to_string_with col e

(* a canonical, collision-free render of the normalized tree: operator
   constructor + every payload with explicit column ids, prefix form *)
let rec tree (t : Algebra.Relop.t) : string =
  let open Algebra in
  let head =
    match t.Relop.op with
    | Relop.Get { table; alias; cols } ->
      Printf.sprintf "Get(%s;%s;%s)" (String.lowercase_ascii table)
        (String.lowercase_ascii alias)
        (String.concat "," (List.map col (Array.to_list cols)))
    | Relop.Select pred -> Printf.sprintf "Select(%s)" (expr pred)
    | Relop.Project defs ->
      Printf.sprintf "Project(%s)"
        (String.concat ","
           (List.map (fun (c, e) -> col c ^ ":=" ^ expr e) defs))
    | Relop.Join { kind = _; pred } ->
      (* op_name spells the join kind (Join/SemiJoin/CrossJoin/...) *)
      Printf.sprintf "%s(%s)" (Relop.op_name t.Relop.op) (expr pred)
    | Relop.Group_by { keys; aggs } ->
      Printf.sprintf "GroupBy(%s;%s)"
        (String.concat "," (List.map col keys))
        (String.concat ","
           (List.map
              (fun (a : Expr.agg_def) ->
                 col a.Expr.agg_out ^ ":=" ^ Expr.agg_to_string_with col a)
              aggs))
    | Relop.Sort { keys; limit } ->
      Printf.sprintf "Sort(%s;%s)"
        (String.concat ","
           (List.map
              (fun (k : Relop.sort_key) ->
                 expr k.Relop.key ^ (if k.Relop.desc then "-" else "+"))
              keys))
        (match limit with Some n -> string_of_int n | None -> "")
    | Relop.Union_all -> "UnionAll"
    | Relop.Empty cols ->
      Printf.sprintf "Empty(%s)" (String.concat "," (List.map col cols))
  in
  match t.Relop.children with
  | [] -> head
  | cs -> Printf.sprintf "%s[%s]" head (String.concat ";" (List.map tree cs))

let lambdas (l : Dms.Cost.lambdas) =
  Printf.sprintf "%h,%h,%h,%h,%h" l.Dms.Cost.l_reader_direct
    l.Dms.Cost.l_reader_hash l.Dms.Cost.l_network l.Dms.Cost.l_writer
    l.Dms.Cost.l_blkcpy

let hint (t, h) =
  Printf.sprintf "%s=%s" (String.lowercase_ascii t)
    (match h with `Broadcast -> "B" | `Shuffle -> "S")

(** The cache key for one optimization request: canonical tree render plus
    every knob the pipeline's plan choice depends on. [live_nodes] is the
    appliance's surviving-node set (original node ids) — after a node loss
    the topology differs even at an equal node count's worth of knobs, so
    plans compiled for the old topology must miss, not hit (v2 of the
    key). Defaults to all of [shell]'s nodes alive. [governor] carries the
    statement deadline / memo-budget knobs (v3): a plan compiled under a
    tight budget explores a different space than a full-budget one, so the
    two must never alias — even though degraded results are additionally
    refused admission outright (see {!note_degraded}). v4 adds the PDW
    [fold_empty] analysis knob: a plan compiled with contradiction-driven
    folding off must not be served when folding is on (or vice versa) —
    the two agree only when no group is proven empty, which the
    fingerprint cannot know. v5 adds the feedback [calibration] epoch
    (default 0): feedback-driven calibration re-fits λs and refines
    histograms between runs of the {e same} catalog object graph, and the
    epoch re-keys every statement after a calibration pass even when a
    statement's plan happens to be insensitive to the refreshed inputs —
    the plan store compares observed costs per fingerprint, so plans from
    different calibration states must never alias. v6 adds the [topology]
    epoch (default 0): an online topology move (grow / re-key) rebuilds
    the shell catalog, and the rebuilt shell's [stats_version] restarts
    near the table count — without the epoch, a plan compiled against the
    pre-move layout could alias a post-move fingerprint at an equal node
    count (a re-key changes no knob the key otherwise carries). The
    appliance's replan epoch is monotone across decommissions and phased
    moves, so it is the natural value to pass. *)
let fingerprint ?live_nodes ?(governor = Governor.no_limits) ?(calibration = 0)
    ?(topology = 0)
    ~(shell : Catalog.Shell_db.t)
    ~(serial : Serialopt.Optimizer.options) ~(pdw : Pdwopt.Enumerate.opts)
    ~(baseline : Baseline.opts) ~(via_xml : bool) ~(seed_collocated : bool)
    (normalized : Algebra.Relop.t) : string =
  let live =
    match live_nodes with
    | Some l -> l
    | None -> List.init (Catalog.Shell_db.node_count shell) Fun.id
  in
  let fopt = function None -> "-" | Some f -> Printf.sprintf "%h" f in
  let iopt = function None -> "-" | Some i -> string_of_int i in
  String.concat "|"
    [ Printf.sprintf "v6;nodes=%d;live=%s;stats=%d;cal=%d;topo=%d"
        (Catalog.Shell_db.node_count shell)
        (String.concat "," (List.map string_of_int live))
        (Catalog.Shell_db.stats_version shell)
        calibration topology;
      Printf.sprintf "serial=%d,%b,%b" serial.Serialopt.Optimizer.task_budget
        serial.Serialopt.Optimizer.enable_merge_join
        serial.Serialopt.Optimizer.enable_stream_agg;
      Printf.sprintf "pdw=%d,%b,%b,%d,%b,[%s],%s" pdw.Pdwopt.Enumerate.nodes
        pdw.Pdwopt.Enumerate.serial_tiebreak pdw.Pdwopt.Enumerate.prune
        pdw.Pdwopt.Enumerate.max_options_per_group
        pdw.Pdwopt.Enumerate.fold_empty
        (String.concat ";" (List.map hint pdw.Pdwopt.Enumerate.hints))
        (lambdas pdw.Pdwopt.Enumerate.lambdas);
      Printf.sprintf "base=%d,%s" baseline.Baseline.nodes
        (lambdas baseline.Baseline.lambdas);
      Printf.sprintf "xml=%b;seed=%b" via_xml seed_collocated;
      Printf.sprintf "gov=%s,%s,%s"
        (fopt governor.Governor.deadline)
        (fopt governor.Governor.sim_deadline)
        (iopt governor.Governor.max_memo_groups);
      tree normalized ]
