(** opdw — an OCaml reproduction of the Microsoft SQL Server PDW query
    optimizer (SIGMOD 2012).

    This façade wires the full pipeline of the paper's Fig. 2:

    {v
    SQL text --(PDW parser)--> AST --(algebrizer + simplification)--> logical tree
      --(serial Cascades optimizer)--> MEMO --(XML export/import)-->
      --(PDW bottom-up optimizer + DMS cost model)--> parallel plan
      --(DSQL generation)--> DSQL steps --(appliance)--> results
    v}

    {b Quickstart}:
    {[
      let shell = Catalog.Shell_db.create ~node_count:8 in
      Tpch.Schema.install shell;
      (* ... load stats, see Opdw.Workload ... *)
      let r = Opdw.optimize shell "SELECT ... " in
      print_endline (Opdw.explain r)
    ]} *)

module Stage = Stage
module Plancache = Plancache

type options = {
  serial : Serialopt.Optimizer.options;
  pdw : Pdwopt.Enumerate.opts;
  baseline : Baseline.opts;
  via_xml : bool;
      (** ship the MEMO through its XML encoding, as the real system does *)
  seed_collocated : bool;
      (** §3.1: seed the MEMO with distribution-aware join orders, useful
          under a small exploration budget *)
}

let default_options ~node_count = {
  serial = Serialopt.Optimizer.default_options;
  pdw = { Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.nodes = node_count };
  baseline = { Baseline.default_opts with Baseline.nodes = node_count };
  via_xml = true;
  seed_collocated = false;
}

type result = {
  query : Sqlfront.Ast.query;
  algebrized : Algebra.Algebrizer.result;
  normalized : Algebra.Relop.t;
  serial : Serialopt.Optimizer.result;
  memo_xml : string option;
  memo : Memo.t;                       (** the memo the PDW side optimized *)
  pdw : Pdwopt.Optimizer.result;
  dsql : Dsql.Generate.plan;
  baseline_plan : Pdwopt.Pplan.t option;  (** parallelized best serial plan *)
  fingerprint : string option;
      (** the plan-cache key this result was filed under (when a cache was
          given) — {!run} uses it to evict the entry if the appliance
          rejects the plan *)
}

(** Everything downstream of normalization — the unit the plan cache
    memoizes. Registry column ids are deterministic for a given SQL text
    and shell, so a fingerprint hit may splice a previously compiled tail
    under a freshly parsed front half. *)
type compiled_tail = {
  c_serial : Serialopt.Optimizer.result;
  c_memo_xml : string option;
  c_memo : Memo.t;
  c_pdw : Pdwopt.Optimizer.result;
  c_dsql : Dsql.Generate.plan;
  c_baseline : Pdwopt.Pplan.t option;
}

type cache = compiled_tail Plancache.t

let cache ?capacity () : cache = Plancache.create ?capacity ()

(* §3.1 seeding: produce an alternative join tree that prefers collocated
   joins first (tables hash-partitioned compatibly joined before others).
   Implemented as a greedy re-bracketing of the normalized inner-join region
   rooted at the top of the tree. *)
let collocated_seed (reg : Algebra.Registry.t) (shell : Catalog.Shell_db.t)
    (t : Algebra.Relop.t) : Algebra.Relop.t option =
  ignore reg;
  ignore shell;
  (* decompose the top inner-join region into leaves + conjuncts *)
  let open Algebra in
  let rec leaves (n : Relop.t) =
    match n.Relop.op, n.Relop.children with
    | Relop.Join { kind = Relop.Inner | Relop.Cross; pred }, [ l; r ] ->
      let ll, lc = leaves l and rl, rc = leaves r in
      (ll @ rl, Expr.conjuncts pred @ lc @ rc)
    | _ -> ([ n ], [])
  in
  let rec rewrap (n : Relop.t) f =
    (* rebuild the unary chain above the join region *)
    match n.Relop.op, n.Relop.children with
    | Relop.Join { kind = Relop.Inner | Relop.Cross; _ }, _ -> f n
    | _, [ c ] -> { n with Relop.children = [ rewrap c f ] }
    | _, _ -> n
  in
  let changed = ref false in
  let rebuilt =
    rewrap t (fun join_root ->
        let ls, conjs = leaves join_root in
        if List.length ls < 3 then join_root
        else begin
          (* greedy: start from the largest leaf set ordering where leaves
             sharing distribution columns in an equality are adjacent *)
          let dist_cols (n : Relop.t) =
            let rec base n =
              match n.Relop.op, n.Relop.children with
              | Relop.Get { table; cols; _ }, _ ->
                (match Catalog.Shell_db.find shell table with
                 | Some tbl ->
                   (match tbl.Catalog.Shell_db.dist with
                    | Catalog.Distribution.Hash_partitioned names ->
                      List.filter_map
                        (fun nm ->
                           match Catalog.Schema.find_col tbl.Catalog.Shell_db.schema nm with
                           | Some i -> Some cols.(i)
                           | None -> None)
                        names
                    | Catalog.Distribution.Replicated -> [])
                 | None -> [])
              | _, [ c ] -> base c
              | _, _ -> []
            in
            base n
          in
          let equi = List.filter_map Expr.as_col_eq conjs in
          let collocatable a b =
            let da = dist_cols a and db = dist_cols b in
            List.exists
              (fun ca ->
                 List.exists
                   (fun cb ->
                      List.exists (fun (x, y) -> (x = ca && y = cb) || (x = cb && y = ca)) equi)
                   db)
              da
          in
          (* pick a collocatable pair to join first, then fold the rest in *)
          let rec pick_pair = function
            | [] -> None
            | a :: rest ->
              (match List.find_opt (collocatable a) rest with
               | Some b -> Some (a, b, List.filter (fun x -> x != b) rest)
               | None -> pick_pair rest |> Option.map (fun (x, y, r) -> (x, y, a :: r)))
          in
          match pick_pair ls with
          | None -> join_root
          | Some (a, b, rest) ->
            changed := true;
            let placed = ref [] in
            let join_with acc leaf =
              let cols =
                Algebra.Registry.Col_set.union (Relop.output_col_set acc)
                  (Relop.output_col_set leaf)
              in
              let usable, remaining =
                List.partition
                  (fun c ->
                     Algebra.Registry.Col_set.subset (Expr.cols c) cols
                     && not (List.memq c !placed))
                  conjs
              in
              ignore remaining;
              placed := usable @ !placed;
              let pred =
                match usable with
                | [] -> Expr.Lit (Catalog.Value.Bool true)
                | _ -> Expr.conjoin usable
              in
              Relop.join
                (if usable = [] then Relop.Cross else Relop.Inner)
                pred acc leaf
            in
            let first = join_with a b in
            let tree = List.fold_left join_with first rest in
            (* any leftover conjuncts become a residual filter *)
            let leftovers = List.filter (fun c -> not (List.memq c !placed)) conjs in
            (match Expr.conjoin_opt leftovers with
             | Some p -> Relop.select p tree
             | None -> tree)
        end)
  in
  if !changed then Some rebuilt else None

(* -- the pipeline as explicit, uniformly typed stages (Fig. 2) --

   Each stage is a [Stage.t]; running one opens an [Obs] span named after
   the stage, so [explain --profile] (and the bench harness) see a uniform
   per-stage span tree with the layer-specific counters reported inside. *)

(** [parse]: SQL text -> AST (PDW parser). *)
let parse_stage : (string, Sqlfront.Ast.query) Stage.t =
  Stage.v ~name:"parse" (fun obs sql -> Sqlfront.Parser.parse ~obs sql)

(** [algebrize]: AST -> named logical tree (binding against the shell). *)
let algebrize_stage shell : (Sqlfront.Ast.query, Algebra.Algebrizer.result) Stage.t =
  Stage.v ~name:"algebrize" (fun _obs q -> Algebra.Algebrizer.algebrize shell q)

(** [normalize]: logical tree -> simplified logical tree (rule hit counts
    reported per rewrite). *)
let normalize_stage reg shell : (Algebra.Relop.t, Algebra.Relop.t) Stage.t =
  Stage.v ~name:"normalize" (fun obs t -> Algebra.Normalize.normalize ~obs reg shell t)

(** [serial]: logical tree -> explored MEMO + best serial plan. *)
let serial_stage opts seeds reg shell
  : (Algebra.Relop.t, Serialopt.Optimizer.result) Stage.t =
  Stage.v ~name:"serial_optimize"
    (fun obs t -> Serialopt.Optimizer.optimize ~obs ~opts ~seeds reg shell t)

(** [memo_xml]: MEMO -> (XML encoding, re-imported MEMO) — the paper's
    interchange between the SQL Server process and the PDW optimizer. *)
let memo_xml_stage shell : (Memo.t, string option * Memo.t) Stage.t =
  Stage.v ~name:"memo_xml" (fun obs m ->
      let xml = Memo.Memo_xml.export_string ~obs m in
      (Some xml, Memo.Memo_xml.import_string ~obs shell xml))

(** [pdw]: imported MEMO -> distributed plan (Fig. 4, steps 01-09). *)
let pdw_stage opts : (Memo.t, Pdwopt.Optimizer.result) Stage.t =
  Stage.v ~name:"pdw_optimize" (fun obs m -> Pdwopt.Optimizer.optimize ~obs ~opts m)

(** [dsql]: distributed plan -> DSQL steps (Fig. 4, steps 10-11). *)
let dsql_stage reg : (Pdwopt.Pplan.t, Dsql.Generate.plan) Stage.t =
  Stage.v ~name:"dsql_generate" (fun obs p -> Dsql.Generate.generate ~obs reg p)

(** [check]: distributed plan + DSQL steps -> () or {!Check.Invalid}. The
    static analyzer re-derives every invariant the optimizer is supposed
    to have established (distribution soundness, movement applicability,
    cost accounting, DSQL well-formedness) and refuses the plan on any
    violation. *)
let check_stage shell (pdw_opts : Pdwopt.Enumerate.opts) reg
  : (Pdwopt.Pplan.t * Dsql.Generate.plan, unit) Stage.t =
  Stage.v ~name:"check" (fun obs (plan, dsql) ->
      let cost =
        { Check.nodes = pdw_opts.Pdwopt.Enumerate.nodes;
          lambdas = pdw_opts.Pdwopt.Enumerate.lambdas;
          reg }
      in
      match Check.validate ~obs ~cost ~dsql ~shell plan with
      | [] -> ()
      | vs -> raise (Check.Invalid vs))

(** [baseline]: best serial plan -> greedily parallelized plan (§3.2). *)
let baseline_stage opts reg shell
  : (Serialopt.Plan.t option, Pdwopt.Pplan.t option) Stage.t =
  Stage.v ~name:"baseline_parallelize" (fun _obs best ->
      match best with
      | Some best ->
        (try Some (Baseline.parallelize ~opts reg shell best)
         with Baseline.Cannot_parallelize _ -> None)
      | None -> None)

(** Run the full optimization pipeline on a SQL string. Pass an enabled
    [obs] context to collect the per-stage span tree and counters; pass a
    [cache] to skip serial + PDW optimization on repeated queries. *)
let optimize ?(obs = Obs.null) ?(options : options option) ?(cache : cache option)
    ?(check = true) ?(live_nodes : int list option)
    (shell : Catalog.Shell_db.t) (sql : string) : result =
  let opts =
    match options with
    | Some o -> o
    | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
  in
  Obs.with_span obs "pipeline" @@ fun () ->
  let query = Stage.run obs parse_stage sql in
  (* §3.1 query hints adjust the optimization strategy *)
  let opts =
    let force_order =
      List.mem Sqlfront.Ast.Hint_force_order query.Sqlfront.Ast.hints
    in
    let dist_hints =
      List.filter_map
        (fun h ->
           match h with
           | Sqlfront.Ast.Hint_broadcast t -> Some (t, `Broadcast)
           | Sqlfront.Ast.Hint_shuffle t -> Some (t, `Shuffle)
           | Sqlfront.Ast.Hint_force_order -> None)
        query.Sqlfront.Ast.hints
    in
    { opts with
      serial =
        (if force_order then
           { opts.serial with Serialopt.Optimizer.task_budget = 0 }
         else opts.serial);
      pdw = { opts.pdw with Pdwopt.Enumerate.hints = dist_hints } }
  in
  let algebrized = Stage.run obs (algebrize_stage shell) query in
  let reg = algebrized.Algebra.Algebrizer.reg in
  let normalized =
    Stage.run obs (normalize_stage reg shell) algebrized.Algebra.Algebrizer.tree
  in
  (* everything below normalization is a pure function of (normalized tree,
     knobs, statistics) — exactly what the plan-cache fingerprint keys on *)
  let compile_tail () : compiled_tail =
    let seeds =
      if opts.seed_collocated then
        match collocated_seed reg shell normalized with
        | Some s -> [ s ]
        | None -> []
      else []
    in
    let serial = Stage.run obs (serial_stage opts.serial seeds reg shell) normalized in
    let memo_xml, memo =
      if opts.via_xml then
        Stage.run obs (memo_xml_stage shell) serial.Serialopt.Optimizer.memo
      else (None, serial.Serialopt.Optimizer.memo)
    in
    let pdw = Stage.run obs (pdw_stage opts.pdw) memo in
    let dsql = Stage.run obs (dsql_stage memo.Memo.reg) pdw.Pdwopt.Optimizer.plan in
    if check then
      Stage.run obs
        (check_stage shell opts.pdw memo.Memo.reg)
        (pdw.Pdwopt.Optimizer.plan, dsql);
    let baseline_plan =
      Stage.run obs (baseline_stage opts.baseline reg shell)
        serial.Serialopt.Optimizer.best
    in
    { c_serial = serial; c_memo_xml = memo_xml; c_memo = memo; c_pdw = pdw;
      c_dsql = dsql; c_baseline = baseline_plan }
  in
  let tail, fingerprint =
    match cache with
    | None -> (compile_tail (), None)
    | Some c ->
      let fp =
        Obs.with_span obs "plancache" @@ fun () ->
        Plancache.fingerprint ?live_nodes ~shell ~serial:opts.serial
          ~pdw:opts.pdw ~baseline:opts.baseline ~via_xml:opts.via_xml
          ~seed_collocated:opts.seed_collocated normalized
      in
      (match Plancache.find c fp with
       | Some tail ->
         Obs.add obs "plancache.hit" 1;
         (tail, Some fp)
       | None ->
         Obs.add obs "plancache.miss" 1;
         (* [compile_tail] runs the check stage before this point, so an
            invalid plan raises and is never admitted to the cache *)
         let tail = compile_tail () in
         if Plancache.add c fp tail then Obs.add obs "plancache.evict" 1;
         (tail, Some fp))
  in
  { query; algebrized; normalized; serial = tail.c_serial;
    memo_xml = tail.c_memo_xml; memo = tail.c_memo; pdw = tail.c_pdw;
    dsql = tail.c_dsql; baseline_plan = tail.c_baseline; fingerprint }

(** The chosen distributed plan. *)
let plan r = r.pdw.Pdwopt.Optimizer.plan

(** Pretty explanation: parallel plan + DSQL steps. *)
let explain (r : result) : string =
  let reg = r.memo.Memo.reg in
  Printf.sprintf "-- parallel plan --\n%s\n\n-- DSQL plan --\n%s"
    (Pdwopt.Pplan.to_string reg (plan r))
    (Dsql.Generate.to_string r.dsql)

(** Execute the chosen plan on an appliance; returns the client result.
    When [obs] is given it is attached to the appliance for the duration,
    so per-DMS-op and per-node executor counters land under an [execute]
    span. When [cache] is given and the appliance's {!Check} gate rejects
    the plan, the plan's cache entry is evicted before {!Check.Invalid}
    propagates — a poisoned entry must not be served on the next hit. *)
let run ?(obs = Obs.null) ?(cache : cache option) (app : Engine.Appliance.t)
    (r : result) : Engine.Local.rset =
  Engine.Appliance.set_obs app obs;
  Fun.protect
    ~finally:(fun () -> Engine.Appliance.set_obs app Obs.null)
    (fun () ->
       try Obs.with_span obs "execute" (fun () -> Engine.Appliance.run_pplan app (plan r))
       with Check.Invalid _ as e ->
         (match cache, r.fingerprint with
          | Some c, Some fp ->
            if Plancache.remove_invalid c fp then
              Obs.add obs "plancache.evictions_invalid" 1
          | _ -> ());
         raise e)

(** Execute the baseline (parallelized best serial) plan. *)
let run_baseline (app : Engine.Appliance.t) (r : result) : Engine.Local.rset option =
  Option.map (Engine.Appliance.run_pplan app) r.baseline_plan

(** Single-node reference execution of the best serial plan (oracle). *)
let run_reference (app : Engine.Appliance.t) (r : result) : Engine.Local.rset option =
  Option.map (Engine.Appliance.run_reference app) r.serial.Serialopt.Optimizer.best

(** The query's output columns (display name, column id). *)
let output_columns (r : result) = r.algebrized.Algebra.Algebrizer.output

(* alias for use inside [Chaos], whose own [run] shadows the name *)
let execute_result = run

module Chaos = struct
  (** Fault-tolerant statement driver: the optimize→check→execute loop
      with graceful degradation. Statements run under the context's fault
      plan; recoverable faults are retried inside the engine, and a
      {!Fault.Node_crash} escalates here — the dead node is
      decommissioned, the statement is re-optimized against the
      (N-1)-node shell catalog (the plan-cache fingerprint carries the
      live-node set, so stale-topology entries cannot hit) and
      re-executed. Subsequent statements keep running on the survivors. *)

  type t = {
    mutable shell : Catalog.Shell_db.t;
    mutable app : Engine.Appliance.t;
    mutable options : options;
    cache : cache option;
    fault : Fault.plan;
    max_replans : int;
  }

  let create ?cache ?(max_replans = 8) ?options ~(fault : Fault.plan)
      (shell : Catalog.Shell_db.t) (app : Engine.Appliance.t) : t =
    let options =
      match options with
      | Some o -> o
      | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
    in
    { shell; app; options; cache; fault; max_replans }

  let app t = t.app
  let shell t = t.shell
  let nodes t = t.app.Engine.Appliance.nodes

  let run ?(obs = Obs.null) (t : t) (sql : string) : result * Engine.Local.rset =
    let rec go replans =
      Engine.Appliance.set_fault t.app t.fault;
      let live = Engine.Appliance.live_nodes t.app in
      let r = optimize ~obs ~options:t.options ?cache:t.cache ~live_nodes:live t.shell sql in
      match execute_result ~obs ?cache:t.cache t.app r with
      | rows -> (r, rows)
      | exception Fault.Injected ({ Fault.site = Fault.Node_crash; _ } as failure) ->
        if nodes t <= 1 || replans >= t.max_replans then
          raise (Fault.Exhausted { failure; attempts = replans + 1 });
        Obs.add obs "fault.replan_statements" 1;
        let app' =
          Obs.with_span obs "fault.replan" @@ fun () ->
          (* attach obs for the decommission itself so its fault.replans /
             recovery-cost counters land under this span *)
          Engine.Appliance.set_obs t.app obs;
          let app' = Engine.Appliance.decommission t.app ~node:failure.Fault.node in
          Engine.Appliance.set_obs t.app Obs.null;
          Engine.Appliance.set_obs app' Obs.null;
          app'
        in
        t.app <- app';
        t.shell <- app'.Engine.Appliance.shell;
        let n = app'.Engine.Appliance.nodes in
        t.options <-
          { t.options with
            pdw = { t.options.pdw with Pdwopt.Enumerate.nodes = n };
            baseline = { t.options.baseline with Baseline.nodes = n } };
        go (replans + 1)
    in
    go 0
end

module Workload = struct
  (** Convenience setup: a TPC-H appliance with generated data and global
      statistics computed the PDW way — local per-node statistics merged
      into global shell statistics (paper §2.2). *)

  type t = {
    shell : Catalog.Shell_db.t;
    app : Engine.Appliance.t;
    db : Tpch.Datagen.db;
  }

  let tpch ?(node_count = 8) ?(sf = 0.01) () : t =
    let shell = Catalog.Shell_db.create ~node_count in
    Tpch.Schema.install shell;
    let db = Tpch.Datagen.generate sf in
    let app = Engine.Appliance.create shell in
    List.iter
      (fun (schema, _) ->
         let name = schema.Catalog.Schema.name in
         Engine.Appliance.load_table app name (Tpch.Datagen.rows db name))
      Tpch.Schema.layout;
    (* global statistics = merge of per-node local statistics (§2.2) *)
    List.iter
      (fun (schema, dist) ->
         let name = schema.Catalog.Schema.name in
         let stats =
           match dist with
           | Catalog.Distribution.Replicated ->
             (* every node holds a full copy; one local computation suffices *)
             Catalog.Tbl_stats.of_rows schema (Engine.Appliance.node_table app 0 name)
           | Catalog.Distribution.Hash_partitioned _ ->
             Catalog.Tbl_stats.merge
               (List.init node_count (fun node ->
                    Catalog.Tbl_stats.of_rows schema
                      (Engine.Appliance.node_table app node name)))
         in
         Catalog.Shell_db.set_stats shell name stats)
      Tpch.Schema.layout;
    { shell; app; db }
end
