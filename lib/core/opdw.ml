(** opdw — an OCaml reproduction of the Microsoft SQL Server PDW query
    optimizer (SIGMOD 2012).

    This façade wires the full pipeline of the paper's Fig. 2:

    {v
    SQL text --(PDW parser)--> AST --(algebrizer + simplification)--> logical tree
      --(serial Cascades optimizer)--> MEMO --(XML export/import)-->
      --(PDW bottom-up optimizer + DMS cost model)--> parallel plan
      --(DSQL generation)--> DSQL steps --(appliance)--> results
    v}

    {b Quickstart}:
    {[
      let shell = Catalog.Shell_db.create ~node_count:8 in
      Tpch.Schema.install shell;
      (* ... load stats, see Opdw.Workload ... *)
      let r = Opdw.optimize shell "SELECT ... " in
      print_endline (Opdw.explain r)
    ]} *)

module Stage = Stage
module Plancache = Plancache

(* the feedback library (log / misses / lambda-fit / plan store), aliased
   so the engine-facing [Feedback] driver module below can re-export it
   under its own name *)
module Fbk = Feedback

type options = {
  serial : Serialopt.Optimizer.options;
  pdw : Pdwopt.Enumerate.opts;
  baseline : Baseline.opts;
  via_xml : bool;
      (** ship the MEMO through its XML encoding, as the real system does *)
  seed_collocated : bool;
      (** §3.1: seed the MEMO with distribution-aware join orders, useful
          under a small exploration budget *)
  governor : Governor.limits;
      (** statement deadline / memo-size budget; {!Governor.no_limits} by
          default. Part of the plan-cache fingerprint (v3). *)
}

let default_options ~node_count = {
  serial = Serialopt.Optimizer.default_options;
  pdw = { Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.nodes = node_count };
  baseline = { Baseline.default_opts with Baseline.nodes = node_count };
  via_xml = true;
  seed_collocated = false;
  governor = Governor.no_limits;
}

(** How a returned plan was degraded by governor pressure (the ladder:
    cached → full → [Anytime] → [Fallback] → rejected). *)
type degradation =
  | Anytime
      (** serial exploration was cut short (deadline/cancel/memo budget);
          the plan is the best found in the truncated search space *)
  | Fallback
      (** the PDW enumeration itself was interrupted; the plan is the
          greedily parallelized best serial plan ({!Baseline}) *)

let degradation_to_string = function
  | Anytime -> "anytime"
  | Fallback -> "fallback"

type result = {
  query : Sqlfront.Ast.query;
  algebrized : Algebra.Algebrizer.result;
  normalized : Algebra.Relop.t;
  serial : Serialopt.Optimizer.result;
  memo_xml : string option;
  memo : Memo.t;                       (** the memo the PDW side optimized *)
  pdw : Pdwopt.Optimizer.result;
  dsql : Dsql.Generate.plan;
  baseline_plan : Pdwopt.Pplan.t option;  (** parallelized best serial plan *)
  fingerprint : string option;
      (** the plan-cache key this result was filed under (when a cache was
          given) — {!run} uses it to evict the entry if the appliance
          rejects the plan *)
  degraded : degradation option;
      (** [Some _] when governor pressure truncated optimization; degraded
          plans still pass the {!Check} analyzer and are never cached *)
}

(** Everything downstream of normalization — the unit the plan cache
    memoizes. Registry column ids are deterministic for a given SQL text
    and shell, so a fingerprint hit may splice a previously compiled tail
    under a freshly parsed front half. *)
type compiled_tail = {
  c_serial : Serialopt.Optimizer.result;
  c_memo_xml : string option;
  c_memo : Memo.t;
  c_pdw : Pdwopt.Optimizer.result;
  c_dsql : Dsql.Generate.plan;
  c_baseline : Pdwopt.Pplan.t option;
}

type cache = compiled_tail Plancache.t

let cache ?capacity () : cache = Plancache.create ?capacity ()

(* §3.1 seeding: produce an alternative join tree that prefers collocated
   joins first (tables hash-partitioned compatibly joined before others).
   Implemented as a greedy re-bracketing of the normalized inner-join region
   rooted at the top of the tree. *)
let collocated_seed (reg : Algebra.Registry.t) (shell : Catalog.Shell_db.t)
    (t : Algebra.Relop.t) : Algebra.Relop.t option =
  ignore reg;
  ignore shell;
  (* decompose the top inner-join region into leaves + conjuncts *)
  let open Algebra in
  let rec leaves (n : Relop.t) =
    match n.Relop.op, n.Relop.children with
    | Relop.Join { kind = Relop.Inner | Relop.Cross; pred }, [ l; r ] ->
      let ll, lc = leaves l and rl, rc = leaves r in
      (ll @ rl, Expr.conjuncts pred @ lc @ rc)
    | _ -> ([ n ], [])
  in
  let rec rewrap (n : Relop.t) f =
    (* rebuild the unary chain above the join region *)
    match n.Relop.op, n.Relop.children with
    | Relop.Join { kind = Relop.Inner | Relop.Cross; _ }, _ -> f n
    | _, [ c ] -> { n with Relop.children = [ rewrap c f ] }
    | _, _ -> n
  in
  let changed = ref false in
  let rebuilt =
    rewrap t (fun join_root ->
        let ls, conjs = leaves join_root in
        if List.length ls < 3 then join_root
        else begin
          (* greedy: start from the largest leaf set ordering where leaves
             sharing distribution columns in an equality are adjacent *)
          let dist_cols (n : Relop.t) =
            let rec base n =
              match n.Relop.op, n.Relop.children with
              | Relop.Get { table; cols; _ }, _ ->
                (match Catalog.Shell_db.find shell table with
                 | Some tbl ->
                   (match tbl.Catalog.Shell_db.dist with
                    | Catalog.Distribution.Hash_partitioned names ->
                      List.filter_map
                        (fun nm ->
                           match Catalog.Schema.find_col tbl.Catalog.Shell_db.schema nm with
                           | Some i -> Some cols.(i)
                           | None -> None)
                        names
                    | Catalog.Distribution.Replicated -> [])
                 | None -> [])
              | _, [ c ] -> base c
              | _, _ -> []
            in
            base n
          in
          let equi = List.filter_map Expr.as_col_eq conjs in
          let collocatable a b =
            let da = dist_cols a and db = dist_cols b in
            List.exists
              (fun ca ->
                 List.exists
                   (fun cb ->
                      List.exists (fun (x, y) -> (x = ca && y = cb) || (x = cb && y = ca)) equi)
                   db)
              da
          in
          (* pick a collocatable pair to join first, then fold the rest in *)
          let rec pick_pair = function
            | [] -> None
            | a :: rest ->
              (match List.find_opt (collocatable a) rest with
               | Some b -> Some (a, b, List.filter (fun x -> x != b) rest)
               | None -> pick_pair rest |> Option.map (fun (x, y, r) -> (x, y, a :: r)))
          in
          match pick_pair ls with
          | None -> join_root
          | Some (a, b, rest) ->
            changed := true;
            let placed = ref [] in
            let join_with acc leaf =
              let cols =
                Algebra.Registry.Col_set.union (Relop.output_col_set acc)
                  (Relop.output_col_set leaf)
              in
              let usable, remaining =
                List.partition
                  (fun c ->
                     Algebra.Registry.Col_set.subset (Expr.cols c) cols
                     && not (List.memq c !placed))
                  conjs
              in
              ignore remaining;
              placed := usable @ !placed;
              let pred =
                match usable with
                | [] -> Expr.Lit (Catalog.Value.Bool true)
                | _ -> Expr.conjoin usable
              in
              Relop.join
                (if usable = [] then Relop.Cross else Relop.Inner)
                pred acc leaf
            in
            let first = join_with a b in
            let tree = List.fold_left join_with first rest in
            (* any leftover conjuncts become a residual filter *)
            let leftovers = List.filter (fun c -> not (List.memq c !placed)) conjs in
            (match Expr.conjoin_opt leftovers with
             | Some p -> Relop.select p tree
             | None -> tree)
        end)
  in
  if !changed then Some rebuilt else None

(* -- the pipeline as explicit, uniformly typed stages (Fig. 2) --

   Each stage is a [Stage.t]; running one opens an [Obs] span named after
   the stage, so [explain --profile] (and the bench harness) see a uniform
   per-stage span tree with the layer-specific counters reported inside. *)

(** [parse]: SQL text -> AST (PDW parser). *)
let parse_stage : (string, Sqlfront.Ast.query) Stage.t =
  Stage.v ~name:"parse" (fun obs sql -> Sqlfront.Parser.parse ~obs sql)

(** [algebrize]: AST -> named logical tree (binding against the shell). *)
let algebrize_stage shell : (Sqlfront.Ast.query, Algebra.Algebrizer.result) Stage.t =
  Stage.v ~name:"algebrize" (fun _obs q -> Algebra.Algebrizer.algebrize shell q)

(** [normalize]: logical tree -> simplified logical tree (rule hit counts
    reported per rewrite). *)
let normalize_stage reg shell : (Algebra.Relop.t, Algebra.Relop.t) Stage.t =
  Stage.v ~name:"normalize" (fun obs t -> Algebra.Normalize.normalize ~obs reg shell t)

(** [serial]: logical tree -> explored MEMO + best serial plan. The token
    and memo budget cut exploration anytime-style (a plan still comes
    back, flagged [interrupted]). *)
let serial_stage opts seeds token max_memo_groups pool reg shell
  : (Algebra.Relop.t, Serialopt.Optimizer.result) Stage.t =
  Stage.v ~name:"serial_optimize"
    (fun obs t ->
       Serialopt.Optimizer.optimize ~obs ~opts ~seeds ~token ?max_memo_groups
         ~pool reg shell t)

(** [memo_xml]: MEMO -> (XML encoding, re-imported MEMO) — the paper's
    interchange between the SQL Server process and the PDW optimizer. *)
let memo_xml_stage shell : (Memo.t, string option * Memo.t) Stage.t =
  Stage.v ~name:"memo_xml" (fun obs m ->
      let xml = Memo.Memo_xml.export_string ~obs m in
      (Some xml, Memo.Memo_xml.import_string ~obs shell xml))

(** [analyze]: imported MEMO -> empty-group predicate. The abstract
    interpreter (DESIGN.md §12) runs over every memo group and marks the
    ones whose derived cardinality upper bound is 0 (a contradictory
    predicate somewhere below). Computed sequentially, before the
    enumeration fans out, so the predicate handed to the wavefront is a
    pure read. *)
let analyze_stage shell (pdw_opts : Pdwopt.Enumerate.opts)
  : (Memo.t, (int -> bool) option) Stage.t =
  Stage.v ~name:"analyze" (fun obs m ->
      if not pdw_opts.Pdwopt.Enumerate.fold_empty then None
      else begin
        let actx =
          Analysis.context ~shell ~reg:m.Memo.reg
            ~nodes:pdw_opts.Pdwopt.Enumerate.nodes
        in
        let empty = Analysis.empty_groups actx m in
        let n = ref 0 in
        Memo.iter_groups m (fun g -> if empty g.Memo.gid then incr n);
        Obs.add obs "analysis.empty_groups" !n;
        Some empty
      end)

(** [pdw]: imported MEMO -> distributed plan (Fig. 4, steps 01-09). A
    token trip raises {!Governor.Cancelled} — the caller degrades to the
    baseline fallback. [upper_bound] seeds the fixed pruning bound from
    the baseline plan's DMS cost (with a relative margin so the winner is
    never bound-pruned on a float tie). [empty] marks analyzer-proven
    empty groups for contradiction-driven folding. *)
let pdw_stage opts token pool upper_bound empty
  : (Memo.t, Pdwopt.Optimizer.result) Stage.t =
  Stage.v ~name:"pdw_optimize"
    (fun obs m ->
       Pdwopt.Optimizer.optimize ~obs ~opts ~token ~pool ?upper_bound ?empty m)

(** [dsql]: distributed plan -> DSQL steps (Fig. 4, steps 10-11). *)
let dsql_stage reg : (Pdwopt.Pplan.t, Dsql.Generate.plan) Stage.t =
  Stage.v ~name:"dsql_generate" (fun obs p -> Dsql.Generate.generate ~obs reg p)

(** [check]: distributed plan + DSQL steps -> () or {!Check.Invalid}. The
    static analyzer re-derives every invariant the optimizer is supposed
    to have established (distribution soundness, movement applicability,
    cost accounting, DSQL well-formedness) and refuses the plan on any
    violation. *)
let check_stage shell (pdw_opts : Pdwopt.Enumerate.opts) reg
  : (Pdwopt.Pplan.t * Dsql.Generate.plan, unit) Stage.t =
  Stage.v ~name:"check" (fun obs (plan, dsql) ->
      let cost =
        { Check.nodes = pdw_opts.Pdwopt.Enumerate.nodes;
          lambdas = pdw_opts.Pdwopt.Enumerate.lambdas;
          reg }
      in
      match Check.validate ~obs ~cost ~dsql ~shell plan with
      | [] -> ()
      | vs -> raise (Check.Invalid vs))

(** [baseline]: best serial plan -> greedily parallelized plan (§3.2). *)
let baseline_stage opts reg shell
  : (Serialopt.Plan.t option, Pdwopt.Pplan.t option) Stage.t =
  Stage.v ~name:"baseline_parallelize" (fun _obs best ->
      match best with
      | Some best ->
        (try Some (Baseline.parallelize ~opts reg shell best)
         with Baseline.Cannot_parallelize _ -> None)
      | None -> None)

(** Run the full optimization pipeline on a SQL string. Pass an enabled
    [obs] context to collect the per-stage span tree and counters; pass a
    [cache] to skip serial + PDW optimization on repeated queries. *)
let optimize ?(obs = Obs.null) ?(options : options option) ?(cache : cache option)
    ?(check = true) ?(live_nodes : int list option) ?(token = Governor.none)
    ?(pool = Par.sequential) ?(calibration = 0) ?(topology = 0)
    (shell : Catalog.Shell_db.t) (sql : string) : result =
  let opts =
    match options with
    | Some o -> o
    | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
  in
  (* Arm the per-statement compile deadline here (the single arming site:
     [Governed] passes the knob through rather than arming the token
     itself). A dead [Governor.none] token gets a live replacement so the
     knob works for direct [optimize] callers too. *)
  let token =
    match opts.governor.Governor.deadline with
    | None -> token
    | Some d ->
      let token =
        if token == Governor.none then Governor.create () else token
      in
      Governor.add_deadline token ~clock:Governor.wall_clock
        ~deadline:(Governor.wall_clock () +. d);
      token
  in
  Obs.with_span obs "pipeline" @@ fun () ->
  let query = Stage.run obs parse_stage sql in
  (* §3.1 query hints adjust the optimization strategy *)
  let opts =
    let force_order =
      List.mem Sqlfront.Ast.Hint_force_order query.Sqlfront.Ast.hints
    in
    let dist_hints =
      List.filter_map
        (fun h ->
           match h with
           | Sqlfront.Ast.Hint_broadcast t -> Some (t, `Broadcast)
           | Sqlfront.Ast.Hint_shuffle t -> Some (t, `Shuffle)
           | Sqlfront.Ast.Hint_force_order -> None)
        query.Sqlfront.Ast.hints
    in
    { opts with
      serial =
        (if force_order then
           { opts.serial with Serialopt.Optimizer.task_budget = 0 }
         else opts.serial);
      pdw = { opts.pdw with Pdwopt.Enumerate.hints = dist_hints } }
  in
  let algebrized = Stage.run obs (algebrize_stage shell) query in
  let reg = algebrized.Algebra.Algebrizer.reg in
  let normalized =
    Stage.run obs (normalize_stage reg shell) algebrized.Algebra.Algebrizer.tree
  in
  (* everything below normalization is a pure function of (normalized tree,
     knobs, statistics) — exactly what the plan-cache fingerprint keys on *)
  let compile_tail () : compiled_tail * degradation option =
    let seeds =
      if opts.seed_collocated then
        match collocated_seed reg shell normalized with
        | Some s -> [ s ]
        | None -> []
      else []
    in
    let serial =
      Stage.run obs
        (serial_stage opts.serial seeds token opts.governor.Governor.max_memo_groups
           pool reg shell)
        normalized
    in
    let memo_xml, memo =
      if opts.via_xml then
        Stage.run obs (memo_xml_stage shell) serial.Serialopt.Optimizer.memo
      else (None, serial.Serialopt.Optimizer.memo)
    in
    (* The baseline runs before the PDW enumeration so its plan can seed
       the enumeration's fixed cost upper bound (and so a fallback after a
       mid-enumeration cancellation reuses it instead of recomputing). It
       allocates no registry columns, so the hoist does not shift the ids
       the enumeration's aggregation splits allocate. *)
    let baseline_plan =
      Stage.run obs (baseline_stage opts.baseline reg shell)
        serial.Serialopt.Optimizer.best
    in
    let upper_bound =
      Option.map
        (fun (b : Pdwopt.Pplan.t) ->
           (* margin: strictly above the baseline's cost, so the enumerated
              plan that matches or beats the baseline is never pruned even
              under float rounding *)
           (b.Pdwopt.Pplan.dms_cost *. (1. +. 1e-9)) +. 1e-9)
        baseline_plan
    in
    match
      let empty = Stage.run obs (analyze_stage shell opts.pdw) memo in
      let pdw =
        Stage.run obs (pdw_stage opts.pdw token pool upper_bound empty) memo
      in
      let dsql = Stage.run obs (dsql_stage memo.Memo.reg) pdw.Pdwopt.Optimizer.plan in
      if check then
        Stage.run obs
          (check_stage shell opts.pdw memo.Memo.reg)
          (pdw.Pdwopt.Optimizer.plan, dsql);
      (pdw, dsql)
    with
    | pdw, dsql ->
      let degraded =
        if serial.Serialopt.Optimizer.interrupted <> None then Some Anytime
        else None
      in
      ( { c_serial = serial; c_memo_xml = memo_xml; c_memo = memo; c_pdw = pdw;
          c_dsql = dsql; c_baseline = baseline_plan },
        degraded )
    | exception (Governor.Cancelled _ as cancelled) ->
      (* The PDW enumeration was interrupted: degrade to the §3.2 baseline
         — the best serial plan parallelized greedily (already computed
         above). The fallback runs to completion even on an expired token
         (none of its stages poll), so the degradation overhead is a
         bounded constant. *)
      Obs.with_span obs "governor.fallback" @@ fun () ->
      (match baseline_plan with
       | None ->
         (* nothing to degrade to: surface the cancellation itself *)
         raise cancelled
       | Some plan ->
         let dsql = Stage.run obs (dsql_stage reg) plan in
         (* a degraded plan must still prove itself: the check stage runs
            unconditionally here, even when the caller disabled [check] *)
         Stage.run obs (check_stage shell opts.pdw reg) (plan, dsql);
         let body =
           match plan.Pdwopt.Pplan.children with
           | [ body ] -> body
           | _ -> plan
         in
         let pdw =
           { Pdwopt.Optimizer.plan;
             options_at_root = [ (body.Pdwopt.Pplan.dist, body) ];
             options = Hashtbl.create 1;
             stats =
               { Pdwopt.Enumerate.pdw_exprs_enumerated = 0; options_kept = 0;
                 groups_processed = 0; enforcer_moves = 0; par_levels = 0;
                 par_groups = 0 };
             derived = Pdwopt.Derive.derive memo }
         in
         ( { c_serial = serial; c_memo_xml = memo_xml; c_memo = memo;
             c_pdw = pdw; c_dsql = dsql; c_baseline = baseline_plan },
           Some Fallback ))
  in
  let tail, degraded, fingerprint =
    match cache with
    | None ->
      let tail, degraded = compile_tail () in
      (tail, degraded, None)
    | Some c ->
      let fp =
        Obs.with_span obs "plancache" @@ fun () ->
        Plancache.fingerprint ?live_nodes ~calibration ~topology ~shell ~serial:opts.serial
          ~pdw:opts.pdw ~baseline:opts.baseline ~via_xml:opts.via_xml
          ~seed_collocated:opts.seed_collocated ~governor:opts.governor
          normalized
      in
      (match Plancache.find c fp with
       | Some tail ->
         Obs.add obs "plancache.hit" 1;
         (tail, None, Some fp)
       | None ->
         Obs.add obs "plancache.miss" 1;
         (* [compile_tail] runs the check stage before this point, so an
            invalid plan raises and is never admitted to the cache *)
         let tail, degraded = compile_tail () in
         (match degraded with
          | None ->
            if Plancache.add c fp tail then Obs.add obs "plancache.evict" 1
          | Some _ ->
            (* never cache a degraded plan: a truncated-search result must
               not be served to a caller with a full budget (or to this
               caller again once pressure subsides) *)
            ignore (Plancache.note_degraded c fp);
            Obs.add obs "plancache.evictions_degraded" 1);
         (tail, degraded, Some fp))
  in
  if degraded <> None then Obs.add obs "governor.degraded" 1;
  { query; algebrized; normalized; serial = tail.c_serial;
    memo_xml = tail.c_memo_xml; memo = tail.c_memo; pdw = tail.c_pdw;
    dsql = tail.c_dsql; baseline_plan = tail.c_baseline; fingerprint; degraded }

(** The chosen distributed plan. *)
let plan r = r.pdw.Pdwopt.Optimizer.plan

(** Pretty explanation: parallel plan + DSQL steps. *)
let explain (r : result) : string =
  let reg = r.memo.Memo.reg in
  Printf.sprintf "-- parallel plan --\n%s\n\n-- DSQL plan --\n%s"
    (Pdwopt.Pplan.to_string reg (plan r))
    (Dsql.Generate.to_string r.dsql)

(** Execute the chosen plan on an appliance; returns the client result.
    When [obs] is given it is attached to the appliance for the duration,
    so per-DMS-op and per-node executor counters land under an [execute]
    span. When [cache] is given and the appliance's {!Check} gate rejects
    the plan, the plan's cache entry is evicted before {!Check.Invalid}
    propagates — a poisoned entry must not be served on the next hit. *)
let run ?(obs = Obs.null) ?(cache : cache option) (app : Engine.Appliance.t)
    (r : result) : Engine.Local.rset =
  Engine.Appliance.set_obs app obs;
  Fun.protect
    ~finally:(fun () -> Engine.Appliance.set_obs app Obs.null)
    (fun () ->
       try Obs.with_span obs "execute" (fun () -> Engine.Appliance.run_pplan app (plan r))
       with Check.Invalid _ as e ->
         (match cache, r.fingerprint with
          | Some c, Some fp ->
            if Plancache.remove_invalid c fp then
              Obs.add obs "plancache.evictions_invalid" 1
          | _ -> ());
         raise e)

(** Execute the baseline (parallelized best serial) plan. *)
let run_baseline (app : Engine.Appliance.t) (r : result) : Engine.Local.rset option =
  Option.map (Engine.Appliance.run_pplan app) r.baseline_plan

(** Single-node reference execution of the best serial plan (oracle). *)
let run_reference (app : Engine.Appliance.t) (r : result) : Engine.Local.rset option =
  Option.map (Engine.Appliance.run_reference app) r.serial.Serialopt.Optimizer.best

(** The query's output columns (display name, column id). *)
let output_columns (r : result) = r.algebrized.Algebra.Algebrizer.output

(* alias for use inside [Chaos], whose own [run] shadows the name *)
let execute_result = run

module Chaos = struct
  (** Fault-tolerant statement driver: the optimize→check→execute loop
      with graceful degradation. Statements run under the context's fault
      plan; recoverable faults are retried inside the engine, and a
      {!Fault.Node_crash} escalates here — the dead node is
      decommissioned, the statement is re-optimized against the
      (N-1)-node shell catalog (the plan-cache fingerprint carries the
      live-node set, so stale-topology entries cannot hit) and
      re-executed. Subsequent statements keep running on the survivors. *)

  type t = {
    mutable shell : Catalog.Shell_db.t;
    mutable app : Engine.Appliance.t;
    mutable options : options;
    cache : cache option;
    fault : Fault.plan;
    max_replans : int;
  }

  let create ?cache ?(max_replans = 8) ?options ~(fault : Fault.plan)
      (shell : Catalog.Shell_db.t) (app : Engine.Appliance.t) : t =
    let options =
      match options with
      | Some o -> o
      | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
    in
    { shell; app; options; cache; fault; max_replans }

  let app t = t.app
  let shell t = t.shell
  let nodes t = t.app.Engine.Appliance.nodes

  let run ?(obs = Obs.null) (t : t) (sql : string) : result * Engine.Local.rset =
    let rec go replans =
      Engine.Appliance.set_fault t.app t.fault;
      let live = Engine.Appliance.live_nodes t.app in
      let r =
        optimize ~obs ~options:t.options ?cache:t.cache ~live_nodes:live
          ~pool:t.app.Engine.Appliance.pool t.shell sql
      in
      match execute_result ~obs ?cache:t.cache t.app r with
      | rows -> (r, rows)
      | exception Fault.Injected ({ Fault.site = Fault.Node_crash; _ } as failure) ->
        if nodes t <= 1 || replans >= t.max_replans then
          raise (Fault.Exhausted { failure; attempts = replans + 1 });
        Obs.add obs "fault.replan_statements" 1;
        let app' =
          Obs.with_span obs "fault.replan" @@ fun () ->
          (* attach obs for the decommission itself so its fault.replans /
             recovery-cost counters land under this span *)
          Engine.Appliance.set_obs t.app obs;
          let app' = Engine.Appliance.decommission t.app ~node:failure.Fault.node in
          Engine.Appliance.set_obs t.app Obs.null;
          Engine.Appliance.set_obs app' Obs.null;
          app'
        in
        t.app <- app';
        t.shell <- app'.Engine.Appliance.shell;
        let n = app'.Engine.Appliance.nodes in
        t.options <-
          { t.options with
            pdw = { t.options.pdw with Pdwopt.Enumerate.nodes = n };
            baseline = { t.options.baseline with Baseline.nodes = n } };
        go (replans + 1)
    in
    go 0
end

module Governed = struct
  (** The resource-governed statement driver: every statement passes
      through admission control (bounded gate + FIFO queue), a
      per-statement-fingerprint circuit breaker, a cancellation token
      threaded through all three optimization layers and the engine, and
      the anytime/baseline degradation ladder. The answer is always
      structured — correct rows, a degraded-but-valid plan's correct rows,
      or a typed refusal — never wrong rows, a panic, or a leaked slot. *)

  type t = {
    shell : Catalog.Shell_db.t;
    app : Engine.Appliance.t;
    options : options;
    cache : cache option;
    check : bool;
    gate : Governor.Gate.t;
    breaker : Governor.Breaker.t;
    exec_mutex : Mutex.t;
        (** the simulated appliance executes one statement at a time (its
            clock and storage are statement-scoped); the gate bounds how
            many statements are in flight (compiling + waiting to run) *)
  }

  let create ?cache ?options ?(check = true) ?(max_concurrent = 4)
      ?(queue_limit = 16) ?(breaker_threshold = 3) ?(breaker_cooldown = 1.0)
      (shell : Catalog.Shell_db.t) (app : Engine.Appliance.t) : t =
    let options =
      match options with
      | Some o -> o
      | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
    in
    { shell; app; options; cache; check;
      gate = Governor.Gate.create ~max_concurrent ~queue_limit ();
      breaker =
        (* cooldown charged to the simulated clock: deterministic, and a
           poison query's quarantine scales with simulated work, not with
           host wall time *)
        Governor.Breaker.create ~threshold:breaker_threshold
          ~cooldown:breaker_cooldown
          ~clock:(fun () -> app.Engine.Appliance.account.Engine.Appliance.sim_time)
          ();
      exec_mutex = Mutex.create () }

  let app t = t.app
  let gate t = t.gate
  let breaker t = t.breaker

  (** Every way a governed statement can come back. Only [Returned]
      carries rows; everything else is a structured refusal. *)
  type outcome =
    | Returned of result * Engine.Local.rset
    | Rejected of Governor.Gate.rejection   (** admission queue overflow *)
    | Shed of { retry_after : float }       (** circuit breaker open *)
    | Timed_out of Governor.reason          (** deadline/cancel during execution *)
    | Exhausted of { attempts : int; reason : string }  (** fault budget spent *)
    | Invalid of string                     (** plan refused by {!Check} *)

  let outcome_to_string = function
    | Returned (r, rset) ->
      Printf.sprintf "returned(%d rows%s)" (List.length rset.Engine.Local.rows)
        (match r.degraded with
         | Some d -> ", degraded=" ^ degradation_to_string d
         | None -> "")
    | Rejected rej ->
      Printf.sprintf "rejected(running=%d,queued=%d,queue_limit=%d)"
        rej.Governor.Gate.running rej.Governor.Gate.queued
        rej.Governor.Gate.queue_limit
    | Shed { retry_after } -> Printf.sprintf "shed(retry_after=%.3fs)" retry_after
    | Timed_out reason ->
      Printf.sprintf "timed_out(%s)" (Governor.reason_to_string reason)
    | Exhausted { attempts; reason } ->
      Printf.sprintf "exhausted(%s after %d attempts)" reason attempts
    | Invalid msg -> Printf.sprintf "invalid(%s)" msg

  let statement_key sql = String.lowercase_ascii (String.trim sql)

  (** Optimize and execute one statement under full governance. Breaker
      bookkeeping: hard failures ({!Fault.Exhausted}, {!Check.Invalid})
      count against the statement's fingerprint; deadline trips do not —
      a slow statement under a tight deadline is load, not poison. *)
  let run ?(obs = Obs.null) (t : t) (sql : string) : outcome =
    let key = statement_key sql in
    let admitted =
      Governor.Gate.try_admit ~obs t.gate @@ fun () ->
      match Governor.Breaker.check ~obs t.breaker key with
      | `Shed retry_after -> Shed { retry_after }
      | `Proceed ->
        let token = Governor.create () in
        try
          let r =
            (* compile on the appliance's pool too: with the leveled
               wavefront, `--jobs` covers compilation, not just shard
               execution *)
            optimize ~obs ~options:t.options ?cache:t.cache ~check:t.check
              ~live_nodes:(Engine.Appliance.live_nodes t.app) ~token
              ~pool:t.app.Engine.Appliance.pool t.shell sql
          in
          (* compilation can overlap across gate slots; execution of the
             shared appliance is one statement at a time *)
          Mutex.lock t.exec_mutex;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.exec_mutex)
            (fun () ->
               (match t.options.governor.Governor.sim_deadline with
                | Some d ->
                  let sim () =
                    t.app.Engine.Appliance.account.Engine.Appliance.sim_time
                  in
                  Governor.add_deadline token ~clock:sim ~deadline:(sim () +. d)
                | None -> ());
               Engine.Appliance.set_token t.app token;
               Fun.protect
                 ~finally:(fun () ->
                     Engine.Appliance.set_token t.app Governor.none)
                 (fun () ->
                    let rows = execute_result ~obs ?cache:t.cache t.app r in
                    Governor.Breaker.success t.breaker key;
                    Returned (r, rows)))
        with
        | Governor.Cancelled { reason; _ } -> Timed_out reason
        | Fault.Exhausted { failure; attempts } ->
          Governor.Breaker.failure ~obs t.breaker key;
          Exhausted { attempts; reason = Fault.failure_to_string failure }
        | Check.Invalid vs ->
          Governor.Breaker.failure ~obs t.breaker key;
          Invalid (Check.to_string vs)
    in
    match admitted with
    | Ok outcome -> outcome
    | Error rej -> Rejected rej

  (** The one shared per-iteration metric reset (CLI [--repeat], bench):
      the appliance account (sim clock, DMS bytes, [fault.*] tallies —
      PR 4's [assign_account] pattern) plus the gate and breaker counters,
      so per-iteration [governor.*]/[fault.*] numbers are not cumulative.
      Breaker open/closed states survive: quarantine is behavior, not a
      metric. *)
  let reset (t : t) =
    Engine.Appliance.reset_account t.app;
    Governor.Gate.reset_stats t.gate;
    Governor.Breaker.reset_stats t.breaker
end

module Feedback = struct
  (** The feedback-driven statement driver (DESIGN.md §13): the closed
      execution → calibration → plan-store loop. Every {!run} harvests
      what the appliance actually observed — per-operator cardinalities
      and per-DMS-component (bytes, seconds) samples — into a persistent
      {!Log}, and records the plan's observed sim/wall cost in a
      last-known-good {!Store} keyed by plan-cache fingerprint.
      {!calibrate} folds the log back into the shell catalog (histogram
      refinement for columns whose estimates missed by more than the
      threshold; λ re-fit from the observed DMS volumes) and bumps the
      calibration epoch, which re-keys every fingerprint (v5). If a
      recompiled plan then regresses against the LKG past the hysteresis
      thresholds, its fingerprint is quarantined and {!run} automatically
      falls back to the LKG plan. *)

  module Log = Fbk.Log
  module Misses = Fbk.Misses
  module Lambda = Fbk.Lambda
  module Store = Fbk.Store

  type t = {
    shell : Catalog.Shell_db.t;
    app : Engine.Appliance.t;
    mutable options : options;
    cache : cache;
    check : bool;
    log : Log.t;
    store : result Store.t;
    miss_threshold : float;   (** estimation-error factor that flags a column *)
    refine_buckets : int;     (** histogram resolution of refined statistics *)
    mutable epoch : int;      (** calibration epoch, part of fingerprint v5 *)
  }

  let create ?cache ?options ?(check = true) ?(regress_factor = 1.2)
      ?(streak_limit = 2) ?(miss_threshold = 2.0) ?(refine_buckets = 64) ?log
      (shell : Catalog.Shell_db.t) (app : Engine.Appliance.t) : t =
    let options =
      match options with
      | Some o -> o
      | None -> default_options ~node_count:(Catalog.Shell_db.node_count shell)
    in
    { shell; app; options;
      cache = (match cache with Some c -> c | None -> Plancache.create ());
      check;
      log = (match log with Some l -> l | None -> Log.create ());
      store = Store.create ~regress_factor ~streak_limit ();
      miss_threshold; refine_buckets; epoch = 0 }

  let log t = t.log
  let store t = t.store
  let epoch t = t.epoch
  let plan_cache t = t.cache
  let options t = t.options

  let statement_key = Governed.statement_key

  (** Symmetric model-vs-sim cost error of one executed plan, always
      >= 1: the model side is the plan's predicted DMS cost, the sim side
      the DMS seconds the appliance actually charged. *)
  let model_error (r : result) ~dms_time =
    let m = (plan r).Pdwopt.Pplan.dms_cost and s = dms_time in
    if m <= 0. || s <= 0. then 1. else Float.max (m /. s) (s /. m)

  (* registry column ids -> catalog (table, column) names; derived columns
     (aggregate outputs, computed projections) have no catalog statistics
     object to refine and are dropped *)
  let cols_of_ids (reg : Algebra.Registry.t) ids =
    List.filter_map
      (fun id ->
         match (Algebra.Registry.info reg id).Algebra.Registry.source with
         | Algebra.Registry.Base { table; column; _ } ->
           Some (String.lowercase_ascii table, String.lowercase_ascii column)
         | Algebra.Registry.Derived _ -> None
         | exception Invalid_argument _ -> None)
      ids
    |> List.sort_uniq compare

  let dms_observations (acct : Engine.Appliance.account) =
    (* sample lists are built newest-first in the caller domain; reverse to
       the deterministic append order before logging *)
    List.concat_map
      (fun comp ->
         List.rev_map
           (fun (s : Dms.Calibrate.sample) ->
              { Log.d_component = comp; d_bytes = s.Dms.Calibrate.bytes;
                d_seconds = s.Dms.Calibrate.seconds })
           (Engine.Appliance.samples_of acct comp))
      [ Dms.Calibrate.Reader_direct; Dms.Calibrate.Reader_hash;
        Dms.Calibrate.Network; Dms.Calibrate.Writer; Dms.Calibrate.Blkcpy ]

  type run_outcome = {
    res : result;              (** the result actually executed (LKG on fallback) *)
    rows : Engine.Local.rset;
    observed_sim : float;      (** simulated seconds of this statement *)
    observed_dms : float;      (** DMS portion of [observed_sim] *)
    fellback : bool;           (** the compiled plan was quarantined; LKG ran *)
    store_outcome : Store.outcome;
  }

  (** Optimize, (possibly) fall back, execute, harvest, record. The
      appliance account is reset per run, so [observed_sim] is this
      statement's simulated cost. Degraded (Anytime/Fallback) results are
      executed but never recorded as LKG ({!Store.observe}). *)
  let run ?(obs = Obs.null) (t : t) (sql : string) : run_outcome =
    let key = statement_key sql in
    let compiled =
      optimize ~obs ~options:t.options ~cache:t.cache ~check:t.check
        ~live_nodes:(Engine.Appliance.live_nodes t.app)
        ~pool:t.app.Engine.Appliance.pool ~calibration:t.epoch t.shell sql
    in
    let fp = Option.get compiled.fingerprint in
    (* pre-execution regression fallback: a quarantined fingerprint is
       never run again (until a calibration epoch re-keys it); the
       last-known-good plan runs in its place *)
    let r, fellback =
      match Store.resolve t.store ~statement:key ~fingerprint:fp with
      | Some lkg ->
        Obs.add obs "feedback.fallbacks" 1;
        (lkg, true)
      | None -> (compiled, false)
    in
    let fp_run = Option.value r.fingerprint ~default:fp in
    Engine.Appliance.reset_account t.app;
    let samples = ref [] in
    Engine.Appliance.set_harvest t.app (Some samples);
    let wall0 = Obs.default_clock () in
    let rows =
      Fun.protect
        ~finally:(fun () -> Engine.Appliance.set_harvest t.app None)
        (fun () -> execute_result ~obs ~cache:t.cache t.app r)
    in
    let wall = Obs.default_clock () -. wall0 in
    let acct = t.app.Engine.Appliance.account in
    let sim = acct.Engine.Appliance.sim_time in
    let dms = acct.Engine.Appliance.dms_time in
    let reg = r.memo.Memo.reg in
    let ops =
      List.rev_map
        (fun (s : Engine.Appliance.op_sample) ->
           { Log.o_group = s.Engine.Appliance.h_group; o_op = s.Engine.Appliance.h_op;
             o_table = Option.map String.lowercase_ascii s.Engine.Appliance.h_table;
             o_cols = cols_of_ids reg s.Engine.Appliance.h_cols;
             o_est = s.Engine.Appliance.h_est; o_actual = s.Engine.Appliance.h_actual })
        !samples
    in
    let degraded = r.degraded <> None in
    Log.append t.log
      { Log.r_statement = key; r_fingerprint = fp_run; r_ops = ops;
        r_dms = dms_observations acct; r_sim = sim; r_wall = wall;
        r_degraded = degraded };
    let store_outcome =
      Store.observe t.store ~statement:key ~fingerprint:fp_run ~degraded ~sim
        ~wall r
    in
    (match store_outcome with
     | Store.Regressed _ -> Obs.add obs "feedback.regressions" 1
     | Store.Quarantined ->
       Obs.add obs "feedback.regressions" 1;
       Obs.add obs "feedback.quarantines" 1
     | _ -> ());
    { res = r; rows; observed_sim = sim; observed_dms = dms; fellback;
      store_outcome }

  (* all values of one column, gathered from the appliance's true shards in
     node order (replicated tables read one copy) — deterministic at any
     [--jobs] because shard contents and order are load-order stable *)
  let column_values (t : t) table column =
    match Catalog.Shell_db.find t.shell table with
    | None -> None
    | Some tbl ->
      (match Catalog.Schema.find_col tbl.Catalog.Shell_db.schema column with
       | None -> None
       | Some idx ->
         let nodes =
           match tbl.Catalog.Shell_db.dist with
           | Catalog.Distribution.Replicated -> [ 0 ]
           | Catalog.Distribution.Hash_partitioned _ ->
             List.init t.app.Engine.Appliance.nodes Fun.id
         in
         Some
           (List.concat_map
              (fun n ->
                 List.map (fun row -> row.(idx))
                   (Engine.Appliance.node_table t.app n table))
              nodes))

  type calibration = {
    refined : Misses.miss list;       (** columns whose statistics were rebuilt *)
    lambdas : Dms.Cost.lambdas;       (** the re-fitted λ table now in force *)
    fits : Lambda.fit list;           (** per-component fit quality *)
    new_epoch : int;
  }

  (** Fold the accumulated log back into the catalog: rebuild statistics
      for every column whose estimates missed by more than
      [miss_threshold] (a full-resolution scan of the true shards, via
      {!Catalog.Col_stats.refine} — widening-only, so R11 bounds stay
      sound), then re-fit the λ table from the observed DMS volumes and
      install it in the driver's options. Both folds are pure functions of
      the log (λs are always fitted against {!Dms.Cost.default_lambdas} as
      the base, not compounded), so the same log yields bit-identical
      refined stats and λs at any [--jobs]. Bumps the calibration epoch;
      every statement recompiles on its next run (stats_version and the
      epoch both re-key fingerprint v5). *)
  let calibrate ?(obs = Obs.null) (t : t) : calibration =
    let recs = Log.records t.log in
    let misses = Misses.columns ~threshold:t.miss_threshold recs in
    let refined =
      List.filter
        (fun (m : Misses.miss) ->
           match column_values t m.Misses.m_table m.Misses.m_column with
           | None -> false
           | Some values ->
             let tbl = Catalog.Shell_db.find_exn t.shell m.Misses.m_table in
             let cs =
               match Catalog.Shell_db.col_stats tbl m.Misses.m_column with
               | Some cs -> cs
               | None -> Catalog.Col_stats.make ()
             in
             Catalog.Shell_db.update_col_stats t.shell m.Misses.m_table
               m.Misses.m_column
               (Catalog.Col_stats.refine ~nbuckets:t.refine_buckets cs values);
             true)
        misses
    in
    let lambdas, fits = Lambda.fit recs in
    t.options <-
      { t.options with
        pdw = { t.options.pdw with Pdwopt.Enumerate.lambdas };
        baseline = { t.options.baseline with Baseline.lambdas } };
    t.epoch <- t.epoch + 1;
    Obs.add obs "feedback.calibrations" 1;
    Obs.add obs "feedback.refined_columns" (List.length refined);
    { refined; lambdas; fits; new_epoch = t.epoch }
end

module Workload = struct
  (** Convenience setup: a TPC-H appliance with generated data and global
      statistics computed the PDW way — local per-node statistics merged
      into global shell statistics (paper §2.2). *)

  type t = {
    shell : Catalog.Shell_db.t;
    app : Engine.Appliance.t;
    db : Tpch.Datagen.db;
  }

  let tpch ?(node_count = 8) ?(sf = 0.01) ?(engine = Engine.Rset.Row) () : t =
    let shell = Catalog.Shell_db.create ~node_count in
    Tpch.Schema.install shell;
    let db = Tpch.Datagen.generate sf in
    let app = Engine.Appliance.create ~engine shell in
    (* shard contents and order are engine-independent: both loaders
       hash-partition with the same route hash in generation order *)
    List.iter
      (fun (schema, _) ->
         let name = schema.Catalog.Schema.name in
         match engine with
         | Engine.Rset.Row ->
           Engine.Appliance.load_table app name (Tpch.Datagen.rows db name)
         | Engine.Rset.Columnar ->
           Engine.Appliance.load_table_cols app name (Tpch.Datagen.table db name))
      Tpch.Schema.layout;
    (* global statistics = merge of per-node local statistics (§2.2) *)
    List.iter
      (fun (schema, dist) ->
         let name = schema.Catalog.Schema.name in
         let stats =
           match dist with
           | Catalog.Distribution.Replicated ->
             (* every node holds a full copy; one local computation suffices *)
             Catalog.Tbl_stats.of_rows schema (Engine.Appliance.node_table app 0 name)
           | Catalog.Distribution.Hash_partitioned _ ->
             Catalog.Tbl_stats.merge
               (List.init node_count (fun node ->
                    Catalog.Tbl_stats.of_rows schema
                      (Engine.Appliance.node_table app node name)))
         in
         Catalog.Shell_db.set_stats shell name stats)
      Tpch.Schema.layout;
    { shell; app; db }
end
