(** Cost calibration (paper §3.3.3): fit each λ from instrumented
    measurements — "the constant λ is calculated via targeted performance
    tests after a meticulous instrumentation of the source code". *)

type sample = { bytes : float; seconds : float }

type component = Reader_direct | Reader_hash | Network | Writer | Blkcpy

val component_name : component -> string

(** Least-squares slope through the origin: λ = Σxy / Σx². *)
val fit_lambda : sample list -> float

(** Relative RMS residual of the fitted linear model against the samples
    (non-zero residuals quantify what the constant-λ simplification gives
    up to per-row and fixed overheads). *)
val fit_error : float -> sample list -> float

(** Fit the full λ table from per-component measurement sets; returns the
    lambdas plus the per-component fit residuals. *)
val calibrate : (component -> sample list) -> Cost.lambdas * (component * float) list
