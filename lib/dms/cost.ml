(** The DMS cost model (paper §3.3.3 and Fig. 5).

    A DMS operator has a source (reader + network sender) and a target
    (writer + SQL bulk copy), running in parallel on each node:

      C_source = max(C_reader, C_network)
      C_target = max(C_writer, C_SQLBlkCpy)
      C_DMS    = max(C_source, C_target)

    Each component is costed linearly in the raw bytes it processes:
    C_X = B * lambda_X, where B = Y*w/N for distributed streams and Y*w for
    replicated streams (Y = global cardinality, w = row width, N = number of
    compute nodes). C_reader uses two constants, lambda_hash and
    lambda_direct, because hash routing (Shuffle, Trim) costs more than
    direct reading. The lambdas come from cost calibration (see
    {!Calibrate}). *)

type lambdas = {
  l_reader_direct : float;  (** s/byte, reading + packing without hashing *)
  l_reader_hash : float;    (** s/byte, reading + hashing + packing *)
  l_network : float;        (** s/byte sent *)
  l_writer : float;         (** s/byte unpacked into insert buffers *)
  l_blkcpy : float;         (** s/byte bulk-copied into the temp table *)
}

(** Uncalibrated defaults in the vicinity of commodity hardware (1-2 GB/s
    per component); production use should replace them via calibration. *)
let default_lambdas = {
  l_reader_direct = 1.0e-9;
  l_reader_hash = 1.4e-9;
  l_network = 0.8e-9;
  l_writer = 0.7e-9;
  l_blkcpy = 1.25e-9;
}

type breakdown = {
  c_reader : float;
  c_network : float;
  c_writer : float;
  c_blkcpy : float;
  c_source : float;
  c_target : float;
  c_total : float;
  bytes_moved : float;   (** total bytes crossing the network, for reporting *)
}

(** Per-component byte volumes for one DMS operation.
    Returns (reader bytes, uses hashing, network bytes, writer bytes). *)
let byte_volumes (k : Op.kind) ~(nodes : int) ~(rows : float) ~(width : float) =
  let n = float_of_int (max 1 nodes) in
  let total = Float.max 0. rows *. Float.max 1. width in
  let dist = total /. n in  (* per-node share of a distributed stream *)
  match k with
  | Op.Shuffle _ ->
    (* read local share with hashing; send (N-1)/N of it (modelled as the
       full share per the paper's simplification); write local share *)
    (dist, true, dist, dist)
  | Op.Partition_move ->
    (* every node sends its share; the single target writes everything *)
    (dist, false, dist, total)
  | Op.Control_node_move | Op.Replicated_broadcast ->
    (* one source node reads and sends the full table; every target node
       writes a full copy (replicated stream: B = Y*w) *)
    (total, false, total, total)
  | Op.Broadcast ->
    (* each node reads its share but sends it to every other node; each
       target writes the full table *)
    (dist, false, total, total)
  | Op.Trim _ ->
    (* purely local: each node re-hashes its full replica, keeps 1/N *)
    (total, true, 0., dist)
  | Op.Remote_copy ->
    (dist, false, dist, total)

(** Cost one DMS operation moving [rows] rows of [width] bytes across an
    appliance of [nodes] compute nodes. *)
let cost ?(lambdas = default_lambdas) (k : Op.kind) ~nodes ~rows ~width : breakdown =
  let b_read, hashed, b_net, b_write = byte_volumes k ~nodes ~rows ~width in
  let c_reader =
    b_read *. (if hashed then lambdas.l_reader_hash else lambdas.l_reader_direct)
  in
  let c_network = b_net *. lambdas.l_network in
  let c_writer = b_write *. lambdas.l_writer in
  let c_blkcpy = b_write *. lambdas.l_blkcpy in
  let c_source = Float.max c_reader c_network in
  let c_target = Float.max c_writer c_blkcpy in
  { c_reader; c_network; c_writer; c_blkcpy; c_source; c_target;
    c_total = Float.max c_source c_target;
    bytes_moved = b_net *. float_of_int (max 1 nodes) }

(** Per-byte and per-row rates of a physical re-partition pipeline
    (reader -> network -> writer). The engine's topology changes (crash
    shrink, elastic grow, re-key) all price their table copies through
    {!repartition_seconds} so the three paths charge identical numbers for
    identical volumes. *)
type move_rates = {
  r_reader_byte : float; r_reader_row : float;
  r_network_byte : float; r_network_row : float;
  r_writer_byte : float; r_writer_row : float;
}

(** Seconds to re-partition [bytes]/[rows] through a full
    reader+network+writer pipeline at the given rates. The components are
    summed, not maxed: a re-partition streams every byte through all three
    stages back to back (unlike a steady-state DMS operator where they
    overlap). *)
let repartition_seconds (r : move_rates) ~(bytes : float) ~(rows : float) =
  (bytes *. (r.r_reader_byte +. r.r_network_byte +. r.r_writer_byte))
  +. (rows *. (r.r_reader_row +. r.r_network_row +. r.r_writer_row))

let pp_breakdown ppf b =
  Format.fprintf ppf
    "reader=%.3gs net=%.3gs writer=%.3gs blkcpy=%.3gs -> source=%.3gs target=%.3gs total=%.3gs"
    b.c_reader b.c_network b.c_writer b.c_blkcpy b.c_source b.c_target b.c_total
