(** The seven physical data movement operations of PDW (paper §3.3.2),
    all implemented by one common runtime operator (Fig. 5). *)

type kind =
  | Shuffle of int list     (** 1. many-to-many re-hash on these columns *)
  | Partition_move          (** 2. many-to-one gather onto a single node *)
  | Control_node_move       (** 3. control node -> replicate to all compute *)
  | Broadcast               (** 4. every compute node -> all compute nodes *)
  | Trim of int list        (** 5. replicated -> hashed, local keep-own (no network) *)
  | Replicated_broadcast    (** 6. single compute node -> all nodes *)
  | Remote_copy             (** 7. copy a replicated/distributed table to one node *)

val name : kind -> string
val to_string : Algebra.Registry.t -> kind -> string

(** Output distribution of a movement applied to input distribution [d];
    [None] when the operation does not apply. *)
val output_dist : kind -> Distprop.t -> Distprop.t option

(** All movements turning an input with distribution [d] into [target].
    [interesting] supplies candidate hash-column lists for Shuffle/Trim.
    Every ordered pair of distinct distributions is reachable with exactly
    one movement. *)
val moves_to : interesting:int list list -> Distprop.t -> Distprop.t -> kind list
