(** Distribution properties of intermediate results in the appliance.

    A stream is either hash-partitioned across the compute nodes on an
    ordered column list, replicated on every compute node, or resident on a
    single node (the control node, for final gathering). *)

open Algebra

type t =
  | Hashed of int list   (** partition columns (registry ids), in hash order *)
  | Replicated
  | Single_node

let equal a b =
  match a, b with
  | Hashed x, Hashed y -> x = y
  | Replicated, Replicated | Single_node, Single_node -> true
  | _ -> false

let to_string reg = function
  | Hashed cols ->
    Printf.sprintf "HASHED(%s)" (String.concat "," (List.map (Registry.label reg) cols))
  | Replicated -> "REPLICATED"
  | Single_node -> "SINGLE"

let short_string = function
  | Hashed cols -> Printf.sprintf "H(%s)" (String.concat "," (List.map string_of_int cols))
  | Replicated -> "R"
  | Single_node -> "S"

(** Hash-distribution compatibility for an equi join: both sides hashed on
    column lists of equal length whose corresponding positions are equated
    by the join predicate (or are the same column). *)
let hash_compatible ~equi lcols rcols =
  lcols <> [] && rcols <> []
  && List.length lcols = List.length rcols
  && List.for_all2
    (fun lc rc ->
       List.exists (fun (a, b) -> (a = lc && b = rc) || (a = rc && b = lc)) equi)
    lcols rcols

(** Output distribution of a join executed locally (without data movement),
    or [None] if the child distributions make local execution incorrect.
    [equi] is oriented (left col, right col). *)
let join_local ~(kind : Relop.join_kind) ~equi (l : t) (r : t) : t option =
  let preserves_left_only =
    match kind with
    | Relop.Semi | Relop.Anti_semi | Relop.Left_outer -> true
    | Relop.Inner | Relop.Cross -> false
  in
  match l, r with
  | Hashed lc, Hashed rc -> if hash_compatible ~equi lc rc then Some (Hashed lc) else None
  | Hashed lc, Replicated -> Some (Hashed lc)
  | Replicated, Hashed rc ->
    (* every node holds the full left input; correct for inner/cross joins,
       but semi/anti/outer would emit a left row once per node *)
    if preserves_left_only then None else Some (Hashed rc)
  | Replicated, Replicated -> Some Replicated
  | Single_node, Single_node -> Some Single_node
  | Single_node, Replicated -> Some Single_node
  | Replicated, Single_node -> if preserves_left_only then None else Some Single_node
  | Hashed _, Single_node | Single_node, Hashed _ -> None

(** Can a group-by with the given keys run to completion locally on each
    node?  True when the input partitioning columns are a subset of the
    keys (all rows of a group are co-resident), or the input is not
    partitioned at all. *)
let groupby_local ~keys (d : t) : t option =
  match d with
  | Hashed cols ->
    if cols <> [] && List.for_all (fun c -> List.mem c keys) cols then Some (Hashed cols)
    else None
  | Replicated -> Some Replicated
  | Single_node -> Some Single_node
