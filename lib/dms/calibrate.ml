(** Cost calibration (paper §3.3.3): "The constant lambda is calculated via
    targeted performance tests after a meticulous instrumentation of the
    source code."

    Given instrumented measurements — (bytes processed, seconds) samples per
    cost component — we fit each lambda by least squares through the origin:
    lambda = sum(x*y) / sum(x^2). The engine's DMS runtime produces such
    samples with per-row and fixed overheads on top of the linear term, so
    the fit (and its residual) quantifies how much the constant-lambda
    simplification gives up, which is exactly the trade-off the paper
    discusses. *)

type sample = { bytes : float; seconds : float }

type component = Reader_direct | Reader_hash | Network | Writer | Blkcpy

let component_name = function
  | Reader_direct -> "reader_direct"
  | Reader_hash -> "reader_hash"
  | Network -> "network"
  | Writer -> "writer"
  | Blkcpy -> "blkcpy"

(** Least-squares slope through the origin. *)
let fit_lambda (samples : sample list) : float =
  let sxy, sxx =
    List.fold_left
      (fun (sxy, sxx) s -> (sxy +. (s.bytes *. s.seconds), sxx +. (s.bytes *. s.bytes)))
      (0., 0.) samples
  in
  if sxx <= 0. then 0. else sxy /. sxx

(** Relative RMS residual of the fitted linear model against the samples. *)
let fit_error (lambda : float) (samples : sample list) : float =
  match samples with
  | [] -> 0.
  | _ ->
    let n = float_of_int (List.length samples) in
    let mse =
      List.fold_left
        (fun acc s ->
           let predicted = lambda *. s.bytes in
           let rel =
             if s.seconds > 0. then (predicted -. s.seconds) /. s.seconds else 0.
           in
           acc +. (rel *. rel))
        0. samples
      /. n
    in
    sqrt mse

(** Build a lambda table from per-component measurement sets. *)
let calibrate (measure : component -> sample list) : Cost.lambdas * (component * float) list =
  let fit c = fit_lambda (measure c) in
  let lambdas = {
    Cost.l_reader_direct = fit Reader_direct;
    l_reader_hash = fit Reader_hash;
    l_network = fit Network;
    l_writer = fit Writer;
    l_blkcpy = fit Blkcpy;
  } in
  let errors =
    List.map
      (fun c ->
         let l = match c with
           | Reader_direct -> lambdas.Cost.l_reader_direct
           | Reader_hash -> lambdas.Cost.l_reader_hash
           | Network -> lambdas.Cost.l_network
           | Writer -> lambdas.Cost.l_writer
           | Blkcpy -> lambdas.Cost.l_blkcpy
         in
         (c, fit_error l (measure c)))
      [ Reader_direct; Reader_hash; Network; Writer; Blkcpy ]
  in
  (lambdas, errors)
