(** The DMS cost model (paper §3.3.3 and Fig. 5):

    [C_DMS = max(C_source, C_target)], [C_source = max(C_reader, C_network)],
    [C_target = max(C_writer, C_SQLBlkCpy)], each component linear in the raw
    bytes it processes ([B = Y*w/N] for distributed streams, [Y*w] for
    replicated streams). The reader has two constants because hash routing
    (Shuffle/Trim) costs more than direct reading. *)

type lambdas = {
  l_reader_direct : float;  (** s/byte, reading + packing without hashing *)
  l_reader_hash : float;    (** s/byte, reading + hashing + packing *)
  l_network : float;        (** s/byte sent *)
  l_writer : float;         (** s/byte unpacked into insert buffers *)
  l_blkcpy : float;         (** s/byte bulk-copied into the temp table *)
}

(** Plausible commodity-hardware defaults; production use should replace
    them via {!Calibrate}. *)
val default_lambdas : lambdas

type breakdown = {
  c_reader : float;
  c_network : float;
  c_writer : float;
  c_blkcpy : float;
  c_source : float;      (** max(reader, network) *)
  c_target : float;      (** max(writer, blkcpy) *)
  c_total : float;       (** max(source, target) *)
  bytes_moved : float;   (** total bytes crossing the network *)
}

(** Per-component byte volumes of one operation:
    (reader bytes, reader uses hashing, network bytes, writer bytes). *)
val byte_volumes :
  Op.kind -> nodes:int -> rows:float -> width:float -> float * bool * float * float

(** Cost one DMS operation moving [rows] rows of [width] bytes across an
    appliance of [nodes] compute nodes. *)
val cost : ?lambdas:lambdas -> Op.kind -> nodes:int -> rows:float -> width:float -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit

(** Per-byte and per-row rates of a physical re-partition pipeline
    (reader -> network -> writer), used to price topology changes (crash
    shrink, elastic grow, re-key) identically across all three paths. *)
type move_rates = {
  r_reader_byte : float; r_reader_row : float;
  r_network_byte : float; r_network_row : float;
  r_writer_byte : float; r_writer_row : float;
}

(** Seconds to re-partition [bytes]/[rows] through a full
    reader+network+writer pipeline at the given rates (components summed:
    a re-partition streams every byte through all three stages back to
    back, unlike an overlapped steady-state DMS operator). *)
val repartition_seconds : move_rates -> bytes:float -> rows:float -> float
