(** The seven physical data movement operations of PDW (paper §3.3.2), all
    implemented by one common runtime operator (Fig. 5). *)

type kind =
  | Shuffle of int list
      (** 1. Shuffle Move (many-to-many): re-partition on the hash of the
          given columns. *)
  | Partition_move
      (** 2. Partition Move (many-to-one): gather a distributed stream onto
          a single node (typically the control node). *)
  | Control_node_move
      (** 3. Control-Node Move: replicate a control-node table to all
          compute nodes. *)
  | Broadcast
      (** 4. Broadcast Move: every compute node sends its rows to all
          compute nodes, yielding a replica everywhere. *)
  | Trim of int list
      (** 5. Trim Move: a replicated input is locally re-hashed; each node
          keeps only the rows it is responsible for. No network traffic. *)
  | Replicated_broadcast
      (** 6. Replicated Broadcast: a table resident on one compute node is
          replicated to all nodes via a broadcast. *)
  | Remote_copy
      (** 7. Remote Copy to single node: copy a replicated or distributed
          table onto one node. *)

let name = function
  | Shuffle _ -> "Shuffle"
  | Partition_move -> "PartitionMove"
  | Control_node_move -> "ControlNodeMove"
  | Broadcast -> "Broadcast"
  | Trim _ -> "Trim"
  | Replicated_broadcast -> "ReplicatedBroadcast"
  | Remote_copy -> "RemoteCopy"

let to_string reg = function
  | Shuffle cols ->
    Printf.sprintf "Shuffle(%s)"
      (String.concat "," (List.map (Algebra.Registry.label reg) cols))
  | Trim cols ->
    Printf.sprintf "Trim(%s)"
      (String.concat "," (List.map (Algebra.Registry.label reg) cols))
  | k -> name k

(** Output distribution property of a movement applied to an input with
    distribution [d]; [None] when the operation does not apply. *)
let output_dist (k : kind) (d : Distprop.t) : Distprop.t option =
  match k, d with
  | Shuffle cols, (Distprop.Hashed _ | Distprop.Single_node) -> Some (Distprop.Hashed cols)
  | Shuffle _, Distprop.Replicated -> None (* use Trim instead *)
  | Partition_move, Distprop.Hashed _ -> Some Distprop.Single_node
  | Partition_move, _ -> None
  | Control_node_move, Distprop.Single_node -> Some Distprop.Replicated
  | Control_node_move, _ -> None
  | Broadcast, Distprop.Hashed _ -> Some Distprop.Replicated
  | Broadcast, _ -> None
  | Trim cols, Distprop.Replicated -> Some (Distprop.Hashed cols)
  | Trim _, _ -> None
  | Replicated_broadcast, Distprop.Single_node -> Some Distprop.Replicated
  | Replicated_broadcast, _ -> None
  | Remote_copy, (Distprop.Hashed _ | Distprop.Replicated) -> Some Distprop.Single_node
  | Remote_copy, Distprop.Single_node -> None

(** All movements applicable to input distribution [d] that produce [target].
    [interesting] supplies the candidate hash-column lists for Shuffle/Trim. *)
let moves_to ~(interesting : int list list) (d : Distprop.t) (target : Distprop.t)
  : kind list =
  let candidates =
    List.concat
      [ List.map (fun cols -> Shuffle cols) interesting;
        List.map (fun cols -> Trim cols) interesting;
        [ Partition_move; Control_node_move; Broadcast; Replicated_broadcast; Remote_copy ] ]
  in
  List.filter
    (fun k -> match output_dist k d with
       | Some o -> Distprop.equal o target
       | None -> false)
    candidates
