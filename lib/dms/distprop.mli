(** Distribution properties of intermediate results in the appliance. *)

type t =
  | Hashed of int list
      (** hash-partitioned across the compute nodes on these registry
          columns, in hash order; [Hashed []] means "distributed, no known
          partitioning" (e.g. partial-aggregate streams) *)
  | Replicated   (** a full copy on every compute node *)
  | Single_node  (** resident on the control node *)

val equal : t -> t -> bool

(** Human-readable form using registry labels. *)
val to_string : Algebra.Registry.t -> t -> string

(** Compact form used as a pruning key, e.g. ["H(3,7)"], ["R"], ["S"]. *)
val short_string : t -> string

(** [hash_compatible ~equi lcols rcols] holds when two hash-partitioned
    inputs are partition-compatible for an equi join: non-empty column
    lists of equal length whose corresponding positions are equated by the
    join predicate ([equi] is oriented (left, right) pairs). *)
val hash_compatible : equi:(int * int) list -> int list -> int list -> bool

(** Output distribution of a join executed locally (no data movement), or
    [None] when the child distributions would make local execution
    incorrect. Replicated left inputs are rejected for semi/anti/outer
    joins (they would duplicate preserved rows per node). *)
val join_local :
  kind:Algebra.Relop.join_kind -> equi:(int * int) list -> t -> t -> t option

(** Can a group-by with [keys] run to completion locally on each node?
    True when the input partitioning columns are a (non-empty) subset of
    the keys, or the input is not partitioned at all. *)
val groupby_local : keys:int list -> t -> t option
