(** A minimal, dependency-free parallel runtime over OCaml 5 domains: a
    fixed pool of worker domains plus work-stealing-free fan-out with
    deterministic result order.

    Design constraints (see DESIGN.md "Parallel runtime & plan cache"):

    - {b fixed pool}: domains are spawned once at {!create} and reused for
      every {!parallel_for} / {!parallel_map}, so per-call overhead is a
      queue push, not a domain spawn;
    - {b caller participation}: the calling domain always executes loop
      bodies itself, so a pool whose workers are busy (or a pool with
      [jobs = 1]) still makes progress — nested or concurrent fan-outs
      cannot deadlock;
    - {b determinism}: results land at their input index; [parallel_map]
      returns exactly what [Array.map] would, whatever the schedule;
    - {b graceful fallback}: [jobs <= 1] spawns no domains and runs every
      loop sequentially in the caller, bit-identical to a plain [for]. *)

type t

(** [create ~jobs ()] builds a pool that runs fan-outs on up to [jobs]
    domains ([jobs - 1] spawned workers + the caller). [jobs <= 1] spawns
    nothing and behaves sequentially. *)
val create : jobs:int -> unit -> t

(** A shared pool with [jobs = 1]: no domains, pure sequential execution.
    The default for library consumers that were not handed a pool. *)
val sequential : t

(** The machine's recommended parallelism ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int

(** Number of domains this pool uses (including the caller); >= 1. *)
val jobs : t -> int

(** Total loop bodies executed through this pool so far (sequential
    fallback included) — the source of the [par.tasks] Obs counter. *)
val tasks_run : t -> int

(** [parallel_for t n body] runs [body i] for [i = 0 .. n-1], distributing
    iterations over the pool. Returns when every body has finished. If any
    bodies raise, the exception from the {e lowest-index} failing body is
    re-raised in the caller — the same exception sequential execution would
    surface, whatever the schedule (iterations claimed after a failure are
    skipped). Bodies must only write to disjoint state (e.g. slot [i] of a
    result array). *)
val parallel_for : t -> int -> (int -> unit) -> unit

(** [parallel_map t f arr] is [Array.map f arr] with [f] applications
    distributed over the pool; element order is preserved. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_iter t f arr] is [Array.iter f arr] with no ordering
    guarantee between elements ([f] must tolerate any interleaving). *)
val parallel_iter : t -> ('a -> unit) -> 'a array -> unit

(** [parallel_levels t f levels] is the leveled wavefront fan-out: levels
    run strictly in order (a barrier between consecutive levels), items
    {e within} a level run as a {!parallel_map}. [before_level li items]
    runs in the caller before level [li] is dispatched — the place for
    cancellation polls. [after_level li results] runs in the caller once
    level [li] has fully completed, before the next level is dispatched —
    the place to publish the level's results so the next level reads only
    fully-built entries. Result shape mirrors the input:
    [out.(li).(i) = f levels.(li).(i)]. *)
val parallel_levels :
  t -> ?before_level:(int -> 'a array -> unit) ->
  ?after_level:(int -> 'b array -> unit) -> ('a -> 'b) ->
  'a array array -> 'b array array

(** Stop the workers and join their domains. The pool degrades to
    sequential execution afterwards (calls remain valid). Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] brackets a pool's lifetime: [create], run [f],
    then {!shutdown} — also when [f] raises, so an error mid-run cannot
    leak live domains. Returns [f]'s result. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
