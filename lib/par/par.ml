(* Fixed domain pool. Workers block on a condition variable waiting for
   "help requests"; a fan-out pushes one help request per free worker and
   then drains the iteration space itself, so the caller is always one of
   the executing domains and progress never depends on a worker being
   available. *)

type t = {
  requested_jobs : int;
  queue : (unit -> unit) Queue.t; (* pending help requests *)
  qm : Mutex.t;
  qc : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  tasks : int Atomic.t; (* loop bodies executed, lifetime total *)
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.qm;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.qc t.qm
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qm (* stopped *)
  else begin
    let help = Queue.pop t.queue in
    Mutex.unlock t.qm;
    (* help requests never raise: exceptions are captured per fan-out *)
    help ();
    worker_loop t
  end

let create ~jobs () =
  let t =
    { requested_jobs = max 1 jobs; queue = Queue.create (); qm = Mutex.create ();
      qc = Condition.create (); stopped = false; workers = []; tasks = Atomic.make 0 }
  in
  if t.requested_jobs > 1 then
    t.workers <-
      List.init (t.requested_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let sequential = create ~jobs:1 ()

let jobs t = if t.workers = [] then 1 else 1 + List.length t.workers

let tasks_run t = Atomic.get t.tasks

let shutdown t =
  let ws = t.workers in
  t.workers <- [];
  if ws <> [] then begin
    Mutex.lock t.qm;
    t.stopped <- true;
    Condition.broadcast t.qc;
    Mutex.unlock t.qm;
    List.iter Domain.join ws
  end

let sequential_for t n body =
  for i = 0 to n - 1 do
    body i;
    Atomic.incr t.tasks
  done

let parallel_for t n body =
  if n <= 0 then ()
  else if t.workers = [] || n = 1 then sequential_for t n body
  else begin
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    (* lowest failing index wins, so the exception that surfaces is the one
       sequential execution would have hit, whatever the schedule *)
    let failed : (int * exn) option Atomic.t = Atomic.make None in
    let rec record_failure i e =
      match Atomic.get failed with
      | Some (j, _) when j <= i -> ()
      | cur ->
        if not (Atomic.compare_and_set failed cur (Some (i, e))) then
          record_failure i e
    in
    let fm = Mutex.create () and fc = Condition.create () in
    let finish_one () =
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock fm;
        Condition.broadcast fc;
        Mutex.unlock fm
      end
    in
    (* claim indices until the space is exhausted; on failure, fail fast by
       claiming (and skipping) the rest so [remaining] still reaches 0.
       Claims are ascending, so every skipped index exceeds some recorded
       failure — the minimum recorded index is exactly the first index that
       fails under sequential execution. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match Atomic.get failed with
         | Some _ -> ()
         | None ->
           (try
              body i;
              Atomic.incr t.tasks
            with e -> record_failure i e));
        finish_one ();
        drain ()
      end
    in
    let helpers = min (List.length t.workers) (n - 1) in
    Mutex.lock t.qm;
    for _ = 1 to helpers do
      Queue.push drain t.queue
    done;
    Condition.broadcast t.qc;
    Mutex.unlock t.qm;
    drain ();
    (* helpers may still be inside their last body *)
    Mutex.lock fm;
    while Atomic.get remaining > 0 do
      Condition.wait fc fm
    done;
    Mutex.unlock fm;
    match Atomic.get failed with Some (_, e) -> raise e | None -> ()
  end

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_iter t f arr = parallel_for t (Array.length arr) (fun i -> f arr.(i))

let parallel_levels t ?(before_level = fun _ _ -> ())
    ?(after_level = fun _ _ -> ()) f levels =
  let out = Array.make (Array.length levels) [||] in
  for li = 0 to Array.length levels - 1 do
    before_level li levels.(li);
    out.(li) <- parallel_map t f levels.(li);
    after_level li out.(li)
  done;
  out

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
