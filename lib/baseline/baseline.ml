(** The strawman the paper argues against (§1, §3.2, §5): take the best
    SERIAL plan and parallelize it, inserting data movement operations
    greedily wherever an operator is not locally executable. The join order
    and operator choices are frozen by the serial optimizer; there is no
    global cost-based search over distributed alternatives, no local/global
    aggregation split, and each repair is chosen by local (per-operator)
    movement cost only. *)

open Algebra
open Memo

type opts = {
  nodes : int;
  lambdas : Dms.Cost.lambdas;
}

let default_opts = { nodes = 8; lambdas = Dms.Cost.default_lambdas }

let width_of_layout reg layout =
  Float.max 1. (List.fold_left (fun acc c -> acc +. Registry.width reg c) 0. layout)

let move_cost o kind ~rows ~width =
  (Dms.Cost.cost ~lambdas:o.lambdas kind ~nodes:o.nodes ~rows ~width).Dms.Cost.c_total

(* wrap a plan with a movement *)
let apply_move o reg kind (p : Pdwopt.Pplan.t) layout =
  let width = width_of_layout reg layout in
  let dist =
    match Dms.Op.output_dist kind p.Pdwopt.Pplan.dist with
    | Some d -> d
    | None -> invalid_arg "Baseline.apply_move: inapplicable movement"
  in
  { Pdwopt.Pplan.op = Pdwopt.Pplan.Move { kind; cols = layout };
    children = [ p ];
    dist;
    rows = p.Pdwopt.Pplan.rows;
    group = p.Pdwopt.Pplan.group;
    dms_cost = p.Pdwopt.Pplan.dms_cost +. move_cost o kind ~rows:p.Pdwopt.Pplan.rows ~width;
    serial_cost = p.Pdwopt.Pplan.serial_cost }

let scan_dist (shell : Catalog.Shell_db.t) table (cols : int array) : Dms.Distprop.t =
  match Catalog.Shell_db.find shell table with
  | None -> Dms.Distprop.Hashed []
  | Some tbl ->
    (match tbl.Catalog.Shell_db.dist with
     | Catalog.Distribution.Replicated -> Dms.Distprop.Replicated
     | Catalog.Distribution.Hash_partitioned names ->
       let schema = tbl.Catalog.Shell_db.schema in
       let ids =
         List.filter_map
           (fun n ->
              match Catalog.Schema.find_col schema n with
              | Some i when i < Array.length cols -> Some cols.(i)
              | _ -> None)
           names
       in
       Dms.Distprop.Hashed ids)

exception Cannot_parallelize of string

(** Parallelize a serial plan over the appliance layout. *)
let parallelize ?(opts = default_opts) (reg : Registry.t) (shell : Catalog.Shell_db.t)
    (serial : Serialopt.Plan.t) : Pdwopt.Pplan.t =
  let o = opts in
  let rec go (p : Serialopt.Plan.t) : Pdwopt.Pplan.t =
    let children = List.map go p.Serialopt.Plan.children in
    let mk op dist children =
      { Pdwopt.Pplan.op = Pdwopt.Pplan.Serial op;
        children;
        dist;
        rows = p.Serialopt.Plan.card;
        group = -1;
        dms_cost =
          List.fold_left (fun a (c : Pdwopt.Pplan.t) -> a +. c.Pdwopt.Pplan.dms_cost) 0.
            children;
        serial_cost = 0. }
    in
    match p.Serialopt.Plan.op, children with
    | Physop.Table_scan { table; cols; _ }, [] ->
      mk p.Serialopt.Plan.op (scan_dist shell table cols) []
    | (Physop.Filter _ | Physop.Compute _ | Physop.Sort_op _), [ c ] ->
      mk p.Serialopt.Plan.op c.Pdwopt.Pplan.dist [ c ]
    | Physop.Const_empty _, [] -> mk p.Serialopt.Plan.op Dms.Distprop.Replicated []
    | ( Physop.Hash_join { kind; pred } | Physop.Merge_join { kind; pred }
      | Physop.Nl_join { kind; pred } ), [ l; r ] ->
      let llay = Serialopt.Plan.output_layout (List.nth p.Serialopt.Plan.children 0) in
      let rlay = Serialopt.Plan.output_layout (List.nth p.Serialopt.Plan.children 1) in
      let equi =
        Physop.oriented_equi_pairs pred
          ~left_cols:(Registry.Col_set.of_list llay)
          ~right_cols:(Registry.Col_set.of_list rlay)
      in
      (* candidate repairs: (left moves, right moves) *)
      let candidates : (Pdwopt.Pplan.t * Pdwopt.Pplan.t) list =
        let id = (l, r) in
        let shuffle_l =
          if equi = [] then []
          else
            match l.Pdwopt.Pplan.dist with
            | Dms.Distprop.Hashed _ | Dms.Distprop.Single_node ->
              [ (apply_move o reg (Dms.Op.Shuffle (List.map fst equi)) l llay, r) ]
            | Dms.Distprop.Replicated ->
              [ (apply_move o reg (Dms.Op.Trim (List.map fst equi)) l llay, r) ]
        in
        let shuffle_r =
          if equi = [] then []
          else
            match r.Pdwopt.Pplan.dist with
            | Dms.Distprop.Hashed _ | Dms.Distprop.Single_node ->
              [ (l, apply_move o reg (Dms.Op.Shuffle (List.map snd equi)) r rlay) ]
            | Dms.Distprop.Replicated ->
              [ (l, apply_move o reg (Dms.Op.Trim (List.map snd equi)) r rlay) ]
        in
        let shuffle_both =
          match shuffle_l, shuffle_r with
          | [ (l', _) ], [ (_, r') ] -> [ (l', r') ]
          | _ -> []
        in
        let bcast_r =
          match r.Pdwopt.Pplan.dist with
          | Dms.Distprop.Hashed _ -> [ (l, apply_move o reg Dms.Op.Broadcast r rlay) ]
          | Dms.Distprop.Single_node ->
            [ (l, apply_move o reg Dms.Op.Replicated_broadcast r rlay) ]
          | Dms.Distprop.Replicated -> []
        in
        let bcast_l =
          (* broadcasting the preserved side is only sound for inner/cross *)
          match kind, l.Pdwopt.Pplan.dist with
          | (Relop.Inner | Relop.Cross), Dms.Distprop.Hashed _ ->
            [ (apply_move o reg Dms.Op.Broadcast l llay, r) ]
          | (Relop.Inner | Relop.Cross), Dms.Distprop.Single_node ->
            [ (apply_move o reg Dms.Op.Replicated_broadcast l llay, r) ]
          | _ -> []
        in
        id :: (shuffle_l @ shuffle_r @ shuffle_both @ bcast_r @ bcast_l)
      in
      let viable =
        List.filter_map
          (fun (l', r') ->
             match
               Dms.Distprop.join_local ~kind ~equi l'.Pdwopt.Pplan.dist
                 r'.Pdwopt.Pplan.dist
             with
             | Some dist -> Some (mk p.Serialopt.Plan.op dist [ l'; r' ])
             | None -> None)
          candidates
      in
      (match viable with
       | [] -> raise (Cannot_parallelize "no repair makes this join local")
       | first :: rest ->
         List.fold_left
           (fun (best : Pdwopt.Pplan.t) (cand : Pdwopt.Pplan.t) ->
              if cand.Pdwopt.Pplan.dms_cost < best.Pdwopt.Pplan.dms_cost then cand else best)
           first rest)
    | (Physop.Hash_agg { keys; _ } | Physop.Stream_agg { keys; _ }), [ c ] ->
      let clay = Serialopt.Plan.output_layout (List.nth p.Serialopt.Plan.children 0) in
      (match Dms.Distprop.groupby_local ~keys c.Pdwopt.Pplan.dist with
       | Some dist -> mk p.Serialopt.Plan.op dist [ c ]
       | None ->
         let c' =
           if keys = [] then apply_move o reg Dms.Op.Partition_move c clay
           else apply_move o reg (Dms.Op.Shuffle keys) c clay
         in
         let dist =
           match Dms.Distprop.groupby_local ~keys c'.Pdwopt.Pplan.dist with
           | Some d -> d
           | None -> raise (Cannot_parallelize "group-by repair failed")
         in
         mk p.Serialopt.Plan.op dist [ c' ])
    | Physop.Union_op, [ l; r ] ->
      (* align the branches: move the right branch onto the left's
         distribution (or fail) *)
      let rlay = Serialopt.Plan.output_layout (List.nth p.Serialopt.Plan.children 1) in
      let aligned =
        if Dms.Distprop.equal l.Pdwopt.Pplan.dist r.Pdwopt.Pplan.dist then Some r
        else
          match l.Pdwopt.Pplan.dist, r.Pdwopt.Pplan.dist with
          | Dms.Distprop.Hashed cols, (Dms.Distprop.Hashed _ | Dms.Distprop.Single_node)
            when cols <> [] ->
            Some (apply_move o reg (Dms.Op.Shuffle cols) r rlay)
          | Dms.Distprop.Hashed cols, Dms.Distprop.Replicated when cols <> [] ->
            Some (apply_move o reg (Dms.Op.Trim cols) r rlay)
          | Dms.Distprop.Replicated, Dms.Distprop.Single_node ->
            Some (apply_move o reg Dms.Op.Replicated_broadcast r rlay)
          | Dms.Distprop.Single_node, (Dms.Distprop.Hashed _ | Dms.Distprop.Replicated) ->
            Some (apply_move o reg Dms.Op.Remote_copy r rlay)
          | _ -> None
      in
      (match aligned with
       | Some r' -> mk p.Serialopt.Plan.op l.Pdwopt.Pplan.dist [ l; r' ]
       | None -> raise (Cannot_parallelize "cannot align union branches"))
    | _ -> raise (Cannot_parallelize "malformed serial plan")
  in
  let body = go serial in
  (* root Return: reuse a top-level Sort's keys for the final merge *)
  let sort, limit =
    match serial.Serialopt.Plan.op with
    | Physop.Sort_op { keys; limit } -> (keys, limit)
    | _ -> ([], None)
  in
  (* Return streams to the client and does not discriminate plans. *)
  let return_cost = 0. in
  { Pdwopt.Pplan.op = Pdwopt.Pplan.Return { sort; limit };
    children = [ body ];
    dist = Dms.Distprop.Single_node;
    rows = body.Pdwopt.Pplan.rows;
    group = -1;
    dms_cost = body.Pdwopt.Pplan.dms_cost +. return_cost;
    serial_cost = body.Pdwopt.Pplan.serial_cost }
