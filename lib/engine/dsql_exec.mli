(** DSQL-plan executor: runs the *generated SQL text* of each DSQL step
    (paper §2.4), which is the strongest possible check on DSQL generation.

    For every DMS step, the step's source SQL statement is re-parsed and
    algebrized against a scratch shell database that also contains the
    schemas of previously materialized temp tables, executed on every node
    holding input data, and the resulting rows are routed by the DMS
    runtime into the destination temp table. The final Return step's SQL
    produces the client result. Temp payloads keep the appliance's engine
    representation (row or columnar) end to end. *)

open Algebra

type rows = Catalog.Value.t array list

(** Where a temp table's payload lives (row- or column-major, matching
    the appliance's engine). *)
type placement =
  | On_nodes of Rset.t array     (** one shard per compute node *)
  | On_control of Rset.t
  | Replicated_everywhere of Rset.t

type state = {
  app : Appliance.t;
  scratch : Catalog.Shell_db.t;      (** base schemas + temp schemas *)
  temps : (string, placement) Hashtbl.t;
  plan_reg : Registry.t;
}

exception Dsql_exec_error of string

(** A fresh execution state over the appliance's schemas; temp tables
    register their schemas here as steps materialize them. *)
val create : Appliance.t -> Registry.t -> state

(** Execute a full DSQL plan: every step's SQL text is re-parsed,
    algebrized, run on the nodes holding its inputs, and moved by the DMS
    runtime; returns the client result of the Return step. *)
val run : Appliance.t -> Dsql.Generate.plan -> Local.rset
