(** Columnar batches and vectorized operator kernels: the columnar
    engine's counterpart of {!Local}'s row-at-a-time interpreter.

    A batch is a set of typed columns ({!Catalog.Column.t}) plus an
    optional *selection vector*: filters never materialize, they narrow
    the selection, and downstream kernels (aggregation in particular)
    iterate the selection over the original column slices. Kernels have
    unboxed fast paths for the common numeric cases and fall back to
    per-row {!Algebra.Expr.eval} over boxed values everywhere else, so
    results are row-identical to the {!Local} oracle — including output
    *order*, which mirrors the row engine's construction order exactly
    (probe-side order for joins, first-seen order for groups, stable
    sorts). *)

open Algebra
open Memo
module Value = Catalog.Value
module Column = Catalog.Column

type t = {
  layout : int array;        (** column ids, parallel to [cols] *)
  cols : Column.t array;     (** dense columns, each of [rows] cells *)
  rows : int;                (** dense row count *)
  sel : int array option;    (** selected row indices in order; [None] = all *)
}

(** Visible (selected) row count. *)
let count b = match b.sel with Some s -> Array.length s | None -> b.rows

let identity n =
  let a = Array.make (max n 0) 0 in
  for i = 0 to n - 1 do Array.unsafe_set a i i done;
  a

let sel_array b = match b.sel with Some s -> s | None -> identity b.rows

(** Materialize the selection: gather every column down to the selected
    rows. No-op on dense batches. *)
let compact b =
  match b.sel with
  | None -> b
  | Some s ->
    { b with cols = Array.map (fun c -> Column.gather c s) b.cols;
      rows = Array.length s; sel = None }

(** Serialized bytes of the visible rows, matching the row engine's
    per-value {!Catalog.Value.width} accounting bit-for-bit. *)
let bytes b : float =
  match b.sel with
  | None -> Array.fold_left (fun acc c -> acc +. float_of_int (Column.bytes c)) 0. b.cols
  | Some s ->
    let acc = ref 0 in
    Array.iter
      (fun c -> Array.iter (fun i -> acc := !acc + Column.bytes_at c i) s)
      b.cols;
    float_of_int !acc

(* -- conversions -- *)

let of_rset (r : Local.rset) : t =
  let layout = Array.of_list r.Local.layout in
  let w = Array.length layout in
  let n = List.length r.Local.rows in
  let bs = Array.init w (fun _ -> Column.Builder.create ~capacity:(max 1 n) ()) in
  List.iter
    (fun row -> for j = 0 to w - 1 do Column.Builder.add bs.(j) row.(j) done)
    r.Local.rows;
  { layout; cols = Array.map Column.Builder.finish bs; rows = n; sel = None }

let to_rset (b : t) : Local.rset =
  let b = compact b in
  let w = Array.length b.cols in
  { Local.layout = Array.to_list b.layout;
    rows = List.init b.rows (fun i -> Array.init w (fun j -> Column.get b.cols.(j) i)) }

(** View a column-major base table as a dense batch (layout filled in by
    the scan operator). *)
let of_table (tbl : Column.table) : t =
  { layout = Array.make (Array.length tbl.Column.cols) (-1);
    cols = tbl.Column.cols; rows = tbl.Column.nrows; sel = None }

let empty (layout : int list) : t =
  { layout = Array.of_list layout;
    cols = Array.of_list (List.map (fun _ -> Column.Boxed [||]) layout);
    rows = 0; sel = None }

(* -- layout resolution -- *)

type ctx = { idx : (int, int) Hashtbl.t; b : t }

let ctx_of b : ctx =
  let idx = Hashtbl.create (Array.length b.layout) in
  Array.iteri (fun i c -> if not (Hashtbl.mem idx c) then Hashtbl.replace idx c i) b.layout;
  { idx; b }

let col_pos ctx c =
  match Hashtbl.find_opt ctx.idx c with
  | Some j -> j
  | None -> raise (Local.Exec_error (Printf.sprintf "column #%d not in layout" c))

(** Positions (first occurrence) of [cols] in the batch layout. *)
let positions (b : t) (cols : int list) : int array =
  let ctx = ctx_of b in
  Array.of_list (List.map (col_pos ctx) cols)

(* boxed row view at dense index [i], for exact-semantics fallbacks *)
let env_at ctx i (c : int) : Value.t = Column.get ctx.b.cols.(col_pos ctx c) i

(* -- small growable int vector (join/group outputs) -- *)

module Ivec = struct
  type t = { mutable a : int array; mutable len : int }
  let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; len = 0 }
  let push v x =
    if v.len = Array.length v.a then begin
      let a' = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 a' 0 v.len;
      v.a <- a'
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1
  let contents v = Array.sub v.a 0 v.len
end

(* -- expression evaluation over column slices -- *)

let const_col (v : Value.t) n : Column.t =
  match v with
  | Value.Int x ->
    let d = Column.make_ints n in
    Bigarray.Array1.fill d x;
    Column.Ints { tag = Column.As_int; data = d; nulls = None }
  | Value.Date x ->
    let d = Column.make_ints n in
    Bigarray.Array1.fill d x;
    Column.Ints { tag = Column.As_date; data = d; nulls = None }
  | Value.Bool x ->
    let d = Column.make_ints n in
    Bigarray.Array1.fill d (if x then 1 else 0);
    Column.Ints { tag = Column.As_bool; data = d; nulls = None }
  | Value.Float x ->
    let d = Column.make_floats n in
    Bigarray.Array1.fill d x;
    Column.Floats { data = d; nulls = None }
  | _ -> Column.Boxed (Array.make n v)

(* generic combiner: exact [Expr.eval] null/arith semantics per row *)
let arith_generic op ca cb n : Column.t =
  let bld = Column.Builder.create ~capacity:(max 1 n) () in
  for i = 0 to n - 1 do
    let x = Column.get ca i and y = Column.get cb i in
    Column.Builder.add bld
      (if Value.is_null x || Value.is_null y then Value.Null else Expr.arith op x y)
  done;
  Column.Builder.finish bld

let arith_cols (op : Expr.binop) (ca : Column.t) (cb : Column.t) : Column.t =
  let n = Column.length ca in
  match ca, cb, op with
  | Column.Ints { tag = Column.As_int; data = xa; nulls = None },
    Column.Ints { tag = Column.As_int; data = xb; nulls = None },
    (Expr.Add | Expr.Sub | Expr.Mul) ->
    let d = Column.make_ints n in
    (match op with
     | Expr.Add -> for i = 0 to n - 1 do d.{i} <- xa.{i} + xb.{i} done
     | Expr.Sub -> for i = 0 to n - 1 do d.{i} <- xa.{i} - xb.{i} done
     | _ -> for i = 0 to n - 1 do d.{i} <- xa.{i} * xb.{i} done);
    Column.Ints { tag = Column.As_int; data = d; nulls = None }
  | Column.Floats { data = xa; nulls = None },
    Column.Floats { data = xb; nulls = None },
    (Expr.Add | Expr.Sub | Expr.Mul) ->
    let d = Column.make_floats n in
    (match op with
     | Expr.Add -> for i = 0 to n - 1 do d.{i} <- xa.{i} +. xb.{i} done
     | Expr.Sub -> for i = 0 to n - 1 do d.{i} <- xa.{i} -. xb.{i} done
     | _ -> for i = 0 to n - 1 do d.{i} <- xa.{i} *. xb.{i} done);
    Column.Floats { data = d; nulls = None }
  | Column.Floats { data = xa; nulls = None },
    Column.Ints { tag = Column.As_int; data = xb; nulls = None },
    (Expr.Add | Expr.Sub | Expr.Mul) ->
    let d = Column.make_floats n in
    (match op with
     | Expr.Add -> for i = 0 to n - 1 do d.{i} <- xa.{i} +. float_of_int xb.{i} done
     | Expr.Sub -> for i = 0 to n - 1 do d.{i} <- xa.{i} -. float_of_int xb.{i} done
     | _ -> for i = 0 to n - 1 do d.{i} <- xa.{i} *. float_of_int xb.{i} done);
    Column.Floats { data = d; nulls = None }
  | Column.Ints { tag = Column.As_int; data = xa; nulls = None },
    Column.Floats { data = xb; nulls = None },
    (Expr.Add | Expr.Sub | Expr.Mul) ->
    let d = Column.make_floats n in
    (match op with
     | Expr.Add -> for i = 0 to n - 1 do d.{i} <- float_of_int xa.{i} +. xb.{i} done
     | Expr.Sub -> for i = 0 to n - 1 do d.{i} <- float_of_int xa.{i} -. xb.{i} done
     | _ -> for i = 0 to n - 1 do d.{i} <- float_of_int xa.{i} *. xb.{i} done);
    Column.Floats { data = d; nulls = None }
  | _ -> arith_generic op ca cb n

let cmp_cols (op : Expr.binop) ca cb n : Column.t =
  let bld = Column.Builder.create ~capacity:(max 1 n) () in
  for i = 0 to n - 1 do
    Column.Builder.add bld
      (match Expr.compare3 op (Column.get ca i) (Column.get cb i) with
       | Some b -> Value.Bool b
       | None -> Value.Null)
  done;
  Column.Builder.finish bld

(** Evaluate [e] over the selected rows of the context batch; the result
    is a dense column of [length sel] cells, in selection order. *)
let rec eval_col ctx (sel : int array option) (e : Expr.t) : Column.t =
  let n = match sel with Some s -> Array.length s | None -> ctx.b.rows in
  match e with
  | Expr.Col c ->
    let col = ctx.b.cols.(col_pos ctx c) in
    (match sel with None -> col | Some s -> Column.gather col s)
  | Expr.Lit v -> const_col v n
  | Expr.Bin ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod) as op, a, b) ->
    arith_cols op (eval_col ctx sel a) (eval_col ctx sel b)
  | Expr.Bin ((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op, a, b) ->
    cmp_cols op (eval_col ctx sel a) (eval_col ctx sel b) n
  | Expr.Un (Expr.Neg, a) ->
    let ca = eval_col ctx sel a in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld
        (match Column.get ca i with
         | Value.Int x -> Value.Int (-x)
         | Value.Float x -> Value.Float (-.x)
         | Value.Null -> Value.Null
         | v -> Expr.type_err "negate %s" (Value.to_string v))
    done;
    Column.Builder.finish bld
  | Expr.Un (Expr.Not, a) ->
    let ca = eval_col ctx sel a in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld
        (match Column.get ca i with
         | Value.Bool b -> Value.Bool (not b)
         | Value.Null -> Value.Null
         | v -> Expr.type_err "NOT %s" (Value.to_string v))
    done;
    Column.Builder.finish bld
  | Expr.Is_null (a, negated) ->
    let ca = eval_col ctx sel a in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      let nl = Column.is_null ca i in
      Column.Builder.add bld (Value.Bool (if negated then not nl else nl))
    done;
    Column.Builder.finish bld
  | Expr.Like (a, pattern, negated) ->
    let ca = eval_col ctx sel a in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld
        (match Column.get ca i with
         | Value.Null -> Value.Null
         | Value.String s ->
           let m = Expr.like_match ~pattern s in
           Value.Bool (if negated then not m else m)
         | v -> Expr.type_err "LIKE on %s" (Value.to_string v))
    done;
    Column.Builder.finish bld
  | Expr.In_list (a, items, negated) ->
    let ca = eval_col ctx sel a in
    let has_null = List.exists Value.is_null items in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld
        (match Column.get ca i with
         | Value.Null -> Value.Null
         | v ->
           let m =
             List.exists (fun it -> (not (Value.is_null it)) && Value.equal v it) items
           in
           if m then Value.Bool (not negated)
           else if has_null then Value.Null
           else Value.Bool negated)
    done;
    Column.Builder.finish bld
  | Expr.Cast (a, ty) ->
    let ca = eval_col ctx sel a in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld (Expr.cast_value ty (Column.get ca i))
    done;
    Column.Builder.finish bld
  | Expr.Func (fn, args) ->
    let cargs = List.map (eval_col ctx sel) args in
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    for i = 0 to n - 1 do
      Column.Builder.add bld
        (Expr.apply_func fn (List.map (fun c -> Column.get c i) cargs))
    done;
    Column.Builder.finish bld
  | Expr.Bin ((Expr.And | Expr.Or), _, _) | Expr.Case _ ->
    (* per-row laziness (short-circuit AND/OR, CASE branch selection) is
       part of the row semantics: evaluate exactly like the oracle *)
    let bld = Column.Builder.create ~capacity:(max 1 n) () in
    (match sel with
     | None ->
       for i = 0 to n - 1 do Column.Builder.add bld (Expr.eval (env_at ctx i) e) done
     | Some s ->
       Array.iter (fun i -> Column.Builder.add bld (Expr.eval (env_at ctx i) e)) s);
    Column.Builder.finish bld

(* -- predicate filtering: selection in, narrowed selection out -- *)

let cmp_test (op : Expr.binop) (c : int) =
  match op with
  | Expr.Eq -> c = 0 | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0 | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0 | Expr.Ge -> c >= 0
  | _ -> assert false

(* mirror a comparison so the literal moves to the right-hand side *)
let mirror_cmp = function
  | Expr.Lt -> Expr.Gt | Expr.Gt -> Expr.Lt
  | Expr.Le -> Expr.Ge | Expr.Ge -> Expr.Le
  | op -> op

(* Zero-materialization comparison filters: the hot WHERE shapes
   (column <op> literal, column <op> column) loop directly over the stored
   column through the selection indirection — no gather, no constant-column
   fill, no intermediate Bigarrays. Semantics are [Expr.compare3]'s exactly
   (numeric int/float mixing, UNKNOWN drops the row). The comparison operator
   is hoisted into sign flags and the null mask matched once, so the per-row
   work is branch + store with no function calls. *)
(* Per-domain scratch buffer for selection outputs: filters write matching
   row indices here, then copy out the exact-size result. Reused across
   calls so the transient full-width buffers never hit the major heap —
   allocation-triggered GC marking otherwise makes filter cost grow with
   the *live* heap, superlinearly in the scale factor. Each pool domain
   gets its own buffer, and outputs never alias it because every result is
   a fresh [Array.sub]. *)
let scratch_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let scratch_buf n =
  let r = Domain.DLS.get scratch_key in
  if Array.length !r < n then r := Array.make (max n (2 * Array.length !r)) 0;
  !r

(* [sel = None] means the dense rows [0 .. n-1]. *)
let keep_ints (sel : int array option) ~(n : int) ~lt_ok ~eq_ok ~gt_ok
    (data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t)
    (nulls : Bytes.t option) (c : int) : int array option =
  let buf = scratch_buf n in
  let m = ref 0 in
  (match sel, nulls with
   | None, None ->
     for i = 0 to n - 1 do
       let x = Bigarray.Array1.unsafe_get data i in
       if (if x < c then lt_ok else if x = c then eq_ok else gt_ok) then begin
         Array.unsafe_set buf !m i; incr m
       end
     done
   | Some s, None ->
     for k = 0 to n - 1 do
       let i = Array.unsafe_get s k in
       let x = Bigarray.Array1.unsafe_get data i in
       if (if x < c then lt_ok else if x = c then eq_ok else gt_ok) then begin
         Array.unsafe_set buf !m i; incr m
       end
     done
   | None, Some nb ->
     for i = 0 to n - 1 do
       if Bytes.unsafe_get nb i = '\000' then begin
         let x = Bigarray.Array1.unsafe_get data i in
         if (if x < c then lt_ok else if x = c then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       end
     done
   | Some s, Some nb ->
     for k = 0 to n - 1 do
       let i = Array.unsafe_get s k in
       if Bytes.unsafe_get nb i = '\000' then begin
         let x = Bigarray.Array1.unsafe_get data i in
         if (if x < c then lt_ok else if x = c then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       end
     done);
  Some (Array.sub buf 0 !m)

let keep_floats (sel : int array option) ~(n : int) ~lt_ok ~eq_ok ~gt_ok
    (data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t)
    (nulls : Bytes.t option) (c : float) : int array option =
  let buf = scratch_buf n in
  let m = ref 0 in
  (match sel, nulls with
   | None, None ->
     for i = 0 to n - 1 do
       let v = Float.compare (Bigarray.Array1.unsafe_get data i) c in
       if (if v < 0 then lt_ok else if v = 0 then eq_ok else gt_ok) then begin
         Array.unsafe_set buf !m i; incr m
       end
     done
   | Some s, None ->
     for k = 0 to n - 1 do
       let i = Array.unsafe_get s k in
       let v = Float.compare (Bigarray.Array1.unsafe_get data i) c in
       if (if v < 0 then lt_ok else if v = 0 then eq_ok else gt_ok) then begin
         Array.unsafe_set buf !m i; incr m
       end
     done
   | None, Some nb ->
     for i = 0 to n - 1 do
       if Bytes.unsafe_get nb i = '\000' then begin
         let v = Float.compare (Bigarray.Array1.unsafe_get data i) c in
         if (if v < 0 then lt_ok else if v = 0 then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       end
     done
   | Some s, Some nb ->
     for k = 0 to n - 1 do
       let i = Array.unsafe_get s k in
       if Bytes.unsafe_get nb i = '\000' then begin
         let v = Float.compare (Bigarray.Array1.unsafe_get data i) c in
         if (if v < 0 then lt_ok else if v = 0 then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       end
     done);
  Some (Array.sub buf 0 !m)

let filter_cmp_fast ctx (sel : int array option) ~(n : int) op ea eb :
  int array option =
  let lt_ok = (op = Expr.Lt || op = Expr.Le || op = Expr.Ne) in
  let eq_ok = (op = Expr.Le || op = Expr.Ge || op = Expr.Eq) in
  let gt_ok = (op = Expr.Gt || op = Expr.Ge || op = Expr.Ne) in
  let keep test =
    let buf = scratch_buf n in
    let m = ref 0 in
    (match sel with
     | None ->
       for i = 0 to n - 1 do
         if test i then begin buf.(!m) <- i; incr m end
       done
     | Some s ->
       for k = 0 to n - 1 do
         let i = Array.unsafe_get s k in
         if test i then begin buf.(!m) <- i; incr m end
       done);
    Some (Array.sub buf 0 !m)
  in
  let col = function Expr.Col c -> Some ctx.b.cols.(col_pos ctx c) | _ -> None in
  match col ea, col eb, ea, eb with
  | Some ca, Some cb, _, _ ->
    (match ca, cb with
     | Column.Ints { tag = ta; data = xa; nulls = None },
       Column.Ints { tag = tb; data = xb; nulls = None } when ta = tb ->
       let buf = scratch_buf n in
       let m = ref 0 in
       let row i =
         let x = Bigarray.Array1.unsafe_get xa i
         and y = Bigarray.Array1.unsafe_get xb i in
         if (if x < y then lt_ok else if x = y then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       in
       (match sel with
        | None -> for i = 0 to n - 1 do row i done
        | Some s -> for k = 0 to n - 1 do row (Array.unsafe_get s k) done);
       Some (Array.sub buf 0 !m)
     | Column.Ints { tag = ta; data = xa; nulls = na },
       Column.Ints { tag = tb; data = xb; nulls = nb } when ta = tb ->
       keep (fun i ->
           (not (Column.null_bit na i)) && (not (Column.null_bit nb i))
           && cmp_test op (Int.compare xa.{i} xb.{i}))
     | Column.Floats { data = xa; nulls = None }, Column.Floats { data = xb; nulls = None } ->
       let buf = scratch_buf n in
       let m = ref 0 in
       let row i =
         let v =
           Float.compare (Bigarray.Array1.unsafe_get xa i)
             (Bigarray.Array1.unsafe_get xb i)
         in
         if (if v < 0 then lt_ok else if v = 0 then eq_ok else gt_ok) then begin
           Array.unsafe_set buf !m i; incr m
         end
       in
       (match sel with
        | None -> for i = 0 to n - 1 do row i done
        | Some s -> for k = 0 to n - 1 do row (Array.unsafe_get s k) done);
       Some (Array.sub buf 0 !m)
     | Column.Floats { data = xa; nulls = na }, Column.Floats { data = xb; nulls = nb } ->
       keep (fun i ->
           (not (Column.null_bit na i)) && (not (Column.null_bit nb i))
           && cmp_test op (Float.compare xa.{i} xb.{i}))
     | Column.Ints { tag = Column.As_int; data = xa; nulls = na },
       Column.Floats { data = xb; nulls = nb } ->
       keep (fun i ->
           (not (Column.null_bit na i)) && (not (Column.null_bit nb i))
           && cmp_test op (Float.compare (float_of_int xa.{i}) xb.{i}))
     | Column.Floats { data = xa; nulls = na },
       Column.Ints { tag = Column.As_int; data = xb; nulls = nb } ->
       keep (fun i ->
           (not (Column.null_bit na i)) && (not (Column.null_bit nb i))
           && cmp_test op (Float.compare xa.{i} (float_of_int xb.{i})))
     | _ ->
       keep (fun i ->
           match Expr.compare3 op (Column.get ca i) (Column.get cb i) with
           | Some true -> true
           | _ -> false))
  | Some ca, None, _, Expr.Lit v | None, Some ca, Expr.Lit v, _ ->
    let op = match eb with Expr.Lit _ -> op | _ -> mirror_cmp op in
    let lt_ok = (op = Expr.Lt || op = Expr.Le || op = Expr.Ne) in
    let eq_ok = (op = Expr.Le || op = Expr.Ge || op = Expr.Eq) in
    let gt_ok = (op = Expr.Gt || op = Expr.Ge || op = Expr.Ne) in
    if Value.is_null v then Some [||]
    else begin
      match ca, v with
      | Column.Ints { tag = Column.As_int; data; nulls }, Value.Int c ->
        keep_ints sel ~n ~lt_ok ~eq_ok ~gt_ok data nulls c
      | Column.Ints { tag = Column.As_date; data; nulls }, Value.Date c ->
        keep_ints sel ~n ~lt_ok ~eq_ok ~gt_ok data nulls c
      | Column.Ints { tag = Column.As_bool; data; nulls }, Value.Bool c ->
        keep_ints sel ~n ~lt_ok ~eq_ok ~gt_ok data nulls (if c then 1 else 0)
      | Column.Ints { tag = Column.As_int; data; nulls }, Value.Float f ->
        keep (fun i ->
            (not (Column.null_bit nulls i))
            && cmp_test op (Float.compare (float_of_int data.{i}) f))
      | Column.Floats { data; nulls }, Value.Float f ->
        keep_floats sel ~n ~lt_ok ~eq_ok ~gt_ok data nulls f
      | Column.Floats { data; nulls }, Value.Int c ->
        keep_floats sel ~n ~lt_ok ~eq_ok ~gt_ok data nulls (float_of_int c)
      | Column.Boxed arr, _ ->
        keep (fun i ->
            match Expr.compare3 op arr.(i) v with Some true -> true | _ -> false)
      | _ ->
        keep (fun i ->
            match Expr.compare3 op (Column.get ca i) v with
            | Some true -> true
            | _ -> false)
    end
  | _ -> None

(* [sel = None] = all dense rows of the batch, avoiding the identity
   selection array entirely (its allocation alone dominated cheap
   filters). Returns the surviving row indices. *)
let rec filter_sel ctx (sel : int array option) (e : Expr.t) : int array =
  let n = match sel with Some s -> Array.length s | None -> ctx.b.rows in
  (* map a position in the evaluated (selection-compacted) column back to
     its dense row index *)
  let row_of =
    match sel with None -> fun k -> k | Some s -> fun k -> Array.unsafe_get s k
  in
  match e with
  | Expr.Bin (Expr.And, a, b) ->
    (* WHERE-clause AND: both conjuncts must be true, which sequential
       narrowing computes (UNKNOWN drops the row either way) *)
    filter_sel ctx (Some (filter_sel ctx sel a)) b
  | Expr.Bin ((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op, a, b) ->
    (match filter_cmp_fast ctx sel ~n op a b with
     | Some narrowed -> narrowed
     | None ->
       (* operands are computed expressions: materialize them densely once,
          then compare in selection order *)
       let ca = eval_col ctx sel a and cb = eval_col ctx sel b in
       let buf = scratch_buf n in
       let m = ref 0 in
       (match ca, cb with
        | Column.Ints { tag = ta; data = xa; nulls = None },
          Column.Ints { tag = tb; data = xb; nulls = None }
          when ta = tb ->
          for k = 0 to n - 1 do
            if cmp_test op (Int.compare xa.{k} xb.{k}) then begin
              buf.(!m) <- row_of k; incr m
            end
          done
        | Column.Floats { data = xa; nulls = None },
          Column.Floats { data = xb; nulls = None } ->
          for k = 0 to n - 1 do
            if cmp_test op (Float.compare xa.{k} xb.{k}) then begin
              buf.(!m) <- row_of k; incr m
            end
          done
        | Column.Ints { tag = Column.As_int; data = xa; nulls = None },
          Column.Floats { data = xb; nulls = None } ->
          for k = 0 to n - 1 do
            if cmp_test op (Float.compare (float_of_int xa.{k}) xb.{k}) then begin
              buf.(!m) <- row_of k; incr m
            end
          done
        | Column.Floats { data = xa; nulls = None },
          Column.Ints { tag = Column.As_int; data = xb; nulls = None } ->
          for k = 0 to n - 1 do
            if cmp_test op (Float.compare xa.{k} (float_of_int xb.{k})) then begin
              buf.(!m) <- row_of k; incr m
            end
          done
        | _ ->
          for k = 0 to n - 1 do
            match Expr.compare3 op (Column.get ca k) (Column.get cb k) with
            | Some true -> buf.(!m) <- row_of k; incr m
            | _ -> ()
          done);
       Array.sub buf 0 !m)
  | _ ->
    (* evaluate as a boolean column and keep the TRUE rows; any non-bool
       non-null result is a type error, as in [Expr.eval_pred] *)
    let cc = eval_col ctx sel e in
    let buf = scratch_buf n in
    let m = ref 0 in
    for k = 0 to n - 1 do
      match Column.get cc k with
      | Value.Bool true -> buf.(!m) <- row_of k; incr m
      | Value.Bool false | Value.Null -> ()
      | v -> Expr.type_err "predicate evaluated to %s" (Value.to_string v)
    done;
    Array.sub buf 0 !m

(* -- joins -- *)

let hash_join_b ~(kind : Relop.join_kind) ~(pred : Expr.t) (l : t) (r : t) : t =
  (* runs directly through the inputs' selection vectors: compacting a
     wide filtered input would gather every column only to discard most
     rows at the (usually far smaller) join output. [li]/[rj] accumulate
     underlying row indices, so the output gather is the only copy. *)
  let ln_rows = count l and rn_rows = count r in
  let lrow =
    match l.sel with
    | Some s -> fun k -> Array.unsafe_get s k
    | None -> fun k -> k
  in
  let rrow =
    match r.sel with
    | Some s -> fun k -> Array.unsafe_get s k
    | None -> fun k -> k
  in
  let equi =
    Physop.oriented_equi_pairs pred
      ~left_cols:(Registry.Col_set.of_list (Array.to_list l.layout))
      ~right_cols:(Registry.Col_set.of_list (Array.to_list r.layout))
  in
  let lw = Array.length l.layout in
  let out_layout =
    match kind with
    | Relop.Semi | Relop.Anti_semi -> l.layout
    | _ -> Array.append l.layout r.layout
  in
  (* combined first-occurrence environment over (left @ right), as the row
     engine's [make_env (l.layout @ r.layout)]; indices are underlying *)
  let cidx = Hashtbl.create 16 in
  Array.iteri (fun j c -> if not (Hashtbl.mem cidx c) then Hashtbl.replace cidx c j) l.layout;
  Array.iteri
    (fun j c -> if not (Hashtbl.mem cidx c) then Hashtbl.replace cidx c (lw + j))
    r.layout;
  let cenv i jr c =
    match Hashtbl.find_opt cidx c with
    | Some p when p < lw -> Column.get l.cols.(p) i
    | Some p -> if jr < 0 then Value.Null else Column.get r.cols.(p - lw) jr
    | None -> raise (Local.Exec_error (Printf.sprintf "column #%d not in layout" c))
  in
  let pred_ok i jr = Expr.eval_pred (cenv i jr) pred in
  let li = Ivec.create ~capacity:(max 16 ln_rows) () in
  let rj = Ivec.create ~capacity:(max 16 ln_rows) () in
  if equi = [] then begin
    (* nested loops, in the oracle's (left, right) iteration order —
       selection vectors are ascending, so sel order is row order *)
    (match kind with
     | Relop.Inner | Relop.Cross ->
       for ik = 0 to ln_rows - 1 do
         let i = lrow ik in
         for jk = 0 to rn_rows - 1 do
           let j = rrow jk in
           if pred_ok i j then begin Ivec.push li i; Ivec.push rj j end
         done
       done
     | Relop.Semi ->
       for ik = 0 to ln_rows - 1 do
         let i = lrow ik in
         let jk = ref 0 and hit = ref false in
         while (not !hit) && !jk < rn_rows do
           if pred_ok i (rrow !jk) then hit := true;
           incr jk
         done;
         if !hit then Ivec.push li i
       done
     | Relop.Anti_semi ->
       for ik = 0 to ln_rows - 1 do
         let i = lrow ik in
         let jk = ref 0 and hit = ref false in
         while (not !hit) && !jk < rn_rows do
           if pred_ok i (rrow !jk) then hit := true;
           incr jk
         done;
         if not !hit then Ivec.push li i
       done
     | Relop.Left_outer ->
       for ik = 0 to ln_rows - 1 do
         let i = lrow ik in
         let matched = ref false in
         for jk = 0 to rn_rows - 1 do
           let j = rrow jk in
           if pred_ok i j then begin
             matched := true;
             Ivec.push li i;
             Ivec.push rj j
           end
         done;
         if not !matched then begin Ivec.push li i; Ivec.push rj (-1) end
       done)
  end
  else begin
    let lkpos = positions l (List.map fst equi) in
    let rkpos = positions r (List.map snd equi) in
    (* residual predicate check can be skipped when every conjunct is one
       of the hashed equi pairs: hash-key equality already implies them *)
    let covered =
      List.for_all
        (fun cj ->
           match Expr.as_col_eq cj with
           | Some (a, b) -> List.mem (a, b) equi || List.mem (b, a) equi
           | None -> false)
        (Expr.conjuncts pred)
    in
    let emit i jmatches =
      (* [jmatches] comes in the build-order-reversed cons order of the row
         engine's per-key lists *)
      match kind with
      | Relop.Inner | Relop.Cross ->
        List.iter (fun j -> Ivec.push li i; Ivec.push rj j) jmatches
      | Relop.Semi -> if jmatches <> [] then Ivec.push li i
      | Relop.Anti_semi -> if jmatches = [] then Ivec.push li i
      | Relop.Left_outer ->
        if jmatches = [] then begin Ivec.push li i; Ivec.push rj (-1) end
        else List.iter (fun j -> Ivec.push li i; Ivec.push rj j) jmatches
    in
    let int_fast =
      match Array.length lkpos, l.cols.(lkpos.(0)), r.cols.(rkpos.(0)) with
      | 1, Column.Ints { tag = ta; data = la; nulls = ln },
        Column.Ints { tag = tb; data = ra; nulls = rn }
        when ta = tb ->
        Some (la, ln, ra, rn)
      | _ -> None
    in
    (match int_fast with
     | Some (la, ln, ra, rn) ->
       (* single same-tag unboxed key: flat chained index (head/next arrays)
          instead of a Hashtbl — no cons cell or table node per build row,
          which would be GC-amplified at scale like the filter temporaries.
          [next] is indexed by underlying row; chains are walked
          most-recent-first, the same order as the row engine's per-key
          cons lists, so output row order is identical. *)
       let sz = ref 16 in
       while !sz < 2 * rn_rows do sz := !sz * 2 done;
       let mask = !sz - 1 in
       let head = Array.make !sz (-1) in
       let next = Array.make (max 1 r.rows) (-1) in
       let bucket k = (k * 0x9E3779B1) land mask in
       for jk = 0 to rn_rows - 1 do
         let j = rrow jk in
         if not (Column.null_bit rn j) then begin
           let h = bucket ra.{j} in
           Array.unsafe_set next j (Array.unsafe_get head h);
           Array.unsafe_set head h j
         end
       done;
       let ok i jj = covered || pred_ok i jj in
       (match kind with
        | Relop.Inner | Relop.Cross ->
          for ik = 0 to ln_rows - 1 do
            let i = lrow ik in
            if not (Column.null_bit ln i) then begin
              let k = Bigarray.Array1.unsafe_get la i in
              let j = ref head.(bucket k) in
              while !j >= 0 do
                let jj = !j in
                if Bigarray.Array1.unsafe_get ra jj = k && ok i jj then begin
                  Ivec.push li i; Ivec.push rj jj
                end;
                j := Array.unsafe_get next jj
              done
            end
          done
        | Relop.Semi ->
          for ik = 0 to ln_rows - 1 do
            let i = lrow ik in
            if not (Column.null_bit ln i) then begin
              let k = Bigarray.Array1.unsafe_get la i in
              let j = ref head.(bucket k) in
              while !j >= 0 do
                let jj = !j in
                if Bigarray.Array1.unsafe_get ra jj = k && ok i jj then begin
                  Ivec.push li i; j := -1
                end
                else j := Array.unsafe_get next jj
              done
            end
          done
        | Relop.Anti_semi ->
          for ik = 0 to ln_rows - 1 do
            let i = lrow ik in
            if Column.null_bit ln i then Ivec.push li i
            else begin
              let k = Bigarray.Array1.unsafe_get la i in
              let j = ref head.(bucket k) and hit = ref false in
              while !j >= 0 do
                let jj = !j in
                if Bigarray.Array1.unsafe_get ra jj = k && ok i jj then begin
                  hit := true; j := -1
                end
                else j := Array.unsafe_get next jj
              done;
              if not !hit then Ivec.push li i
            end
          done
        | Relop.Left_outer ->
          for ik = 0 to ln_rows - 1 do
            let i = lrow ik in
            let matched = ref false in
            if not (Column.null_bit ln i) then begin
              let k = Bigarray.Array1.unsafe_get la i in
              let j = ref head.(bucket k) in
              while !j >= 0 do
                let jj = !j in
                if Bigarray.Array1.unsafe_get ra jj = k && ok i jj then begin
                  matched := true; Ivec.push li i; Ivec.push rj jj
                end;
                j := Array.unsafe_get next jj
              done
            end;
            if not !matched then begin Ivec.push li i; Ivec.push rj (-1) end
          done)
     | None ->
       let key_at cols kpos i =
         Array.map (fun p -> Column.get cols.(p) i) kpos
       in
       let index : int list Local.KeyTbl.t =
         Local.KeyTbl.create (max 16 rn_rows)
       in
       for jk = 0 to rn_rows - 1 do
         let j = rrow jk in
         let k = key_at r.cols rkpos j in
         if not (Array.exists Value.is_null k) then begin
           let cur = try Local.KeyTbl.find index k with Not_found -> [] in
           Local.KeyTbl.replace index k (j :: cur)
         end
       done;
       for ik = 0 to ln_rows - 1 do
         let i = lrow ik in
         let k = key_at l.cols lkpos i in
         let matches =
           if Array.exists Value.is_null k then []
           else
             match Local.KeyTbl.find_opt index k with
             | Some js -> if covered then js else List.filter (pred_ok i) js
             | None -> []
         in
         emit i matches
       done)
  end;
  let lidx = Ivec.contents li in
  match kind with
  | Relop.Semi | Relop.Anti_semi ->
    { layout = out_layout;
      cols = Array.map (fun c -> Column.gather c lidx) l.cols;
      rows = Array.length lidx; sel = None }
  | _ ->
    let ridx = Ivec.contents rj in
    let lcols = Array.map (fun c -> Column.gather c lidx) l.cols in
    let rcols = Array.map (fun c -> Column.gather c ridx) r.cols in
    { layout = out_layout; cols = Array.append lcols rcols;
      rows = Array.length lidx; sel = None }

(* -- grouped aggregation over column slices -- *)

(* Compile a no-null numeric expression into a per-row float program over
   the stored columns: Sum/Avg/Count aggregate arguments evaluate with
   zero materialization (no gathers, no constant columns, no arithmetic
   temporaries). The boolean says the expression is integer-typed
   throughout — the row engine would produce [Value.Int]s — which the Sum
   finisher needs to reproduce Int results. Float operation order mirrors
   the expression tree and [Expr.arith]'s promotion exactly, so group sums
   are bit-identical to the row engine's accumulator. Returns [None] when
   any leaf is nullable, non-numeric, or an operator falls outside +,-,*. *)
let rec float_prog ctx (e : Expr.t) : ((int -> float) * bool) option =
  match e with
  | Expr.Lit (Value.Int x) ->
    let f = float_of_int x in
    Some ((fun _ -> f), true)
  | Expr.Lit (Value.Float f) -> Some ((fun _ -> f), false)
  | Expr.Col c ->
    (match ctx.b.cols.(col_pos ctx c) with
     | Column.Floats { data; nulls = None } ->
       Some ((fun i -> Bigarray.Array1.unsafe_get data i), false)
     | Column.Ints { tag = Column.As_int; data; nulls = None } ->
       Some ((fun i -> float_of_int (Bigarray.Array1.unsafe_get data i)), true)
     | _ -> None)
  | Expr.Bin ((Expr.Add | Expr.Sub | Expr.Mul) as op, a, b) ->
    (match float_prog ctx a, float_prog ctx b with
     | Some (fa, ia), Some (fb, ib) ->
       let g =
         match op with
         | Expr.Add -> fun i -> fa i +. fb i
         | Expr.Sub -> fun i -> fa i -. fb i
         | _ -> fun i -> fa i *. fb i
       in
       Some (g, ia && ib)
     | _ -> None)
  | _ -> None

(* group-id scratch, one per domain: aggregation never runs reentrantly on
   a domain and never calls the filter path, so reusing the buffer is safe
   and keeps the per-call transient allocation out of the major heap *)
let gid_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let gid_buf n =
  let r = Domain.DLS.get gid_key in
  if Array.length !r < n then r := Array.make (max n (2 * Array.length !r)) 0;
  !r

let run_aggregate_b ~(keys : int list) ~(aggs : Expr.agg_def list) (b : t) : t =
  let ctx = ctx_of b in
  let m = count b in
  let kpos = Array.of_list (List.map (col_pos ctx) keys) in
  let gid = gid_buf (max 1 m) in
  let reps = Ivec.create () in
  let ngroups = ref 0 in
  if keys = [] then begin
    (* the grouped path overwrites every slot; the scalar path reads the
       implicit all-zero group ids, so clear the reused buffer *)
    Array.fill gid 0 m 0;
    if m > 0 then begin
      ngroups := 1;
      Ivec.push reps (match b.sel with Some s -> s.(0) | None -> 0)
    end
  end
  else begin
    let int_fast =
      match Array.length kpos, (if Array.length kpos = 1 then Some b.cols.(kpos.(0)) else None) with
      | 1, Some (Column.Ints { data; nulls = None; _ }) -> Some data
      | _ -> None
    in
    match int_fast with
    | Some data ->
      let tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let visit k i =
        let key = Bigarray.Array1.unsafe_get data i in
        match Hashtbl.find_opt tbl key with
        | Some g -> Array.unsafe_set gid k g
        | None ->
          let g = !ngroups in
          incr ngroups;
          Hashtbl.replace tbl key g;
          Ivec.push reps i;
          Array.unsafe_set gid k g
      in
      (match b.sel with
       | None -> for k = 0 to m - 1 do visit k k done
       | Some s -> for k = 0 to m - 1 do visit k (Array.unsafe_get s k) done)
    | None ->
      let tbl : int Local.KeyTbl.t = Local.KeyTbl.create 64 in
      let visit k i =
        let key = Array.map (fun p -> Column.get b.cols.(p) i) kpos in
        match Local.KeyTbl.find_opt tbl key with
        | Some g -> gid.(k) <- g
        | None ->
          let g = !ngroups in
          incr ngroups;
          Local.KeyTbl.replace tbl key g;
          Ivec.push reps i;
          gid.(k) <- g
      in
      (match b.sel with
       | None -> for k = 0 to m - 1 do visit k k done
       | Some s -> for k = 0 to m - 1 do visit k (Array.unsafe_get s k) done)
  end;
  (* scalar aggregates emit one row even over empty input *)
  let out_groups = if keys = [] then 1 else !ngroups in
  let fallback_agg (a : Expr.agg_def) (col : Column.t) : Value.t array =
    let sts = Array.init out_groups (fun _ -> Local.new_agg_state a.Expr.agg_distinct) in
    for k = 0 to m - 1 do
      Local.agg_feed a sts.(gid.(k)) (Some (Column.get col k))
    done;
    Array.map (Local.agg_result a) sts
  in
  (* argument views: a bare column reference aggregates in place over the
     stored column through the selection indirection ([vidx]); computed
     expressions materialize densely once ([vidx = None], index by k). The
     duplicated loops keep the per-row work free of closures and gathers. *)
  let do_agg (a : Expr.agg_def) : Value.t array =
    match a.Expr.agg_arg with
    | None ->
      (* COUNT star: every row counts *)
      let cnt = Array.make out_groups 0 in
      for k = 0 to m - 1 do cnt.(gid.(k)) <- cnt.(gid.(k)) + 1 done;
      Array.map (fun c -> Value.Int c) cnt
    | Some e ->
      let fprog =
        match e, a.Expr.agg_distinct with
        | Expr.Col _, _ | _, true -> None   (* bare columns use the view kernels *)
        | _ -> float_prog ctx e
      in
      (match a.Expr.agg_func, fprog with
       | (Expr.Sum | Expr.Avg), Some (f, is_int) ->
         let sum = Array.make out_groups 0. and cnt = Array.make out_groups 0 in
         (match b.sel with
          | None ->
            for k = 0 to m - 1 do
              let g = Array.unsafe_get gid k in
              Array.unsafe_set sum g (Array.unsafe_get sum g +. f k);
              Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
            done
          | Some s ->
            for k = 0 to m - 1 do
              let g = Array.unsafe_get gid k in
              Array.unsafe_set sum g
                (Array.unsafe_get sum g +. f (Array.unsafe_get s k));
              Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
            done);
         Array.init out_groups (fun g ->
             if cnt.(g) = 0 then Value.Null
             else if a.Expr.agg_func = Expr.Avg then
               Value.Float (sum.(g) /. float_of_int cnt.(g))
             else if
               is_int && Float.is_integer sum.(g) && Float.abs sum.(g) < 4.5e15
             then Value.Int (int_of_float sum.(g))
             else Value.Float sum.(g))
       | Expr.Count, Some _ ->
         (* the program only compiles over no-null inputs: every row counts *)
         let cnt = Array.make out_groups 0 in
         for k = 0 to m - 1 do cnt.(gid.(k)) <- cnt.(gid.(k)) + 1 done;
         Array.map (fun c -> Value.Int c) cnt
       | _ ->
      let vcol, vidx =
        match e with
        | Expr.Col c when not a.Expr.agg_distinct ->
          (ctx.b.cols.(col_pos ctx c), b.sel)
        | _ -> (eval_col ctx b.sel e, None)
      in
      if a.Expr.agg_distinct then fallback_agg a vcol
      else begin
        match a.Expr.agg_func, vcol with
        | (Expr.Sum | Expr.Avg), Column.Ints { tag = Column.As_int; data; nulls } ->
          let sum = Array.make out_groups 0. and cnt = Array.make out_groups 0 in
          (match vidx, nulls with
           | None, None ->
             for k = 0 to m - 1 do
               let g = Array.unsafe_get gid k in
               Array.unsafe_set sum g
                 (Array.unsafe_get sum g
                  +. float_of_int (Bigarray.Array1.unsafe_get data k));
               Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
             done
           | Some s, None ->
             for k = 0 to m - 1 do
               let g = Array.unsafe_get gid k in
               Array.unsafe_set sum g
                 (Array.unsafe_get sum g
                  +. float_of_int
                       (Bigarray.Array1.unsafe_get data (Array.unsafe_get s k)));
               Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
             done
           | None, Some nb ->
             for k = 0 to m - 1 do
               if Bytes.unsafe_get nb k = '\000' then begin
                 let g = gid.(k) in
                 sum.(g) <- sum.(g) +. float_of_int data.{k};
                 cnt.(g) <- cnt.(g) + 1
               end
             done
           | Some s, Some nb ->
             for k = 0 to m - 1 do
               let i = Array.unsafe_get s k in
               if Bytes.unsafe_get nb i = '\000' then begin
                 let g = gid.(k) in
                 sum.(g) <- sum.(g) +. float_of_int data.{i};
                 cnt.(g) <- cnt.(g) + 1
               end
             done);
          Array.init out_groups (fun g ->
              if cnt.(g) = 0 then Value.Null
              else if a.Expr.agg_func = Expr.Avg then
                Value.Float (sum.(g) /. float_of_int cnt.(g))
              else if Float.is_integer sum.(g) && Float.abs sum.(g) < 4.5e15 then
                Value.Int (int_of_float sum.(g))
              else Value.Float sum.(g))
        | (Expr.Sum | Expr.Avg), Column.Floats { data; nulls } ->
          let sum = Array.make out_groups 0. and cnt = Array.make out_groups 0 in
          (match vidx, nulls with
           | None, None ->
             for k = 0 to m - 1 do
               let g = Array.unsafe_get gid k in
               Array.unsafe_set sum g
                 (Array.unsafe_get sum g +. Bigarray.Array1.unsafe_get data k);
               Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
             done
           | Some s, None ->
             for k = 0 to m - 1 do
               let g = Array.unsafe_get gid k in
               Array.unsafe_set sum g
                 (Array.unsafe_get sum g
                  +. Bigarray.Array1.unsafe_get data (Array.unsafe_get s k));
               Array.unsafe_set cnt g (Array.unsafe_get cnt g + 1)
             done
           | None, Some nb ->
             for k = 0 to m - 1 do
               if Bytes.unsafe_get nb k = '\000' then begin
                 let g = gid.(k) in
                 sum.(g) <- sum.(g) +. data.{k};
                 cnt.(g) <- cnt.(g) + 1
               end
             done
           | Some s, Some nb ->
             for k = 0 to m - 1 do
               let i = Array.unsafe_get s k in
               if Bytes.unsafe_get nb i = '\000' then begin
                 let g = gid.(k) in
                 sum.(g) <- sum.(g) +. data.{i};
                 cnt.(g) <- cnt.(g) + 1
               end
             done);
          Array.init out_groups (fun g ->
              if cnt.(g) = 0 then Value.Null
              else if a.Expr.agg_func = Expr.Avg then
                Value.Float (sum.(g) /. float_of_int cnt.(g))
              else Value.Float sum.(g))
        | (Expr.Min | Expr.Max), Column.Ints { tag; data; nulls } ->
          let best = Array.make out_groups 0 and has = Array.make out_groups false in
          let mx = a.Expr.agg_func = Expr.Max in
          let feed k i =
            if not (Column.null_bit nulls i) then begin
              let g = gid.(k) and x = data.{i} in
              if not has.(g) then begin best.(g) <- x; has.(g) <- true end
              else if (if mx then x > best.(g) else x < best.(g)) then best.(g) <- x
            end
          in
          (match vidx with
           | None -> for k = 0 to m - 1 do feed k k done
           | Some s -> for k = 0 to m - 1 do feed k s.(k) done);
          Array.init out_groups (fun g ->
              if has.(g) then Column.decode_int tag best.(g) else Value.Null)
        | (Expr.Min | Expr.Max), Column.Floats { data; nulls } ->
          let best = Array.make out_groups 0. and has = Array.make out_groups false in
          let mx = a.Expr.agg_func = Expr.Max in
          let feed k i =
            if not (Column.null_bit nulls i) then begin
              let g = gid.(k) and x = data.{i} in
              if not has.(g) then begin best.(g) <- x; has.(g) <- true end
              else begin
                let c = Float.compare x best.(g) in
                if (if mx then c > 0 else c < 0) then best.(g) <- x
              end
            end
          in
          (match vidx with
           | None -> for k = 0 to m - 1 do feed k k done
           | Some s -> for k = 0 to m - 1 do feed k s.(k) done);
          Array.init out_groups (fun g ->
              if has.(g) then Value.Float best.(g) else Value.Null)
        | Expr.Count, _ ->
          let cnt = Array.make out_groups 0 in
          (match vidx with
           | None ->
             for k = 0 to m - 1 do
               if not (Column.is_null vcol k) then cnt.(gid.(k)) <- cnt.(gid.(k)) + 1
             done
           | Some s ->
             for k = 0 to m - 1 do
               if not (Column.is_null vcol s.(k)) then
                 cnt.(gid.(k)) <- cnt.(gid.(k)) + 1
             done);
          Array.map (fun c -> Value.Int c) cnt
        | _, (Column.Ints _ | Column.Floats _ | Column.Boxed _) ->
          (match vidx with
           | None -> fallback_agg a vcol
           | Some s -> fallback_agg a (Column.gather vcol s))
      end)
  in
  let agg_results = List.map do_agg aggs in
  let rep_arr = Ivec.contents reps in
  let key_cols = Array.map (fun p -> Column.gather b.cols.(p) rep_arr) kpos in
  let agg_cols = List.map Column.of_values agg_results in
  { layout = Array.of_list (keys @ List.map (fun a -> a.Expr.agg_out) aggs);
    cols = Array.append key_cols (Array.of_list agg_cols);
    rows = out_groups; sel = None }

(* -- sort -- *)

let sort_b ~(keys : Relop.sort_key list) ?limit (b : t) : t =
  let b = compact b in
  let ctx = ctx_of b in
  let m = b.rows in
  let kvals =
    List.map
      (fun (k : Relop.sort_key) ->
         (Column.to_values (eval_col ctx None k.Relop.key), k.Relop.desc))
      keys
  in
  let perm = identity m in
  let cmp i j =
    let rec go = function
      | [] -> 0
      | (arr, desc) :: rest ->
        let c = Value.compare arr.(i) arr.(j) in
        let c = if desc then -c else c in
        if c <> 0 then c else go rest
    in
    go kvals
  in
  (* merge sort: ties keep input order, matching [List.stable_sort] *)
  Array.stable_sort cmp perm;
  let idx = match limit with Some n when n < m -> Array.sub perm 0 n | _ -> perm in
  { b with cols = Array.map (fun c -> Column.gather c idx) b.cols;
    rows = Array.length idx; sel = None }

(* -- union / concat -- *)

let concat_list (bs : t list) : t =
  match bs with
  | [] -> empty []
  | [ b ] -> compact b
  | first :: _ ->
    let bs = List.map compact bs in
    let w = Array.length first.cols in
    List.iter
      (fun b ->
         if Array.length b.cols <> w then
           raise (Local.Exec_error "union arity mismatch"))
      bs;
    { layout = first.layout;
      cols = Array.init w (fun j -> Column.concat (List.map (fun b -> b.cols.(j)) bs));
      rows = List.fold_left (fun acc b -> acc + b.rows) 0 bs;
      sel = None }

(* -- routing (DMS parity with Appliance.route_hash) -- *)

(** Per-selected-row route hashes over the columns at positions [kpos],
    numerically identical to folding {!Catalog.Value.hash} over the boxed
    row key. *)
let route_hashes (b : t) (kpos : int array) : int array =
  let sel = sel_array b in
  let m = Array.length sel in
  let h = Array.make m 17 in
  Array.iter
    (fun p ->
       let c = b.cols.(p) in
       match c with
       | Column.Ints { tag = (Column.As_int | Column.As_date); data; nulls } ->
         for k = 0 to m - 1 do
           let i = sel.(k) in
           let hv = if Column.null_bit nulls i then 17 else Hashtbl.hash data.{i} in
           h.(k) <- (h.(k) * 31) + hv
         done
       | Column.Floats { data; nulls } ->
         for k = 0 to m - 1 do
           let i = sel.(k) in
           let hv =
             if Column.null_bit nulls i then 17
             else
               let x = data.{i} in
               if Float.is_integer x then Hashtbl.hash (int_of_float x)
               else Hashtbl.hash x
           in
           h.(k) <- (h.(k) * 31) + hv
         done
       | _ ->
         for k = 0 to m - 1 do
           h.(k) <- (h.(k) * 31) + Value.hash (Column.get c sel.(k))
         done)
    kpos;
  Array.map abs h

(** Hash-partition the visible rows into [parts] dense batches (row order
    preserved within each part). *)
let partition (b : t) ~(kpos : int array) ~(parts : int) : t array =
  let sel = sel_array b in
  let m = Array.length sel in
  let hs = route_hashes b kpos in
  let counts = Array.make parts 0 in
  let dest = Array.make m 0 in
  for k = 0 to m - 1 do
    let d = hs.(k) mod parts in
    dest.(k) <- d;
    counts.(d) <- counts.(d) + 1
  done;
  let idxs = Array.init parts (fun p -> Array.make counts.(p) 0) in
  let fill = Array.make parts 0 in
  for k = 0 to m - 1 do
    let d = dest.(k) in
    idxs.(d).(fill.(d)) <- sel.(k);
    fill.(d) <- fill.(d) + 1
  done;
  Array.init parts (fun p ->
      { layout = b.layout;
        cols = Array.map (fun c -> Column.gather c idxs.(p)) b.cols;
        rows = counts.(p); sel = None })

(** Narrow the selection to rows whose route hash lands on [node]. *)
let trim (b : t) ~(kpos : int array) ~(node : int) ~(parts : int) : t =
  let sel = sel_array b in
  let hs = route_hashes b kpos in
  let buf = Array.make (Array.length sel) 0 in
  let m = ref 0 in
  Array.iteri
    (fun k i -> if hs.(k) mod parts = node then begin buf.(!m) <- i; incr m end)
    sel;
  { b with sel = Some (Array.sub buf 0 !m) }

(** Project the batch to [cols] (selection preserved; no copy for columns,
    only the layout view changes). *)
let project (b : t) (cols : int list) : t =
  if cols = Array.to_list b.layout then b
  else begin
    let ctx = ctx_of b in
    let cols' = Array.of_list (List.map (fun c -> b.cols.(col_pos ctx c)) cols) in
    { b with layout = Array.of_list cols; cols = cols' }
  end

(* -- operator dispatch -- *)

(** Execute one serial physical operator columnar-side; mirrors
    {!Local.exec_op} result-for-result (values and row order). *)
let exec_op ?(stats : Local.exec_stats option) ~(read_table : string -> t)
    (op : Physop.t) (children : t list) : t =
  let children = Array.of_list children in
  let child n = children.(n) in
  (match stats with Some st -> st.Local.batches <- st.Local.batches + 1 | None -> ());
  match op with
  | Physop.Table_scan { table; cols; _ } ->
    let b = read_table table in
    if Array.length cols <> Array.length b.cols then
      raise
        (Local.Exec_error
           (Printf.sprintf "scan %s: arity mismatch (%d vs %d)" table
              (Array.length b.cols) (Array.length cols)));
    (match stats with
     | Some st -> st.Local.rows_scanned <- st.Local.rows_scanned + count b
     | None -> ());
    { b with layout = Array.copy cols }
  | Physop.Filter pred ->
    let c = child 0 in
    let ctx = ctx_of c in
    { c with sel = Some (filter_sel ctx c.sel pred) }
  | Physop.Compute defs ->
    let c = child 0 in
    let ctx = ctx_of c in
    { layout = Array.of_list (List.map fst defs);
      cols = Array.of_list (List.map (fun (_, e) -> eval_col ctx c.sel e) defs);
      rows = count c; sel = None }
  | Physop.Hash_join { kind; pred }
  | Physop.Merge_join { kind; pred }
  | Physop.Nl_join { kind; pred } ->
    (match stats with
     | Some st -> st.Local.probe_rows <- st.Local.probe_rows + count (child 0)
     | None -> ());
    hash_join_b ~kind ~pred (child 0) (child 1)
  | Physop.Hash_agg { keys; aggs } | Physop.Stream_agg { keys; aggs } ->
    run_aggregate_b ~keys ~aggs (child 0)
  | Physop.Sort_op { keys; limit } -> sort_b ~keys ?limit (child 0)
  | Physop.Union_op -> concat_list [ child 0; child 1 ]
  | Physop.Const_empty cols -> empty cols
