(** Single-node relational executor: runs serial physical operators over
    in-memory row lists. This is the "SQL Server instance" of each compute
    node in the simulated appliance, and the semantic oracle the columnar
    engine ({!Batch}) is checked against row-for-row. *)

open Algebra
open Memo

type rows = Catalog.Value.t array list

(** A result set: rows plus the column layout (registry ids, in order). *)
type rset = {
  layout : int list;
  rows : rows;
}

exception Exec_error of string

(** [make_env layout row] maps a column id to its value in [row].
    Raises {!Exec_error} for columns absent from [layout]. *)
val make_env : int list -> Catalog.Value.t array -> int -> Catalog.Value.t

(** First [n] elements of a list, without walking the tail. *)
val take : int -> 'a list -> 'a list

(** Positions of [cols] in [layout] (first occurrence), for hot-path key
    extraction without per-row environment lookups. *)
val positions_of : int list -> int list -> int array

(** Hash table keyed by value tuples, using {!Catalog.Value.equal} /
    {!Catalog.Value.hash} — grouping and join keys hash through this. *)
module KeyTbl : Hashtbl.S with type key = Catalog.Value.t array

(** Per-shard executor statistics, accumulated while a node executes its
    operators. Pool-safe by construction: each worker writes its own
    record; the caller merges them into {!Obs} counters after the
    fan-out. *)
type exec_stats = {
  mutable rows_scanned : int;   (** base-table rows produced by scans *)
  mutable batches : int;        (** operator outputs (one batch per op) *)
  mutable probe_rows : int;     (** hash-join probe-side input rows *)
}

val fresh_stats : unit -> exec_stats
val merge_stats : into:exec_stats -> exec_stats -> unit

(** Streaming aggregate accumulator; shared verbatim by the columnar
    engine's fallback paths so both engines produce identical results. *)
type agg_state

val new_agg_state : bool -> agg_state

(** [agg_feed def st v] folds one input into the accumulator. [v] is
    [None] for COUNT-star (the row counts regardless of nulls). *)
val agg_feed : Expr.agg_def -> agg_state -> Catalog.Value.t option -> unit

val agg_result : Expr.agg_def -> agg_state -> Catalog.Value.t

(** Sort (and optionally limit) rows; stable, so ties keep input order. *)
val sort_rows : keys:Relop.sort_key list -> ?limit:int -> rset -> rset

(** Execute one serial physical operator over its children's results. *)
val exec_op :
  ?stats:exec_stats ->
  read_table:(string -> rows) ->
  Physop.t -> rset list -> rset

(** Execute a whole serial plan tree (the single-node oracle). *)
val exec_plan : read_table:(string -> rows) -> Serialopt.Plan.t -> rset

(** Canonical multiset representation of a result: rows as string lists,
    sorted. Projects [cols] out of the layout. *)
val canonical : ?cols:int list -> rset -> string list
