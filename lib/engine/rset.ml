(** Engine-agnostic result sets: the payload type carried by appliance
    storage, distributed streams, and DSQL temp tables.

    The row engine works over [Local.rset] (boxed value-array lists); the
    columnar engine over {!Batch.t} (typed column slices + selection
    vectors). Everything the DMS runtime and the accounting need —
    cardinality, serialized bytes, hash routing, projection — is defined
    here over both representations with *identical* semantics, so the
    simulated clock is bit-for-bit the same whichever engine runs the
    per-node work. *)

module Value = Catalog.Value

type engine = Row | Columnar

let engine_name = function Row -> "row" | Columnar -> "columnar"

let engine_of_string = function
  | "row" -> Some Row
  | "columnar" | "col" -> Some Columnar
  | _ -> None

type t =
  | Rows of Local.rset
  | Cols of Batch.t

(** Placeholder for unused stream slots (never read as data). *)
let nil = Rows { Local.layout = []; rows = [] }

let of_local r = Rows r
let of_batch b = Cols b

let to_local = function Rows r -> r | Cols b -> Batch.to_rset b
let to_batch = function Rows r -> Batch.of_rset r | Cols b -> b

let layout = function
  | Rows r -> r.Local.layout
  | Cols b -> Array.to_list b.Batch.layout

let count = function
  | Rows r -> List.length r.Local.rows
  | Cols b -> Batch.count b

(** Reinterpret the column ids (arity must match; mirrors the row engine's
    unchecked relabeling when a stream enters a serial step). *)
let with_layout rs (layout : int list) : t =
  match rs with
  | Rows r -> Rows { r with Local.layout = layout }
  | Cols b -> Cols { b with Batch.layout = Array.of_list layout }

let empty_like = function
  | Rows r -> Rows { Local.layout = r.Local.layout; rows = [] }
  | Cols b -> Cols (Batch.empty (Array.to_list b.Batch.layout))

(* -- byte accounting (identical to per-value [Value.width] sums) -- *)

let row_bytes (row : Value.t array) =
  Array.fold_left (fun acc v -> acc + Value.width v) 0 row

let bytes = function
  | Rows r ->
    List.fold_left (fun acc row -> acc +. float_of_int (row_bytes row)) 0. r.Local.rows
  | Cols b -> Batch.bytes b

(** [(bytes, rows)] volume of a result set, as the DMS accounting wants it. *)
let vol rs = (bytes rs, float_of_int (count rs))

(* -- routing -- *)

(** Routing hash over a row's key values: must agree between initial table
    loading and shuffles, and between engines (the columnar side's
    {!Batch.route_hashes} folds the same per-value hash). *)
let route_hash (values : Value.t list) =
  abs (List.fold_left (fun h v -> (h * 31) + Value.hash v) 17 values)

(** First-occurrence positions of [cols] in the payload's layout. *)
let positions rs (cols : int list) : int array =
  match rs with
  | Rows r -> Local.positions_of r.Local.layout cols
  | Cols b -> Batch.positions b cols

(** Hash-partition into [parts] shards by the columns at positions [kpos];
    row order is preserved within each shard. *)
let partition rs ~(kpos : int array) ~(parts : int) : t array =
  match rs with
  | Rows r ->
    let buckets = Array.make parts [] in
    List.iter
      (fun row ->
         let k = Array.fold_right (fun i acc -> row.(i) :: acc) kpos [] in
         let dst = route_hash k mod parts in
         buckets.(dst) <- row :: buckets.(dst))
      r.Local.rows;
    Array.map
      (fun b -> Rows { Local.layout = r.Local.layout; rows = List.rev b })
      buckets
  | Cols b -> Array.map of_batch (Batch.partition b ~kpos ~parts)

(** Keep only the rows whose route hash lands on [node]. *)
let trim rs ~(kpos : int array) ~(node : int) ~(parts : int) : t =
  match rs with
  | Rows r ->
    Rows
      { r with
        Local.rows =
          List.filter
            (fun row ->
               let k = Array.fold_right (fun i acc -> row.(i) :: acc) kpos [] in
               route_hash k mod parts = node)
            r.Local.rows }
  | Cols b -> Cols (Batch.trim b ~kpos ~node ~parts)

(** Project onto [cols] (by layout id, first occurrence). *)
let project rs (cols : int list) : t =
  match rs with
  | Rows r ->
    if cols = r.Local.layout then rs
    else begin
      let env = Local.make_env r.Local.layout in
      Rows
        { Local.layout = cols;
          rows =
            List.map
              (fun row -> Array.of_list (List.map (env row) cols))
              r.Local.rows }
    end
  | Cols b -> Cols (Batch.project b cols)

(** Concatenate shards (in order) into one result set with [layout]. Any
    row payload forces a row result; all-columnar concatenates columns. *)
let concat ~(layout : int list) (parts : t list) : t =
  let all_cols = List.for_all (function Cols _ -> true | Rows _ -> false) parts in
  if all_cols && parts <> [] then begin
    let b = Batch.concat_list (List.map to_batch parts) in
    Cols { b with Batch.layout = Array.of_list layout }
  end
  else
    Rows
      { Local.layout;
        rows = List.concat_map (fun p -> (to_local p).Local.rows) parts }
