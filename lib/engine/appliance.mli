(** The simulated PDW appliance: a control node plus N compute nodes, each
    holding hash-partitioned or replicated table shards and running the
    {!Local} (row) or {!Batch} (columnar) executor; a DMS runtime routes
    rows between nodes with byte accounting and a simulated clock (paper
    §2.1-§2.4).

    Time is simulated from "true" per-component hardware characteristics
    that are deliberately richer than the optimizer's linear cost model
    (per-byte rate + per-row overhead + fixed setup): calibration (paper
    §3.3.3) fits the model's lambdas against measurements produced here.

    The simulated clock and all DMS accounting are computed from (bytes,
    rows) volumes and operator cardinalities only, so they are
    bit-identical across engines and at any domain-pool width. *)

type rows = Catalog.Value.t array list

(** "True" hardware characteristics of the simulated appliance. *)
type hw = {
  reader_byte : float; reader_row : float;
  hash_extra_byte : float;               (** extra reader cost when hashing *)
  network_byte : float; network_row : float;
  writer_byte : float; writer_row : float;
  blkcpy_byte : float; blkcpy_row : float; blkcpy_fixed : float;
  serial_unit : float;  (** seconds per unit of {!Serialopt.Cost} work *)
}

val default_hw : hw

(** Per-statement accounting: simulated time, data movement, calibration
    samples, and the fault plane's counters. *)
type account = {
  mutable sim_time : float;         (** simulated response time, seconds *)
  mutable dms_time : float;         (** portion spent in DMS steps *)
  mutable bytes_moved : float;      (** bytes that crossed the network *)
  mutable rows_moved : float;
  mutable moves : int;
  mutable reader_samples : Dms.Calibrate.sample list;
  mutable reader_hash_samples : Dms.Calibrate.sample list;
  mutable network_samples : Dms.Calibrate.sample list;
  mutable writer_samples : Dms.Calibrate.sample list;
  mutable blkcpy_samples : Dms.Calibrate.sample list;
  mutable injected : int;           (** faults that fired (stragglers included) *)
  mutable retries : int;            (** step re-executions after a failure *)
  mutable recovered : int;          (** steps that eventually succeeded *)
  mutable replans : int;            (** node losses escalated to re-optimization *)
  mutable backoff_time : float;     (** simulated seconds spent backing off *)
}

(** Calibration samples recorded for one DMS component. *)
val samples_of : account -> Dms.Calibrate.component -> Dms.Calibrate.sample list

(** One executed operator's estimate-vs-observed cardinality sample
    (feedback harvest, DESIGN.md §13). [h_cols] are registry column ids;
    the caller maps them back to catalog (table, column) names with the
    plan's registry. *)
type op_sample = {
  h_group : int;            (** MEMO group of the operator (-1 if internal) *)
  h_op : string;            (** physical operator name *)
  h_table : string option;  (** scanned table, for scans *)
  h_cols : int list;        (** registry column ids, sorted *)
  h_est : float;            (** optimizer's global row estimate *)
  h_actual : float;         (** observed global rows *)
}

type t = {
  shell : Catalog.Shell_db.t;
  nodes : int;
  hw : hw;
  storage : (string, Rset.t) Hashtbl.t array;
  mutable engine : Rset.engine;
  account : account;
  mutable obs : Obs.t;
  mutable pool : Par.t;
  mutable check : bool;
  mutable fault : Fault.plan;
  mutable epoch : int;
  mutable live : int list;
  mutable step_no : int;
  mutable cur_step : int;
  mutable cur_attempt : int;
  mutable token : Governor.token;
  mutable bounds : (int, float * float) Hashtbl.t option;
  mutable bound_violations : int;
  mutable harvest : op_sample list ref option;
}

val create :
  ?hw:hw -> ?obs:Obs.t -> ?pool:Par.t -> ?check:bool -> ?engine:Rset.engine ->
  Catalog.Shell_db.t -> t

(** Attach an observability context (typically per executed query). *)
val set_obs : t -> Obs.t -> unit

(** Attach a domain pool for multicore shard execution (typically one pool
    per process, shared across appliances). *)
val set_pool : t -> Par.t -> unit

(** Select the local-executor implementation for serial steps. *)
val set_engine : t -> Rset.engine -> unit

val engine : t -> Rset.engine

(** Enable/disable the {!Check} execution gate (on by default). *)
val set_check : t -> bool -> unit

(** Attach a fault-injection plan ({!Fault.none} disables injection). *)
val set_fault : t -> Fault.plan -> unit

(** Attach a statement cancellation token ({!Governor.none} disables
    polling). The caller is responsible for resetting it to
    {!Governor.none} when the statement finishes. *)
val set_token : t -> Governor.token -> unit

(** Original node ids still alive (current node index -> original id). *)
val live_nodes : t -> int list

(** Arm (or disarm, with [None]) the static cardinality-bounds assertion
    ([--assert-bounds]): a per-memo-group [lo, hi] table (see
    {!Analysis.group_bounds}); after each executed Serial/Move operator
    the observed global row count is checked against its group's interval
    and each violation bumps [bound_violations] and the
    [analysis.bound_violations] counter. Resets the tally. Decommissioned
    replacements do not inherit the table (the bounds were derived for the
    old topology's statistics). *)
val set_bounds : t -> (int, float * float) Hashtbl.t option -> unit

(** Arm (or disarm, with [None]) the feedback cardinality harvest: every
    executed Serial operator appends an {!op_sample} to the ref (newest
    first). Samples are recorded in the caller domain in bottom-up plan
    order, so the list is deterministic at any [--jobs]. *)
val set_harvest : t -> op_sample list ref option -> unit

val reset_account : t -> unit

(** Start a new statement: step numbering restarts at 0 so explicit fault
    schedules address steps of each statement independently. *)
val begin_statement : t -> unit

(** Routing hash shared by initial loading and shuffles (and by both
    engines — see {!Rset.route_hash}). *)
val route_hash : Catalog.Value.t list -> int

(** Load a table from rows (row-major storage), partitioning or
    replicating per the shell layout. *)
val load_table : t -> string -> rows -> unit

(** Load a table from a column-major payload (columnar storage). *)
val load_table_cols : t -> string -> Catalog.Column.table -> unit

(** One node's shard of a table, in the representation it was loaded in. *)
val node_rset : t -> int -> string -> Rset.t

(** One node's shard as rows (converting if stored columnar). *)
val node_table : t -> int -> string -> rows

(** One node's shard as a columnar batch (converting if stored row-major). *)
val node_batch : t -> int -> string -> Batch.t

(** A distributed intermediate result: one payload per compute node, or a
    single payload on the control node, per its distribution property. *)
type dstream = {
  layout : int list;
  per_node : Rset.t array;   (** length = [nodes]; unused when on control *)
  control : Rset.t;          (** payload resident on the control node *)
  dist : Dms.Distprop.t;
}

(** The full logical contents of a stream as one payload. *)
val stream_rset : dstream -> Rset.t

val stream_rows : dstream -> rows

(** Draw the fault plan at an injection site; raises a step failure when
    the draw fires. *)
val inject_point : t -> Fault.site -> unit

(** Run [f] with step-level recovery: transient step failures re-execute
    [f] (with simulated backoff accounting) up to the fault plan's retry
    budget; node crashes escalate. [on_retry] runs before each retry. *)
val with_recovery : ?on_retry:(unit -> unit) -> t -> (unit -> 'a) -> 'a

(** Execute one DMS data-movement operation on a stream, accounting reader,
    network, and writer time against the simulated clock. *)
val run_move : t -> Dms.Op.kind -> cols:int list -> dstream -> dstream

(** Execute one serial operator on every node holding data. *)
val run_serial : t -> Memo.Physop.t -> dstream list -> dstream

(** Execute a PDW plan on the appliance. Returns the final client result
    (rows + layout); accounting accumulates in [account]. Unless
    {!set_check} disabled it, the plan is first passed through the static
    analyzer's execution-soundness rules; an invalid plan raises
    {!Check.Invalid} instead of executing. *)
val run_pplan : t -> Pdwopt.Pplan.t -> Local.rset

(** The reader+network+writer pipeline rates of an appliance's hardware,
    in the shape {!Dms.Cost.repartition_seconds} prices topology moves
    with (shrink, grow and re-key all share it). *)
val move_rates : hw -> Dms.Cost.move_rates

(** [decommission t ~node] builds a fresh [(nodes - 1)]-node appliance
    after compute node [node] (current index) died: same schemas and
    statistics, every table re-partitioned mod the surviving count, the
    account carried over plus a recovery charge of re-partitioning every
    hash-distributed table at DMS rates. The replan epoch is bumped so
    fault draws restart, and [live] drops the dead node's original id.
    Decommissioning the last compute node raises {!Fault.Exhausted} (the
    appliance cannot serve — a fault-plane outcome, not a caller bug);
    an out-of-range [node] raises [Invalid_argument]. *)
val decommission : t -> node:int -> t

(** An in-flight phased topology move (DESIGN.md §14): the new layout is
    copy-built into a shadow appliance one table per priced, injectable
    step while [m_source] keeps serving statements against the old layout;
    {!flip_move} commits atomically, {!abort_move} leaves the source
    bit-identical to its pre-move state. *)
type move = {
  m_source : t;
  m_target : t;
  mutable m_pending : string list;
      (** tables still to copy, in deterministic (sorted-name) order *)
  mutable m_bytes : float;    (** bytes re-partitioned so far *)
  mutable m_rows : float;
  mutable m_seconds : float;
      (** simulated copy cost accrued, charged to the clock at the flip *)
}

(** Open a phased move to a [node_count]-node topology with distribution
    layout [dist_of] (given each current table, return its target
    distribution). Unchanged-layout tables transfer for free immediately;
    every other table becomes a pending priced copy step. The source
    appliance is not mutated. *)
val begin_move :
  t -> node_count:int -> live:int list ->
  dist_of:(Catalog.Shell_db.table -> Catalog.Distribution.t) -> move

(** Copy-build the next pending table into the shadow appliance as one
    injectable step under the source's recovery budget: node crashes
    escalate ({!Fault.Injected} — compose with {!decommission} and restart
    the move), transfer/temp-write failures drop the half-built partitions
    and retry, stragglers inflate the step's copy time, an exhausted
    budget raises {!Fault.Exhausted}. Priced via
    {!Dms.Cost.repartition_seconds}; a failed attempt never
    double-charges. *)
val copy_step : move -> unit

(** Atomically commit a fully copied move: one injectable control-node
    step, a [stats_version] bump on the new shell, the source account
    carried over plus the move's accrued copy cost. Returns the new
    appliance (bumped replan epoch — fingerprint v6 carries it). Raises
    [Invalid_argument] if pending copies remain. *)
val flip_move : move -> t

(** Abandon an in-flight move: half-built partitions are dropped; the
    source catalog, storage and epoch are untouched. *)
val abort_move : move -> unit

(** [recommission t ~nodes] grows the appliance to [nodes] compute nodes
    (the inverse of {!decommission}) as one complete phased move. New node
    ids continue after the highest id ever used, so a re-grown appliance
    never aliases a decommissioned node's id in [live]. *)
val recommission : t -> nodes:int -> t

(** [redistribute t ~table ~cols] changes [table]'s distribution key to
    hash-partitioning on [cols] as one complete phased move (only that
    table is re-partitioned). *)
val redistribute : t -> table:string -> cols:string list -> t

(** Single-node oracle: run a serial plan over the full (unpartitioned)
    tables. *)
val run_reference : t -> Serialopt.Plan.t -> Local.rset
