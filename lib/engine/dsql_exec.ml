(** DSQL-plan executor: runs the *generated SQL text* of each DSQL step
    (paper §2.4), which is the strongest possible check on DSQL generation.

    For every DMS step, the step's source SQL statement is re-parsed and
    algebrized against a scratch shell database that also contains the
    schemas of previously materialized temp tables, executed on every node
    holding input data (exactly what the Engine service does when it
    "obtains a connection to the SQL Server instance on each compute node
    and issues a specified SQL statement"), and the resulting rows are
    routed by the DMS runtime into the destination temp table. The final
    Return step's SQL produces the client result. *)

open Algebra

type rows = Catalog.Value.t array list

(** Where a temp table's payload lives (row- or column-major, matching
    the appliance's engine). *)
type placement =
  | On_nodes of Rset.t array     (** one shard per compute node *)
  | On_control of Rset.t
  | Replicated_everywhere of Rset.t

type state = {
  app : Appliance.t;
  scratch : Catalog.Shell_db.t;      (** base schemas + temp schemas *)
  temps : (string, placement) Hashtbl.t;
  plan_reg : Registry.t;             (** the registry of the DSQL plan *)
}

exception Dsql_exec_error of string

let create (app : Appliance.t) (plan_reg : Registry.t) : state =
  let scratch = Catalog.Shell_db.create ~node_count:app.Appliance.nodes in
  List.iter
    (fun (tbl : Catalog.Shell_db.table) ->
       ignore
         (Catalog.Shell_db.add_table scratch ~stats:tbl.Catalog.Shell_db.stats
            tbl.Catalog.Shell_db.schema tbl.Catalog.Shell_db.dist))
    (Catalog.Shell_db.tables app.Appliance.shell);
  { app; scratch; temps = Hashtbl.create 8; plan_reg }

(* register a temp table's schema so later statements can resolve it *)
let register_temp st name (cols : (int * string) list) =
  let columns =
    List.map
      (fun (id, cname) ->
         let ty = Registry.ty st.plan_reg id in
         Catalog.Schema.column ~nullable:true cname ty)
      cols
  in
  let schema = Catalog.Schema.make name columns in
  (* the declared distribution is irrelevant for logical execution *)
  ignore (Catalog.Shell_db.add_table st.scratch schema Catalog.Distribution.Replicated)

(* -- direct logical-tree execution (no optimizer needed per node) -- *)

let physop_of (op : Relop.op) : Memo.Physop.t =
  match op with
  | Relop.Get { table; alias; cols } -> Memo.Physop.Table_scan { table; alias; cols }
  | Relop.Select p -> Memo.Physop.Filter p
  | Relop.Project defs -> Memo.Physop.Compute defs
  | Relop.Join { kind; pred } -> Memo.Physop.Hash_join { kind; pred }
  | Relop.Group_by { keys; aggs } -> Memo.Physop.Hash_agg { keys; aggs }
  | Relop.Sort { keys; limit } -> Memo.Physop.Sort_op { keys; limit }
  | Relop.Union_all -> Memo.Physop.Union_op
  | Relop.Empty cols -> Memo.Physop.Const_empty cols

let rec exec_logical ~read_table (t : Relop.t) : Local.rset =
  let children = List.map (exec_logical ~read_table) t.Relop.children in
  Local.exec_op ~read_table (physop_of t.Relop.op) children

(* the same tree on the columnar engine *)
let rec exec_logical_b ~read_table (t : Relop.t) : Batch.t =
  let children = List.map (exec_logical_b ~read_table) t.Relop.children in
  Batch.exec_op ~read_table (physop_of t.Relop.op) children

(* parse + algebrize + normalize a generated statement *)
let compile st sql =
  let r = Algebrizer.of_sql st.scratch sql in
  let tree = Normalize.normalize r.Algebrizer.reg st.scratch r.Algebrizer.tree in
  (r, tree)

(* does a compiled tree reference any control-resident temp? *)
let rec referenced_tables (t : Relop.t) =
  (match t.Relop.op with
   | Relop.Get { table; _ } -> [ String.lowercase_ascii table ]
   | _ -> [])
  @ List.concat_map referenced_tables t.Relop.children

let uses_control_temp st tree =
  List.exists
    (fun name ->
       match Hashtbl.find_opt st.temps name with
       | Some (On_control _) -> true
       | _ -> false)
    (referenced_tables tree)

(* every referenced relation holds a full copy on every node, so the
   statement's per-node results are identical replicas *)
let all_replicated st tree =
  List.for_all
    (fun name ->
       match Hashtbl.find_opt st.temps name with
       | Some (Replicated_everywhere _) -> true
       | Some _ -> false
       | None ->
         (match Catalog.Shell_db.find st.app.Appliance.shell name with
          | Some tbl -> Catalog.Distribution.is_replicated tbl.Catalog.Shell_db.dist
          | None -> false))
    (referenced_tables tree)

(* per-node temp-table payload; None = base table (read from the
   appliance). An empty result keeps the temp's arity so the columnar
   engine's scans still type-check *)
let temp_payload st ~node ~control name : Rset.t option =
  match Hashtbl.find_opt st.temps (String.lowercase_ascii name) with
  | Some (On_nodes shards) ->
    Some (if control then Rset.empty_like shards.(0) else shards.(node))
  | Some (On_control rs) -> Some (if control then rs else Rset.empty_like rs)
  | Some (Replicated_everywhere rs) -> Some rs
  | None -> None

(* per-node table readers: base shards from the appliance, temps from
   state. The control node's SQL Server holds replicated tables only. *)
let reader_for st ~node ~control name : rows =
  match temp_payload st ~node ~control name with
  | Some rs -> (Rset.to_local rs).Local.rows
  | None -> Appliance.node_table st.app (if control then 0 else node) name

let reader_for_b st ~node ~control name : Batch.t =
  match temp_payload st ~node ~control name with
  | Some rs -> Rset.to_batch rs
  | None -> Appliance.node_batch st.app (if control then 0 else node) name

(* execute a compiled tree on one node's data, on the appliance's engine *)
let exec_tree st ~node ~control (tree : Relop.t) : Rset.t =
  match Appliance.engine st.app with
  | Rset.Row ->
    Rset.Rows (exec_logical ~read_table:(reader_for st ~node ~control) tree)
  | Rset.Columnar ->
    Rset.Cols (exec_logical_b ~read_table:(reader_for_b st ~node ~control) tree)

type stmt_result =
  | Per_node of Rset.t array     (** one result per compute node *)
  | Replicated_result of Rset.t  (** identical on every node *)
  | Control_result of Rset.t     (** ran on the control node *)

(* execute a statement where its input data lives *)
let run_statement st sql ~on_control : stmt_result =
  let _, tree = compile st sql in
  if on_control || uses_control_temp st tree then
    Control_result (exec_tree st ~node:0 ~control:true tree)
  else if all_replicated st tree then
    Replicated_result (exec_tree st ~node:0 ~control:false tree)
  else
    Per_node
      (Array.init st.app.Appliance.nodes (fun node ->
           exec_tree st ~node ~control:false tree))

(** Execute a full DSQL plan against the appliance; returns the client
    result set. *)
let run (app : Appliance.t) (plan : Dsql.Generate.plan) : Local.rset =
  let st = create app plan.Dsql.Generate.reg in
  let result = ref None in
  Appliance.begin_statement app;
  List.iter
    (fun step ->
       match step with
       | Dsql.Generate.Dms_step { kind; temp_table; source_sql; cols; _ } ->
         let temp_key = String.lowercase_ascii temp_table in
         (* each DMS step is one recovery unit: a retry first drops the
            step's (possibly partial) temp table, then re-runs the source
            statement and the movement — DSQL's defined-before-use
            discipline guarantees no later step consumed it yet *)
         Appliance.with_recovery app
           ~on_retry:(fun () -> Hashtbl.remove st.temps temp_key)
         @@ fun () ->
         let single_source =
           match kind with
           | Dms.Op.Control_node_move | Dms.Op.Replicated_broadcast -> true
           | _ -> false
         in
         let stmt = run_statement st source_sql ~on_control:single_source in
         (* build a dstream for the DMS runtime; the layout ids come from
            the step's declared temp schema *)
         let layout = List.map fst cols in
         let nil = Rset.Rows { Local.layout; rows = [] } in
         let remap (rs : Rset.t) : Rset.t =
           (* generated SELECTs emit the moved columns in declared order *)
           let w = List.length (Rset.layout rs) in
           if w <> List.length layout then
             raise
               (Dsql_exec_error
                  (Printf.sprintf "step %s: arity mismatch (%d vs %d)" temp_table
                     w (List.length layout)));
           Rset.with_layout rs layout
         in
         let stream =
           match stmt with
           | Control_result c ->
             { Appliance.layout; per_node = Array.make app.Appliance.nodes nil;
               control = remap c; dist = Dms.Distprop.Single_node }
           | Replicated_result r ->
             { Appliance.layout;
               per_node = Array.make app.Appliance.nodes (remap r);
               control = nil;
               dist = Dms.Distprop.Replicated }
           | Per_node per_node ->
             { Appliance.layout;
               per_node = Array.map remap per_node;
               control = nil;
               dist = Dms.Distprop.Hashed [] }
         in
         let out = Appliance.run_move app kind ~cols:layout stream in
         let placement =
           match out.Appliance.dist with
           | Dms.Distprop.Single_node -> On_control out.Appliance.control
           | Dms.Distprop.Replicated ->
             Replicated_everywhere
               (if Array.length out.Appliance.per_node > 0 then out.Appliance.per_node.(0)
                else nil)
           | Dms.Distprop.Hashed _ -> On_nodes out.Appliance.per_node
         in
         Hashtbl.replace st.temps (String.lowercase_ascii temp_table) placement;
         register_temp st temp_table cols
       | Dsql.Generate.Return_step { sql; _ } ->
         (* execute per node, gather, then apply the statement's global
            ORDER BY / TOP on the gathered rows; one recovery unit — the
            gather is pure, so a control-node transient just recomputes *)
         Appliance.with_recovery app @@ fun () ->
         let r, tree = compile st sql in
         ignore r;
         let sort_spec =
           match tree.Relop.op with
           | Relop.Sort { keys; limit } -> Some (keys, limit)
           | _ -> None
         in
         let body =
           match sort_spec, tree.Relop.children with
           | Some _, [ c ] -> c
           | _ -> tree
         in
         let gathered =
           Rset.to_local
             (if uses_control_temp st body then
                exec_tree st ~node:0 ~control:true body
              else if all_replicated st body then
                exec_tree st ~node:0 ~control:false body
              else begin
                let parts =
                  List.init app.Appliance.nodes (fun node ->
                      exec_tree st ~node ~control:false body)
                in
                match parts with
                | [] -> Rset.Rows { Local.layout = []; rows = [] }
                | first :: _ -> Rset.concat ~layout:(Rset.layout first) parts
              end)
         in
         Appliance.inject_point app Fault.Control_transient;
         let final =
           match sort_spec with
           | Some (keys, limit) -> Local.sort_rows ~keys ?limit gathered
           | None -> gathered
         in
         result := Some final)
    plan.Dsql.Generate.steps;
  match !result with
  | Some r -> r
  | None -> raise (Dsql_exec_error "DSQL plan had no Return step")
