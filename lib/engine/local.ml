(** Single-node relational executor: runs serial physical operators over
    in-memory row lists. This is the "SQL Server instance" of each compute
    node in the simulated appliance. *)

open Algebra
open Memo

type rows = Catalog.Value.t array list

(** A result set: rows plus the column layout (registry ids, in order). *)
type rset = {
  layout : int list;
  rows : rows;
}

exception Exec_error of string

(* environment: col id -> value for one row, given a layout *)
let make_env (layout : int list) : Catalog.Value.t array -> int -> Catalog.Value.t =
  let index = Hashtbl.create (List.length layout) in
  List.iteri (fun i c -> if not (Hashtbl.mem index c) then Hashtbl.replace index c i) layout;
  fun row c ->
    match Hashtbl.find_opt index c with
    | Some i -> row.(i)
    | None -> raise (Exec_error (Printf.sprintf "column #%d not in layout" c))

let eval_pred_on layout pred =
  let env = make_env layout in
  fun row -> Expr.eval_pred (env row) pred

(* first [n] elements of a list, without walking the tail (the previous
   [List.filteri] scanned all rows even for TOP 1) *)
let take n l =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n l

(* first-occurrence index of every column id in a layout *)
let make_index (layout : int list) : (int, int) Hashtbl.t =
  let index = Hashtbl.create (List.length layout) in
  List.iteri (fun i c -> if not (Hashtbl.mem index c) then Hashtbl.replace index c i) layout;
  index

(* positions of [cols] in [layout] (first occurrence), for hot-path key
   extraction without per-row environment lookups *)
let positions_of (layout : int list) (cols : int list) : int array =
  let index = make_index layout in
  Array.of_list
    (List.map
       (fun c ->
          match Hashtbl.find_opt index c with
          | Some i -> i
          | None -> raise (Exec_error (Printf.sprintf "column #%d not in layout" c)))
       cols)

(* key extraction for hashing/grouping *)
let key_of (pos : int array) (row : Catalog.Value.t array) : Catalog.Value.t array =
  Array.map (fun i -> row.(i)) pos

module Key = struct
  type t = Catalog.Value.t array
  let equal a b =
    Array.length a = Array.length b
    && (let n = Array.length a in
        let rec go i = i >= n || (Catalog.Value.equal a.(i) b.(i) && go (i + 1)) in
        go 0)
  let hash k = Array.fold_left (fun h v -> (h * 31) + Catalog.Value.hash v) 17 k
end

module KeyTbl = Hashtbl.Make (Key)

(* -- executor observability (merged into Obs by the caller domain) -- *)

(** Per-shard executor statistics, accumulated while a node executes its
    operators. Pool-safe by construction: each worker writes its own
    record; the caller merges them into {!Obs} counters after the
    fan-out. *)
type exec_stats = {
  mutable rows_scanned : int;   (** base-table rows produced by scans *)
  mutable batches : int;        (** operator outputs (one batch per op) *)
  mutable probe_rows : int;     (** hash-join probe-side input rows *)
}

let fresh_stats () = { rows_scanned = 0; batches = 0; probe_rows = 0 }

let merge_stats ~(into : exec_stats) (s : exec_stats) =
  into.rows_scanned <- into.rows_scanned + s.rows_scanned;
  into.batches <- into.batches + s.batches;
  into.probe_rows <- into.probe_rows + s.probe_rows

(* -- aggregates -- *)

type agg_state = {
  mutable count : int;           (* non-null inputs, or all rows for COUNT-star *)
  mutable sum : float;
  mutable sum_is_int : bool;
  mutable min_v : Catalog.Value.t option;
  mutable max_v : Catalog.Value.t option;
  distinct_seen : unit KeyTbl.t option;
}

let new_agg_state distinct =
  { count = 0; sum = 0.; sum_is_int = true; min_v = None; max_v = None;
    distinct_seen = (if distinct then Some (KeyTbl.create 16) else None) }

let agg_feed (a : Expr.agg_def) st (v : Catalog.Value.t option) =
  (* [v] = None for COUNT-star: count the row regardless *)
  match v with
  | None -> st.count <- st.count + 1
  | Some v ->
    if not (Catalog.Value.is_null v) then begin
      let proceed =
        match st.distinct_seen with
        | None -> true
        | Some seen ->
          if KeyTbl.mem seen [| v |] then false
          else begin KeyTbl.replace seen [| v |] (); true end
      in
      if proceed then begin
        st.count <- st.count + 1;
        (match a.Expr.agg_func with
         | Expr.Sum | Expr.Avg ->
           (match v with
            | Catalog.Value.Int x -> st.sum <- st.sum +. float_of_int x
            | Catalog.Value.Float x -> st.sum <- st.sum +. x; st.sum_is_int <- false
            | _ -> raise (Exec_error "SUM/AVG over non-numeric value"))
         | Expr.Min ->
           (match st.min_v with
            | Some m when Catalog.Value.compare m v <= 0 -> ()
            | _ -> st.min_v <- Some v)
         | Expr.Max ->
           (match st.max_v with
            | Some m when Catalog.Value.compare m v >= 0 -> ()
            | _ -> st.max_v <- Some v)
         | Expr.Count | Expr.Count_star -> ())
      end
    end

let agg_result (a : Expr.agg_def) st : Catalog.Value.t =
  match a.Expr.agg_func with
  | Expr.Count | Expr.Count_star -> Catalog.Value.Int st.count
  | Expr.Sum ->
    if st.count = 0 then Catalog.Value.Null
    else if st.sum_is_int && Float.is_integer st.sum && Float.abs st.sum < 4.5e15 then
      Catalog.Value.Int (int_of_float st.sum)
    else Catalog.Value.Float st.sum
  | Expr.Avg ->
    if st.count = 0 then Catalog.Value.Null
    else Catalog.Value.Float (st.sum /. float_of_int st.count)
  | Expr.Min -> (match st.min_v with Some v -> v | None -> Catalog.Value.Null)
  | Expr.Max -> (match st.max_v with Some v -> v | None -> Catalog.Value.Null)

let run_aggregate ~(keys : int list) ~(aggs : Expr.agg_def list) (input : rset) : rset =
  let env = make_env input.layout in
  let kpos = positions_of input.layout keys in
  let groups : (Catalog.Value.t array * agg_state array) KeyTbl.t = KeyTbl.create 64 in
  let order = ref [] in  (* key insertion order for determinism *)
  List.iter
    (fun row ->
       let k = key_of kpos row in
       let _, states =
         match KeyTbl.find_opt groups k with
         | Some e -> e
         | None ->
           let sts =
             Array.of_list (List.map (fun a -> new_agg_state a.Expr.agg_distinct) aggs)
           in
           KeyTbl.replace groups k (k, sts);
           order := k :: !order;
           (k, sts)
       in
       List.iteri
         (fun i a ->
            let v =
              match a.Expr.agg_arg with
              | Some e -> Some (Expr.eval (env row) e)
              | None -> None
            in
            agg_feed a states.(i) v)
         aggs)
    input.rows;
  let emit k states =
    Array.append k (Array.of_list (List.mapi (fun i a -> agg_result a states.(i)) aggs))
  in
  let out_rows =
    if keys = [] then begin
      (* scalar aggregate: one row even over empty input *)
      match KeyTbl.find_opt groups [||] with
      | Some (k, sts) -> [ emit k sts ]
      | None ->
        let sts = Array.of_list (List.map (fun a -> new_agg_state a.Expr.agg_distinct) aggs) in
        [ emit [||] sts ]
    end
    else
      List.rev_map (fun k -> let _, sts = KeyTbl.find groups k in emit k sts) !order
  in
  { layout = keys @ List.map (fun a -> a.Expr.agg_out) aggs; rows = out_rows }

(* -- joins -- *)

let join_layout kind (l : rset) (r : rset) =
  match (kind : Relop.join_kind) with
  | Relop.Semi | Relop.Anti_semi -> l.layout
  | _ -> l.layout @ r.layout

let hash_join ~(kind : Relop.join_kind) ~(pred : Expr.t) (l : rset) (r : rset) : rset =
  let equi =
    Physop.oriented_equi_pairs pred
      ~left_cols:(Registry.Col_set.of_list l.layout)
      ~right_cols:(Registry.Col_set.of_list r.layout)
  in
  let out_layout = join_layout kind l r in
  let combined_layout = l.layout @ r.layout in
  let combined_env = make_env combined_layout in
  let pred_ok lrow rrow =
    let row = Array.append lrow rrow in
    Expr.eval_pred (combined_env row) pred
  in
  let null_row n = Array.make n Catalog.Value.Null in
  if equi = [] then begin
    (* nested loops *)
    let out = ref [] in
    (match kind with
     | Relop.Inner | Relop.Cross ->
       List.iter
         (fun lrow ->
            List.iter (fun rrow -> if pred_ok lrow rrow then out := Array.append lrow rrow :: !out) r.rows)
         l.rows
     | Relop.Semi ->
       List.iter
         (fun lrow -> if List.exists (pred_ok lrow) r.rows then out := lrow :: !out)
         l.rows
     | Relop.Anti_semi ->
       List.iter
         (fun lrow -> if not (List.exists (pred_ok lrow) r.rows) then out := lrow :: !out)
         l.rows
     | Relop.Left_outer ->
       let rwidth = List.length r.layout in
       List.iter
         (fun lrow ->
            let matched = ref false in
            List.iter
              (fun rrow ->
                 if pred_ok lrow rrow then begin
                   matched := true;
                   out := Array.append lrow rrow :: !out
                 end)
              r.rows;
            if not !matched then out := Array.append lrow (null_row rwidth) :: !out)
         l.rows);
    { layout = out_layout; rows = List.rev !out }
  end
  else begin
    let lkpos = positions_of l.layout (List.map fst equi) in
    let rkpos = positions_of r.layout (List.map snd equi) in
    let index : Catalog.Value.t array list KeyTbl.t = KeyTbl.create 256 in
    List.iter
      (fun rrow ->
         let k = key_of rkpos rrow in
         if not (Array.exists Catalog.Value.is_null k) then begin
           let cur = try KeyTbl.find index k with Not_found -> [] in
           KeyTbl.replace index k (rrow :: cur)
         end)
      r.rows;
    let out = ref [] in
    let rwidth = List.length r.layout in
    List.iter
      (fun lrow ->
         let k = key_of lkpos lrow in
         let matches =
           if Array.exists Catalog.Value.is_null k then []
           else
             match KeyTbl.find_opt index k with
             | Some rs -> List.filter (pred_ok lrow) rs
             | None -> []
         in
         match kind with
         | Relop.Inner | Relop.Cross ->
           List.iter (fun rrow -> out := Array.append lrow rrow :: !out) matches
         | Relop.Semi -> if matches <> [] then out := lrow :: !out
         | Relop.Anti_semi -> if matches = [] then out := lrow :: !out
         | Relop.Left_outer ->
           if matches = [] then out := Array.append lrow (null_row rwidth) :: !out
           else List.iter (fun rrow -> out := Array.append lrow rrow :: !out) matches)
      l.rows;
    { layout = out_layout; rows = List.rev !out }
  end

(* -- sort -- *)

let sort_rows ~(keys : Relop.sort_key list) ?limit (input : rset) : rset =
  let env = make_env input.layout in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | k :: rest ->
        let va = Expr.eval (env a) k.Relop.key and vb = Expr.eval (env b) k.Relop.key in
        let c = Catalog.Value.compare va vb in
        let c = if k.Relop.desc then -c else c in
        if c <> 0 then c else go rest
    in
    go keys
  in
  let sorted = List.stable_sort cmp input.rows in
  let rows =
    match limit with
    | Some n -> take n sorted
    | None -> sorted
  in
  { input with rows }

(** Execute one serial physical operator. [read_table] resolves base-table
    scans (it receives the table name and returns that node's rows).
    [stats], when given, accumulates executor counters for this shard. *)
let exec_op ?(stats : exec_stats option) ~(read_table : string -> rows) (op : Physop.t)
    (children : rset list) : rset =
  let children = Array.of_list children in
  let child n = children.(n) in
  (match stats with Some st -> st.batches <- st.batches + 1 | None -> ());
  match op with
  | Physop.Table_scan { table; cols; _ } ->
    let rows = read_table table in
    (match stats with
     | Some st -> st.rows_scanned <- st.rows_scanned + List.length rows
     | None -> ());
    { layout = Array.to_list cols; rows }
  | Physop.Filter pred ->
    let c = child 0 in
    { c with rows = List.filter (eval_pred_on c.layout pred) c.rows }
  | Physop.Compute defs ->
    let c = child 0 in
    let env = make_env c.layout in
    let exprs = List.map snd defs in
    { layout = List.map fst defs;
      rows = List.map (fun row -> Array.of_list (List.map (Expr.eval (env row)) exprs)) c.rows }
  | Physop.Hash_join { kind; pred } | Physop.Merge_join { kind; pred } ->
    (* merge join is value-equivalent to hash join; order is re-established
       by explicit enforcers where needed *)
    (match stats with
     | Some st -> st.probe_rows <- st.probe_rows + List.length (child 0).rows
     | None -> ());
    hash_join ~kind ~pred (child 0) (child 1)
  | Physop.Nl_join { kind; pred } ->
    (* hash_join falls back to nested loops when the predicate has no
       usable equi pairs *)
    (match stats with
     | Some st -> st.probe_rows <- st.probe_rows + List.length (child 0).rows
     | None -> ());
    hash_join ~kind ~pred (child 0) (child 1)
  | Physop.Hash_agg { keys; aggs } -> run_aggregate ~keys ~aggs (child 0)
  | Physop.Stream_agg { keys; aggs } ->
    (* robust to unsorted input: aggregation hashes internally *)
    run_aggregate ~keys ~aggs (child 0)
  | Physop.Sort_op { keys; limit } -> sort_rows ~keys ?limit (child 0)
  | Physop.Union_op ->
    (* the right branch's projection has already aligned layouts *)
    let l = child 0 and r = child 1 in
    { layout = l.layout; rows = l.rows @ r.rows }
  | Physop.Const_empty cols -> { layout = cols; rows = [] }

(** Execute a whole serial plan tree (the single-node oracle). *)
let rec exec_plan ~read_table (p : Serialopt.Plan.t) : rset =
  let children = List.map (exec_plan ~read_table) p.Serialopt.Plan.children in
  exec_op ~read_table p.Serialopt.Plan.op children

(* -- result comparison helpers (for tests) -- *)

(** Canonical multiset representation of a result: rows as string lists,
    sorted. Projects [cols] out of the layout. *)
let canonical ?cols (r : rset) : string list =
  let layout, rows =
    match cols with
    | None -> (r.layout, r.rows)
    | Some cs ->
      let env = make_env r.layout in
      (cs, List.map (fun row -> Array.of_list (List.map (env row) cs)) r.rows)
  in
  ignore layout;
  let row_str row =
    String.concat "|"
      (List.map
         (fun v ->
            match v with
            | Catalog.Value.Float f -> Printf.sprintf "%.6g" f
            | v -> Catalog.Value.to_string v)
         (Array.to_list row))
  in
  List.sort String.compare (List.map row_str rows)
