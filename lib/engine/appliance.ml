(** The simulated PDW appliance: a control node plus N compute nodes, each
    holding hash-partitioned or replicated table shards and running the
    {!Local} executor; a DMS runtime routes rows between nodes with byte
    accounting and a simulated clock (paper §2.1-§2.4).

    Time is simulated from "true" per-component hardware characteristics
    that are deliberately richer than the optimizer's linear cost model
    (per-byte rate + per-row overhead + fixed setup): calibration (paper
    §3.3.3) fits the model's lambdas against measurements produced here. *)


type rows = Catalog.Value.t array list

(* -- "true" hardware characteristics of the simulated appliance -- *)

type hw = {
  reader_byte : float; reader_row : float;
  hash_extra_byte : float;               (** extra reader cost when hashing *)
  network_byte : float; network_row : float;
  writer_byte : float; writer_row : float;
  blkcpy_byte : float; blkcpy_row : float; blkcpy_fixed : float;
  serial_unit : float;  (** seconds per unit of {!Serialopt.Cost} work *)
}

let default_hw = {
  reader_byte = 0.95e-9; reader_row = 6e-9;
  hash_extra_byte = 0.45e-9;
  network_byte = 0.82e-9; network_row = 3e-9;
  writer_byte = 0.65e-9; writer_row = 4e-9;
  blkcpy_byte = 1.30e-9; blkcpy_row = 7e-9; blkcpy_fixed = 2e-4;
  serial_unit = 0.04e-6;
}

(* -- accounting -- *)

type account = {
  mutable sim_time : float;         (** simulated response time, seconds *)
  mutable dms_time : float;         (** portion spent in DMS steps *)
  mutable bytes_moved : float;      (** bytes that crossed the network *)
  mutable rows_moved : float;
  mutable moves : int;
  mutable reader_samples : Dms.Calibrate.sample list;
  mutable reader_hash_samples : Dms.Calibrate.sample list;
  mutable network_samples : Dms.Calibrate.sample list;
  mutable writer_samples : Dms.Calibrate.sample list;
  mutable blkcpy_samples : Dms.Calibrate.sample list;
  (* fault plane *)
  mutable injected : int;           (** faults that fired (stragglers included) *)
  mutable retries : int;            (** step re-executions after a failure *)
  mutable recovered : int;          (** steps that eventually succeeded *)
  mutable replans : int;            (** node losses escalated to re-optimization *)
  mutable backoff_time : float;     (** simulated seconds spent backing off *)
}

let fresh_account () = {
  sim_time = 0.; dms_time = 0.; bytes_moved = 0.; rows_moved = 0.; moves = 0;
  reader_samples = []; reader_hash_samples = []; network_samples = [];
  writer_samples = []; blkcpy_samples = [];
  injected = 0; retries = 0; recovered = 0; replans = 0; backoff_time = 0.;
}

(* copy every field of [src] into [dst]; keeps [reset_account] and the
   account carry-over across a node-loss replan in one place, so a new
   account field cannot be forgotten in one of them *)
let assign_account ~(dst : account) (src : account) =
  dst.sim_time <- src.sim_time;
  dst.dms_time <- src.dms_time;
  dst.bytes_moved <- src.bytes_moved;
  dst.rows_moved <- src.rows_moved;
  dst.moves <- src.moves;
  dst.reader_samples <- src.reader_samples;
  dst.reader_hash_samples <- src.reader_hash_samples;
  dst.network_samples <- src.network_samples;
  dst.writer_samples <- src.writer_samples;
  dst.blkcpy_samples <- src.blkcpy_samples;
  dst.injected <- src.injected;
  dst.retries <- src.retries;
  dst.recovered <- src.recovered;
  dst.replans <- src.replans;
  dst.backoff_time <- src.backoff_time

let samples_of account (c : Dms.Calibrate.component) =
  match c with
  | Dms.Calibrate.Reader_direct -> account.reader_samples
  | Dms.Calibrate.Reader_hash -> account.reader_hash_samples
  | Dms.Calibrate.Network -> account.network_samples
  | Dms.Calibrate.Writer -> account.writer_samples
  | Dms.Calibrate.Blkcpy -> account.blkcpy_samples

(* -- the appliance -- *)

(** One executed operator's estimate-vs-observed cardinality sample
    (feedback harvest). [h_cols] are registry column ids of the columns
    the operator's predicates/keys constrain; the caller maps them back to
    catalog (table, column) names with the plan's registry. *)
type op_sample = {
  h_group : int;            (** MEMO group of the operator (-1 if internal) *)
  h_op : string;            (** physical operator name *)
  h_table : string option;  (** scanned table, for scans *)
  h_cols : int list;        (** registry column ids, sorted *)
  h_est : float;            (** optimizer's global row estimate *)
  h_actual : float;         (** observed global rows *)
}

type t = {
  shell : Catalog.Shell_db.t;
  nodes : int;
  hw : hw;
  (* per compute node: table name -> shard payload (row- or column-major,
     matching how the table was loaded; positional layout 0..w-1) *)
  storage : (string, Rset.t) Hashtbl.t array;
  mutable engine : Rset.engine;
      (** which local-executor implementation serial steps run; the row
          engine is the semantics oracle, the columnar engine the fast
          path. Either way the simulated clock and the DMS accounting are
          bit-identical: both are computed from (bytes, rows) volumes and
          operator cardinalities only. *)
  account : account;
  mutable obs : Obs.t;
      (** observability context for per-DMS-op and executor counters;
          [Obs.null] by default, swapped per-query via {!set_obs} *)
  mutable pool : Par.t;
      (** domain pool executing per-compute-node shards of each serial
          step concurrently (the paper's "each DSQL step runs on all N
          nodes in parallel", §2.1/§2.4); {!Par.sequential} by default.
          The simulated clock is unaffected: per-node times are combined
          with the same max/sum rules either way. *)
  mutable check : bool;
      (** validate every plan handed to {!run_pplan} with
          {!Check.validate_exec} and refuse invalid ones ({!Check.Invalid})
          rather than silently producing wrong rows; on by default *)
  mutable fault : Fault.plan;
      (** fault-injection plan consulted at the engine's injection sites;
          {!Fault.none} by default (every draw is a no-op) *)
  mutable epoch : int;
      (** replan epoch: 0 at creation, bumped by {!decommission}; part of
          every fault-draw coordinate so post-replan execution redraws *)
  mutable live : int list;
      (** original node ids still alive, in current-node-index order;
          [List.init nodes Fun.id] until a node is decommissioned *)
  mutable step_no : int;
      (** injectable steps started in the current statement (deterministic
          plan-traversal order); reset by {!begin_statement} *)
  mutable cur_step : int;     (** step id the recovery wrapper is executing *)
  mutable cur_attempt : int;  (** execution attempt of that step (0 = first) *)
  mutable token : Governor.token;
      (** statement cancellation token, polled once per injectable step in
          the caller domain (never inside the pool fan-out, so the
          simulated clock stays bit-identical at any [--jobs]);
          {!Governor.none} by default *)
  mutable bounds : (int, float * float) Hashtbl.t option;
      (** static cardinality bounds per memo group ([--assert-bounds]):
          after each Serial/Move node executes, the observed global row
          count is checked against the analyzer's [lo, hi] interval for
          the node's group; [None] (the default) disables the check *)
  mutable bound_violations : int;
      (** operators whose observed rows fell outside the static bounds
          since [bounds] was last set *)
  mutable harvest : op_sample list ref option;
      (** feedback harvest (DESIGN.md §13): when armed, every executed
          Serial operator appends an estimate-vs-observed cardinality
          sample to the ref (caller domain, bottom-up plan order, so the
          list is deterministic at any [--jobs]); [None] disables *)
}

let create ?(hw = default_hw) ?(obs = Obs.null) ?(pool = Par.sequential)
    ?(check = true) ?(engine = Rset.Row) (shell : Catalog.Shell_db.t) : t =
  let nodes = Catalog.Shell_db.node_count shell in
  { shell; nodes; hw; engine;
    storage = Array.init nodes (fun _ -> Hashtbl.create 16);
    account = fresh_account (); obs; pool; check;
    fault = Fault.none; epoch = 0; live = List.init nodes Fun.id;
    step_no = 0; cur_step = 0; cur_attempt = 0; token = Governor.none;
    bounds = None; bound_violations = 0; harvest = None }

(** Attach an observability context (typically per executed query). *)
let set_obs t obs = t.obs <- obs

(** Attach a domain pool for multicore shard execution (typically one pool
    per process, shared across appliances). *)
let set_pool t pool = t.pool <- pool

(** Select the local-executor implementation for serial steps. *)
let set_engine t engine = t.engine <- engine

let engine t = t.engine

(** Enable/disable the {!Check} execution gate (see the [check] field). *)
let set_check t check = t.check <- check

(** Attach a fault-injection plan ({!Fault.none} disables injection). *)
let set_fault t fault = t.fault <- fault

(** Attach a statement cancellation token ({!Governor.none} disables
    polling). The caller is responsible for resetting it to
    {!Governor.none} when the statement finishes. *)
let set_token t token = t.token <- token

(** Original node ids still alive (current node index -> original id). *)
let live_nodes t = t.live

(** Arm (or disarm, with [None]) the static-bounds assertion for the next
    statements; resets the violation tally. *)
let set_bounds t bounds =
  t.bounds <- bounds;
  t.bound_violations <- 0

(** Arm (or disarm, with [None]) the feedback cardinality harvest for the
    next statements. Samples accumulate in the given ref, newest first. *)
let set_harvest t harvest = t.harvest <- harvest

let reset_account t = assign_account ~dst:t.account (fresh_account ())

(** Start a new statement: step numbering restarts at 0 so explicit fault
    schedules address steps of each statement independently. *)
let begin_statement t =
  t.step_no <- 0;
  t.cur_step <- 0;
  t.cur_attempt <- 0

(* routing hash: must agree between initial loading and shuffles (and
   between engines — see {!Rset.route_hash}) *)
let route_hash = Rset.route_hash

(** Load a table shard payload, partitioning or replicating per the shell
    layout. The payload keeps its representation (row- or column-major). *)
let load_rset (t : t) (name : string) (data : Rset.t) =
  let tbl = Catalog.Shell_db.find_exn t.shell name in
  let key = String.lowercase_ascii name in
  match tbl.Catalog.Shell_db.dist with
  | Catalog.Distribution.Replicated ->
    Array.iter (fun store -> Hashtbl.replace store key data) t.storage
  | Catalog.Distribution.Hash_partitioned cols ->
    let schema = tbl.Catalog.Shell_db.schema in
    let kpos =
      Array.of_list (List.filter_map (fun c -> Catalog.Schema.find_col schema c) cols)
    in
    let parts = Rset.partition data ~kpos ~parts:t.nodes in
    Array.iteri (fun i store -> Hashtbl.replace store key parts.(i)) t.storage

(** Load a table from rows (row-major storage). *)
let load_table (t : t) (name : string) (rows : rows) =
  let w = match rows with [] -> 0 | r :: _ -> Array.length r in
  load_rset t name (Rset.Rows { Local.layout = List.init w Fun.id; rows })

(** Load a table from a column-major payload (columnar storage). *)
let load_table_cols (t : t) (name : string) (tbl : Catalog.Column.table) =
  let w = Array.length tbl.Catalog.Column.cols in
  load_rset t name
    (Rset.Cols { (Batch.of_table tbl) with Batch.layout = Array.init w Fun.id })

let node_rset t node name =
  match Hashtbl.find_opt t.storage.(node) (String.lowercase_ascii name) with
  | Some rs -> rs
  | None -> raise (Local.Exec_error (Printf.sprintf "table %s not loaded" name))

let node_table t node name = (Rset.to_local (node_rset t node name)).Local.rows

let node_batch t node name = Rset.to_batch (node_rset t node name)

(* -- distributed streams -- *)

type dstream = {
  layout : int list;
  per_node : Rset.t array;   (** length = t.nodes; unused when on control *)
  control : Rset.t;          (** payload resident on the control node *)
  dist : Dms.Distprop.t;
}

(** The full logical contents of a stream as one payload. *)
let stream_rset (d : dstream) : Rset.t =
  match d.dist with
  | Dms.Distprop.Single_node -> Rset.with_layout d.control d.layout
  | Dms.Distprop.Replicated ->
    if Array.length d.per_node = 0 then Rset.Rows { Local.layout = d.layout; rows = [] }
    else Rset.with_layout d.per_node.(0) d.layout
  | Dms.Distprop.Hashed _ ->
    Rset.concat ~layout:d.layout (Array.to_list d.per_node)

let stream_rows (d : dstream) : rows = (Rset.to_local (stream_rset d)).Local.rows

(* -- fault injection and step-level recovery -- *)

let fault_active t = t.fault.Fault.mode <> Fault.Off

let note_injection t (site : Fault.site) =
  t.account.injected <- t.account.injected + 1;
  if Obs.enabled t.obs then begin
    Obs.add t.obs "fault.injected" 1;
    Obs.add t.obs ("fault.injected." ^ Fault.site_name site) 1
  end

let fail_at t (site : Fault.site) (node : int) =
  note_injection t site;
  raise (Fault.Injected { Fault.site; epoch = t.epoch; step = t.cur_step; node })

(** Raise {!Fault.Injected} if the plan fires [site] at the step/attempt
    the recovery wrapper is currently executing. For node-less sites. *)
let inject_point (t : t) (site : Fault.site) =
  if fault_active t
     && Fault.fires t.fault ~site ~epoch:t.epoch ~step:t.cur_step ~node:(-1)
          ~attempt:t.cur_attempt
  then fail_at t site (-1)

(** [with_recovery t f] runs one injectable step [f] under the retry
    policy: a recoverable {!Fault.Injected} charges exponential backoff to
    the simulated clock and re-runs [f] (after [on_retry], which must make
    re-execution idempotent — e.g. drop the step's temp table), up to the
    policy's retry budget, after which {!Fault.Exhausted} is raised.
    {!Fault.Node_crash} is not retryable here: it propagates to the caller
    (the statement must be re-optimized against the surviving nodes). *)
let with_recovery ?(on_retry = fun () -> ()) (t : t) (f : unit -> 'a) : 'a =
  (* Cooperative cancellation at step granularity, in the caller domain
     only (sim_time is read/updated here, never in pool workers, so a
     simulated-clock deadline trips at the same step at any --jobs).
     Raising between steps is safe: executor temp state unwinds with the
     exception and half-written temps are dropped with it. *)
  Governor.poll ~where:"engine.step" t.token;
  let step = t.step_no in
  t.step_no <- step + 1;
  if not (fault_active t) then begin
    (* keep step numbering identical with injection off, so a schedule's
       step ids can be derived from a fault-free run *)
    t.cur_step <- step;
    t.cur_attempt <- 0;
    f ()
  end
  else begin
    let policy = t.fault.Fault.policy in
    let rec attempt k =
      t.cur_step <- step;
      t.cur_attempt <- k;
      match f () with
      | v ->
        if k > 0 then begin
          t.account.recovered <- t.account.recovered + 1;
          if Obs.enabled t.obs then Obs.add t.obs "fault.recovered" 1
        end;
        v
      | exception (Fault.Injected failure as e) ->
        if failure.Fault.site = Fault.Node_crash then raise e
        else if k >= policy.Fault.retries then
          raise (Fault.Exhausted { failure; attempts = k + 1 })
        else begin
          let pause = Fault.backoff policy (k + 1) in
          t.account.sim_time <- t.account.sim_time +. pause;
          t.account.backoff_time <- t.account.backoff_time +. pause;
          t.account.retries <- t.account.retries + 1;
          if Obs.enabled t.obs then begin
            Obs.add t.obs "fault.retries" 1;
            Obs.addf t.obs "fault.backoff_seconds" pause
          end;
          on_retry ();
          Obs.with_span t.obs "fault.retry" (fun () -> attempt (k + 1))
        end
    in
    attempt 0
  end

(* -- simulated DMS runtime -- *)

let source_time hw ~hashed ~read_bytes ~read_rows ~net_bytes ~net_rows =
  let rb = hw.reader_byte +. (if hashed then hw.hash_extra_byte else 0.) in
  let t_read = (read_bytes *. rb) +. (read_rows *. hw.reader_row) in
  let t_net = (net_bytes *. hw.network_byte) +. (net_rows *. hw.network_row) in
  (t_read, t_net, Float.max t_read t_net)

let target_time hw ~write_bytes ~write_rows =
  let t_write = (write_bytes *. hw.writer_byte) +. (write_rows *. hw.writer_row) in
  let t_blk =
    (write_bytes *. hw.blkcpy_byte) +. (write_rows *. hw.blkcpy_row) +. hw.blkcpy_fixed
  in
  (t_write, t_blk, Float.max t_write t_blk)

(* record calibration samples and advance the clock; per-node component
   volumes are summarized by their max (homogeneity assumption) *)
let account_move t ~opname ~hashed ~per_node_read ~per_node_net ~per_node_write =
  let a = t.account in
  let hw = t.hw in
  (* max over nodes of max(read, net) = max(max reads, max nets), so the
     read and net volume lists need not be aligned per node *)
  let max_of f l = List.fold_left (fun m x -> Float.max m (f x)) 0. l in
  let t_read_max =
    max_of
      (fun (rb, rr) ->
         let r, _, _ = source_time hw ~hashed ~read_bytes:rb ~read_rows:rr
             ~net_bytes:0. ~net_rows:0. in
         r)
      per_node_read
  in
  let t_net_max =
    max_of
      (fun (nb, nr) -> (nb *. hw.network_byte) +. (nr *. hw.network_row))
      per_node_net
  in
  let t_src = Float.max t_read_max t_net_max in
  let t_tgt =
    max_of
      (fun (wb, wr) -> let _, _, s = target_time hw ~write_bytes:wb ~write_rows:wr in s)
      per_node_write
  in
  let step = Float.max t_src t_tgt in
  a.sim_time <- a.sim_time +. step;
  a.dms_time <- a.dms_time +. step;
  a.moves <- a.moves + 1;
  (* per-DMS-op volume per cost component (reader / network / writer) *)
  if Obs.enabled t.obs then begin
    let sum l = List.fold_left (fun (b, r) (b', r') -> (b +. b', r +. r')) (0., 0.) l in
    let rbytes, _ = sum per_node_read in
    let nbytes, nrows = sum per_node_net in
    let wbytes, _ = sum per_node_write in
    let c name v = Obs.addf t.obs (Printf.sprintf "engine.dms.%s.%s" opname name) v in
    c "moves" 1.;
    c "seconds" step;
    c "reader.bytes" rbytes;
    c "network.bytes" nbytes;
    c "network.rows" nrows;
    c "writer.bytes" wbytes
  end;
  (* calibration samples (true component times vs bytes) *)
  List.iter
    (fun (rb, rr) ->
       if rb > 0. then begin
         let tt =
           (rb *. (hw.reader_byte +. if hashed then hw.hash_extra_byte else 0.))
           +. (rr *. hw.reader_row)
         in
         let s = { Dms.Calibrate.bytes = rb; seconds = tt } in
         if hashed then a.reader_hash_samples <- s :: a.reader_hash_samples
         else a.reader_samples <- s :: a.reader_samples
       end)
    per_node_read;
  List.iter
    (fun (nb, nr) ->
       if nb > 0. then begin
         let tt = (nb *. hw.network_byte) +. (nr *. hw.network_row) in
         a.network_samples <- { Dms.Calibrate.bytes = nb; seconds = tt } :: a.network_samples;
         a.bytes_moved <- a.bytes_moved +. nb;
         a.rows_moved <- a.rows_moved +. nr
       end)
    per_node_net;
  List.iter
    (fun (wb, wr) ->
       if wb > 0. then begin
         let tw = (wb *. hw.writer_byte) +. (wr *. hw.writer_row) in
         let tb = (wb *. hw.blkcpy_byte) +. (wr *. hw.blkcpy_row) +. hw.blkcpy_fixed in
         a.writer_samples <- { Dms.Calibrate.bytes = wb; seconds = tw } :: a.writer_samples;
         a.blkcpy_samples <- { Dms.Calibrate.bytes = wb; seconds = tb } :: a.blkcpy_samples
       end)
    per_node_write

let project_stream (d : dstream) (cols : int list) : dstream =
  if cols = d.layout then d
  else begin
    let proj rs = Rset.project (Rset.with_layout rs d.layout) cols in
    { d with layout = cols; per_node = Array.map proj d.per_node;
      control = proj d.control }
  end

let empty_rs (layout : int list) = Rset.Rows { Local.layout = layout; rows = [] }

(** Execute one DMS operation on a stream (routing + accounting). *)
let run_move_inner (t : t) (kind : Dms.Op.kind) ~(cols : int list) (input : dstream) : dstream =
  let n = t.nodes in
  let input = project_stream input cols in
  let vol = Rset.vol in
  let zero = (0., 0.) in
  let concat parts = Rset.concat ~layout:cols parts in
  match kind with
  | Dms.Op.Shuffle hash_cols ->
    let sources =
      match input.dist with
      | Dms.Distprop.Single_node -> [ input.control ]
      | _ -> Array.to_list input.per_node
    in
    (* each source partitions independently; destination shards append the
       sources' contributions in source order (same row order as the row
       engine's single cons-and-reverse pass over all sources) *)
    let kpos =
      match sources with
      | [] -> [||]
      | s :: _ -> Rset.positions (Rset.with_layout s cols) hash_cols
    in
    let per_source =
      List.map (fun s -> Rset.partition (Rset.with_layout s cols) ~kpos ~parts:n) sources
    in
    let out =
      Array.init n (fun i -> concat (List.map (fun ps -> ps.(i)) per_source))
    in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:true
      ~per_node_read:(List.map vol sources)
      ~per_node_net:(List.map vol sources)
      ~per_node_write:(Array.to_list (Array.map vol out));
    { layout = cols; per_node = out; control = empty_rs cols;
      dist = Dms.Distprop.Hashed hash_cols }
  | Dms.Op.Partition_move ->
    let all = concat (Array.to_list input.per_node) in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:false
      ~per_node_read:(Array.to_list (Array.map vol input.per_node))
      ~per_node_net:(Array.to_list (Array.map vol input.per_node))
      ~per_node_write:[ vol all ];
    { layout = cols; per_node = Array.make n (empty_rs cols); control = all;
      dist = Dms.Distprop.Single_node }
  | Dms.Op.Control_node_move | Dms.Op.Replicated_broadcast ->
    let rs = input.control in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:false
      ~per_node_read:[ vol rs ]
      ~per_node_net:[ vol rs ]
      ~per_node_write:(List.init n (fun _ -> vol rs));
    { layout = cols; per_node = Array.make n rs; control = empty_rs cols;
      dist = Dms.Distprop.Replicated }
  | Dms.Op.Broadcast ->
    let all = concat (Array.to_list input.per_node) in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:false
      ~per_node_read:(Array.to_list (Array.map vol input.per_node))
      ~per_node_net:[ vol all ]
      ~per_node_write:(List.init n (fun _ -> vol all));
    { layout = cols; per_node = Array.make n all; control = empty_rs cols;
      dist = Dms.Distprop.Replicated }
  | Dms.Op.Trim hash_cols ->
    let out =
      Array.init n (fun i ->
          if Array.length input.per_node > 0 then begin
            let rs = Rset.with_layout input.per_node.(i) cols in
            Rset.trim rs ~kpos:(Rset.positions rs hash_cols) ~node:i ~parts:n
          end
          else empty_rs cols)
    in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:true
      ~per_node_read:(Array.to_list (Array.map vol input.per_node))
      ~per_node_net:[ zero ]
      ~per_node_write:(Array.to_list (Array.map vol out));
    { layout = cols; per_node = out; control = empty_rs cols;
      dist = Dms.Distprop.Hashed hash_cols }
  | Dms.Op.Remote_copy ->
    let all =
      match input.dist with
      | Dms.Distprop.Replicated ->
        if Array.length input.per_node > 0 then
          Rset.with_layout input.per_node.(0) cols
        else empty_rs cols
      | _ -> concat (Array.to_list input.per_node)
    in
    let reads =
      match input.dist with
      | Dms.Distprop.Replicated -> [ vol all ]
      | _ -> Array.to_list (Array.map vol input.per_node)
    in
    account_move t ~opname:(Dms.Op.name kind) ~hashed:false ~per_node_read:reads ~per_node_net:reads
      ~per_node_write:[ vol all ];
    { layout = cols; per_node = Array.make n (empty_rs cols); control = all;
      dist = Dms.Distprop.Single_node }

(** {!run_move_inner} plus the DMS injection sites: a transfer can fail
    mid-move, or the destination temp-table write can fail. Both fire
    after accounting — the failed attempt's work is on the clock, and the
    recovery wrapper's retry re-runs (and re-charges) the move. *)
let run_move (t : t) (kind : Dms.Op.kind) ~(cols : int list) (input : dstream) : dstream =
  let out = run_move_inner t kind ~cols input in
  inject_point t Fault.Dms_transfer;
  inject_point t Fault.Temp_write;
  out

(* -- serial step execution -- *)

let serial_step_time t (op : Memo.Physop.t) (out_rows : float) (in_rows : float list) =
  let work = Serialopt.Cost.local_cost op ~out:out_rows ~inputs:in_rows in
  work *. t.hw.serial_unit

(* run one shard of a serial step on the selected engine; [stats] (when
   observability is on) is private to this shard, so the pool fan-out stays
   race-free and merging happens in the caller domain *)
let shard_exec (t : t) ~(node : int) ?stats (op : Memo.Physop.t)
    (inputs : Rset.t list) : Rset.t =
  match t.engine with
  | Rset.Row ->
    Rset.Rows
      (Local.exec_op ?stats ~read_table:(fun name -> node_table t node name) op
         (List.map Rset.to_local inputs))
  | Rset.Columnar ->
    Rset.Cols
      (Batch.exec_op ?stats ~read_table:(fun name -> node_batch t node name) op
         (List.map Rset.to_batch inputs))

(* merge per-shard executor stats into the Obs counters (caller domain) *)
let note_exec_stats t (stats : Local.exec_stats list) =
  if Obs.enabled t.obs then begin
    let total = Local.fresh_stats () in
    List.iter (fun s -> Local.merge_stats ~into:total s) stats;
    Obs.add t.obs "engine.rows_scanned" total.Local.rows_scanned;
    Obs.add t.obs "engine.batches" total.Local.batches;
    Obs.add t.obs "engine.join_probe_rows" total.Local.probe_rows
  end

(** Execute a serial operator on every node holding data. *)
let run_serial (t : t) (op : Memo.Physop.t) (children : dstream list) : dstream =
  let on_control =
    List.exists (fun c -> c.dist = Dms.Distprop.Single_node) children
    || (children = []
        && match op with
        | Memo.Physop.Const_empty _ -> false
        | _ -> false)
  in
  if on_control then begin
    (* all children must be on the control node (or replicated) *)
    let inputs =
      List.map
        (fun c ->
           match c.dist with
           | Dms.Distprop.Single_node -> Rset.with_layout c.control c.layout
           | Dms.Distprop.Replicated ->
             if Array.length c.per_node > 0 then
               Rset.with_layout c.per_node.(0) c.layout
             else empty_rs c.layout
           | Dms.Distprop.Hashed _ ->
             raise (Local.Exec_error "mixed control/distributed serial step"))
        children
    in
    let stats = if Obs.enabled t.obs then Some (Local.fresh_stats ()) else None in
    let r = shard_exec t ~node:0 ?stats op inputs in
    (match stats with Some s -> note_exec_stats t [ s ] | None -> ());
    let step =
      serial_step_time t op
        (float_of_int (Rset.count r))
        (List.map (fun i -> float_of_int (Rset.count i)) inputs)
    in
    t.account.sim_time <- t.account.sim_time +. step;
    if Obs.enabled t.obs then begin
      Obs.addf t.obs "engine.serial.node_seconds" step;
      Obs.addf t.obs (Printf.sprintf "engine.serial.%s.node_seconds" (Memo.Physop.name op)) step
    end;
    inject_point t Fault.Control_transient;
    { layout = Rset.layout r; per_node = Array.make t.nodes (empty_rs []);
      control = r; dist = Dms.Distprop.Single_node }
  end
  else begin
    (* node-crash decisions are drawn for every node BEFORE the parallel
       fan-out and the lowest-index hit raised here, never from inside a
       pool body — parallel_for's fail-fast picks an arbitrary first
       exception, which would make the surfaced failure schedule-dependent *)
    if fault_active t then begin
      let rec first_crash node =
        if node >= t.nodes then None
        else if Fault.fires t.fault ~site:Fault.Node_crash ~epoch:t.epoch
                  ~step:t.cur_step ~node ~attempt:t.cur_attempt
        then Some node
        else first_crash (node + 1)
      in
      match first_crash 0 with
      | Some node -> fail_at t Fault.Node_crash node
      | None -> ()
    end;
    (* every node executes its shard concurrently on the domain pool; the
       bodies only read shared state (storage, children) and write their
       own result slot (including a private stats record), so the fan-out
       is race-free and [outs] / [steps] come back in node order — the
       simulated clock below is bit-identical to the sequential walk *)
    let want_stats = Obs.enabled t.obs in
    let node_results =
      Par.parallel_map t.pool
        (fun node ->
           let inputs =
             List.map
               (fun c ->
                  if Array.length c.per_node > 0 then
                    Rset.with_layout c.per_node.(node) c.layout
                  else empty_rs c.layout)
               children
           in
           let stats = if want_stats then Some (Local.fresh_stats ()) else None in
           let r = shard_exec t ~node ?stats op inputs in
           let step =
             serial_step_time t op
               (float_of_int (Rset.count r))
               (List.map (fun i -> float_of_int (Rset.count i)) inputs)
           in
           (r, step, stats))
        (Array.init t.nodes Fun.id)
    in
    let outs = Array.map (fun (r, _, _) -> r) node_results in
    note_exec_stats t
      (Array.to_list node_results
       |> List.filter_map (fun (_, _, s) -> s));
    let max_step = ref 0. in
    (* stragglers inflate their node's step time before the max; applied
       here (after the fan-out, in node order) so the combination stays
       bit-identical at any --jobs *)
    Array.iteri
      (fun node (_, step, _) ->
         let step =
           if not (fault_active t) then step
           else
             match
               Fault.straggle t.fault ~epoch:t.epoch ~step:t.cur_step ~node
                 ~attempt:t.cur_attempt
             with
             | Some factor when factor > 0. ->
               note_injection t Fault.Straggler;
               step *. factor
             | _ -> step
         in
         if step > !max_step then max_step := step)
      node_results;
    t.account.sim_time <- t.account.sim_time +. !max_step;
    if Obs.enabled t.obs then begin
      Obs.add t.obs "par.tasks" t.nodes;
      Obs.set t.obs "par.jobs" (float_of_int (Par.jobs t.pool))
    end;
    if Obs.enabled t.obs then begin
      Obs.addf t.obs "engine.serial.node_seconds" !max_step;
      Obs.addf t.obs (Printf.sprintf "engine.serial.%s.node_seconds" (Memo.Physop.name op))
        !max_step
    end;
    let layout = Rset.layout outs.(0) in
    { layout; per_node = outs; control = empty_rs layout;
      dist = Dms.Distprop.Hashed [] (* refined by caller *) }
  end

(* -- full distributed plan execution -- *)

(* [--assert-bounds]: check an executed operator's observed global row
   count against the analyzer's static [lo, hi] for its memo group
   (DESIGN.md §12). The observed count follows the distribution: a hashed
   stream's rows sum across nodes, a replicated stream counts one copy, a
   control-resident stream counts the control payload. Split-introduced
   internal operators carry group -1 and have no static bounds. The ±0.5
   slack makes the integral comparison robust to float accumulation. *)
let observed_rows (d : dstream) =
  match d.dist with
  | Dms.Distprop.Single_node -> float_of_int (Rset.count d.control)
  | Dms.Distprop.Replicated -> float_of_int (Rset.count d.per_node.(0))
  | Dms.Distprop.Hashed _ ->
    Array.fold_left (fun a r -> a +. float_of_int (Rset.count r)) 0. d.per_node

let assert_bounds (t : t) (p : Pdwopt.Pplan.t) (d : dstream) : dstream =
  (match t.bounds with
   | None -> ()
   | Some tbl ->
     if p.Pdwopt.Pplan.group >= 0 then
       (match Hashtbl.find_opt tbl p.Pdwopt.Pplan.group with
        | None -> ()
        | Some (lo, hi) ->
          let observed = observed_rows d in
          if observed < lo -. 0.5 || observed > hi +. 0.5 then begin
            t.bound_violations <- t.bound_violations + 1;
            Obs.add t.obs "analysis.bound_violations" 1
          end));
  d

(* Feedback harvest (DESIGN.md §13): record what this serial operator's
   estimate said against what actually flowed. Runs in the caller domain
   after the operator's (recovered) execution, so the sample order is the
   deterministic bottom-up plan traversal at any [--jobs]. *)
let harvest_op (t : t) (p : Pdwopt.Pplan.t) (op : Memo.Physop.t) (d : dstream) =
  match t.harvest with
  | None -> ()
  | Some acc ->
    let open Memo.Physop in
    let of_set s = Algebra.Registry.Col_set.elements s in
    let table, cols =
      match op with
      | Table_scan { table; _ } -> (Some table, [])
      | Filter pred -> (None, of_set (Algebra.Expr.cols pred))
      | Hash_join { pred; _ } | Merge_join { pred; _ } | Nl_join { pred; _ } ->
        (None, of_set (Algebra.Expr.cols pred))
      | Hash_agg { keys; _ } | Stream_agg { keys; _ } -> (None, List.sort_uniq compare keys)
      | Compute _ | Sort_op _ | Union_op | Const_empty _ -> (None, [])
    in
    acc :=
      { h_group = p.Pdwopt.Pplan.group; h_op = Memo.Physop.name op; h_table = table;
        h_cols = cols; h_est = p.Pdwopt.Pplan.rows; h_actual = observed_rows d }
      :: !acc

(** Execute a PDW plan on the appliance. Returns the final client result
    (rows + layout); accounting accumulates in [t.account].

    Unless {!set_check} disabled it, the plan is first passed through the
    static analyzer's execution-soundness rules; an invalid plan raises
    {!Check.Invalid} instead of executing — the simulated substrate would
    otherwise silently run it and return wrong rows (the real engine
    rejects such plans). *)
let rec run_pplan (t : t) (p : Pdwopt.Pplan.t) : Local.rset =
  if t.check then begin
    match Check.validate_exec ~obs:t.obs ~shell:t.shell p with
    | [] -> ()
    | vs -> raise (Check.Invalid vs)
  end;
  begin_statement t;
  match p.Pdwopt.Pplan.op with
  | Pdwopt.Pplan.Return { sort; limit } ->
    let child =
      match p.Pdwopt.Pplan.children with
      | [ c ] -> exec_node t c
      | _ -> raise (Local.Exec_error "Return expects one child")
    in
    (* the gather is itself an injectable step (control-node transient);
       it is pure over [child], so a retry just recomputes the result *)
    with_recovery t @@ fun () ->
    let all = stream_rset child in
    (* streamed gather: network accounting only, no temp table *)
    (match child.dist with
     | Dms.Distprop.Single_node -> ()
     | _ ->
       let b, r = Rset.vol all in
       let step = (b *. t.hw.network_byte) +. (r *. t.hw.network_row) in
       t.account.sim_time <- t.account.sim_time +. step;
       t.account.bytes_moved <- t.account.bytes_moved +. b;
       Obs.addf t.obs "engine.return.bytes" b;
       Obs.addf t.obs "engine.return.rows" r);
    inject_point t Fault.Control_transient;
    let rset = Rset.to_local all in
    if sort = [] then
      (match limit with
       | Some n -> { rset with Local.rows = Local.take n rset.Local.rows }
       | None -> rset)
    else Local.sort_rows ~keys:sort ?limit rset
  | _ ->
    let d = exec_node t p in
    { Local.layout = d.layout; rows = stream_rows d }

and exec_node (t : t) (p : Pdwopt.Pplan.t) : dstream =
  match p.Pdwopt.Pplan.op with
  | Pdwopt.Pplan.Serial op ->
    let children = List.map (exec_node t) p.Pdwopt.Pplan.children in
    (* serial steps and moves recompute over immutable input streams, so
       re-execution after a failure is idempotent with no cleanup *)
    let d =
      Obs.with_span t.obs ("engine.op." ^ Memo.Physop.name op) @@ fun () ->
      with_recovery t (fun () -> run_serial t op children)
    in
    let d = assert_bounds t p { d with dist = p.Pdwopt.Pplan.dist } in
    harvest_op t p op d;
    d
  | Pdwopt.Pplan.Move { kind; cols } ->
    let child =
      match p.Pdwopt.Pplan.children with
      | [ c ] -> exec_node t c
      | _ -> raise (Local.Exec_error "Move expects one child")
    in
    assert_bounds t p (with_recovery t (fun () -> run_move t kind ~cols child))
  | Pdwopt.Pplan.Return _ ->
    raise (Local.Exec_error "nested Return")

(* -- graceful degradation: node loss -- *)

(** [decommission t ~node] builds a fresh [(nodes - 1)]-node appliance
    after compute node [node] (current index) died: a new shell catalog
    with the same schemas/statistics, every table reloaded and
    re-partitioned mod the surviving count (hash shards are recovered from
    the appliance's mirrored copies — the simulated substrate keeps the
    full logical contents), the account carried over plus a recovery
    charge of re-partitioning every hash-distributed table at DMS rates.
    The replan [epoch] is bumped so fault draws restart, and [live] drops
    the dead node's original id — callers key plan-cache fingerprints on
    it so stale-topology plans cannot be served. *)
(* catalog tables sorted by name, so shell reconstruction (and its
   stats_version assignment) is deterministic for shrink, grow and re-key *)
let sorted_tables (shell : Catalog.Shell_db.t) =
  List.sort
    (fun (a : Catalog.Shell_db.table) (b : Catalog.Shell_db.table) ->
       compare a.Catalog.Shell_db.schema.Catalog.Schema.name
         b.Catalog.Shell_db.schema.Catalog.Schema.name)
    (Catalog.Shell_db.tables shell)

(* the reader+network+writer pipeline rates of this appliance's hardware,
   in the shape the shared {!Dms.Cost.repartition_seconds} helper prices
   shrink, grow, and re-key moves with *)
let move_rates (hw : hw) : Dms.Cost.move_rates =
  { Dms.Cost.r_reader_byte = hw.reader_byte; r_reader_row = hw.reader_row;
    r_network_byte = hw.network_byte; r_network_row = hw.network_row;
    r_writer_byte = hw.writer_byte; r_writer_row = hw.writer_row }

let decommission (t : t) ~(node : int) : t =
  if t.nodes <= 1 then
    (* structured, not [invalid_arg]: losing the last compute node is a
       fault-plane outcome (the appliance cannot serve), and storm drivers
       map {!Fault.Exhausted} to a tally bucket instead of crashing *)
    raise
      (Fault.Exhausted
         { failure =
             { Fault.site = Fault.Node_crash; epoch = t.epoch; step = -1;
               node = 0 };
           attempts = 1 });
  if node < 0 || node >= t.nodes then
    invalid_arg "Appliance.decommission: no such node";
  (* same tables, (N-1)-node topology; iterate sorted by name so shell
     construction (and stats_version assignment) is deterministic *)
  let tables = sorted_tables t.shell in
  let shell' = Catalog.Shell_db.create ~node_count:(t.nodes - 1) in
  List.iter
    (fun (tbl : Catalog.Shell_db.table) ->
       ignore
         (Catalog.Shell_db.add_table shell' ~stats:tbl.Catalog.Shell_db.stats
            tbl.Catalog.Shell_db.schema tbl.Catalog.Shell_db.dist))
    tables;
  let t' = create ~hw:t.hw ~obs:t.obs ~pool:t.pool ~check:t.check ~engine:t.engine shell' in
  t'.fault <- t.fault;
  t'.token <- t.token;
  t'.epoch <- t.epoch + 1;
  t'.live <- List.filteri (fun i _ -> i <> node) t.live;
  (* reload user data; the re-partition of every hash-distributed table is
     the recovery work, charged at reader+network+writer rates *)
  let moved_bytes = ref 0. and moved_rows = ref 0. in
  List.iter
    (fun (tbl : Catalog.Shell_db.table) ->
       let name = tbl.Catalog.Shell_db.schema.Catalog.Schema.name in
       let key = String.lowercase_ascii name in
       match tbl.Catalog.Shell_db.dist with
       | Catalog.Distribution.Replicated ->
         (match Hashtbl.find_opt t.storage.(0) key with
          | Some rs -> load_rset t' name rs
          | None -> ())
       | Catalog.Distribution.Hash_partitioned _ ->
         let shards =
           List.filter_map (fun i -> Hashtbl.find_opt t.storage.(i) key)
             (List.init t.nodes Fun.id)
         in
         if List.exists (fun s -> Rset.count s > 0) shards
            || Hashtbl.mem t.storage.(0) key then begin
           let layout =
             match shards with s :: _ -> Rset.layout s | [] -> []
           in
           let all = Rset.concat ~layout shards in
           let b, r = Rset.vol all in
           moved_bytes := !moved_bytes +. b;
           moved_rows := !moved_rows +. r;
           load_rset t' name all
         end)
    tables;
  let recovery =
    Dms.Cost.repartition_seconds (move_rates t.hw) ~bytes:!moved_bytes
      ~rows:!moved_rows
  in
  assign_account ~dst:t'.account t.account;
  t'.account.sim_time <- t'.account.sim_time +. recovery;
  t'.account.dms_time <- t'.account.dms_time +. recovery;
  t'.account.bytes_moved <- t'.account.bytes_moved +. !moved_bytes;
  t'.account.rows_moved <- t'.account.rows_moved +. !moved_rows;
  t'.account.replans <- t'.account.replans + 1;
  if Obs.enabled t.obs then begin
    Obs.add t.obs "fault.replans" 1;
    Obs.addf t.obs "fault.recovery_seconds" recovery
  end;
  t'

(* -- elastic topology: phased grow / re-key moves (DESIGN.md §14) -- *)

(** An in-flight phased topology move: the new layout is copy-built into a
    shadow appliance ([m_target]) one table per priced, injectable step
    while [m_source] keeps serving statements against the old layout.
    {!flip_move} commits the new topology atomically; {!abort_move}
    discards the shadow and leaves the source (catalog and storage)
    bit-identical to its pre-move state — there is never a torn layout. *)
type move = {
  m_source : t;
  m_target : t;
  mutable m_pending : string list;
      (** tables still to copy, in deterministic (sorted-name) order *)
  mutable m_bytes : float;    (** bytes re-partitioned so far *)
  mutable m_rows : float;
  mutable m_seconds : float;
      (** simulated copy cost accrued, charged to the clock at the flip *)
}

(** [begin_move t ~node_count ~live ~dist_of] opens a phased move to a
    [node_count]-node topology with distribution layout [dist_of] (given
    each current table, return its target distribution). Builds the shadow
    shell and appliance at [t]'s next replan epoch; tables whose physical
    layout is unchanged transfer for free immediately (replicated copies
    are mirrored and identically keyed hash shards at an equal node count
    are shared by reference — payloads are immutable); every other table
    becomes a pending priced copy step. [t] itself is not mutated. *)
let begin_move (t : t) ~(node_count : int) ~(live : int list)
    ~(dist_of : Catalog.Shell_db.table -> Catalog.Distribution.t) : move =
  if node_count < 1 then
    invalid_arg "Appliance.begin_move: need at least one compute node";
  if List.length live <> node_count then
    invalid_arg "Appliance.begin_move: live-node list does not match node_count";
  let tables = sorted_tables t.shell in
  let shell' = Catalog.Shell_db.create ~node_count in
  List.iter
    (fun (tbl : Catalog.Shell_db.table) ->
       ignore
         (Catalog.Shell_db.add_table shell' ~stats:tbl.Catalog.Shell_db.stats
            tbl.Catalog.Shell_db.schema (dist_of tbl)))
    tables;
  let t' = create ~hw:t.hw ~obs:t.obs ~pool:t.pool ~check:t.check ~engine:t.engine shell' in
  t'.fault <- t.fault;
  t'.token <- t.token;
  t'.epoch <- t.epoch + 1;
  t'.live <- live;
  let pending =
    List.filter_map
      (fun (tbl : Catalog.Shell_db.table) ->
         let name = tbl.Catalog.Shell_db.schema.Catalog.Schema.name in
         let key = String.lowercase_ascii name in
         match tbl.Catalog.Shell_db.dist, dist_of tbl with
         | Catalog.Distribution.Replicated, Catalog.Distribution.Replicated ->
           (match Hashtbl.find_opt t.storage.(0) key with
            | Some rs -> load_rset t' name rs
            | None -> ());
           None
         | Catalog.Distribution.Hash_partitioned c0,
           Catalog.Distribution.Hash_partitioned c1
           when node_count = t.nodes && c0 = c1 ->
           for i = 0 to t.nodes - 1 do
             match Hashtbl.find_opt t.storage.(i) key with
             | Some rs -> Hashtbl.replace t'.storage.(i) key rs
             | None -> ()
           done;
           None
         | _ -> Some name)
      tables
  in
  { m_source = t; m_target = t'; m_pending = pending;
    m_bytes = 0.; m_rows = 0.; m_seconds = 0. }

(** Copy-build the next pending table into the move's shadow appliance as
    one injectable step under the source's recovery budget. All the fault
    plane's sites can fire here: a node crash escalates to the caller
    ({!Fault.Injected}, compose with {!decommission} and restart the
    move), a DMS-transfer or temp-write failure drops the half-built
    partitions and retries, stragglers inflate the step's copy time, and
    an exhausted budget raises {!Fault.Exhausted}. The copy is priced with
    the shared {!Dms.Cost.repartition_seconds} pipeline rates and accrues
    into the move (the source clock is only charged at the flip); a failed
    attempt never double-charges. *)
let copy_step (m : move) : unit =
  match m.m_pending with
  | [] -> ()
  | name :: rest ->
    let ts = m.m_source and tt = m.m_target in
    let key = String.lowercase_ascii name in
    let drop_half_built () =
      Array.iter (fun store -> Hashtbl.remove store key) tt.storage
    in
    with_recovery ts ~on_retry:drop_half_built (fun () ->
        (* node-crash decisions first, lowest index wins (mirrors
           [run_serial]'s pre-fan-out draw order) *)
        if fault_active ts then begin
          let rec first_crash node =
            if node >= ts.nodes then None
            else if Fault.fires ts.fault ~site:Fault.Node_crash ~epoch:ts.epoch
                      ~step:ts.cur_step ~node ~attempt:ts.cur_attempt
            then Some node
            else first_crash (node + 1)
          in
          match first_crash 0 with
          | Some node -> fail_at ts Fault.Node_crash node
          | None -> ()
        end;
        let tbl = Catalog.Shell_db.find_exn ts.shell name in
        let payload =
          match tbl.Catalog.Shell_db.dist with
          | Catalog.Distribution.Replicated -> Hashtbl.find_opt ts.storage.(0) key
          | Catalog.Distribution.Hash_partitioned _ ->
            let shards =
              List.filter_map (fun i -> Hashtbl.find_opt ts.storage.(i) key)
                (List.init ts.nodes Fun.id)
            in
            if List.exists (fun s -> Rset.count s > 0) shards
               || Hashtbl.mem ts.storage.(0) key
            then
              let layout =
                match shards with s :: _ -> Rset.layout s | [] -> []
              in
              Some (Rset.concat ~layout shards)
            else None
        in
        match payload with
        | None -> ()  (* table was never loaded; nothing to copy *)
        | Some all ->
          inject_point ts Fault.Dms_transfer;
          let b, r = Rset.vol all in
          let seconds =
            Dms.Cost.repartition_seconds (move_rates ts.hw) ~bytes:b ~rows:r
          in
          (* stragglers slow the copy pipeline down: the worst per-node
             factor inflates this step's accrued seconds *)
          let seconds =
            if not (fault_active ts) then seconds
            else begin
              let factor = ref 1. in
              for node = 0 to ts.nodes - 1 do
                match
                  Fault.straggle ts.fault ~epoch:ts.epoch ~step:ts.cur_step
                    ~node ~attempt:ts.cur_attempt
                with
                | Some f when f > 0. ->
                  note_injection ts Fault.Straggler;
                  if f > !factor then factor := f
                | _ -> ()
              done;
              seconds *. !factor
            end
          in
          load_rset tt name all;
          inject_point ts Fault.Temp_write;
          (* only a fully successful attempt accrues volume and cost *)
          m.m_bytes <- m.m_bytes +. b;
          m.m_rows <- m.m_rows +. r;
          m.m_seconds <- m.m_seconds +. seconds);
    m.m_pending <- rest

(** Atomically commit a fully copied move: one injectable control-node
    step (the catalog flip), a [stats_version] bump on the new shell, the
    source's account carried into the shadow appliance plus the move's
    accrued copy cost, and the new topology returned. Statements admitted
    before the flip executed against the old layout on [m_source]; the
    caller switches new statements to the returned appliance (whose bumped
    replan epoch re-keys plan-cache fingerprints — v6 carries it). *)
let flip_move (m : move) : t =
  if m.m_pending <> [] then
    invalid_arg "Appliance.flip_move: pending table copies remain";
  let ts = m.m_source and tt = m.m_target in
  (* the flip itself runs on the control node and is injectable *)
  with_recovery ts (fun () -> inject_point ts Fault.Control_transient);
  Catalog.Shell_db.touch tt.shell;
  assign_account ~dst:tt.account ts.account;
  tt.account.sim_time <- tt.account.sim_time +. m.m_seconds;
  tt.account.dms_time <- tt.account.dms_time +. m.m_seconds;
  tt.account.bytes_moved <- tt.account.bytes_moved +. m.m_bytes;
  tt.account.rows_moved <- tt.account.rows_moved +. m.m_rows;
  if Obs.enabled ts.obs then begin
    Obs.add ts.obs "topology.moves" 1;
    Obs.addf ts.obs "topology.move_seconds" m.m_seconds
  end;
  tt

(** Abandon an in-flight move: the shadow appliance's half-built
    partitions are dropped and the source is left bit-identical to its
    pre-move state (its catalog was never mutated — [stats_version],
    storage, and epoch are untouched). *)
let abort_move (m : move) : unit =
  Array.iter Hashtbl.reset m.m_target.storage;
  m.m_pending <- []

(** [recommission t ~nodes] grows the appliance to [nodes] compute nodes
    (the inverse of {!decommission}) as one complete phased move: every
    hash-distributed table is re-partitioned onto the wider topology at
    {!Dms.Cost.repartition_seconds} rates, then the catalog flips. New
    node ids continue after the highest original id ever used, so a
    re-grown appliance never aliases a decommissioned node's id in [live]
    (plan-cache fingerprints distinguish the topologies). *)
let recommission (t : t) ~(nodes : int) : t =
  if nodes <= t.nodes then
    invalid_arg "Appliance.recommission: node count must grow";
  let next = 1 + List.fold_left max (-1) t.live in
  let live = t.live @ List.init (nodes - t.nodes) (fun i -> next + i) in
  let m = begin_move t ~node_count:nodes ~live ~dist_of:(fun tbl -> tbl.Catalog.Shell_db.dist) in
  (try while m.m_pending <> [] do copy_step m done
   with e -> abort_move m; raise e);
  flip_move m

(** [redistribute t ~table ~cols] changes [table]'s distribution key to
    hash-partitioning on [cols] as one complete phased move (only that
    table is re-partitioned; everything else transfers for free). *)
let redistribute (t : t) ~(table : string) ~(cols : string list) : t =
  let tbl = Catalog.Shell_db.find_exn t.shell table in
  List.iter
    (fun c ->
       if Catalog.Schema.find_col tbl.Catalog.Shell_db.schema c = None then
         invalid_arg
           (Printf.sprintf "Appliance.redistribute: no column %s in %s" c table))
    cols;
  if cols = [] then invalid_arg "Appliance.redistribute: empty distribution key";
  let key = String.lowercase_ascii table in
  let m =
    begin_move t ~node_count:t.nodes ~live:t.live
      ~dist_of:(fun (x : Catalog.Shell_db.table) ->
          if String.lowercase_ascii x.Catalog.Shell_db.schema.Catalog.Schema.name = key
          then Catalog.Distribution.Hash_partitioned cols
          else x.Catalog.Shell_db.dist)
  in
  (try while m.m_pending <> [] do copy_step m done
   with e -> abort_move m; raise e);
  flip_move m

(** Single-node oracle: run a serial plan over the full (unpartitioned)
    tables. *)
let run_reference (t : t) (p : Serialopt.Plan.t) : Local.rset =
  let read_table name =
    let tbl = Catalog.Shell_db.find_exn t.shell name in
    match tbl.Catalog.Shell_db.dist with
    | Catalog.Distribution.Replicated -> node_table t 0 name
    | Catalog.Distribution.Hash_partitioned _ ->
      List.concat (List.init t.nodes (fun i -> node_table t i name))
  in
  Local.exec_plan ~read_table p
