(* opdw command-line interface.

   Subcommands:
     explain  - optimize a query and print the plans (logical, serial,
                parallel, DSQL)
     run      - optimize and execute on a generated TPC-H appliance
     overload - storm the appliance with concurrent statements through the
                resource governor and verify answers against oracle rows
     memo     - dump the serial MEMO (optionally its XML encoding)
     check    - run the static plan-validity analyzer over optimized plans
     analyze  - run the abstract interpreter (types, ranges, cardinality
                bounds, contradictions) over optimized plans
     calibrate - run the feedback loop once (execute, harvest, fold the
                observations back into the catalog) and report the model
                error before/after
     planstore - drive queries through the last-known-good plan store and
                dump its state (LKG plans, quarantines, fallbacks)
     topology - serve a skewed statement storm through the elastic driver,
                run the re-distribution advisor over the harvested workload
                and (apply) execute grow / re-key moves online, always
                serving oracle rows
     queries  - list the bundled workload queries

   All subcommands operate against the TPC-H shell database; the query may
   be given inline, via --query ID (e.g. Q20), or from a file. *)

open Cmdliner

let setup ?engine ~nodes ~sf () =
  Opdw.Workload.tpch ~node_count:nodes ~sf ?engine ()

let resolve_sql query_id sql_arg file =
  match query_id, sql_arg, file with
  | Some id, _, _ ->
    (match Tpch.Queries.find id with
     | Some q -> q.Tpch.Queries.sql
     | None ->
       Printf.eprintf "unknown query id %s (try: opdw_cli queries)\n" id;
       exit 1)
  | None, Some sql, _ -> sql
  | None, None, Some f ->
    let ic = open_in f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None, None, None ->
    prerr_endline "give a query: positional SQL, --query ID, or --file F";
    exit 1

(* minimal JSON string escaping for --json output modes *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 32 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* -- observability -- *)

let obs_src = Logs.Src.create "opdw.obs" ~doc:"opdw observability event stream"

(* Forward Obs sink events to a [Logs] debug source, so `--debug` streams
   span openings/closings and metric updates as they happen. *)
let logs_sink (ev : Obs.event) =
  let msg =
    match ev with
    | Obs.Span_open path -> Printf.sprintf "span open  %s" (String.concat "/" path)
    | Obs.Span_close (path, dt) ->
      Printf.sprintf "span close %s (%.6fs)" (String.concat "/" path) dt
    | Obs.Metric (path, k, v) ->
      Printf.sprintf "metric     %s %s=%g" (String.concat "/" path) k v
  in
  Logs.debug ~src:obs_src (fun m -> m "%s" msg)

let make_obs ~profile ~debug =
  if debug then begin
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level ~all:true (Some Logs.Debug);
    Obs.create ~sink:logs_sink ()
  end
  else if profile then Obs.create ()
  else Obs.null

let print_profile obs =
  if Obs.enabled obs then begin
    print_newline ();
    print_endline "== profile ==";
    print_string (Obs.report obs)
  end

(* -- common options -- *)

let nodes_t =
  Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of compute nodes.")

let sf_t =
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc:"TPC-H scale factor (1.0 = full size).")

let query_t =
  Arg.(value & opt (some string) None
       & info [ "q"; "query" ] ~docv:"ID" ~doc:"Bundled workload query id (e.g. Q20, P1).")

let file_t =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Read SQL from a file.")

let sql_t =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"SQL text.")

let seed_t =
  Arg.(value & flag & info [ "seed-collocated" ] ~doc:"Seed the MEMO with collocated join orders (paper sec. 3.1).")

let budget_t =
  Arg.(value & opt int 20000
       & info [ "budget" ] ~docv:"TASKS" ~doc:"Serial exploration task budget (timeout).")

let jobs_t =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains used both to compile (plan enumeration over the MEMO's \
               dependency levels) and to execute per-node shards of each DSQL \
               step in parallel. The chosen plan and the simulated times are \
               bit-identical at any N. 0 = the machine's recommended domain \
               count.")

let no_cache_t =
  Arg.(value & flag
       & info [ "no-plan-cache" ]
         ~doc:"Disable the plan cache (every query pays full serial + PDW optimization).")

let make_cache no_cache = if no_cache then None else Some (Opdw.cache ())

let check_t =
  Arg.(value
       & vflag true
           [ (true,
              info [ "check" ]
                ~doc:"Run the static plan-validity analyzer over the chosen plan \
                      and its DSQL steps (the default); an invalid plan aborts \
                      with the violated rules.");
             (false,
              info [ "no-check" ]
                ~doc:"Skip the static plan-validity analyzer.") ])

let assert_bounds_t =
  Arg.(value & flag
       & info [ "assert-bounds" ]
         ~doc:"Derive static per-operator cardinality bounds [lo, hi] with the \
               abstract interpreter before executing and check every executed \
               operator's observed row count against them; exits nonzero on \
               any violation (a soundness bug in the analyzer or the engine).")

let chaos_t =
  Arg.(value & flag
       & info [ "chaos" ]
         ~doc:"Execute under deterministic fault injection: transient failures are \
               retried with simulated backoff, node losses re-optimize on the \
               survivors. Result rows are identical to the fault-free run unless \
               a retry budget is exhausted.")

let fault_seed_t =
  Arg.(value & opt int 1
       & info [ "fault-seed" ] ~docv:"SEED"
         ~doc:"Seed for the fault-injection draws (chaos mode). A fixed seed \
               reproduces the exact fault pattern and simulated times at any \
               $(b,--jobs).")

let fault_rate_t =
  Arg.(value & opt float 0.05
       & info [ "fault-rate" ] ~docv:"P"
         ~doc:"Per-site fault probability per step attempt (chaos mode); node \
               crashes fire at P/8.")

let elastic_t =
  Arg.(value & flag
       & info [ "elastic" ]
         ~doc:"Execute through the elastic topology driver: statements are \
               served chaos-style (node crashes decommission + replan on the \
               survivors), every plan is keyed under the current topology \
               epoch, and the workload is harvested for the re-distribution \
               advisor (see the $(b,topology) subcommand). Faults fire only \
               with $(b,--chaos) or $(b,--fault-schedule).")

let fault_schedule_t =
  Arg.(value & opt (some string) None
       & info [ "fault-schedule" ] ~docv:"FILE"
         ~doc:"Inject exactly the faults listed in FILE (one per line: \
               site=<name> step=<k> [node=] [attempt=] [epoch=] [factor=]); \
               implies $(b,--chaos) and overrides $(b,--fault-seed)/$(b,--fault-rate).")

(* -- feedback options -- *)

let feedback_t =
  Arg.(value & flag
       & info [ "feedback" ]
         ~doc:"Execute through the feedback driver: harvest observed per-operator \
               cardinalities and DMS volumes into a feedback log, record each \
               plan's observed cost in the last-known-good plan store, and fall \
               back to the LKG plan automatically when a recompiled plan's \
               fingerprint is quarantined after repeated regressions.")

let feedback_log_t =
  Arg.(value & opt (some string) None
       & info [ "feedback-log" ] ~docv:"FILE"
         ~doc:"Persist the feedback log: loaded before the run when FILE exists \
               (bit-exact round-trip), saved back after. Implies $(b,--feedback) \
               for $(b,run).")

(* short display digest of a (long, canonical) plan-cache fingerprint *)
let fp_digest fp = String.sub (Digest.to_hex (Digest.string fp)) 0 12

let geomean = function
  | [] -> 1.
  | xs ->
    exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

(* -- governor options -- *)

let deadline_ms_t =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Wall-clock statement deadline in milliseconds. Optimization past \
               the deadline degrades anytime-style (best plan found so far, or \
               the baseline plan), execution past it returns a structured \
               timeout; degraded plans still pass the validity analyzer and \
               are never cached.")

let sim_deadline_ms_t =
  Arg.(value & opt (some float) None
       & info [ "sim-deadline-ms" ] ~docv:"MS"
         ~doc:"Simulated-clock execution deadline in milliseconds; deterministic \
               at any $(b,--jobs) (the simulated clock is).")

let memo_budget_t =
  Arg.(value & opt (some int) None
       & info [ "memo-budget" ] ~docv:"GROUPS"
         ~doc:"Stop serial exploration once the MEMO reaches GROUPS groups and \
               return the anytime best-so-far plan (deterministic degradation \
               pressure, unlike wall-clock deadlines).")

let max_concurrent_t =
  Arg.(value & opt int 4
       & info [ "max-concurrent" ] ~docv:"N"
         ~doc:"Admission gate width: statements optimizing/executing at once.")

let queue_limit_t =
  Arg.(value & opt int 16
       & info [ "queue-limit" ] ~docv:"N"
         ~doc:"FIFO admission queue depth; a statement arriving beyond it is \
               rejected with a structured answer, not an error.")

let breaker_t =
  Arg.(value & opt int 3
       & info [ "breaker" ] ~docv:"K"
         ~doc:"Circuit breaker: K consecutive hard failures of one statement \
               fingerprint shed it for a cooldown (charged to the simulated \
               clock). 0 disables the breaker.")

let limits_of ~deadline_ms ~sim_deadline_ms ~memo_budget =
  { Governor.deadline = Option.map (fun ms -> ms /. 1000.) deadline_ms;
    sim_deadline = Option.map (fun ms -> ms /. 1000.) sim_deadline_ms;
    max_memo_groups = memo_budget }

let engine_t =
  Arg.(value
       & opt (enum [ ("row", Engine.Rset.Row); ("columnar", Engine.Rset.Columnar) ])
           Engine.Rset.Row
       & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Per-node executor: $(b,row) (the semantics oracle, one boxed \
               value array per row) or $(b,columnar) (typed column batches \
               with selection vectors). Result rows and the simulated clock \
               are identical; only wall-clock speed differs.")

let compare_engines_t =
  Arg.(value & flag
       & info [ "compare-engines" ]
         ~doc:"After the run, execute the same statement on fresh appliances \
               with both engines and fail (exit 1) unless the result rows and \
               the simulated response time agree exactly.")

let profile_t =
  Arg.(value & flag
       & info [ "profile" ]
         ~doc:"Collect per-stage timings and counters and print the profile report.")

let debug_t =
  Arg.(value & flag
       & info [ "debug" ]
         ~doc:"Stream observability events through the logs library at debug level \
               (implies $(b,--profile)).")

let options_of ~nodes ~seed ~budget =
  { (Opdw.default_options ~node_count:nodes) with
    Opdw.seed_collocated = seed;
    Opdw.serial =
      { Serialopt.Optimizer.default_options with Serialopt.Optimizer.task_budget = budget } }

(* -- explain -- *)

let explain nodes sf query sql file seed budget jobs no_cache check verbose profile
    debug =
  let w = setup ~nodes ~sf () in
  let text = resolve_sql query sql file in
  let options = options_of ~nodes ~seed ~budget in
  let obs = make_obs ~profile ~debug in
  let r =
    Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
    @@ fun pool ->
    Opdw.optimize ~obs ~options ?cache:(make_cache no_cache) ~check ~pool
      w.Opdw.Workload.shell text
  in
  let reg = r.Opdw.memo.Memo.reg in
  if verbose then begin
    print_endline "== normalized logical tree ==";
    print_endline (Algebra.Relop.to_string r.Opdw.algebrized.Algebra.Algebrizer.reg r.Opdw.normalized);
    print_endline "\n== best serial plan ==";
    (match r.Opdw.serial.Serialopt.Optimizer.best with
     | Some p -> print_endline (Serialopt.Plan.to_string reg p)
     | None -> print_endline "(none)");
    print_newline ()
  end;
  print_endline (Opdw.explain r);
  (match r.Opdw.baseline_plan with
   | Some b ->
     Printf.printf "\nbaseline (parallelized serial) DMS cost: %.4gs; PDW: %.4gs\n"
       b.Pdwopt.Pplan.dms_cost (Opdw.plan r).Pdwopt.Pplan.dms_cost
   | None -> ());
  print_profile obs

let explain_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print the logical tree and serial plan.")
  in
  Cmd.v (Cmd.info "explain" ~doc:"Optimize a query and print its plans.")
    Term.(const explain $ nodes_t $ sf_t $ query_t $ sql_t $ file_t $ seed_t $ budget_t
          $ jobs_t $ no_cache_t $ check_t $ verbose $ profile_t $ debug_t)

(* -- run -- *)

(* --compare-engines: one clean (governor- and chaos-free) execution per
   engine on fresh appliances; the qcheck oracle property in the test suite
   is the exhaustive version of this spot check *)
let compare_engines_run ~nodes ~sf ~options ~check ~pool text =
  let once engine =
    let w = setup ~engine ~nodes ~sf () in
    let app = w.Opdw.Workload.app in
    Engine.Appliance.set_pool app pool;
    Engine.Appliance.set_check app check;
    let r = Opdw.optimize ~options ~check w.Opdw.Workload.shell text in
    let res = Opdw.run app r in
    (Engine.Local.canonical res, app.Engine.Appliance.account.Engine.Appliance.sim_time)
  in
  let rows_r, sim_r = once Engine.Rset.Row in
  let rows_c, sim_c = once Engine.Rset.Columnar in
  let rows_ok = rows_r = rows_c and sim_ok = sim_r = sim_c in
  Printf.printf "engine comparison: rows %s (%d vs %d), simulated time %s (%.6gs vs %.6gs)\n"
    (if rows_ok then "identical" else "DIFFER")
    (List.length rows_r) (List.length rows_c)
    (if sim_ok then "identical" else "DIFFERS") sim_r sim_c;
  if not (rows_ok && sim_ok) then exit 1

let run nodes sf query sql file seed budget limit jobs no_cache check assert_bounds
    repeat chaos elastic fault_seed fault_rate fault_schedule feedback feedback_log
    deadline_ms sim_deadline_ms memo_budget max_concurrent queue_limit breaker
    engine compare_engines profile debug =
  let w = setup ~engine ~nodes ~sf () in
  let text = resolve_sql query sql file in
  let limits = limits_of ~deadline_ms ~sim_deadline_ms ~memo_budget in
  let options = { (options_of ~nodes ~seed ~budget) with Opdw.governor = limits } in
  let obs = make_obs ~profile ~debug in
  let cache = make_cache no_cache in
  (* the bracket shuts the pool down even if optimization or execution
     raises, so an error mid-run cannot leak live domains *)
  Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
  @@ fun pool ->
  let app = w.Opdw.Workload.app in
  Engine.Appliance.set_pool app pool;
  Engine.Appliance.set_check app check;
  if assert_bounds then begin
    (* pre-compile (through the same cache, so the governed run below hits)
       to derive the static bounds table before any execution *)
    let r0 = Opdw.optimize ~options ?cache ~pool w.Opdw.Workload.shell text in
    let actx =
      Analysis.context ~shell:w.Opdw.Workload.shell ~reg:r0.Opdw.memo.Memo.reg
        ~nodes:options.Opdw.pdw.Pdwopt.Enumerate.nodes
    in
    Engine.Appliance.set_bounds app
      (Some (Analysis.group_bounds actx (Opdw.plan r0)))
  end;
  let chaos = chaos || fault_schedule <> None in
  let feedback = feedback || feedback_log <> None in
  if feedback && (chaos || elastic) then begin
    prerr_endline "--feedback and --chaos/--elastic are mutually exclusive";
    exit 1
  end;
  (* the feedback driver and its last outcome, kept for the summary below *)
  let fb_info = ref None in
  (* the elastic driver, kept for the topology summary line below *)
  let el_info = ref None in
  let r, res, app =
    if feedback then begin
      let log =
        match feedback_log with
        | Some f when Sys.file_exists f -> Opdw.Feedback.Log.load f
        | _ -> Opdw.Feedback.Log.create ()
      in
      let fb =
        Opdw.Feedback.create ?cache ~options ~check ~log w.Opdw.Workload.shell app
      in
      let once () = Opdw.Feedback.run ~obs fb text in
      let oc = ref (once ()) in
      for _ = 2 to max 1 repeat do oc := once () done;
      (match feedback_log with
       | Some f -> Opdw.Feedback.Log.save (Opdw.Feedback.log fb) f
       | None -> ());
      fb_info := Some (fb, !oc);
      ((!oc).Opdw.Feedback.res, (!oc).Opdw.Feedback.rows, app)
    end
    else if elastic then begin
      (* the elastic driver subsumes chaos (crash -> decommission + replan)
         and additionally keys every plan under the topology epoch and
         harvests the workload for the re-distribution advisor *)
      let fault =
        match fault_schedule with
        | Some f -> Fault.load_schedule f
        | None ->
          Fault.seeded ~seed:fault_seed ~rate:(if chaos then fault_rate else 0.) ()
      in
      let el = Topology.Elastic.create ?cache ~options ~fault w.Opdw.Workload.shell app in
      let once () =
        Engine.Appliance.reset_account (Topology.Elastic.app el);
        Topology.Elastic.run ~obs el text
      in
      let rr = ref (once ()) in
      for _ = 2 to max 1 repeat do rr := once () done;
      el_info := Some el;
      let r, res = !rr in
      (r, res, Topology.Elastic.app el)
    end
    else if chaos then begin
      let fault =
        match fault_schedule with
        | Some f -> Fault.load_schedule f
        | None -> Fault.seeded ~seed:fault_seed ~rate:fault_rate ()
      in
      let ctx = Opdw.Chaos.create ?cache ~options ~fault w.Opdw.Workload.shell app in
      let once () =
        Engine.Appliance.reset_account (Opdw.Chaos.app ctx);
        Opdw.Chaos.run ~obs ctx text
      in
      let rr = ref (once ()) in
      for _ = 2 to max 1 repeat do rr := once () done;
      let r, res = !rr in
      (r, res, Opdw.Chaos.app ctx)
    end
    else begin
      (* every non-chaos statement goes through the resource governor:
         admission gate, deadline token, degradation ladder, breaker *)
      let gov =
        Opdw.Governed.create ?cache ~options ~check ~max_concurrent ~queue_limit
          ~breaker_threshold:breaker w.Opdw.Workload.shell app
      in
      let once () =
        (* the shared reset path: account (sim clock + fault.* tallies)
           plus gate/breaker counters, so --repeat rounds report
           per-iteration numbers *)
        Opdw.Governed.reset gov;
        match Opdw.Governed.run ~obs gov text with
        | Opdw.Governed.Returned (r, res) -> (r, res)
        | oc ->
          Printf.eprintf "statement not executed: %s\n"
            (Opdw.Governed.outcome_to_string oc);
          exit 1
      in
      (* --repeat: re-optimize (through the cache) and re-execute; the extra
         rounds exercise plan-cache hits and the multicore appliance *)
      let rr = ref (once ()) in
      for _ = 2 to max 1 repeat do rr := once () done;
      let r, res = !rr in
      (r, res, app)
    end
  in
  let names = List.map fst (Opdw.output_columns r) in
  print_endline (String.concat " | " names);
  List.iteri
    (fun i row ->
       if i < limit then
         print_endline
           (String.concat " | "
              (List.map Catalog.Value.to_string (Array.to_list row))))
    res.Engine.Local.rows;
  let total = List.length res.Engine.Local.rows in
  if total > limit then Printf.printf "... (%d rows total)\n" total;
  (match r.Opdw.degraded with
   | Some d ->
     Printf.printf "plan degraded: %s (governor pressure; plan still check-valid)\n"
       (Opdw.degradation_to_string d)
   | None -> ());
  let a = app.Engine.Appliance.account in
  Printf.printf
    "\n%d rows; %d DMS steps; %.0f bytes moved; simulated response time %.4gs (DMS %.4gs)\n"
    total a.Engine.Appliance.moves a.Engine.Appliance.bytes_moved
    a.Engine.Appliance.sim_time a.Engine.Appliance.dms_time;
  if chaos then begin
    Printf.printf
      "chaos: %d faults injected; %d retries (%.4gs backoff); %d steps recovered; \
       %d replans; %d/%d nodes alive\n"
      a.Engine.Appliance.injected a.Engine.Appliance.retries
      a.Engine.Appliance.backoff_time a.Engine.Appliance.recovered
      a.Engine.Appliance.replans app.Engine.Appliance.nodes nodes;
    match Obs.counters_prefixed obs "fault." with
    | [] -> ()
    | cs ->
      List.iter (fun (k, v) -> Printf.printf "  %-28s %.6g\n" k v) cs
  end;
  (match !el_info with
   | Some el ->
     Printf.printf
       "elastic: topology epoch %d; %d/%d nodes alive; %d workload record(s) harvested\n"
       (Topology.Elastic.epoch el) (Topology.Elastic.nodes el) nodes
       (Opdw.Feedback.Log.length (Topology.Elastic.log el))
   | None -> ());
  (match !fb_info with
   | Some (fb, oc) ->
     let s = Opdw.Feedback.store fb in
     Printf.printf
       "feedback: %d log record(s); model error %.4g; outcome %s%s; \
        %d regression(s), %d fallback(s)\n"
       (Opdw.Feedback.Log.length (Opdw.Feedback.log fb))
       (Opdw.Feedback.model_error r ~dms_time:oc.Opdw.Feedback.observed_dms)
       (Opdw.Feedback.Store.outcome_name oc.Opdw.Feedback.store_outcome)
       (if oc.Opdw.Feedback.fellback then " (served LKG fallback)" else "")
       (Opdw.Feedback.Store.regressions s) (Opdw.Feedback.Store.fallbacks s)
   | None -> ());
  if repeat > 1 then
    Printf.printf "(%d rounds; execution used %d domains; plan cache %s)\n" repeat
      (Par.jobs pool) (if no_cache then "off" else "on");
  if assert_bounds then begin
    let v = app.Engine.Appliance.bound_violations in
    Printf.printf "assert-bounds: %d operator(s) outside static bounds\n" v;
    if v > 0 then exit 1
  end;
  if compare_engines then
    compare_engines_run ~nodes ~sf ~options:(options_of ~nodes ~seed ~budget)
      ~check ~pool text;
  (* the plan-cache stats snapshot rides along with --profile/--debug *)
  if profile || debug then begin
    let pr c =
      Printf.printf "plan cache: %s\n"
        (Opdw.Plancache.stats_to_string (Opdw.Plancache.stats c))
    in
    match !fb_info, cache with
    | Some (fb, _), _ -> pr (Opdw.Feedback.plan_cache fb)
    | None, Some c -> pr c
    | None, None -> ()
  end;
  print_profile obs

let run_cmd =
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"ROWS" ~doc:"Max rows to print.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"K"
           ~doc:"Optimize-and-execute the query K times (rounds after the first hit \
                 the plan cache unless $(b,--no-plan-cache)).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a query on a generated TPC-H appliance.")
    Term.(const run $ nodes_t $ sf_t $ query_t $ sql_t $ file_t $ seed_t $ budget_t $ limit
          $ jobs_t $ no_cache_t $ check_t $ assert_bounds_t $ repeat $ chaos_t
          $ elastic_t $ fault_seed_t $ fault_rate_t $ fault_schedule_t $ feedback_t
          $ feedback_log_t $ deadline_ms_t $ sim_deadline_ms_t $ memo_budget_t
          $ max_concurrent_t $ queue_limit_t $ breaker_t $ engine_t
          $ compare_engines_t $ profile_t $ debug_t)

(* -- overload -- *)

(* Render a result set order-insensitively: the bundled queries end in
   Sort/GroupBy whose inter-run order is deterministic, but oracle
   comparison should not depend on it anyway. *)
let render_rows (res : Engine.Local.rset) =
  res.Engine.Local.rows
  |> List.map (fun row ->
         String.concat "|" (List.map Catalog.Value.to_string (Array.to_list row)))
  |> List.sort compare
  |> String.concat "\n"

let overload nodes sf query statements jobs deadline_ms sim_deadline_ms memo_budget
    max_concurrent queue_limit breaker expect_pressure =
  let w = setup ~nodes ~sf () in
  let app = w.Opdw.Workload.app in
  let plain = options_of ~nodes ~seed:false ~budget:20000 in
  let limits = limits_of ~deadline_ms ~sim_deadline_ms ~memo_budget in
  let options = { plain with Opdw.governor = limits } in
  (* statement mix: cycle the bundled workload queries (or just --query ID) *)
  let bundle =
    match query with
    | Some id ->
      (match Tpch.Queries.find id with
       | Some q -> [ q ]
       | None ->
         Printf.eprintf "unknown query id %s (try: opdw_cli queries)\n" id;
         exit 1)
    | None -> Tpch.Queries.all
  in
  let stmts =
    Array.init (max 1 statements) (fun i ->
        let q = List.nth bundle (i mod List.length bundle) in
        (q.Tpch.Queries.id, q.Tpch.Queries.sql))
  in
  (* Oracle pass: each distinct query compiled at full budget, no governor,
     fault-free, sequentially — the rows every governed answer must match. *)
  let oracle = Hashtbl.create 16 in
  Array.iter
    (fun (id, sql) ->
       if not (Hashtbl.mem oracle id) then begin
         let r = Opdw.optimize ~options:plain w.Opdw.Workload.shell sql in
         Engine.Appliance.reset_account app;
         Hashtbl.add oracle id (render_rows (Opdw.run app r))
       end)
    stmts;
  Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
  @@ fun pool ->
  Engine.Appliance.set_pool app pool;
  let gov =
    Opdw.Governed.create ~cache:(Opdw.cache ()) ~options ~check:true
      ~max_concurrent ~queue_limit ~breaker_threshold:breaker
      w.Opdw.Workload.shell app
  in
  Opdw.Governed.reset gov;
  (* The storm: every statement races through the one governed entry point.
     Par's caller-participation pool handles the nested fan-out (statement
     level here, appliance shard level inside execution) without deadlock;
     gate waiters block on a condition, not a pool slot. *)
  let outcomes =
    Par.parallel_map pool (fun (id, sql) -> (id, Opdw.Governed.run gov sql)) stmts
  in
  let returned = ref 0 and degraded = ref 0 and rejected = ref 0 and shed = ref 0 in
  let timed_out = ref 0 and exhausted = ref 0 and invalid = ref 0 and wrong = ref 0 in
  Array.iter
    (fun (id, oc) ->
       match oc with
       | Opdw.Governed.Returned (r, res) ->
         incr returned;
         if r.Opdw.degraded <> None then incr degraded;
         if render_rows res <> Hashtbl.find oracle id then begin
           incr wrong;
           Printf.eprintf "WRONG ROWS for %s%s\n" id
             (match r.Opdw.degraded with
              | Some d -> Printf.sprintf " (degraded: %s)" (Opdw.degradation_to_string d)
              | None -> "")
         end
       | Opdw.Governed.Rejected _ -> incr rejected
       | Opdw.Governed.Shed _ -> incr shed
       | Opdw.Governed.Timed_out _ -> incr timed_out
       | Opdw.Governed.Exhausted _ -> incr exhausted
       | Opdw.Governed.Invalid msg ->
         incr invalid;
         Printf.eprintf "INVALID plan for %s: %s\n" id msg)
    outcomes;
  let gs = Governor.Gate.stats (Opdw.Governed.gate gov) in
  let bs = Governor.Breaker.stats (Opdw.Governed.breaker gov) in
  Printf.printf
    "%d statements: %d returned (%d degraded), %d rejected, %d shed, %d timed out, \
     %d exhausted, %d invalid, %d wrong-row\n"
    (Array.length stmts) !returned !degraded !rejected !shed !timed_out !exhausted
    !invalid !wrong;
  Printf.printf
    "gate: %d admitted, %d queued, %d rejected, peak %d running; \
     breaker: %d trips, %d shed, %d probes\n"
    gs.Governor.Gate.admitted gs.Governor.Gate.queued_total gs.Governor.Gate.rejected
    gs.Governor.Gate.peak_running bs.Governor.Breaker.trips bs.Governor.Breaker.shed
    bs.Governor.Breaker.probes;
  if !wrong > 0 || !invalid > 0 then exit 1;
  if expect_pressure && !degraded + !rejected + !shed + !timed_out + !exhausted = 0
  then begin
    prerr_endline "expected governor pressure but every statement ran at full fidelity";
    exit 1
  end

let overload_cmd =
  let statements_t =
    Arg.(value & opt int 32
         & info [ "statements" ] ~docv:"N"
           ~doc:"Number of concurrent statements to throw at the appliance.")
  in
  let expect_pressure_t =
    Arg.(value & flag
         & info [ "expect-pressure" ]
           ~doc:"Exit nonzero unless at least one statement was degraded, rejected, \
                 shed, timed out or exhausted (smoke-tests that the governor \
                 actually engaged).")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:"Storm the appliance with concurrent statements through the resource \
             governor; every answered statement must return oracle rows.")
    Term.(const overload $ nodes_t $ sf_t $ query_t $ statements_t $ jobs_t
          $ deadline_ms_t $ sim_deadline_ms_t $ memo_budget_t $ max_concurrent_t
          $ queue_limit_t $ breaker_t $ expect_pressure_t)

(* -- memo -- *)

let memo nodes sf query sql file as_xml =
  let w = setup ~nodes ~sf () in
  let text = resolve_sql query sql file in
  let r = Opdw.optimize w.Opdw.Workload.shell text in
  if as_xml then
    print_string (match r.Opdw.memo_xml with Some x -> x | None -> "")
  else
    print_endline (Memo.to_string r.Opdw.memo)

let memo_cmd =
  let as_xml = Arg.(value & flag & info [ "xml" ] ~doc:"Print the XML interchange encoding.") in
  Cmd.v (Cmd.info "memo" ~doc:"Dump the explored serial MEMO.")
    Term.(const memo $ nodes_t $ sf_t $ query_t $ sql_t $ file_t $ as_xml)

(* -- check -- *)

let workload_targets ~all ~query ~sql ~file =
  if all then
    List.map (fun q -> (q.Tpch.Queries.id, q.Tpch.Queries.sql)) Tpch.Queries.all
  else
    [ ((match query with Some id -> id | None -> "query"),
       resolve_sql query sql file) ]

let check_queries nodes sf all query sql file seed budget json =
  let w = setup ~nodes ~sf () in
  let options = options_of ~nodes ~seed ~budget in
  let targets = workload_targets ~all ~query ~sql ~file in
  let failed = ref 0 in
  let reports =
    List.map
      (fun (id, text) ->
         (* optimize without the built-in gate, then validate explicitly so a
            violation is reported instead of raised *)
         let r = Opdw.optimize ~options ~check:false w.Opdw.Workload.shell text in
         let plan = Opdw.plan r in
         let cost =
           { Check.nodes = options.Opdw.pdw.Pdwopt.Enumerate.nodes;
             lambdas = options.Opdw.pdw.Pdwopt.Enumerate.lambdas;
             reg = r.Opdw.memo.Memo.reg }
         in
         let vs =
           Check.validate ~cost ~dsql:r.Opdw.dsql ~shell:w.Opdw.Workload.shell plan
         in
         if vs <> [] then incr failed;
         (id, r, plan, vs))
      targets
  in
  if json then begin
    (* machine-readable report: one object per query, each violation with
       its rule id, message and offending subtree rendering *)
    let vio (v : Check.violation) =
      Printf.sprintf "{\"rule\": \"%s\", \"message\": \"%s\", \"subtree\": \"%s\"}"
        (json_escape v.Check.rule) (json_escape v.Check.message)
        (json_escape v.Check.subtree)
    in
    print_endline
      ("["
       ^ String.concat ","
           (List.map
              (fun (id, _, _, vs) ->
                 Printf.sprintf "\n  {\"query\": \"%s\", \"valid\": %b, \"violations\": [%s]}"
                   (json_escape id) (vs = [])
                   (String.concat ", " (List.map vio vs)))
              reports)
       ^ "\n]")
  end
  else begin
    List.iter
      (fun (id, r, plan, vs) ->
         match vs with
         | [] ->
           Printf.printf "%-6s ok  (%d plan nodes, %d movements, %d DSQL steps)\n"
             id (Pdwopt.Pplan.size plan) (Pdwopt.Pplan.move_count plan)
             (Dsql.Generate.step_count r.Opdw.dsql)
         | vs ->
           Printf.printf "%-6s INVALID (%d violations)\n%s\n" id (List.length vs)
             (Check.to_string vs))
      reports;
    let n = List.length targets in
    Printf.printf "%d/%d plans valid (%d rules)\n" (n - !failed) n
      (List.length Check.rules)
  end;
  if !failed > 0 then exit 1

let all_t =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Process every bundled workload query.")

let json_t =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the static plan-validity analyzer (distribution, movement, \
             cost, type, bounds, and DSQL invariants) over optimized plans. \
             Exits 0 when every plan validates clean, 1 when any rule is \
             violated.")
    Term.(const check_queries $ nodes_t $ sf_t $ all_t $ query_t $ sql_t $ file_t
          $ seed_t $ budget_t $ json_t)

(* -- analyze -- *)

let analyze nodes sf all query sql file seed budget json =
  let w = setup ~nodes ~sf () in
  let options = options_of ~nodes ~seed ~budget in
  let targets = workload_targets ~all ~query ~sql ~file in
  let flagged = ref 0 in
  let reports =
    List.map
      (fun (id, text) ->
         let r = Opdw.optimize ~options w.Opdw.Workload.shell text in
         let plan = Opdw.plan r in
         let actx =
           Analysis.context ~shell:w.Opdw.Workload.shell
             ~reg:r.Opdw.memo.Memo.reg
             ~nodes:options.Opdw.pdw.Pdwopt.Enumerate.nodes
         in
         let bad =
           List.exists
             (fun ((_ : Pdwopt.Pplan.t), (i : Analysis.node_info)) ->
                i.Analysis.contradiction <> None || i.Analysis.type_errors <> [])
             (Analysis.annotate actx plan)
         in
         if bad then incr flagged;
         (id, bad, actx, plan))
      targets
  in
  if json then
    print_endline
      ("["
       ^ String.concat ","
           (List.map
              (fun (id, bad, actx, plan) ->
                 Printf.sprintf "\n  {\"query\": \"%s\", \"clean\": %b, \"nodes\": %s}"
                   (json_escape id) (not bad) (Analysis.render_json actx plan))
              reports)
       ^ "\n]")
  else begin
    List.iter
      (fun (id, bad, actx, plan) ->
         Printf.printf "== %s%s ==\n%s\n" id (if bad then " FLAGGED" else "")
           (Analysis.render actx plan))
      reports;
    Printf.printf "%d/%d plans clean\n" (List.length targets - !flagged)
      (List.length targets)
  end;
  if !flagged > 0 then exit 1

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the abstract-interpretation analyzer over optimized plans: \
             per-node static cardinality bounds [lo, hi], per-column value \
             ranges, type errors, and contradictions. Exits 0 when every \
             plan is clean, 1 when any node is flagged.")
    Term.(const analyze $ nodes_t $ sf_t $ all_t $ query_t $ sql_t $ file_t
          $ seed_t $ budget_t $ json_t)

(* -- calibrate -- *)

(* calibrate / planstore default to the whole bundled workload when no
   explicit query is given — feedback calibration is a workload-level
   operation, unlike the single-statement subcommands *)
let feedback_targets ~all ~query ~sql ~file =
  if all || (query = None && sql = None && file = None) then
    List.map (fun q -> (q.Tpch.Queries.id, q.Tpch.Queries.sql)) Tpch.Queries.all
  else workload_targets ~all ~query ~sql ~file

let calibrate nodes sf all query sql file seed budget jobs feedback_log
    expect_improvement json =
  let w = setup ~nodes ~sf () in
  let shell = w.Opdw.Workload.shell and app = w.Opdw.Workload.app in
  let options = options_of ~nodes ~seed ~budget in
  let targets = feedback_targets ~all ~query ~sql ~file in
  Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
  @@ fun pool ->
  Engine.Appliance.set_pool app pool;
  let log =
    match feedback_log with
    | Some f when Sys.file_exists f -> Opdw.Feedback.Log.load f
    | _ -> Opdw.Feedback.Log.create ()
  in
  let fb = Opdw.Feedback.create ~options ~log shell app in
  let violations = ref 0 in
  (* one measured execution through the feedback driver; with [bounds] the
     abstract interpreter's static cardinality bounds are derived first and
     every executed operator is checked against them (the R11 soundness
     gate for the refined statistics) *)
  let measure ~bounds (id, text) =
    if bounds then begin
      let r0 =
        Opdw.optimize ~options:(Opdw.Feedback.options fb)
          ~cache:(Opdw.Feedback.plan_cache fb)
          ~calibration:(Opdw.Feedback.epoch fb) shell text
      in
      let actx =
        Analysis.context ~shell ~reg:r0.Opdw.memo.Memo.reg
          ~nodes:options.Opdw.pdw.Pdwopt.Enumerate.nodes
      in
      Engine.Appliance.set_bounds app
        (Some (Analysis.group_bounds actx (Opdw.plan r0)))
    end;
    let oc = Opdw.Feedback.run fb text in
    if bounds then begin
      violations := !violations + app.Engine.Appliance.bound_violations;
      Engine.Appliance.set_bounds app None
    end;
    (id,
     Opdw.Feedback.model_error oc.Opdw.Feedback.res
       ~dms_time:oc.Opdw.Feedback.observed_dms)
  in
  (* pass 1: harvest observations and per-query model error under the seed
     statistics; calibrate; pass 2: re-measure under the refined catalog *)
  let before = List.map (measure ~bounds:false) targets in
  let cal = Opdw.Feedback.calibrate fb in
  let after = List.map (measure ~bounds:true) targets in
  (match feedback_log with
   | Some f -> Opdw.Feedback.Log.save (Opdw.Feedback.log fb) f
   | None -> ());
  let g_before = geomean (List.map snd before)
  and g_after = geomean (List.map snd after) in
  let fit_line (f : Opdw.Feedback.Lambda.fit) =
    Printf.sprintf "%s=%.4g (err %.3g, %d samples)"
      (Dms.Calibrate.component_name f.Opdw.Feedback.Lambda.f_component)
      f.Opdw.Feedback.Lambda.f_lambda f.Opdw.Feedback.Lambda.f_error
      f.Opdw.Feedback.Lambda.f_samples
  in
  if json then begin
    let per_query =
      List.map2
        (fun (id, b) (_, a) ->
           Printf.sprintf
             "\n  {\"query\": \"%s\", \"error_before\": %.6g, \"error_after\": %.6g}"
             (json_escape id) b a)
        before after
    in
    let refined =
      List.map
        (fun (m : Opdw.Feedback.Misses.miss) ->
           Printf.sprintf
             "{\"table\": \"%s\", \"column\": \"%s\", \"worst\": %.6g, \"ops\": %d}"
             (json_escape m.Opdw.Feedback.Misses.m_table)
             (json_escape m.Opdw.Feedback.Misses.m_column)
             m.Opdw.Feedback.Misses.m_worst m.Opdw.Feedback.Misses.m_ops)
        cal.Opdw.Feedback.refined
    in
    Printf.printf
      "{\"queries\": [%s\n],\n \"geomean_before\": %.6g, \"geomean_after\": %.6g,\n \
       \"improved\": %b, \"refined_columns\": [%s],\n \"epoch\": %d, \
       \"bound_violations\": %d}\n"
      (String.concat "," per_query) g_before g_after (g_after < g_before)
      (String.concat ", " refined) cal.Opdw.Feedback.new_epoch !violations
  end
  else begin
    print_endline "query   error(before)  error(after)";
    List.iter2
      (fun (id, b) (_, a) -> Printf.printf "%-7s %13.4g %13.4g\n" id b a)
      before after;
    Printf.printf "geomean model-vs-sim error: %.4g -> %.4g over %d queries (%s)\n"
      g_before g_after (List.length targets)
      (if g_after < g_before then "improved" else "NOT improved");
    (match cal.Opdw.Feedback.refined with
     | [] -> print_endline "refined columns: none (no estimate missed the threshold)"
     | ms ->
       Printf.printf "refined columns (%d):\n" (List.length ms);
       List.iter
         (fun (m : Opdw.Feedback.Misses.miss) ->
            Printf.printf "  %s.%s  worst miss %.3gx over %d op(s)\n"
              m.Opdw.Feedback.Misses.m_table m.Opdw.Feedback.Misses.m_column
              m.Opdw.Feedback.Misses.m_worst m.Opdw.Feedback.Misses.m_ops)
         ms);
    Printf.printf "lambdas: %s\n"
      (String.concat "; " (List.map fit_line cal.Opdw.Feedback.fits));
    Printf.printf "calibration epoch: %d; bound check: %d operator(s) outside \
                   refined static bounds\n"
      cal.Opdw.Feedback.new_epoch !violations
  end;
  if !violations > 0 then exit 1;
  if expect_improvement && g_after >= g_before then begin
    prerr_endline "expected the geomean model error to shrink after calibration";
    exit 1
  end

let calibrate_cmd =
  let expect_improvement_t =
    Arg.(value & flag
         & info [ "expect-improvement" ]
           ~doc:"Exit nonzero unless the geomean model-vs-sim error strictly \
                 shrank after calibration (CI smoke for the feedback loop).")
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Run the feedback loop once over the workload: execute each query \
             with the observation harvest armed, fold the observed \
             cardinalities and DMS volumes back into the catalog (histogram \
             refinement + λ re-fit), then re-execute and report the per-query \
             and geomean model-vs-sim cost error before and after. The second \
             pass re-checks the abstract interpreter's cardinality bounds \
             against the refined statistics; any violation exits 1.")
    Term.(const calibrate $ nodes_t $ sf_t $ all_t $ query_t $ sql_t $ file_t
          $ seed_t $ budget_t $ jobs_t $ feedback_log_t $ expect_improvement_t
          $ json_t)

(* -- planstore -- *)

let planstore nodes sf all query sql file seed budget jobs runs
    inject_regression skew_table json =
  let w = setup ~nodes ~sf () in
  let shell = w.Opdw.Workload.shell and app = w.Opdw.Workload.app in
  let options = options_of ~nodes ~seed ~budget in
  let targets = feedback_targets ~all ~query ~sql ~file in
  Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
  @@ fun pool ->
  Engine.Appliance.set_pool app pool;
  let fb = Opdw.Feedback.create ~options shell app in
  let rounds = max (if inject_regression then 4 else 1) runs in
  (* oracle rows per query from round 1 (the plan that becomes LKG);
     availability = fraction of answered rounds returning oracle rows *)
  let oracle = Hashtbl.create 8 and matched = ref 0 and answered = ref 0 in
  let round_lines = ref [] in
  for i = 1 to rounds do
    if inject_regression && i = 2 then begin
      (* adversarial stats skew, applied after the LKG is recorded: the
         optimizer now believes the table is tiny, recompiles (set_stats
         bumps stats_version, re-keying fingerprint v5) and picks a plan
         that regresses against the LKG *)
      match Catalog.Shell_db.find shell skew_table with
      | None ->
        Printf.eprintf "unknown table %s for --inject-regression\n" skew_table;
        exit 1
      | Some tbl ->
        Catalog.Shell_db.set_stats shell skew_table
          { tbl.Catalog.Shell_db.stats with Catalog.Tbl_stats.row_count = 10. }
    end;
    List.iter
      (fun (id, text) ->
         let oc = Opdw.Feedback.run fb text in
         let rendered = render_rows oc.Opdw.Feedback.rows in
         incr answered;
         (match Hashtbl.find_opt oracle id with
          | None -> Hashtbl.add oracle id rendered; incr matched
          | Some o -> if rendered = o then incr matched);
         round_lines :=
           Printf.sprintf "round %d: %-5s %-13s sim %.4gs  plan %s%s" i id
             (Opdw.Feedback.Store.outcome_name oc.Opdw.Feedback.store_outcome)
             oc.Opdw.Feedback.observed_sim
             (match (oc.Opdw.Feedback.res).Opdw.fingerprint with
              | Some fp -> fp_digest fp
              | None -> "-")
             (if oc.Opdw.Feedback.fellback then "  (LKG fallback)" else "")
           :: !round_lines)
      targets
  done;
  let store = Opdw.Feedback.store fb in
  let availability = float_of_int !matched /. float_of_int (max 1 !answered) in
  let stmt_id stmt =
    (* map the store's statement key (normalized SQL) back to a query id *)
    match
      List.find_opt
        (fun (_, text) -> Opdw.Feedback.statement_key text = stmt)
        targets
    with
    | Some (id, _) -> id
    | None -> String.sub stmt 0 (min 24 (String.length stmt))
  in
  if json then begin
    let stmts =
      List.map
        (fun stmt ->
           let id = stmt_id stmt in
           let lkg =
             match Opdw.Feedback.Store.lkg store stmt with
             | Some (fp, _, sim) ->
               Printf.sprintf "{\"plan\": \"%s\", \"sim\": %.6g}" (fp_digest fp) sim
             | None -> "null"
           in
           let quarantined =
             Opdw.Feedback.Store.quarantined store stmt
             |> List.map (fun fp -> Printf.sprintf "\"%s\"" (fp_digest fp))
           in
           Printf.sprintf
             "\n  {\"query\": \"%s\", \"lkg\": %s, \"quarantined\": [%s]}"
             (json_escape id) lkg (String.concat ", " quarantined))
        (Opdw.Feedback.Store.statements store)
    in
    Printf.printf
      "{\"rounds\": %d, \"statements\": [%s\n],\n \"regressions\": %d, \
       \"fallbacks\": %d, \"availability\": %.6g}\n"
      rounds (String.concat "," stmts)
      (Opdw.Feedback.Store.regressions store)
      (Opdw.Feedback.Store.fallbacks store) availability
  end
  else begin
    List.iter print_endline (List.rev !round_lines);
    print_endline "== plan store ==";
    List.iter
      (fun stmt ->
         let id = stmt_id stmt in
         (match Opdw.Feedback.Store.lkg store stmt with
          | Some (fp, _, sim) ->
            Printf.printf "%-5s LKG %s (best sim %.4gs)" id (fp_digest fp) sim
          | None -> Printf.printf "%-5s no LKG" id);
         (match Opdw.Feedback.Store.quarantined store stmt with
          | [] -> print_newline ()
          | qs ->
            Printf.printf "; quarantined: %s\n"
              (String.concat ", " (List.map fp_digest qs))))
      (Opdw.Feedback.Store.statements store);
    Printf.printf
      "%d round(s); %d regression(s); %d fallback(s); availability %.3g\n"
      rounds (Opdw.Feedback.Store.regressions store)
      (Opdw.Feedback.Store.fallbacks store) availability
  end;
  if availability < 1.0 then begin
    prerr_endline "some round returned non-oracle rows";
    exit 1
  end;
  if inject_regression && Opdw.Feedback.Store.fallbacks store = 0 then begin
    prerr_endline
      "expected the injected stats skew to quarantine a plan and fall back to LKG";
    exit 1
  end

let planstore_cmd =
  let runs_t =
    Arg.(value & opt int 3
         & info [ "runs" ] ~docv:"K"
           ~doc:"Rounds: each target query is optimized and executed K times \
                 through the feedback driver (minimum 4 with \
                 $(b,--inject-regression)).")
  in
  let inject_regression_t =
    Arg.(value & flag
         & info [ "inject-regression" ]
           ~doc:"After round 1 records the LKG plans, corrupt the statistics of \
                 the skew table so the optimizer recompiles a regressing plan; \
                 exits nonzero unless the store quarantines it and serves the \
                 LKG fallback within the hysteresis window (and every round \
                 still returns oracle rows).")
  in
  let skew_table_t =
    Arg.(value & opt string "lineitem"
         & info [ "skew-table" ] ~docv:"TABLE"
           ~doc:"Table whose statistics $(b,--inject-regression) corrupts.")
  in
  Cmd.v
    (Cmd.info "planstore"
       ~doc:"Drive queries through the feedback driver's last-known-good plan \
             store and dump its state: per-statement LKG plan and observed \
             cost, quarantined fingerprints, regression and fallback totals, \
             and answer availability (fraction of rounds returning the round-1 \
             rows).")
    Term.(const planstore $ nodes_t $ sf_t $ all_t $ query_t $ sql_t $ file_t
          $ seed_t $ budget_t $ jobs_t $ runs_t $ inject_regression_t
          $ skew_table_t $ json_t)

(* -- topology -- *)

let topology action nodes sf statements zipf_seed zipf_skew grow max_tables
    fault_seed fault_rate jobs =
  let w = setup ~nodes ~sf () in
  let app = w.Opdw.Workload.app in
  let plain = options_of ~nodes ~seed:false ~budget:20000 in
  (* fault-free oracle rows per query id, computed on a separate pristine
     appliance: every answer served during the storm — including the ones
     admitted while a grow / re-key move is in flight — must match exactly *)
  let oracle = Hashtbl.create 16 in
  let wo = setup ~nodes ~sf () in
  List.iter
    (fun q ->
       let r =
         Opdw.optimize ~options:plain wo.Opdw.Workload.shell q.Tpch.Queries.sql
       in
       Hashtbl.replace oracle q.Tpch.Queries.id
         (render_rows (Opdw.run wo.Opdw.Workload.app r)))
    Tpch.Queries.all;
  Par.with_pool ~jobs:(if jobs <= 0 then Par.default_jobs () else jobs)
  @@ fun pool ->
  Engine.Appliance.set_pool app pool;
  let fault = Fault.seeded ~seed:fault_seed ~rate:fault_rate () in
  let el =
    Topology.Elastic.create ~cache:(Opdw.cache ()) ~options:plain ~fault
      w.Opdw.Workload.shell app
  in
  let obs = Obs.create () in
  (* the storm: Zipf-ranked picks over the bundled workload queries, so a
     skewed head dominates the harvested log (what the advisor keys on) *)
  let bundle = Array.of_list Tpch.Queries.all in
  let storm =
    Topology.Zipf.storm ~seed:zipf_seed ~s:zipf_skew ~length:(max 1 statements)
      (Array.length bundle)
    |> List.map (fun k -> bundle.(k))
  in
  let queue = ref storm and served = ref 0 and matched = ref 0 in
  let serve_one () =
    match !queue with
    | [] -> ()
    | q :: rest ->
      queue := rest;
      let _, rows = Topology.Elastic.run ~obs el q.Tpch.Queries.sql in
      incr served;
      if render_rows rows = Hashtbl.find oracle q.Tpch.Queries.id then incr matched
  in
  let serve n = for _ = 1 to n do serve_one () done in
  let advice =
    match action with
    | `Advise ->
      serve (List.length !queue);
      Topology.Elastic.advise ~max_tables el
    | `Apply ->
      (* first half of the storm populates the advisor's log; the moves run
         with the second half served between copy steps (old layout until
         each flip), and whatever remains drains after *)
      serve (List.length !queue / 2);
      if grow > Topology.Elastic.nodes el then
        Topology.Elastic.grow ~obs ~between:serve_one el ~nodes:grow;
      let advice = Topology.Elastic.advise ~max_tables el in
      Topology.Elastic.apply ~obs ~between:serve_one el advice;
      serve (List.length !queue);
      advice
  in
  let total =
    List.fold_left (fun a (_, c) -> a + c) 0 advice.Topology.Advisor.a_statements
  in
  Printf.printf
    "advisor: %d execution(s) harvested, %d distinct statement(s); modelled \
     workload DMS cost %.4g -> %.4g\n"
    total
    (List.length advice.Topology.Advisor.a_statements)
    advice.Topology.Advisor.a_baseline advice.Topology.Advisor.a_proposed;
  (match advice.Topology.Advisor.a_proposals with
   | [] -> print_endline "proposals: none (current keys already minimal)"
   | ps ->
     List.iter
       (fun (p : Topology.Advisor.proposal) ->
          Printf.printf "  re-key %-10s [%s] -> [%s]  (%.4g -> %.4g, -%.1f%%)\n"
            p.Topology.Advisor.p_table
            (String.concat "," p.Topology.Advisor.p_from)
            (String.concat "," p.Topology.Advisor.p_cols)
            p.Topology.Advisor.p_before p.Topology.Advisor.p_after
            (100. *. (1. -. (p.Topology.Advisor.p_after /. p.Topology.Advisor.p_before))))
       ps);
  Printf.printf
    "%d/%d statements returned oracle rows (availability %.3f); final topology: \
     %d nodes, epoch %d\n"
    !matched !served
    (float_of_int !matched /. float_of_int (max 1 !served))
    (Topology.Elastic.nodes el) (Topology.Elastic.epoch el);
  (match Obs.counters_prefixed obs "topology." with
   | [] -> ()
   | cs -> List.iter (fun (k, v) -> Printf.printf "  %-28s %.6g\n" k v) cs);
  if !matched <> !served then begin
    prerr_endline "some statement returned non-oracle rows";
    exit 1
  end

let topology_cmd =
  let action_t =
    Arg.(required
         & pos 0 (some (enum [ ("advise", `Advise); ("apply", `Apply) ])) None
         & info [] ~docv:"ACTION"
           ~doc:"$(b,advise): serve the whole storm, then print the \
                 re-distribution proposals. $(b,apply): serve half the storm, \
                 optionally grow online ($(b,--grow)), apply the proposals as \
                 online re-key moves while still serving, then drain the rest.")
  in
  let statements_t =
    Arg.(value & opt int 48
         & info [ "statements" ] ~docv:"N"
           ~doc:"Storm length (Zipf-ranked picks over the bundled workload queries).")
  in
  let zipf_seed_t =
    Arg.(value & opt int 1
         & info [ "zipf-seed" ] ~docv:"SEED"
           ~doc:"Seed for the Zipf storm draws (a fixed seed reproduces the \
                 exact statement sequence at any $(b,--jobs)).")
  in
  let zipf_skew_t =
    Arg.(value & opt float 1.5
         & info [ "zipf-skew" ] ~docv:"S"
           ~doc:"Zipf exponent: rank k is picked with weight 1/(k+1)^S.")
  in
  let grow_t =
    Arg.(value & opt int 0
         & info [ "grow" ] ~docv:"M"
           ~doc:"(apply) Grow the appliance online to M compute nodes mid-storm \
                 (ignored unless M exceeds the current node count).")
  in
  let max_tables_t =
    Arg.(value & opt int 2
         & info [ "max-tables" ] ~docv:"K"
           ~doc:"Advisor budget: at most K tables re-keyed (greedy, each \
                 accepted only on a strict modelled-cost win).")
  in
  let t_fault_rate_t =
    Arg.(value & opt float 0.
         & info [ "fault-rate" ] ~docv:"P"
           ~doc:"Per-site fault probability per step attempt during the storm \
                 and inside the move steps (default 0: fault-free).")
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Serve a skewed statement storm through the elastic driver, run the \
             re-distribution advisor over the harvested workload, and \
             ($(b,apply)) execute grow / re-key moves online while every \
             statement keeps returning oracle rows. Exits nonzero if any \
             served statement's rows differ from the fault-free oracle.")
    Term.(const topology $ action_t $ nodes_t $ sf_t $ statements_t $ zipf_seed_t
          $ zipf_skew_t $ grow_t $ max_tables_t $ fault_seed_t $ t_fault_rate_t
          $ jobs_t)

(* -- queries -- *)

let queries () =
  List.iter
    (fun q -> Printf.printf "%-5s %s\n" q.Tpch.Queries.id q.Tpch.Queries.description)
    Tpch.Queries.all

let queries_cmd =
  Cmd.v (Cmd.info "queries" ~doc:"List the bundled workload queries.")
    Term.(const queries $ const ())

let () =
  let doc = "the opdw distributed query optimizer (SQL Server PDW reproduction)" in
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group (Cmd.info "opdw_cli" ~doc)
           [ explain_cmd; run_cmd; overload_cmd; memo_cmd; check_cmd; analyze_cmd;
             calibrate_cmd; planstore_cmd; topology_cmd; queries_cmd ])
    with
    | Governor.Gate.Rejected rj ->
      Printf.eprintf
        "statement rejected by admission control: %d running, %d queued (queue limit %d)\n"
        rj.Governor.Gate.running rj.Governor.Gate.queued rj.Governor.Gate.queue_limit;
      1
    | Check.Invalid vs ->
      Printf.eprintf "plan failed validation (%d violations):\n%s\n"
        (List.length vs) (Check.to_string vs);
      1
    | Sqlfront.Lexer.Lex_error (msg, pos) ->
      Printf.eprintf "SQL lexical error at offset %d: %s\n" pos msg; 1
    | Sqlfront.Parser.Parse_error msg ->
      Printf.eprintf "SQL parse error: %s\n" msg; 1
    | Algebra.Algebrizer.Resolve_error msg ->
      Printf.eprintf "name resolution error: %s\n" msg; 1
    | Algebra.Algebrizer.Unsupported msg ->
      Printf.eprintf "unsupported SQL construct: %s\n" msg; 1
    | Pdwopt.Optimizer.No_plan msg ->
      Printf.eprintf "optimization failed: %s\n" msg; 1
    | Fault.Exhausted { failure; attempts } ->
      Printf.eprintf "statement failed: retry budget exhausted after %d attempts (%s)\n"
        attempts (Fault.failure_to_string failure);
      1
    | Fault.Schedule_error msg ->
      Printf.eprintf "bad fault schedule: %s\n" msg; 1
    | Opdw.Feedback.Log.Parse_error msg ->
      Printf.eprintf "bad feedback log: %s\n" msg; 1
  in
  exit code
