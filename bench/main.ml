(* Benchmark entry point.

   Modes:
     bench/main.exe                 run all experiments (E1..E22), then the
                                    bechamel micro-benchmarks
     bench/main.exe --tables [Ek]   experiments only (optionally just one);
                                    writes BENCH_results.json
     bench/main.exe --micro         micro-benchmarks only *)

open Bechamel
open Toolkit

let workload = lazy (Opdw.Workload.tpch ~node_count:8 ~sf:0.005 ())

let q id = (Option.get (Tpch.Queries.find id)).Tpch.Queries.sql

let prepared id =
  let w = Lazy.force workload in
  let r = Opdw.optimize w.Opdw.Workload.shell (q id) in
  (w, r)

(* one Test.make per pipeline stage *)
let micro_tests () =
  let w = Lazy.force workload in
  let sh = w.Opdw.Workload.shell in
  let parse_q20 =
    Test.make ~name:"parse Q20" (Staged.stage (fun () -> Sqlfront.Parser.parse (q "Q20")))
  in
  let algebrize_q20 =
    Test.make ~name:"algebrize+normalize Q20"
      (Staged.stage (fun () ->
           let r = Algebra.Algebrizer.of_sql sh (q "Q20") in
           Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh r.Algebra.Algebrizer.tree))
  in
  let serial_q3 =
    let r = Algebra.Algebrizer.of_sql sh (q "Q3") in
    let tr = Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh r.Algebra.Algebrizer.tree in
    Test.make ~name:"serial optimize Q3"
      (Staged.stage (fun () -> Serialopt.Optimizer.optimize r.Algebra.Algebrizer.reg sh tr))
  in
  let xml_roundtrip =
    let r = Algebra.Algebrizer.of_sql sh (q "Q3") in
    let tr = Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh r.Algebra.Algebrizer.tree in
    let m = (Serialopt.Optimizer.optimize r.Algebra.Algebrizer.reg sh tr).Serialopt.Optimizer.memo in
    Test.make ~name:"MEMO XML export+import Q3"
      (Staged.stage (fun () ->
           Memo.Memo_xml.import_string sh (Memo.Memo_xml.export_string m)))
  in
  let pdw_q5 =
    let r = Algebra.Algebrizer.of_sql sh (q "Q5") in
    let tr = Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh r.Algebra.Algebrizer.tree in
    let m = (Serialopt.Optimizer.optimize r.Algebra.Algebrizer.reg sh tr).Serialopt.Optimizer.memo in
    Test.make ~name:"PDW enumerate Q5"
      (Staged.stage (fun () -> Pdwopt.Optimizer.optimize m))
  in
  let dsql_q20 =
    let _, r = prepared "Q20" in
    Test.make ~name:"DSQL generation Q20"
      (Staged.stage (fun () ->
           Dsql.Generate.generate r.Opdw.memo.Memo.reg (Opdw.plan r)))
  in
  let exec_q6 =
    let w, r = prepared "Q6" in
    Test.make ~name:"execute Q6 on appliance"
      (Staged.stage (fun () -> Opdw.run w.Opdw.Workload.app r))
  in
  let exec_q3 =
    let w, r = prepared "Q3" in
    Test.make ~name:"execute Q3 on appliance"
      (Staged.stage (fun () -> Opdw.run w.Opdw.Workload.app r))
  in
  let full_pipeline =
    Test.make ~name:"full pipeline P1 (parse..dsql)"
      (Staged.stage (fun () -> Opdw.optimize sh (q "P1")))
  in
  [ parse_q20; algebrize_q20; serial_q3; xml_roundtrip; pdw_q5; dsql_q20; exec_q6;
    exec_q3; full_pipeline ]

let run_micro () =
  print_endline "\n== bechamel micro-benchmarks ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let grouped = Test.make_grouped ~name:"opdw" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
       match Analyze.OLS.estimates ols with
       | Some [ t ] -> Printf.printf "%-45s %14.1f ns/run\n%!" name t
       | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
    results

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--micro" :: _ -> run_micro ()
  | _ :: "--tables" :: rest ->
    (match rest with
     | [] -> Experiments.all ()
     | ids -> List.iter Experiments.by_id ids);
    Experiments.write_results "BENCH_results.json"
  | _ ->
    Experiments.all ();
    Experiments.write_results "BENCH_results.json";
    run_micro ()
