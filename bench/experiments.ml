(* Experiment harness: regenerates every figure / worked example of the
   paper plus the quantitative studies its claims imply (see DESIGN.md §3
   and EXPERIMENTS.md). Each experiment prints a self-contained report. *)

let section id title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "============================================================\n%!"

let rowf fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* machine-readable results: experiments record (key, value) pairs and
   `bench --tables` dumps them to BENCH_results.json, so plots and
   regression checks need not scrape the report text *)

let metrics : (string, (string * float) list ref) Hashtbl.t = Hashtbl.create 16

(* experiment ids in first-recorded order, so the JSON reads like the report *)
let metric_order : string list ref = ref []

let record exp k v =
  let l =
    match Hashtbl.find_opt metrics exp with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace metrics exp l;
      metric_order := exp :: !metric_order;
      l
  in
  l := (k, v) :: !l

let recordi exp k v = record exp k (float_of_int v)

(* JSON has no literal for non-finite numbers: nan/inf/-inf all become null
   (printing them as "inf"/"nan" would make the file unparsable) *)
let json_num v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let write_results path =
  let exps =
    List.rev_map (fun id -> (id, List.rev !(Hashtbl.find metrics id))) !metric_order
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (id, kvs) ->
       Printf.fprintf oc "  %S: {\n" id;
       let n = List.length kvs in
       List.iteri
         (fun j (k, v) ->
            Printf.fprintf oc "    %S: %s%s\n" k (json_num v)
              (if j = n - 1 then "" else ","))
         kvs;
       Printf.fprintf oc "  }%s\n" (if i = List.length exps - 1 then "" else ","))
    exps;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d experiments)\n%!" path (List.length exps)

(* shared workloads, built lazily per (nodes, sf) *)
let workloads : (int * float, Opdw.Workload.t) Hashtbl.t = Hashtbl.create 4

let workload ~nodes ~sf =
  match Hashtbl.find_opt workloads (nodes, sf) with
  | Some w -> w
  | None ->
    let w = Opdw.Workload.tpch ~node_count:nodes ~sf () in
    Hashtbl.replace workloads (nodes, sf) w;
    w

let query id = (Option.get (Tpch.Queries.find id)).Tpch.Queries.sql

let optimize ?options (w : Opdw.Workload.t) sql =
  Opdw.optimize ?options w.Opdw.Workload.shell sql

(* leaf tables of a parallel plan, left-to-right (join order evidence) *)
let rec plan_leaves (p : Pdwopt.Pplan.t) =
  match p.Pdwopt.Pplan.op with
  | Pdwopt.Pplan.Serial (Memo.Physop.Table_scan { table; _ }) -> [ table ]
  | _ -> List.concat_map plan_leaves p.Pdwopt.Pplan.children

let rec serial_leaves (p : Serialopt.Plan.t) =
  match p.Serialopt.Plan.op with
  | Memo.Physop.Table_scan { table; _ } -> [ table ]
  | _ -> List.concat_map serial_leaves p.Serialopt.Plan.children

let move_names p =
  List.map Dms.Op.name (Pdwopt.Pplan.moves p) |> String.concat ", "

(* execute a plan, returning (rows, simulated seconds, dms seconds) *)
let execute (w : Opdw.Workload.t) (p : Pdwopt.Pplan.t) =
  let app = w.Opdw.Workload.app in
  Engine.Appliance.reset_account app;
  let res = Engine.Appliance.run_pplan app p in
  let a = app.Engine.Appliance.account in
  (List.length res.Engine.Local.rows, a.Engine.Appliance.sim_time,
   a.Engine.Appliance.dms_time)

(* ------------------------------------------------------------------ *)
(* E1 (Fig. 3): the MEMO for Customer x Orders, serial and augmented  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "Fig. 3: serial MEMO and its parallel augmentation (Customer x Orders)";
  let w = workload ~nodes:8 ~sf:0.01 in
  let r = optimize w (query "F3") in
  let m = r.Opdw.memo in
  recordi "E1" "memo_xml_bytes"
    (match r.Opdw.memo_xml with Some x -> String.length x | None -> 0);
  recordi "E1" "memo_groups" (Memo.ngroups m);
  recordi "E1" "memo_exprs" (Memo.total_exprs m);
  Printf.printf "\n-- serial MEMO (exported from the serial optimizer as XML, %d bytes) --\n"
    (match r.Opdw.memo_xml with Some x -> String.length x | None -> 0);
  print_endline (Memo.to_string m);
  Printf.printf "-- augmented (parallel) MEMO: options kept per group --\n";
  Printf.printf "%-8s %-28s %-12s %s\n" "group" "distribution option" "dms cost" "via";
  Memo.iter_groups m (fun g ->
      match Hashtbl.find_opt r.Opdw.pdw.Pdwopt.Optimizer.options g.Memo.gid with
      | None -> ()
      | Some opts ->
        List.iter
          (fun ((d : Dms.Distprop.t), (p : Pdwopt.Pplan.t)) ->
             let via =
               match p.Pdwopt.Pplan.op with
               | Pdwopt.Pplan.Move { kind; _ } -> "DMS " ^ Dms.Op.name kind
               | Pdwopt.Pplan.Serial op -> Memo.Physop.name op
               | Pdwopt.Pplan.Return _ -> "Return"
             in
             rowf "%-8d %-28s %-12.3g %s\n" g.Memo.gid
               (Dms.Distprop.to_string m.Memo.reg d) p.Pdwopt.Pplan.dms_cost via)
          opts);
  Printf.printf "\n-- final (best) parallel plan --\n%s\n"
    (Pdwopt.Pplan.to_string m.Memo.reg (Opdw.plan r));
  Printf.printf "\npaper: groups 5/6 add Shuffle/Replicate move expressions over the\n";
  Printf.printf "serial groups; the winner joins Customer with moved Orders (or the\n";
  Printf.printf "symmetric choice, depending on sizes). moves used here: %s\n"
    (move_names (Opdw.plan r))

(* ------------------------------------------------------------------ *)
(* E2 (sec. 2.4): the two-step DSQL plan                               *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2" "Sec. 2.4: DSQL plan for the partition-incompatible join";
  (* the paper's appliance is large; at 32 nodes the shuffle of Orders wins
     over broadcasting Customer, matching the paper's plan *)
  let w = workload ~nodes:32 ~sf:0.01 in
  let r = optimize w (query "P1") in
  print_endline (Dsql.Generate.to_string r.Opdw.dsql);
  let moves = Pdwopt.Pplan.moves (Opdw.plan r) in
  Printf.printf "\nsteps: %d (paper: 2 - one DMS shuffle of Orders on o_custkey, one Return)\n"
    (Dsql.Generate.step_count r.Opdw.dsql);
  Printf.printf "movement chosen: %s (paper: Shuffle)\n"
    (String.concat ", " (List.map Dms.Op.name moves));
  let n, sim, _ = execute w (Opdw.plan r) in
  recordi "E2" "dsql_steps" (Dsql.Generate.step_count r.Opdw.dsql);
  recordi "E2" "result_rows" n;
  record "E2" "sim_seconds" sim;
  Printf.printf "executed: %d result rows, simulated response time %.4gs\n" n sim

(* ------------------------------------------------------------------ *)
(* E3 (sec. 3.2): best serial join order is not best parallel order    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3" "Sec. 3.2: parallelizing the best serial plan is not enough";
  let w = workload ~nodes:8 ~sf:0.01 in
  let r = optimize w (query "P2") in
  let serial = Option.get r.Opdw.serial.Serialopt.Optimizer.best in
  let pdw = Opdw.plan r in
  let baseline = Option.get r.Opdw.baseline_plan in
  Printf.printf "serial-best join order  : %s\n" (String.concat " > " (serial_leaves serial));
  Printf.printf "PDW-chosen join order   : %s\n" (String.concat " > " (plan_leaves pdw));
  Printf.printf "baseline DMS cost       : %.4g s  (moves: %s)\n"
    baseline.Pdwopt.Pplan.dms_cost (move_names baseline);
  Printf.printf "PDW DMS cost            : %.4g s  (moves: %s)\n" pdw.Pdwopt.Pplan.dms_cost
    (move_names pdw);
  Printf.printf "modelled improvement    : %.2fx\n"
    (baseline.Pdwopt.Pplan.dms_cost /. Float.max 1e-12 pdw.Pdwopt.Pplan.dms_cost);
  let _, sim_b, _ = execute w baseline in
  let _, sim_p, _ = execute w pdw in
  record "E3" "baseline_dms_seconds" baseline.Pdwopt.Pplan.dms_cost;
  record "E3" "pdw_dms_seconds" pdw.Pdwopt.Pplan.dms_cost;
  record "E3" "baseline_sim_seconds" sim_b;
  record "E3" "pdw_sim_seconds" sim_p;
  Printf.printf "simulated times         : baseline %.4gs vs PDW %.4gs (%.2fx)\n" sim_b sim_p
    (sim_b /. Float.max 1e-12 sim_p);
  Printf.printf
    "paper: joining the collocated Orders/Lineitem pair first and shuffling\n\
     the result beats parallelizing the serial order (Customer first).\n"

(* ------------------------------------------------------------------ *)
(* E4 (Fig. 7): TPC-H Q20                                              *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4" "Fig. 7: parallel plan and DSQL steps for TPC-H Q20";
  let w = workload ~nodes:8 ~sf:0.01 in
  let r = optimize w (query "Q20") in
  print_endline (Dsql.Generate.to_string r.Opdw.dsql);
  let moves = Pdwopt.Pplan.moves (Opdw.plan r) in
  Printf.printf "\nmovements: %s\n" (String.concat ", " (List.map Dms.Op.name moves));
  Printf.printf
    "paper plan: Broadcast(part) -> join lineitem early; Shuffle(l_partkey) for\n\
     the distributed aggregation; Shuffle(ps_suppkey) for the supplier semi-join;\n\
     Return with ORDER BY s_name.\n";
  let has k = List.exists (fun m -> Dms.Op.name m = k) moves in
  Printf.printf "shape check: broadcast=%b shuffle>=2=%b\n" (has "Broadcast")
    (List.length (List.filter (function Dms.Op.Shuffle _ -> true | _ -> false) moves) >= 2
     || has "PartitionMove");
  let n, sim, _ = execute w (Opdw.plan r) in
  recordi "E4" "dsql_steps" (Dsql.Generate.step_count r.Opdw.dsql);
  recordi "E4" "moves" (List.length moves);
  recordi "E4" "result_rows" n;
  record "E4" "sim_seconds" sim;
  Printf.printf "executed: %d result rows, simulated response time %.4gs\n" n sim

(* ------------------------------------------------------------------ *)
(* E5 (sec. 3.3.3): cost calibration                                   *)
(* ------------------------------------------------------------------ *)

let calibrate_lambdas ~nodes =
  (* targeted performance tests: run each DMS operation over a sweep of
     sizes on a scratch appliance and fit lambda per component *)
  let sh = Catalog.Shell_db.create ~node_count:nodes in
  let schema =
    Catalog.Schema.make "cal"
      [ Catalog.Schema.column "k" Catalog.Types.Tint;
        Catalog.Schema.column ~width:64 "pad" Catalog.Types.Tstring ]
  in
  ignore (Catalog.Shell_db.add_table sh schema (Catalog.Distribution.Hash_partitioned [ "k" ]));
  let app = Engine.Appliance.create sh in
  let reg = Algebra.Registry.create () in
  let ck = Algebra.Registry.fresh reg ~name:"k" ~ty:Catalog.Types.Tint ~width:8.
      (Algebra.Registry.Derived "k") in
  let cp = Algebra.Registry.fresh reg ~name:"pad" ~ty:Catalog.Types.Tstring ~width:64.
      (Algebra.Registry.Derived "pad") in
  List.iter
    (fun n ->
       let rows = List.init n (fun i -> [| Catalog.Value.Int i; Catalog.Value.String (String.make 64 'x') |]) in
       let rs rows = Engine.Rset.Rows { Engine.Local.layout = [ ck; cp ]; rows } in
       let parts = Array.make nodes [] in
       List.iteri (fun i r -> parts.(i mod nodes) <- r :: parts.(i mod nodes)) rows;
       let mk dist = { Engine.Appliance.layout = [ ck; cp ]; per_node = Array.map rs parts;
                       control = rs rows; dist } in
       let hashed = mk (Dms.Distprop.Hashed [ ck ]) in
       let repl = { (mk Dms.Distprop.Replicated) with
                    Engine.Appliance.per_node = Array.make nodes (rs rows) } in
       let single = mk Dms.Distprop.Single_node in
       ignore (Engine.Appliance.run_move app (Dms.Op.Shuffle [ ck ]) ~cols:[ ck; cp ] hashed);
       ignore (Engine.Appliance.run_move app Dms.Op.Broadcast ~cols:[ ck; cp ] hashed);
       ignore (Engine.Appliance.run_move app Dms.Op.Partition_move ~cols:[ ck; cp ] hashed);
       ignore (Engine.Appliance.run_move app (Dms.Op.Trim [ ck ]) ~cols:[ ck; cp ] repl);
       ignore (Engine.Appliance.run_move app Dms.Op.Replicated_broadcast ~cols:[ ck; cp ] single);
       ignore (Engine.Appliance.run_move app Dms.Op.Remote_copy ~cols:[ ck; cp ] hashed))
    [ 500; 2000; 8000; 32000 ];
  let account = app.Engine.Appliance.account in
  Dms.Calibrate.calibrate (Engine.Appliance.samples_of account)

let e5 () =
  section "E5" "Sec. 3.3.3: cost calibration (fitting lambda per component)";
  let lambdas, errors = calibrate_lambdas ~nodes:8 in
  Printf.printf "%-16s %-14s %-18s\n" "component" "lambda (s/B)" "rel. RMS residual";
  List.iter
    (fun (c, e) ->
       let l =
         match c with
         | Dms.Calibrate.Reader_direct -> lambdas.Dms.Cost.l_reader_direct
         | Dms.Calibrate.Reader_hash -> lambdas.Dms.Cost.l_reader_hash
         | Dms.Calibrate.Network -> lambdas.Dms.Cost.l_network
         | Dms.Calibrate.Writer -> lambdas.Dms.Cost.l_writer
         | Dms.Calibrate.Blkcpy -> lambdas.Dms.Cost.l_blkcpy
       in
       rowf "%-16s %-14.4g %-18.4f\n" (Dms.Calibrate.component_name c) l e)
    errors;
  Printf.printf "\nlambda_hash > lambda_direct: %b (paper: hashing adds reader overhead)\n"
    (lambdas.Dms.Cost.l_reader_hash > lambdas.Dms.Cost.l_reader_direct);
  Printf.printf
    "residuals stem from per-row and fixed overheads the constant-lambda model\n\
     ignores - the simplicity/accuracy trade-off the paper accepts.\n";
  lambdas

(* ------------------------------------------------------------------ *)
(* E6 (Fig. 5): model vs simulated DMS times                           *)
(* ------------------------------------------------------------------ *)

let e6 lambdas =
  section "E6" "Fig. 5: DMS cost model vs simulated runtime, all 7 operations";
  let nodes = 8 in
  let sh = Catalog.Shell_db.create ~node_count:nodes in
  let schema =
    Catalog.Schema.make "cal"
      [ Catalog.Schema.column "k" Catalog.Types.Tint;
        Catalog.Schema.column ~width:64 "pad" Catalog.Types.Tstring ]
  in
  ignore (Catalog.Shell_db.add_table sh schema (Catalog.Distribution.Hash_partitioned [ "k" ]));
  let app = Engine.Appliance.create sh in
  let reg = Algebra.Registry.create () in
  let ck = Algebra.Registry.fresh reg ~name:"k" ~ty:Catalog.Types.Tint ~width:8.
      (Algebra.Registry.Derived "k") in
  let cp = Algebra.Registry.fresh reg ~name:"pad" ~ty:Catalog.Types.Tstring ~width:64.
      (Algebra.Registry.Derived "pad") in
  let width = 72. in
  Printf.printf "%-22s %-10s %-14s %-14s %-8s\n" "operation" "rows" "model (s)" "simulated (s)"
    "ratio";
  List.iter
    (fun (kind, input_dist, n) ->
       let rows = List.init n (fun i -> [| Catalog.Value.Int i; Catalog.Value.String (String.make 64 'x') |]) in
       let rs rows = Engine.Rset.Rows { Engine.Local.layout = [ ck; cp ]; rows } in
       let parts = Array.make nodes [] in
       List.iteri (fun i r -> parts.(i mod nodes) <- r :: parts.(i mod nodes)) rows;
       let stream =
         match input_dist with
         | `Hashed -> { Engine.Appliance.layout = [ ck; cp ]; per_node = Array.map rs parts;
                        control = rs []; dist = Dms.Distprop.Hashed [ ck ] }
         | `Replicated -> { Engine.Appliance.layout = [ ck; cp ];
                            per_node = Array.make nodes (rs rows); control = rs [];
                            dist = Dms.Distprop.Replicated }
         | `Single -> { Engine.Appliance.layout = [ ck; cp ];
                        per_node = Array.make nodes (rs []);
                        control = rs rows; dist = Dms.Distprop.Single_node }
       in
       Engine.Appliance.reset_account app;
       ignore (Engine.Appliance.run_move app kind ~cols:[ ck; cp ] stream);
       let sim = app.Engine.Appliance.account.Engine.Appliance.dms_time in
       let model =
         (Dms.Cost.cost ~lambdas kind ~nodes ~rows:(float_of_int n) ~width).Dms.Cost.c_total
       in
       rowf "%-22s %-10d %-14.4g %-14.4g %-8.2f\n" (Dms.Op.name kind) n model sim
         (model /. Float.max 1e-12 sim))
    [ (Dms.Op.Shuffle [ ck ], `Hashed, 20000);
      (Dms.Op.Partition_move, `Hashed, 20000);
      (Dms.Op.Broadcast, `Hashed, 5000);
      (Dms.Op.Trim [ ck ], `Replicated, 20000);
      (Dms.Op.Control_node_move, `Single, 5000);
      (Dms.Op.Replicated_broadcast, `Single, 5000);
      (Dms.Op.Remote_copy, `Hashed, 20000) ];
  Printf.printf "\nratios near 1.0 validate C_DMS = max(source, target) with linear\n";
  Printf.printf "per-component costs; deviations come from per-row/fixed overheads.\n"

(* ------------------------------------------------------------------ *)
(* E7: plan quality, PDW QO vs parallelized best serial plan           *)
(* ------------------------------------------------------------------ *)

let geomean l =
  match l with
  | [] -> 1.
  | _ -> exp (List.fold_left (fun a x -> a +. log x) 0. l /. float_of_int (List.length l))

let e7 () =
  section "E7" "Plan quality: PDW QO vs parallelized best serial plan (TPC-H)";
  let w = workload ~nodes:8 ~sf:0.01 in
  let nodes = 8 in
  Printf.printf "%-5s %-13s %-13s %-9s %-12s %-12s %-9s %-10s\n" "query" "base dms(s)"
    "pdw dms(s)" "model x" "base sim(s)" "pdw sim(s)" "sim x" "dms-only x";
  let speedups = ref [] and sim_speedups = ref [] in
  (* ablation (DESIGN.md par. 6): pure-DMS costing, no serial tie-break *)
  let dms_only_options =
    { (Opdw.default_options ~node_count:nodes) with
      Opdw.pdw =
        { Pdwopt.Enumerate.default_opts with
          Pdwopt.Enumerate.nodes; serial_tiebreak = false } }
  in
  List.iter
    (fun q ->
       let r = optimize w q.Tpch.Queries.sql in
       match r.Opdw.baseline_plan with
       | None -> rowf "%-5s (baseline unavailable)\n" q.Tpch.Queries.id
       | Some b ->
         let p = Opdw.plan r in
         let _, sim_b, _ = execute w b in
         let _, sim_p, _ = execute w p in
         let eps = 1e-9 in
         let mx = Float.max eps b.Pdwopt.Pplan.dms_cost /. Float.max eps p.Pdwopt.Pplan.dms_cost in
         let sx = sim_b /. Float.max 1e-12 sim_p in
         let r_dms = optimize ~options:dms_only_options w q.Tpch.Queries.sql in
         let ax =
           Float.max eps b.Pdwopt.Pplan.dms_cost
           /. Float.max eps (Opdw.plan r_dms).Pdwopt.Pplan.dms_cost
         in
         speedups := mx :: !speedups;
         sim_speedups := sx :: !sim_speedups;
         record "E7" (q.Tpch.Queries.id ^ ".model_x") mx;
         record "E7" (q.Tpch.Queries.id ^ ".sim_x") sx;
         rowf "%-5s %-13.4g %-13.4g %-9.2f %-12.4g %-12.4g %-9.2f %-10.2f\n" q.Tpch.Queries.id
           b.Pdwopt.Pplan.dms_cost p.Pdwopt.Pplan.dms_cost mx sim_b sim_p sx ax)
    Tpch.Queries.all;
  record "E7" "geomean_model_x" (geomean !speedups);
  record "E7" "geomean_sim_x" (geomean !sim_speedups);
  Printf.printf
    "\ngeometric mean improvement: modelled %.2fx, simulated %.2fx\n\
     ('dms-only x' = the paper's pure movement-cost objective, without the\n\
     per-node relational-work tie-break; same winners, ties broken blindly)\n"
    (geomean !speedups) (geomean !sim_speedups);
  Printf.printf
    "(paper sec. 5: cost-based search over the rich distributed space 'produces\n\
     much higher-quality plans than simply parallelizing the best serial plan')\n"

(* ------------------------------------------------------------------ *)
(* E8: optimizer scalability, chain joins, pruning ablation            *)
(* ------------------------------------------------------------------ *)

let chain_shell k ~node_count =
  let sh = Catalog.Shell_db.create ~node_count in
  for i = 0 to k - 1 do
    let name = Printf.sprintf "t%d" i in
    let schema =
      Catalog.Schema.make name
        [ Catalog.Schema.column ~is_pk:true (Printf.sprintf "a%d" i) Catalog.Types.Tint;
          Catalog.Schema.column (Printf.sprintf "b%d" i) Catalog.Types.Tint;
          Catalog.Schema.column ~width:32 (Printf.sprintf "pad%d" i) Catalog.Types.Tstring ]
    in
    let stats = Catalog.Tbl_stats.make ~row_count:(10_000. *. float_of_int (i + 1)) () in
    Catalog.Tbl_stats.set_col stats (Printf.sprintf "a%d" i)
      (Catalog.Col_stats.make ~ndv:(10_000. *. float_of_int (i + 1)) ());
    Catalog.Tbl_stats.set_col stats (Printf.sprintf "b%d" i)
      (Catalog.Col_stats.make ~ndv:5000. ());
    (* alternate distribution: even tables on their join key, odd ones not *)
    let dist =
      if i mod 2 = 0 then Catalog.Distribution.Hash_partitioned [ Printf.sprintf "a%d" i ]
      else Catalog.Distribution.Hash_partitioned [ Printf.sprintf "b%d" i ]
    in
    ignore (Catalog.Shell_db.add_table sh ~stats schema dist)
  done;
  sh

let chain_query k =
  let tables = List.init k (fun i -> Printf.sprintf "t%d" i) in
  let joins =
    List.init (k - 1) (fun i -> Printf.sprintf "a%d = b%d" i (i + 1))
  in
  Printf.sprintf "SELECT %s FROM %s WHERE %s"
    (String.concat ", " (List.init k (fun i -> Printf.sprintf "a%d" i)))
    (String.concat ", " tables) (String.concat " AND " joins)

let e8 () =
  section "E8" "Optimizer scalability: chain joins, with/without pruning (Fig. 4, 06.ii)";
  Printf.printf "%-7s %-8s %-8s %-8s | %-22s | %-24s\n" "" "" "" ""
    "pruned (paper)" "unpruned (ablation)";
  Printf.printf "%-7s %-8s %-8s %-8s | %-10s %-11s | %-10s %-13s\n" "tables" "groups"
    "exprs" "enum'd" "kept opts" "time (ms)" "kept opts" "time (ms)";
  List.iter
    (fun k ->
       let sh = chain_shell k ~node_count:8 in
       let r = Algebra.Algebrizer.of_sql sh (chain_query k) in
       let tr = Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh
           r.Algebra.Algebrizer.tree in
       (* memo and enumeration sizes come from the Obs counters both
          optimizers report -- the same ones `explain --profile` prints *)
       let sobs = Obs.create () in
       let sres =
         Serialopt.Optimizer.optimize ~obs:sobs r.Algebra.Algebrizer.reg sh tr
       in
       let m = sres.Serialopt.Optimizer.memo in
       let groups = int_of_float (Obs.counter sobs "serial.memo.groups") in
       let exprs = int_of_float (Obs.counter sobs "serial.memo.exprs") in
       let run prune =
         let obs = Obs.create () in
         let t0 = Sys.time () in
         let opts = { Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.prune } in
         ignore (Pdwopt.Optimizer.optimize ~obs ~opts m);
         let dt = (Sys.time () -. t0) *. 1000. in
         (int_of_float (Obs.counter obs "pdw.options_kept"),
          int_of_float (Obs.counter obs "pdw.exprs_enumerated"), dt)
       in
       let kept_p, enum_p, t_p = run true in
       let kept_u, _, t_u = if k <= 6 then run false else (-1, -1, nan) in
       recordi "E8" (Printf.sprintf "chain%d.memo_groups" k) groups;
       recordi "E8" (Printf.sprintf "chain%d.memo_exprs" k) exprs;
       recordi "E8" (Printf.sprintf "chain%d.pdw_enumerated" k) enum_p;
       recordi "E8" (Printf.sprintf "chain%d.kept_pruned" k) kept_p;
       record "E8" (Printf.sprintf "chain%d.ms_pruned" k) t_p;
       if kept_u >= 0 then begin
         recordi "E8" (Printf.sprintf "chain%d.kept_unpruned" k) kept_u;
         record "E8" (Printf.sprintf "chain%d.ms_unpruned" k) t_u
       end;
       rowf "%-7d %-8d %-8d %-8d | %-10d %-11.1f | %-10s %-13s\n" k groups exprs
         enum_p kept_p t_p
         (if kept_u < 0 then "-" else string_of_int kept_u)
         (if Float.is_nan t_u then "-" else Printf.sprintf "%.1f" t_u))
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Printf.printf
    "\npaper sec. 3.2: naive enumeration cannot scale; bounding each group to\n\
     the best option per interesting property keeps enumeration tractable.\n"

(* ------------------------------------------------------------------ *)
(* E9: repeated-workload throughput (plan cache + multicore appliance) *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9" "Repeated-workload throughput: plan cache + multicore appliance";
  let now = Unix.gettimeofday in
  (* -- part 1: plan cache, cold vs warm optimization latency -- *)
  let w = workload ~nodes:8 ~sf:0.01 in
  let ids = [ "Q3"; "Q5"; "Q10"; "Q20"; "P2" ] in
  let cache = Opdw.cache () in
  let time_optimize sql =
    let t0 = now () in
    let r = Opdw.optimize ~cache w.Opdw.Workload.shell sql in
    (now () -. t0, r)
  in
  (* per-statement split: compile wall (cold optimize) vs execute wall, so
     compile-bound and execute-bound regimes are distinguishable *)
  Printf.printf "%-6s %-16s %-16s\n" "query" "compile (ms)" "execute (ms)";
  let cold =
    List.fold_left
      (fun acc id ->
         let dt, r = time_optimize (query id) in
         let t0 = now () in
         ignore (Engine.Appliance.run_pplan w.Opdw.Workload.app (Opdw.plan r));
         let et = now () -. t0 in
         record "E9" (Printf.sprintf "%s.compile_wall_ms" id) (dt *. 1000.);
         record "E9" (Printf.sprintf "%s.execute_wall_ms" id) (et *. 1000.);
         rowf "%-6s %-16.2f %-16.2f\n" id (dt *. 1000.) (et *. 1000.);
         acc +. dt)
      0. ids
  in
  let rounds = 20 in
  let warm = ref 0. in
  for _ = 1 to rounds do
    List.iter (fun id -> warm := !warm +. fst (time_optimize (query id))) ids
  done;
  let nq = float_of_int (List.length ids) in
  let cold_lat = cold /. nq in
  let warm_lat = !warm /. (nq *. float_of_int rounds) in
  let cs = Opdw.Plancache.stats cache in
  record "E9" "cold_ms_per_query" (cold_lat *. 1000.);
  record "E9" "warm_ms_per_query" (warm_lat *. 1000.);
  record "E9" "warm_speedup_x" (cold_lat /. Float.max 1e-12 warm_lat);
  record "E9" "cold_qps" (1. /. Float.max 1e-12 cold_lat);
  record "E9" "warm_qps" (1. /. Float.max 1e-12 warm_lat);
  recordi "E9" "plancache_hits" cs.Opdw.Plancache.hits;
  recordi "E9" "plancache_misses" cs.Opdw.Plancache.misses;
  Printf.printf
    "plan cache (%d queries, %d warm rounds): cold %.2f ms/query, warm %.3f ms/query\n\
     -> warm optimization latency %.1fx lower (%.0f -> %.0f plans/s); %d hits / %d misses\n"
    (List.length ids) rounds (cold_lat *. 1000.) (warm_lat *. 1000.)
    (cold_lat /. Float.max 1e-12 warm_lat) (1. /. cold_lat) (1. /. warm_lat)
    cs.Opdw.Plancache.hits cs.Opdw.Plancache.misses;
  (* -- part 2: multicore appliance, wall-clock vs jobs -- *)
  let w2 = workload ~nodes:8 ~sf:0.02 in
  let r = optimize w2 (query "Q5") in
  let p = Opdw.plan r in
  let app = w2.Opdw.Workload.app in
  let reps = 3 in
  let cores = Par.default_jobs () in
  recordi "E9" "cores" cores;
  Printf.printf
    "\nmulticore appliance (Q5, sf 0.02, 8 nodes, %d DSQL moves; %d reps; %d cores):\n"
    (Pdwopt.Pplan.move_count p) reps cores;
  Printf.printf "%-6s %-14s %-12s %-14s %-12s\n" "jobs" "wall (s)" "speedup"
    "sim time (s)" "identical";
  let base_wall = ref nan and base_acct = ref (nan, nan, nan) in
  List.iter
    (fun jobs ->
       (* bracketed pool: shut down even if an execution raises *)
       let wall =
         Par.with_pool ~jobs @@ fun pool ->
         Engine.Appliance.set_pool app pool;
         let t0 = now () in
         for _ = 1 to reps do
           Engine.Appliance.reset_account app;
           ignore (Engine.Appliance.run_pplan app p)
         done;
         now () -. t0
       in
       Engine.Appliance.set_pool app Par.sequential;
       let a = app.Engine.Appliance.account in
       let acct =
         (a.Engine.Appliance.sim_time, a.Engine.Appliance.bytes_moved,
          a.Engine.Appliance.rows_moved)
       in
       if jobs = 1 then begin
         base_wall := wall;
         base_acct := acct
       end;
       let identical = acct = !base_acct in
       record "E9" (Printf.sprintf "jobs%d_wall_seconds" jobs) wall;
       record "E9" (Printf.sprintf "jobs%d_speedup_x" jobs) (!base_wall /. wall);
       recordi "E9" (Printf.sprintf "jobs%d_accounting_identical" jobs)
         (if identical then 1 else 0);
       rowf "%-6d %-14.4f %-12.2f %-14.6g %-12b\n" jobs wall (!base_wall /. wall)
         a.Engine.Appliance.sim_time identical)
    [ 1; 2; 4; 8 ];
  Engine.Appliance.set_pool app Par.sequential;
  Printf.printf
    "\nsimulated response time and byte/row accounting are bit-identical at every\n\
     jobs setting (per-node shard times combine with the same max/sum rules);\n\
     wall-clock speedup tracks the physical core count (%d here).\n"
    cores

(* ------------------------------------------------------------------ *)
(* E19: parallel plan enumeration -- compile wall-clock vs jobs        *)
(* ------------------------------------------------------------------ *)

let e19 () =
  section "E19"
    "Parallel plan enumeration: compile wall-clock vs jobs (chain joins)";
  let now = Unix.gettimeofday in
  let cores = Par.default_jobs () in
  recordi "E19" "cores" cores;
  let jobs_list = [ 1; 2; 4 ] in
  let chains = [ 6; 7; 8 ] in
  let reps = 3 in
  Printf.printf
    "chain joins (E8 shapes), %d reps each (best-of); %d physical cores\n\n"
    reps cores;
  Printf.printf "%-7s %-6s %-14s %-10s %-11s %-10s\n" "tables" "jobs"
    "compile (ms)" "speedup" "kept opts" "identical";
  (* per-jobs speedups across chains, for the geomean *)
  let speedups : (int, float list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun k ->
       let sh = chain_shell k ~node_count:8 in
       let r = Algebra.Algebrizer.of_sql sh (chain_query k) in
       let tr =
         Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh
           r.Algebra.Algebrizer.tree
       in
       let sres = Serialopt.Optimizer.optimize r.Algebra.Algebrizer.reg sh tr in
       (* optimization mutates the memo (merging, registry ids), so every
          timed run re-imports a fresh memo from the serial optimizer's XML
          export -- the same round-trip `Opdw.optimize` performs *)
       let xml = Memo.Memo_xml.export_string sres.Serialopt.Optimizer.memo in
       let run jobs =
         Par.with_pool ~jobs @@ fun pool ->
         let best = ref infinity and out = ref None in
         for _ = 1 to reps do
           let m = Memo.Memo_xml.import_string sh xml in
           let obs = Obs.create () in
           let t0 = now () in
           let res = Pdwopt.Optimizer.optimize ~obs ~pool m in
           let dt = (now () -. t0) *. 1000. in
           if dt < !best then best := dt;
           out :=
             Some
               (Pdwopt.Pplan.to_string m.Memo.reg res.Pdwopt.Optimizer.plan,
                res.Pdwopt.Optimizer.plan.Pdwopt.Pplan.dms_cost,
                int_of_float (Obs.counter obs "pdw.options_kept"))
         done;
         (!best, Option.get !out)
       in
       let base_ms, (base_txt, base_cost, base_kept) = run 1 in
       List.iter
         (fun jobs ->
            let ms, (txt, cost, kept) =
              if jobs = 1 then (base_ms, (base_txt, base_cost, base_kept))
              else run jobs
            in
            let sx = base_ms /. Float.max 1e-9 ms in
            let identical =
              txt = base_txt && cost = base_cost && kept = base_kept
            in
            record "E19" (Printf.sprintf "chain%d.jobs%d.compile_ms" k jobs) ms;
            record "E19" (Printf.sprintf "chain%d.jobs%d.speedup_x" k jobs) sx;
            recordi "E19" (Printf.sprintf "chain%d.jobs%d.kept" k jobs) kept;
            recordi "E19"
              (Printf.sprintf "chain%d.jobs%d.identical" k jobs)
              (if identical then 1 else 0);
            (match Hashtbl.find_opt speedups jobs with
             | Some l -> l := sx :: !l
             | None -> Hashtbl.replace speedups jobs (ref [ sx ]));
            rowf "%-7d %-6d %-14.1f %-10.2f %-11d %-10b\n" k jobs ms sx kept
              identical)
         jobs_list)
    chains;
  Printf.printf "\n";
  List.iter
    (fun jobs ->
       let g = geomean !(Hashtbl.find speedups jobs) in
       record "E19" (Printf.sprintf "jobs%d.speedup_x" jobs) g;
       Printf.printf "jobs %d: geomean compile speedup %.2fx over chains 6-8\n"
         jobs g)
    jobs_list;
  Printf.printf
    "\nthe enumeration runs as a leveled wavefront over the memo's dependency\n\
     levels (DESIGN.md sec. 11); the chosen plan, its cost, and the kept-option\n\
     counts are bit-identical at every jobs setting.\n"

(* ------------------------------------------------------------------ *)
(* E14 (sec. 2.2): global statistics merged from per-node local stats  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14" "Sec. 2.2: merged global statistics vs exact statistics";
  let sf = 0.01 in
  let db = Tpch.Datagen.generate sf in
  Printf.printf "%-22s %-9s %-12s %-12s %-12s %-10s\n" "column" "nodes" "exact ndv"
    "merged ndv" "exact med" "est med";
  List.iter
    (fun nodes ->
       List.iter
         (fun (tbl, col) ->
            let schema, _ =
              List.find (fun (s, _) -> s.Catalog.Schema.name = tbl) Tpch.Schema.layout
            in
            let rows = Tpch.Datagen.rows db tbl in
            let idx = Option.get (Catalog.Schema.find_col schema col) in
            let values = List.map (fun (r : Catalog.Value.t array) -> r.(idx)) rows in
            let exact = Catalog.Col_stats.of_values values in
            (* split rows across nodes the way the appliance would *)
            let parts = Array.make nodes [] in
            List.iteri (fun i v -> parts.(i mod nodes) <- v :: parts.(i mod nodes)) values;
            let merged =
              Catalog.Col_stats.merge
                (Array.to_list (Array.map Catalog.Col_stats.of_values parts))
            in
            let median (s : Catalog.Col_stats.t) =
              match s.Catalog.Col_stats.histogram with
              | Some h ->
                let nn = Catalog.Histogram.non_null_rows h in
                (* probe: rows below the exact median value *)
                ignore nn; h
              | None -> Catalog.Histogram.empty
            in
            let sorted = List.sort Catalog.Value.compare values in
            let med = List.nth sorted (List.length sorted / 2) in
            let est_le h = Catalog.Histogram.rows_le h med in
            rowf "%-22s %-9d %-12.0f %-12.0f %-12.0f %-10.0f\n"
              (tbl ^ "." ^ col) nodes exact.Catalog.Col_stats.ndv merged.Catalog.Col_stats.ndv
              (est_le (median exact)) (est_le (median merged)))
         [ ("orders", "o_custkey"); ("orders", "o_orderdate"); ("lineitem", "l_quantity") ])
    [ 2; 8; 32 ];
  Printf.printf
    "\n('est med' = estimated rows at/below the true median value: exact would be\n\
     ~half the rows; drift quantifies what merging loses, which the paper\n\
     accepts to keep a single system image in the shell database.)\n"

(* ------------------------------------------------------------------ *)
(* E10 (sec. 3.1): MEMO seeding under an exploration timeout           *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "Sec. 3.1: seeding the MEMO with collocated join orders under a timeout";
  let w = workload ~nodes:8 ~sf:0.01 in
  let nodes = 8 in
  (* a FROM order whose initial bracketing starts with a cross product of
     two distribution-incompatible tables; only a join reordering (explored
     or seeded) can exploit the orders/lineitem collocation *)
  let sql =
    "SELECT o_orderkey, ps_availqty FROM partsupp, orders, lineitem \
     WHERE o_orderkey = l_orderkey AND l_partkey = ps_partkey AND l_quantity > 45"
  in
  Printf.printf "%-9s %-16s %-16s %-14s\n" "budget" "unseeded dms(s)" "seeded dms(s)" "seeding gain";
  List.iter
    (fun budget ->
       let run seed =
         let options =
           { (Opdw.default_options ~node_count:nodes) with
             Opdw.serial =
               { Serialopt.Optimizer.default_options with
                 Serialopt.Optimizer.task_budget = budget };
             Opdw.seed_collocated = seed }
         in
         let r = optimize ~options w sql in
         (Opdw.plan r).Pdwopt.Pplan.dms_cost
       in
       let u = run false and s = run true in
       rowf "%-9d %-16.4g %-16.4g %-14.2f\n" budget u s (u /. Float.max 1e-12 s))
    [ 0; 2; 8; 100; 20000 ];
  Printf.printf
    "\npaper: under the timeout the initial alternatives dominate the space, so\n\
     PDW seeds distribution-aware (collocated) plans; with a generous budget\n\
     exploration recovers them on its own and seeding stops mattering.\n"

(* ------------------------------------------------------------------ *)
(* E11: correctness matrix                                             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "Correctness: distributed == single-node reference, whole workload";
  Printf.printf "%-6s" "query";
  List.iter (fun n -> Printf.printf " %8s" (Printf.sprintf "N=%d" n)) [ 2; 8 ];
  Printf.printf "   baseline(N=8)\n";
  List.iter
    (fun q ->
       Printf.printf "%-6s" q.Tpch.Queries.id;
       let base_ok = ref false in
       List.iter
         (fun nodes ->
            let w = workload ~nodes ~sf:0.005 in
            let r = optimize w q.Tpch.Queries.sql in
            let app = w.Opdw.Workload.app in
            let dist = Opdw.run app r in
            let reference = Option.get (Opdw.run_reference app r) in
            let cols = List.map snd (Opdw.output_columns r) in
            let ok =
              Engine.Local.canonical ~cols dist = Engine.Local.canonical ~cols reference
            in
            if nodes = 8 then begin
              match Opdw.run_baseline app r with
              | Some b ->
                base_ok :=
                  Engine.Local.canonical ~cols b = Engine.Local.canonical ~cols reference
              | None -> base_ok := false
            end;
            Printf.printf " %8s" (if ok then "ok" else "FAIL"))
         [ 2; 8 ];
       Printf.printf "   %s\n%!" (if !base_ok then "ok" else "FAIL"))
    Tpch.Queries.all

(* ------------------------------------------------------------------ *)
(* E12: the uniformity assumption under data skew                      *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "Sec. 3.3.1: the uniformity assumption under data skew";
  let nodes = 8 in
  let sh = Catalog.Shell_db.create ~node_count:nodes in
  let schema =
    Catalog.Schema.make "skewt"
      [ Catalog.Schema.column "k" Catalog.Types.Tint;
        Catalog.Schema.column "g" Catalog.Types.Tint;
        Catalog.Schema.column ~width:64 "pad" Catalog.Types.Tstring ]
  in
  ignore (Catalog.Shell_db.add_table sh schema (Catalog.Distribution.Hash_partitioned [ "k" ]));
  let app = Engine.Appliance.create sh in
  let reg = Algebra.Registry.create () in
  let ck = Algebra.Registry.fresh reg ~name:"k" ~ty:Catalog.Types.Tint ~width:8.
      (Algebra.Registry.Derived "k") in
  let cg = Algebra.Registry.fresh reg ~name:"g" ~ty:Catalog.Types.Tint ~width:8.
      (Algebra.Registry.Derived "g") in
  let cp = Algebra.Registry.fresh reg ~name:"pad" ~ty:Catalog.Types.Tstring ~width:64.
      (Algebra.Registry.Derived "pad") in
  let n = 40_000 in
  Printf.printf "%-24s %-14s %-14s %-8s\n" "shuffle-key distribution" "model (s)"
    "simulated (s)" "ratio";
  List.iter
    (fun (label, gen_g) ->
       (* rows evenly spread on k; shuffled onto g whose skew varies *)
       let rows =
         List.init n (fun i ->
             [| Catalog.Value.Int i; Catalog.Value.Int (gen_g i);
                Catalog.Value.String (String.make 64 'x') |])
       in
       let parts = Array.make nodes [] in
       List.iteri (fun i r -> parts.(i mod nodes) <- r :: parts.(i mod nodes)) rows;
       let rs rows = Engine.Rset.Rows { Engine.Local.layout = [ ck; cg; cp ]; rows } in
       let stream =
         { Engine.Appliance.layout = [ ck; cg; cp ]; per_node = Array.map rs parts;
           control = rs []; dist = Dms.Distprop.Hashed [ ck ] }
       in
       Engine.Appliance.reset_account app;
       ignore (Engine.Appliance.run_move app (Dms.Op.Shuffle [ cg ]) ~cols:[ ck; cg; cp ] stream);
       let sim = app.Engine.Appliance.account.Engine.Appliance.dms_time in
       let model =
         (Dms.Cost.cost (Dms.Op.Shuffle [ cg ]) ~nodes ~rows:(float_of_int n) ~width:80.)
           .Dms.Cost.c_total
       in
       rowf "%-24s %-14.4g %-14.4g %-8.2f\n" label model sim (model /. Float.max 1e-12 sim))
    [ ("uniform", (fun i -> i));
      ("moderate (75% -> 2 keys)", (fun i -> if i mod 4 < 3 then i mod 2 else i));
      ("heavy (all one key)", (fun _ -> 42)) ];
  Printf.printf
    "\nthe model divides bytes by N (uniformity assumption, sec. 3.3.1); under\n\
     skew the receiving node's writer/bulk-copy becomes the bottleneck and the\n\
     model under-estimates by up to ~N x - the known limitation the paper\n\
     accepts for simplicity.\n"

(* ------------------------------------------------------------------ *)
(* E13: broadcast vs shuffle crossover as the appliance grows          *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13" "Topology dependence: broadcast vs shuffle crossover (sec. 2.4 join)";
  Printf.printf "%-7s %-22s %-14s %-14s\n" "nodes" "chosen movement" "pdw dms(s)"
    "baseline dms(s)";
  List.iter
    (fun nodes ->
       let w = workload ~nodes ~sf:0.01 in
       let r = optimize w (query "P1") in
       let p = Opdw.plan r in
       let b = match r.Opdw.baseline_plan with Some b -> b.Pdwopt.Pplan.dms_cost | None -> nan in
       record "E13" (Printf.sprintf "n%d.pdw_dms_seconds" nodes) p.Pdwopt.Pplan.dms_cost;
       record "E13" (Printf.sprintf "n%d.baseline_dms_seconds" nodes) b;
       rowf "%-7d %-22s %-14.4g %-14.4g\n" nodes (move_names p) p.Pdwopt.Pplan.dms_cost b)
    [ 2; 4; 8; 16; 32; 64 ];
  Printf.printf
    "\nbroadcast volume is Y*w regardless of N; shuffle volume is Y*w/N per\n\
     node - so small appliances replicate the small side while large ones\n\
     re-partition the big side (the paper's sec. 2.4 plan appears once the\n\
     appliance is large enough).\n"

(* ------------------------------------------------------------------ *)
(* E15: static plan-validity analyzer overhead (lib/check)             *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15" "Static plan-validity analyzer: pipeline overhead over the workload";
  let w = workload ~nodes:8 ~sf:0.005 in
  let options = Opdw.default_options ~node_count:8 in
  ignore (optimize ~options w (query "Q1"));  (* warm up datagen + code paths *)
  let reps = 3 in
  let time check =
    (* no plan cache, so every repetition pays the full pipeline (the
       analyzer included when [check]) *)
    let t0 = Sys.time () in
    for _ = 1 to reps do
      List.iter
        (fun q ->
           ignore
             (Opdw.optimize ~options ~check w.Opdw.Workload.shell
                q.Tpch.Queries.sql))
        Tpch.Queries.all
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  ignore (time true);  (* one throwaway round against jit/cache drift *)
  let off = time false in
  let on_ = time true in
  let overhead = (on_ -. off) /. off in
  let nq = List.length Tpch.Queries.all in
  record "E15" "queries" (float_of_int nq);
  record "E15" "rules" (float_of_int (List.length Check.rules));
  record "E15" "optimize_nocheck_seconds" off;
  record "E15" "optimize_check_seconds" on_;
  record "E15" "overhead_fraction" overhead;
  rowf "%d-query workload, %d rules, %d repetitions (plan cache off)\n" nq
    (List.length Check.rules) reps;
  rowf "  optimize, analyzer off:  %.4f s\n" off;
  rowf "  optimize, analyzer on:   %.4f s\n" on_;
  rowf "  overhead:                %.2f%% (budget: 5%%)\n" (100. *. overhead);
  Printf.printf
    "\nthe analyzer re-derives every distribution bottom-up and re-prices\n\
     every movement, yet stays a small fraction of optimization itself -\n\
     cheap enough to gate every compiled plan in production.\n"

(* ------------------------------------------------------------------ *)
(* E16: availability and latency under injected faults (chaos sweep)  *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16" "Availability and latency under deterministic fault injection";
  let w = workload ~nodes:8 ~sf:0.005 in
  let ids = [ "Q3"; "Q5"; "Q10" ] in
  let seeds = [ 1; 2; 3 ] in
  let options = Opdw.default_options ~node_count:8 in
  (* fault-free baseline simulated time per query *)
  let base =
    List.map
      (fun id ->
         let r = optimize ~options w (query id) in
         let _, sim, _ = execute w (Opdw.plan r) in
         (id, sim))
      ids
  in
  Printf.printf
    "\n%d queries x %d seeds per fault rate (8 nodes; retry budget %d):\n"
    (List.length ids) (List.length seeds) Fault.default_policy.Fault.retries;
  Printf.printf "%-8s %-14s %-12s %-10s %-10s %-10s %-10s\n" "rate"
    "availability" "slowdown_x" "injected" "retries" "recovered" "replans";
  List.iter
    (fun rate ->
       let runs = ref 0 and ok = ref 0 in
       let injected = ref 0 and retries = ref 0 and recovered = ref 0 in
       let replans = ref 0 in
       let slowdowns = ref [] in
       List.iter
         (fun id ->
            List.iter
              (fun seed ->
                 incr runs;
                 let fault =
                   if rate = 0. then Fault.none
                   else Fault.seeded ~seed ~rate ()
                 in
                 let app = w.Opdw.Workload.app in
                 let ctx =
                   Opdw.Chaos.create ~options ~fault w.Opdw.Workload.shell app
                 in
                 Engine.Appliance.reset_account app;
                 (match Opdw.Chaos.run ctx (query id) with
                  | _ ->
                    incr ok;
                    let a = (Opdw.Chaos.app ctx).Engine.Appliance.account in
                    let fault_free = List.assoc id base in
                    slowdowns :=
                      (a.Engine.Appliance.sim_time /. Float.max 1e-12 fault_free)
                      :: !slowdowns;
                    injected := !injected + a.Engine.Appliance.injected;
                    retries := !retries + a.Engine.Appliance.retries;
                    recovered := !recovered + a.Engine.Appliance.recovered;
                    replans := !replans + a.Engine.Appliance.replans
                  | exception Fault.Exhausted _ -> ());
                 (* the original appliance survives decommissioning; drop
                    the fault plan so later experiments run clean *)
                 Engine.Appliance.set_fault app Fault.none;
                 Engine.Appliance.reset_account app)
              seeds)
         ids;
       let geomean = function
         | [] -> Float.nan
         | l ->
           exp (List.fold_left (fun acc x -> acc +. log x) 0. l
                /. float_of_int (List.length l))
       in
       let avail = float_of_int !ok /. float_of_int !runs in
       let slow = geomean !slowdowns in
       let key fmt = Printf.sprintf fmt (int_of_float (rate *. 1000.)) in
       record "E16" (key "rate%03d.availability") avail;
       record "E16" (key "rate%03d.sim_slowdown_x") slow;
       recordi "E16" (key "rate%03d.injected") !injected;
       recordi "E16" (key "rate%03d.retries") !retries;
       recordi "E16" (key "rate%03d.recovered") !recovered;
       recordi "E16" (key "rate%03d.replans") !replans;
       rowf "%-8.2f %-14.2f %-12.3f %-10d %-10d %-10d %-10d\n" rate avail slow
         !injected !retries !recovered !replans)
    [ 0.; 0.02; 0.05; 0.1; 0.2 ];
  Printf.printf
    "\nrecovered runs return rows identical to the fault-free plan (enforced by\n\
     the chaos suite); availability degrades only when a step's retry budget\n\
     is exhausted, and simulated slowdown prices retries, backoff and the\n\
     re-partitioning that follows a node loss.\n"

(* ------------------------------------------------------------------ *)
(* E17: latency and availability under the resource governor           *)
(* ------------------------------------------------------------------ *)

(* nearest-rank percentile over a sorted array *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let e17 () =
  section "E17" "Statement latency and availability under the resource governor";
  let w = workload ~nodes:8 ~sf:0.005 in
  let app = w.Opdw.Workload.app in
  let ids = [ "Q1"; "Q3"; "Q5"; "Q10"; "Q12"; "Q20" ] in
  let statements = 24 in
  let stmts = Array.init statements (fun i -> List.nth ids (i mod List.length ids)) in
  let canonical r res =
    Engine.Local.canonical ~cols:(List.map snd (Opdw.output_columns r)) res
  in
  (* oracle rows per query: full budget, ungoverned, fault-free *)
  let oracle =
    List.map
      (fun id ->
         let r = optimize w (query id) in
         Engine.Appliance.reset_account app;
         (id, canonical r (Opdw.run app r)))
      ids
  in
  Printf.printf
    "\n%d statements (%s mix) per cell, 4 driver domains; wall-clock latency\n\
     per statement through the governed entry point:\n"
    statements (String.concat "," ids);
  Printf.printf "%-16s %-6s %-9s %-9s %-9s %-9s %-9s %-8s %-6s\n" "governance"
    "width" "p50_ms" "p95_ms" "p99_ms" "degraded" "rejected" "timeout" "avail";
  let configs =
    [ ("ungoverned", Governor.no_limits);
      ("memo8",
       { Governor.no_limits with Governor.max_memo_groups = Some 8 });
      ("memo8_deadline",
       { Governor.deadline = Some 0.05; sim_deadline = Some 0.002;
         max_memo_groups = Some 8 }) ]
  in
  Par.with_pool ~jobs:4 @@ fun pool ->
  Fun.protect ~finally:(fun () -> Engine.Appliance.set_pool app Par.sequential)
  @@ fun () ->
  Engine.Appliance.set_pool app pool;
  List.iter
    (fun (label, limits) ->
       List.iter
         (fun width ->
            let options =
              { (Opdw.default_options ~node_count:8) with Opdw.governor = limits }
            in
            let gov =
              Opdw.Governed.create ~cache:(Opdw.cache ()) ~options
                ~max_concurrent:width ~queue_limit:statements
                ~breaker_threshold:0 w.Opdw.Workload.shell app
            in
            Opdw.Governed.reset gov;
            let outcomes =
              Par.parallel_map pool
                (fun id ->
                   let t0 = Unix.gettimeofday () in
                   let oc = Opdw.Governed.run gov (query id) in
                   (id, oc, Unix.gettimeofday () -. t0))
                stmts
            in
            let lat = Array.map (fun (_, _, dt) -> dt *. 1000.) outcomes in
            Array.sort compare lat;
            let degraded = ref 0 and rejected = ref 0 and timeout = ref 0 in
            let wrong = ref 0 in
            Array.iter
              (fun (id, oc, _) ->
                 match oc with
                 | Opdw.Governed.Returned (r, res) ->
                   if r.Opdw.degraded <> None then incr degraded;
                   if canonical r res <> List.assoc id oracle then incr wrong
                 | Opdw.Governed.Rejected _ -> incr rejected
                 | Opdw.Governed.Timed_out _ -> incr timeout
                 | Opdw.Governed.Shed _ | Opdw.Governed.Exhausted _
                 | Opdw.Governed.Invalid _ -> ())
              outcomes;
            (* availability: every statement either answers with oracle rows
               or is refused with a structured outcome — wrong rows are the
               only failures *)
            let avail =
              float_of_int (statements - !wrong) /. float_of_int statements
            in
            let frac n = float_of_int !n /. float_of_int statements in
            let p50 = percentile lat 50. and p95 = percentile lat 95. in
            let p99 = percentile lat 99. in
            let key k = Printf.sprintf "%s.width%d.%s" label width k in
            record "E17" (key "p50_ms") p50;
            record "E17" (key "p95_ms") p95;
            record "E17" (key "p99_ms") p99;
            record "E17" (key "degraded_frac") (frac degraded);
            record "E17" (key "rejected_frac") (frac rejected);
            record "E17" (key "timeout_frac") (frac timeout);
            record "E17" (key "availability") avail;
            rowf "%-16s %-6d %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f %-8.2f %-6.2f\n"
              label width p50 p95 p99 (frac degraded) (frac rejected)
              (frac timeout) avail)
         [ 1; 2; 4; 8 ])
    configs;
  Printf.printf
    "\nevery answered statement returned rows identical to the ungoverned\n\
     fault-free oracle; refusals are structured outcomes, not errors.\n\
     Under deadlines the tail (p99) is bounded by deadline + a constant:\n\
     degradation extracts the anytime best-so-far plan or the baseline\n\
     fallback, both of which pass the static analyzer and skip the cache.\n"

(* ------------------------------------------------------------------ *)
(* E18: vectorized columnar executor — scale-factor and jobs sweeps    *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section "E18"
    "Columnar local executor: row vs columnar engines across scale factors";
  let now = Unix.gettimeofday in
  let parse_sfs s =
    String.split_on_char ',' s |> List.filter (( <> ) "") |> List.map float_of_string
  in
  (* override the sweep with e.g. OPDW_E18_SFS=0.01,0.1,1 for big runs *)
  let sfs =
    match Sys.getenv_opt "OPDW_E18_SFS" with
    | Some s -> parse_sfs s
    | None -> [ 0.01; 0.05; 0.1 ]
  in
  let qids = [ "Q1"; "Q3"; "Q6" ] in
  let nodes = 8 in
  let sf_key sf = Printf.sprintf "sf%g" sf in
  Printf.printf
    "per-node execution only (optimization excluded); both engines run the\n\
     identical plans over identically sharded data.\n\n";
  Printf.printf "%-8s %-5s %-12s %-12s %-9s %-8s %-10s\n" "sf" "query"
    "row (s)" "col (s)" "speedup" "rows" "sim equal";
  let speedups = ref [] in
  List.iter
    (fun sf ->
       (* fresh workloads per engine: identical generated data, shards, stats *)
       let time_engine engine =
         let w = Opdw.Workload.tpch ~node_count:nodes ~sf ~engine () in
         let app = w.Opdw.Workload.app in
         List.map
           (fun id ->
              let r = Opdw.optimize w.Opdw.Workload.shell (query id) in
              let p = Opdw.plan r in
              ignore (Engine.Appliance.run_pplan app p) (* warm-up *);
              Engine.Appliance.reset_account app;
              let t0 = now () in
              let res = Engine.Appliance.run_pplan app p in
              let wall = now () -. t0 in
              (id, wall, app.Engine.Appliance.account.Engine.Appliance.sim_time,
               Engine.Local.canonical res))
           qids
       in
       let rows = time_engine Engine.Rset.Row in
       let cols = time_engine Engine.Rset.Columnar in
       List.iter2
         (fun (id, wr, simr, resr) (_, wc, simc, resc) ->
            let speedup = wr /. Float.max 1e-9 wc in
            let rows_equal = resr = resc and sim_equal = simr = simc in
            if not rows_equal then
              failwith (Printf.sprintf "E18: %s rows differ across engines at sf %g" id sf);
            speedups := speedup :: !speedups;
            let k fmt = Printf.sprintf "%s.%s.%s" (sf_key sf) id fmt in
            record "E18" (k "row_wall_seconds") wr;
            record "E18" (k "columnar_wall_seconds") wc;
            record "E18" (k "speedup_x") speedup;
            recordi "E18" (k "result_rows") (List.length resr);
            recordi "E18" (k "sim_identical") (if sim_equal then 1 else 0);
            rowf "%-8g %-5s %-12.4f %-12.4f %-9.2f %-8d %-10b\n" sf id wr wc
              speedup (List.length resr) sim_equal)
         rows cols)
    sfs;
  record "E18" "geomean_speedup_x" (geomean !speedups);
  Printf.printf "\ngeomean columnar speedup over the sweep: %.2fx\n"
    (geomean !speedups);
  (* -- part 2: wall clock vs --jobs on the columnar engine; the simulated
     clock and byte/row accounting must not move -- *)
  let sf_jobs = match sfs with [] -> 0.05 | l -> List.nth l (List.length l - 1) in
  let w = Opdw.Workload.tpch ~node_count:nodes ~sf:sf_jobs
      ~engine:Engine.Rset.Columnar () in
  let app = w.Opdw.Workload.app in
  let r = optimize w (query "Q9") in
  let p = Opdw.plan r in
  let cores = Par.default_jobs () in
  recordi "E18" "cores" cores;
  Printf.printf
    "\ncolumnar engine, Q9 at sf %g, wall clock vs jobs (%d physical cores):\n"
    sf_jobs cores;
  Printf.printf "%-6s %-14s %-12s %-14s %-12s\n" "jobs" "wall (s)" "speedup"
    "sim time (s)" "identical";
  let base_wall = ref nan and base_acct = ref (nan, nan, nan) in
  List.iter
    (fun jobs ->
       let wall =
         Par.with_pool ~jobs @@ fun pool ->
         Engine.Appliance.set_pool app pool;
         let t0 = now () in
         Engine.Appliance.reset_account app;
         ignore (Engine.Appliance.run_pplan app p);
         now () -. t0
       in
       Engine.Appliance.set_pool app Par.sequential;
       let a = app.Engine.Appliance.account in
       let acct =
         (a.Engine.Appliance.sim_time, a.Engine.Appliance.bytes_moved,
          a.Engine.Appliance.rows_moved)
       in
       if jobs = 1 then begin
         base_wall := wall;
         base_acct := acct
       end;
       let identical = acct = !base_acct in
       record "E18" (Printf.sprintf "jobs%d_wall_seconds" jobs) wall;
       record "E18" (Printf.sprintf "jobs%d_speedup_x" jobs) (!base_wall /. wall);
       recordi "E18" (Printf.sprintf "jobs%d_accounting_identical" jobs)
         (if identical then 1 else 0);
       rowf "%-6d %-14.4f %-12.2f %-14.6g %-12b\n" jobs wall (!base_wall /. wall)
         a.Engine.Appliance.sim_time identical)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nresult rows and the simulated clock are engine- and jobs-independent;\n\
     only the wall clock moves. Columnar batches turn per-shard work into\n\
     tight loops over typed columns, so the gap widens with the scale factor.\n"

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E20: abstract-interpretation analyzer -- contradiction pruning and  *)
(* static cardinality-bound tightness                                  *)
(* ------------------------------------------------------------------ *)

let e20 () =
  section "E20"
    "Abstract interpretation: contradiction pruning and bound tightness";
  let now = Unix.gettimeofday in
  let nodes = 4 and sf = 0.01 in
  let w = workload ~nodes ~sf in
  let opts ~fold =
    let o = Opdw.default_options ~node_count:nodes in
    { o with Opdw.pdw = { o.Opdw.pdw with Pdwopt.Enumerate.fold_empty = fold } }
  in
  (* compile unchecked: with folding off a contradictory plan would (by
     design) be rejected by the R12 check gate *)
  let compile ~fold sql =
    let reps = 3 in
    let best = ref infinity and out = ref None in
    for _ = 1 to reps do
      let obs = Obs.create () in
      let t0 = now () in
      let r =
        Opdw.optimize ~obs ~options:(opts ~fold) ~check:false
          w.Opdw.Workload.shell sql
      in
      let dt = (now () -. t0) *. 1000. in
      if dt < !best then best := dt;
      out :=
        Some (r, Obs.counter obs "pdw.exprs_enumerated",
              Obs.counter obs "analysis.empty_groups")
    done;
    let r, exprs, empty = Option.get !out in
    (!best, r, exprs, empty)
  in
  (* part 1: live workload -- folding must be plan-identity-preserving *)
  Printf.printf
    "part 1: full %d-query workload, fold_empty on vs off (nodes=%d sf=%g)\n\n"
    (List.length Tpch.Queries.all) nodes sf;
  let identical = ref 0 and exprs_on = ref 0. and exprs_off = ref 0. in
  let ms_on = ref 0. and ms_off = ref 0. in
  List.iter
    (fun (q : Tpch.Queries.t) ->
       let m1, r1, x1, _ = compile ~fold:true q.Tpch.Queries.sql in
       let m0, r0, x0, _ = compile ~fold:false q.Tpch.Queries.sql in
       let reg = r1.Opdw.memo.Memo.reg in
       if Pdwopt.Pplan.to_string reg (Opdw.plan r1)
          = Pdwopt.Pplan.to_string reg (Opdw.plan r0)
       then incr identical;
       exprs_on := !exprs_on +. x1;
       exprs_off := !exprs_off +. x0;
       ms_on := !ms_on +. m1;
       ms_off := !ms_off +. m0)
    Tpch.Queries.all;
  recordi "E20" "workload.identical_plans" !identical;
  recordi "E20" "workload.queries" (List.length Tpch.Queries.all);
  record "E20" "workload.exprs_fold_on" !exprs_on;
  record "E20" "workload.exprs_fold_off" !exprs_off;
  record "E20" "workload.compile_ms_fold_on" !ms_on;
  record "E20" "workload.compile_ms_fold_off" !ms_off;
  Printf.printf
    "identical plans: %d/%d; exprs enumerated %.0f (on) vs %.0f (off);\n\
     compile %.1f ms (on) vs %.1f ms (off)\n\n"
    !identical (List.length Tpch.Queries.all) !exprs_on !exprs_off !ms_on !ms_off;
  (* part 2: contradiction-heavy queries the normalizer cannot fold (the
     predicates are satisfiable syntactically; only catalog min/max
     refutes them), so pruning is entirely the analyzer's work *)
  let contras =
    [ ("scan", "SELECT o_orderkey FROM orders WHERE o_totalprice < 0");
      ("join",
       "SELECT o_orderkey FROM orders, customer \
        WHERE o_custkey = c_custkey AND o_totalprice < 0");
      ("agg",
       "SELECT o_orderstatus, COUNT(*) AS c FROM orders \
        WHERE o_totalprice < 0 GROUP BY o_orderstatus");
      ("range",
       "SELECT l_orderkey FROM lineitem WHERE l_quantity > 1000000") ]
  in
  Printf.printf
    "part 2: stats-refuted queries (catalog proves the filter empty)\n\n";
  Printf.printf "%-7s %-11s %-12s %-10s %-10s %-10s %-8s\n" "query"
    "exprs (on)" "exprs (off)" "prune" "ms (on)" "ms (off)" "plan sz";
  List.iter
    (fun (name, sql) ->
       let m1, r1, x1, empty = compile ~fold:true sql in
       let m0, r0, x0, _ = compile ~fold:false sql in
       let reduction = x0 /. Float.max 1. x1 in
       record "E20" (name ^ ".exprs_fold_on") x1;
       record "E20" (name ^ ".exprs_fold_off") x0;
       record "E20" (name ^ ".prune_x") reduction;
       record "E20" (name ^ ".compile_ms_fold_on") m1;
       record "E20" (name ^ ".compile_ms_fold_off") m0;
       record "E20" (name ^ ".empty_groups") empty;
       recordi "E20" (name ^ ".plan_size_fold_on")
         (Pdwopt.Pplan.size (Opdw.plan r1));
       recordi "E20" (name ^ ".plan_size_fold_off")
         (Pdwopt.Pplan.size (Opdw.plan r0));
       rowf "%-7s %-11.0f %-12.0f %-10.1f %-10.2f %-10.2f %d vs %d\n" name x1
         x0 reduction m1 m0
         (Pdwopt.Pplan.size (Opdw.plan r1))
         (Pdwopt.Pplan.size (Opdw.plan r0)))
    contras;
  (* part 3: soundness and tightness of the static bounds against actual
     execution -- every operator's observed cardinality must land inside
     [lo, hi] (the engine's assert-bounds oracle counts violations), and
     the root's hi shows how loose the interval arithmetic gets *)
  Printf.printf
    "\npart 3: static [lo, hi] vs execution (assert-bounds oracle)\n\n";
  Printf.printf "%-7s %-12s %-12s %-12s %-10s\n" "query" "root hi" "observed"
    "tight (x)" "violations";
  let app = w.Opdw.Workload.app in
  let violations_total = ref 0 and tightness = ref [] in
  List.iter
    (fun (q : Tpch.Queries.t) ->
       let r = optimize w q.Tpch.Queries.sql in
       let plan = Opdw.plan r in
       let actx =
         Analysis.context ~shell:w.Opdw.Workload.shell
           ~reg:r.Opdw.memo.Memo.reg ~nodes
       in
       Engine.Appliance.set_bounds app (Some (Analysis.group_bounds actx plan));
       let rows, _, _ = execute w plan in
       let v = app.Engine.Appliance.bound_violations in
       violations_total := !violations_total + v;
       (* hi at the root, clamped by the client TOP if one exists (Return
          nodes are not limit-clamped by the abstract domain) *)
       let hi =
         let _, info =
           List.find
             (fun ((n : Pdwopt.Pplan.t), _) ->
                match n.Pdwopt.Pplan.op with
                | Pdwopt.Pplan.Return _ -> true
                | _ -> false)
             (Analysis.annotate actx plan)
         in
         match plan.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Return { limit = Some l; _ } ->
           Float.min info.Analysis.card_hi (float_of_int l)
         | _ -> info.Analysis.card_hi
       in
       let tight = hi /. Float.max 1. (float_of_int rows) in
       tightness := tight :: !tightness;
       record "E20" (q.Tpch.Queries.id ^ ".root_hi") hi;
       recordi "E20" (q.Tpch.Queries.id ^ ".observed") rows;
       record "E20" (q.Tpch.Queries.id ^ ".tightness_x") tight;
       recordi "E20" (q.Tpch.Queries.id ^ ".bound_violations") v;
       rowf "%-7s %-12.4g %-12d %-12.3g %-10d\n" q.Tpch.Queries.id hi rows
         tight v)
    Tpch.Queries.all;
  Engine.Appliance.set_bounds app None;
  recordi "E20" "bound_violations_total" !violations_total;
  record "E20" "tightness_geomean_x" (geomean !tightness);
  Printf.printf
    "\nbound violations across the workload: %d (soundness); geomean root\n\
     tightness %.2fx (static hi over observed rows, TOP-clamped)\n"
    !violations_total (geomean !tightness)

(* ------------------------------------------------------------------ *)
(* E21: feedback-driven calibration -- model error before/after, and   *)
(* the LKG plan store's regression fallback                            *)
(* ------------------------------------------------------------------ *)

let e21 () =
  section "E21"
    "Feedback calibration: model-error reduction and LKG regression fallback";
  let nodes = 8 and sf = 0.005 in
  (* fresh workloads: calibration rewrites catalog statistics and the
     regression scenario corrupts them, neither may leak into the shared
     workload cache used by the other experiments *)
  let fresh () = Opdw.Workload.tpch ~node_count:nodes ~sf () in

  (* -- part A: one feedback pass over the whole workload -- *)
  let w = fresh () in
  let shell = w.Opdw.Workload.shell and app = w.Opdw.Workload.app in
  let fb = Opdw.Feedback.create w.Opdw.Workload.shell app in
  let err (oc : Opdw.Feedback.run_outcome) =
    Opdw.Feedback.model_error oc.Opdw.Feedback.res
      ~dms_time:oc.Opdw.Feedback.observed_dms
  in
  let measure ~bounds q =
    if bounds then begin
      (* R11 soundness gate for the refined statistics: executed row
         counts must stay inside the analyzer's static bounds *)
      let r =
        Opdw.optimize ~options:(Opdw.Feedback.options fb)
          ~cache:(Opdw.Feedback.plan_cache fb)
          ~calibration:(Opdw.Feedback.epoch fb) shell q.Tpch.Queries.sql
      in
      let actx =
        Analysis.context ~shell ~reg:r.Opdw.memo.Memo.reg ~nodes
      in
      Engine.Appliance.set_bounds app
        (Some (Analysis.group_bounds actx (Opdw.plan r)))
    end;
    let e = err (Opdw.Feedback.run fb q.Tpch.Queries.sql) in
    let v = if bounds then app.Engine.Appliance.bound_violations else 0 in
    if bounds then Engine.Appliance.set_bounds app None;
    (e, v)
  in
  let before = List.map (fun q -> fst (measure ~bounds:false q)) Tpch.Queries.all in
  let cal = Opdw.Feedback.calibrate fb in
  let after_v = List.map (measure ~bounds:true) Tpch.Queries.all in
  let after = List.map fst after_v in
  let violations = List.fold_left (fun a (_, v) -> a + v) 0 after_v in
  rowf "%-7s %-14s %-14s\n" "query" "err(before)" "err(after)";
  List.iteri
    (fun i q ->
       let b = List.nth before i and a = List.nth after i in
       record "E21" (q.Tpch.Queries.id ^ ".error_before") b;
       record "E21" (q.Tpch.Queries.id ^ ".error_after") a;
       rowf "%-7s %-14.4g %-14.4g\n" q.Tpch.Queries.id b a)
    Tpch.Queries.all;
  let gb = geomean before and ga = geomean after in
  record "E21" "geomean_error_before" gb;
  record "E21" "geomean_error_after" ga;
  record "E21" "improvement_x" (gb /. ga);
  recordi "E21" "refined_columns" (List.length cal.Opdw.Feedback.refined);
  recordi "E21" "bound_violations" violations;
  List.iter
    (fun (f : Opdw.Feedback.Lambda.fit) ->
       record "E21"
         ("lambda." ^ Dms.Calibrate.component_name f.Opdw.Feedback.Lambda.f_component)
         f.Opdw.Feedback.Lambda.f_lambda)
    cal.Opdw.Feedback.fits;
  Printf.printf
    "\ngeomean model-vs-sim error: %.4g -> %.4g (%.1fx better) after one\n\
     feedback pass; %d columns refined; %d bound violations post-refinement\n"
    gb ga (gb /. ga) (List.length cal.Opdw.Feedback.refined) violations;

  (* -- part B: adversarial stats skew, LKG fallback bounds the damage -- *)
  let w = fresh () in
  let shell = w.Opdw.Workload.shell in
  let fb = Opdw.Feedback.create shell w.Opdw.Workload.app in
  let sql = query "Q3" in
  let oc1 = Opdw.Feedback.run fb sql in
  let tbl = Catalog.Shell_db.find_exn shell "lineitem" in
  Catalog.Shell_db.set_stats shell "lineitem"
    { tbl.Catalog.Shell_db.stats with Catalog.Tbl_stats.row_count = 10. };
  let oracle = Engine.Local.canonical oc1.Opdw.Feedback.rows in
  let matched = ref 1 and recover_round = ref 0 in
  Printf.printf
    "\nregression scenario (Q3, lineitem stats corrupted after round 1):\n";
  let describe i (oc : Opdw.Feedback.run_outcome) =
    rowf "round %d: %-13s sim %.4gs%s\n" i
      (Opdw.Feedback.Store.outcome_name oc.Opdw.Feedback.store_outcome)
      oc.Opdw.Feedback.observed_sim
      (if oc.Opdw.Feedback.fellback then "  (LKG fallback)" else "")
  in
  describe 1 oc1;
  for i = 2 to 4 do
    let oc = Opdw.Feedback.run fb sql in
    describe i oc;
    if Engine.Local.canonical oc.Opdw.Feedback.rows = oracle then incr matched;
    if oc.Opdw.Feedback.fellback && !recover_round = 0 then recover_round := i
  done;
  let store = Opdw.Feedback.store fb in
  let availability = float_of_int !matched /. 4. in
  recordi "E21" "regression.regressions" (Opdw.Feedback.Store.regressions store);
  recordi "E21" "regression.fallbacks" (Opdw.Feedback.Store.fallbacks store);
  recordi "E21" "regression.recover_round" !recover_round;
  record "E21" "regression.availability" availability;
  Printf.printf
    "availability %.3g (%d/4 rounds returned oracle rows); %d regression(s),\n\
     %d fallback(s); LKG served from round %d\n"
    availability !matched
    (Opdw.Feedback.Store.regressions store)
    (Opdw.Feedback.Store.fallbacks store) !recover_round

let e22 () =
  section "E22"
    "Elastic scale-out: online N->2N grow + advisor re-key, fault-rate sweep";
  let nodes = 4 and grow_to = 8 and sf = 0.005 and storm_len = 16 in
  (* fault-free oracle rows per query id: every answer served during the
     storm — including the ones admitted mid-move — must match exactly *)
  let ow = Opdw.Workload.tpch ~node_count:nodes ~sf () in
  let oracle = Hashtbl.create 16 in
  List.iter
    (fun (q : Tpch.Queries.t) ->
       let r = Opdw.optimize ow.Opdw.Workload.shell q.Tpch.Queries.sql in
       Hashtbl.replace oracle q.Tpch.Queries.id
         (Engine.Local.canonical (Opdw.run ow.Opdw.Workload.app r)))
    Tpch.Queries.all;
  let bundle = Array.of_list Tpch.Queries.all in
  (* observed (not modelled) DMS bytes of one clean execution of [sql] *)
  let observed_bytes (app : Engine.Appliance.t) sql =
    let before = app.Engine.Appliance.account.Engine.Appliance.bytes_moved in
    let r = Opdw.optimize app.Engine.Appliance.shell sql in
    ignore (Opdw.run app r);
    app.Engine.Appliance.account.Engine.Appliance.bytes_moved -. before
  in
  rowf "%-6s %-6s %-13s %-8s %-8s %-14s %-14s\n" "rate" "seed" "avail" "moves"
    "aborted" "move-sim-s" "dms-reduction";
  let worst_avail = ref 1.0 and reductions = ref [] in
  List.iter
    (fun rate ->
       List.iter
         (fun seed ->
            (* fresh workloads: moves replace the appliance and re-key the
               catalog, neither may leak into the shared workload cache *)
            let w = Opdw.Workload.tpch ~node_count:nodes ~sf () in
            let app = w.Opdw.Workload.app in
            let obs = Obs.create () in
            let el =
              Topology.Elastic.create ~cache:(Opdw.cache ())
                ~fault:(Fault.seeded ~seed ~rate ()) w.Opdw.Workload.shell app
            in
            let storm =
              Topology.Zipf.storm ~seed ~length:storm_len (Array.length bundle)
              |> List.map (fun k -> bundle.(k))
            in
            let queue = ref storm and served = ref 0 and matched = ref 0 in
            let serve_one () =
              match !queue with
              | [] -> ()
              | q :: rest ->
                queue := rest;
                let _, rows = Topology.Elastic.run ~obs el q.Tpch.Queries.sql in
                incr served;
                if Engine.Local.canonical rows = Hashtbl.find oracle q.Tpch.Queries.id
                then incr matched
            in
            (* half the storm builds the advisor's log, then the appliance
               doubles and re-keys online while the rest keeps serving *)
            for _ = 1 to storm_len / 2 do serve_one () done;
            Topology.Elastic.grow ~obs ~between:serve_one el ~nodes:grow_to;
            let advice = Topology.Elastic.advise el in
            Topology.Elastic.apply ~obs ~between:serve_one el advice;
            while !queue <> [] do serve_one () done;
            let avail = float_of_int !matched /. float_of_int (max 1 !served) in
            if avail < !worst_avail then worst_avail := avail;
            (* observed post-move DMS volume of the storm's head queries vs a
               frozen-key control grown to the same width *)
            let control = Opdw.Workload.tpch ~node_count:grow_to ~sf () in
            let head = [ bundle.(0); bundle.(1) ] in
            let reduction =
              geomean
                (List.map
                   (fun (q : Tpch.Queries.t) ->
                      let frozen =
                        observed_bytes control.Opdw.Workload.app q.Tpch.Queries.sql
                      in
                      let moved =
                        observed_bytes (Topology.Elastic.app el) q.Tpch.Queries.sql
                      in
                      if moved > 0. then frozen /. moved else 1.)
                   head)
            in
            reductions := reduction :: !reductions;
            let move_sim = Obs.counter obs "topology.move_seconds" in
            let applied = Obs.counter obs "topology.applied_moves" in
            let aborted = Obs.counter obs "topology.aborted_moves" in
            let tag = Printf.sprintf "rate%g.seed%d" rate seed in
            record "E22" (tag ^ ".availability") avail;
            record "E22" (tag ^ ".applied_moves") applied;
            record "E22" (tag ^ ".aborted_moves") aborted;
            record "E22" (tag ^ ".move_sim_seconds") move_sim;
            record "E22" (tag ^ ".modelled_cost_frozen") advice.Topology.Advisor.a_baseline;
            record "E22" (tag ^ ".modelled_cost_moved") advice.Topology.Advisor.a_proposed;
            record "E22" (tag ^ ".observed_dms_reduction_x") reduction;
            recordi "E22" (tag ^ ".final_nodes") (Topology.Elastic.nodes el);
            rowf "%-6g %-6d %-13.3f %-8g %-8g %-14.4g %.3gx\n" rate seed avail
              applied aborted move_sim reduction)
         [ 1; 2; 3 ])
    [ 0.; 0.05; 0.1 ];
  let g = geomean !reductions in
  record "E22" "worst_availability" !worst_avail;
  record "E22" "geomean_observed_dms_reduction_x" g;
  Printf.printf
    "\nworst availability %.3f across the sweep (1.0 = every answer\n\
     oracle-equal, including statements admitted mid-move); post-move head\n\
     queries move %.3gx less observed DMS volume than a frozen-key appliance\n\
     at the same width\n"
    !worst_avail g

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  let lambdas = e5 () in
  e6 lambdas;
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  e21 ();
  e22 ()

let by_id = function
  | "E1" -> e1 ()
  | "E2" -> e2 ()
  | "E3" -> e3 ()
  | "E4" -> e4 ()
  | "E5" -> ignore (e5 ())
  | "E6" -> e6 (calibrate_lambdas ~nodes:8 |> fst)
  | "E7" -> e7 ()
  | "E8" -> e8 ()
  | "E9" -> e9 ()
  | "E10" -> e10 ()
  | "E11" -> e11 ()
  | "E12" -> e12 ()
  | "E13" -> e13 ()
  | "E14" -> e14 ()
  | "E15" -> e15 ()
  | "E16" -> e16 ()
  | "E17" -> e17 ()
  | "E18" -> e18 ()
  | "E19" -> e19 ()
  | "E20" -> e20 ()
  | "E21" -> e21 ()
  | "E22" -> e22 ()
  | id -> Printf.printf "unknown experiment %s (E1..E22)\n" id
