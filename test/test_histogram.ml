(* Histograms and statistics: build, estimate, merge (shell-db §2.2). *)

open Catalog

let t name f = Alcotest.test_case name `Quick f
let checkf = Alcotest.(check (float 1e-6))
let check_in name lo hi x =
  Alcotest.(check bool) (Printf.sprintf "%s: %g in [%g, %g]" name x lo hi) true
    (x >= lo && x <= hi)

let ints l = List.map (fun i -> Value.Int i) l

let uniform n = List.init n (fun i -> Value.Int (i mod 100))

let test_build_totals () =
  let h = Histogram.build (ints [ 1; 2; 3; 4; 5 ] @ [ Value.Null ]) in
  checkf "total rows" 6. (Histogram.total_rows h);
  checkf "non-null" 5. (Histogram.non_null_rows h)

let test_eq_estimate () =
  let h = Histogram.build ~nbuckets:8 (uniform 1000) in
  (* 10 rows per distinct value *)
  check_in "rows_eq" 5. 25. (Histogram.rows_eq h (Value.Int 42))

let test_range_estimate () =
  let h = Histogram.build ~nbuckets:16 (uniform 1000) in
  check_in "rows_le 49" 400. 600. (Histogram.rows_le h (Value.Int 49));
  check_in "rows_ge 50" 400. 600. (Histogram.rows_ge h (Value.Int 50));
  checkf "rows_le max" 1000. (Histogram.rows_le h (Value.Int 99));
  checkf "rows_ge above max" 0. (Histogram.rows_ge ~strict:true h (Value.Int 99))

let test_min_max () =
  let h = Histogram.build (ints [ 5; 3; 9; 1 ]) in
  Alcotest.(check bool) "min" true (Histogram.min_value h = Some (Value.Int 1));
  Alcotest.(check bool) "max" true (Histogram.max_value h = Some (Value.Int 9))

let test_merge_preserves_mass () =
  let h1 = Histogram.build (uniform 500) in
  let h2 = Histogram.build (ints (List.init 300 (fun i -> 200 + i))) in
  let m = Histogram.merge [ h1; h2 ] in
  check_in "merged total" 799. 801. (Histogram.total_rows m)

let test_merge_estimates () =
  (* two disjoint per-node shards of a uniform 0..99 column *)
  let shard lo = ints (List.init 500 (fun i -> lo + (i mod 50))) in
  let h1 = Histogram.build (shard 0) and h2 = Histogram.build (shard 50) in
  let m = Histogram.merge [ h1; h2 ] in
  check_in "global eq estimate" 3. 30. (Histogram.rows_eq m (Value.Int 75));
  check_in "global range" 400. 600. (Histogram.rows_le m (Value.Int 49))

let test_empty_merge () =
  let m = Histogram.merge [] in
  checkf "empty" 0. (Histogram.total_rows m)

let test_col_stats_of_values () =
  let s = Col_stats.of_values (ints [ 1; 1; 2; 3 ] @ [ Value.Null ]) in
  check_in "ndv" 2.5 3.5 s.Col_stats.ndv;
  check_in "null_frac" 0.19 0.21 s.Col_stats.null_frac

(* -- feedback-driven refinement (Histogram.refine / Col_stats.refine) -- *)

let test_refine_empty_obs () =
  let h = Histogram.build (uniform 1000) in
  let r = Histogram.refine h [] in
  Alcotest.(check bool) "identity on empty observations" true (r == h)

let test_refine_all_null_obs () =
  let h = Histogram.build (ints [ 1; 2; 3 ]) in
  let r = Histogram.refine h [ Value.Null; Value.Null ] in
  Alcotest.(check bool) "identity on all-null observations" true (r == h)

let test_refine_widens_only () =
  (* observed values span a narrower range than the original statistics:
     the refined bounds must still cover the originals, so static analysis
     bounds (R11) derived before the refresh stay sound *)
  let h = Histogram.build (ints (List.init 100 Fun.id)) in
  let r = Histogram.refine h (ints [ 40; 41; 42 ]) in
  Alcotest.(check bool) "min kept" true (Histogram.min_value r = Some (Value.Int 0));
  Alcotest.(check bool) "max kept" true (Histogram.max_value r = Some (Value.Int 99));
  (* and out-of-range observations widen outward *)
  let r2 = Histogram.refine h (ints [ -5; 50; 200 ]) in
  Alcotest.(check bool) "min widened" true
    (Histogram.min_value r2 = Some (Value.Int (-5)));
  Alcotest.(check bool) "max widened" true
    (Histogram.max_value r2 = Some (Value.Int 200))

let test_refine_idempotent () =
  let h = Histogram.build (uniform 1000) in
  let obs = ints (List.init 500 (fun i -> i mod 37)) in
  let r1 = Histogram.refine ~nbuckets:16 h obs in
  let r2 = Histogram.refine ~nbuckets:16 r1 obs in
  Alcotest.(check bool) "refine(refine(h, o), o) = refine(h, o)" true (r1 = r2)

let test_refine_mass_from_observations () =
  (* the refined histogram describes the observed multiset, not the stale
     one: total mass comes from the observations *)
  let h = Histogram.build (uniform 1000) in
  let r = Histogram.refine h (ints (List.init 200 Fun.id)) in
  checkf "observed mass" 200. (Histogram.total_rows r)

let test_col_stats_refine_bounds () =
  let s = Col_stats.of_values (ints [ 0; 50; 99 ]) in
  let r = Col_stats.refine s (ints [ 10; 20; 200 ]) in
  Alcotest.(check bool) "min unions stale" true (r.Col_stats.min_v = Some (Value.Int 0));
  Alcotest.(check bool) "max unions observed" true
    (r.Col_stats.max_v = Some (Value.Int 200));
  let id = Col_stats.refine s [] in
  Alcotest.(check bool) "identity on empty observations" true (id == s)

let test_col_stats_merge () =
  let s1 = Col_stats.of_values (ints [ 1; 2; 3 ]) in
  let s2 = Col_stats.of_values (ints [ 3; 4; 5 ]) in
  let m = Col_stats.merge [ s1; s2 ] in
  Alcotest.(check bool) "min" true (m.Col_stats.min_v = Some (Value.Int 1));
  Alcotest.(check bool) "max" true (m.Col_stats.max_v = Some (Value.Int 5));
  check_in "ndv" 3. 6.5 m.Col_stats.ndv

let test_tbl_stats () =
  let schema =
    Schema.make "t" [ Schema.column "a" Types.Tint; Schema.column "b" Types.Tstring ]
  in
  let rows = List.init 10 (fun i -> [| Value.Int i; Value.String "x" |]) in
  let s = Tbl_stats.of_rows schema rows in
  checkf "row count" 10. (Tbl_stats.row_count s);
  Alcotest.(check bool) "col a present" true (Tbl_stats.col s "a" <> None);
  Alcotest.(check bool) "case-insensitive" true (Tbl_stats.col s "A" <> None)

let test_tbl_stats_merge () =
  let schema = Schema.make "t" [ Schema.column "a" Types.Tint ] in
  let mk lo = Tbl_stats.of_rows schema (List.init 5 (fun i -> [| Value.Int (lo + i) |])) in
  let m = Tbl_stats.merge [ mk 0; mk 5; mk 10 ] in
  checkf "merged rows" 15. (Tbl_stats.row_count m);
  let cs = Option.get (Tbl_stats.col m "a") in
  Alcotest.(check bool) "merged max" true (cs.Col_stats.max_v = Some (Value.Int 14))

(* -- edge cases the analysis layer leans on (empty / single-value /
      all-null / min==max) -- *)

let test_empty_table () =
  let h = Histogram.build [] in
  checkf "total rows" 0. (Histogram.total_rows h);
  checkf "non-null" 0. (Histogram.non_null_rows h);
  Alcotest.(check bool) "no min" true (Histogram.min_value h = None);
  Alcotest.(check bool) "no max" true (Histogram.max_value h = None);
  checkf "rows_eq on empty" 0. (Histogram.rows_eq h (Value.Int 1));
  let s = Col_stats.of_values [] in
  checkf "ndv" 0. s.Col_stats.ndv;
  checkf "null_frac" 0. s.Col_stats.null_frac;
  Alcotest.(check bool) "stats min/max absent" true
    (s.Col_stats.min_v = None && s.Col_stats.max_v = None)

let test_single_value_column () =
  let h = Histogram.build (ints (List.init 50 (fun _ -> 7))) in
  Alcotest.(check bool) "min = max = 7" true
    (Histogram.min_value h = Some (Value.Int 7)
     && Histogram.max_value h = Some (Value.Int 7));
  checkf "all rows at the value" 50. (Histogram.rows_eq h (Value.Int 7));
  checkf "le at the value is total" 50. (Histogram.rows_le h (Value.Int 7));
  checkf "nothing strictly above" 0.
    (Histogram.rows_ge ~strict:true h (Value.Int 7));
  let s = Col_stats.of_values (ints (List.init 50 (fun _ -> 7))) in
  check_in "ndv 1" 0.5 1.5 s.Col_stats.ndv

let test_all_null_column () =
  let h = Histogram.build (List.init 10 (fun _ -> Value.Null)) in
  checkf "total rows" 10. (Histogram.total_rows h);
  checkf "non-null" 0. (Histogram.non_null_rows h);
  Alcotest.(check bool) "no min over nulls" true (Histogram.min_value h = None);
  let s = Col_stats.of_values (List.init 10 (fun _ -> Value.Null)) in
  checkf "null_frac 1" 1. s.Col_stats.null_frac;
  checkf "ndv 0" 0. s.Col_stats.ndv

let test_min_eq_max_buckets () =
  (* one distinct value forced through many buckets: bucket boundaries all
     collapse to [7, 7]; estimates must stay exact, not NaN/0-width *)
  let h = Histogram.build ~nbuckets:16 (ints (List.init 100 (fun _ -> 7))) in
  checkf "rows_eq exact" 100. (Histogram.rows_eq h (Value.Int 7));
  checkf "rows_le below" 0. (Histogram.rows_le h (Value.Int 6));
  checkf "rows_ge above" 0. (Histogram.rows_ge h (Value.Int 8));
  let m = Histogram.merge [ h; Histogram.build (ints [ 7 ]) ] in
  check_in "merge keeps the point mass" 100. 102. (Histogram.rows_eq m (Value.Int 7))

(* properties *)
let arb_ints = QCheck.(list_of_size (Gen.int_range 0 200) (int_range (-50) 50))

let prop_le_monotone =
  QCheck.Test.make ~name:"rows_le monotone in probe" ~count:200
    QCheck.(pair arb_ints (pair (int_range (-60) 60) (int_range (-60) 60)))
    (fun (l, (a, b)) ->
       let h = Histogram.build (ints l) in
       let a, b = (min a b, max a b) in
       Histogram.rows_le h (Value.Int a) <= Histogram.rows_le h (Value.Int b) +. 1e-9)

let prop_mass_conserved =
  QCheck.Test.make ~name:"le + ge = non-null mass" ~count:200
    QCheck.(pair arb_ints (int_range (-60) 60))
    (fun (l, p) ->
       let h = Histogram.build (ints l) in
       let v = Value.Int p in
       let total = Histogram.rows_le h v +. Histogram.rows_ge ~strict:true h v in
       Float.abs (total -. Histogram.non_null_rows h) < 1e-6)

let prop_merge_mass =
  QCheck.Test.make ~name:"merge conserves row mass" ~count:100
    QCheck.(pair arb_ints arb_ints)
    (fun (l1, l2) ->
       let h1 = Histogram.build (ints l1) and h2 = Histogram.build (ints l2) in
       let m = Histogram.merge [ h1; h2 ] in
       Float.abs (Histogram.total_rows m -. float_of_int (List.length l1 + List.length l2))
       < 1.0)

let suite =
  [ t "build totals" test_build_totals;
    t "equality estimate" test_eq_estimate;
    t "range estimate" test_range_estimate;
    t "min/max" test_min_max;
    t "merge preserves mass" test_merge_preserves_mass;
    t "merged estimates" test_merge_estimates;
    t "empty merge" test_empty_merge;
    t "col stats of values" test_col_stats_of_values;
    t "col stats merge" test_col_stats_merge;
    t "table stats" test_tbl_stats;
    t "table stats merge (local->global)" test_tbl_stats_merge;
    t "empty table" test_empty_table;
    t "single-value column" test_single_value_column;
    t "all-null column" test_all_null_column;
    t "min==max buckets" test_min_eq_max_buckets;
    t "refine: empty observations" test_refine_empty_obs;
    t "refine: all-null observations" test_refine_all_null_obs;
    t "refine: widens only" test_refine_widens_only;
    t "refine: idempotent" test_refine_idempotent;
    t "refine: observed mass" test_refine_mass_from_observations;
    t "col stats refine bounds" test_col_stats_refine_bounds;
    QCheck_alcotest.to_alcotest prop_le_monotone;
    QCheck_alcotest.to_alcotest prop_mass_conserved;
    QCheck_alcotest.to_alcotest prop_merge_mass ]
