(* The plan cache: LRU mechanics, fingerprint sensitivity (statistics
   version, knobs, hints, topology), and the two end-to-end properties —
   a cache hit returns plans structurally equal to a fresh optimization,
   and the multicore appliance matches sequential execution exactly. *)

let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ())

(* -- LRU mechanics over a plain int cache -- *)

let test_lru_eviction () =
  let c = Opdw.Plancache.create ~capacity:2 () in
  Alcotest.(check bool) "no evict on first add" false (Opdw.Plancache.add c "a" 1);
  Alcotest.(check bool) "no evict on second add" false (Opdw.Plancache.add c "b" 2);
  (* touching "a" makes "b" the LRU victim *)
  Alcotest.(check (option int)) "a hits" (Some 1) (Opdw.Plancache.find c "a");
  Alcotest.(check bool) "third add evicts" true (Opdw.Plancache.add c "c" 3);
  Alcotest.(check (option int)) "b was evicted" None (Opdw.Plancache.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Opdw.Plancache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Opdw.Plancache.find c "c");
  let s = Opdw.Plancache.stats c in
  Alcotest.(check int) "size" 2 s.Opdw.Plancache.size;
  Alcotest.(check int) "hits" 3 s.Opdw.Plancache.hits;
  Alcotest.(check int) "misses" 1 s.Opdw.Plancache.misses;
  Alcotest.(check int) "evictions" 1 s.Opdw.Plancache.evictions;
  Opdw.Plancache.clear c;
  Alcotest.(check int) "cleared" 0 (Opdw.Plancache.stats c).Opdw.Plancache.size

let test_add_refresh () =
  let c = Opdw.Plancache.create ~capacity:2 () in
  ignore (Opdw.Plancache.add c "a" 1);
  Alcotest.(check bool) "re-add same key refreshes, no evict" false
    (Opdw.Plancache.add c "a" 10);
  Alcotest.(check (option int)) "value replaced" (Some 10) (Opdw.Plancache.find c "a");
  Alcotest.(check int) "size still 1" 1 (Opdw.Plancache.stats c).Opdw.Plancache.size

(* -- fingerprint sensitivity -- *)

let fingerprint_of ?live_nodes ?(serial = Serialopt.Optimizer.default_options)
    ?(pdw = Pdwopt.Enumerate.default_opts) ?(baseline = Baseline.default_opts)
    ?(via_xml = true) ?(seed_collocated = false) shell normalized =
  Opdw.Plancache.fingerprint ?live_nodes ~shell ~serial ~pdw ~baseline ~via_xml
    ~seed_collocated normalized

let test_fingerprint_sensitivity () =
  let w = Lazy.force w in
  let shell = w.Opdw.Workload.shell in
  let r =
    Opdw.optimize shell
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey"
  in
  let tree = r.Opdw.normalized in
  let base = fingerprint_of shell tree in
  Alcotest.(check string) "fingerprint is deterministic" base
    (fingerprint_of shell tree);
  let differs what fp = Alcotest.(check bool) what false (String.equal base fp) in
  differs "node count re-keys"
    (fingerprint_of
       ~pdw:{ Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.nodes = 16 }
       shell tree);
  differs "hints re-key"
    (fingerprint_of
       ~pdw:{ Pdwopt.Enumerate.default_opts with
              Pdwopt.Enumerate.hints = [ ("orders", `Broadcast) ] }
       shell tree);
  differs "serial task budget re-keys"
    (fingerprint_of
       ~serial:{ Serialopt.Optimizer.default_options with
                 Serialopt.Optimizer.task_budget = 7 }
       shell tree);
  differs "lambda constants re-key"
    (fingerprint_of
       ~pdw:{ Pdwopt.Enumerate.default_opts with
              Pdwopt.Enumerate.lambdas =
                { Dms.Cost.default_lambdas with Dms.Cost.l_network = 1e-6 } }
       shell tree);
  differs "seeding flag re-keys" (fingerprint_of ~seed_collocated:true shell tree);
  (* v4: a plan compiled with contradiction-driven folding off must not be
     served when folding is on (and vice versa) *)
  differs "fold_empty analysis knob re-keys"
    (fingerprint_of
       ~pdw:{ Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.fold_empty = false }
       shell tree);
  (* a statistics update bumps the shell's version and must miss *)
  let tbl = Catalog.Shell_db.find_exn shell "orders" in
  Catalog.Shell_db.set_stats shell "orders" tbl.Catalog.Shell_db.stats;
  differs "stats version re-keys" (fingerprint_of shell tree);
  (* a different query tree re-keys even with identical knobs *)
  let r2 =
    Opdw.optimize shell
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey AND c_acctbal > 1000"
  in
  differs "tree re-keys" (fingerprint_of shell r2.Opdw.normalized);
  (* losing a node re-keys: a plan compiled for 4 live nodes must not be
     served after node 3 is decommissioned (compare against a fresh base —
     the stats bump above already moved the original one) *)
  let base2 = fingerprint_of shell tree in
  Alcotest.(check bool) "live-node set re-keys" false
    (String.equal base2 (fingerprint_of ~live_nodes:[ 0; 1; 2 ] shell tree));
  Alcotest.(check string) "explicit full live set == default" base2
    (fingerprint_of ~live_nodes:[ 0; 1; 2; 3 ] shell tree)

let test_cache_hit_counters () =
  let w = Lazy.force w in
  let cache = Opdw.cache () in
  let sql = "SELECT c_nationkey, COUNT(*) AS c FROM customer GROUP BY c_nationkey" in
  ignore (Opdw.optimize ~cache w.Opdw.Workload.shell sql);
  ignore (Opdw.optimize ~cache w.Opdw.Workload.shell sql);
  ignore (Opdw.optimize ~cache w.Opdw.Workload.shell sql);
  let s = Opdw.Plancache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Opdw.Plancache.misses;
  Alcotest.(check int) "two hits" 2 s.Opdw.Plancache.hits

(* -- cache hygiene: rejected plans are evicted, never re-served -- *)

let test_remove_invalid () =
  let c = Opdw.Plancache.create ~capacity:4 () in
  ignore (Opdw.Plancache.add c "a" 1);
  ignore (Opdw.Plancache.add c "b" 2);
  Alcotest.(check bool) "present entry removed" true
    (Opdw.Plancache.remove_invalid c "a");
  Alcotest.(check (option int)) "gone" None (Opdw.Plancache.find c "a");
  Alcotest.(check bool) "absent key is a no-op" false
    (Opdw.Plancache.remove_invalid c "a");
  let s = Opdw.Plancache.stats c in
  Alcotest.(check int) "one invalid eviction" 1 s.Opdw.Plancache.evictions_invalid;
  Alcotest.(check int) "LRU evictions unaffected" 0 s.Opdw.Plancache.evictions;
  Alcotest.(check int) "size shrank" 1 s.Opdw.Plancache.size

let test_run_rejection_evicts () =
  let w = Lazy.force w in
  let shell = w.Opdw.Workload.shell in
  let app = w.Opdw.Workload.app in
  let cache = Opdw.cache () in
  let sql = "SELECT o_custkey, COUNT(*) AS c FROM orders GROUP BY o_custkey" in
  let r = Opdw.optimize ~cache shell sql in
  Alcotest.(check bool) "result carries its cache key" true
    (r.Opdw.fingerprint <> None);
  (* corrupt the cached plan the way a miscompilation would: drop the
     first Move, leaving a distribution-incompatible aggregation *)
  let bad_plan =
    Test_check.mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Move _ -> Some (List.hd n.Pdwopt.Pplan.children)
         | _ -> None)
      (Opdw.plan r)
  in
  let bad = { r with Opdw.pdw = { r.Opdw.pdw with Pdwopt.Optimizer.plan = bad_plan } } in
  Engine.Appliance.reset_account app;
  (match Opdw.run ~cache app bad with
   | _ -> Alcotest.fail "corrupt plan passed the appliance gate"
   | exception Check.Invalid _ -> ());
  let s = Opdw.Plancache.stats cache in
  Alcotest.(check int) "rejected plan evicted" 1 s.Opdw.Plancache.evictions_invalid;
  (* the poisoned entry cannot be re-served: the next optimize is a miss *)
  ignore (Opdw.optimize ~cache shell sql);
  let s = Opdw.Plancache.stats cache in
  Alcotest.(check int) "re-optimize misses" 2 s.Opdw.Plancache.misses;
  Alcotest.(check int) "no hit off the poisoned key" 0 s.Opdw.Plancache.hits

(* -- property: a cache hit is indistinguishable from a fresh optimize -- *)

let render (r : Opdw.result) =
  let reg = r.Opdw.memo.Memo.reg in
  let p = Opdw.plan r in
  (Pdwopt.Pplan.to_string reg p,
   Dms.Distprop.to_string reg p.Pdwopt.Pplan.dist,
   Dsql.Generate.to_string r.Opdw.dsql)

let prop_cache_hit_equals_fresh =
  QCheck.Test.make ~name:"plan-cache hit == fresh optimization" ~count:20
    Test_fuzz.arb_query
    (fun q ->
       let w = Lazy.force w in
       let shell = w.Opdw.Workload.shell in
       let cache = Opdw.cache () in
       let cold = Opdw.optimize ~cache shell q.Test_fuzz.sql in
       let hit = Opdw.optimize ~cache shell q.Test_fuzz.sql in
       let fresh = Opdw.optimize shell q.Test_fuzz.sql in
       let s = Opdw.Plancache.stats cache in
       if s.Opdw.Plancache.hits <> 1 || s.Opdw.Plancache.misses <> 1 then
         QCheck.Test.fail_report ("unexpected hit/miss counts: " ^ q.Test_fuzz.sql);
       if render cold <> render hit then
         QCheck.Test.fail_report ("hit differs from cold: " ^ q.Test_fuzz.sql);
       if render hit <> render fresh then
         QCheck.Test.fail_report ("hit differs from fresh: " ^ q.Test_fuzz.sql);
       true)

(* -- property: the multicore appliance matches sequential execution -- *)

let prop_parallel_execution_identical =
  QCheck.Test.make
    ~name:"appliance jobs=4 == jobs=1 (rows, sim time, byte accounting)"
    ~count:20 Test_fuzz.arb_query
    (fun q ->
       let w = Lazy.force w in
       let app = w.Opdw.Workload.app in
       let r = Opdw.optimize w.Opdw.Workload.shell q.Test_fuzz.sql in
       let cols = List.map snd (Opdw.output_columns r) in
       let run_with pool =
         Engine.Appliance.set_pool app pool;
         Engine.Appliance.reset_account app;
         let res = Opdw.run app r in
         let a = app.Engine.Appliance.account in
         (Engine.Local.canonical ~cols res, a.Engine.Appliance.sim_time,
          a.Engine.Appliance.bytes_moved, a.Engine.Appliance.rows_moved)
       in
       let seq = run_with Par.sequential in
       let pool = Par.create ~jobs:4 () in
       let par =
         Fun.protect
           ~finally:(fun () ->
               Par.shutdown pool;
               Engine.Appliance.set_pool app Par.sequential)
           (fun () -> run_with pool)
       in
       if seq <> par then
         QCheck.Test.fail_report ("parallel execution diverged: " ^ q.Test_fuzz.sql);
       true)

let suite =
  [ Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "add refreshes existing key" `Quick test_add_refresh;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "hit/miss counters" `Quick test_cache_hit_counters;
    Alcotest.test_case "remove_invalid evicts and counts" `Quick test_remove_invalid;
    Alcotest.test_case "appliance rejection evicts the cache entry" `Quick
      test_run_rejection_evicts;
    QCheck_alcotest.to_alcotest prop_cache_hit_equals_fresh;
    QCheck_alcotest.to_alcotest prop_parallel_execution_identical ]
