let () =
  Alcotest.run "opdw"
    [ ("obs", Test_obs.suite);
      ("value", Test_value.suite);
      ("histogram", Test_histogram.suite);
      ("parser", Test_parser.suite);
      ("expr", Test_expr.suite);
      ("algebrizer", Test_algebrizer.suite);
      ("normalize", Test_normalize.suite);
      ("cardinality", Test_cardinality.suite);
      ("memo", Test_memo.suite);
      ("serialopt", Test_serialopt.suite);
      ("dms", Test_dms.suite);
      ("pdwopt", Test_pdwopt.suite);
      ("dsql", Test_dsql.suite);
      ("dsql_exec", Test_dsql_exec.suite);
      ("engine", Test_engine.suite);
      ("columnar", Test_columnar.suite);
      ("baseline", Test_baseline.suite);
      ("tpch", Test_tpch.suite);
      ("check", Test_check.suite);
      ("union", Test_union.suite);
      ("hints", Test_hints.suite);
      ("e2e", Test_e2e.suite);
      ("fuzz", Test_fuzz.suite);
      ("par", Test_par.suite);
      ("plancache", Test_plancache.suite);
      ("fault", Test_fault.suite);
      ("governor", Test_governor.suite);
      ("analysis", Test_analysis.suite);
      ("feedback", Test_feedback.suite);
      ("topology", Test_topology.suite) ]
