(* Lexer and parser for the SQL subset. *)

open Sqlfront

let t name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let string_ = Alcotest.string

let parses sql = ignore (Parser.parse sql)

let roundtrip sql =
  (* parse -> print -> parse -> print must be a fixpoint *)
  let q1 = Parser.parse sql in
  let s1 = Printer.to_string q1 in
  let q2 = Parser.parse s1 in
  let s2 = Printer.to_string q2 in
  check string_ ("round trip: " ^ sql) s1 s2

let test_lexer_basic () =
  let toks = Lexer.tokenize "SELECT a.b, 'it''s', 1.5e2 FROM [x]" |> List.map fst in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
   | Lexer.KW "SELECT" :: Lexer.IDENT "a" :: Lexer.DOT :: Lexer.IDENT "b" :: Lexer.COMMA
     :: Lexer.STRING "it's" :: Lexer.COMMA :: Lexer.FLOAT f :: Lexer.KW "FROM"
     :: Lexer.IDENT "x" :: [ Lexer.EOF ] ->
     Alcotest.(check (float 1e-9)) "float" 150.0 f
   | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_comments () =
  let toks = Lexer.tokenize "SELECT -- comment\n 1" |> List.map fst in
  Alcotest.(check int) "comment skipped" 3 (List.length toks)

let test_lexer_operators () =
  let toks = Lexer.tokenize "<> != <= >= < > =" |> List.map fst in
  Alcotest.(check bool) "ops" true
    (toks = Lexer.[ NE; NE; LE; GE; LT; GT; EQ; EOF ])

let test_lexer_error () =
  Alcotest.check_raises "unterminated string" (Lexer.Lex_error ("unterminated string literal", 7))
    (fun () -> ignore (Lexer.tokenize "SELECT 'oops"))

let test_parse_simple () =
  let q = Parser.parse "SELECT a, b AS c FROM t WHERE x > 5" in
  Alcotest.(check int) "select items" 2 (List.length q.Ast.select);
  Alcotest.(check bool) "has where" true (q.Ast.where <> None)

let test_parse_joins () =
  let q = Parser.parse
      "SELECT * FROM a INNER JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z"
  in
  match q.Ast.from with
  | [ Ast.Tref_join { kind = Ast.Jleft; left = Ast.Tref_join { kind = Ast.Jinner; _ }; _ } ] ->
    ()
  | _ -> Alcotest.fail "join tree shape"

let test_parse_subqueries () =
  let q = Parser.parse
      "SELECT a FROM t WHERE x IN (SELECT y FROM u) AND EXISTS (SELECT z FROM v) \
       AND p > (SELECT MAX(q) FROM w)"
  in
  match q.Ast.where with
  | Some w ->
    let conjs = Ast.conjuncts w in
    Alcotest.(check int) "three conjuncts" 3 (List.length conjs)
  | None -> Alcotest.fail "no where"

let test_parse_top_order () =
  let q = Parser.parse "SELECT TOP 10 a FROM t ORDER BY a DESC, b" in
  Alcotest.(check (option int)) "top" (Some 10) q.Ast.top;
  match q.Ast.order_by with
  | [ (_, Ast.Desc); (_, Ast.Asc) ] -> ()
  | _ -> Alcotest.fail "order dirs"

let test_parse_case () =
  let q = Parser.parse "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t" in
  match q.Ast.select with
  | [ Ast.Sel_expr (Ast.Case { branches = [ _ ]; else_ = Some _ }, _) ] -> ()
  | _ -> Alcotest.fail "case shape"

let test_parse_between_not () =
  let q = Parser.parse "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (1, 2)" in
  match Option.map Ast.conjuncts q.Ast.where with
  | Some [ Ast.Between { negated = true; _ }; Ast.In_list { negated = true; _ } ] -> ()
  | _ -> Alcotest.fail "negated predicates"

let test_parse_dateadd () =
  parses "SELECT DATEADD(year, 1, '1994-01-01') FROM t";
  parses "SELECT a FROM t WHERE d < DATEADD(month, -3, '1993-10-01')"

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  (match e with
   | Ast.Bin (Ast.Add, Ast.Lit (Catalog.Value.Int 1), Ast.Bin (Ast.Mul, _, _)) -> ()
   | _ -> Alcotest.fail "mul binds tighter");
  let e = Parser.parse_expr_string "a = 1 OR b = 2 AND c = 3" in
  (match e with
   | Ast.Bin (Ast.Or, _, Ast.Bin (Ast.And, _, _)) -> ()
   | _ -> Alcotest.fail "and binds tighter than or")

let test_parse_qualified_names () =
  let q = Parser.parse "SELECT t.a FROM [tpch].[dbo].[lineitem] t" in
  match q.Ast.from with
  | [ Ast.Tref_table { name = "lineitem"; alias = Some "t" } ] -> ()
  | _ -> Alcotest.fail "qualified name"

let test_parse_errors () =
  let fails sql =
    match Parser.parse sql with
    | exception Parser.Parse_error _ -> ()
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ sql)
  in
  fails "SELECT";
  fails "SELECT a FROM";
  fails "SELECT a FROM t WHERE";
  fails "SELECT a FROM t GROUP a";
  fails "SELECT a FROM t extra garbage here ,,"

let test_roundtrips () =
  List.iter roundtrip
    [ "SELECT a, b + 1 AS c FROM t WHERE x > 5 AND y LIKE 'a%'";
      "SELECT COUNT(*), SUM(DISTINCT x) FROM t GROUP BY g HAVING COUNT(*) > 2";
      "SELECT TOP 5 * FROM a, b WHERE a.x = b.y ORDER BY a.x DESC";
      "SELECT a FROM t WHERE x IN (1, 2, 3) AND y IS NOT NULL";
      "SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END AS s FROM t" ]

let test_all_tpch_parse () =
  List.iter (fun q -> parses q.Tpch.Queries.sql) Tpch.Queries.all

let suite =
  [ t "lexer basics" test_lexer_basic;
    t "lexer comments" test_lexer_comments;
    t "lexer operators" test_lexer_operators;
    t "lexer error" test_lexer_error;
    t "simple select" test_parse_simple;
    t "join trees" test_parse_joins;
    t "subquery predicates" test_parse_subqueries;
    t "top/order by" test_parse_top_order;
    t "case expression" test_parse_case;
    t "negated between/in" test_parse_between_not;
    t "dateadd" test_parse_dateadd;
    t "operator precedence" test_parse_precedence;
    t "bracket-qualified names" test_parse_qualified_names;
    t "parse errors" test_parse_errors;
    t "print/parse round trips" test_roundtrips;
    t "all TPC-H queries parse" test_all_tpch_parse ]
