(* Scalar expression evaluation: three-valued logic, arithmetic, LIKE,
   CASE, functions, casts. *)

open Algebra
open Catalog

let t name f = Alcotest.test_case name `Quick f

let ev ?(env = fun _ -> Value.Null) e = Expr.eval env e
let vbool b = Value.Bool b
let check_v name expected actual =
  Alcotest.(check bool) name true (Value.equal expected actual || (Value.is_null expected && Value.is_null actual))

let lit v = Expr.Lit v
let i n = lit (Value.Int n)
let f x = lit (Value.Float x)
let s x = lit (Value.String x)

let test_arith () =
  check_v "1+2" (Value.Int 3) (ev (Expr.Bin (Expr.Add, i 1, i 2)));
  check_v "1+2.5" (Value.Float 3.5) (ev (Expr.Bin (Expr.Add, i 1, f 2.5)));
  check_v "7/2 is float" (Value.Float 3.5) (ev (Expr.Bin (Expr.Div, i 7, i 2)));
  check_v "div by zero -> NULL" Value.Null (ev (Expr.Bin (Expr.Div, i 1, i 0)));
  check_v "mod" (Value.Int 1) (ev (Expr.Bin (Expr.Mod, i 7, i 2)))

let test_null_propagation () =
  check_v "null + 1" Value.Null (ev (Expr.Bin (Expr.Add, lit Value.Null, i 1)));
  check_v "null = 1 -> unknown" Value.Null (ev (Expr.Bin (Expr.Eq, lit Value.Null, i 1)));
  check_v "null and false -> false" (vbool false)
    (ev (Expr.Bin (Expr.And, lit Value.Null, lit (Value.Bool false))));
  check_v "null and true -> unknown" Value.Null
    (ev (Expr.Bin (Expr.And, lit Value.Null, lit (Value.Bool true))));
  check_v "null or true -> true" (vbool true)
    (ev (Expr.Bin (Expr.Or, lit Value.Null, lit (Value.Bool true))))

let test_comparison () =
  check_v "2 < 3" (vbool true) (ev (Expr.Bin (Expr.Lt, i 2, i 3)));
  check_v "mixed int/float" (vbool true) (ev (Expr.Bin (Expr.Le, i 2, f 2.0)));
  check_v "string compare" (vbool true) (ev (Expr.Bin (Expr.Lt, s "abc", s "abd")))

let test_like () =
  let like pat x = ev (Expr.Like (s x, pat, false)) in
  check_v "prefix" (vbool true) (like "fo%" "forest");
  check_v "prefix miss" (vbool false) (like "fo%" "oak");
  check_v "underscore" (vbool true) (like "f_rest" "forest");
  check_v "infix" (vbool true) (like "%res%" "forest");
  check_v "double pattern" (vbool true) (like "%Customer%Complaints%" "x Customer y Complaints z");
  check_v "anchored end" (vbool false) (like "%BRASS" "BRASS STEEL");
  check_v "null input" Value.Null (ev (Expr.Like (lit Value.Null, "a%", false)))

let test_in_list () =
  check_v "in hit" (vbool true) (ev (Expr.In_list (i 2, [ Value.Int 1; Value.Int 2 ], false)));
  check_v "in miss" (vbool false) (ev (Expr.In_list (i 9, [ Value.Int 1 ], false)));
  check_v "not in with null item -> unknown" Value.Null
    (ev (Expr.In_list (i 9, [ Value.Int 1; Value.Null ], true)));
  check_v "in with null item, hit" (vbool true)
    (ev (Expr.In_list (i 1, [ Value.Int 1; Value.Null ], false)))

let test_case () =
  let e =
    Expr.Case
      ( [ (Expr.Bin (Expr.Gt, i 1, i 2), s "a"); (Expr.Bin (Expr.Lt, i 1, i 2), s "b") ],
        Some (s "c") )
  in
  check_v "case picks second" (Value.String "b") (ev e);
  let no_else = Expr.Case ([ (Expr.Bin (Expr.Gt, i 1, i 2), s "a") ], None) in
  check_v "no else -> null" Value.Null (ev no_else)

let test_functions () =
  let d = Value.days_from_civil ~y:1994 ~m:1 ~d:1 in
  check_v "dateadd year" (Value.Date (Value.days_from_civil ~y:1995 ~m:1 ~d:1))
    (ev (Expr.Func (Expr.F_dateadd_year, [ i 1; lit (Value.Date d) ])));
  check_v "year()" (Value.Int 1994) (ev (Expr.Func (Expr.F_year, [ lit (Value.Date d) ])));
  check_v "substring" (Value.String "ore")
    (ev (Expr.Func (Expr.F_substring, [ s "forest"; i 2; i 3 ])));
  check_v "substring out of range" (Value.String "st")
    (ev (Expr.Func (Expr.F_substring, [ s "forest"; i 5; i 99 ])));
  check_v "abs" (Value.Int 5) (ev (Expr.Func (Expr.F_abs, [ i (-5) ])))

let test_cast () =
  check_v "int->float" (Value.Float 3.) (ev (Expr.Cast (i 3, Types.Tfloat)));
  check_v "string->date"
    (Value.Date (Value.days_from_civil ~y:1994 ~m:1 ~d:1))
    (ev (Expr.Cast (s "1994-01-01", Types.Tdate)));
  check_v "float->int truncates" (Value.Int 3) (ev (Expr.Cast (f 3.9, Types.Tint)));
  check_v "null survives" Value.Null (ev (Expr.Cast (lit Value.Null, Types.Tint)))

let test_cols_and_rename () =
  let e = Expr.Bin (Expr.Add, Expr.Col 1, Expr.Bin (Expr.Mul, Expr.Col 2, Expr.Col 1)) in
  Alcotest.(check (list int)) "cols" [ 1; 2 ]
    (Registry.Col_set.elements (Expr.cols e));
  let renamed = Expr.rename (Registry.Col_map.singleton 1 10) e in
  Alcotest.(check (list int)) "renamed" [ 2; 10 ]
    (Registry.Col_set.elements (Expr.cols renamed))

let test_conjuncts () =
  let a = Expr.Bin (Expr.Gt, Expr.Col 0, i 1) in
  let b = Expr.Bin (Expr.Lt, Expr.Col 1, i 2) in
  let c = Expr.Bin (Expr.Eq, Expr.Col 2, i 3) in
  let e = Expr.and_ (Expr.and_ a b) c in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Expr.conjuncts e));
  Alcotest.(check bool) "conjoin round trip" true
    (Expr.conjuncts (Expr.conjoin [ a; b; c ]) = [ a; b; c ])

(* LIKE against a reference regex-free implementation *)
let prop_like_vs_naive =
  let naive pattern str =
    (* translate to an anchor-based matcher via Str-free recursion *)
    let np = String.length pattern and ns = String.length str in
    let rec m pi si =
      if pi >= np then si >= ns
      else
        match pattern.[pi] with
        | '%' ->
          let rec try_skip k = k <= ns && (m (pi + 1) k || try_skip (k + 1)) in
          try_skip si
        | '_' -> si < ns && m (pi + 1) (si + 1)
        | c -> si < ns && str.[si] = c && m (pi + 1) (si + 1)
    in
    m 0 0
  in
  let gen_pat =
    QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_range 0 6))
  in
  let gen_str = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 8)) in
  QCheck.Test.make ~name:"LIKE matches reference implementation" ~count:1000
    (QCheck.make QCheck.Gen.(pair gen_pat gen_str))
    (fun (pattern, str) -> Expr.like_match ~pattern str = naive pattern str)

let suite =
  [ t "arithmetic" test_arith;
    t "null propagation (3VL)" test_null_propagation;
    t "comparisons" test_comparison;
    t "LIKE" test_like;
    t "IN list" test_in_list;
    t "CASE" test_case;
    t "functions" test_functions;
    t "CAST" test_cast;
    t "cols and rename" test_cols_and_rename;
    t "conjuncts/conjoin" test_conjuncts;
    QCheck_alcotest.to_alcotest prop_like_vs_naive ]
