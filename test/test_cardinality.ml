(* Cardinality estimation against the shell statistics (paper Fig. 2, 2c). *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let estimate sql =
  let sh = Fixtures.shell () in
  let r = Algebra.Algebrizer.of_sql sh sql in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  let env = { Cardinality.reg = r.Algebrizer.reg; shell = sh } in
  (Cardinality.of_tree env tr).Cardinality.card

let actual sql =
  let w = Lazy.force Fixtures.tpch_workload in
  let r = Opdw.optimize w.Opdw.Workload.shell sql in
  let res = Opdw.run w.Opdw.Workload.app r in
  float_of_int (List.length res.Engine.Local.rows)

let q_error est act =
  let est = Float.max est 1. and act = Float.max act 1. in
  Float.max (est /. act) (act /. est)

let check_q name sql bound =
  let e = estimate sql and a = actual sql in
  let q = q_error e a in
  Alcotest.(check bool)
    (Printf.sprintf "%s: q-error %.1f (est %.0f vs actual %.0f) <= %.0f" name q e a bound)
    true (q <= bound)

let test_base_table () = check_q "full scan" "SELECT o_orderkey FROM orders" 1.1

let test_range_filter () =
  check_q "date range"
    "SELECT o_orderkey FROM orders WHERE o_orderdate >= '1994-01-01' \
     AND o_orderdate < '1995-01-01'" 3.0

let test_equality_filter () =
  check_q "segment equality"
    "SELECT c_custkey FROM customer WHERE c_mktsegment = 'BUILDING'" 2.5

let test_like_prefix () =
  check_q "LIKE prefix" "SELECT p_partkey FROM part WHERE p_name LIKE 'forest%'" 12.0

let test_fk_join () =
  check_q "FK join"
    "SELECT o_orderkey, l_linenumber FROM orders, lineitem WHERE o_orderkey = l_orderkey" 2.0

let test_group_by () =
  check_q "group by custkey" "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey" 4.0

let test_selective_conjunction () =
  check_q "two filters"
    "SELECT o_orderkey FROM orders WHERE o_totalprice > 200000 \
     AND o_orderdate >= '1996-01-01'" 4.0

let test_estimates_monotone () =
  let base = estimate "SELECT o_orderkey FROM orders" in
  let filtered = estimate "SELECT o_orderkey FROM orders WHERE o_totalprice > 300000" in
  Alcotest.(check bool) "filter shrinks estimate" true (filtered < base)

let test_semi_join_bounded_by_left () =
  let left = estimate "SELECT c_custkey FROM customer" in
  let semi =
    estimate "SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)"
  in
  Alcotest.(check bool) "semi <= left" true (semi <= left +. 1e-9)

let test_empty_is_zero () =
  Alcotest.(check (float 0.)) "contradiction" 0.
    (estimate "SELECT c_custkey FROM customer WHERE 1 = 0")

let suite =
  [ t "base table exact" test_base_table;
    t "date range filter" test_range_filter;
    t "equality filter" test_equality_filter;
    t "LIKE prefix via histogram" test_like_prefix;
    t "FK join" test_fk_join;
    t "group-by NDV" test_group_by;
    t "conjunctive filters" test_selective_conjunction;
    t "filters shrink estimates" test_estimates_monotone;
    t "semi join bounded by left" test_semi_join_bounded_by_left;
    t "contradiction estimates zero" test_empty_is_zero ]
