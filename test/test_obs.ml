(* Unit tests for the Obs instrumentation library: span nesting and timing
   (against a fake clock), counter accumulation across re-entries, sink
   event delivery, and the disabled-context no-op guarantees.  Also the
   MEMO XML round-trip property: export/import preserves the group and
   expression counts, as reported by the memo_xml.* counters. *)

let feq = Alcotest.float 1e-9

let test_nesting () =
  let now = ref 0. in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  let v =
    Obs.with_span obs "outer" (fun () ->
        now := !now +. 1.;
        Obs.with_span obs "inner" (fun () ->
            now := !now +. 2.;
            7))
  in
  Alcotest.(check int) "body result" 7 v;
  match Obs.roots obs with
  | [ outer ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.name;
    Alcotest.check feq "outer elapsed includes child" 3. outer.Obs.elapsed;
    (match outer.Obs.children with
     | [ inner ] ->
       Alcotest.(check string) "inner name" "inner" inner.Obs.name;
       Alcotest.check feq "inner elapsed" 2. inner.Obs.elapsed;
       Alcotest.(check int) "inner calls" 1 inner.Obs.calls
     | _ -> Alcotest.fail "expected exactly one child span")
  | _ -> Alcotest.fail "expected exactly one root span"

let test_reentry_accumulates () =
  let now = ref 0. in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  for _ = 1 to 3 do
    Obs.with_span obs "stage" (fun () ->
        now := !now +. 0.5;
        Obs.add obs "hits" 2)
  done;
  (match Obs.roots obs with
   | [ _ ] -> ()
   | l -> Alcotest.failf "re-entry created %d roots, expected 1" (List.length l));
  let s = Option.get (Obs.find obs [ "stage" ]) in
  Alcotest.(check int) "calls" 3 s.Obs.calls;
  Alcotest.check feq "elapsed" 1.5 s.Obs.elapsed;
  Alcotest.check feq "add accumulates" 6. (Obs.counter obs "hits")

let test_set_overwrites () =
  let obs = Obs.create ~clock:(fun () -> 0.) () in
  Obs.with_span obs "g" (fun () ->
      Obs.set obs "gauge" 1.;
      Obs.set obs "gauge" 5.);
  let s = Option.get (Obs.find obs [ "g" ]) in
  Alcotest.(check (option (Alcotest.float 0.)))
    "last write wins" (Some 5.) (Obs.span_metric s "gauge")

let test_counter_sums_subtree () =
  let obs = Obs.create ~clock:(fun () -> 0.) () in
  Obs.with_span obs "a" (fun () ->
      Obs.add obs "n" 1;
      Obs.with_span obs "b" (fun () -> Obs.add obs "n" 10));
  Obs.with_span obs "c" (fun () -> Obs.add obs "n" 100);
  Alcotest.check feq "whole tree" 111. (Obs.counter obs "n");
  let a = Option.get (Obs.find obs [ "a" ]) in
  Alcotest.check feq "subtree of a" 11. (Obs.span_counter a "n")

let test_exception_still_timed () =
  let now = ref 0. in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  (try
     Obs.with_span obs "boom" (fun () ->
         now := 1.5;
         failwith "boom")
   with Failure _ -> ());
  let s = Option.get (Obs.find obs [ "boom" ]) in
  Alcotest.check feq "elapsed recorded on raise" 1.5 s.Obs.elapsed;
  (* the stack must be unwound: a new span lands at the top level again *)
  Obs.with_span obs "after" (fun () -> ());
  Alcotest.(check int) "stack unwound" 2 (List.length (Obs.roots obs))

let test_sink_events () =
  let events = ref [] in
  let obs =
    Obs.create ~clock:(fun () -> 0.) ~sink:(fun e -> events := e :: !events) ()
  in
  Obs.with_span obs "a" (fun () -> Obs.add obs "k" 1);
  match List.rev !events with
  | [ Obs.Span_open [ "a" ]; Obs.Metric ([ "a" ], "k", 1.);
      Obs.Span_close ([ "a" ], _) ] -> ()
  | l -> Alcotest.failf "unexpected event sequence (%d events)" (List.length l)

let test_null_noop () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  Alcotest.(check bool) "created enabled" true (Obs.enabled (Obs.create ()));
  let v =
    Obs.with_span Obs.null "x" (fun () ->
        Obs.add Obs.null "c" 1;
        Obs.set Obs.null "g" 3.;
        42)
  in
  Alcotest.(check int) "body still runs" 42 v;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.roots Obs.null));
  Alcotest.check feq "no counters" 0. (Obs.counter Obs.null "c");
  Alcotest.(check string) "empty report" "" (Obs.report Obs.null)

let test_report_renders () =
  let now = ref 0. in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  Obs.with_span obs "pipeline" (fun () ->
      Obs.with_span obs "parse" (fun () ->
          now := !now +. 0.001;
          Obs.add obs "parse.tokens" 42));
  let r = Obs.report obs in
  let contains needle =
    let n = String.length needle and h = String.length r in
    let rec go i = i + n <= h && (String.sub r i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has pipeline" true (contains "pipeline");
  Alcotest.(check bool) "has parse" true (contains "parse");
  Alcotest.(check bool) "has metric" true (contains "parse.tokens=42")

(* -- MEMO XML round-trip: the memo_xml.* counters reported by the
      pipeline's export and re-import must agree on every random query -- *)

let prop_xml_roundtrip_counts =
  let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ()) in
  QCheck.Test.make
    ~name:"MEMO XML round-trip preserves group/expr counts (obs counters)"
    ~count:40 Test_fuzz.arb_query
    (fun q ->
       let w = Lazy.force w in
       let obs = Obs.create () in
       let _ = Opdw.optimize ~obs w.Opdw.Workload.shell q.Test_fuzz.sql in
       let c n = Obs.counter obs n in
       if c "memo_xml.export.groups" <= 0. then
         QCheck.Test.fail_report ("no groups exported: " ^ q.Test_fuzz.sql);
       if c "memo_xml.export.groups" <> c "memo_xml.import.groups" then
         QCheck.Test.fail_report ("group count drift: " ^ q.Test_fuzz.sql);
       if c "memo_xml.export.exprs" <> c "memo_xml.import.exprs" then
         QCheck.Test.fail_report ("expr count drift: " ^ q.Test_fuzz.sql);
       true)

let suite =
  [ Alcotest.test_case "span nesting and timing" `Quick test_nesting;
    Alcotest.test_case "re-entry accumulates" `Quick test_reentry_accumulates;
    Alcotest.test_case "set overwrites" `Quick test_set_overwrites;
    Alcotest.test_case "counter sums subtree" `Quick test_counter_sums_subtree;
    Alcotest.test_case "exception still timed" `Quick test_exception_still_timed;
    Alcotest.test_case "sink event order" `Quick test_sink_events;
    Alcotest.test_case "null context is a no-op" `Quick test_null_noop;
    Alcotest.test_case "report renders tree" `Quick test_report_renders;
    QCheck_alcotest.to_alcotest prop_xml_roundtrip_counts ]
