(* Property-based end-to-end testing: a generator of random (but valid) SQL
   over the TPC-H schema; every generated query must optimize, execute
   distributed, and match the single-node reference (and the baseline). *)


(* FK join edges of the TPC-H schema: (left table, left col, right table,
   right col). Joining along these always produces valid equi joins. *)
let fk_edges =
  [ ("orders", "o_custkey", "customer", "c_custkey");
    ("lineitem", "l_orderkey", "orders", "o_orderkey");
    ("lineitem", "l_partkey", "part", "p_partkey");
    ("lineitem", "l_suppkey", "supplier", "s_suppkey");
    ("customer", "c_nationkey", "nation", "n_nationkey");
    ("supplier", "s_nationkey", "nation", "n_nationkey");
    ("nation", "n_regionkey", "region", "r_regionkey");
    ("partsupp", "ps_partkey", "part", "p_partkey");
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey") ]

(* candidate filters per table: (sql fragment, key column of the table) *)
let filters =
  [ ("orders", [ "o_totalprice > 200000"; "o_orderdate >= '1995-06-01'";
                 "o_orderstatus = 'F'"; "o_shippriority = 0" ]);
    ("customer", [ "c_acctbal > 1000"; "c_mktsegment = 'BUILDING'";
                   "c_nationkey < 12" ]);
    ("lineitem", [ "l_quantity > 25"; "l_discount BETWEEN 0.02 AND 0.08";
                   "l_shipmode IN ('AIR', 'RAIL')";
                   "l_shipdate < '1995-01-01'" ]);
    ("part", [ "p_size > 25"; "p_name LIKE 'f%'"; "p_retailprice < 1200" ]);
    ("supplier", [ "s_acctbal > 0" ]);
    ("partsupp", [ "ps_availqty > 5000"; "ps_supplycost < 500" ]);
    ("nation", [ "n_regionkey = 2"; "n_name <> 'CANADA'" ]);
    ("region", [ "r_regionkey < 3" ]) ]

(* numeric/groupable columns per table for aggregates and group keys *)
let group_cols =
  [ ("orders", [ "o_orderstatus"; "o_orderpriority"; "o_custkey" ]);
    ("customer", [ "c_mktsegment"; "c_nationkey" ]);
    ("lineitem", [ "l_returnflag"; "l_shipmode"; "l_suppkey" ]);
    ("part", [ "p_brand"; "p_size" ]);
    ("supplier", [ "s_nationkey" ]);
    ("partsupp", [ "ps_suppkey" ]);
    ("nation", [ "n_regionkey" ]);
    ("region", [ "r_name" ]) ]

let agg_cols =
  [ ("orders", "o_totalprice"); ("customer", "c_acctbal");
    ("lineitem", "l_extendedprice"); ("part", "p_retailprice");
    ("supplier", "s_acctbal"); ("partsupp", "ps_supplycost");
    ("nation", "n_nationkey"); ("region", "r_regionkey") ]

type gen_query = { sql : string }

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* grow a connected join set along FK edges *)
let gen_tables rng n =
  let start = pick rng [ "orders"; "lineitem"; "customer"; "partsupp" ] in
  let rec grow tables joins k =
    if k = 0 then (tables, joins)
    else begin
      let candidates =
        List.filter
          (fun (lt, _, rt, _) ->
             (List.mem lt tables && not (List.mem rt tables))
             || (List.mem rt tables && not (List.mem lt tables)))
          fk_edges
      in
      match candidates with
      | [] -> (tables, joins)
      | _ ->
        let (lt, lc, rt, rc) = pick rng candidates in
        let newt = if List.mem lt tables then rt else lt in
        grow (newt :: tables) (Printf.sprintf "%s = %s" lc rc :: joins) (k - 1)
    end
  in
  grow [ start ] [] (n - 1)

let gen_sql rng : gen_query =
  let ntables = 1 + Random.State.int rng 3 in
  let tables, joins = gen_tables rng ntables in
  let conjs =
    joins
    @ List.concat_map
        (fun t ->
           let cands = List.assoc t filters in
           if Random.State.int rng 3 = 0 then [ pick rng cands ] else [])
        tables
  in
  let grouped = Random.State.int rng 3 = 0 in
  let where = if conjs = [] then "" else " WHERE " ^ String.concat " AND " conjs in
  if grouped then begin
    let gt = pick rng tables in
    let key = pick rng (List.assoc gt group_cols) in
    let at = pick rng tables in
    let acol = List.assoc at agg_cols in
    let agg = pick rng [ "SUM"; "AVG"; "MIN"; "MAX"; "COUNT" ] in
    { sql =
        Printf.sprintf "SELECT %s, %s(%s) AS a, COUNT(*) AS c FROM %s%s GROUP BY %s" key
          agg acol (String.concat ", " tables) where key }
  end
  else begin
    let t = pick rng tables in
    let cols = List.assoc t group_cols in
    let c1 = pick rng cols in
    let top = if Random.State.int rng 4 = 0 then "TOP 50 " else "" in
    let order = if top <> "" then Printf.sprintf " ORDER BY %s" c1 else "" in
    { sql =
        Printf.sprintf "SELECT %s%s FROM %s%s%s" top c1 (String.concat ", " tables)
          where order }
  end

let arb_query =
  QCheck.make
    ~print:(fun q -> q.sql)
    (fun rng -> gen_sql rng)

let check_one (w : Opdw.Workload.t) (q : gen_query) =
  let r = Opdw.optimize w.Opdw.Workload.shell q.sql in
  let app = w.Opdw.Workload.app in
  let dist = Opdw.run app r in
  let reference =
    match Opdw.run_reference app r with
    | Some x -> x
    | None -> QCheck.Test.fail_report "no serial plan"
  in
  let cols = List.map snd (Opdw.output_columns r) in
  let ok_dist =
    Engine.Local.canonical ~cols dist = Engine.Local.canonical ~cols reference
  in
  let ok_baseline =
    match Opdw.run_baseline app r with
    | Some b ->
      Engine.Local.canonical ~cols b = Engine.Local.canonical ~cols reference
    | None -> false
  in
  let ok_cost =
    match r.Opdw.baseline_plan with
    | Some b ->
      (Opdw.plan r).Pdwopt.Pplan.dms_cost <= b.Pdwopt.Pplan.dms_cost +. 1e-12
    | None -> false
  in
  if not ok_dist then QCheck.Test.fail_report ("distributed mismatch: " ^ q.sql);
  if not ok_baseline then QCheck.Test.fail_report ("baseline mismatch: " ^ q.sql);
  if not ok_cost then QCheck.Test.fail_report ("pdw cost above baseline: " ^ q.sql);
  true

let prop_random_queries =
  let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ()) in
  QCheck.Test.make ~name:"random queries: distributed == reference == baseline"
    ~count:60 arb_query
    (fun q -> check_one (Lazy.force w) q)

(* cheaper than execution, so many more queries: every optimized plan (and
   its DSQL program) must pass the full static analyzer *)
let validate_one (w : Opdw.Workload.t) (q : gen_query) =
  let r = Opdw.optimize ~check:false w.Opdw.Workload.shell q.sql in
  let cost =
    { Check.nodes = 4;
      lambdas = Pdwopt.Enumerate.default_opts.Pdwopt.Enumerate.lambdas;
      reg = r.Opdw.memo.Memo.reg }
  in
  match
    Check.validate ~cost ~dsql:r.Opdw.dsql ~shell:w.Opdw.Workload.shell
      (Opdw.plan r)
  with
  | [] -> true
  | vs -> QCheck.Test.fail_report (q.sql ^ "\n" ^ Check.to_string vs)

let prop_plans_valid =
  let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ()) in
  QCheck.Test.make ~name:"random queries: plans pass the static analyzer"
    ~count:500 arb_query
    (fun q -> validate_one (Lazy.force w) q)

(* the compiled artifact must be bit-identical at any pool size: the
   enumeration wavefront is deterministic by construction (DESIGN.md §11),
   so fingerprint, root costs, and the rendered DSQL program all match *)
let jobs_identical_one (w : Opdw.Workload.t) (q : gen_query) =
  let compile jobs =
    Par.with_pool ~jobs @@ fun pool ->
    let r = Opdw.optimize ~check:false ~pool w.Opdw.Workload.shell q.sql in
    let p = Opdw.plan r in
    (r.Opdw.fingerprint, p.Pdwopt.Pplan.dms_cost, p.Pdwopt.Pplan.serial_cost,
     Dsql.Generate.to_string r.Opdw.dsql)
  in
  let base = compile 1 in
  List.iter
    (fun jobs ->
       if compile jobs <> base then
         QCheck.Test.fail_report
           (Printf.sprintf "compiled plan differs at jobs %d: %s" jobs q.sql))
    [ 2; 4 ];
  true

let prop_jobs_identical =
  let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ()) in
  QCheck.Test.make
    ~name:"random queries: identical plan at jobs 1, 2, 4" ~count:40 arb_query
    (fun q -> jobs_identical_one (Lazy.force w) q)

let suite =
  [ QCheck_alcotest.to_alcotest prop_random_queries;
    QCheck_alcotest.to_alcotest prop_plans_valid;
    QCheck_alcotest.to_alcotest prop_jobs_identical ]
