(* Shared test fixtures: a small TPC-H workload (shell db + loaded appliance)
   and a tiny custom schema. Built once, reused across suites. *)

let tpch_workload : Opdw.Workload.t Lazy.t =
  lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.002 ())

(* the same data on the columnar engine (shards and stats are identical) *)
let tpch_columnar : Opdw.Workload.t Lazy.t =
  lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.002 ~engine:Engine.Rset.Columnar ())

let shell () = (Lazy.force tpch_workload).Opdw.Workload.shell
let app () = (Lazy.force tpch_workload).Opdw.Workload.app

(* a small 2-table schema with explicit stats, no data *)
let mini_shell () =
  let open Catalog in
  let sh = Shell_db.create ~node_count:8 in
  let tcust =
    Schema.make "cust"
      [ Schema.column ~is_pk:true "ck" Types.Tint;
        Schema.column ~width:20 "cname" Types.Tstring ]
  in
  let tord =
    Schema.make "ord"
      [ Schema.column ~is_pk:true "ok" Types.Tint;
        Schema.column ~references:("cust", "ck") "ock" Types.Tint;
        Schema.column "price" Types.Tfloat ]
  in
  let stats rows ndvs =
    let s = Tbl_stats.make ~row_count:rows () in
    List.iter (fun (c, ndv) -> Tbl_stats.set_col s c (Col_stats.make ~ndv ())) ndvs;
    s
  in
  ignore
    (Shell_db.add_table sh ~stats:(stats 10_000. [ ("ck", 10_000.); ("cname", 9_000.) ])
       tcust (Distribution.Hash_partitioned [ "ck" ]));
  ignore
    (Shell_db.add_table sh
       ~stats:(stats 100_000. [ ("ok", 100_000.); ("ock", 10_000.); ("price", 5_000.) ])
       tord (Distribution.Hash_partitioned [ "ok" ]));
  sh

(* run the full pipeline on a SQL string against the TPC-H shell *)
let optimize ?options sql = Opdw.optimize ?options (shell ()) sql

let algebrize_normalize sql =
  let sh = shell () in
  let r = Algebra.Algebrizer.of_sql sh sql in
  let t = Algebra.Normalize.normalize r.Algebra.Algebrizer.reg sh r.Algebra.Algebrizer.tree in
  (r, t)
