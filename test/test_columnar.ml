(* The columnar engine against its oracle: the row engine is the semantics
   reference, and every kernel in Engine.Batch must reproduce it value for
   value AND row for row — including the simulated clock, which must be
   bit-identical across engines and at any --jobs. *)

module Value = Catalog.Value
module Column = Catalog.Column
module Expr = Algebra.Expr
module Physop = Memo.Physop

(* -- literal-input operator harness: run one physical operator on both
   engines and demand identical layout + rows (order-sensitive) -- *)

let no_tables _ = failwith "no base tables in this test"

let rset layout rows = { Engine.Local.layout; rows }

let both op (children : Engine.Local.rset list) =
  let row = Engine.Local.exec_op ~read_table:no_tables op children in
  let col =
    Engine.Batch.to_rset
      (Engine.Batch.exec_op ~read_table:no_tables op
         (List.map Engine.Batch.of_rset children))
  in
  (row, col)

let pp_rset fmt (r : Engine.Local.rset) =
  Format.fprintf fmt "[%s] %s"
    (String.concat "," (List.map string_of_int r.Engine.Local.layout))
    (String.concat "; "
       (List.map
          (fun row ->
             String.concat "|" (List.map Value.to_string (Array.to_list row)))
          r.Engine.Local.rows))

let rset_t = Alcotest.testable pp_rset ( = )

let check_both msg op children =
  let row, col = both op children in
  Alcotest.check rset_t msg row col;
  row

(* -- column builders -- *)

let test_builder_roundtrip () =
  let cases =
    [ ("ints", [ Value.Int 1; Value.Int (-7); Value.Int max_int ]);
      ("ints+null", [ Value.Int 3; Value.Null; Value.Int 0 ]);
      ("floats", [ Value.Float 1.5; Value.Null; Value.Float (-0.25) ]);
      ("dates", [ Value.Date 9131; Value.Date 0 ]);
      ("bools", [ Value.Bool true; Value.Null; Value.Bool false ]);
      ("strings", [ Value.String "a"; Value.Null; Value.String "" ]);
      ("all nulls", [ Value.Null; Value.Null ]);
      ("mixed types", [ Value.Int 1; Value.Float 2.5; Value.String "x"; Value.Null ]);
      ("int then float", [ Value.Int 4; Value.Float 4.5 ]);
      ("empty", []) ]
  in
  List.iter
    (fun (msg, vs) ->
       let c = Column.of_value_list vs in
       Alcotest.(check int) (msg ^ ": length") (List.length vs) (Column.length c);
       Alcotest.(check bool) (msg ^ ": round-trip") true
         (Array.to_list (Column.to_values c) = vs))
    cases

let test_builder_typed_layout () =
  (* representation checks: homogeneous data must land in typed columns *)
  let is_ints = function Column.Ints _ -> true | _ -> false in
  let is_floats = function Column.Floats _ -> true | _ -> false in
  let is_boxed = function Column.Boxed _ -> true | _ -> false in
  Alcotest.(check bool) "ints are typed" true
    (is_ints (Column.of_value_list [ Value.Int 1; Value.Null; Value.Int 2 ]));
  Alcotest.(check bool) "dates are typed" true
    (is_ints (Column.of_value_list [ Value.Date 1; Value.Date 2 ]));
  Alcotest.(check bool) "floats are typed" true
    (is_floats (Column.of_value_list [ Value.Float 1.; Value.Null ]));
  Alcotest.(check bool) "type mixes demote to boxed" true
    (is_boxed (Column.of_value_list [ Value.Int 1; Value.Float 2. ]));
  Alcotest.(check bool) "strings are boxed" true
    (is_boxed (Column.of_value_list [ Value.String "s" ]))

let test_table_roundtrip () =
  let rows =
    [ [| Value.Int 1; Value.String "a"; Value.Float 0.5 |];
      [| Value.Int 2; Value.Null; Value.Float 1.5 |];
      [| Value.Null; Value.String "c"; Value.Null |] ]
  in
  let t = Column.table_of_rows ~width:3 rows in
  Alcotest.(check bool) "table round-trip" true (Column.table_rows t = rows)

(* -- selection-vector edge cases -- *)

let lit_true = Expr.Lit (Value.Bool true)
let lit_false = Expr.Lit (Value.Bool false)

let sample =
  rset [ 10; 11 ]
    [ [| Value.Int 1; Value.Float 10. |];
      [| Value.Int 2; Value.Null |];
      [| Value.Null; Value.Float 30. |];
      [| Value.Int 2; Value.Float 40. |] ]

let test_filter_edges () =
  (* empty input batch *)
  ignore (check_both "filter of empty" (Physop.Filter lit_true) [ rset [ 10 ] [] ]);
  (* all rows filtered out *)
  let r = check_both "all-filtered" (Physop.Filter lit_false) [ sample ] in
  Alcotest.(check int) "all-filtered is empty" 0 (List.length r.Engine.Local.rows);
  (* null in the predicate column: UNKNOWN drops the row *)
  let pred = Expr.Bin (Expr.Gt, Expr.Col 10, Expr.Lit (Value.Int 1)) in
  let r = check_both "null-key filter" (Physop.Filter pred) [ sample ] in
  Alcotest.(check int) "nulls dropped" 2 (List.length r.Engine.Local.rows);
  (* chained: filter over an already-narrowed selection (sel-of-sel) *)
  let b = Engine.Batch.of_rset sample in
  let once = Engine.Batch.exec_op ~read_table:no_tables (Physop.Filter pred) [ b ] in
  let twice =
    Engine.Batch.exec_op ~read_table:no_tables
      (Physop.Filter (Expr.Bin (Expr.Lt, Expr.Col 11, Expr.Lit (Value.Float 35.))))
      [ once ]
  in
  Alcotest.(check int) "sel-of-sel narrows" 0
    (List.length (Engine.Batch.to_rset twice).Engine.Local.rows)

let agg ?(distinct = false) out func arg =
  { Expr.agg_out = out; agg_func = func; agg_arg = arg; agg_distinct = distinct }

let test_aggregate_nulls () =
  (* nulls are skipped by every aggregate; empty/all-null input gives
     COUNT 0 and Null for SUM/AVG/MIN/MAX *)
  let aggs =
    [ agg 20 Expr.Sum (Some (Expr.Col 11));
      agg 21 Expr.Avg (Some (Expr.Col 11));
      agg 22 Expr.Count (Some (Expr.Col 11));
      agg 23 Expr.Min (Some (Expr.Col 11));
      agg 24 Expr.Count_star None ]
  in
  let r =
    check_both "grouped agg with nulls"
      (Physop.Hash_agg { keys = [ 10 ]; aggs }) [ sample ]
  in
  Alcotest.(check int) "group count (null is its own group)" 3
    (List.length r.Engine.Local.rows);
  (* global aggregate over an all-null column *)
  let nullcol = rset [ 11 ] [ [| Value.Null |]; [| Value.Null |] ] in
  let r = check_both "all-null global agg" (Physop.Hash_agg { keys = []; aggs }) [ nullcol ] in
  (match r.Engine.Local.rows with
   | [ [| s; a; c; m; cs |] ] ->
     Alcotest.(check bool) "SUM all-null = Null" true (s = Value.Null);
     Alcotest.(check bool) "AVG all-null = Null" true (a = Value.Null);
     Alcotest.(check bool) "COUNT skips nulls" true (c = Value.Int 0);
     Alcotest.(check bool) "MIN all-null = Null" true (m = Value.Null);
     Alcotest.(check bool) "COUNT star counts rows" true (cs = Value.Int 2)
   | _ -> Alcotest.fail "expected one output row");
  (* global aggregate over the empty input: one row, COUNTs 0 *)
  ignore
    (check_both "empty global agg" (Physop.Hash_agg { keys = []; aggs })
       [ rset [ 10; 11 ] [] ]);
  (* grouped aggregate over empty input: no rows *)
  let r =
    check_both "empty grouped agg" (Physop.Hash_agg { keys = [ 10 ]; aggs })
      [ rset [ 10; 11 ] [] ]
  in
  Alcotest.(check int) "no groups from no rows" 0 (List.length r.Engine.Local.rows);
  (* DISTINCT path *)
  ignore
    (check_both "distinct agg"
       (Physop.Hash_agg
          { keys = []; aggs = [ agg 20 Expr.Count (Some (Expr.Col 10)) ] })
       [ sample ]);
  ignore
    (check_both "distinct sum"
       (Physop.Hash_agg
          { keys = [];
            aggs = [ agg ~distinct:true 20 Expr.Sum (Some (Expr.Col 10)) ] })
       [ sample ])

let test_join_edges () =
  let left = sample in
  let right =
    rset [ 20; 21 ]
      [ [| Value.Int 2; Value.String "b" |];
        [| Value.Int 3; Value.String "c" |];
        [| Value.Null; Value.String "n" |] ]
  in
  let eq = Expr.Bin (Expr.Eq, Expr.Col 10, Expr.Col 20) in
  List.iter
    (fun (msg, kind) ->
       ignore
         (check_both msg (Physop.Hash_join { kind; pred = eq }) [ left; right ]))
    [ ("inner join", Algebra.Relop.Inner); ("left outer join", Algebra.Relop.Left_outer);
      ("semi join", Algebra.Relop.Semi); ("anti join", Algebra.Relop.Anti_semi) ];
  (* empty sides *)
  let nil = rset [ 20; 21 ] [] in
  ignore (check_both "join empty build" (Physop.Hash_join { kind = Algebra.Relop.Inner; pred = eq })
            [ left; nil ]);
  ignore (check_both "outer join empty build"
            (Physop.Hash_join { kind = Algebra.Relop.Left_outer; pred = eq }) [ left; nil ]);
  ignore (check_both "join empty probe"
            (Physop.Hash_join { kind = Algebra.Relop.Inner; pred = eq }) [ rset [ 10; 11 ] []; right ]);
  (* non-equi predicate: falls back to nested loops on both engines *)
  let lt = Expr.Bin (Expr.Lt, Expr.Col 10, Expr.Col 20) in
  ignore (check_both "non-equi join"
            (Physop.Hash_join { kind = Algebra.Relop.Inner; pred = lt }) [ left; right ])

(* -- end-to-end: both engines over the whole bundled workload -- *)

let canonical_and_time (w : Opdw.Workload.t) sql =
  let app = w.Opdw.Workload.app in
  Engine.Appliance.reset_account app;
  let r = Opdw.optimize w.Opdw.Workload.shell sql in
  let res = Opdw.run app r in
  let cols = List.map snd (Opdw.output_columns r) in
  (Engine.Local.canonical ~cols res,
   app.Engine.Appliance.account.Engine.Appliance.sim_time)

let test_workload_parity () =
  let wr = Lazy.force Fixtures.tpch_workload in
  let wc = Lazy.force Fixtures.tpch_columnar in
  List.iter
    (fun (q : Tpch.Queries.t) ->
       let rows_r, sim_r = canonical_and_time wr q.Tpch.Queries.sql in
       let rows_c, sim_c = canonical_and_time wc q.Tpch.Queries.sql in
       Alcotest.(check (list string))
         (q.Tpch.Queries.id ^ ": rows match the row engine") rows_r rows_c;
       Alcotest.(check (float 0.))
         (q.Tpch.Queries.id ^ ": simulated clock is bit-identical") sim_r sim_c)
    Tpch.Queries.all

(* qcheck: random plans agree across engines (rows and simulated time) *)
let prop_random_parity =
  let wr = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ()) in
  let wc =
    lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ~engine:Engine.Rset.Columnar ())
  in
  QCheck.Test.make ~name:"random queries: columnar == row (rows and sim clock)"
    ~count:60 Test_fuzz.arb_query
    (fun q ->
       let sql = q.Test_fuzz.sql in
       let rows_r, sim_r = canonical_and_time (Lazy.force wr) sql in
       let rows_c, sim_c = canonical_and_time (Lazy.force wc) sql in
       if rows_r <> rows_c then QCheck.Test.fail_report ("row mismatch: " ^ sql);
       if sim_r <> sim_c then QCheck.Test.fail_report ("sim-clock mismatch: " ^ sql);
       true)

(* -- fault schedules: retries/recovery must not disturb engine parity -- *)

let chaos_once engine sql =
  let w = Opdw.Workload.tpch ~node_count:4 ~sf:0.002 ~engine () in
  let fault = Fault.seeded ~seed:11 ~rate:0.25 () in
  let ctx = Opdw.Chaos.create ~fault w.Opdw.Workload.shell w.Opdw.Workload.app in
  let r, res = Opdw.Chaos.run ctx sql in
  let cols = List.map snd (Opdw.output_columns r) in
  let a = (Opdw.Chaos.app ctx).Engine.Appliance.account in
  (Engine.Local.canonical ~cols res, a.Engine.Appliance.sim_time,
   a.Engine.Appliance.injected, a.Engine.Appliance.retries)

let test_fault_parity () =
  List.iter
    (fun id ->
       let q = Option.get (Tpch.Queries.find id) in
       let rows_r, sim_r, inj_r, ret_r = chaos_once Engine.Rset.Row q.Tpch.Queries.sql in
       let rows_c, sim_c, inj_c, ret_c =
         chaos_once Engine.Rset.Columnar q.Tpch.Queries.sql
       in
       Alcotest.(check (list string)) (id ^ ": rows under faults") rows_r rows_c;
       Alcotest.(check (float 0.)) (id ^ ": sim clock under faults") sim_r sim_c;
       Alcotest.(check int) (id ^ ": same faults fired") inj_r inj_c;
       Alcotest.(check int) (id ^ ": same retries") ret_r ret_c)
    [ "Q3"; "Q6" ]

(* -- the simulated clock is jobs-independent on the columnar engine -- *)

let test_jobs_independence () =
  let once jobs =
    Par.with_pool ~jobs @@ fun pool ->
    let w = Opdw.Workload.tpch ~node_count:4 ~sf:0.002 ~engine:Engine.Rset.Columnar () in
    let app = w.Opdw.Workload.app in
    Engine.Appliance.set_pool app pool;
    canonical_and_time w (Option.get (Tpch.Queries.find "Q9")).Tpch.Queries.sql
  in
  let rows1, sim1 = once 1 in
  let rows4, sim4 = once 4 in
  Alcotest.(check (list string)) "rows at jobs 1 = jobs 4" rows1 rows4;
  Alcotest.(check (float 0.)) "sim clock at jobs 1 = jobs 4" sim1 sim4

let suite =
  [ Alcotest.test_case "column builders round-trip values" `Quick test_builder_roundtrip;
    Alcotest.test_case "column builders pick typed layouts" `Quick test_builder_typed_layout;
    Alcotest.test_case "tables round-trip rows" `Quick test_table_roundtrip;
    Alcotest.test_case "filter: empty, all-filtered, nulls, sel-of-sel" `Quick
      test_filter_edges;
    Alcotest.test_case "aggregates: null and empty-input handling" `Quick
      test_aggregate_nulls;
    Alcotest.test_case "joins: kinds, empty sides, non-equi" `Quick test_join_edges;
    Alcotest.test_case "all 25 workload queries: columnar == row" `Slow
      test_workload_parity;
    QCheck_alcotest.to_alcotest prop_random_parity;
    Alcotest.test_case "fault schedules: parity under retries" `Slow test_fault_parity;
    Alcotest.test_case "columnar sim clock is --jobs independent" `Quick
      test_jobs_independence ]
