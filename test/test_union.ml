(* UNION ALL across the whole stack (paper §3.1: the search space is
   extended "especially around collocation of joins and unions"). *)

let t name f = Alcotest.test_case name `Quick f

let w () = Lazy.force Fixtures.tpch_workload

let run_both sql =
  let wl = w () in
  let r = Opdw.optimize wl.Opdw.Workload.shell sql in
  let dist = Opdw.run wl.Opdw.Workload.app r in
  let reference = Option.get (Opdw.run_reference wl.Opdw.Workload.app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  (r, Engine.Local.canonical ~cols dist, Engine.Local.canonical ~cols reference)

let test_parse_union () =
  let q = Sqlfront.Parser.parse "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a" in
  Alcotest.(check bool) "union chained" true (q.Sqlfront.Ast.union_all <> None);
  Alcotest.(check int) "first block has no order" 0 (List.length q.Sqlfront.Ast.order_by);
  match q.Sqlfront.Ast.union_all with
  | Some tail -> Alcotest.(check int) "tail carries the order" 1 (List.length tail.Sqlfront.Ast.order_by)
  | None -> assert false

let test_union_without_all_rejected () =
  match Sqlfront.Parser.parse "SELECT a FROM t UNION SELECT b FROM u" with
  | exception Sqlfront.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "bare UNION should be rejected (subset supports UNION ALL)"

let test_arity_mismatch_rejected () =
  let wl = w () in
  match
    Opdw.optimize wl.Opdw.Workload.shell
      "SELECT c_custkey, c_name FROM customer UNION ALL SELECT o_orderkey FROM orders"
  with
  | exception Algebra.Algebrizer.Unsupported _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let test_collocated_union_no_moves () =
  (* both branches hash-partitioned on the same (projected) column id space:
     orders split by price band; re-united without any movement *)
  let r, dist, reference =
    run_both
      "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 300000 \
       UNION ALL \
       SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice <= 300000"
  in
  Alcotest.(check (list string)) "union correct" reference dist;
  Alcotest.(check int) "no movement for collocated branches" 0
    (Pdwopt.Pplan.move_count (Opdw.plan r))

let test_union_of_incompatible_branches () =
  (* customer keys union order keys: branch distributions differ; a movement
     aligns them (or the union stays unaligned and is gathered) *)
  let _, dist, reference =
    run_both
      "SELECT c_custkey AS k FROM customer WHERE c_acctbal > 5000 \
       UNION ALL \
       SELECT o_custkey AS k FROM orders WHERE o_totalprice > 400000"
  in
  Alcotest.(check (list string)) "union correct" reference dist

let test_union_then_aggregate () =
  let _, dist, reference =
    run_both
      "SELECT k, COUNT(*) AS c FROM (\
         SELECT c_nationkey AS k FROM customer \
         UNION ALL \
         SELECT s_nationkey AS k FROM supplier) AS nk \
       GROUP BY k ORDER BY k"
  in
  Alcotest.(check (list string)) "aggregate over union" reference dist

let test_union_order_and_top () =
  let wl = w () in
  let r =
    Opdw.optimize wl.Opdw.Workload.shell
      "SELECT c_custkey AS k FROM customer UNION ALL SELECT o_custkey AS k FROM orders \
       ORDER BY k DESC"
  in
  let res = Opdw.run wl.Opdw.Workload.app r in
  let keys = List.map (fun row -> Catalog.Value.to_float row.(0)) res.Engine.Local.rows in
  let sorted = List.sort (fun a b -> compare b a) keys in
  Alcotest.(check bool) "globally ordered" true (keys = sorted)

let test_union_counts_add () =
  let wl = w () in
  let count sql =
    let r = Opdw.optimize wl.Opdw.Workload.shell sql in
    List.length (Opdw.run wl.Opdw.Workload.app r).Engine.Local.rows
  in
  let a = count "SELECT c_custkey FROM customer" in
  let b = count "SELECT o_orderkey FROM orders" in
  let u = count "SELECT c_custkey FROM customer UNION ALL SELECT o_orderkey FROM orders" in
  Alcotest.(check int) "UNION ALL keeps duplicates" (a + b) u

let test_union_three_branches () =
  let _, dist, reference =
    run_both
      "SELECT n_nationkey AS k FROM nation \
       UNION ALL SELECT r_regionkey AS k FROM region \
       UNION ALL SELECT s_suppkey AS k FROM supplier"
  in
  Alcotest.(check (list string)) "three-way union" reference dist

let test_union_pushdown () =
  (* a filter above the union reaches both branches *)
  let wl = w () in
  let r =
    Algebra.Algebrizer.of_sql wl.Opdw.Workload.shell
      "SELECT k FROM (SELECT c_custkey AS k FROM customer \
       UNION ALL SELECT o_custkey AS k FROM orders) AS u WHERE k < 10"
  in
  let tr =
    Algebra.Normalize.normalize r.Algebra.Algebrizer.reg wl.Opdw.Workload.shell
      r.Algebra.Algebrizer.tree
  in
  let rec selects_below_union (n : Algebra.Relop.t) ~below =
    let here =
      match n.Algebra.Relop.op with
      | Algebra.Relop.Select _ when below -> 1
      | _ -> 0
    in
    let below =
      below || (match n.Algebra.Relop.op with Algebra.Relop.Union_all -> true | _ -> false)
    in
    here + List.fold_left (fun a c -> a + selects_below_union c ~below) 0 n.Algebra.Relop.children
  in
  Alcotest.(check bool) "filter pushed into both branches" true
    (selects_below_union tr ~below:false >= 2)

let test_union_dsql_rendered () =
  let wl = w () in
  let r =
    Opdw.optimize wl.Opdw.Workload.shell
      "SELECT n_nationkey FROM nation UNION ALL SELECT r_regionkey FROM region"
  in
  let s = Dsql.Generate.to_string r.Opdw.dsql in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "UNION ALL in DSQL" true (contains s "UNION ALL")

let suite =
  [ t "parse UNION ALL with trailing ORDER BY" test_parse_union;
    t "bare UNION rejected" test_union_without_all_rejected;
    t "arity mismatch rejected" test_arity_mismatch_rejected;
    t "collocated branches: no movement" test_collocated_union_no_moves;
    t "incompatible branches still correct" test_union_of_incompatible_branches;
    t "aggregate over a union" test_union_then_aggregate;
    t "union-wide ORDER BY" test_union_order_and_top;
    t "UNION ALL keeps duplicates" test_union_counts_add;
    t "three-branch union" test_union_three_branches;
    t "filter pushdown into branches" test_union_pushdown;
    t "DSQL renders UNION ALL" test_union_dsql_rendered ]
