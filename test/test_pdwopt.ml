(* The PDW optimizer: property derivation, enumeration, enforcers, pruning,
   plan choice (paper Fig. 4, §3.2-3.3). *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let pipeline ?(node_count = 8) ?(pdw_opts = None) sql =
  let sh = Fixtures.shell () in
  ignore node_count;
  let r = Algebra.Algebrizer.of_sql sh sql in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  let sres = Serialopt.Optimizer.optimize r.Algebrizer.reg sh tr in
  let m = sres.Serialopt.Optimizer.memo in
  let opts =
    match pdw_opts with
    | Some o -> o
    | None ->
      { Pdwopt.Enumerate.default_opts with
        Pdwopt.Enumerate.nodes = Catalog.Shell_db.node_count sh }
  in
  (m, Pdwopt.Optimizer.optimize ~opts m, sres)

let moves_of p = Pdwopt.Pplan.moves p

let test_derive_interesting_join_cols () =
  let m, _, _ =
    pipeline "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey"
  in
  let derived = Pdwopt.Derive.derive m in
  (* some group must have o_custkey or c_custkey as an interesting column *)
  let found = ref false in
  Memo.iter_groups m (fun g ->
      List.iter
        (fun cols ->
           List.iter
             (fun c ->
                let l = Registry.label m.Memo.reg c in
                if l = "customer.c_custkey" || l = "orders.o_custkey" then found := true)
             cols)
        (Pdwopt.Derive.interesting derived g.Memo.gid));
  Alcotest.(check bool) "join columns are interesting" true !found

let test_derive_required_cols () =
  let m, _, _ =
    pipeline "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey \
              AND o_totalprice > 5"
  in
  let derived = Pdwopt.Derive.derive m in
  (* the orders-side group's required columns exclude o_comment etc. *)
  let ok = ref false in
  Memo.iter_groups m (fun g ->
      let labels =
        List.map (Registry.label m.Memo.reg)
          (Registry.Col_set.elements (Pdwopt.Derive.required derived g.Memo.gid))
      in
      if List.mem "orders.o_custkey" labels && not (List.mem "orders.o_comment" labels)
      then ok := true);
  Alcotest.(check bool) "required excludes unused wide columns" true !ok

let test_collocated_join_no_moves () =
  (* orders and lineitem are both partitioned on orderkey: zero DMS cost *)
  let _, pres, _ =
    pipeline "SELECT o_orderkey, l_quantity FROM orders, lineitem \
              WHERE o_orderkey = l_orderkey"
  in
  let p = pres.Pdwopt.Optimizer.plan in
  Alcotest.(check int) "no data movement" 0 (Pdwopt.Pplan.move_count p)

let test_incompatible_join_needs_move () =
  let _, pres, _ =
    pipeline "SELECT c_custkey, o_orderdate FROM orders, customer \
              WHERE o_custkey = c_custkey"
  in
  let p = pres.Pdwopt.Optimizer.plan in
  Alcotest.(check bool) "at least one movement" true (Pdwopt.Pplan.move_count p >= 1);
  Alcotest.(check bool) "positive DMS cost" true (p.Pdwopt.Pplan.dms_cost > 0.)

let test_replicated_dimension_no_moves () =
  (* nation is replicated: joining it needs no movement *)
  let _, pres, _ =
    pipeline "SELECT c_name, n_name FROM customer, nation WHERE c_nationkey = n_nationkey"
  in
  Alcotest.(check int) "no movement for replicated join" 0
    (Pdwopt.Pplan.move_count pres.Pdwopt.Optimizer.plan)

let test_local_groupby_on_distribution_key () =
  (* group by the distribution column: local aggregation, no movement *)
  let _, pres, _ =
    pipeline "SELECT o_orderkey, COUNT(*) FROM orders GROUP BY o_orderkey"
  in
  Alcotest.(check int) "local group-by" 0 (Pdwopt.Pplan.move_count pres.Pdwopt.Optimizer.plan)

let test_groupby_split_or_shuffle () =
  (* group by a non-distribution column requires exactly one movement (of
     either the raw rows or the partial aggregates) *)
  let _, pres, _ = pipeline "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey" in
  let p = pres.Pdwopt.Optimizer.plan in
  Alcotest.(check int) "one movement" 1 (Pdwopt.Pplan.move_count p)

let test_scalar_agg_split () =
  let m, pres, _ = pipeline "SELECT SUM(o_totalprice) FROM orders" in
  let p = pres.Pdwopt.Optimizer.plan in
  ignore m;
  (* either gather-then-aggregate or local/global split; the split moves N
     rows instead of all rows and must win *)
  let rec has_two_aggs (p : Pdwopt.Pplan.t) =
    let here =
      match p.Pdwopt.Pplan.op with
      | Pdwopt.Pplan.Serial (Memo.Physop.Hash_agg _) -> 1
      | _ -> 0
    in
    here + List.fold_left (fun a c -> a + has_two_aggs c) 0 p.Pdwopt.Pplan.children
  in
  Alcotest.(check bool) "local/global split chosen" true (has_two_aggs p >= 2)

let test_avg_split_produces_compute () =
  let _, pres, _ = pipeline "SELECT o_custkey, AVG(o_totalprice) FROM orders GROUP BY o_custkey" in
  let p = pres.Pdwopt.Optimizer.plan in
  let rec has_div (p : Pdwopt.Pplan.t) =
    (match p.Pdwopt.Pplan.op with
     | Pdwopt.Pplan.Serial (Memo.Physop.Compute defs) ->
       List.exists
         (fun (_, e) -> match e with Expr.Bin (Expr.Div, _, _) -> true | _ -> false)
         defs
     | _ -> false)
    || List.exists has_div p.Pdwopt.Pplan.children
  in
  (* if the optimizer chose the split, AVG is recomposed as SUM/SUM *)
  let split =
    List.length
      (List.filter
         (function Dms.Op.Shuffle _ -> true | _ -> false)
         (moves_of p))
    >= 1
  in
  if split then Alcotest.(check bool) "AVG recomposed via Compute" true (has_div p)

let test_broadcast_for_small_side () =
  (* tiny filtered part side joined with big lineitem: broadcast expected *)
  let _, pres, _ =
    pipeline
      "SELECT l_quantity FROM lineitem, part \
       WHERE l_partkey = p_partkey AND p_name LIKE 'forest%'"
  in
  let kinds = moves_of pres.Pdwopt.Optimizer.plan in
  Alcotest.(check bool) "a broadcast move is used" true
    (List.exists (function Dms.Op.Broadcast -> true | _ -> false) kinds)

let test_dms_cost_only_from_moves () =
  let _, pres, _ =
    pipeline "SELECT o_orderkey FROM orders WHERE o_totalprice > 0"
  in
  let body = List.hd pres.Pdwopt.Optimizer.plan.Pdwopt.Pplan.children in
  Alcotest.(check int) "no movements" 0 (Pdwopt.Pplan.move_count body);
  Alcotest.(check (float 0.)) "no DMS cost before the final Return" 0.
    body.Pdwopt.Pplan.dms_cost

let test_pruning_bounds_options () =
  let _, pres, _ =
    pipeline
      "SELECT c_custkey FROM customer, orders, lineitem \
       WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  let s = pres.Pdwopt.Optimizer.stats in
  Alcotest.(check bool) "pruning keeps far fewer options than enumerated" true
    (s.Pdwopt.Enumerate.options_kept * 2 < s.Pdwopt.Enumerate.pdw_exprs_enumerated)

let test_pruning_off_explodes () =
  let sql =
    "SELECT c_custkey FROM customer, orders, lineitem \
     WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  let with_prune prune =
    let opts = { Pdwopt.Enumerate.default_opts with Pdwopt.Enumerate.prune } in
    let _, pres, _ = pipeline ~pdw_opts:(Some opts) sql in
    pres.Pdwopt.Optimizer.stats.Pdwopt.Enumerate.options_kept
  in
  Alcotest.(check bool) "pruning reduces kept options" true
    (with_prune true < with_prune false)

let test_return_is_root () =
  let _, pres, _ = pipeline "SELECT c_name FROM customer ORDER BY c_name" in
  match pres.Pdwopt.Optimizer.plan.Pdwopt.Pplan.op with
  | Pdwopt.Pplan.Return { sort; _ } ->
    Alcotest.(check int) "return carries the order" 1 (List.length sort)
  | _ -> Alcotest.fail "root must be Return"

let test_three_way_join_order_changes () =
  (* §3.2: serial best = filter customer first; parallel best = exploit the
     orders/lineitem collocation. At minimum, the PDW plan must beat the
     parallelized serial plan on DMS cost for this shape. *)
  let sh = Fixtures.shell () in
  let q = (Option.get (Tpch.Queries.find "P2")).Tpch.Queries.sql in
  let r = Opdw.optimize sh q in
  match r.Opdw.baseline_plan with
  | Some b ->
    Alcotest.(check bool) "PDW cost <= baseline cost" true
      ((Opdw.plan r).Pdwopt.Pplan.dms_cost <= b.Pdwopt.Pplan.dms_cost +. 1e-15)
  | None -> Alcotest.fail "baseline failed"

let test_whole_workload_planned () =
  List.iter
    (fun q ->
       let _, pres, _ = pipeline q.Tpch.Queries.sql in
       Alcotest.(check bool) (q.Tpch.Queries.id ^ " planned") true
         (Pdwopt.Pplan.size pres.Pdwopt.Optimizer.plan > 0))
    Tpch.Queries.all

let suite =
  [ t "interesting join columns derived" test_derive_interesting_join_cols;
    t "required columns derived" test_derive_required_cols;
    t "collocated join: no movement" test_collocated_join_no_moves;
    t "incompatible join: movement inserted" test_incompatible_join_needs_move;
    t "replicated dimension: no movement" test_replicated_dimension_no_moves;
    t "group-by on distribution key is local" test_local_groupby_on_distribution_key;
    t "group-by on other key: one movement" test_groupby_split_or_shuffle;
    t "scalar aggregate local/global split" test_scalar_agg_split;
    t "AVG split recomposition" test_avg_split_produces_compute;
    t "broadcast chosen for small side" test_broadcast_for_small_side;
    t "DMS cost only from movements" test_dms_cost_only_from_moves;
    t "pruning bounds kept options" test_pruning_bounds_options;
    t "pruning ablation" test_pruning_off_explodes;
    t "Return at root with order" test_return_is_root;
    t "PDW beats parallelized-serial (§3.2)" test_three_way_join_order_changes;
    t "whole workload planned" test_whole_workload_planned ]
