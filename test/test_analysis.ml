(* Abstract-interpretation plan analyzer (lib/analysis): typed expressions,
   interval/cardinality bounds, contradiction detection, memo-level empty
   groups driving plan folding, the R10-R12 check rules over mutated plans,
   and the engine's --assert-bounds runtime oracle. *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let agg_sql =
  "SELECT o_orderstatus, SUM(o_totalprice) AS s FROM orders, customer \
   WHERE o_custkey = c_custkey GROUP BY o_orderstatus"

let filter_sql = "SELECT o_orderkey FROM orders WHERE o_orderkey > 0"

(* a contradiction only the catalog can prove: o_totalprice is never
   negative in the loaded data, so min/max seeding refutes the filter while
   the (stats-free) normalizer keeps it *)
let contra_sql = "SELECT o_orderkey FROM orders WHERE o_totalprice < 0"

let q3_sql =
  match Tpch.Queries.find "Q3" with
  | Some q -> q.Tpch.Queries.sql
  | None -> failwith "Q3 missing from the bundled workload"

let optimize_raw sql = Opdw.optimize ~check:false (Fixtures.shell ()) sql

let ctx_of (r : Opdw.result) =
  Analysis.context ~shell:(Fixtures.shell ()) ~reg:r.Opdw.memo.Memo.reg ~nodes:4

let cost_of (r : Opdw.result) =
  { Check.nodes = 4;
    lambdas = Pdwopt.Enumerate.default_opts.Pdwopt.Enumerate.lambdas;
    reg = r.Opdw.memo.Memo.reg }

let validate_full (r : Opdw.result) p =
  Check.validate ~cost:(cost_of r) ~dsql:r.Opdw.dsql ~shell:(Fixtures.shell ()) p

(* -- mutation helpers (same shape as test_check) -- *)

let map_tree f p =
  let rec go p =
    f { p with Pdwopt.Pplan.children = List.map go p.Pdwopt.Pplan.children }
  in
  go p

let mutate_first f p =
  let hit = ref false in
  let p' =
    map_tree
      (fun n ->
         if !hit then n
         else match f n with Some n' -> hit := true; n' | None -> n)
      p
  in
  if not !hit then Alcotest.fail "mutation found no applicable plan node";
  p'

let expect_rules ~rules vs =
  if vs = [] then
    Alcotest.failf "mutant validated clean (expected one of [%s])"
      (String.concat "; " rules);
  if not (List.exists (fun v -> List.mem v.Check.rule rules) vs) then
    Alcotest.failf "expected a violation of [%s], got:\n%s"
      (String.concat "; " rules) (Check.to_string vs)

(* first registry column of the wanted base type *)
let col_of_ty reg ty =
  let n = Registry.count reg in
  let rec go i =
    if i >= n then Alcotest.fail "no column of the wanted type"
    else if (Registry.info reg i).Registry.ty = ty then i
    else go (i + 1)
  in
  go 0

(* -- typed-expression checker units -- *)

let test_infer_and_check_expr () =
  let r = optimize_raw agg_sql in
  let reg = r.Opdw.memo.Memo.reg in
  let scol = col_of_ty reg Catalog.Types.Tstring in
  let icol = col_of_ty reg Catalog.Types.Tint in
  (* well-typed: int comparison *)
  Alcotest.(check int) "int cmp clean" 0
    (List.length
       (Analysis.check_expr reg
          (Expr.Bin (Expr.Gt, Expr.Col icol, Expr.Lit (Catalog.Value.Int 0)))));
  (* arithmetic over a string column *)
  Alcotest.(check bool) "string arith rejected" true
    (Analysis.check_expr reg
       (Expr.Bin (Expr.Add, Expr.Col scol, Expr.Lit (Catalog.Value.Int 1)))
     <> []);
  (* incompatible comparison: string vs int *)
  Alcotest.(check bool) "string=int rejected" true
    (Analysis.check_expr reg (Expr.Bin (Expr.Eq, Expr.Col scol, Expr.Col icol))
     <> []);
  (* inferred type of an int column is non-nullable int when stats say so *)
  let ty = Analysis.infer_ty reg (Expr.Col icol) in
  Alcotest.(check bool) "col type is its declared base" true
    (ty.Analysis.base = Some Catalog.Types.Tint)

(* -- positive: workload plans annotate clean with sound bounds -- *)

let test_annotate_clean () =
  List.iter
    (fun sql ->
       let r = optimize_raw sql in
       let infos = Analysis.annotate (ctx_of r) (Opdw.plan r) in
       List.iter
         (fun ((n : Pdwopt.Pplan.t), (i : Analysis.node_info)) ->
            Alcotest.(check bool) "no type errors" true (i.Analysis.type_errors = []);
            Alcotest.(check bool) "no contradiction" true
              (i.Analysis.contradiction = None);
            Alcotest.(check bool) "bounds ordered" true
              (i.Analysis.card_lo <= i.Analysis.card_hi);
            (* the estimator must sit inside the derived interval (modulo its
               own 1-row floor); Return rows are not limit-clamped upstream *)
            match n.Pdwopt.Pplan.op with
            | Pdwopt.Pplan.Return _ -> ()
            | _ ->
              Alcotest.(check bool)
                (Printf.sprintf "rows %g within [%g, %g]" n.Pdwopt.Pplan.rows
                   i.Analysis.card_lo i.Analysis.card_hi)
                true
                (n.Pdwopt.Pplan.rows <= Float.max 1. i.Analysis.card_hi +. 9.
                 && n.Pdwopt.Pplan.rows >= i.Analysis.card_lo -. 1.))
         infos)
    [ agg_sql; q3_sql; filter_sql ]

let test_scan_bounds_exact () =
  let r = optimize_raw filter_sql in
  let infos = Analysis.annotate (ctx_of r) (Opdw.plan r) in
  let scan =
    List.find_opt
      (fun ((n : Pdwopt.Pplan.t), _) ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Table_scan _) -> true
         | _ -> false)
      infos
  in
  match scan with
  | None -> Alcotest.fail "no scan in the plan"
  | Some (n, i) ->
    Alcotest.(check (float 1e-9)) "scan lo is the catalog row count"
      n.Pdwopt.Pplan.rows i.Analysis.card_lo;
    Alcotest.(check (float 1e-9)) "scan hi is the catalog row count"
      n.Pdwopt.Pplan.rows i.Analysis.card_hi

(* -- mutation matrix: R10 (types), R11 (bounds), R12 (contradiction) -- *)

(* a1: join keys of incompatible types (agg_sql's unused join is eliminated
   by the optimizer, so mutate Q3's real joins) *)
let test_mut_join_key_types () =
  let r = optimize_raw q3_sql in
  let reg = r.Opdw.memo.Memo.reg in
  let scol = col_of_ty reg Catalog.Types.Tstring in
  let icol = col_of_ty reg Catalog.Types.Tint in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Hash_join { kind; pred = _ }) ->
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Serial
                      (Memo.Physop.Hash_join
                         { kind;
                           pred = Expr.Bin (Expr.Eq, Expr.Col scol, Expr.Col icol) }) }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R10.types" ] (validate_full r bad)

(* a2: SUM over a string column *)
let test_mut_sum_over_string () =
  let r = optimize_raw agg_sql in
  let reg = r.Opdw.memo.Memo.reg in
  let scol = col_of_ty reg Catalog.Types.Tstring in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Hash_agg { keys; aggs = a :: rest }) ->
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Serial
                      (Memo.Physop.Hash_agg
                         { keys;
                           aggs =
                             { a with
                               Expr.agg_func = Expr.Sum;
                               agg_arg = Some (Expr.Col scol);
                               agg_distinct = false }
                             :: rest }) }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R10.types" ] (validate_full r bad)

(* a3: scan claiming more rows than the catalog holds *)
let test_mut_rows_above_bound () =
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Table_scan _) ->
           Some { n with Pdwopt.Pplan.rows = n.Pdwopt.Pplan.rows +. 1000. }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R11.bounds" ] (validate_full r bad)

(* a4: non-monotone estimate — a filter claiming far more rows than its
   child can produce *)
let test_mut_rows_non_monotone () =
  let r = optimize_raw q3_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op, n.Pdwopt.Pplan.children with
         | Pdwopt.Pplan.Serial (Memo.Physop.Filter _), [ c ] ->
           Some { n with
                  Pdwopt.Pplan.rows = (c.Pdwopt.Pplan.rows *. 10.) +. 100. }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R11.bounds" ] (validate_full r bad)

(* a5: a contradictory range filter left unfolded in the plan *)
let test_mut_contradictory_filter () =
  let r = optimize_raw filter_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Filter pred) ->
           let k =
             match Registry.Col_set.choose_opt (Expr.cols pred) with
             | Some c -> c
             | None -> Alcotest.fail "filter references no columns"
           in
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Serial
                      (Memo.Physop.Filter
                         (Expr.Bin
                            (Expr.And,
                             Expr.Bin (Expr.Lt, Expr.Col k,
                                       Expr.Lit (Catalog.Value.Int 5)),
                             Expr.Bin (Expr.Gt, Expr.Col k,
                                       Expr.Lit (Catalog.Value.Int 10))))) }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R12.contradiction" ] (validate_full r bad)

(* a6: nullability violation — IS NULL demanded of a column the catalog
   proves never null (a primary key) *)
let test_mut_null_of_nonnullable () =
  let r = optimize_raw filter_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Serial (Memo.Physop.Filter pred) ->
           let k =
             match Registry.Col_set.choose_opt (Expr.cols pred) with
             | Some c -> c
             | None -> Alcotest.fail "filter references no columns"
           in
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Serial
                      (Memo.Physop.Filter (Expr.Is_null (Expr.Col k, false))) }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R12.contradiction" ] (validate_full r bad)

(* a7: DSQL temp schema carrying one emitted name at two incompatible types *)
let test_mut_dsql_temp_types () =
  let r = optimize_raw agg_sql in
  let reg = r.Opdw.memo.Memo.reg in
  let d = r.Opdw.dsql in
  let hit = ref false in
  let bad_steps =
    List.map
      (function
        | Dsql.Generate.Dms_step ({ cols = (a, an) :: (b, _) :: rest; _ } as s)
          when (not !hit)
               && not
                    (Catalog.Types.compatible (Registry.info reg a).Registry.ty
                       (Registry.info reg b).Registry.ty) ->
          hit := true;
          Dsql.Generate.Dms_step { s with cols = (a, an) :: (b, an) :: rest }
        | s -> s)
      d.Dsql.Generate.steps
  in
  if not !hit then Alcotest.fail "no DMS step with incompatible col pair";
  let bad = { d with Dsql.Generate.steps = bad_steps } in
  expect_rules ~rules:[ "R10.types" ]
    (Check.validate ~cost:(cost_of r) ~dsql:bad ~shell:(Fixtures.shell ())
       (Opdw.plan r))

(* -- memo-level analysis and contradiction-driven folding -- *)

let test_empty_groups_on_contradiction () =
  let r = optimize_raw contra_sql in
  let m = r.Opdw.memo in
  let empty = Analysis.empty_groups (ctx_of r) m in
  Alcotest.(check bool) "root group proven empty" true (empty (Memo.root m));
  (* a satisfiable query proves nothing empty *)
  let r2 = optimize_raw filter_sql in
  let m2 = r2.Opdw.memo in
  let empty2 = Analysis.empty_groups (ctx_of r2) m2 in
  let any = ref false in
  Memo.iter_groups m2 (fun g -> if empty2 g.Memo.gid then any := true);
  Alcotest.(check bool) "no empty groups in a live query" false !any

let has_const_empty p =
  let found = ref false in
  let rec walk (n : Pdwopt.Pplan.t) =
    (match n.Pdwopt.Pplan.op with
     | Pdwopt.Pplan.Serial (Memo.Physop.Const_empty _) -> found := true
     | _ -> ());
    List.iter walk n.Pdwopt.Pplan.children
  in
  walk p;
  !found

let fold_options ~fold =
  let o = Opdw.default_options ~node_count:4 in
  { o with Opdw.pdw = { o.Opdw.pdw with Pdwopt.Enumerate.fold_empty = fold } }

let test_fold_to_const_empty () =
  let obs = Obs.create () in
  let r =
    Opdw.optimize ~obs ~options:(fold_options ~fold:true) (Fixtures.shell ())
      contra_sql
  in
  Alcotest.(check bool) "plan folded to ConstEmpty" true
    (has_const_empty (Opdw.plan r));
  Alcotest.(check bool) "analysis.empty_groups counted" true
    (List.exists
       (fun (k, v) -> k = "analysis.empty_groups" && v > 0.)
       (Obs.counters_prefixed obs "analysis."));
  (* both fold settings execute to the same (empty) answer *)
  let app = Fixtures.app () in
  let rows_on = (Opdw.run app r).Engine.Local.rows in
  (* with folding off the contradictory filter survives into the final plan,
     so the R12 check gate would (correctly) reject it — compile unchecked *)
  let r_off =
    Opdw.optimize ~check:false ~options:(fold_options ~fold:false)
      (Fixtures.shell ()) contra_sql
  in
  Alcotest.(check bool) "unfolded plan keeps the filter" false
    (has_const_empty (Opdw.plan r_off));
  let rows_off = (Opdw.run app r_off).Engine.Local.rows in
  Alcotest.(check int) "folded plan returns no rows" 0 (List.length rows_on);
  Alcotest.(check int) "unfolded plan returns no rows" 0 (List.length rows_off)

(* fold on/off produce bit-identical plans when no contradiction exists, at
   any pool width *)
let test_fold_bit_identity () =
  let render ~fold ~jobs sql =
    Par.with_pool ~jobs @@ fun pool ->
    let r =
      Opdw.optimize ~options:(fold_options ~fold) ~pool (Fixtures.shell ()) sql
    in
    let reg = r.Opdw.memo.Memo.reg in
    Printf.sprintf "%s\n--\n%s\n--\n%h"
      (Pdwopt.Pplan.to_string reg (Opdw.plan r))
      (Dsql.Generate.to_string r.Opdw.dsql)
      (Opdw.plan r).Pdwopt.Pplan.dms_cost
  in
  List.iter
    (fun sql ->
       let base = render ~fold:true ~jobs:1 sql in
       Alcotest.(check string) "fold off, jobs 1" base (render ~fold:false ~jobs:1 sql);
       Alcotest.(check string) "fold on, jobs 4" base (render ~fold:true ~jobs:4 sql);
       Alcotest.(check string) "fold off, jobs 4" base (render ~fold:false ~jobs:4 sql))
    [ agg_sql; q3_sql ]

(* -- the engine's --assert-bounds runtime oracle -- *)

let test_assert_bounds_workload () =
  let app = Fixtures.app () in
  Fun.protect
    ~finally:(fun () -> Engine.Appliance.set_bounds app None)
    (fun () ->
       List.iter
         (fun (q : Tpch.Queries.t) ->
            let r = Opdw.optimize (Fixtures.shell ()) q.Tpch.Queries.sql in
            Engine.Appliance.set_bounds app
              (Some (Analysis.group_bounds (ctx_of r) (Opdw.plan r)));
            ignore (Opdw.run app r);
            Alcotest.(check int)
              (q.Tpch.Queries.id ^ ": no bound violations") 0
              app.Engine.Appliance.bound_violations)
         Tpch.Queries.all)

let test_assert_bounds_detects_corruption () =
  let app = Fixtures.app () in
  let r = Opdw.optimize (Fixtures.shell ()) agg_sql in
  (* claim every group is empty; any operator that produces rows violates *)
  let tbl = Hashtbl.create 8 in
  let rec walk (n : Pdwopt.Pplan.t) =
    if n.Pdwopt.Pplan.group >= 0 then
      Hashtbl.replace tbl n.Pdwopt.Pplan.group (0., 0.);
    List.iter walk n.Pdwopt.Pplan.children
  in
  walk (Opdw.plan r);
  Fun.protect
    ~finally:(fun () -> Engine.Appliance.set_bounds app None)
    (fun () ->
       Engine.Appliance.set_bounds app (Some tbl);
       ignore (Opdw.run app r);
       Alcotest.(check bool) "violations detected" true
         (app.Engine.Appliance.bound_violations > 0))

let suite =
  [ t "typed-expression checker" test_infer_and_check_expr;
    t "workload plans annotate clean" test_annotate_clean;
    t "scan bounds are exact" test_scan_bounds_exact;
    t "mutation: join key types (R10)" test_mut_join_key_types;
    t "mutation: SUM over string (R10)" test_mut_sum_over_string;
    t "mutation: rows above bound (R11)" test_mut_rows_above_bound;
    t "mutation: non-monotone rows (R11)" test_mut_rows_non_monotone;
    t "mutation: contradictory filter (R12)" test_mut_contradictory_filter;
    t "mutation: IS NULL of non-nullable (R12)" test_mut_null_of_nonnullable;
    t "mutation: DSQL temp schema types (R10)" test_mut_dsql_temp_types;
    t "empty groups on contradiction" test_empty_groups_on_contradiction;
    t "contradiction folds to ConstEmpty" test_fold_to_const_empty;
    t "fold on/off bit-identity" test_fold_bit_identity;
    t "assert-bounds: workload clean" test_assert_bounds_workload;
    t "assert-bounds: detects corruption" test_assert_bounds_detects_corruption ]
