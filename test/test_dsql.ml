(* DSQL generation (paper §2.4, §3.4, Fig. 6/7): step structure, temp table
   wiring, SQL text shape. *)

let t name f = Alcotest.test_case name `Quick f

let dsql sql =
  let r = Fixtures.optimize sql in
  (r, r.Opdw.dsql)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let steps_sql (p : Dsql.Generate.plan) =
  List.map
    (function
      | Dsql.Generate.Dms_step { source_sql; _ } -> source_sql
      | Dsql.Generate.Return_step { sql; _ } -> sql)
    p.Dsql.Generate.steps

let test_no_move_single_return () =
  let _, p = dsql "SELECT o_orderkey FROM orders WHERE o_totalprice > 100" in
  match p.Dsql.Generate.steps with
  | [ Dsql.Generate.Return_step { sql; _ } ] ->
    Alcotest.(check bool) "reads base table" true (contains sql "[tpch].[dbo].[orders]");
    Alcotest.(check bool) "carries the filter" true (contains sql "o_totalprice")
  | _ -> Alcotest.fail "expected exactly one Return step"

let test_shuffle_step_wiring () =
  let _, p = dsql (Option.get (Tpch.Queries.find "P1")).Tpch.Queries.sql in
  (* at least one DMS step followed by a Return step that reads the temp *)
  (match p.Dsql.Generate.steps with
   | [ Dsql.Generate.Dms_step { temp_table; _ }; Dsql.Generate.Return_step { sql; _ } ] ->
     Alcotest.(check bool) "return reads temp" true (contains sql temp_table)
   | _ -> Alcotest.fail "expected DMS + Return");
  ()

let test_temp_ids_unique () =
  let _, p = dsql (Option.get (Tpch.Queries.find "Q20")).Tpch.Queries.sql in
  let names =
    List.filter_map
      (function Dsql.Generate.Dms_step { temp_table; _ } -> Some temp_table | _ -> None)
      p.Dsql.Generate.steps
  in
  Alcotest.(check int) "unique temp names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_moved_columns_projected () =
  (* only the required columns appear in a DMS step's source SELECT *)
  let _, p = dsql (Option.get (Tpch.Queries.find "P1")).Tpch.Queries.sql in
  match p.Dsql.Generate.steps with
  | Dsql.Generate.Dms_step { cols; _ } :: _ ->
    Alcotest.(check bool) "narrow projection" true (List.length cols <= 3)
  | _ -> Alcotest.fail "expected a DMS step first"

let test_group_by_rendered () =
  let _, p = dsql "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey" in
  let all = String.concat "\n" (steps_sql p) in
  Alcotest.(check bool) "GROUP BY present" true (contains all "GROUP BY")

let test_order_by_rendered () =
  let _, p = dsql "SELECT c_name FROM customer ORDER BY c_name DESC" in
  match List.rev p.Dsql.Generate.steps with
  | Dsql.Generate.Return_step { sql; _ } :: _ ->
    Alcotest.(check bool) "ORDER BY ... DESC" true (contains sql "DESC")
  | _ -> Alcotest.fail "no return step"

let test_top_rendered () =
  let _, p = dsql "SELECT TOP 7 c_name FROM customer ORDER BY c_name" in
  match List.rev p.Dsql.Generate.steps with
  | Dsql.Generate.Return_step { sql; _ } :: _ ->
    Alcotest.(check bool) "TOP 7" true (contains sql "TOP 7")
  | _ -> Alcotest.fail "no return step"

let test_semi_join_rendered_as_exists () =
  let _, p =
    dsql "SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)"
  in
  let all = String.concat "\n" (steps_sql p) in
  Alcotest.(check bool) "EXISTS rendering" true (contains all "EXISTS")

let test_date_literals_rendered () =
  let _, p = dsql "SELECT o_orderkey FROM orders WHERE o_orderdate >= '1994-01-01'" in
  let all = String.concat "\n" (steps_sql p) in
  Alcotest.(check bool) "CAST (... AS DATE)" true
    (contains all "CAST ('1994-01-01' AS DATE)")

let test_step_formatting () =
  let _, p = dsql (Option.get (Tpch.Queries.find "P1")).Tpch.Queries.sql in
  let s = Dsql.Generate.to_string p in
  Alcotest.(check bool) "step headers" true (contains s "DSQL step 0");
  Alcotest.(check bool) "routing line" true (contains s "routing:");
  Alcotest.(check bool) "return step" true (contains s "Return")

let test_workload_steps_bounded () =
  (* every workload query has between 1 and 8 steps; step ids are dense *)
  List.iter
    (fun q ->
       let r = Fixtures.optimize q.Tpch.Queries.sql in
       let steps = r.Opdw.dsql.Dsql.Generate.steps in
       let n = List.length steps in
       Alcotest.(check bool) (q.Tpch.Queries.id ^ " step count sane") true (n >= 1 && n <= 8);
       List.iteri
         (fun i s -> Alcotest.(check int) "dense ids" i (Dsql.Generate.step_id s))
         steps)
    Tpch.Queries.all

let suite =
  [ t "pure-local query: single Return step" test_no_move_single_return;
    t "shuffle step wires temp into Return" test_shuffle_step_wiring;
    t "temp table names unique" test_temp_ids_unique;
    t "moved columns projected" test_moved_columns_projected;
    t "GROUP BY rendered" test_group_by_rendered;
    t "ORDER BY rendered" test_order_by_rendered;
    t "TOP rendered" test_top_rendered;
    t "semi join rendered as EXISTS" test_semi_join_rendered_as_exists;
    t "date literals rendered as CAST" test_date_literals_rendered;
    t "step formatting (Fig. 7 style)" test_step_formatting;
    t "workload step counts and ids" test_workload_steps_bounded ]
